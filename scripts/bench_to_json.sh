#!/usr/bin/env bash
# Captures simulator/campaign throughput into BENCH_sim.json and the SYNFI
# analysis-engine throughput into BENCH_synfi.json so the perf trajectory of
# the batched engines is recorded per PR.
#
# Usage: scripts/bench_to_json.sh [build_dir] [sim_output_json] [synfi_output_json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_sim.json}"
SYNFI_OUT="${3:-BENCH_synfi.json}"
BENCH="$BUILD_DIR/bench_micro"
SYNFI_BENCH="$BUILD_DIR/bench_sec64_synfi"

if [[ ! -x "$BENCH" ]]; then
  echo "error: $BENCH not found; build with benchmarks enabled first" >&2
  exit 1
fi

SCALE_BENCH="$BUILD_DIR/bench_campaign_scale"

RAW="$(mktemp)"
SCALE_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$SCALE_RAW"' EXIT
"$BENCH" --benchmark_filter='BM_Simulator|BM_Campaign|BM_SynfiInjection' \
         --benchmark_min_time=0.3 --benchmark_format=json > "$RAW"

# Campaign-at-scale: streaming vs. materialized planner throughput and the
# peak-RSS cost of materializing the plan, at a size big enough for the
# plan to matter (~50 MB) but quick to run. The bench exits non-zero if the
# two planners ever disagree, so a divergent run cannot land in the repo.
if [[ -x "$SCALE_BENCH" ]]; then
  "$SCALE_BENCH" --runs 2000000 --cycles 6 --json > "$SCALE_RAW"
else
  echo "warning: $SCALE_BENCH not found; campaign_scale omitted from $OUT" >&2
  echo '{}' > "$SCALE_RAW"
fi

python3 - "$RAW" "$SCALE_RAW" "$OUT" <<'EOF'
import json, sys

raw = json.load(open(sys.argv[1]))
scale = json.load(open(sys.argv[2]))
out = {
    "bench": "sim",
    "unit": "items_per_second",
    "results": {},
}
for b in raw.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips is not None:
        out["results"][b["name"]] = round(ips, 1)

scalar = out["results"].get("BM_Campaign/1")
batched = out["results"].get("BM_Campaign/64")
if scalar and batched:
    out["campaign_batch_speedup"] = round(batched / scalar, 2)
scalar = out["results"].get("BM_SimulatorStep")
batched = out["results"].get("BM_SimulatorStepBatched/words:1")
if scalar and batched:
    out["step_lane_speedup"] = round(batched / scalar, 2)
# Multi-word lane blocks: widest SoA block vs the one-word (historical
# 64-lane) layout, on both the raw step loop and the SYNFI injection engine.
narrow = out["results"].get("BM_SimulatorStepBatched/words:1")
wide = out["results"].get("BM_SimulatorStepBatched/words:8")
if narrow and wide:
    out["lane_width_speedup"] = round(wide / narrow, 2)
narrow = out["results"].get("BM_SynfiInjection/lanes:64")
wide = out["results"].get("BM_SynfiInjection/lanes:512")
if narrow and wide:
    out["synfi_lane_width_speedup"] = round(wide / narrow, 2)
# The throughput-optimal batch width for this module size (wider blocks
# eventually trade L2 locality for fewer passes, so the peak is a data
# point worth recording, not always the maximum width).
synfi = {n: v for n, v in out["results"].items()
         if n.startswith("BM_SynfiInjection/lanes:")}
if synfi:
    best = max(synfi, key=synfi.get)
    out["synfi_best_lanes"] = int(best.rsplit(":", 1)[1])
streaming = out["results"].get("BM_CampaignPlanner/0")
materialized = out["results"].get("BM_CampaignPlanner/1")
if streaming and materialized:
    out["planner_streaming_vs_materialized"] = round(streaming / materialized, 2)

if scale.get("bench") == "campaign_scale":
    assert scale.get("engines_agree") is True, "campaign planners diverged; not recording"
    out["campaign_scale"] = scale

json.dump(out, open(sys.argv[3], "w"), indent=2)
print(f"wrote {sys.argv[3]}")
EOF

# SYNFI analysis engines: batched-vs-scalar exhaustive simulation and
# incremental-vs-rebuild SAT. The bench emits the JSON itself; validate and
# pretty-print it through python so a malformed run cannot land in the repo.
if [[ -x "$SYNFI_BENCH" ]]; then
  "$SYNFI_BENCH" --json > "$RAW"
  python3 - "$RAW" "$SYNFI_OUT" <<'EOF'
import json, os, sys

out = json.load(open(sys.argv[1]))
assert out.get("bench") == "synfi", "unexpected bench payload"
assert out.get("engines_agree") is True, "engine reports diverged; not recording"
assert "kfault_sim" in out and "kfault_sat_incremental" in out, \
    "k-fault engine throughput missing from bench payload"

# Non-regression gate on the incremental SAT engine (synfi14_n2): a fresh
# run more than 3x slower than the committed number is a real engine
# regression, not machine noise — refuse to record it. The committed file
# is the baseline; delete it first to intentionally re-baseline.
if os.path.exists(sys.argv[2]):
    prev = json.load(open(sys.argv[2]))
    old = prev.get("sat_incremental")
    new = out.get("sat_incremental")
    if old and new and prev.get("sat_module") == out.get("sat_module"):
        assert new >= old / 3.0, (
            f"sat_incremental regressed on {out['sat_module']}: "
            f"{new:.0f} q/s vs committed {old:.0f} q/s (>3x slower)")
json.dump(out, open(sys.argv[2], "w"), indent=2)
print(f"wrote {sys.argv[2]}")
EOF
else
  echo "warning: $SYNFI_BENCH not found; skipping $SYNFI_OUT" >&2
fi
