#!/usr/bin/env bash
# Captures simulator/campaign throughput into BENCH_sim.json and the SYNFI
# analysis-engine throughput into BENCH_synfi.json so the perf trajectory of
# the batched engines is recorded per PR.
#
# Usage: scripts/bench_to_json.sh [build_dir] [sim_output_json] [synfi_output_json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_sim.json}"
SYNFI_OUT="${3:-BENCH_synfi.json}"
BENCH="$BUILD_DIR/bench_micro"
SYNFI_BENCH="$BUILD_DIR/bench_sec64_synfi"

if [[ ! -x "$BENCH" ]]; then
  echo "error: $BENCH not found; build with benchmarks enabled first" >&2
  exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
"$BENCH" --benchmark_filter='BM_Simulator|BM_Campaign' \
         --benchmark_min_time=0.3 --benchmark_format=json > "$RAW"

python3 - "$RAW" "$OUT" <<'EOF'
import json, sys

raw = json.load(open(sys.argv[1]))
out = {
    "bench": "sim",
    "unit": "items_per_second",
    "results": {},
}
for b in raw.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips is not None:
        out["results"][b["name"]] = round(ips, 1)

scalar = out["results"].get("BM_Campaign/1")
batched = out["results"].get("BM_Campaign/64")
if scalar and batched:
    out["campaign_batch_speedup"] = round(batched / scalar, 2)
scalar = out["results"].get("BM_SimulatorStep")
batched = out["results"].get("BM_SimulatorStepBatched")
if scalar and batched:
    out["step_lane_speedup"] = round(batched / scalar, 2)

json.dump(out, open(sys.argv[2], "w"), indent=2)
print(f"wrote {sys.argv[2]}")
EOF

# SYNFI analysis engines: batched-vs-scalar exhaustive simulation and
# incremental-vs-rebuild SAT. The bench emits the JSON itself; validate and
# pretty-print it through python so a malformed run cannot land in the repo.
if [[ -x "$SYNFI_BENCH" ]]; then
  "$SYNFI_BENCH" --json > "$RAW"
  python3 - "$RAW" "$SYNFI_OUT" <<'EOF'
import json, sys

out = json.load(open(sys.argv[1]))
assert out.get("bench") == "synfi", "unexpected bench payload"
assert out.get("engines_agree") is True, "engine reports diverged; not recording"
json.dump(out, open(sys.argv[2], "w"), indent=2)
print(f"wrote {sys.argv[2]}")
EOF
else
  echo "warning: $SYNFI_BENCH not found; skipping $SYNFI_OUT" >&2
fi
