// Fault-campaign example: attack the three variants of one controller with
// increasing numbers of simultaneous transient faults and print how often
// the attacker hijacks the control flow undetected.
#include <cstdio>

#include "core/harden.h"
#include "fsm/compile.h"
#include "redundancy/redundancy.h"
#include "rtlil/design.h"
#include "sim/campaign.h"

int main() {
  scfi::fsm::Fsm f;
  f.name = "lock_ctrl";
  f.inputs = {"key_ok", "open_req", "timeout"};
  f.outputs = {"unlock"};
  f.add_transition("LOCKED", "11-", "OPEN", "1");
  f.add_transition("LOCKED", "01-", "ALARM", "0");
  f.add_transition("OPEN", "--1", "LOCKED", "0");
  f.add_transition("ALARM", "--1", "LOCKED", "0");

  scfi::rtlil::Design d;
  const auto plain = scfi::fsm::compile_unprotected(f, d);
  scfi::redundancy::RedundancyConfig rc;
  rc.protection_level = 3;
  const auto redundant = scfi::redundancy::build_redundant(f, d, rc);
  scfi::core::ScfiConfig sc;
  sc.protection_level = 3;
  const auto hardened = scfi::core::scfi_harden(f, d, sc);

  std::printf("Attacking a lock controller (goal: reach OPEN without a key).\n");
  std::printf("%6s | %-12s %8s %8s %8s %8s\n", "faults", "variant", "hijack%", "lag%",
              "detect%", "masked%");
  for (int faults = 1; faults <= 5; ++faults) {
    scfi::sim::CampaignConfig config;
    config.runs = 500;
    config.cycles = 20;
    config.fault.k = faults;
    config.seed = 42 + static_cast<std::uint64_t>(faults);
    const struct {
      const char* name;
      const scfi::fsm::CompiledFsm* variant;
    } rows[] = {{"unprotected", &plain}, {"redundancy", &redundant}, {"scfi", &hardened}};
    for (const auto& row : rows) {
      const auto r = scfi::sim::run_campaign(f, *row.variant, config);
      std::printf("%6d | %-12s %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n", faults, row.name,
                  100.0 * r.hijacked / r.runs, 100.0 * r.lagged / r.runs,
                  100.0 * r.detection_rate(), 100.0 * r.masked / r.runs);
    }
  }
  return 0;
}
