// Protect the OpenTitan-style module zoo: builds each of the seven Table-1
// modules in all three configurations, synthesizes them, and prints the
// area/timing summary — the end-to-end "integrate SCFI into the design
// flow" story of the paper.
#include <cstdio>

#include "ot/zoo.h"
#include "rtlil/design.h"
#include "synth/sta.h"

int main() {
  using scfi::ot::Variant;
  std::printf("%-18s %10s %14s %14s %12s\n", "module", "base[GE]", "red N=3[GE]",
              "scfi N=3[GE]", "scfi fmax");
  for (const scfi::ot::OtEntry& entry : scfi::ot::ot_zoo()) {
    scfi::rtlil::Design d;
    auto u = scfi::ot::build_ot_variant(entry, d, Variant::kUnprotected, 3, "u");
    auto r = scfi::ot::build_ot_variant(entry, d, Variant::kRedundancy, 3, "r");
    auto s = scfi::ot::build_ot_variant(entry, d, Variant::kScfi, 3, "s");
    const double ua = scfi::ot::synthesize_area(*u.module).total_ge;
    const double ra = scfi::ot::synthesize_area(*r.module).total_ge;
    const double sa = scfi::ot::synthesize_area(*s.module).total_ge;
    const scfi::synth::TimingReport timing = scfi::synth::analyze_timing(*s.module);
    std::printf("%-18s %10.0f %10.0f (+%2.0f%%) %10.0f (+%2.0f%%) %9.1f MHz\n",
                entry.name.c_str(), ua, ra, 100.0 * (ra - ua) / ua, sa,
                100.0 * (sa - ua) / ua, timing.max_freq_mhz);
  }
  return 0;
}
