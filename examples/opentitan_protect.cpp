// Protect the OpenTitan-style module zoo: builds each of the seven Table-1
// modules in all three configurations, synthesizes them, and prints the
// area/timing summary — the end-to-end "integrate SCFI into the design
// flow" story of the paper. Each hardened module is additionally run
// through the SYNFI exploitability analysis on two regions (the MDS
// diffusion layer and the whole next-state logic) via one reusable
// synfi::Analyzer per module, the same amortized path SweepOrchestrator
// uses for fleet sweeps.
#include <cstdio>

#include "ot/zoo.h"
#include "rtlil/design.h"
#include "synfi/synfi.h"
#include "synth/sta.h"

int main() {
  using scfi::ot::Variant;
  std::printf("%-18s %10s %14s %14s %12s %10s %12s\n", "module", "base[GE]", "red N=3[GE]",
              "scfi N=3[GE]", "scfi fmax", "mds expl", "whole expl");
  for (const scfi::ot::OtEntry& entry : scfi::ot::ot_zoo()) {
    scfi::rtlil::Design d;
    auto u = scfi::ot::build_ot_variant(entry, d, Variant::kUnprotected, 3, "u");
    auto r = scfi::ot::build_ot_variant(entry, d, Variant::kRedundancy, 3, "r");
    auto s = scfi::ot::build_ot_variant(entry, d, Variant::kScfi, 3, "s");

    // One Analyzer serves both region queries on the word-level netlist
    // (synthesize_area lowers the module in place, so analyze first).
    scfi::synfi::Analyzer analyzer(entry.fsm, s);
    scfi::synfi::SynfiConfig mds;
    scfi::synfi::SynfiConfig whole;
    whole.wire_prefix = "";
    const scfi::synfi::SynfiReport mds_report = analyzer.run(mds);
    const scfi::synfi::SynfiReport whole_report = analyzer.run(whole);

    const double ua = scfi::ot::synthesize_area(*u.module).total_ge;
    const double ra = scfi::ot::synthesize_area(*r.module).total_ge;
    const double sa = scfi::ot::synthesize_area(*s.module).total_ge;
    const scfi::synth::TimingReport timing = scfi::synth::analyze_timing(*s.module);
    std::printf("%-18s %10.0f %10.0f (+%2.0f%%) %10.0f (+%2.0f%%) %9.1f MHz %9lld %7lld/%lld\n",
                entry.name.c_str(), ua, ra, 100.0 * (ra - ua) / ua, sa,
                100.0 * (sa - ua) / ua, timing.max_freq_mhz,
                static_cast<long long>(mds_report.exploitable),
                static_cast<long long>(whole_report.exploitable),
                static_cast<long long>(whole_report.injections));
  }
  return 0;
}
