// scfi_cli — command-line front door to the toolchain, the analog of the
// paper's "call the SCFI Yosys pass in the design flow".
//
// Usage:
//   scfi_cli harden  <file.kiss2> [-n LEVEL] [-o out.v] [--json out.json]
//   scfi_cli area    <file.kiss2> [-n LEVEL]
//   scfi_cli synfi   <file.kiss2> [-n LEVEL]
//   scfi_cli attack  <file.kiss2> [-n LEVEL] [--faults K]
//   scfi_cli dot     <file.kiss2>
// Without a file argument a built-in demo FSM is used.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "backends/json.h"
#include "base/error.h"
#include "backends/verilog.h"
#include "core/harden.h"
#include "fsm/dot.h"
#include "fsm/kiss2.h"
#include "ot/zoo.h"
#include "redundancy/redundancy.h"
#include "rtlil/design.h"
#include "sim/campaign.h"
#include "synfi/synfi.h"

namespace {

const char* kDemo = R"(
.i 2
.o 1
.s 3
.p 4
.r IDLE
1- IDLE RUN  1
-1 RUN  DONE 0
-- DONE IDLE 0
00 RUN  RUN  1
.e
)";

scfi::fsm::Fsm load_fsm(const std::string& path) {
  if (path.empty()) return scfi::fsm::parse_kiss2(kDemo, "demo");
  std::ifstream in(path);
  if (!in) throw scfi::ScfiError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scfi::fsm::parse_kiss2(buffer.str(), path);
}

int usage() {
  std::fprintf(stderr,
               "usage: scfi_cli <harden|area|synfi|attack|dot> [file.kiss2]"
               " [-n LEVEL] [-o out.v] [--json out.json] [--faults K]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::string file;
  std::string verilog_out;
  std::string json_out;
  int level = 2;
  int faults = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-n" && i + 1 < argc) {
      level = std::atoi(argv[++i]);
    } else if (arg == "-o" && i + 1 < argc) {
      verilog_out = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--faults" && i + 1 < argc) {
      faults = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      file = arg;
    } else {
      return usage();
    }
  }

  try {
    const scfi::fsm::Fsm fsm = load_fsm(file);
    if (command == "dot") {
      std::cout << scfi::fsm::to_dot(fsm);
      return 0;
    }

    scfi::rtlil::Design design;
    scfi::core::ScfiConfig config;
    config.protection_level = level;
    scfi::core::ScfiReport report;
    const scfi::fsm::CompiledFsm hard =
        scfi::core::scfi_harden(fsm, design, config, &report);

    if (command == "harden") {
      std::printf("hardened %s: N=%d, %d states (%d-bit), %zu symbols (%d-bit), %d lane(s)\n",
                  fsm.name.c_str(), level, fsm.num_states(), report.plan.state_width,
                  report.plan.symbol_codes.size(), report.plan.symbol_width, report.lanes);
      if (!verilog_out.empty()) {
        std::ofstream out(verilog_out);
        scfi::backends::write_verilog(*hard.module, out);
        std::printf("wrote %s\n", verilog_out.c_str());
      } else {
        scfi::backends::write_verilog(*hard.module, std::cout);
      }
      if (!json_out.empty()) {
        std::ofstream out(json_out);
        scfi::backends::write_json(*hard.module, out);
        std::printf("wrote %s\n", json_out.c_str());
      }
      return 0;
    }
    if (command == "area") {
      scfi::rtlil::Design d2;
      const auto plain = scfi::fsm::compile_unprotected(fsm, d2);
      scfi::redundancy::RedundancyConfig rc;
      rc.protection_level = level;
      const auto redundant = scfi::redundancy::build_redundant(fsm, d2, rc);
      const double ua = scfi::ot::synthesize_area(*plain.module).total_ge;
      const double ra = scfi::ot::synthesize_area(*redundant.module).total_ge;
      const double sa = scfi::ot::synthesize_area(*hard.module).total_ge;
      std::printf("area [GE]: unprotected %.0f, redundancy %.0f (+%.0f%%), scfi %.0f (+%.0f%%)\n",
                  ua, ra, 100.0 * (ra - ua) / ua, sa, 100.0 * (sa - ua) / ua);
      return 0;
    }
    if (command == "synfi") {
      const scfi::synfi::SynfiReport r = scfi::synfi::analyze(fsm, hard);
      std::printf("synfi: %lld sites, %lld injections, %lld exploitable (%.2f%%), %lld detected\n",
                  static_cast<long long>(r.sites), static_cast<long long>(r.injections),
                  static_cast<long long>(r.exploitable), r.exploitable_pct(),
                  static_cast<long long>(r.detected));
      return 0;
    }
    if (command == "attack") {
      scfi::sim::CampaignConfig campaign;
      campaign.runs = 1000;
      campaign.cycles = 20;
      campaign.num_faults = faults;
      const auto r = scfi::sim::run_campaign(fsm, hard, campaign);
      std::printf("attack with %d fault(s): hijack %.2f%%, detected %.2f%% of effective,"
                  " masked %d/%d\n",
                  faults, 100.0 * r.hijacked / r.runs, 100.0 * r.detection_rate(), r.masked,
                  r.runs);
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
