// scfi_cli — command-line front door to the toolchain, the analog of the
// paper's "call the SCFI Yosys pass in the design flow".
//
// Usage:
//   scfi_cli harden  <file.kiss2> [-n LEVEL] [-o out.v] [--json out.json]
//   scfi_cli area    <file.kiss2> [-n LEVEL]
//   scfi_cli synfi   <file.kiss2> [-n LEVEL] [--backend sim|sat] [--faults-k K]
//                    [--target any|inputs|state|logic] [--lanes K]
//                    [--threads K] [--no-incremental]
//   scfi_cli attack  <file.kiss2> [-n LEVEL] [--faults K] [--faults-k K]
//                    [--target any|inputs|state|logic] [--lanes K] [--threads K]
//   scfi_cli sweep   [--corpus DIR] [--modules GLOBS] [--levels 2,3]
//                    [--regions mds_,all] [--kinds flip,stuck0,stuck1]
//                    [--backend sim|sat] [--faults-k K] [--target any,state,...]
//                    [--campaign-runs N] [--campaign-cycles N]
//                    [--campaign-faults N] [--campaign-seed N]
//                    [--campaign-variants scfi,unprotected,redundancy]
//                    [--campaign-target any,inputs,state,logic]
//                    [--out results.jsonl] [--resume] [--jobs K] [--threads K]
//                    [--retries N] [--job-timeout SECONDS] [--fail-fast]
//                    [--fleet N] [--max-crashes N] [--lease SECONDS]
//                    [--heartbeat-timeout SECONDS] [--drain-grace SECONDS]
//                    [--wedge SECONDS]
//   scfi_cli sweep-diff <baseline.jsonl> <candidate.jsonl>
//                    [--max-exploitable-increase N]
//                    [--max-hijack-rate-increase F] [--max-detection-rate-drop F]
//                    [--wilson-z Z] [--wilson-min-trials N] [--fail-on-removed]
//   scfi_cli store-compact <store.jsonl> [--migrate]
//   scfi_cli dot     <file.kiss2>
//   scfi_cli import-verilog <file.v> [--dot]
// Without a file argument a built-in demo FSM is used. `import-verilog`
// parses a structural Verilog netlist with the frontends reader, elaborates
// every module, and reports ports plus every extracted FSM (state register,
// encoding, states/transitions); --dot additionally dumps each machine as
// Graphviz. `sweep` runs the SYNFI job matrix over every module matching
// the globs — drawn from the OpenTitan zoo, or, with --corpus DIR, from the
// .kiss2 files discovered recursively under DIR, or, with --corpus-verilog
// DIR, from the FSMs extracted out of the .v netlists under DIR (files that
// fail to parse/elaborate/extract are reported per module and skipped, not
// fatal) — plus, with --campaign-runs > 0, a Monte-Carlo
// campaign job per module x level x kind x campaign-variant — and streams
// JSONL results into --out; --resume skips jobs already ok there (failed
// and timed-out keys re-execute). A job that throws is retried --retries
// times with backoff, then recorded as a schema-v5 failure record (the
// sweep exits 1 but the other jobs complete); --job-timeout bounds each
// job's wall clock; --fail-fast aborts the fleet on the first error.
// --fleet N forks N supervised worker subprocesses that shard the matrix
// through lease records in the shared --out store (see
// src/sweep/README.md): a worker that crashes or stops heartbeating is
// reaped and respawned, its job returns to the pool, and a job that kills
// its worker --max-crashes times is quarantined as a failed record with
// error "crashed". SIGTERM/SIGINT drains the fleet gracefully: workers
// finish their in-flight job within --drain-grace seconds, the store is
// merged and compacted, and the exit code reports unfinished work.
// `sweep-diff` compares two stores and exits non-zero when a metric
// regresses beyond its threshold (rates are fractions: 0.005 = half a
// percentage point); campaign rates gate on Wilson-interval separation at
// --wilson-z (default 1.96, 0 = absolute deltas only), falling back to
// absolute deltas below --wilson-min-trials trials.
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "backends/json.h"
#include "base/error.h"
#include "backends/verilog.h"
#include "base/strutil.h"
#include "core/harden.h"
#include "frontends/verilog_parse.h"
#include "fsm/dot.h"
#include "fsm/extract.h"
#include "fsm/kiss2.h"
#include "ot/zoo.h"
#include "redundancy/redundancy.h"
#include "rtlil/design.h"
#include "sim/campaign.h"
#include "sweep/diff_report.h"
#include "sweep/module_source.h"
#include "sweep/supervisor.h"
#include "sweep/sweep.h"
#include "synfi/synfi.h"

namespace {

const char* kDemo = R"(
.i 2
.o 1
.s 3
.p 4
.r IDLE
1- IDLE RUN  1
-1 RUN  DONE 0
-- DONE IDLE 0
00 RUN  RUN  1
.e
)";

scfi::fsm::Fsm load_fsm(const std::string& path) {
  if (path.empty()) return scfi::fsm::parse_kiss2(kDemo, "demo");
  std::ifstream in(path);
  if (!in) throw scfi::ScfiError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scfi::fsm::parse_kiss2(buffer.str(), path);
}

int usage() {
  std::fprintf(stderr,
               "usage: scfi_cli <harden|area|synfi|attack|sweep|sweep-diff|store-compact|dot"
               "|import-verilog> [file.kiss2|file.v]\n"
               "  harden/area/synfi/attack: -n LEVEL  protection level (default 2)\n"
               "  harden:  -o out.v --json out.json\n"
               "  synfi:   --backend sim|sat --faults-k K --target any|inputs|state|logic\n"
               "           --lanes K --threads K --no-incremental\n"
               "  attack:  --faults K (alias --faults-k) --target any|inputs|state|logic\n"
               "           --lanes K --threads K\n"
               "  (--lanes: simulator runs per pass, 1..512 = 64 x lane_words;\n"
               "   widths past 64 use multi-word SIMD lane blocks; default auto-\n"
               "   selects per module size)\n"
               "  import-verilog: <file.v>  parse + elaborate a structural Verilog\n"
               "           netlist and report ports + extracted FSMs; --dot dumps\n"
               "           each machine as Graphviz\n"
               "  sweep:   --corpus DIR (sweep .kiss2 files instead of the zoo)\n"
               "           --corpus-verilog DIR (sweep FSMs extracted from .v netlists)\n"
               "           --modules GLOBS --levels 2,3 --regions mds_,all\n"
               "           --kinds flip,stuck0,stuck1 --backend sim|sat\n"
               "           --faults-k K --target any,state,... (synfi target classes)\n"
               "           --campaign-runs N --campaign-cycles N --campaign-faults N\n"
               "           --campaign-seed N --campaign-variants scfi,unprotected\n"
               "           --campaign-target any,inputs,state,logic\n"
               "           --out results.jsonl --resume --jobs K --threads K --lanes K\n"
               "           --retries N --job-timeout SECONDS --fail-fast\n"
               "           --fleet N (supervised worker subprocesses; needs --out)\n"
               "           --max-crashes N --lease SECONDS --heartbeat-timeout SECONDS\n"
               "           --drain-grace SECONDS --wedge SECONDS\n"
               "  sweep-diff: <baseline.jsonl> <candidate.jsonl>\n"
               "           --max-exploitable-increase N --max-hijack-rate-increase F\n"
               "           --max-detection-rate-drop F --wilson-z Z\n"
               "           --wilson-min-trials N --fail-on-removed\n"
               "  store-compact: <store.jsonl>  rewrite latest-wins compact "
               "(salvages a torn tail);\n"
               "           --migrate rewrites a mixed-schema store at the current "
               "version\n");
  return 2;
}

int parse_positive(const std::string& flag, const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  scfi::require(end != text && *end == '\0' && value >= 1 && value <= INT_MAX,
                "scfi_cli: " + flag + " must be a positive integer, got '" +
                    std::string(text) + "'");
  return static_cast<int>(value);
}

long long parse_count(const std::string& flag, const char* text) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  scfi::require(end != text && *end == '\0' && value >= 0,
                "scfi_cli: " + flag + " must be a non-negative integer, got '" +
                    std::string(text) + "'");
  return value;
}

double parse_fraction(const std::string& flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  scfi::require(end != text && *end == '\0' && value >= 0.0 && value <= 1.0,
                "scfi_cli: " + flag + " must be a fraction in [0, 1], got '" +
                    std::string(text) + "'");
  return value;
}

double parse_zscore(const std::string& flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  scfi::require(end != text && *end == '\0' && value >= 0.0 && value <= 100.0,
                "scfi_cli: " + flag + " must be a z-score in [0, 100], got '" +
                    std::string(text) + "'");
  return value;
}

double parse_seconds(const std::string& flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  scfi::require(end != text && *end == '\0' && value >= 0.0,
                "scfi_cli: " + flag + " must be a non-negative number of seconds, got '" +
                    std::string(text) + "'");
  return value;
}

std::vector<int> parse_levels(const std::string& text) {
  std::vector<int> levels;
  for (const std::string& field : scfi::split(text, ",")) {
    levels.push_back(parse_positive("--levels", field.c_str()));
  }
  return levels;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> positional;
  std::string verilog_out;
  std::string json_out;
  std::string modules = "*";
  std::string levels = "2";
  std::string regions = "mds_";
  std::string kinds = "flip";
  std::string backend_name = "sim";
  std::string sweep_out;
  std::string corpus_dir;
  std::string corpus_verilog_dir;
  bool dot_dump = false;
  std::string campaign_variants = "scfi";
  std::string campaign_target = "any";
  bool resume = false;
  bool no_incremental = false;
  bool migrate = false;
  bool level_set = false;
  int level = 2;
  int faults = 1;
  int faults_k = 1;
  std::string target = "any";
  // 0 = auto: pick the lane count per module via synfi::auto_lanes. An
  // explicit --lanes is never second-guessed.
  int lanes = 0;
  int threads = 1;
  int jobs = 1;
  int campaign_runs = 0;
  int campaign_cycles = 24;
  int campaign_faults = 1;
  long long campaign_seed = 1;
  int retries = 2;
  double job_timeout = 0.0;
  bool fail_fast = false;
  int fleet = 0;
  int max_crashes = 2;
  double lease_seconds = 120.0;
  double heartbeat_timeout = 10.0;
  double drain_grace = 30.0;
  double wedge_seconds = 0.0;
  scfi::sweep::DiffThresholds thresholds;

  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const bool has_value = i + 1 < argc;
      if (arg == "-n" && has_value) {
        level = parse_positive("-n", argv[++i]);
        level_set = true;
      } else if (arg == "-o" && has_value) {
        verilog_out = argv[++i];
      } else if (arg == "--json" && has_value) {
        json_out = argv[++i];
      } else if (arg == "--faults" && has_value) {
        faults = parse_positive("--faults", argv[++i]);
      } else if (arg == "--faults-k" && has_value) {
        faults_k = parse_positive("--faults-k", argv[++i]);
      } else if (arg == "--target" && has_value) {
        target = argv[++i];
        for (const std::string& t : scfi::split(target, ",")) {
          scfi::sweep::fault_target_of(t);  // validate now, use later
        }
      } else if (arg == "--migrate") {
        migrate = true;
      } else if (arg == "--lanes" && has_value) {
        lanes = parse_positive("--lanes", argv[++i]);
        scfi::require(lanes <= scfi::sim::kMaxLanes,
                      "scfi_cli: --lanes must be in [1, 512] (64 x lane_words)");
      } else if (arg == "--threads" && has_value) {
        threads = parse_positive("--threads", argv[++i]);
      } else if (arg == "--jobs" && has_value) {
        jobs = parse_positive("--jobs", argv[++i]);
      } else if (arg == "--backend" && has_value) {
        backend_name = argv[++i];
        scfi::sweep::backend_of(backend_name);  // validate now, use later
      } else if (arg == "--no-incremental") {
        no_incremental = true;
      } else if (arg == "--modules" && has_value) {
        modules = argv[++i];
      } else if (arg == "--levels" && has_value) {
        levels = argv[++i];
      } else if (arg == "--regions" && has_value) {
        regions = argv[++i];
      } else if (arg == "--kinds" && has_value) {
        kinds = argv[++i];
      } else if (arg == "--out" && has_value) {
        sweep_out = argv[++i];
      } else if (arg == "--corpus" && has_value) {
        corpus_dir = argv[++i];
      } else if (arg == "--corpus-verilog" && has_value) {
        corpus_verilog_dir = argv[++i];
      } else if (arg == "--dot") {
        dot_dump = true;
      } else if (arg == "--resume") {
        resume = true;
      } else if (arg == "--retries" && has_value) {
        const long long value = parse_count("--retries", argv[++i]);
        scfi::require(value <= INT_MAX, "scfi_cli: --retries too large");
        retries = static_cast<int>(value);
      } else if (arg == "--job-timeout" && has_value) {
        job_timeout = parse_seconds("--job-timeout", argv[++i]);
      } else if (arg == "--fail-fast") {
        fail_fast = true;
      } else if (arg == "--fleet" && has_value) {
        fleet = parse_positive("--fleet", argv[++i]);
      } else if (arg == "--max-crashes" && has_value) {
        max_crashes = parse_positive("--max-crashes", argv[++i]);
      } else if (arg == "--lease" && has_value) {
        lease_seconds = parse_seconds("--lease", argv[++i]);
      } else if (arg == "--heartbeat-timeout" && has_value) {
        heartbeat_timeout = parse_seconds("--heartbeat-timeout", argv[++i]);
      } else if (arg == "--drain-grace" && has_value) {
        drain_grace = parse_seconds("--drain-grace", argv[++i]);
      } else if (arg == "--wedge" && has_value) {
        wedge_seconds = parse_seconds("--wedge", argv[++i]);
      } else if (arg == "--campaign-runs" && has_value) {
        // 0 is the documented off state (SYNFI-only sweep), so scripts can
        // pass it explicitly.
        const long long value = parse_count("--campaign-runs", argv[++i]);
        scfi::require(value <= INT_MAX, "scfi_cli: --campaign-runs too large");
        campaign_runs = static_cast<int>(value);
      } else if (arg == "--campaign-cycles" && has_value) {
        campaign_cycles = parse_positive("--campaign-cycles", argv[++i]);
      } else if (arg == "--campaign-faults" && has_value) {
        campaign_faults = parse_positive("--campaign-faults", argv[++i]);
      } else if (arg == "--campaign-seed" && has_value) {
        campaign_seed = parse_count("--campaign-seed", argv[++i]);
      } else if (arg == "--campaign-variants" && has_value) {
        campaign_variants = argv[++i];
      } else if (arg == "--campaign-target" && has_value) {
        campaign_target = argv[++i];
        for (const std::string& t : scfi::split(campaign_target, ",")) {
          scfi::sweep::fault_target_of(t);  // validate now, use later
        }
      } else if (arg == "--max-exploitable-increase" && has_value) {
        thresholds.max_exploitable_increase =
            parse_count("--max-exploitable-increase", argv[++i]);
      } else if (arg == "--max-hijack-rate-increase" && has_value) {
        thresholds.max_hijack_rate_increase =
            parse_fraction("--max-hijack-rate-increase", argv[++i]);
      } else if (arg == "--max-detection-rate-drop" && has_value) {
        thresholds.max_detection_rate_drop =
            parse_fraction("--max-detection-rate-drop", argv[++i]);
      } else if (arg == "--wilson-z" && has_value) {
        thresholds.wilson_z = parse_zscore("--wilson-z", argv[++i]);
      } else if (arg == "--wilson-min-trials" && has_value) {
        thresholds.wilson_min_trials = parse_count("--wilson-min-trials", argv[++i]);
      } else if (arg == "--fail-on-removed") {
        thresholds.fail_on_removed = true;
      } else if (!arg.empty() && arg[0] != '-') {
        positional.push_back(arg);
      } else {
        return usage();
      }
    }
    const std::string file = positional.empty() ? "" : positional.front();

    if (command == "store-compact") {
      scfi::require(positional.size() == 1,
                    "scfi_cli: store-compact takes exactly one JSONL store path");
      const std::string& path = positional[0];
      // compact_file fails loudly (path + reason) on a missing or empty
      // store: compacting nothing means the caller pointed at the wrong
      // file, and a silent success would hide that.
      const scfi::sweep::ResultStore::CompactStats stats =
          scfi::sweep::ResultStore::compact_file(path, migrate);
      std::printf("store-compact: %zu line(s) -> %zu record(s) in %s\n", stats.lines,
                  stats.records, path.c_str());
      return 0;
    }

    if (command == "import-verilog") {
      scfi::require(positional.size() == 1,
                    "scfi_cli: import-verilog takes exactly one .v netlist path");
      scfi::rtlil::Design design;
      const std::vector<scfi::rtlil::Module*> modules =
          scfi::frontends::read_verilog_file(positional[0], design);
      for (const scfi::rtlil::Module* module : modules) {
        std::printf("module %s\n", module->name().c_str());
        for (const scfi::rtlil::Wire* w : module->wires()) {
          if (!w->is_input() && !w->is_output()) continue;
          std::printf("  %-6s %s", w->is_input() ? "input" : "output", w->name().c_str());
          if (w->width() > 1) std::printf(" [%d:0]", w->width() - 1);
          std::printf("\n");
        }
        const std::vector<scfi::fsm::ExtractedFsm> machines =
            scfi::fsm::extract_fsms(*module);
        if (machines.empty()) {
          std::printf("  no FSM found\n");
          continue;
        }
        for (const scfi::fsm::ExtractedFsm& machine : machines) {
          std::printf("  fsm @ %s: %s-encoded, %d state(s), %d input(s), %d output(s), "
                      "%zu transition(s)\n",
                      machine.state_wire.c_str(), scfi::fsm::encoding_name(machine.encoding),
                      machine.fsm.num_states(), machine.fsm.num_inputs(),
                      machine.fsm.num_outputs(), machine.fsm.transitions.size());
          for (std::size_t s = 0; s < machine.state_codes.size(); ++s) {
            std::printf("    %s = code %llu%s\n", machine.fsm.states[s].c_str(),
                        static_cast<unsigned long long>(machine.state_codes[s]),
                        s == 0 ? " (reset)" : "");
          }
          if (dot_dump) std::fputs(scfi::fsm::to_dot(machine.fsm).c_str(), stdout);
        }
      }
      return 0;
    }

    if (command == "sweep-diff") {
      scfi::require(positional.size() == 2,
                    "scfi_cli: sweep-diff takes exactly two JSONL store paths");
      const scfi::sweep::ResultStore baseline =
          scfi::sweep::ResultStore::load(positional[0]);
      scfi::require(baseline.size() > 0,
                    "scfi_cli: baseline store " + positional[0] + " is missing or empty");
      const scfi::sweep::ResultStore candidate =
          scfi::sweep::ResultStore::load(positional[1]);
      scfi::require(candidate.size() > 0,
                    "scfi_cli: candidate store " + positional[1] + " is missing or empty");
      // A store whose lines span schema versions would be half-migrated in
      // memory; a regression gate must compare records as they were written.
      baseline.require_uniform_schema("scfi_cli: sweep-diff: " + positional[0]);
      candidate.require_uniform_schema("scfi_cli: sweep-diff: " + positional[1]);
      const scfi::sweep::DiffReport report =
          scfi::sweep::diff_report(baseline, candidate, thresholds);
      std::fputs(report.render().c_str(), stdout);
      return report.gate_failed ? 1 : 0;
    }

    if (command == "sweep") {
      // Protection levels come from --levels and modules from --modules;
      // reject the single-FSM flags instead of silently ignoring them.
      scfi::require(!level_set, "scfi_cli: sweep takes --levels 2,3 (not -n)");
      scfi::require(file.empty(),
                    "scfi_cli: sweep runs over zoo/corpus modules (--modules/--corpus), "
                    "not a kiss2 file");
      // Module population: the built-in zoo, a .kiss2 corpus directory, or
      // a directory of Verilog netlists (FSMs extracted on the fly). Corpus
      // files that fail to parse/extract are loud per-module error records,
      // not sweep aborts.
      scfi::require(corpus_dir.empty() || corpus_verilog_dir.empty(),
                    "scfi_cli: --corpus and --corpus-verilog are mutually exclusive");
      const auto report_corpus = [](const auto& corpus) {
        for (const scfi::sweep::CorpusError& error : corpus.errors()) {
          std::fprintf(stderr, "corpus error: %s: %s\n", error.path.c_str(),
                       error.message.c_str());
        }
        std::printf("corpus %s: %zu module(s), %zu parse error(s)\n",
                    corpus.label().c_str(), corpus.size(), corpus.errors().size());
      };
      std::unique_ptr<scfi::sweep::ModuleSource> source;
      if (!corpus_dir.empty()) {
        auto corpus = std::make_unique<scfi::sweep::Kiss2CorpusSource>(corpus_dir);
        report_corpus(*corpus);
        source = std::move(corpus);
      } else if (!corpus_verilog_dir.empty()) {
        auto corpus = std::make_unique<scfi::sweep::VerilogCorpusSource>(corpus_verilog_dir);
        report_corpus(*corpus);
        source = std::move(corpus);
      } else {
        source = std::make_unique<scfi::sweep::ZooSource>();
      }
      // Job matrix: modules x levels x (regions x kinds x targets), all on
      // one backend and one attacker strength (--faults-k).
      std::vector<scfi::synfi::SynfiConfig> configs;
      for (const std::string& region : scfi::split(regions, ",")) {
        for (const std::string& kind : scfi::split(kinds, ",")) {
          for (const std::string& t : scfi::split(target, ",")) {
            scfi::synfi::SynfiConfig config;
            config.wire_prefix = region == "all" ? "" : region;
            config.kind = scfi::sweep::fault_kind_of(kind);
            config.target = scfi::sweep::fault_target_of(t);
            config.faults_k = faults_k;
            config.backend = scfi::sweep::backend_of(backend_name);
            config.sat_incremental = !no_incremental;
            configs.push_back(config);
          }
        }
      }
      std::vector<scfi::sweep::SweepJob> sweep_jobs =
          scfi::sweep::expand_jobs(*source, modules, parse_levels(levels), configs);
      if (campaign_runs > 0) {
        // Monte-Carlo campaign jobs ride along: one per module x level x
        // kind x campaign-target x campaign-variant, executed on the
        // streaming planner.
        std::vector<scfi::sim::CampaignConfig> campaign_configs;
        for (const std::string& kind : scfi::split(kinds, ",")) {
          for (const std::string& t : scfi::split(campaign_target, ",")) {
            scfi::sim::CampaignConfig config;
            config.runs = campaign_runs;
            config.cycles = campaign_cycles;
            config.fault.k = campaign_faults;
            config.seed = static_cast<std::uint64_t>(campaign_seed);
            config.fault.kinds = {scfi::sweep::fault_kind_of(kind)};
            config.fault.target = scfi::sweep::fault_target_of(t);
            campaign_configs.push_back(config);
          }
        }
        for (const std::string& variant : scfi::split(campaign_variants, ",")) {
          const std::vector<scfi::sweep::SweepJob> campaign_jobs =
              scfi::sweep::expand_campaign_jobs(*source, modules, parse_levels(levels),
                                                campaign_configs, variant);
          sweep_jobs.insert(sweep_jobs.end(), campaign_jobs.begin(), campaign_jobs.end());
        }
      }

      scfi::require(!resume || !sweep_out.empty(),
                    "scfi_cli: --resume needs --out (the JSONL store to resume from)");
      const std::string lanes_note = lanes == 0 ? "auto" : std::to_string(lanes);

      const auto print_record = [](const scfi::sweep::SweepResult& r) {
        if (r.status == scfi::sweep::JobStatus::kFailed) {
          std::printf("  %-48s FAILED after %d attempt(s): %s [%.3fs]\n", r.key().c_str(),
                      r.attempts, r.error.c_str(), r.seconds);
        } else if (r.job.type == scfi::sweep::JobType::kCampaign) {
          std::printf("  %-48s hijack=%.4f%% detection=%.2f%% effective=%d/%d [%.3fs]\n",
                      r.key().c_str(), 100.0 * r.campaign.hijack_rate(),
                      100.0 * r.campaign.detection_rate(), r.campaign.effective(),
                      r.campaign.runs, r.seconds);
        } else {
          std::printf("  %-48s injections=%6lld exploitable=%4lld (%.2f%%) [%.3fs]\n",
                      r.key().c_str(), static_cast<long long>(r.report.injections),
                      static_cast<long long>(r.report.exploitable), r.report.exploitable_pct(),
                      r.seconds);
        }
      };

      if (fleet > 0) {
        // Fleet mode: the supervisor forks workers that coordinate through
        // the shared store file, so --out is the medium, not an option, and
        // --fail-fast makes no sense (process isolation IS the failure
        // policy).
        scfi::require(!sweep_out.empty(),
                      "scfi_cli: --fleet needs --out (the shared JSONL store the "
                      "workers coordinate through)");
        scfi::require(!fail_fast,
                      "scfi_cli: --fail-fast is a single-process mode (the fleet "
                      "isolates failures per worker instead)");
        scfi::sweep::FleetConfig fleet_config;
        fleet_config.workers = fleet;
        fleet_config.max_crashes = max_crashes;
        fleet_config.lease_seconds = lease_seconds;
        fleet_config.heartbeat_timeout = heartbeat_timeout;
        fleet_config.drain_grace = drain_grace;
        fleet_config.wedge_seconds = wedge_seconds;
        fleet_config.job.jobs = 1;
        fleet_config.job.threads = threads;  // inner threads PER WORKER
        fleet_config.job.lanes = lanes;
        fleet_config.job.retries = retries;
        fleet_config.job.job_timeout = job_timeout;
        if (const char* poison = std::getenv("SCFI_FLEET_POISON")) {
          fleet_config.poison_key = poison;  // test hook: crash the claimer
        }
        std::printf(
            "sweep config: %zu job(s), fleet=%d threads=%d lanes=%s backend=%s%s out=%s\n",
            sweep_jobs.size(), fleet, threads, lanes_note.c_str(), backend_name.c_str(),
            resume ? " resume" : "", sweep_out.c_str());
        scfi::sweep::FleetSupervisor supervisor(fleet_config);
        const scfi::sweep::FleetStats stats =
            supervisor.run(sweep_jobs, sweep_out, resume, source.get());
        // The supervisor's final merge left a compacted finals-only store.
        const scfi::sweep::ResultStore merged = scfi::sweep::ResultStore::load(sweep_out);
        for (const scfi::sweep::SweepResult& r : merged.results()) print_record(r);
        std::printf(
            "sweep fleet: executed %d job(s), skipped %d, failed %d (quarantined %d), "
            "unfinished %d, crashes %d, respawns %d%s\n",
            stats.executed, stats.skipped, stats.failed, stats.quarantined,
            stats.unfinished, stats.crashes, stats.respawns,
            stats.drained ? ", drained" : "");
        return (stats.failed > 0 || stats.unfinished > 0) ? 1 : 0;
      }

      scfi::sweep::ResultStore store;
      // Resume tolerates the torn final line a killed run can leave (the
      // salvage is loudly warned and the torn job simply re-executes);
      // sweep-diff keeps loading strictly — a gate must not guess. The
      // salvaged store is rewritten before any new append: a torn tail has
      // no trailing newline, so appending straight onto it would glue the
      // next record into the garbage. The rewrite also compacts the
      // append history to latest-wins.
      if (resume) {
        store = scfi::sweep::ResultStore::load(sweep_out, /*recover_torn_tail=*/true);
        store.save(sweep_out);
      }
      scfi::sweep::SweepConfig sweep_config;
      sweep_config.jobs = jobs;
      sweep_config.threads = threads;
      sweep_config.lanes = lanes;
      sweep_config.retries = retries;
      sweep_config.job_timeout = job_timeout;
      sweep_config.fail_fast = fail_fast;
      const std::string out_note = sweep_out.empty() ? "" : " out=" + sweep_out;
      std::printf("sweep config: %zu job(s), jobs=%d threads=%d lanes=%s backend=%s%s%s\n",
                  sweep_jobs.size(), jobs, threads, lanes_note.c_str(), backend_name.c_str(),
                  resume ? " resume" : "", out_note.c_str());
      scfi::sweep::SweepOrchestrator orchestrator(sweep_config);
      const scfi::sweep::SweepStats stats =
          orchestrator.run(sweep_jobs, store, sweep_out, resume, source.get());
      for (const scfi::sweep::SweepResult& r : store.results()) print_record(r);
      std::printf("sweep: executed %d job(s), skipped %d, failed %d, retried %d\n",
                  stats.executed, stats.skipped, stats.failed, stats.retried);
      // Failure records do not abort the fleet, but they must not look like
      // a clean sweep to scripts either.
      return stats.failed > 0 ? 1 : 0;
    }

    const scfi::fsm::Fsm fsm = load_fsm(file);
    if (command == "dot") {
      std::cout << scfi::fsm::to_dot(fsm);
      return 0;
    }

    scfi::rtlil::Design design;
    scfi::core::ScfiConfig config;
    config.protection_level = level;
    scfi::core::ScfiReport report;
    const scfi::fsm::CompiledFsm hard =
        scfi::core::scfi_harden(fsm, design, config, &report);

    if (command == "harden") {
      std::printf("hardened %s: N=%d, %d states (%d-bit), %zu symbols (%d-bit), %d lane(s)\n",
                  fsm.name.c_str(), level, fsm.num_states(), report.plan.state_width,
                  report.plan.symbol_codes.size(), report.plan.symbol_width, report.lanes);
      if (!verilog_out.empty()) {
        std::ofstream out(verilog_out);
        scfi::backends::write_verilog(*hard.module, out);
        std::printf("wrote %s\n", verilog_out.c_str());
      } else {
        scfi::backends::write_verilog(*hard.module, std::cout);
      }
      if (!json_out.empty()) {
        std::ofstream out(json_out);
        scfi::backends::write_json(*hard.module, out);
        std::printf("wrote %s\n", json_out.c_str());
      }
      return 0;
    }
    if (command == "area") {
      scfi::rtlil::Design d2;
      const auto plain = scfi::fsm::compile_unprotected(fsm, d2);
      scfi::redundancy::RedundancyConfig rc;
      rc.protection_level = level;
      const auto redundant = scfi::redundancy::build_redundant(fsm, d2, rc);
      const double ua = scfi::ot::synthesize_area(*plain.module).total_ge;
      const double ra = scfi::ot::synthesize_area(*redundant.module).total_ge;
      const double sa = scfi::ot::synthesize_area(*hard.module).total_ge;
      std::printf("area [GE]: unprotected %.0f, redundancy %.0f (+%.0f%%), scfi %.0f (+%.0f%%)\n",
                  ua, ra, 100.0 * (ra - ua) / ua, sa, 100.0 * (sa - ua) / ua);
      return 0;
    }
    if (command == "synfi") {
      scfi::synfi::SynfiConfig synfi_config;
      synfi_config.backend = scfi::sweep::backend_of(backend_name);
      synfi_config.faults_k = faults_k;
      synfi_config.target = scfi::sweep::fault_target_of(target);
      synfi_config.lanes = lanes > 0 ? lanes : scfi::synfi::auto_lanes(*hard.module);
      synfi_config.threads = threads;
      synfi_config.sat_incremental = !no_incremental;
      std::printf(
          "synfi config: backend=%s k=%d target=%s lanes=%d threads=%d incremental=%s\n",
          backend_name.c_str(), faults_k, target.c_str(), synfi_config.lanes, threads,
          no_incremental ? "no" : "yes");
      scfi::synfi::Analyzer analyzer(fsm, hard);
      const scfi::synfi::SynfiReport r = analyzer.run(synfi_config);
      std::printf("synfi: %lld sites, %lld injections, %lld exploitable (%.2f%%), %lld detected\n",
                  static_cast<long long>(r.sites), static_cast<long long>(r.injections),
                  static_cast<long long>(r.exploitable), r.exploitable_pct(),
                  static_cast<long long>(r.detected));
      // The smallest exploitable fault count up to --faults-k; for an
      // encoding with minimum distance d this is d once k reaches it.
      const int degree = scfi::synfi::measured_protection_degree(analyzer, synfi_config,
                                                                 faults_k);
      if (degree > 0) {
        std::printf("protection degree: %d (smallest exploitable k, probed up to %d)\n",
                    degree, faults_k);
      } else {
        std::printf("protection degree: > %d (no exploitable fault set up to k=%d)\n",
                    faults_k, faults_k);
      }
      return 0;
    }
    if (command == "attack") {
      scfi::sim::CampaignConfig campaign;
      campaign.runs = 1000;
      campaign.cycles = 20;
      // --faults is the historical name, --faults-k the threat-model
      // spelling shared with synfi/sweep; either sets the per-run count.
      campaign.fault.k = faults_k > 1 ? faults_k : faults;
      campaign.fault.target = scfi::sweep::fault_target_of(target);
      campaign.lanes = lanes > 0 ? lanes : scfi::synfi::auto_lanes(*hard.module);
      campaign.threads = threads;
      std::printf("attack config: k=%d target=%s lanes=%d threads=%d\n", campaign.fault.k,
                  target.c_str(), campaign.lanes, threads);
      const auto r = scfi::sim::run_campaign(fsm, hard, campaign);
      std::printf("attack with %d fault(s): hijack %.2f%%, detected %.2f%% of effective,"
                  " masked %d/%d\n",
                  campaign.fault.k, 100.0 * r.hijacked / r.runs, 100.0 * r.detection_rate(),
                  r.masked, r.runs);
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
