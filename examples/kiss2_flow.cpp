// KISS2 flow: consume an FSM in the classic MCNC benchmark format, harden
// it, and emit DOT (CFG), Verilog (hardened netlist) and a KISS2 round-trip
// — the interoperability path for third-party state machines.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "backends/verilog.h"
#include "core/harden.h"
#include "fsm/dot.h"
#include "fsm/kiss2.h"
#include "rtlil/design.h"

namespace {

// dk27-style tiny MCNC benchmark (inlined so the example is self-contained;
// the original's unreachable state7 is pruned so the spec passes check()).
const char* kKiss2 = R"(
.i 1
.o 2
.s 6
.p 12
.r START
0 START state6 00
1 START state4 00
0 state2 state5 00
1 state2 state3 00
0 state3 state5 00
1 state3 START  01
0 state4 state6 00
1 state4 state6 10
0 state5 START  10
1 state5 state2 10
0 state6 state5 01
1 state6 state2 01
.e
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kKiss2;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  scfi::fsm::Fsm fsm = scfi::fsm::parse_kiss2(text, "dk27");
  std::printf("parsed '%s': %d states, %zu transitions, %d inputs\n", fsm.name.c_str(),
              fsm.num_states(), fsm.transitions.size(), fsm.num_inputs());

  std::printf("\n--- control-flow graph (DOT) ---\n%s\n", scfi::fsm::to_dot(fsm).c_str());

  scfi::rtlil::Design design;
  scfi::core::ScfiConfig config;
  config.protection_level = 2;
  scfi::core::ScfiReport report;
  const scfi::fsm::CompiledFsm hard = scfi::core::scfi_harden(fsm, design, config, &report);
  std::printf("--- hardened: %d CFG edges, %d lane(s), modifier width %d ---\n",
              report.cfg_edges, report.lanes, report.mod_width);

  std::printf("\n--- hardened netlist (Verilog) ---\n");
  scfi::backends::write_verilog(*hard.module, std::cout);

  std::printf("\n--- KISS2 round-trip ---\n%s", scfi::fsm::write_kiss2(fsm).c_str());
  return 0;
}
