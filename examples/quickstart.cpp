// Quickstart: define a small FSM, harden it with SCFI, walk its control
// flow, then inject a fault and watch the machine collapse into the
// terminal ERROR state with the alert raised.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/harden.h"
#include "rtlil/design.h"
#include "sim/netlist_sim.h"

int main() {
  // 1. Describe the FSM (the paper's Figure 2 shape).
  scfi::fsm::Fsm fsm;
  fsm.name = "demo";
  fsm.inputs = {"start", "done"};
  fsm.outputs = {"busy"};
  fsm.add_transition("IDLE", "1-", "RUN", "1");
  fsm.add_transition("RUN", "-1", "DONE", "0");
  fsm.add_transition("DONE", "--", "IDLE", "0");

  // 2. Harden it: protection level N=2, default MDS construction.
  scfi::rtlil::Design design;
  scfi::core::ScfiConfig config;
  config.protection_level = 2;
  scfi::core::ScfiReport report;
  const scfi::fsm::CompiledFsm hard = scfi::core::scfi_harden(fsm, design, config, &report);

  std::printf("hardened module '%s': %d-bit state, %d-bit control symbols, %d MDS lane(s)\n",
              hard.module->name().c_str(), hard.state_width, hard.symbol_width, report.lanes);
  for (const auto& [symbol, code] : hard.symbol_codes) {
    std::printf("  symbol '%s' -> codeword 0x%llx\n", symbol.c_str(),
                static_cast<unsigned long long>(code));
  }

  // 3. Walk the fault-free control flow.
  scfi::sim::Simulator sim(*hard.module);
  const auto drive = [&](const std::string& symbol) {
    sim.set_input(hard.symbol_input_wire, hard.symbol_codes.at(symbol));
    sim.eval();
    const std::uint64_t alert = sim.get(hard.alert_wire);  // sampled pre-edge
    sim.step();
    std::printf("  drove '%s' -> state 0x%llx (alert=%llu)\n", symbol.c_str(),
                static_cast<unsigned long long>(sim.get(hard.state_wire)),
                static_cast<unsigned long long>(alert));
  };
  std::printf("\nfault-free walk IDLE -> RUN -> DONE -> IDLE:\n");
  drive("1-");
  drive("-1");
  drive("--");

  // 4. Now flip one bit of the state register (fault target FT1).
  std::printf("\ninjecting a single bit-flip into the state register:\n");
  const scfi::rtlil::Wire* state = hard.module->wire(hard.state_wire);
  sim.inject(scfi::rtlil::SigBit(state, 0), scfi::sim::FaultKind::kTransientFlip);
  sim.set_input(hard.symbol_input_wire, hard.symbol_codes.at("1-"));
  sim.eval();
  std::printf("  alert (zero latency): %llu\n",
              static_cast<unsigned long long>(sim.get(hard.alert_wire)));
  sim.step();
  std::printf("  state after the faulted cycle: 0x%llx (ERROR is 0x%llx)\n",
              static_cast<unsigned long long>(sim.get(hard.state_wire)),
              static_cast<unsigned long long>(hard.error_code));

  // 5. The ERROR state is terminal.
  sim.set_input(hard.symbol_input_wire, hard.symbol_codes.at("--"));
  sim.step();
  std::printf("  one more (valid) cycle later: state 0x%llx, alert=%llu — trapped.\n",
              static_cast<unsigned long long>(sim.get(hard.state_wire)),
              static_cast<unsigned long long>(sim.get(hard.alert_wire)));
  return 0;
}
