#!/usr/bin/env bash
# Continuous-integration entry point: tier-1 verify (configure, build, ctest)
# plus a smoke run of the micro-benchmarks. Mirrors the verify command in
# ROADMAP.md; run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

# Benchmark smoke test: make sure the perf harness still runs end to end.
if [[ -x build/bench_micro ]]; then
  build/bench_micro --benchmark_min_time=0.01 --benchmark_filter='BM_Simulator|BM_Campaign'
else
  echo "bench_micro not built (google-benchmark unavailable); skipping bench smoke"
fi

# SYNFI engine smoke test (one timing iteration): exercises the batched
# exhaustive backend, the incremental SAT backend, and the reusable
# Analyzer, and exits non-zero if their reports ever diverge from the
# scalar/rebuild/per-call baselines.
build/bench_sec64_synfi --quick

# Sweep orchestrator smoke test: run a small module x kind matrix streaming
# into a JSONL store, then re-run with --resume and assert that every job is
# skipped (nothing re-executed).
SWEEP_OUT="$(mktemp -d)/sweep_smoke.jsonl"
trap 'rm -rf "$(dirname "$SWEEP_OUT")"' EXIT
build/scfi_cli sweep --modules 'pwrmgr_fsm,adc_ctrl_fsm' --levels 2 \
  --kinds flip,stuck1 --jobs 2 --threads 2 --out "$SWEEP_OUT"
[[ "$(wc -l < "$SWEEP_OUT")" -eq 4 ]] || { echo "sweep smoke: expected 4 JSONL records"; exit 1; }
RESUME_LOG="$(build/scfi_cli sweep --modules 'pwrmgr_fsm,adc_ctrl_fsm' --levels 2 \
  --kinds flip,stuck1 --jobs 2 --threads 2 --out "$SWEEP_OUT" --resume)"
echo "$RESUME_LOG" | tail -1
echo "$RESUME_LOG" | grep -q 'executed 0 job(s), skipped 4' \
  || { echo "sweep smoke: --resume re-executed jobs"; exit 1; }
