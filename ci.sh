#!/usr/bin/env bash
# Continuous-integration entry point: tier-1 verify (configure, build, ctest)
# plus a smoke run of the micro-benchmarks. Mirrors the verify command in
# ROADMAP.md; run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

# Benchmark smoke test: make sure the perf harness still runs end to end.
if [[ -x build/bench_micro ]]; then
  build/bench_micro --benchmark_min_time=0.01 --benchmark_filter='BM_Simulator|BM_Campaign'
else
  echo "bench_micro not built (google-benchmark unavailable); skipping bench smoke"
fi

# SYNFI engine smoke test (one timing iteration): exercises the batched
# exhaustive backend and the incremental SAT backend, and exits non-zero if
# their reports ever diverge from the scalar/rebuild baselines.
build/bench_sec64_synfi --quick
