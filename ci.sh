#!/usr/bin/env bash
# Continuous-integration entry point: tier-1 verify (configure, build, ctest)
# plus a smoke run of the micro-benchmarks, the SYNFI engines, the sweep
# fleet (SYNFI + Monte-Carlo campaign jobs, over the zoo and the committed
# KISS2 corpus), Wilson-bounded sweep-diff regression gates against the
# committed baseline stores, and crash smokes for both the JSONL store
# (SIGKILL + torn tail + --resume) and the multi-process fleet supervisor
# (SIGKILL a worker mid-sweep; poison-job quarantine). Mirrors the verify
# command in ROADMAP.md; run from the repository root.
#
# CI_SANITIZE=1 additionally builds an ASan+UBSan tree (build-asan/) and
# runs the fast ctest subset under it.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

# Forced-portable lane blocks: SCFI_LANE_WORDS_CAP=1 clamps every *derived*
# lane-block width (campaign/SYNFI executors) to the one-word 64-lane
# layout, so the parallel-engine suites re-verify bit-identity with the
# multi-word SIMD path switched off — the coverage a machine without wide
# vectors would get. Explicitly-constructed wide Simulators are not
# clamped, so the wide unit tests still run wide here.
SCFI_LANE_WORDS_CAP=1 ctest --test-dir build --output-on-failure -j "$(nproc)" \
  -R 'SimParallel|SynfiParallel|CorpusParallel|ZooParallel|Campaign|Sweep'

# Optional sanitizer lane: a second compilation with AddressSanitizer +
# UndefinedBehaviorSanitizer over the fast suites (base/store/planner/sweep
# units, not the minutes-long corpus sweeps) so memory bugs in the hot
# engines surface without slowing the tier-1 path.
if [[ "${CI_SANITIZE:-0}" == "1" ]]; then
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSCFI_BUILD_BENCHMARKS=OFF -DSCFI_BUILD_EXAMPLES=OFF \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan -j "$(nproc)"
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
    -R 'Rng|Error|Strutil|SimParallel|ResultStore|DiffReport|SweepJobs|GlobMatch|Kiss2|ModuleSource|WilsonInterval|CancelToken|BackoffPolicy|LeaseLedger|FleetSupervisor|VerilogLexer|VerilogParse|FsmExtract|CardinalityCounter|KFaultCampaign|ResultStoreKFault|AutoLanes'
fi

# Verilog write->read roundtrip gate: every zoo module (unprotected and SCFI-
# hardened) is emitted by the writer, re-parsed by the frontend, and must
# simulate bit-identically over pinned stimulus; the extraction suite then
# proves each zoo FSM emitted through the writer is recovered
# transition-equivalent (exhaustive product-state bisimulation). These run in
# the tier-1 ctest above too — the named re-run keeps the lane loud and
# self-documenting even if the tier-1 filter ever changes.
ctest --test-dir build --output-on-failure -R 'VerilogRoundtrip|FsmExtract'

# Benchmark smoke test: make sure the perf harness still runs end to end.
if [[ -x build/bench_micro ]]; then
  build/bench_micro --benchmark_min_time=0.01 \
    --benchmark_filter='BM_Simulator|BM_Campaign|BM_SynfiInjection'
else
  echo "bench_micro not built (google-benchmark unavailable); skipping bench smoke"
fi

# SYNFI engine smoke test (one timing iteration): exercises the batched
# exhaustive backend, the incremental SAT backend, and the reusable
# Analyzer, and exits non-zero if their reports ever diverge from the
# scalar/rebuild/per-call baselines.
build/bench_sec64_synfi --quick

# Campaign-at-scale smoke: the streaming planner must finish an
# over-plan-cap campaign in O(lanes) memory (one quick iteration; the full
# comparison lands in BENCH_sim.json via scripts/bench_to_json.sh).
build/bench_campaign_scale --quick

# Sweep fleet smoke test: run a small module x kind matrix — SYNFI and
# Monte-Carlo campaign jobs side by side, the campaigns split per target
# class (any + state-register-only) so the schema-v6 threat-model fields
# are exercised end to end — streaming into a JSONL store, then re-run with
# --resume and assert that every job is skipped (nothing re-executed).
# NOTE: grep reads from a herestring, not an `echo |` pipe — under
# `set -o pipefail` grep -q exiting at the first match can SIGPIPE the
# echo side on large logs and fail the whole script.
SWEEP_OUT="$(mktemp -d)/sweep_smoke.jsonl"
trap 'rm -rf "$(dirname "$SWEEP_OUT")"' EXIT
build/scfi_cli sweep --modules 'pwrmgr_fsm,adc_ctrl_fsm' --levels 2 \
  --kinds flip,stuck1 --campaign-runs 2000 --campaign-cycles 12 \
  --campaign-target any,state --jobs 2 --threads 2 --out "$SWEEP_OUT"
[[ "$(wc -l < "$SWEEP_OUT")" -eq 12 ]] || { echo "sweep smoke: expected 12 JSONL records"; exit 1; }
RESUME_LOG="$(build/scfi_cli sweep --modules 'pwrmgr_fsm,adc_ctrl_fsm' --levels 2 \
  --kinds flip,stuck1 --campaign-runs 2000 --campaign-cycles 12 \
  --campaign-target any,state --jobs 2 --threads 2 --out "$SWEEP_OUT" --resume)"
tail -1 <<<"$RESUME_LOG"
grep -q 'executed 0 job(s), skipped 12' <<<"$RESUME_LOG" \
  || { echo "sweep smoke: --resume re-executed jobs"; exit 1; }

# Regression gate: diff the fresh sweep against the committed baseline.
# Exits non-zero when a verdict regresses (new exploitable injection, a
# campaign rate whose Wilson interval separates from the baseline's, or a
# key that vanished); sub-threshold metric drift is printed but does not
# gate.
build/scfi_cli sweep-diff bench/baselines/sweep_smoke.jsonl "$SWEEP_OUT" --fail-on-removed

# KISS2-corpus sweep smoke: the same fleet run drawing modules from the
# committed bench/corpus/ directory instead of the zoo (SYNFI + campaign
# jobs per .kiss2 file), gated against its own committed baseline. A
# self-diff must also be clean (exit 0).
CORPUS_OUT="$(dirname "$SWEEP_OUT")/corpus_smoke.jsonl"
build/scfi_cli sweep --corpus bench/corpus --levels 2 --kinds flip \
  --campaign-runs 2000 --campaign-cycles 12 --campaign-target any,state \
  --jobs 2 --threads 2 --out "$CORPUS_OUT"
[[ "$(wc -l < "$CORPUS_OUT")" -eq 9 ]] || { echo "corpus smoke: expected 9 JSONL records"; exit 1; }
build/scfi_cli sweep-diff "$CORPUS_OUT" "$CORPUS_OUT"
build/scfi_cli sweep-diff bench/baselines/corpus_smoke.jsonl "$CORPUS_OUT" --fail-on-removed

# Verilog-corpus sweep smoke: the front-door path end to end — parse every
# committed bench/corpus-verilog/ netlist, extract its FSM(s), and sweep the
# extracted machines (SYNFI + campaign jobs), gated against the committed
# baseline. The corpus mixes writer-emitted zoo netlists with hand-written
# ones (non-ANSI ports, primitives, escaped identifiers), so a frontend or
# extraction regression surfaces here as a parse error or a key change.
VCORPUS_OUT="$(dirname "$SWEEP_OUT")/corpus_verilog_smoke.jsonl"
VCORPUS_LOG="$(build/scfi_cli sweep --corpus-verilog bench/corpus-verilog --levels 2 \
  --kinds flip --campaign-runs 2000 --campaign-cycles 12 --jobs 2 --threads 2 \
  --out "$VCORPUS_OUT" 2>&1)"
tail -1 <<<"$VCORPUS_LOG"
grep -q 'corpus corpus-verilog: 9 module(s), 0 parse error(s)' <<<"$VCORPUS_LOG" \
  || { echo "corpus-verilog smoke: expected 9 clean modules"; exit 1; }
[[ "$(wc -l < "$VCORPUS_OUT")" -eq 18 ]] \
  || { echo "corpus-verilog smoke: expected 18 JSONL records"; exit 1; }
build/scfi_cli sweep-diff "$VCORPUS_OUT" "$VCORPUS_OUT"
build/scfi_cli sweep-diff bench/baselines/corpus_verilog_smoke.jsonl "$VCORPUS_OUT" \
  --fail-on-removed

# Malformed-input smoke: the frontend must reject broken netlists with a
# clean ScfiError exit (status 1 and an "error:" diagnostic naming the
# file) — never a crash, an abort, or a silent success.
MALFORMED_DIR="$(dirname "$SWEEP_OUT")/malformed"
mkdir -p "$MALFORMED_DIR"
printf 'module trunc (input a, output y);\n  assign y = ~a;\n' \
  > "$MALFORMED_DIR/truncated.v"
printf 'module m (output y);\n  assign y = 1%sb0;\nendmodule\nendmodule\n' "'" \
  > "$MALFORMED_DIR/unbalanced.v"
printf 'module m (output y);\n  assign y = 2%sb11111111;\nendmodule\n' "'" \
  > "$MALFORMED_DIR/bogus_width.v"
for bad in truncated unbalanced bogus_width; do
  set +e
  BAD_LOG="$(build/scfi_cli import-verilog "$MALFORMED_DIR/$bad.v" 2>&1)"
  BAD_STATUS=$?
  set -e
  [[ "$BAD_STATUS" -eq 1 ]] \
    || { echo "malformed smoke: $bad.v exited $BAD_STATUS, want 1"; exit 1; }
  grep -q "error: .*$bad\.v" <<<"$BAD_LOG" \
    || { echo "malformed smoke: $bad.v diagnostic did not name the file: $BAD_LOG"; exit 1; }
done

# Crash-injection smoke: SIGKILL an identical sweep mid-run, tear the JSONL
# tail (simulating a write cut off mid-record), and assert that --resume
# salvages the store and reconstructs it bit-identical to the uninterrupted
# run (modulo per-job timing). The campaign runs are sized up so the kill
# lands mid-fleet on most machines; if the sweep wins the race the torn
# tail alone still exercises recovery.
CRASH_FULL="$(dirname "$SWEEP_OUT")/crash_full.jsonl"
CRASH_KILL="$(dirname "$SWEEP_OUT")/crash_kill.jsonl"
CRASH_ARGS=(sweep --corpus bench/corpus --levels 2 --kinds flip
  --campaign-runs 200000 --campaign-cycles 12 --jobs 1 --threads 1)
build/scfi_cli "${CRASH_ARGS[@]}" --out "$CRASH_FULL" > /dev/null
build/scfi_cli "${CRASH_ARGS[@]}" --out "$CRASH_KILL" > /dev/null 2>&1 &
CRASH_PID=$!
for _ in $(seq 1 200); do [[ -s "$CRASH_KILL" ]] && break; sleep 0.05; done
kill -9 "$CRASH_PID" 2> /dev/null || true
wait "$CRASH_PID" 2> /dev/null || true
[[ -s "$CRASH_KILL" ]] || { echo "crash smoke: no records survived SIGKILL"; exit 1; }
truncate -s -7 "$CRASH_KILL"
CRASH_RESUME_LOG="$(build/scfi_cli "${CRASH_ARGS[@]}" --out "$CRASH_KILL" --resume 2>&1)"
grep -q 'dropping torn final line' <<<"$CRASH_RESUME_LOG" \
  || { echo "crash smoke: torn tail was not salvaged on --resume"; exit 1; }
build/scfi_cli sweep-diff "$CRASH_FULL" "$CRASH_KILL" --fail-on-removed
diff <(sed 's/"seconds":[0-9.eE+-]*//' "$CRASH_FULL" | LC_ALL=C sort) \
     <(sed 's/"seconds":[0-9.eE+-]*//' "$CRASH_KILL" | LC_ALL=C sort) \
  || { echo "crash smoke: resumed store differs from uninterrupted run"; exit 1; }
build/scfi_cli store-compact "$CRASH_KILL"

# Fleet smoke: the same corpus matrix through the supervised multi-process
# fleet (--fleet 2), with one worker SIGKILLed mid-sweep. The supervisor
# must reap the dead worker, release its lease, respawn the slot, and still
# finish cleanly with a store bit-identical to the single-process run
# (modulo timing/attempts/worker tags — all diagnostics, stripped below).
# Workers are forked children of the supervisor (fork, no exec), so they
# share its process name and pgrep -P is how we pick a victim; if the kill
# races a fast sweep and misses, the run still gates on bit-identity.
FLEET_OUT="$(dirname "$SWEEP_OUT")/fleet_smoke.jsonl"
FLEET_LOG="$(dirname "$SWEEP_OUT")/fleet_smoke.log"
build/scfi_cli "${CRASH_ARGS[@]}" --fleet 2 --out "$FLEET_OUT" > "$FLEET_LOG" 2>&1 &
FLEET_PID=$!
WORKER_PID=""
for _ in $(seq 1 200); do
  WORKER_PID="$(pgrep -P "$FLEET_PID" | head -n1 || true)"
  [[ -n "$WORKER_PID" ]] && break
  sleep 0.05
done
[[ -n "$WORKER_PID" ]] || { cat "$FLEET_LOG"; echo "fleet smoke: no worker child appeared"; exit 1; }
kill -9 "$WORKER_PID" 2> /dev/null || true
wait "$FLEET_PID" || { cat "$FLEET_LOG"; echo "fleet smoke: supervisor exited non-zero"; exit 1; }
tail -1 "$FLEET_LOG"
NORMALIZE='s/"(seconds|attempts)":[0-9.eE+-]+,?//g; s/"worker":"[^"]*",?//g; s/,\}/}/g'
diff <(sed -E "$NORMALIZE" "$CRASH_FULL" | LC_ALL=C sort) \
     <(sed -E "$NORMALIZE" "$FLEET_OUT" | LC_ALL=C sort) \
  || { echo "fleet smoke: fleet store differs from single-process run"; exit 1; }

# Poison-job quarantine smoke: SCFI_FLEET_POISON makes the worker that
# claims the named key SIGKILL itself, so the job crashes its worker on
# every attempt. After --max-crashes (default 2) crashes the supervisor
# must quarantine the key as a failed record with error "crashed", finish
# every other job, and exit non-zero for the failed key.
POISON_OUT="$(dirname "$SWEEP_OUT")/poison_smoke.jsonl"
POISON_KEY="$(grep -o '"key":"[^"]*"' "$CRASH_FULL" | head -n1 | cut -d'"' -f4)"
if SCFI_FLEET_POISON="$POISON_KEY" build/scfi_cli "${CRASH_ARGS[@]}" --fleet 2 \
    --out "$POISON_OUT" > "$FLEET_LOG" 2>&1; then
  cat "$FLEET_LOG"; echo "poison smoke: fleet exited zero with a quarantined job"; exit 1
fi
tail -1 "$FLEET_LOG"
grep -q 'failed 1 (quarantined 1)' "$FLEET_LOG" \
  || { cat "$FLEET_LOG"; echo "poison smoke: expected exactly one quarantined job"; exit 1; }
POISON_REC="$(grep -F "\"key\":\"$POISON_KEY\"" "$POISON_OUT")"
[[ "$POISON_REC" == *'"status":"failed"'* && "$POISON_REC" == *'"error":"crashed"'* ]] \
  || { echo "poison smoke: poisoned job was not quarantined as crashed"; exit 1; }
