// Area reporting over mapped (gate-level) netlists.
#pragma once

#include <map>
#include <string>

#include "rtlil/module.h"

namespace scfi::synth {

struct AreaReport {
  double total_ge = 0.0;                ///< total area in gate equivalents
  int cells = 0;                        ///< number of cells
  int ffs = 0;                          ///< number of flip-flops
  std::map<std::string, int> histogram; ///< cell-type name -> count
};

/// Computes the report; the module must be gate-level (post lowering).
AreaReport area_report(const rtlil::Module& module);

}  // namespace scfi::synth
