// Netlist optimization passes (constant folding, buffer sweeping, dead-code
// elimination, structural common-subexpression sharing).
//
// These run after lowering and before area/timing analysis, mirroring the
// `opt`/`clean`/`share` steps of a conventional synthesis flow. All passes
// preserve the module's I/O behaviour.
#pragma once

#include "rtlil/module.h"

namespace scfi::synth {

struct OptStats {
  int folded = 0;   ///< cells replaced by constants or simplified
  int swept = 0;    ///< buffers removed
  int dead = 0;     ///< unread cells removed
  int shared = 0;   ///< duplicate cells merged
  int total() const { return folded + swept + dead + shared; }
};

/// Runs fold/sweep/clean/share to a fixpoint. Returns cumulative statistics.
OptStats optimize(rtlil::Module& module);

}  // namespace scfi::synth
