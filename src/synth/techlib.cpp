#include "synth/techlib.h"

#include "base/error.h"

namespace scfi::synth {
namespace {

// Global delay calibration: the raw numbers below describe a fast general-
// purpose corner; the paper's flow (OpenTitan at 125 MHz, Fig. 8 sweeping
// 3200..6000 ps) corresponds to a low-leakage low-voltage corner, modeled by
// scaling intrinsic delays and (more strongly) load-dependent delays — weak
// X1 drivers are what timing-driven sizing trades area against.
constexpr double kIntrinsicScale = 3.4;
constexpr double kSlopeScale = 12.0;

constexpr GateInfo make_gate(const char* name, double area, double intrinsic, double slope) {
  // X2 ~ 1.4x area / 0.55x slope; X4 ~ 2.2x area / 0.28x slope. Input cap
  // grows with drive (bigger transistors load the previous stage).
  return GateInfo{
      name,
      {GateTiming{area, intrinsic * kIntrinsicScale, slope * kSlopeScale, 1.0},
       GateTiming{area * 1.4, intrinsic * 0.95 * kIntrinsicScale, slope * 0.55 * kSlopeScale,
                  1.3},
       GateTiming{area * 2.2, intrinsic * 0.90 * kIntrinsicScale, slope * 0.28 * kSlopeScale,
                  1.6}},
  };
}

const GateInfo kInv = make_gate("INV", 0.67, 8.0, 6.0);
const GateInfo kBuf = make_gate("BUF", 1.00, 12.0, 5.0);
const GateInfo kNand2 = make_gate("NAND2", 1.00, 10.0, 7.0);
const GateInfo kNor2 = make_gate("NOR2", 1.00, 12.0, 8.0);
const GateInfo kAnd2 = make_gate("AND2", 1.33, 16.0, 7.0);
const GateInfo kOr2 = make_gate("OR2", 1.33, 18.0, 8.0);
const GateInfo kXor2 = make_gate("XOR2", 2.00, 22.0, 9.0);
const GateInfo kXnor2 = make_gate("XNOR2", 2.00, 22.0, 9.0);
const GateInfo kMux2 = make_gate("MUX2", 2.33, 24.0, 9.0);
const GateInfo kAoi21 = make_gate("AOI21", 1.33, 14.0, 8.0);
const GateInfo kOai21 = make_gate("OAI21", 1.33, 14.0, 8.0);
const GateInfo kDff = make_gate("DFF", 4.67, 28.0, 6.0);

}  // namespace

bool techlib_has(rtlil::CellType type) {
  using rtlil::CellType;
  switch (type) {
    case CellType::kGateInv:
    case CellType::kGateBuf:
    case CellType::kGateNand2:
    case CellType::kGateNor2:
    case CellType::kGateAnd2:
    case CellType::kGateOr2:
    case CellType::kGateXor2:
    case CellType::kGateXnor2:
    case CellType::kGateMux2:
    case CellType::kGateAoi21:
    case CellType::kGateOai21:
    case CellType::kGateDff:
      return true;
    default:
      return false;
  }
}

const GateInfo& techlib_gate(rtlil::CellType type) {
  using rtlil::CellType;
  switch (type) {
    case CellType::kGateInv: return kInv;
    case CellType::kGateBuf: return kBuf;
    case CellType::kGateNand2: return kNand2;
    case CellType::kGateNor2: return kNor2;
    case CellType::kGateAnd2: return kAnd2;
    case CellType::kGateOr2: return kOr2;
    case CellType::kGateXor2: return kXor2;
    case CellType::kGateXnor2: return kXnor2;
    case CellType::kGateMux2: return kMux2;
    case CellType::kGateAoi21: return kAoi21;
    case CellType::kGateOai21: return kOai21;
    case CellType::kGateDff: return kDff;
    default:
      break;
  }
  unreachable(std::string("techlib_gate: not a mapped gate: ") + cell_type_name(type));
}

double cell_area_ge(const rtlil::Cell& cell) {
  const GateInfo& info = techlib_gate(cell.type());
  check(cell.drive() >= 0 && cell.drive() < kNumDrives, "cell_area_ge: bad drive index");
  return info.drive[static_cast<std::size_t>(cell.drive())].area_ge;
}

double dff_clk_to_q_ps() { return 28.0 * kIntrinsicScale; }
double dff_setup_ps() { return 25.0 * kIntrinsicScale; }

}  // namespace scfi::synth
