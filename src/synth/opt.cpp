#include "synth/opt.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "base/error.h"
#include "rtlil/validate.h"

namespace scfi::synth {
namespace {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;

class Optimizer {
 public:
  explicit Optimizer(Module& module) : m_(module) {}

  OptStats run() {
    OptStats total;
    for (int iter = 0; iter < 50; ++iter) {
      OptStats round;
      round.folded = fold_pass();
      round.swept = sweep_pass();
      round.dead = dead_pass();
      round.shared = share_pass();
      total.folded += round.folded;
      total.swept += round.swept;
      total.dead += round.dead;
      total.shared += round.shared;
      if (round.total() == 0) break;
    }
    return total;
  }

 private:
  SigBit resolve(SigBit bit) {
    while (true) {
      const auto it = repl_.find(bit);
      if (it == repl_.end()) return bit;
      bit = it->second;
    }
  }

  void apply_repl_to_inputs() {
    if (repl_.empty()) return;
    for (Cell* cell : m_.cells()) {
      for (const std::string& p : rtlil::input_ports(cell->type())) {
        if (!cell->has_port(p)) continue;
        const SigSpec& old = cell->port(p);
        std::vector<SigBit> bits;
        bits.reserve(static_cast<std::size_t>(old.width()));
        bool changed = false;
        for (const SigBit& b : old.bits()) {
          SigBit r = resolve(b);
          changed |= !(r == b);
          bits.push_back(r);
        }
        if (changed) cell->set_port(p, SigSpec(std::move(bits)));
      }
    }
    repl_.clear();
  }

  bool output_is_port(const Cell& cell) {
    for (const SigBit& b : cell.port(rtlil::output_port(cell.type())).bits()) {
      if (!b.is_const() && (b.wire->is_output() || b.wire->is_input())) return true;
    }
    return false;
  }

  /// Replaces the cell's function with "Y = src" while keeping the Y wire
  /// driven: either registers a bit replacement and deletes the cell, or (for
  /// port-driving cells) converts it into a buffer.
  void replace_with_bit(Cell* cell, SigBit src, std::vector<Cell*>& dead) {
    if (output_is_port(*cell)) {
      cell->set_type(CellType::kGateBuf);
      cell->unset_port("B");
      cell->unset_port("C");
      cell->unset_port("S");
      cell->set_port("A", SigSpec(src));
    } else {
      repl_[cell->port("Y").bit(0)] = src;
      dead.push_back(cell);
    }
  }

  void convert_to_inv(Cell* cell, SigBit a) {
    cell->set_type(CellType::kGateInv);
    cell->unset_port("B");
    cell->unset_port("C");
    cell->unset_port("S");
    cell->set_port("A", SigSpec(a));
  }

  void convert_to_2in(Cell* cell, CellType type, SigBit a, SigBit b) {
    cell->set_type(type);
    cell->unset_port("C");
    cell->unset_port("S");
    cell->set_port("A", SigSpec(a));
    cell->set_port("B", SigSpec(b));
  }

  int fold_pass() {
    int changes = 0;
    std::vector<Cell*> dead;
    for (Cell* cell : m_.cells()) {
      const CellType t = cell->type();
      if (rtlil::is_ff(t) || t == CellType::kGateBuf || rtlil::is_word_level(t)) continue;
      auto in = [&](const char* p) { return resolve(cell->port(p).bit(0)); };
      const auto is0 = [](SigBit b) { return b.is_const() && !b.const_value(); };
      const auto is1 = [](SigBit b) { return b.is_const() && b.const_value(); };
      const SigBit czero(false);
      const SigBit cone(true);
      bool changed = true;
      switch (t) {
        case CellType::kGateInv: {
          const SigBit a = in("A");
          if (is0(a)) replace_with_bit(cell, cone, dead);
          else if (is1(a)) replace_with_bit(cell, czero, dead);
          else changed = false;
          break;
        }
        case CellType::kGateAnd2:
        case CellType::kGateNand2: {
          const bool inv = t == CellType::kGateNand2;
          const SigBit a = in("A");
          const SigBit b = in("B");
          if (is0(a) || is0(b)) replace_with_bit(cell, inv ? cone : czero, dead);
          else if (is1(a) && is1(b)) replace_with_bit(cell, inv ? czero : cone, dead);
          else if (is1(a)) inv ? convert_to_inv(cell, b) : replace_with_bit(cell, b, dead);
          else if (is1(b)) inv ? convert_to_inv(cell, a) : replace_with_bit(cell, a, dead);
          else if (a == b && !inv) replace_with_bit(cell, a, dead);
          else if (a == b && inv) convert_to_inv(cell, a);
          else changed = false;
          break;
        }
        case CellType::kGateOr2:
        case CellType::kGateNor2: {
          const bool inv = t == CellType::kGateNor2;
          const SigBit a = in("A");
          const SigBit b = in("B");
          if (is1(a) || is1(b)) replace_with_bit(cell, inv ? czero : cone, dead);
          else if (is0(a) && is0(b)) replace_with_bit(cell, inv ? cone : czero, dead);
          else if (is0(a)) inv ? convert_to_inv(cell, b) : replace_with_bit(cell, b, dead);
          else if (is0(b)) inv ? convert_to_inv(cell, a) : replace_with_bit(cell, a, dead);
          else if (a == b && !inv) replace_with_bit(cell, a, dead);
          else if (a == b && inv) convert_to_inv(cell, a);
          else changed = false;
          break;
        }
        case CellType::kGateXor2:
        case CellType::kGateXnor2: {
          const bool inv = t == CellType::kGateXnor2;
          const SigBit a = in("A");
          const SigBit b = in("B");
          if (a.is_const() && b.is_const()) {
            const bool v = (a.const_value() ^ b.const_value()) ^ inv;
            replace_with_bit(cell, SigBit(v), dead);
          } else if (a == b) {
            replace_with_bit(cell, SigBit(inv), dead);
          } else if (is0(a)) {
            inv ? convert_to_inv(cell, b) : replace_with_bit(cell, b, dead);
          } else if (is0(b)) {
            inv ? convert_to_inv(cell, a) : replace_with_bit(cell, a, dead);
          } else if (is1(a)) {
            inv ? replace_with_bit(cell, b, dead) : convert_to_inv(cell, b);
          } else if (is1(b)) {
            inv ? replace_with_bit(cell, a, dead) : convert_to_inv(cell, a);
          } else {
            changed = false;
          }
          break;
        }
        case CellType::kGateMux2: {
          const SigBit a = in("A");
          const SigBit b = in("B");
          const SigBit s = in("S");
          if (is0(s)) replace_with_bit(cell, a, dead);
          else if (is1(s)) replace_with_bit(cell, b, dead);
          else if (a == b) replace_with_bit(cell, a, dead);
          else if (is0(a) && is1(b)) replace_with_bit(cell, s, dead);
          else if (is1(a) && is0(b)) convert_to_inv(cell, s);
          else changed = false;
          break;
        }
        case CellType::kGateAoi21: {  // Y = !((A&B)|C)
          const SigBit a = in("A");
          const SigBit b = in("B");
          const SigBit c = in("C");
          if (is1(c)) replace_with_bit(cell, czero, dead);
          else if (is0(c)) convert_to_2in(cell, CellType::kGateNand2, a, b);
          else if (is0(a) || is0(b)) convert_to_inv(cell, c);
          else if (is1(a)) convert_to_2in(cell, CellType::kGateNor2, b, c);
          else if (is1(b)) convert_to_2in(cell, CellType::kGateNor2, a, c);
          else changed = false;
          break;
        }
        case CellType::kGateOai21: {  // Y = !((A|B)&C)
          const SigBit a = in("A");
          const SigBit b = in("B");
          const SigBit c = in("C");
          if (is0(c)) replace_with_bit(cell, cone, dead);
          else if (is1(c)) convert_to_2in(cell, CellType::kGateNor2, a, b);
          else if (is1(a) || is1(b)) convert_to_inv(cell, c);
          else if (is0(a)) convert_to_2in(cell, CellType::kGateNand2, b, c);
          else if (is0(b)) convert_to_2in(cell, CellType::kGateNand2, a, c);
          else changed = false;
          break;
        }
        default:
          changed = false;
          break;
      }
      if (changed) ++changes;
    }
    apply_repl_to_inputs();
    m_.remove_cells(dead);
    return changes;
  }

  int sweep_pass() {
    int swept = 0;
    std::vector<Cell*> dead;
    for (Cell* cell : m_.cells()) {
      if (cell->type() != CellType::kGateBuf) continue;
      if (output_is_port(*cell)) continue;
      repl_[cell->port("Y").bit(0)] = resolve(cell->port("A").bit(0));
      dead.push_back(cell);
      ++swept;
    }
    apply_repl_to_inputs();
    m_.remove_cells(dead);
    return swept;
  }

  int dead_pass() {
    // Count readers of every bit; cells whose entire output is unread and
    // not a module port are dead.
    std::unordered_set<SigBit> read;
    for (Cell* cell : m_.cells()) {
      for (const std::string& p : rtlil::input_ports(cell->type())) {
        if (!cell->has_port(p)) continue;
        for (const SigBit& b : cell->port(p).bits()) read.insert(b);
      }
    }
    std::vector<Cell*> dead;
    for (Cell* cell : m_.cells()) {
      bool used = false;
      for (const SigBit& b : cell->port(rtlil::output_port(cell->type())).bits()) {
        if (b.is_const() || b.wire->is_output() || b.wire->is_input() || read.count(b) != 0) {
          used = true;
          break;
        }
      }
      if (!used) dead.push_back(cell);
    }
    m_.remove_cells(dead);
    return static_cast<int>(dead.size());
  }

  int share_pass() {
    // Structural hashing: identical (type, drive, inputs, reset) cells merge.
    // Commutative 2-input gates sort their operands first.
    struct BitKey {
      const void* wire;
      int off;
      bool operator<(const BitKey& o) const { return std::tie(wire, off) < std::tie(o.wire, o.off); }
      bool operator==(const BitKey& o) const = default;
    };
    auto key_of = [&](SigBit b) { return BitKey{b.wire, b.is_const() ? (b.const_value() ? 1 : 0) : b.offset}; };
    using Key = std::tuple<int, int, std::vector<BitKey>, std::string>;
    std::map<Key, Cell*> seen;
    std::vector<Cell*> dead;
    int shared = 0;
    for (Cell* cell : m_.cells()) {
      const CellType t = cell->type();
      if (t == CellType::kGateBuf || rtlil::is_word_level(t)) continue;
      std::vector<BitKey> ins;
      for (const std::string& p : rtlil::input_ports(t)) {
        if (cell->has_port(p)) ins.push_back(key_of(resolve(cell->port(p).bit(0))));
      }
      const bool commutative = t == CellType::kGateAnd2 || t == CellType::kGateOr2 ||
                               t == CellType::kGateXor2 || t == CellType::kGateXnor2 ||
                               t == CellType::kGateNand2 || t == CellType::kGateNor2;
      if (commutative) std::sort(ins.begin(), ins.end());
      std::string extra = std::to_string(cell->share_group());
      if (rtlil::is_ff(t)) extra += cell->reset_value().to_string();
      Key key{static_cast<int>(t), cell->drive(), std::move(ins), std::move(extra)};
      const auto [it, inserted] = seen.emplace(std::move(key), cell);
      if (inserted) continue;
      if (output_is_port(*cell)) continue;  // keep port drivers intact
      repl_[cell->port(rtlil::output_port(t)).bit(0)] =
          it->second->port(rtlil::output_port(t)).bit(0);
      dead.push_back(cell);
      ++shared;
    }
    apply_repl_to_inputs();
    m_.remove_cells(dead);
    return shared;
  }

  Module& m_;
  std::unordered_map<SigBit, SigBit> repl_;
};

}  // namespace

OptStats optimize(rtlil::Module& module) {
  return Optimizer(module).run();
}

}  // namespace scfi::synth
