// Technology mapping: decomposes word-level cells into 1-bit library gates.
#pragma once

#include "rtlil/module.h"

namespace scfi::synth {

/// Replaces every word-level cell in `module` with an equivalent network of
/// technology gates (INV/AND2/OR2/XOR2/XNOR2/MUX2/DFF and trees thereof).
/// The module is structurally valid afterwards; wires are unchanged.
void lower_to_gates(rtlil::Module& module);

/// True when no word-level cell remains.
bool is_gate_level(const rtlil::Module& module);

}  // namespace scfi::synth
