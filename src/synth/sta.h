// Static timing analysis on mapped netlists.
//
// Simple but complete register-to-register model: module inputs arrive at
// t=0, flip-flop outputs at clock-to-Q; every gate adds an intrinsic delay
// plus a load-dependent term (sum of the input capacitances it drives); the
// minimum clock period is the worst arrival at any flip-flop D input plus
// setup, or at any module output.
#pragma once

#include <vector>

#include "rtlil/validate.h"

namespace scfi::synth {

struct TimingReport {
  double min_period_ps = 0.0;
  double max_freq_mhz = 0.0;
  /// Gates along the critical path, source to sink.
  std::vector<const rtlil::Cell*> critical_path;
};

/// Analyzes `module` (must be gate-level and loop-free).
TimingReport analyze_timing(const rtlil::Module& module);

}  // namespace scfi::synth
