// Standard-cell model.
//
// Modeled on a 45nm educational library (Nangate45-flavored): areas are in
// gate equivalents (GE, normalized to NAND2 X1 = 1.0), delays in picoseconds
// with a linear load term. Every function is available in three drive
// strengths (X1/X2/X4) so the timing-driven sizing pass can trade area for
// delay, which produces the area-time curves of the paper's Figure 8.
#pragma once

#include <array>

#include "rtlil/cell.h"

namespace scfi::synth {

inline constexpr int kNumDrives = 3;  // X1, X2, X4

struct GateTiming {
  double area_ge = 0.0;      ///< cell area in gate equivalents
  double intrinsic_ps = 0.0; ///< fixed propagation delay
  double slope_ps = 0.0;     ///< additional ps per unit of fanout load
  double input_cap = 1.0;    ///< load presented to each driving net
};

/// Per-function entry with its three drive variants.
struct GateInfo {
  const char* name = "";
  std::array<GateTiming, kNumDrives> drive;
};

/// True when the cell type is implemented by the technology library.
bool techlib_has(rtlil::CellType type);

/// Library data for a mapped gate type; throws LogicBug for word-level types.
const GateInfo& techlib_gate(rtlil::CellType type);

/// Area in GE of a specific cell (drive-aware).
double cell_area_ge(const rtlil::Cell& cell);

/// Sequential overhead used by STA: clock-to-Q and setup of the DFF.
double dff_clk_to_q_ps();
double dff_setup_ps();

}  // namespace scfi::synth
