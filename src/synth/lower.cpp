#include "synth/lower.h"

#include <utility>
#include <vector>

#include "base/error.h"
#include "rtlil/validate.h"

namespace scfi::synth {
namespace {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Const;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;

class Lowerer {
 public:
  explicit Lowerer(Module& module) : m_(module) {}

  void run() {
    // Collect first: we append gate cells while iterating.
    std::vector<Cell*> word_cells;
    for (Cell* c : m_.cells()) {
      if (rtlil::is_word_level(c->type())) word_cells.push_back(c);
    }
    for (Cell* c : word_cells) {
      group_ = c->share_group();
      lower_cell(*c);
    }
    m_.remove_cells(word_cells);
  }

 private:
  SigBit fresh_bit(const char* hint) {
    return SigBit(m_.add_wire(m_.uniquify(hint), 1), 0);
  }

  /// Adds a gate whose output drives exactly `y`, inheriting the share group
  /// of the word-level cell being decomposed.
  void gate(CellType type, SigBit y, std::initializer_list<std::pair<const char*, SigBit>> ins) {
    Cell* c = m_.add_cell(m_.uniquify("g"), type);
    for (const auto& [port, bit] : ins) c->set_port(port, SigSpec(bit));
    c->set_port("Y", SigSpec(y));
    c->set_share_group(group_);
  }

  SigBit gate_out(CellType type, std::initializer_list<std::pair<const char*, SigBit>> ins,
                  const char* hint) {
    SigBit y = fresh_bit(hint);
    gate(type, y, ins);
    return y;
  }

  /// Balanced tree reduction into target bit `y`.
  void tree(CellType gate2, std::vector<SigBit> terms, SigBit y, const char* hint) {
    check(!terms.empty(), "lower: empty reduction tree");
    while (terms.size() > 1) {
      std::vector<SigBit> next;
      for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
        if (terms.size() == 2) {
          gate(gate2, y, {{"A", terms[i]}, {"B", terms[i + 1]}});
          return;
        }
        next.push_back(gate_out(gate2, {{"A", terms[i]}, {"B", terms[i + 1]}}, hint));
      }
      if (terms.size() % 2 == 1) next.push_back(terms.back());
      terms = std::move(next);
    }
    // Single term: forward through a buffer so `y` has a driver.
    gate(CellType::kGateBuf, y, {{"A", terms[0]}});
  }

  void lower_cell(Cell& cell) {
    const SigSpec out = cell.port(rtlil::output_port(cell.type()));
    switch (cell.type()) {
      case CellType::kNot: {
        const SigSpec a = cell.port("A");
        for (int i = 0; i < out.width(); ++i) {
          gate(CellType::kGateInv, out.bit(i), {{"A", a.bit(i)}});
        }
        break;
      }
      case CellType::kBuf: {
        const SigSpec a = cell.port("A");
        for (int i = 0; i < out.width(); ++i) {
          gate(CellType::kGateBuf, out.bit(i), {{"A", a.bit(i)}});
        }
        break;
      }
      case CellType::kAnd:
      case CellType::kOr:
      case CellType::kXor:
      case CellType::kXnor: {
        const SigSpec a = cell.port("A");
        const SigSpec b = cell.port("B");
        CellType g = CellType::kGateAnd2;
        if (cell.type() == CellType::kOr) g = CellType::kGateOr2;
        if (cell.type() == CellType::kXor) g = CellType::kGateXor2;
        if (cell.type() == CellType::kXnor) g = CellType::kGateXnor2;
        for (int i = 0; i < out.width(); ++i) {
          gate(g, out.bit(i), {{"A", a.bit(i)}, {"B", b.bit(i)}});
        }
        break;
      }
      case CellType::kMux: {
        const SigSpec a = cell.port("A");
        const SigSpec b = cell.port("B");
        const SigBit s = cell.port("S").bit(0);
        for (int i = 0; i < out.width(); ++i) {
          gate(CellType::kGateMux2, out.bit(i), {{"A", a.bit(i)}, {"B", b.bit(i)}, {"S", s}});
        }
        break;
      }
      case CellType::kEq: {
        const SigSpec a = cell.port("A");
        const SigSpec b = cell.port("B");
        std::vector<SigBit> terms;
        for (int i = 0; i < a.width(); ++i) {
          terms.push_back(
              gate_out(CellType::kGateXnor2, {{"A", a.bit(i)}, {"B", b.bit(i)}}, "eqb"));
        }
        tree(CellType::kGateAnd2, std::move(terms), out.bit(0), "eqt");
        break;
      }
      case CellType::kReduceAnd:
      case CellType::kReduceOr:
      case CellType::kReduceXor: {
        const SigSpec a = cell.port("A");
        std::vector<SigBit> terms(a.bits().begin(), a.bits().end());
        CellType g = CellType::kGateAnd2;
        if (cell.type() == CellType::kReduceOr) g = CellType::kGateOr2;
        if (cell.type() == CellType::kReduceXor) g = CellType::kGateXor2;
        tree(g, std::move(terms), out.bit(0), "red");
        break;
      }
      case CellType::kDff: {
        const SigSpec d = cell.port("D");
        for (int i = 0; i < out.width(); ++i) {
          Cell* ff = m_.add_cell(m_.uniquify("ff"), CellType::kGateDff);
          ff->set_port("D", SigSpec(d.bit(i)));
          ff->set_port("Q", SigSpec(out.bit(i)));
          ff->set_reset_value(Const::from_uint(cell.reset_value().bit(i) ? 1 : 0, 1));
          ff->set_share_group(group_);
        }
        break;
      }
      default:
        unreachable(std::string("lower_cell: unexpected type ") +
                    rtlil::cell_type_name(cell.type()));
    }
  }

  Module& m_;
  int group_ = 0;
};

}  // namespace

void lower_to_gates(rtlil::Module& module) {
  Lowerer(module).run();
}

bool is_gate_level(const rtlil::Module& module) {
  for (const Cell* c : module.cells()) {
    if (rtlil::is_word_level(c->type())) return false;
  }
  return true;
}

}  // namespace scfi::synth
