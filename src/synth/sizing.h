// Greedy timing-driven gate sizing.
//
// Starts from minimum-drive cells and upsizes gates on the critical path
// until the requested clock period is met (or no further improvement is
// possible). This reproduces the area-vs-period tradeoff that a commercial
// synthesis tool exposes, which the paper uses for Figure 8.
#pragma once

#include "rtlil/module.h"

namespace scfi::synth {

struct SizingResult {
  bool met = false;
  double achieved_period_ps = 0.0;
  double area_ge = 0.0;
  int upsized = 0;  ///< number of upsize operations applied
};

/// Resets all drives to X1, then upsizes until `target_period_ps` is met.
SizingResult size_for_period(rtlil::Module& module, double target_period_ps);

/// Fastest achievable period (sizing with an unreachable target).
double min_achievable_period(rtlil::Module& module);

}  // namespace scfi::synth
