#include "synth/sizing.h"

#include <algorithm>

#include "base/error.h"
#include "rtlil/validate.h"
#include "synth/sta.h"
#include "synth/stat.h"
#include "synth/techlib.h"

namespace scfi::synth {
namespace {

constexpr int kMaxUpsizes = 20000;

/// Sum of the input capacitances loading a cell's output net.
double output_load(const rtlil::NetlistIndex& index, const rtlil::Cell& cell) {
  double load = 0.0;
  for (const rtlil::SigBit& y : cell.port(rtlil::output_port(cell.type())).bits()) {
    for (const rtlil::Cell* reader : index.readers(y)) {
      load += techlib_gate(reader->type())
                  .drive[static_cast<std::size_t>(reader->drive())]
                  .input_cap;
    }
    if (!y.is_const() && y.wire->is_output()) load += 2.0;
  }
  return load;
}

/// Analytic benefit of upsizing one cell: reduction of its own stage delay
/// minus the extra delay its increased input capacitance inflicts on the
/// slowest upstream driver. Avoids a full STA per candidate.
double upsize_gain(const rtlil::NetlistIndex& index, const rtlil::Cell& cell) {
  const GateInfo& info = techlib_gate(cell.type());
  const GateTiming& now = info.drive[static_cast<std::size_t>(cell.drive())];
  const GateTiming& up = info.drive[static_cast<std::size_t>(cell.drive() + 1)];
  const double load = output_load(index, cell);
  const double own_gain = (now.intrinsic_ps - up.intrinsic_ps) + (now.slope_ps - up.slope_ps) * load;
  // Penalty: every driver of this cell sees +delta_cap on its net.
  const double delta_cap = up.input_cap - now.input_cap;
  double worst_penalty = 0.0;
  for (const std::string& p : rtlil::input_ports(cell.type())) {
    if (!cell.has_port(p)) continue;
    for (const rtlil::SigBit& b : cell.port(p).bits()) {
      const rtlil::Cell* driver = b.is_const() ? nullptr : index.driver(b);
      if (driver == nullptr || rtlil::is_ff(driver->type())) continue;
      const GateTiming& dt =
          techlib_gate(driver->type()).drive[static_cast<std::size_t>(driver->drive())];
      worst_penalty = std::max(worst_penalty, dt.slope_ps * delta_cap);
    }
  }
  return own_gain - worst_penalty;
}

}  // namespace

SizingResult size_for_period(rtlil::Module& module, double target_period_ps) {
  for (rtlil::Cell* cell : module.cells()) cell->set_drive(0);

  SizingResult result;
  const rtlil::NetlistIndex index(module);
  TimingReport timing = analyze_timing(module);
  int upsizes = 0;
  double last_period = timing.min_period_ps;
  int stagnant_rounds = 0;
  while (timing.min_period_ps > target_period_ps && upsizes < kMaxUpsizes) {
    rtlil::Cell* best_cell = nullptr;
    double best_score = 0.0;
    for (const rtlil::Cell* path_cell : timing.critical_path) {
      if (path_cell->drive() + 1 >= kNumDrives) continue;
      auto* cell = const_cast<rtlil::Cell*>(path_cell);
      const double gain = upsize_gain(index, *cell);
      const double area_cost =
          techlib_gate(cell->type()).drive[static_cast<std::size_t>(cell->drive() + 1)].area_ge -
          cell_area_ge(*cell);
      const double score = gain / std::max(area_cost, 1e-6);
      if (gain > 1e-9 && score > best_score) {
        best_score = score;
        best_cell = cell;
      }
    }
    if (best_cell == nullptr) {
      // Plateau: no single upsize has positive analytic gain. Force-upsize
      // the first path cell with headroom so a later driver upsize can
      // realize the chain gain; the drive lattice is finite.
      for (const rtlil::Cell* path_cell : timing.critical_path) {
        if (path_cell->drive() + 1 < kNumDrives) {
          best_cell = const_cast<rtlil::Cell*>(path_cell);
          break;
        }
      }
      if (best_cell == nullptr) break;  // whole path maxed out
    }
    best_cell->set_drive(best_cell->drive() + 1);
    ++upsizes;
    timing = analyze_timing(module);
    // Abandon when several consecutive rounds fail to improve the period.
    if (timing.min_period_ps >= last_period - 1e-9) {
      if (++stagnant_rounds > 64) break;
    } else {
      stagnant_rounds = 0;
      last_period = timing.min_period_ps;
    }
  }

  result.met = timing.min_period_ps <= target_period_ps;
  result.achieved_period_ps = timing.min_period_ps;
  result.area_ge = area_report(module).total_ge;
  result.upsized = upsizes;
  return result;
}

double min_achievable_period(rtlil::Module& module) {
  return size_for_period(module, 0.0).achieved_period_ps;
}

}  // namespace scfi::synth
