#include "synth/stat.h"

#include "base/error.h"
#include "synth/techlib.h"

namespace scfi::synth {

AreaReport area_report(const rtlil::Module& module) {
  AreaReport report;
  for (const rtlil::Cell* cell : module.cells()) {
    require(techlib_has(cell->type()),
            "area_report: module " + module.name() + " contains unmapped cell " +
                rtlil::cell_type_name(cell->type()));
    report.total_ge += cell_area_ge(*cell);
    report.cells += 1;
    if (rtlil::is_ff(cell->type())) report.ffs += 1;
    report.histogram[rtlil::cell_type_name(cell->type())] += 1;
  }
  return report;
}

}  // namespace scfi::synth
