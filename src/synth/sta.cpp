#include "synth/sta.h"

#include <algorithm>
#include <unordered_map>

#include "base/error.h"
#include "synth/techlib.h"

namespace scfi::synth {
namespace {

using rtlil::Cell;
using rtlil::SigBit;

double load_of(const rtlil::NetlistIndex& index, const SigBit& bit) {
  double load = 0.0;
  for (const Cell* reader : index.readers(bit)) {
    const GateTiming& t = techlib_gate(reader->type()).drive[static_cast<std::size_t>(reader->drive())];
    load += t.input_cap;
  }
  if (!bit.is_const() && bit.wire->is_output()) load += 2.0;  // external pin load
  return load;
}

}  // namespace

TimingReport analyze_timing(const rtlil::Module& module) {
  const rtlil::NetlistIndex index(module);
  std::unordered_map<SigBit, double> arrival;
  std::unordered_map<SigBit, const Cell*> from;  // driving gate on worst path

  for (const Cell* ff : index.ffs()) {
    for (const SigBit& q : ff->port("Q").bits()) arrival[q] = dff_clk_to_q_ps();
  }

  const auto arrival_of = [&arrival](const SigBit& bit) {
    if (bit.is_const()) return 0.0;
    const auto it = arrival.find(bit);
    return it == arrival.end() ? 0.0 : it->second;  // inputs / undriven: t=0
  };

  for (const Cell* cell : index.topo_comb()) {
    double worst_in = 0.0;
    for (const std::string& p : rtlil::input_ports(cell->type())) {
      if (!cell->has_port(p)) continue;
      for (const SigBit& b : cell->port(p).bits()) worst_in = std::max(worst_in, arrival_of(b));
    }
    const GateTiming& t = techlib_gate(cell->type()).drive[static_cast<std::size_t>(cell->drive())];
    for (const SigBit& y : cell->port("Y").bits()) {
      const double at = worst_in + t.intrinsic_ps + t.slope_ps * load_of(index, y);
      arrival[y] = at;
      from[y] = cell;
    }
  }

  double worst = 0.0;
  SigBit worst_bit;
  for (const Cell* ff : index.ffs()) {
    for (const SigBit& d : ff->port("D").bits()) {
      const double t = arrival_of(d) + dff_setup_ps();
      if (t > worst) {
        worst = t;
        worst_bit = d;
      }
    }
  }
  for (const rtlil::Wire* wire : module.wires()) {
    if (!wire->is_output()) continue;
    for (int i = 0; i < wire->width(); ++i) {
      const SigBit b(wire, i);
      const double t = arrival_of(b);
      if (t > worst) {
        worst = t;
        worst_bit = b;
      }
    }
  }

  TimingReport report;
  report.min_period_ps = worst;
  report.max_freq_mhz = worst > 0.0 ? 1e6 / worst : 0.0;

  // Walk the worst path backwards through `from`.
  SigBit bit = worst_bit;
  while (!bit.is_const()) {
    const auto it = from.find(bit);
    if (it == from.end()) break;
    const Cell* cell = it->second;
    report.critical_path.push_back(cell);
    // Continue from the worst input of this gate.
    double best = -1.0;
    SigBit next;
    bool found = false;
    for (const std::string& p : rtlil::input_ports(cell->type())) {
      if (!cell->has_port(p)) continue;
      for (const SigBit& b : cell->port(p).bits()) {
        const double t = arrival_of(b);
        if (t > best) {
          best = t;
          next = b;
          found = true;
        }
      }
    }
    if (!found) break;
    bit = next;
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

}  // namespace scfi::synth
