// Automatic FSM extraction from a compiled netlist (the analog of Yosys'
// fsm_detect/fsm_extract, §5.1 of the paper: "our custom FSM protection pass
// identifies the unprotected FSM by utilizing the existing Yosys FSM
// passes").
//
// Method: exhaustive simulation. Starting from the reset value of the state
// register, every reachable state is expanded over all 2^n input
// combinations; the recovered minterm table is then compressed back into
// cube guards (adjacent-implicant merging), yielding an Fsm that is
// behaviourally equivalent to the netlist.
#pragma once

#include <string>

#include "fsm/fsm.h"
#include "rtlil/module.h"

namespace scfi::sim {

struct ExtractOptions {
  std::string state_wire = "state_q";
  int max_inputs = 14;  ///< exhaustive bound; throws above this
  bool capture_outputs = true;
};

/// Extracts the FSM controlled by `state_wire`. State names are synthesized
/// as "s<code>" (reset state first).
fsm::Fsm extract_fsm(const rtlil::Module& module, const ExtractOptions& options = {});

}  // namespace scfi::sim
