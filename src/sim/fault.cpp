#include "sim/fault.h"

#include "base/error.h"
#include "rtlil/validate.h"

namespace scfi::sim {

std::vector<FaultSite> enumerate_fault_sites(const rtlil::Module& module,
                                             const std::string& state_wire) {
  std::vector<FaultSite> sites;
  const rtlil::Wire* state = module.wire(state_wire);
  for (const rtlil::Wire* w : module.wires()) {
    if (!w->is_input()) continue;
    for (int i = 0; i < w->width(); ++i) {
      sites.push_back(FaultSite{rtlil::SigBit(w, i), FaultTarget::kControlInputs,
                                w->name() + "[" + std::to_string(i) + "]"});
    }
  }
  for (const rtlil::Cell* cell : module.cells()) {
    const rtlil::SigSpec& out = cell->port(rtlil::output_port(cell->type()));
    const bool is_state_ff =
        rtlil::is_ff(cell->type()) && state != nullptr && out.width() > 0 &&
        !out.bit(0).is_const() && out.bit(0).wire == state;
    for (const rtlil::SigBit& b : out.bits()) {
      if (b.is_const()) continue;
      FaultSite site;
      site.bit = b;
      site.target = is_state_ff ? FaultTarget::kStateRegister : FaultTarget::kLogic;
      site.description = cell->name() + ":" + b.wire->name() + "[" + std::to_string(b.offset) + "]";
      sites.push_back(site);
    }
  }
  return sites;
}

std::vector<FaultSite> filter_sites(const std::vector<FaultSite>& sites, FaultTarget target) {
  if (target == FaultTarget::kAny) return sites;
  std::vector<FaultSite> out;
  for (const FaultSite& s : sites) {
    if (s.target == target) out.push_back(s);
  }
  return out;
}

}  // namespace scfi::sim
