#include "sim/extract.h"

#include <algorithm>
#include <deque>
#include <map>

#include "base/error.h"
#include "fsm/extract.h"
#include "sim/netlist_sim.h"

namespace scfi::sim {
namespace {

// Cube rows and adjacent-implicant compaction are shared with the
// structural extractor in fsm/extract.h.
using Cube = fsm::ExtractCube;
using fsm::compact_cubes;

}  // namespace

fsm::Fsm extract_fsm(const rtlil::Module& module, const ExtractOptions& options) {
  const rtlil::Wire* state = module.wire(options.state_wire);
  require(state != nullptr, "extract_fsm: no state wire " + options.state_wire);
  std::vector<std::string> input_names;
  for (const rtlil::Wire* w : module.wires()) {
    if (!w->is_input()) continue;
    require(w->width() == 1, "extract_fsm: only 1-bit inputs supported (wire " + w->name() + ")");
    input_names.push_back(w->name());
  }
  const int n = static_cast<int>(input_names.size());
  require(n <= options.max_inputs, "extract_fsm: too many inputs for exhaustive extraction");

  std::vector<std::string> output_names;
  if (options.capture_outputs) {
    for (const rtlil::Wire* w : module.wires()) {
      if (w->is_output() && w->width() == 1) output_names.push_back(w->name());
    }
  }

  Simulator sim(module);
  sim.reset();
  const std::uint64_t reset_code = sim.get(options.state_wire);

  // BFS over reachable states.
  std::vector<std::uint64_t> order;           // discovery order (reset first)
  std::map<std::uint64_t, int> index_of;      // code -> state index
  std::map<std::uint64_t, std::vector<Cube>> rows;
  order.push_back(reset_code);
  index_of[reset_code] = 0;
  std::deque<std::uint64_t> queue{reset_code};
  while (!queue.empty()) {
    const std::uint64_t code = queue.front();
    queue.pop_front();
    std::vector<Cube>& cubes = rows[code];
    for (std::uint64_t combo = 0; combo < (1ULL << n); ++combo) {
      for (int i = 0; i < n; ++i) {
        sim.set_input(input_names[static_cast<std::size_t>(i)], (combo >> i) & 1);
      }
      sim.set_register(options.state_wire, code);
      std::string out_pattern(output_names.size(), '0');
      for (std::size_t i = 0; i < output_names.size(); ++i) {
        if (sim.get(output_names[i]) != 0) out_pattern[i] = '1';
      }
      sim.step();
      const std::uint64_t next = sim.get(options.state_wire);
      if (index_of.count(next) == 0) {
        index_of[next] = static_cast<int>(order.size());
        order.push_back(next);
        queue.push_back(next);
      }
      std::string guard(static_cast<std::size_t>(n), '0');
      for (int i = 0; i < n; ++i) {
        if ((combo >> i) & 1) guard[static_cast<std::size_t>(i)] = '1';
      }
      cubes.push_back(Cube{std::move(guard), next, std::move(out_pattern)});
    }
    compact_cubes(cubes);
  }

  fsm::Fsm out;
  out.name = module.name() + "_extracted";
  out.inputs = input_names;
  out.outputs = output_names;
  for (const std::uint64_t code : order) out.add_state("s" + std::to_string(code));
  out.reset_state = 0;
  for (const std::uint64_t code : order) {
    std::vector<Cube>& cubes = rows[code];
    // Emit self-loops last and skip the catch-all stay (implicit idle), so
    // the extracted machine stays minimal.
    std::stable_sort(cubes.begin(), cubes.end(), [code](const Cube& a, const Cube& b) {
      return (a.next != code) > (b.next != code);
    });
    for (const Cube& cube : cubes) {
      const bool all_dash = cube.guard.find_first_not_of('-') == std::string::npos;
      const bool quiet_output = cube.output.find('1') == std::string::npos;
      if (cube.next == code && all_dash && quiet_output) continue;  // implicit idle
      out.add_transition("s" + std::to_string(code), cube.guard, "s" + std::to_string(cube.next),
                         cube.output);
    }
  }
  out.check();
  return out;
}

}  // namespace scfi::sim
