// Monte-Carlo fault-injection campaigns over compiled FSM variants.
//
// Each run replays a random-but-valid control-flow walk on the device under
// test while injecting a configurable number of faults, then classifies the
// outcome against the golden (fault-free, symbol-level) execution:
//
//   masked          — state sequence identical to golden, no alert
//   detected        — alert raised, or terminal ERROR state entered
//   hijacked        — a *valid* state different from golden was reached with
//                     no prior detection (the attacker's success criterion)
//   lagged          — undetected deviation where the FSM merely missed a
//                     transition (still in the previous golden state)
//   silent_invalid  — register holds a non-codeword, never detected
//                     (impossible for SCFI, common for unprotected FSMs)
//
// Execution is two-phase, with the planning side selectable. The default
// streaming planner derives every run's walk and fault schedule from a
// jump-ahead RNG stream keyed by hash(seed, run_index): workers plan their
// own batches on the fly with O(lanes) memory, so arbitrary-size campaigns
// run under a constant footprint and the plan for run k never depends on
// runs 0..k-1. Execution packs `lanes` runs into the bit-parallel simulator
// (one lane per run, up to 512 lanes via multi-word lane blocks) and, with
// `threads` > 1, shards whole batches across
// worker threads. Because each run's plan is a pure function of
// (seed, run_index) and per-run outcomes are independent, the aggregate
// CampaignResult is bit-identical for every combination of `lanes` and
// `threads`.
#pragma once

#include <cstdint>

#include "fsm/compile.h"
#include "sim/fault.h"
#include "sim/netlist_sim.h"

namespace scfi {
class CancelToken;
}

namespace scfi::sim {

/// How run plans (walks + fault schedules) are produced. Both planners draw
/// run k's plan from the jump-ahead stream Rng(seed, k); they differ only in
/// when the plan exists in memory. (The legacy kSequential one-RNG planner —
/// a differential oracle against pre-streaming expectations — served its one
/// release and was removed; its seed→plan mapping differed from this family.)
enum class CampaignPlanner {
  /// Default: each run's plan is drawn from Rng(seed, run_index) inside the
  /// executing worker, one batch at a time — O(lanes) planning memory,
  /// unbounded campaign sizes, max_plan_bytes not applicable.
  kStreaming,
  /// The streaming plan, materialized up front run 0..runs-1 and executed
  /// through the shared batch executor. Bit-identical to kStreaming by
  /// construction — kept as the differential-test oracle for the on-the-fly
  /// path. Subject to max_plan_bytes.
  kStreamingMaterialized,
};

/// Campaign parameters. Raw-input (unencoded) variants support at most 64
/// control bits; symbol-encoded variants are unrestricted.
struct CampaignConfig {
  int runs = 1000;
  int cycles = 24;        ///< length of each control-flow walk
  /// The adversary: fault count per run (`fault.k`), target-class filter,
  /// and the kind set schedules draw from. The default FaultSpec is the
  /// historical single-transient-flip-anywhere attacker, and single-kind
  /// specs draw bit-identical schedules to the pre-FaultSpec planner.
  FaultSpec fault;
  std::uint64_t seed = 1;
  CampaignPlanner planner = CampaignPlanner::kStreaming;
  /// Runs per simulator batch (1..kMaxLanes = 64*lane_words); 1 = scalar.
  /// Widths past 64 select a multi-word SoA lane block (lane_words in
  /// {2, 4, 8}), subject to the SCFI_LANE_WORDS_CAP runtime clamp.
  int lanes = kNumLanes;
  int threads = 1;        ///< worker threads sharding batches (<=1 = inline)
  /// Hard cap on a *materialized* plan (walks, golden sequences, fault
  /// schedules — see planned_bytes()). The materializing planners allocate
  /// the whole plan before the first simulated cycle, so a >10^7-run
  /// campaign would otherwise claim gigabytes; exceeding the cap throws
  /// ScfiError instead (a one-time warning is logged above half the cap).
  /// 0 disables the check. kStreaming plans per batch and ignores the cap.
  std::int64_t max_plan_bytes = 1LL << 31;  ///< 2 GiB
  /// Optional cooperative stop signal, polled once per executed batch:
  /// when it fires, workers throw CancelledError at the next batch
  /// boundary instead of being killed mid-simulation. Execution knob like
  /// lanes/threads — never part of a job identity — and must outlive the
  /// run_campaign call. nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// Estimated bytes the materializing planner (kStreamingMaterialized)
/// allocates for `config`: ~8 bytes per run-cycle (a 4-byte
/// walk edge plus a 4-byte golden state entry) plus 12 bytes per scheduled
/// fault (site, cycle, kind index). The streaming planner's footprint is
/// O(lanes x cycles) per worker instead.
std::int64_t planned_bytes(const CampaignConfig& config);

struct CampaignResult {
  int runs = 0;
  int masked = 0;
  int detected = 0;
  int hijacked = 0;
  int lagged = 0;
  int silent_invalid = 0;

  /// Runs where the fault had any architectural effect.
  int effective() const { return detected + hijacked + lagged + silent_invalid; }
  /// Attacker success probability over all runs.
  double hijack_rate() const { return runs > 0 ? static_cast<double>(hijacked) / runs : 0.0; }
  /// Detection rate among effective faults.
  double detection_rate() const {
    return effective() > 0 ? static_cast<double>(detected) / effective() : 1.0;
  }

  bool operator==(const CampaignResult& other) const = default;
};

/// Runs the campaign on `variant` (any of the three compiled forms).
CampaignResult run_campaign(const fsm::Fsm& fsm, const fsm::CompiledFsm& variant,
                            const CampaignConfig& config);

}  // namespace scfi::sim
