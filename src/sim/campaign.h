// Monte-Carlo fault-injection campaigns over compiled FSM variants.
//
// Each run replays a random-but-valid control-flow walk on the device under
// test while injecting a configurable number of faults, then classifies the
// outcome against the golden (fault-free, symbol-level) execution:
//
//   masked          — state sequence identical to golden, no alert
//   detected        — alert raised, or terminal ERROR state entered
//   hijacked        — a *valid* state different from golden was reached with
//                     no prior detection (the attacker's success criterion)
//   lagged          — undetected deviation where the FSM merely missed a
//                     transition (still in the previous golden state)
//   silent_invalid  — register holds a non-codeword, never detected
//                     (impossible for SCFI, common for unprotected FSMs)
#pragma once

#include <cstdint>

#include "fsm/compile.h"
#include "sim/fault.h"
#include "sim/netlist_sim.h"

namespace scfi::sim {

struct CampaignConfig {
  int runs = 1000;
  int cycles = 24;        ///< length of each control-flow walk
  int num_faults = 1;     ///< simultaneous faults per run (attacker strength)
  FaultTarget target = FaultTarget::kAny;
  FaultKind kind = FaultKind::kTransientFlip;
  std::uint64_t seed = 1;
};

struct CampaignResult {
  int runs = 0;
  int masked = 0;
  int detected = 0;
  int hijacked = 0;
  int lagged = 0;
  int silent_invalid = 0;

  /// Runs where the fault had any architectural effect.
  int effective() const { return detected + hijacked + lagged + silent_invalid; }
  /// Attacker success probability over all runs.
  double hijack_rate() const { return runs > 0 ? static_cast<double>(hijacked) / runs : 0.0; }
  /// Detection rate among effective faults.
  double detection_rate() const {
    return effective() > 0 ? static_cast<double>(detected) / effective() : 1.0;
  }
};

/// Runs the campaign on `variant` (any of the three compiled forms).
CampaignResult run_campaign(const fsm::Fsm& fsm, const fsm::CompiledFsm& variant,
                            const CampaignConfig& config);

}  // namespace scfi::sim
