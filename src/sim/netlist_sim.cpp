#include "sim/netlist_sim.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "base/error.h"

namespace scfi::sim {
namespace {

using detail::FlatOp;
using detail::TapeSegment;

// --- kind-segmented eval core ----------------------------------------------
//
// The tape is executed segment by segment: every segment is a run of
// same-kind ops, so the per-op dispatch happens once per segment instead of
// once per gate, and each op's per-word loop is a stride-1 stream over its
// lane blocks that the compiler unrolls (W is a template constant) and
// vectorizes. `kFaulty` selects whether the read side applies the fault
// masks; the false instantiation is the no-fault fast path with 3 memory
// streams per op-word instead of 7.

template <bool kFaulty>
inline std::uint64_t ld(const std::uint64_t* v, const std::uint64_t* ma,
                        const std::uint64_t* mx, std::size_t i) {
  if constexpr (kFaulty) {
    return (v[i] & ma[i]) ^ mx[i];
  } else {
    return v[i];
  }
}

template <int W, bool kFaulty, FlatOp::Kind K>
inline void run_segment(const FlatOp* op, const FlatOp* end, std::uint64_t* v,
                        const std::uint64_t* ma, const std::uint64_t* mx) {
  for (; op != end; ++op) {
    const std::size_t a = static_cast<std::size_t>(op->a) * W;
    const std::size_t b = static_cast<std::size_t>(op->b) * W;
    const std::size_t c = static_cast<std::size_t>(op->c) * W;
    const std::size_t o = static_cast<std::size_t>(op->out) * W;
    // An op's output net is never one of its own inputs (the tape is in
    // topological order over fresh output nets), and the mask arrays are
    // distinct allocations, so the word-loop iterations are independent.
    // ivdep states that, sparing the vectorizer the runtime alias checks
    // its -O2 cost model refuses to emit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC ivdep
#endif
    for (int w = 0; w < W; ++w) {
      const std::uint64_t av = ld<kFaulty>(v, ma, mx, a + static_cast<std::size_t>(w));
      std::uint64_t r = 0;
      if constexpr (K == FlatOp::Kind::kBuf) {
        r = av;
      } else if constexpr (K == FlatOp::Kind::kNot) {
        r = ~av;
      } else {
        const std::uint64_t bv = ld<kFaulty>(v, ma, mx, b + static_cast<std::size_t>(w));
        if constexpr (K == FlatOp::Kind::kAnd) {
          r = av & bv;
        } else if constexpr (K == FlatOp::Kind::kOr) {
          r = av | bv;
        } else if constexpr (K == FlatOp::Kind::kXor) {
          r = av ^ bv;
        } else if constexpr (K == FlatOp::Kind::kXnor) {
          r = ~(av ^ bv);
        } else if constexpr (K == FlatOp::Kind::kNand) {
          r = ~(av & bv);
        } else if constexpr (K == FlatOp::Kind::kNor) {
          r = ~(av | bv);
        } else {
          const std::uint64_t cv = ld<kFaulty>(v, ma, mx, c + static_cast<std::size_t>(w));
          if constexpr (K == FlatOp::Kind::kMux) {
            r = (cv & bv) | (~cv & av);
          } else if constexpr (K == FlatOp::Kind::kAoi21) {
            r = ~((av & bv) | cv);
          } else {
            static_assert(K == FlatOp::Kind::kOai21);
            r = ~((av | bv) & cv);
          }
        }
      }
      v[o + static_cast<std::size_t>(w)] = r;
    }
  }
}

template <int W, bool kFaulty>
inline void run_tape(const TapeSegment* segs, std::size_t nsegs, const FlatOp* ops,
                     std::uint64_t* v, const std::uint64_t* ma, const std::uint64_t* mx) {
  for (std::size_t s = 0; s < nsegs; ++s) {
    const FlatOp* begin = ops + segs[s].begin;
    const FlatOp* end = ops + segs[s].end;
    switch (segs[s].kind) {
      case FlatOp::Kind::kBuf:
        run_segment<W, kFaulty, FlatOp::Kind::kBuf>(begin, end, v, ma, mx); break;
      case FlatOp::Kind::kNot:
        run_segment<W, kFaulty, FlatOp::Kind::kNot>(begin, end, v, ma, mx); break;
      case FlatOp::Kind::kAnd:
        run_segment<W, kFaulty, FlatOp::Kind::kAnd>(begin, end, v, ma, mx); break;
      case FlatOp::Kind::kOr:
        run_segment<W, kFaulty, FlatOp::Kind::kOr>(begin, end, v, ma, mx); break;
      case FlatOp::Kind::kXor:
        run_segment<W, kFaulty, FlatOp::Kind::kXor>(begin, end, v, ma, mx); break;
      case FlatOp::Kind::kXnor:
        run_segment<W, kFaulty, FlatOp::Kind::kXnor>(begin, end, v, ma, mx); break;
      case FlatOp::Kind::kMux:
        run_segment<W, kFaulty, FlatOp::Kind::kMux>(begin, end, v, ma, mx); break;
      case FlatOp::Kind::kAoi21:
        run_segment<W, kFaulty, FlatOp::Kind::kAoi21>(begin, end, v, ma, mx); break;
      case FlatOp::Kind::kOai21:
        run_segment<W, kFaulty, FlatOp::Kind::kOai21>(begin, end, v, ma, mx); break;
      case FlatOp::Kind::kNand:
        run_segment<W, kFaulty, FlatOp::Kind::kNand>(begin, end, v, ma, mx); break;
      case FlatOp::Kind::kNor:
        run_segment<W, kFaulty, FlatOp::Kind::kNor>(begin, end, v, ma, mx); break;
    }
  }
}

// Runtime ISA selection without intrinsics: GCC emits one clone of the whole
// (flattened) tape executor per target and picks the best at load time via
// IFUNC, so an AVX-512 host streams 8-word blocks as full-width vector ops
// while any other x86-64 falls back to the baseline encoding of the same
// C++. `flatten` matters: the templated segment loops must be inlined into
// each clone to be compiled with that clone's vector ISA.
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && !defined(__SANITIZE_ADDRESS__)
#define SCFI_SIMD_CLONES \
  __attribute__((flatten, target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define SCFI_SIMD_CLONES __attribute__((flatten))
#endif

SCFI_SIMD_CLONES
void run_tape_dispatch(int lane_words, bool faulty, const TapeSegment* segs,
                       std::size_t nsegs, const FlatOp* ops, std::uint64_t* v,
                       const std::uint64_t* ma, const std::uint64_t* mx) {
  switch (lane_words) {
    case 1:
      faulty ? run_tape<1, true>(segs, nsegs, ops, v, ma, mx)
             : run_tape<1, false>(segs, nsegs, ops, v, ma, mx);
      break;
    case 2:
      faulty ? run_tape<2, true>(segs, nsegs, ops, v, ma, mx)
             : run_tape<2, false>(segs, nsegs, ops, v, ma, mx);
      break;
    case 4:
      faulty ? run_tape<4, true>(segs, nsegs, ops, v, ma, mx)
             : run_tape<4, false>(segs, nsegs, ops, v, ma, mx);
      break;
    default:
      faulty ? run_tape<8, true>(segs, nsegs, ops, v, ma, mx)
             : run_tape<8, false>(segs, nsegs, ops, v, ma, mx);
      break;
  }
}

}  // namespace

using rtlil::Cell;
using rtlil::CellType;
using rtlil::SigBit;
using rtlil::SigSpec;

int lane_words_for(int lanes) {
  require(lanes >= 1 && lanes <= kMaxLanes,
          "lane_words_for: lanes must be in [1, " + std::to_string(kMaxLanes) + "]");
  const int words = (lanes + kWordLanes - 1) / kWordLanes;
  int supported = 1;
  while (supported < words) supported *= 2;
  return supported;
}

int lane_words_cap() {
  static const int cap = [] {
    const char* env = std::getenv("SCFI_LANE_WORDS_CAP");
    if (env == nullptr) return kMaxLaneWords;
    const int v = std::atoi(env);
    if (v < 1 || v > kMaxLaneWords) return kMaxLaneWords;
    return v;
  }();
  return cap;
}

Simulator::Simulator(const rtlil::Module& module, int lane_words)
    : module_(&module), lane_words_(lane_words) {
  require(lane_words == 1 || lane_words == 2 || lane_words == 4 || lane_words == 8,
          "Simulator: lane_words must be one of {1, 2, 4, 8}");
  compile();
  reset();
}

std::int32_t Simulator::net_of(const SigBit& bit) const {
  if (bit.is_const()) return bit.const_value() ? 1 : 0;
  const auto it = wire_base_.find(bit.wire);
  check(it != wire_base_.end(), "Simulator: unknown wire " + bit.wire->name());
  return it->second + bit.offset;
}

std::int32_t Simulator::net_index(const SigBit& bit) const {
  const std::int32_t net = net_of(bit);
  check(net >= 2, "Simulator::net_index: constant bit has no net");
  return net;
}

std::int32_t Simulator::temp_net() {
  const std::int32_t net = num_nets_++;
  values_.resize(values_.size() + static_cast<std::size_t>(lane_words_), 0);
  mask_and_.resize(values_.size(), ~0ULL);
  mask_xor_.resize(values_.size(), 0);
  return net;
}

void Simulator::compile() {
  const auto words = static_cast<std::size_t>(lane_words_);
  // Nets 0 and 1 are the constants, in every lane of every word.
  num_nets_ = 2;
  values_.assign(2 * words, 0);
  for (std::size_t w = 0; w < words; ++w) values_[words + w] = ~0ULL;
  mask_and_.assign(2 * words, ~0ULL);
  mask_xor_.assign(2 * words, 0);
  for (const rtlil::Wire* w : module_->wires()) {
    wire_base_[w] = num_nets_;
    num_nets_ += w->width();
    values_.resize(static_cast<std::size_t>(num_nets_) * words, 0);
    mask_and_.resize(values_.size(), ~0ULL);
    mask_xor_.resize(values_.size(), 0);
  }
  const rtlil::NetlistIndex index(*module_);
  for (const Cell* cell : index.topo_comb()) compile_cell(*cell);
  for (const Cell* ff : index.ffs()) {
    const SigSpec& d = ff->port("D");
    const SigSpec& q = ff->port("Q");
    for (int i = 0; i < q.width(); ++i) {
      ffs_.push_back(FlatFf{net_of(d.bit(i)), net_of(q.bit(i)), ff->reset_value().bit(i)});
    }
  }
  latch_buf_.resize(ffs_.size() * words);
  transient_slot_.assign(static_cast<std::size_t>(num_nets_), -1);
  faulted_mark_.assign(static_cast<std::size_t>(num_nets_), 0);
  q_to_ff_.assign(static_cast<std::size_t>(num_nets_), -1);
  for (std::size_t i = 0; i < ffs_.size(); ++i) {
    q_to_ff_[static_cast<std::size_t>(ffs_[i].q)] = static_cast<std::int32_t>(i);
  }
  skip_slot_.assign(ffs_.size(), -1);
  build_tape();
}

void Simulator::build_tape() {
  // Topological level of every net: constants/inputs/FF outputs sit at 0,
  // an op's output one past its deepest operand. ops_ is already in topo
  // order (producers before consumers), so one forward pass suffices.
  std::vector<std::int32_t> level(static_cast<std::size_t>(num_nets_), 0);
  std::vector<std::int32_t> op_level(ops_.size(), 0);
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const FlatOp& op = ops_[i];
    std::int32_t l = level[static_cast<std::size_t>(op.a)];
    l = std::max(l, level[static_cast<std::size_t>(op.b)]);
    l = std::max(l, level[static_cast<std::size_t>(op.c)]);
    op_level[i] = l + 1;
    level[static_cast<std::size_t>(op.out)] = l + 1;
  }
  // Stable sort by (level, kind): ops within a level are independent by
  // construction, so grouping same-kind ops is a pure reordering of
  // commuting writes — eval order cannot change any value (eval_reference
  // is the differential oracle for exactly this claim).
  std::vector<std::uint32_t> order(ops_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     if (op_level[x] != op_level[y]) return op_level[x] < op_level[y];
                     return ops_[x].kind < ops_[y].kind;
                   });
  tape_.reserve(ops_.size());
  for (const std::uint32_t i : order) tape_.push_back(ops_[i]);
  for (std::size_t i = 0; i < tape_.size(); ++i) {
    if (segments_.empty() || segments_.back().kind != tape_[i].kind) {
      segments_.push_back(TapeSegment{tape_[i].kind, static_cast<std::uint32_t>(i),
                                      static_cast<std::uint32_t>(i + 1)});
    } else {
      segments_.back().end = static_cast<std::uint32_t>(i + 1);
    }
  }
}

void Simulator::emit_tree(FlatOp::Kind kind, std::vector<std::int32_t> terms,
                          std::int32_t out) {
  check(!terms.empty(), "Simulator::emit_tree: empty");
  while (terms.size() > 2) {
    std::vector<std::int32_t> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      const std::int32_t t = temp_net();
      ops_.push_back(FlatOp{kind, t, terms[i], terms[i + 1], 0});
      next.push_back(t);
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  if (terms.size() == 2) {
    ops_.push_back(FlatOp{kind, out, terms[0], terms[1], 0});
  } else {
    ops_.push_back(FlatOp{FlatOp::Kind::kBuf, out, terms[0], 0, 0});
  }
}

void Simulator::compile_cell(const Cell& cell) {
  const SigSpec& y = cell.port(rtlil::output_port(cell.type()));
  const auto in = [&](const char* p) { return cell.port(p); };
  const auto bits_of = [&](const SigSpec& s) {
    std::vector<std::int32_t> nets;
    nets.reserve(static_cast<std::size_t>(s.width()));
    for (const SigBit& b : s.bits()) nets.push_back(net_of(b));
    return nets;
  };
  switch (cell.type()) {
    case CellType::kBuf:
    case CellType::kGateBuf:
      for (int i = 0; i < y.width(); ++i) {
        ops_.push_back(FlatOp{FlatOp::Kind::kBuf, net_of(y.bit(i)), net_of(in("A").bit(i)), 0, 0});
      }
      break;
    case CellType::kNot:
    case CellType::kGateInv:
      for (int i = 0; i < y.width(); ++i) {
        ops_.push_back(FlatOp{FlatOp::Kind::kNot, net_of(y.bit(i)), net_of(in("A").bit(i)), 0, 0});
      }
      break;
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kXor:
    case CellType::kXnor:
    case CellType::kGateAnd2:
    case CellType::kGateOr2:
    case CellType::kGateXor2:
    case CellType::kGateXnor2:
    case CellType::kGateNand2:
    case CellType::kGateNor2: {
      FlatOp::Kind k = FlatOp::Kind::kAnd;
      switch (cell.type()) {
        case CellType::kOr:
        case CellType::kGateOr2: k = FlatOp::Kind::kOr; break;
        case CellType::kXor:
        case CellType::kGateXor2: k = FlatOp::Kind::kXor; break;
        case CellType::kXnor:
        case CellType::kGateXnor2: k = FlatOp::Kind::kXnor; break;
        case CellType::kGateNand2: k = FlatOp::Kind::kNand; break;
        case CellType::kGateNor2: k = FlatOp::Kind::kNor; break;
        default: break;
      }
      for (int i = 0; i < y.width(); ++i) {
        ops_.push_back(FlatOp{k, net_of(y.bit(i)), net_of(in("A").bit(i)),
                              net_of(in("B").bit(i)), 0});
      }
      break;
    }
    case CellType::kMux:
    case CellType::kGateMux2: {
      const std::int32_t s = net_of(in("S").bit(0));
      for (int i = 0; i < y.width(); ++i) {
        ops_.push_back(FlatOp{FlatOp::Kind::kMux, net_of(y.bit(i)), net_of(in("A").bit(i)),
                              net_of(in("B").bit(i)), s});
      }
      break;
    }
    case CellType::kGateAoi21:
      ops_.push_back(FlatOp{FlatOp::Kind::kAoi21, net_of(y.bit(0)), net_of(in("A").bit(0)),
                            net_of(in("B").bit(0)), net_of(in("C").bit(0))});
      break;
    case CellType::kGateOai21:
      ops_.push_back(FlatOp{FlatOp::Kind::kOai21, net_of(y.bit(0)), net_of(in("A").bit(0)),
                            net_of(in("B").bit(0)), net_of(in("C").bit(0))});
      break;
    case CellType::kEq: {
      const std::vector<std::int32_t> a = bits_of(in("A"));
      const std::vector<std::int32_t> b = bits_of(in("B"));
      std::vector<std::int32_t> eq_bits;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const std::int32_t t = temp_net();
        ops_.push_back(FlatOp{FlatOp::Kind::kXnor, t, a[i], b[i], 0});
        eq_bits.push_back(t);
      }
      emit_tree(FlatOp::Kind::kAnd, std::move(eq_bits), net_of(y.bit(0)));
      break;
    }
    case CellType::kReduceAnd:
      emit_tree(FlatOp::Kind::kAnd, bits_of(in("A")), net_of(y.bit(0)));
      break;
    case CellType::kReduceOr:
      emit_tree(FlatOp::Kind::kOr, bits_of(in("A")), net_of(y.bit(0)));
      break;
    case CellType::kReduceXor:
      emit_tree(FlatOp::Kind::kXor, bits_of(in("A")), net_of(y.bit(0)));
      break;
    case CellType::kDff:
    case CellType::kGateDff:
      unreachable("compile_cell: flip-flop in combinational list");
    default:
      unreachable(std::string("compile_cell: unhandled type ") +
                  rtlil::cell_type_name(cell.type()));
  }
}

void Simulator::reset() {
  clear_all_faults();
  const auto words = static_cast<std::size_t>(lane_words_);
  std::fill(values_.begin(), values_.end(), 0);
  for (std::size_t w = 0; w < words; ++w) values_[words + w] = ~0ULL;
  for (const FlatFf& ff : ffs_) {
    const std::uint64_t v = ff.reset ? ~0ULL : 0;
    for (std::size_t w = 0; w < words; ++w) {
      values_[static_cast<std::size_t>(ff.q) * words + w] = v;
    }
  }
  eval();
}

Simulator::WireHandle Simulator::probe(const std::string& wire) const {
  const rtlil::Wire* w = module_->wire(wire);
  require(w != nullptr, "Simulator::probe: no wire " + wire);
  return WireHandle{wire_base_.at(w), w->width()};
}

Simulator::WireHandle Simulator::input_handle(const std::string& wire) const {
  const rtlil::Wire* w = module_->wire(wire);
  require(w != nullptr && w->is_input(), "Simulator::input_handle: no input wire " + wire);
  return WireHandle{wire_base_.at(w), w->width()};
}

void Simulator::set_input(WireHandle h, std::uint64_t value) {
  const auto words = static_cast<std::size_t>(lane_words_);
  for (std::int32_t i = 0; i < h.width; ++i) {
    const std::uint64_t v = ((value >> i) & 1) ? ~0ULL : 0;
    for (std::size_t w = 0; w < words; ++w) {
      values_[static_cast<std::size_t>(h.base + i) * words + w] = v;
    }
  }
}

void Simulator::set_input_lane(WireHandle h, int lane, std::uint64_t value) {
  check(lane >= 0 && lane < num_lanes(), "Simulator::set_input_lane: lane out of range");
  const auto words = static_cast<std::size_t>(lane_words_);
  const auto word = static_cast<std::size_t>(lane >> 6);
  const std::uint64_t bit = 1ULL << (lane & 63);
  for (std::int32_t i = 0; i < h.width; ++i) {
    auto& w = values_[static_cast<std::size_t>(h.base + i) * words + word];
    w = (w & ~bit) | (((value >> i) & 1) ? bit : 0);
  }
}

void Simulator::set_input_word(WireHandle h, int bit, std::uint64_t lanes, int word) {
  check(bit >= 0 && bit < h.width, "Simulator::set_input_word: bit out of range");
  check(word >= 0 && word < lane_words_, "Simulator::set_input_word: word out of range");
  values_[static_cast<std::size_t>(h.base + bit) * static_cast<std::size_t>(lane_words_) +
          static_cast<std::size_t>(word)] = lanes;
}

void Simulator::set_register(WireHandle h, std::uint64_t value) {
  const auto words = static_cast<std::size_t>(lane_words_);
  for (std::int32_t i = 0; i < h.width; ++i) {
    const std::uint64_t v = ((value >> i) & 1) ? ~0ULL : 0;
    for (std::size_t w = 0; w < words; ++w) {
      values_[static_cast<std::size_t>(h.base + i) * words + w] = v;
    }
  }
}

void Simulator::set_register_word(WireHandle h, int bit, std::uint64_t lanes, int word) {
  check(bit >= 0 && bit < h.width, "Simulator::set_register_word: bit out of range");
  check(word >= 0 && word < lane_words_, "Simulator::set_register_word: word out of range");
  values_[static_cast<std::size_t>(h.base + bit) * static_cast<std::size_t>(lane_words_) +
          static_cast<std::size_t>(word)] = lanes;
}

std::uint64_t Simulator::get_lane(WireHandle h, int lane) const {
  check(h.width <= 64, "Simulator::get_lane: wire wider than 64 bits cannot be packed "
                       "into one per-lane value");
  check(lane >= 0 && lane < num_lanes(), "Simulator::get_lane: lane out of range");
  const int word = lane >> 6;
  const int bit_in_word = lane & 63;
  std::uint64_t v = 0;
  for (std::int32_t i = 0; i < h.width; ++i) {
    v |= ((load(h.base + i, word) >> bit_in_word) & 1) << i;
  }
  return v;
}

void Simulator::set_input(const std::string& wire, std::uint64_t value) {
  set_input(input_handle(wire), value);
}

std::uint64_t Simulator::get(const std::string& wire) const {
  const WireHandle h = probe(wire);
  check(h.width <= 64, "Simulator::get: wire too wide");
  return get_lane(h, 0);
}

bool Simulator::get_bit(const SigBit& bit) const { return (load(net_of(bit), 0) & 1) != 0; }

void Simulator::eval() {
  run_tape_dispatch(lane_words_, faults_active_, segments_.data(), segments_.size(),
                    tape_.data(), values_.data(), mask_and_.data(), mask_xor_.data());
}

void Simulator::eval_reference() {
  // The pre-levelization engine: original compile order, one switch per op,
  // masks always applied. Kept as the differential oracle for the sorted
  // segmented tape and the no-fault fast path.
  const int words = lane_words_;
  for (const FlatOp& op : ops_) {
    for (int w = 0; w < words; ++w) {
      std::uint64_t v = 0;
      switch (op.kind) {
        case FlatOp::Kind::kBuf: v = load(op.a, w); break;
        case FlatOp::Kind::kNot: v = ~load(op.a, w); break;
        case FlatOp::Kind::kAnd: v = load(op.a, w) & load(op.b, w); break;
        case FlatOp::Kind::kOr: v = load(op.a, w) | load(op.b, w); break;
        case FlatOp::Kind::kXor: v = load(op.a, w) ^ load(op.b, w); break;
        case FlatOp::Kind::kXnor: v = ~(load(op.a, w) ^ load(op.b, w)); break;
        case FlatOp::Kind::kMux: {
          const std::uint64_t s = load(op.c, w);
          v = (s & load(op.b, w)) | (~s & load(op.a, w));
          break;
        }
        case FlatOp::Kind::kAoi21: v = ~((load(op.a, w) & load(op.b, w)) | load(op.c, w)); break;
        case FlatOp::Kind::kOai21: v = ~((load(op.a, w) | load(op.b, w)) & load(op.c, w)); break;
        case FlatOp::Kind::kNand: v = ~(load(op.a, w) & load(op.b, w)); break;
        case FlatOp::Kind::kNor: v = ~(load(op.a, w) | load(op.b, w)); break;
      }
      values_[static_cast<std::size_t>(op.out) * static_cast<std::size_t>(words) +
              static_cast<std::size_t>(w)] = v;
    }
  }
}

void Simulator::step() {
  eval();
  const auto words = static_cast<std::size_t>(lane_words_);
  if (faults_active_) {
    for (std::size_t i = 0; i < ffs_.size(); ++i) {
      for (std::size_t w = 0; w < words; ++w) {
        latch_buf_[i * words + w] = load(ffs_[i].d, static_cast<int>(w));
      }
    }
  } else {
    for (std::size_t i = 0; i < ffs_.size(); ++i) {
      const std::size_t d = static_cast<std::size_t>(ffs_[i].d) * words;
      for (std::size_t w = 0; w < words; ++w) latch_buf_[i * words + w] = values_[d + w];
    }
  }
  // Skip-cycle (clock-glitch) faults suppress this edge for the armed
  // FFs/lanes: the register keeps its raw stored value instead of latching
  // D. The raw word (not load()) is kept so a concurrent read-mask fault on
  // the Q net corrupts readers, not the retained state itself.
  for (const auto& [ff, lanes] : skip_ffs_) {
    const std::size_t q =
        static_cast<std::size_t>(ffs_[static_cast<std::size_t>(ff)].q) * words;
    const std::size_t base = static_cast<std::size_t>(ff) * words;
    for (std::size_t w = 0; w < words; ++w) {
      latch_buf_[base + w] =
          (latch_buf_[base + w] & ~lanes.w[w]) | (values_[q + w] & lanes.w[w]);
    }
    skip_slot_[static_cast<std::size_t>(ff)] = -1;
  }
  skip_ffs_.clear();
  for (std::size_t i = 0; i < ffs_.size(); ++i) {
    const std::size_t q = static_cast<std::size_t>(ffs_[i].q) * words;
    for (std::size_t w = 0; w < words; ++w) values_[q + w] = latch_buf_[i * words + w];
  }
  // Transient faults last one cycle: drop the flip in the recorded lanes.
  // Stuck lanes have mask_and_ = 0 there, so they are untouched.
  for (const auto& [net, lanes] : transient_nets_) {
    const std::size_t n = static_cast<std::size_t>(net) * words;
    for (std::size_t w = 0; w < words; ++w) {
      mask_xor_[n + w] &= ~(mask_and_[n + w] & lanes.w[w]);
    }
    transient_slot_[static_cast<std::size_t>(net)] = -1;
  }
  transient_nets_.clear();
  eval();
}

void Simulator::set_register(const std::string& wire, std::uint64_t value) {
  set_register(probe(wire), value);
  eval();
}

void Simulator::inject(const SigBit& bit, FaultKind kind, const LaneMask& lanes) {
  inject_net(net_of(bit), kind, lanes);
}

void Simulator::inject_net(std::int32_t net, FaultKind kind, const LaneMask& lanes) {
  check(net >= 2, "Simulator::inject: cannot fault a constant");
  const auto words = static_cast<std::size_t>(lane_words_);
  if (kind == FaultKind::kSkipCycle) {
    // Route to the FF whose Q this net is; non-register nets are a
    // documented no-op (see FaultKind::kSkipCycle). Coalesced per FF so
    // repeated arms within one cycle merge their lanes.
    const std::int32_t ff = q_to_ff_[static_cast<std::size_t>(net)];
    if (ff < 0) return;
    std::int32_t& slot = skip_slot_[static_cast<std::size_t>(ff)];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(skip_ffs_.size());
      skip_ffs_.emplace_back(ff, lanes);
    } else {
      skip_ffs_[static_cast<std::size_t>(slot)].second |= lanes;
    }
    return;
  }
  const std::size_t n = static_cast<std::size_t>(net) * words;
  // Clear the affected lanes back to pass-through, then overlay the fault.
  // Words with no selected lane are exact no-ops; skipping them keeps the
  // per-job cost of single-lane injection O(1) in the block width (the
  // executors call this once per job, 64 x lane_words times per pass).
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t l = lanes.w[w];
    if (l == 0) continue;
    mask_and_[n + w] |= l;
    mask_xor_[n + w] &= ~l;
    switch (kind) {
      case FaultKind::kNone:
        break;
      case FaultKind::kStuckAt0:
        mask_and_[n + w] &= ~l;
        break;
      case FaultKind::kStuckAt1:
        mask_and_[n + w] &= ~l;
        mask_xor_[n + w] |= l;
        break;
      case FaultKind::kTransientFlip:
        mask_xor_[n + w] |= l;
        break;
      case FaultKind::kSkipCycle:
        break;  // handled above, never reaches the mask loop
    }
  }
  if (kind == FaultKind::kNone && !skip_ffs_.empty()) {
    // Clearing a register net also disarms any pending edge skip there.
    const std::int32_t ff = q_to_ff_[static_cast<std::size_t>(net)];
    if (ff >= 0 && skip_slot_[static_cast<std::size_t>(ff)] >= 0) {
      auto& pending = skip_ffs_[static_cast<std::size_t>(skip_slot_[static_cast<std::size_t>(ff)])];
      pending.second &= ~lanes;
    }
  }
  if (kind == FaultKind::kTransientFlip) {
    // Coalesce repeated injections on one net within a cycle so step()'s
    // clear pass stays O(distinct nets).
    std::int32_t& slot = transient_slot_[static_cast<std::size_t>(net)];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(transient_nets_.size());
      transient_nets_.emplace_back(net, lanes);
    } else {
      transient_nets_[static_cast<std::size_t>(slot)].second |= lanes;
    }
  }
  if (kind != FaultKind::kNone) {
    faults_active_ = true;
    char& mark = faulted_mark_[static_cast<std::size_t>(net)];
    if (mark == 0) {
      mark = 1;
      faulted_nets_.push_back(net);
    }
  }
}

void Simulator::clear_fault(const SigBit& bit) {
  inject_net(net_of(bit), FaultKind::kNone, kAllLanes);
}

void Simulator::clear_all_faults() {
  // Only nets that armed a fault since the last clear can hold non-identity
  // masks; restoring just those blocks keeps the per-batch clear pass the
  // executors issue O(armed nets), not O(all nets x lane_words).
  const auto words = static_cast<std::size_t>(lane_words_);
  for (const std::int32_t net : faulted_nets_) {
    const std::size_t n = static_cast<std::size_t>(net) * words;
    for (std::size_t w = 0; w < words; ++w) {
      mask_and_[n + w] = ~0ULL;
      mask_xor_[n + w] = 0;
    }
    faulted_mark_[static_cast<std::size_t>(net)] = 0;
  }
  faulted_nets_.clear();
  for (const auto& [net, lanes] : transient_nets_) {
    transient_slot_[static_cast<std::size_t>(net)] = -1;
  }
  transient_nets_.clear();
  for (const auto& [ff, lanes] : skip_ffs_) {
    skip_slot_[static_cast<std::size_t>(ff)] = -1;
  }
  skip_ffs_.clear();
  faults_active_ = false;
}

}  // namespace scfi::sim
