#include "sim/netlist_sim.h"

#include <algorithm>

#include "base/error.h"

namespace scfi::sim {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::SigBit;
using rtlil::SigSpec;

Simulator::Simulator(const rtlil::Module& module) : module_(&module) {
  compile();
  reset();
}

std::int32_t Simulator::net_of(const SigBit& bit) const {
  if (bit.is_const()) return bit.const_value() ? 1 : 0;
  const auto it = wire_base_.find(bit.wire);
  check(it != wire_base_.end(), "Simulator: unknown wire " + bit.wire->name());
  return it->second + bit.offset;
}

std::int32_t Simulator::net_index(const SigBit& bit) const {
  const std::int32_t net = net_of(bit);
  check(net >= 2, "Simulator::net_index: constant bit has no net");
  return net;
}

std::int32_t Simulator::temp_net() {
  values_.push_back(0);
  mask_and_.push_back(kAllLanes);
  mask_xor_.push_back(0);
  return static_cast<std::int32_t>(values_.size()) - 1;
}

void Simulator::compile() {
  // Nets 0 and 1 are the constants, in every lane.
  values_.assign(2, 0);
  values_[1] = kAllLanes;
  mask_and_.assign(2, kAllLanes);
  mask_xor_.assign(2, 0);
  for (const rtlil::Wire* w : module_->wires()) {
    wire_base_[w] = static_cast<std::int32_t>(values_.size());
    values_.resize(values_.size() + static_cast<std::size_t>(w->width()), 0);
    mask_and_.resize(values_.size(), kAllLanes);
    mask_xor_.resize(values_.size(), 0);
  }
  const rtlil::NetlistIndex index(*module_);
  for (const Cell* cell : index.topo_comb()) compile_cell(*cell);
  for (const Cell* ff : index.ffs()) {
    const SigSpec& d = ff->port("D");
    const SigSpec& q = ff->port("Q");
    for (int i = 0; i < q.width(); ++i) {
      ffs_.push_back(FlatFf{net_of(d.bit(i)), net_of(q.bit(i)), ff->reset_value().bit(i)});
    }
  }
  latch_buf_.resize(ffs_.size());
}

void Simulator::emit_tree(FlatOp::Kind kind, std::vector<std::int32_t> terms, std::int32_t out) {
  check(!terms.empty(), "Simulator::emit_tree: empty");
  while (terms.size() > 2) {
    std::vector<std::int32_t> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      const std::int32_t t = temp_net();
      ops_.push_back(FlatOp{kind, t, terms[i], terms[i + 1], 0});
      next.push_back(t);
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  if (terms.size() == 2) {
    ops_.push_back(FlatOp{kind, out, terms[0], terms[1], 0});
  } else {
    ops_.push_back(FlatOp{FlatOp::Kind::kBuf, out, terms[0], 0, 0});
  }
}

void Simulator::compile_cell(const Cell& cell) {
  const SigSpec& y = cell.port(rtlil::output_port(cell.type()));
  const auto in = [&](const char* p) { return cell.port(p); };
  const auto bits_of = [&](const SigSpec& s) {
    std::vector<std::int32_t> nets;
    nets.reserve(static_cast<std::size_t>(s.width()));
    for (const SigBit& b : s.bits()) nets.push_back(net_of(b));
    return nets;
  };
  switch (cell.type()) {
    case CellType::kBuf:
    case CellType::kGateBuf:
      for (int i = 0; i < y.width(); ++i) {
        ops_.push_back(FlatOp{FlatOp::Kind::kBuf, net_of(y.bit(i)), net_of(in("A").bit(i)), 0, 0});
      }
      break;
    case CellType::kNot:
    case CellType::kGateInv:
      for (int i = 0; i < y.width(); ++i) {
        ops_.push_back(FlatOp{FlatOp::Kind::kNot, net_of(y.bit(i)), net_of(in("A").bit(i)), 0, 0});
      }
      break;
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kXor:
    case CellType::kXnor:
    case CellType::kGateAnd2:
    case CellType::kGateOr2:
    case CellType::kGateXor2:
    case CellType::kGateXnor2:
    case CellType::kGateNand2:
    case CellType::kGateNor2: {
      FlatOp::Kind k = FlatOp::Kind::kAnd;
      switch (cell.type()) {
        case CellType::kOr:
        case CellType::kGateOr2: k = FlatOp::Kind::kOr; break;
        case CellType::kXor:
        case CellType::kGateXor2: k = FlatOp::Kind::kXor; break;
        case CellType::kXnor:
        case CellType::kGateXnor2: k = FlatOp::Kind::kXnor; break;
        case CellType::kGateNand2: k = FlatOp::Kind::kNand; break;
        case CellType::kGateNor2: k = FlatOp::Kind::kNor; break;
        default: break;
      }
      for (int i = 0; i < y.width(); ++i) {
        ops_.push_back(FlatOp{k, net_of(y.bit(i)), net_of(in("A").bit(i)),
                              net_of(in("B").bit(i)), 0});
      }
      break;
    }
    case CellType::kMux:
    case CellType::kGateMux2: {
      const std::int32_t s = net_of(in("S").bit(0));
      for (int i = 0; i < y.width(); ++i) {
        ops_.push_back(FlatOp{FlatOp::Kind::kMux, net_of(y.bit(i)), net_of(in("A").bit(i)),
                              net_of(in("B").bit(i)), s});
      }
      break;
    }
    case CellType::kGateAoi21:
      ops_.push_back(FlatOp{FlatOp::Kind::kAoi21, net_of(y.bit(0)), net_of(in("A").bit(0)),
                            net_of(in("B").bit(0)), net_of(in("C").bit(0))});
      break;
    case CellType::kGateOai21:
      ops_.push_back(FlatOp{FlatOp::Kind::kOai21, net_of(y.bit(0)), net_of(in("A").bit(0)),
                            net_of(in("B").bit(0)), net_of(in("C").bit(0))});
      break;
    case CellType::kEq: {
      const std::vector<std::int32_t> a = bits_of(in("A"));
      const std::vector<std::int32_t> b = bits_of(in("B"));
      std::vector<std::int32_t> eq_bits;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const std::int32_t t = temp_net();
        ops_.push_back(FlatOp{FlatOp::Kind::kXnor, t, a[i], b[i], 0});
        eq_bits.push_back(t);
      }
      emit_tree(FlatOp::Kind::kAnd, std::move(eq_bits), net_of(y.bit(0)));
      break;
    }
    case CellType::kReduceAnd:
      emit_tree(FlatOp::Kind::kAnd, bits_of(in("A")), net_of(y.bit(0)));
      break;
    case CellType::kReduceOr:
      emit_tree(FlatOp::Kind::kOr, bits_of(in("A")), net_of(y.bit(0)));
      break;
    case CellType::kReduceXor:
      emit_tree(FlatOp::Kind::kXor, bits_of(in("A")), net_of(y.bit(0)));
      break;
    case CellType::kDff:
    case CellType::kGateDff:
      unreachable("compile_cell: flip-flop in combinational list");
    default:
      unreachable(std::string("compile_cell: unhandled type ") +
                  rtlil::cell_type_name(cell.type()));
  }
}

void Simulator::reset() {
  clear_all_faults();
  for (auto& v : values_) v = 0;
  values_[1] = kAllLanes;
  for (const FlatFf& ff : ffs_) {
    values_[static_cast<std::size_t>(ff.q)] = ff.reset ? kAllLanes : 0;
  }
  eval();
}

Simulator::WireHandle Simulator::probe(const std::string& wire) const {
  const rtlil::Wire* w = module_->wire(wire);
  require(w != nullptr, "Simulator::probe: no wire " + wire);
  return WireHandle{wire_base_.at(w), w->width()};
}

Simulator::WireHandle Simulator::input_handle(const std::string& wire) const {
  const rtlil::Wire* w = module_->wire(wire);
  require(w != nullptr && w->is_input(), "Simulator::input_handle: no input wire " + wire);
  return WireHandle{wire_base_.at(w), w->width()};
}

void Simulator::set_input(WireHandle h, std::uint64_t value) {
  for (std::int32_t i = 0; i < h.width; ++i) {
    values_[static_cast<std::size_t>(h.base + i)] = ((value >> i) & 1) ? kAllLanes : 0;
  }
}

void Simulator::set_input_lane(WireHandle h, int lane, std::uint64_t value) {
  const std::uint64_t bit = 1ULL << lane;
  for (std::int32_t i = 0; i < h.width; ++i) {
    auto& word = values_[static_cast<std::size_t>(h.base + i)];
    word = (word & ~bit) | (((value >> i) & 1) ? bit : 0);
  }
}

void Simulator::set_input_word(WireHandle h, int bit, std::uint64_t lanes) {
  check(bit >= 0 && bit < h.width, "Simulator::set_input_word: bit out of range");
  values_[static_cast<std::size_t>(h.base + bit)] = lanes;
}

void Simulator::set_register(WireHandle h, std::uint64_t value) {
  for (std::int32_t i = 0; i < h.width; ++i) {
    values_[static_cast<std::size_t>(h.base + i)] = ((value >> i) & 1) ? kAllLanes : 0;
  }
}

void Simulator::set_register_word(WireHandle h, int bit, std::uint64_t lanes) {
  check(bit >= 0 && bit < h.width, "Simulator::set_register_word: bit out of range");
  values_[static_cast<std::size_t>(h.base + bit)] = lanes;
}

std::uint64_t Simulator::get_lane(WireHandle h, int lane) const {
  check(h.width <= 64, "Simulator::get_lane: wire too wide");
  std::uint64_t v = 0;
  for (std::int32_t i = 0; i < h.width; ++i) {
    v |= ((load(h.base + i) >> lane) & 1) << i;
  }
  return v;
}

void Simulator::set_input(const std::string& wire, std::uint64_t value) {
  set_input(input_handle(wire), value);
}

std::uint64_t Simulator::get(const std::string& wire) const {
  const WireHandle h = probe(wire);
  check(h.width <= 64, "Simulator::get: wire too wide");
  return get_lane(h, 0);
}

bool Simulator::get_bit(const SigBit& bit) const { return (load(net_of(bit)) & 1) != 0; }

void Simulator::eval() {
  for (const FlatOp& op : ops_) {
    std::uint64_t v = 0;
    switch (op.kind) {
      case FlatOp::Kind::kBuf: v = load(op.a); break;
      case FlatOp::Kind::kNot: v = ~load(op.a); break;
      case FlatOp::Kind::kAnd: v = load(op.a) & load(op.b); break;
      case FlatOp::Kind::kOr: v = load(op.a) | load(op.b); break;
      case FlatOp::Kind::kXor: v = load(op.a) ^ load(op.b); break;
      case FlatOp::Kind::kXnor: v = ~(load(op.a) ^ load(op.b)); break;
      case FlatOp::Kind::kMux: {
        const std::uint64_t s = load(op.c);
        v = (s & load(op.b)) | (~s & load(op.a));
        break;
      }
      case FlatOp::Kind::kAoi21: v = ~((load(op.a) & load(op.b)) | load(op.c)); break;
      case FlatOp::Kind::kOai21: v = ~((load(op.a) | load(op.b)) & load(op.c)); break;
      case FlatOp::Kind::kNand: v = ~(load(op.a) & load(op.b)); break;
      case FlatOp::Kind::kNor: v = ~(load(op.a) | load(op.b)); break;
    }
    values_[static_cast<std::size_t>(op.out)] = v;
  }
}

void Simulator::step() {
  eval();
  for (std::size_t i = 0; i < ffs_.size(); ++i) latch_buf_[i] = load(ffs_[i].d);
  for (std::size_t i = 0; i < ffs_.size(); ++i) {
    values_[static_cast<std::size_t>(ffs_[i].q)] = latch_buf_[i];
  }
  // Transient faults last one cycle: drop the flip in the recorded lanes.
  // Stuck lanes have mask_and_ = 0 there, so they are untouched.
  for (const auto& [net, lanes] : transient_nets_) {
    const auto n = static_cast<std::size_t>(net);
    mask_xor_[n] &= ~(mask_and_[n] & lanes);
  }
  transient_nets_.clear();
  eval();
}

void Simulator::set_register(const std::string& wire, std::uint64_t value) {
  set_register(probe(wire), value);
  eval();
}

void Simulator::inject(const SigBit& bit, FaultKind kind, LaneMask lanes) {
  inject_net(net_of(bit), kind, lanes);
}

void Simulator::inject_net(std::int32_t net, FaultKind kind, LaneMask lanes) {
  check(net >= 2, "Simulator::inject: cannot fault a constant");
  const auto n = static_cast<std::size_t>(net);
  // Clear the affected lanes back to pass-through, then overlay the fault.
  mask_and_[n] |= lanes;
  mask_xor_[n] &= ~lanes;
  switch (kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kStuckAt0:
      mask_and_[n] &= ~lanes;
      break;
    case FaultKind::kStuckAt1:
      mask_and_[n] &= ~lanes;
      mask_xor_[n] |= lanes;
      break;
    case FaultKind::kTransientFlip:
      mask_xor_[n] |= lanes;
      transient_nets_.emplace_back(net, lanes);
      break;
  }
}

void Simulator::clear_fault(const SigBit& bit) {
  inject_net(net_of(bit), FaultKind::kNone, kAllLanes);
}

void Simulator::clear_all_faults() {
  std::fill(mask_and_.begin(), mask_and_.end(), kAllLanes);
  std::fill(mask_xor_.begin(), mask_xor_.end(), 0);
  transient_nets_.clear();
}

}  // namespace scfi::sim
