#include "sim/campaign.h"

#include <array>
#include <atomic>
#include <bit>
#include <exception>
#include <numeric>
#include <thread>
#include <unordered_map>
#include <utility>

#include "base/error.h"
#include "base/log.h"
#include "base/retry.h"
#include "base/rng.h"
#include "base/strutil.h"

namespace scfi::sim {
namespace {

using fsm::CfgEdge;
using fsm::CompiledFsm;
using fsm::Fsm;

/// Caches concrete raw-input assignments per CFG edge.
class RawInputPlanner {
 public:
  explicit RawInputPlanner(const Fsm& fsm) : fsm_(&fsm) {}

  const std::vector<bool>& input_for(const CfgEdge& edge) {
    const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(edge.from))
                               << 32) |
                              static_cast<std::uint32_t>(edge.transition_index);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    std::optional<std::vector<bool>> bits;
    if (edge.transition_index >= 0) {
      bits = fsm_->concrete_input_for(edge.transition_index);
    } else {
      bits = fsm_->concrete_input_for_idle(edge.from);
    }
    check(bits.has_value(), "campaign: no concrete input for CFG edge");
    return cache_.emplace(key, std::move(*bits)).first->second;
  }

 private:
  const Fsm* fsm_;
  std::unordered_map<std::uint64_t, std::vector<bool>> cache_;
};

/// One scheduled fault: site index (into the filtered site list), cycle, and
/// an index into the spec's kind set. Single-kind specs never draw for the
/// kind, so their schedules stay bit-identical to the pre-FaultSpec planner.
struct PlannedFault {
  std::int32_t site = 0;
  std::int32_t cycle = 0;
  std::int32_t kind = 0;
};

/// CFG edge indices grouped by source state, for the stimulus walk.
std::vector<std::vector<std::int32_t>> index_edges_from(const Fsm& fsm,
                                                        const std::vector<CfgEdge>& cfg) {
  std::vector<std::vector<std::int32_t>> edges_from(static_cast<std::size_t>(fsm.num_states()));
  for (std::size_t e = 0; e < cfg.size(); ++e) {
    edges_from[static_cast<std::size_t>(cfg[e].from)].push_back(static_cast<std::int32_t>(e));
  }
  return edges_from;
}

/// Draws one run — `cycles` walk edges, `cycles`+1 golden states, and
/// `fault.k` scheduled faults — from `rng`, appending to the out vectors.
/// `pool` must be a permutation of [0, num_sites); distinct fault sites come
/// from a partial Fisher-Yates over it. The swaps are recorded in `undo` so
/// the caller can restore the pool afterwards: every run must start from the
/// identical permutation for the plan to be a pure function of
/// (seed, run_index).
void plan_one_run(const std::vector<std::vector<std::int32_t>>& edges_from,
                  const std::vector<CfgEdge>& cfg, int reset_state, std::size_t num_sites,
                  const CampaignConfig& config, Rng& rng, std::vector<std::int32_t>& pool,
                  std::vector<std::pair<std::int32_t, std::int32_t>>& undo,
                  std::vector<std::int32_t>& edges_out, std::vector<std::int32_t>& golden_out,
                  std::vector<PlannedFault>& faults_out) {
  int g = reset_state;
  golden_out.push_back(g);
  for (int t = 0; t < config.cycles; ++t) {
    const auto& options = edges_from[static_cast<std::size_t>(g)];
    const std::int32_t e = options[static_cast<std::size_t>(rng.below(options.size()))];
    edges_out.push_back(e);
    g = cfg[static_cast<std::size_t>(e)].to;
    golden_out.push_back(g);
  }
  // Distinct fault sites via partial Fisher-Yates; only when the request
  // exceeds the population do duplicates become possible (and unavoidable).
  const auto n = static_cast<std::int64_t>(num_sites);
  const std::size_t num_kinds = config.fault.kinds.size();
  for (std::int64_t f = 0; f < config.fault.k; ++f) {
    std::int32_t site = 0;
    if (f < n) {
      const std::int64_t j =
          f + static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(n - f)));
      std::swap(pool[static_cast<std::size_t>(f)], pool[static_cast<std::size_t>(j)]);
      undo.emplace_back(static_cast<std::int32_t>(f), static_cast<std::int32_t>(j));
      site = pool[static_cast<std::size_t>(f)];
    } else {
      site = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
    }
    const auto cycle =
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(config.cycles)));
    // The kind draw is appended to the stream only for multi-kind specs, so
    // a single-kind spec's (seed, run) → plan mapping is unchanged.
    const std::int32_t kind =
        num_kinds > 1 ? static_cast<std::int32_t>(rng.below(num_kinds)) : 0;
    faults_out.push_back(PlannedFault{site, cycle, kind});
  }
}

/// Reverts the swaps plan_one_run recorded, restoring `pool` to the
/// permutation it held before the run, and clears `undo`.
void undo_pool_swaps(std::vector<std::int32_t>& pool,
                     std::vector<std::pair<std::int32_t, std::int32_t>>& undo) {
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    std::swap(pool[static_cast<std::size_t>(it->first)],
              pool[static_cast<std::size_t>(it->second)]);
  }
  undo.clear();
}

/// A fully materialized campaign: per-run walks (as global CFG edge
/// indices), golden state sequences, and fault schedules, flattened
/// run-major. Only the materializing planners build one.
struct CampaignPlan {
  int runs = 0;
  int cycles = 0;
  int num_faults = 0;
  std::vector<std::int32_t> edges;   ///< runs x cycles
  std::vector<std::int32_t> golden;  ///< runs x (cycles + 1)
  std::vector<PlannedFault> faults;  ///< runs x num_faults

  std::int32_t edge_at(int run, int t) const {
    return edges[static_cast<std::size_t>(run) * static_cast<std::size_t>(cycles) +
                 static_cast<std::size_t>(t)];
  }
  std::int32_t golden_at(int run, int t) const {
    return golden[static_cast<std::size_t>(run) * static_cast<std::size_t>(cycles + 1) +
                  static_cast<std::size_t>(t)];
  }
};

CampaignPlan plan_campaign_materialized(const Fsm& fsm, const std::vector<CfgEdge>& cfg,
                                        std::size_t num_sites, const CampaignConfig& config) {
  const std::vector<std::vector<std::int32_t>> edges_from = index_edges_from(fsm, cfg);
  CampaignPlan plan;
  plan.runs = config.runs;
  plan.cycles = config.cycles;
  plan.num_faults = config.fault.k;
  plan.edges.reserve(static_cast<std::size_t>(config.runs) *
                     static_cast<std::size_t>(config.cycles));
  plan.golden.reserve(static_cast<std::size_t>(config.runs) *
                      static_cast<std::size_t>(config.cycles + 1));
  plan.faults.reserve(static_cast<std::size_t>(config.runs) *
                      static_cast<std::size_t>(config.fault.k));

  std::vector<std::int32_t> pool(num_sites);
  std::iota(pool.begin(), pool.end(), 0);

  // The streaming plan, materialized: run k is drawn from its own
  // jump-ahead stream against the pristine pool permutation, exactly as
  // the on-the-fly planner does inside the workers.
  std::vector<std::pair<std::int32_t, std::int32_t>> undo;
  for (int run = 0; run < config.runs; ++run) {
    Rng rng(config.seed, static_cast<std::uint64_t>(run));
    plan_one_run(edges_from, cfg, fsm.reset_state, num_sites, config, rng, pool, undo,
                 plan.edges, plan.golden, plan.faults);
    undo_pool_swaps(pool, undo);
  }
  return plan;
}

/// Plan access for the batch executor, backed by a materialized plan.
struct MaterializedPlanView {
  const CampaignPlan* plan = nullptr;

  void prepare_batch(int /*base_run*/, int /*batch_runs*/) {}
  std::int32_t edge_at(int run, int t) const { return plan->edge_at(run, t); }
  std::int32_t golden_at(int run, int t) const { return plan->golden_at(run, t); }
  const PlannedFault& fault_at(int run, int f) const {
    return plan->faults[static_cast<std::size_t>(run) *
                            static_cast<std::size_t>(plan->num_faults) +
                        static_cast<std::size_t>(f)];
  }
};

/// Plan access that derives each batch on demand: run k's walk and fault
/// schedule come from Rng(seed, k), so a view holds at most `lanes` runs —
/// O(lanes) memory however large the campaign — and any worker can plan any
/// batch without coordination.
class StreamingPlanView {
 public:
  StreamingPlanView(const std::vector<std::vector<std::int32_t>>& edges_from,
                    const std::vector<CfgEdge>& cfg, int reset_state, std::size_t num_sites,
                    const CampaignConfig& config)
      : edges_from_(&edges_from),
        cfg_(&cfg),
        reset_state_(reset_state),
        num_sites_(num_sites),
        config_(&config),
        pool_(num_sites) {
    std::iota(pool_.begin(), pool_.end(), 0);
    const auto lanes = static_cast<std::size_t>(config.lanes);
    edges_.reserve(lanes * static_cast<std::size_t>(config.cycles));
    golden_.reserve(lanes * static_cast<std::size_t>(config.cycles + 1));
    faults_.reserve(lanes * static_cast<std::size_t>(config.fault.k));
  }

  void prepare_batch(int base_run, int batch_runs) {
    base_run_ = base_run;
    edges_.clear();
    golden_.clear();
    faults_.clear();
    for (int lane = 0; lane < batch_runs; ++lane) {
      Rng rng(config_->seed, static_cast<std::uint64_t>(base_run + lane));
      plan_one_run(*edges_from_, *cfg_, reset_state_, num_sites_, *config_, rng, pool_, undo_,
                   edges_, golden_, faults_);
      undo_pool_swaps(pool_, undo_);
    }
  }

  std::int32_t edge_at(int run, int t) const {
    return edges_[static_cast<std::size_t>(run - base_run_) *
                      static_cast<std::size_t>(config_->cycles) +
                  static_cast<std::size_t>(t)];
  }
  std::int32_t golden_at(int run, int t) const {
    return golden_[static_cast<std::size_t>(run - base_run_) *
                       static_cast<std::size_t>(config_->cycles + 1) +
                   static_cast<std::size_t>(t)];
  }
  const PlannedFault& fault_at(int run, int f) const {
    return faults_[static_cast<std::size_t>(run - base_run_) *
                       static_cast<std::size_t>(config_->fault.k) +
                   static_cast<std::size_t>(f)];
  }

 private:
  const std::vector<std::vector<std::int32_t>>* edges_from_;
  const std::vector<CfgEdge>* cfg_;
  int reset_state_;
  std::size_t num_sites_;
  const CampaignConfig* config_;
  int base_run_ = 0;
  std::vector<std::int32_t> pool_;
  std::vector<std::pair<std::int32_t, std::int32_t>> undo_;
  std::vector<std::int32_t> edges_;
  std::vector<std::int32_t> golden_;
  std::vector<PlannedFault> faults_;
};

/// Everything the per-batch executor needs, resolved once per campaign:
/// symbol codes / raw input bits per CFG edge, packed as integers.
struct StimulusTable {
  bool encoded = false;
  std::vector<std::uint64_t> edge_code;  ///< encoded: symbol codeword per edge
  std::vector<std::uint64_t> edge_bits;  ///< raw: packed input bits per edge
  int num_inputs = 0;
};

StimulusTable build_stimulus(const Fsm& fsm, const CompiledFsm& variant,
                             const std::vector<CfgEdge>& cfg) {
  StimulusTable table;
  table.encoded = variant.symbol_width > 0;
  if (table.encoded) {
    table.edge_code.reserve(cfg.size());
    for (const CfgEdge& e : cfg) table.edge_code.push_back(variant.symbol_codes.at(e.symbol));
  } else {
    require(fsm.num_inputs() <= 64,
            format("run_campaign: raw-input (unencoded) variants pack each run's "
                   "control bits into one 64-bit stimulus word, so at most 64 "
                   "control bits are representable; this FSM has %d — use a "
                   "symbol-encoded variant",
                   fsm.num_inputs()));
    table.num_inputs = fsm.num_inputs();
    RawInputPlanner planner(fsm);
    table.edge_bits.reserve(cfg.size());
    for (const CfgEdge& e : cfg) {
      const std::vector<bool>& bits = planner.input_for(e);
      std::uint64_t packed = 0;
      for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) packed |= 1ULL << i;
      }
      table.edge_bits.push_back(packed);
    }
  }
  return table;
}

/// Executes batches [batch_begin, batch_end) on a private Simulator and
/// accumulates outcome counts. `plan` provides (and, for the streaming
/// view, derives) each batch's runs. Outcomes are per-lane and the counts
/// are plain integer sums, so sharding batches across threads cannot change
/// the aggregate result. Lane sets are runtime-width word arrays (W =
/// lane_words_for(config.lanes)) rather than full kMaxLaneWords LaneMask
/// blocks, so the classic 64-lane configuration pays for exactly one word.
template <typename PlanView>
void execute_batches(const Fsm& fsm, const CompiledFsm& variant,
                     const std::vector<FaultSite>& sites, const CampaignConfig& config,
                     const StimulusTable& stim, PlanView& plan, int batch_begin, int batch_end,
                     CampaignResult& out) {
  const int W = lane_words_for(config.lanes);
  Simulator sim(*variant.module, W);

  // Pre-resolve every name the cycle loop would otherwise look up.
  std::vector<std::int32_t> site_net;
  site_net.reserve(sites.size());
  for (const FaultSite& s : sites) site_net.push_back(sim.net_index(s.bit));
  const Simulator::WireHandle state_h = sim.probe(variant.state_wire);
  Simulator::WireHandle alert_h;
  if (!variant.alert_wire.empty()) alert_h = sim.probe(variant.alert_wire);
  Simulator::WireHandle symbol_h;
  std::vector<Simulator::WireHandle> raw_h;
  if (stim.encoded) {
    symbol_h = sim.input_handle(variant.symbol_input_wire);
  } else {
    for (const std::string& name : fsm.inputs) raw_h.push_back(sim.input_handle(name));
  }
  const int in_width = stim.encoded ? symbol_h.width : stim.num_inputs;
  // Per-lane words, runtime width W: index [i * W + w].
  std::vector<std::uint64_t> in_words(static_cast<std::size_t>(in_width * W));
  check(state_h.width <= 64, "run_campaign: state wire too wide");
  const int state_w = state_h.width;
  const std::size_t num_states = variant.state_codes.size();
  std::vector<std::uint64_t> state_words(static_cast<std::size_t>(state_w * W));
  std::vector<std::uint64_t> state_eq(num_states * static_cast<std::size_t>(W));
  using Lanes = std::array<std::uint64_t, kMaxLaneWords>;  // words [0, W) used

  const int lanes = config.lanes;
  for (int batch = batch_begin; batch < batch_end; ++batch) {
    // Cooperative cancellation at batch granularity: a fired token (sweep
    // job deadline) stops the worker here, with no half-simulated batch.
    if (config.cancel != nullptr) config.cancel->check("run_campaign");
    const int base_run = batch * lanes;
    const int batch_runs = std::min(lanes, config.runs - base_run);
    const LaneMask batch_mask = LaneMask::first_n(batch_runs);
    plan.prepare_batch(base_run, batch_runs);

    sim.reset();
    Lanes done{};      // lane terminated (detected)
    Lanes detected{};  // subset of done
    // Folds the alert wire into detected/done for lanes still running.
    const auto absorb_alerts = [&] {
      if (!alert_h.valid()) return;
      for (int w = 0; w < W; ++w) {
        std::uint64_t alert = 0;
        for (std::int32_t i = 0; i < alert_h.width; ++i) {
          alert |= sim.lane_word(alert_h.base + i, w);
        }
        const std::uint64_t newly =
            alert & batch_mask.w[static_cast<std::size_t>(w)] & ~done[static_cast<std::size_t>(w)];
        detected[static_cast<std::size_t>(w)] |= newly;
        done[static_cast<std::size_t>(w)] |= newly;
      }
    };
    const auto all_done = [&] {
      for (int w = 0; w < W; ++w) {
        if (done[static_cast<std::size_t>(w)] != batch_mask.w[static_cast<std::size_t>(w)]) {
          return false;
        }
      }
      return true;
    };
    Lanes deviated{};  // reached a valid state != golden
    Lanes invalid{};   // reached a non-codeword
    Lanes not_lag{};   // deviation beyond a missed transition
    for (int t = 0; t < config.cycles && !all_done(); ++t) {
      // Drive per-lane stimulus for this cycle.
      std::fill(in_words.begin(), in_words.end(), 0);
      for (int lane = 0; lane < batch_runs; ++lane) {
        const auto wj = static_cast<std::size_t>(lane >> 6);
        const std::uint64_t bit = 1ULL << (lane & 63);
        const std::int32_t e = plan.edge_at(base_run + lane, t);
        const std::uint64_t bits =
            stim.encoded ? stim.edge_code[static_cast<std::size_t>(e)]
                         : stim.edge_bits[static_cast<std::size_t>(e)];
        for (int i = 0; i < in_width; ++i) {
          if ((bits >> i) & 1) in_words[static_cast<std::size_t>(i * W) + wj] |= bit;
        }
      }
      for (int i = 0; i < in_width; ++i) {
        for (int w = 0; w < W; ++w) {
          const std::uint64_t word = in_words[static_cast<std::size_t>(i * W + w)];
          if (stim.encoded) {
            sim.set_input_word(symbol_h, i, word, w);
          } else {
            sim.set_input_word(raw_h[static_cast<std::size_t>(i)], 0, word, w);
          }
        }
      }
      // Inject this cycle's faults, lane by lane.
      for (int lane = 0; lane < batch_runs; ++lane) {
        for (int f = 0; f < config.fault.k; ++f) {
          const PlannedFault& p = plan.fault_at(base_run + lane, f);
          if (p.cycle == t) {
            sim.inject_net(site_net[static_cast<std::size_t>(p.site)],
                           config.fault.kinds[static_cast<std::size_t>(p.kind)],
                           LaneMask::lane(lane));
          }
        }
      }
      sim.eval();
      absorb_alerts();
      sim.step();
      // Word-parallel classification: compare the state register of all
      // lanes against every codeword at once instead of decoding per lane.
      for (int i = 0; i < state_w; ++i) {
        for (int w = 0; w < W; ++w) {
          state_words[static_cast<std::size_t>(i * W + w)] = sim.lane_word(state_h.base + i, w);
        }
      }
      // A code with bits beyond the register width can never match.
      const auto fits = [state_w](std::uint64_t code) {
        return state_w >= 64 || (code >> state_w) == 0;
      };
      Lanes live{};
      for (int w = 0; w < W; ++w) {
        live[static_cast<std::size_t>(w)] =
            batch_mask.w[static_cast<std::size_t>(w)] & ~done[static_cast<std::size_t>(w)];
      }
      if (variant.has_error_state) {
        for (int w = 0; w < W; ++w) {
          std::uint64_t err = fits(variant.error_code) ? live[static_cast<std::size_t>(w)] : 0;
          for (int i = 0; i < state_w && err != 0; ++i) {
            const std::uint64_t sw = state_words[static_cast<std::size_t>(i * W + w)];
            err &= ((variant.error_code >> i) & 1) ? sw : ~sw;
          }
          detected[static_cast<std::size_t>(w)] |= err;
          done[static_cast<std::size_t>(w)] |= err;
          live[static_cast<std::size_t>(w)] &= ~err;
        }
      }
      Lanes valid{};
      for (std::size_t s = 0; s < num_states; ++s) {
        const std::uint64_t code = variant.state_codes[s];
        for (int w = 0; w < W; ++w) {
          std::uint64_t eq = fits(code) ? live[static_cast<std::size_t>(w)] : 0;
          for (int i = 0; i < state_w && eq != 0; ++i) {
            const std::uint64_t sw = state_words[static_cast<std::size_t>(i * W + w)];
            eq &= ((code >> i) & 1) ? sw : ~sw;
          }
          state_eq[s * static_cast<std::size_t>(W) + static_cast<std::size_t>(w)] = eq;
          valid[static_cast<std::size_t>(w)] |= eq;
        }
      }
      Lanes match_expect{};
      Lanes match_prev{};
      for (int lane = 0; lane < batch_runs; ++lane) {
        const auto wj = static_cast<std::size_t>(lane >> 6);
        const std::uint64_t bit = 1ULL << (lane & 63);
        if (!(live[wj] & bit)) continue;
        match_expect[wj] |=
            state_eq[static_cast<std::size_t>(plan.golden_at(base_run + lane, t + 1)) *
                         static_cast<std::size_t>(W) +
                     wj] &
            bit;
        match_prev[wj] |=
            state_eq[static_cast<std::size_t>(plan.golden_at(base_run + lane, t)) *
                         static_cast<std::size_t>(W) +
                     wj] &
            bit;
      }
      for (int w = 0; w < W; ++w) {
        const auto j = static_cast<std::size_t>(w);
        invalid[j] |= live[j] & ~valid[j];
        not_lag[j] |= live[j] & ~valid[j];
        const std::uint64_t dev = live[j] & valid[j] & ~match_expect[j];
        deviated[j] |= dev;
        not_lag[j] |= dev & ~match_prev[j];
      }
    }
    // Final combinational alert check (covers a deviation on the last cycle).
    sim.eval();
    absorb_alerts();
    for (int w = 0; w < W; ++w) {
      const auto j = static_cast<std::size_t>(w);
      out.detected += std::popcount(detected[j]);
      const std::uint64_t live = batch_mask.w[j] & ~done[j];
      out.silent_invalid += std::popcount(live & invalid[j]);
      const std::uint64_t dev = live & ~invalid[j] & deviated[j];
      out.hijacked += std::popcount(dev & not_lag[j]);
      out.lagged += std::popcount(dev & ~not_lag[j]);
      out.masked += std::popcount(live & ~invalid[j] & ~deviated[j]);
    }
  }
}

/// Shards [0, num_batches) across `workers` threads, giving each worker its
/// own plan view from `make_view`, and merges the partial counts.
template <typename ViewFactory>
void execute_all(const Fsm& fsm, const CompiledFsm& variant,
                 const std::vector<FaultSite>& sites, const CampaignConfig& config,
                 const StimulusTable& stim, int num_batches, int workers,
                 ViewFactory make_view, CampaignResult& result) {
  if (workers <= 1) {
    auto view = make_view();
    execute_batches(fsm, variant, sites, config, stim, view, 0, num_batches, result);
    return;
  }
  std::vector<CampaignResult> partial(static_cast<std::size_t>(workers));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    const int begin = static_cast<int>(static_cast<std::int64_t>(num_batches) * w / workers);
    const int end = static_cast<int>(static_cast<std::int64_t>(num_batches) * (w + 1) / workers);
    pool.emplace_back([&, w, begin, end] {
      try {
        auto view = make_view();
        execute_batches(fsm, variant, sites, config, stim, view, begin, end,
                        partial[static_cast<std::size_t>(w)]);
      } catch (...) {
        errors[static_cast<std::size_t>(w)] = std::current_exception();
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (const CampaignResult& p : partial) {
    result.masked += p.masked;
    result.detected += p.detected;
    result.hijacked += p.hijacked;
    result.lagged += p.lagged;
    result.silent_invalid += p.silent_invalid;
  }
}

}  // namespace

std::int64_t planned_bytes(const CampaignConfig& config) {
  const auto runs = static_cast<std::int64_t>(config.runs);
  const auto cycles = static_cast<std::int64_t>(config.cycles);
  const std::int64_t edges = runs * cycles * static_cast<std::int64_t>(sizeof(std::int32_t));
  const std::int64_t golden =
      runs * (cycles + 1) * static_cast<std::int64_t>(sizeof(std::int32_t));
  const std::int64_t faults = runs * static_cast<std::int64_t>(config.fault.k) *
                              static_cast<std::int64_t>(sizeof(PlannedFault));
  return edges + golden + faults;
}

CampaignResult run_campaign(const Fsm& fsm, const CompiledFsm& variant,
                            const CampaignConfig& user_config) {
  check(variant.module != nullptr, "run_campaign: variant has no module");
  require(user_config.lanes >= 1 && user_config.lanes <= kMaxLanes,
          format("run_campaign: lanes must be in [1, %d] (64 x lane_words)", kMaxLanes));
  // SCFI_LANE_WORDS_CAP clamps the *derived* simulator width (the CI
  // portable leg forces 1-word blocks this way). lanes is an execution
  // knob, so shrinking it cannot change the aggregate result.
  CampaignConfig config = user_config;
  config.lanes = std::min(config.lanes, kWordLanes * lane_words_cap());
  const bool materializes = config.planner != CampaignPlanner::kStreaming;
  if (materializes && config.max_plan_bytes > 0) {
    const std::int64_t plan_bytes = planned_bytes(config);
    require(plan_bytes <= config.max_plan_bytes,
            format("run_campaign: campaign plan needs ~%lld bytes, above the "
                   "max_plan_bytes cap of %lld; use the streaming planner or "
                   "shrink runs/cycles or raise the cap",
                   static_cast<long long>(plan_bytes),
                   static_cast<long long>(config.max_plan_bytes)));
    static std::atomic<bool> warned{false};
    if (plan_bytes > config.max_plan_bytes / 2 && !warned.exchange(true)) {
      log_warn(format("run_campaign: campaign plan materializes ~%lld bytes up front "
                      "(cap %lld); plans are ~8 bytes per run-cycle plus 12 per fault "
                      "— the streaming planner needs O(lanes) instead",
                      static_cast<long long>(plan_bytes),
                      static_cast<long long>(config.max_plan_bytes)));
    }
  }
  const std::vector<FaultSite> all_sites =
      enumerate_fault_sites(*variant.module, variant.state_wire);
  const std::vector<FaultSite> sites = filter_sites(all_sites, config.fault.target);
  require(!sites.empty(), "run_campaign: no fault sites for the requested target class");

  const std::vector<CfgEdge> cfg = fsm.cfg_edges();
  const StimulusTable stim = build_stimulus(fsm, variant, cfg);

  CampaignResult result;
  result.runs = config.runs;
  // 64-bit ceil-divide: runs close to INT_MAX must not overflow the
  // rounding term (the streaming planner accepts sizes the plan cap used
  // to reject long before this line).
  const int num_batches = static_cast<int>(
      (static_cast<std::int64_t>(config.runs) + config.lanes - 1) / config.lanes);
  const int workers = std::max(1, std::min(config.threads, num_batches));
  if (materializes) {
    const CampaignPlan plan = plan_campaign_materialized(fsm, cfg, sites.size(), config);
    execute_all(fsm, variant, sites, config, stim, num_batches, workers,
                [&plan] { return MaterializedPlanView{&plan}; }, result);
  } else {
    const std::vector<std::vector<std::int32_t>> edges_from = index_edges_from(fsm, cfg);
    execute_all(fsm, variant, sites, config, stim, num_batches, workers,
                [&] {
                  return StreamingPlanView(edges_from, cfg, fsm.reset_state, sites.size(),
                                           config);
                },
                result);
  }
  return result;
}

}  // namespace scfi::sim
