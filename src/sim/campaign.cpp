#include "sim/campaign.h"

#include <map>

#include "base/error.h"
#include "base/rng.h"

namespace scfi::sim {
namespace {

using fsm::CfgEdge;
using fsm::CompiledFsm;
using fsm::Fsm;

/// Caches concrete raw-input assignments per CFG edge.
class RawInputPlanner {
 public:
  explicit RawInputPlanner(const Fsm& fsm) : fsm_(&fsm) {}

  std::vector<bool> input_for(const CfgEdge& edge) {
    const auto key = std::make_pair(edge.from, edge.transition_index);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    std::optional<std::vector<bool>> bits;
    if (edge.transition_index >= 0) {
      bits = fsm_->concrete_input_for(edge.transition_index);
    } else {
      bits = fsm_->concrete_input_for_idle(edge.from);
    }
    check(bits.has_value(), "campaign: no concrete input for CFG edge");
    cache_.emplace(key, *bits);
    return *bits;
  }

 private:
  const Fsm* fsm_;
  std::map<std::pair<int, int>, std::vector<bool>> cache_;
};

}  // namespace

CampaignResult run_campaign(const Fsm& fsm, const CompiledFsm& variant,
                            const CampaignConfig& config) {
  check(variant.module != nullptr, "run_campaign: variant has no module");
  Simulator sim(*variant.module);
  const std::vector<FaultSite> all_sites =
      enumerate_fault_sites(*variant.module, variant.state_wire);
  const std::vector<FaultSite> sites = filter_sites(all_sites, config.target);
  require(!sites.empty(), "run_campaign: no fault sites for the requested target class");

  // Pre-index CFG edges per state for the stimulus walk.
  std::vector<std::vector<CfgEdge>> edges_from(static_cast<std::size_t>(fsm.num_states()));
  for (const CfgEdge& e : fsm.cfg_edges()) {
    edges_from[static_cast<std::size_t>(e.from)].push_back(e);
  }
  RawInputPlanner planner(fsm);
  Rng rng(config.seed);
  CampaignResult result;
  result.runs = config.runs;

  for (int run = 0; run < config.runs; ++run) {
    // Build the walk: one CFG edge per cycle, from the golden state.
    std::vector<CfgEdge> walk;
    std::vector<int> golden;
    int g = fsm.reset_state;
    golden.push_back(g);
    for (int t = 0; t < config.cycles; ++t) {
      const auto& options = edges_from[static_cast<std::size_t>(g)];
      const CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
      walk.push_back(e);
      g = e.to;
      golden.push_back(g);
    }

    // Schedule the faults: distinct sites, random cycles.
    struct Planned {
      FaultSite site;
      int cycle;
    };
    std::vector<Planned> planned;
    std::vector<std::size_t> chosen;
    for (int f = 0; f < config.num_faults; ++f) {
      std::size_t idx = 0;
      for (int attempt = 0; attempt < 16; ++attempt) {
        idx = static_cast<std::size_t>(rng.below(sites.size()));
        bool dup = false;
        for (std::size_t c : chosen) dup |= (c == idx);
        if (!dup) break;
      }
      chosen.push_back(idx);
      planned.push_back(Planned{sites[idx], static_cast<int>(rng.below(
                                                static_cast<std::uint64_t>(config.cycles)))});
    }

    sim.reset();
    bool done = false;
    bool deviated_valid = false;
    bool saw_invalid = false;
    bool lag_only = true;
    for (int t = 0; t < config.cycles && !done; ++t) {
      const CfgEdge& e = walk[static_cast<std::size_t>(t)];
      if (variant.symbol_width > 0) {
        sim.set_input(variant.symbol_input_wire, variant.symbol_codes.at(e.symbol));
      } else {
        const std::vector<bool> bits = planner.input_for(e);
        for (std::size_t i = 0; i < bits.size(); ++i) {
          sim.set_input(fsm.inputs[i], bits[i] ? 1 : 0);
        }
      }
      for (const Planned& p : planned) {
        if (p.cycle == t) sim.inject(p.site.bit, config.kind);
      }
      sim.eval();
      if (!variant.alert_wire.empty() && sim.get(variant.alert_wire) != 0) {
        ++result.detected;
        done = true;
        break;
      }
      sim.step();
      const std::uint64_t reg = sim.get(variant.state_wire);
      if (variant.has_error_state && reg == variant.error_code) {
        ++result.detected;
        done = true;
        break;
      }
      const int decoded = variant.decode_state(reg);
      const int expect = golden[static_cast<std::size_t>(t + 1)];
      if (decoded < 0) {
        saw_invalid = true;
        lag_only = false;
      } else if (decoded != expect) {
        deviated_valid = true;
        if (decoded != golden[static_cast<std::size_t>(t)]) lag_only = false;
      }
    }
    if (done) continue;
    // Final combinational alert check (covers a deviation on the last cycle).
    sim.eval();
    if (!variant.alert_wire.empty() && sim.get(variant.alert_wire) != 0) {
      ++result.detected;
      continue;
    }
    if (saw_invalid) {
      ++result.silent_invalid;
    } else if (deviated_valid) {
      if (lag_only) {
        ++result.lagged;
      } else {
        ++result.hijacked;
      }
    } else {
      ++result.masked;
    }
  }
  return result;
}

}  // namespace scfi::sim
