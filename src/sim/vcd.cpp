#include "sim/vcd.h"

#include "base/error.h"

namespace scfi::sim {

VcdWriter::VcdWriter(const Simulator& sim, std::vector<std::string> wires)
    : sim_(&sim), wires_(std::move(wires)) {
  if (wires_.empty()) {
    for (const rtlil::Wire* w : sim.module().wires()) {
      if (w->is_input() || w->is_output()) wires_.push_back(w->name());
    }
  }
  for (const std::string& name : wires_) {
    require(sim.module().wire(name) != nullptr, "VcdWriter: unknown wire " + name);
  }
}

void VcdWriter::sample(std::uint64_t t) {
  std::vector<std::uint64_t> values;
  values.reserve(wires_.size());
  for (const std::string& name : wires_) values.push_back(sim_->get(name));
  samples_.emplace_back(t, std::move(values));
}

void VcdWriter::write(std::ostream& out) const {
  out << "$timescale 1ns $end\n";
  out << "$scope module " << sim_->module().name() << " $end\n";
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    const rtlil::Wire* w = sim_->module().wire(wires_[i]);
    out << "$var wire " << w->width() << " v" << i << " " << wires_[i] << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";
  std::vector<std::uint64_t> last(wires_.size(), ~0ULL);
  for (const auto& [t, values] : samples_) {
    out << "#" << t << "\n";
    for (std::size_t i = 0; i < wires_.size(); ++i) {
      if (values[i] == last[i]) continue;
      const rtlil::Wire* w = sim_->module().wire(wires_[i]);
      if (w->width() == 1) {
        out << (values[i] & 1) << "v" << i << "\n";
      } else {
        out << "b";
        for (int b = w->width() - 1; b >= 0; --b) out << ((values[i] >> b) & 1);
        out << " v" << i << "\n";
      }
      last[i] = values[i];
    }
  }
}

}  // namespace scfi::sim
