// Cycle-accurate two-valued netlist simulator with fault injection,
// bit-parallel over 64 independent lanes.
//
// The module (word-level, gate-level, or mixed) is flattened once into a
// topologically-ordered list of bit operations. Every net stores a 64-bit
// word whose bit k is the net's value in lane k, so one eval() advances 64
// independent simulations at once (parallel-pattern simulation, the classic
// fault-simulation speedup). Gate ops are full-word bitwise expressions.
//
// Faults are per-net, per-lane masks applied at *read* time, so a stuck or
// flipped net corrupts every consumer (combinational logic, flip-flop D pins,
// and observers alike) — matching the transient/stuck-at fault model of the
// paper (§2.1) — and different lanes can fault different sites and cycles in
// the same pass.
//
// The string-based API drives and reads lane 0 and broadcasts writes to all
// lanes, so single-lane callers see exactly the scalar semantics. Hot loops
// should pre-resolve WireHandles (input_handle()/probe()) and net indices
// once and then use the handle/lane entry points, which never touch
// std::string or hash maps.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlil/validate.h"

namespace scfi::sim {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kStuckAt0,
  kStuckAt1,
  kTransientFlip,  ///< cleared automatically at the end of the next step()
};

/// Number of independent simulation lanes per Simulator instance.
inline constexpr int kNumLanes = 64;

/// Bit k set = lane k is affected.
using LaneMask = std::uint64_t;
inline constexpr LaneMask kAllLanes = ~0ULL;

class Simulator {
 public:
  /// Pre-resolved wire reference: contiguous net indices [base, base+width).
  struct WireHandle {
    std::int32_t base = -1;
    std::int32_t width = 0;
    bool valid() const { return base >= 0; }
  };

  explicit Simulator(const rtlil::Module& module);

  const rtlil::Module& module() const { return *module_; }

  /// Applies flip-flop reset values and zeroes all inputs (all lanes), then
  /// settles. Also clears every fault.
  void reset();

  /// Drives an input wire in every lane (value is LSB-first over the wire
  /// bits).
  void set_input(const std::string& wire, std::uint64_t value);

  /// Lane-0 value of a wire (fault-corrected, as consumers see it).
  std::uint64_t get(const std::string& wire) const;
  bool get_bit(const rtlil::SigBit& bit) const;

  /// Settles combinational logic for the current inputs/state (all lanes).
  void eval();

  /// One clock cycle: settle, latch every flip-flop, clear transients,
  /// settle again.
  void step();

  /// Overwrites the stored value of a register output bit in every lane
  /// (direct state corruption, e.g. modelling a fault that already latched),
  /// then settles.
  void set_register(const std::string& wire, std::uint64_t value);

  // --- pre-resolved handles (hot paths; no strings, no hashing) -----------

  /// Handle for driving an input wire. Throws when `wire` is not an input.
  WireHandle input_handle(const std::string& wire) const;
  /// Handle for observing any wire.
  WireHandle probe(const std::string& wire) const;
  /// Net index of a (non-constant) signal bit.
  std::int32_t net_index(const rtlil::SigBit& bit) const;

  /// Drives every lane of an input wire with the same value.
  void set_input(WireHandle h, std::uint64_t value);
  /// Drives one lane of an input wire, leaving the other lanes untouched.
  void set_input_lane(WireHandle h, int lane, std::uint64_t value);
  /// Drives one bit of an input wire with an explicit 64-lane word.
  void set_input_word(WireHandle h, int bit, std::uint64_t lanes);
  /// Overwrites the stored register value in every lane; does NOT settle.
  void set_register(WireHandle h, std::uint64_t value);
  /// Overwrites one bit of a stored register value with an explicit 64-lane
  /// word (per-lane state stimulus); does NOT settle.
  void set_register_word(WireHandle h, int bit, std::uint64_t lanes);
  /// Fault-corrected wire value as one lane sees it.
  std::uint64_t get_lane(WireHandle h, int lane) const;
  std::uint64_t get(WireHandle h) const { return get_lane(h, 0); }
  /// Fault-corrected 64-lane word of a single net.
  std::uint64_t lane_word(std::int32_t net) const { return load(net); }

  // --- fault injection ----------------------------------------------------

  /// Injects in every lane (scalar semantics).
  void inject(const rtlil::SigBit& bit, FaultKind kind) { inject(bit, kind, kAllLanes); }
  /// Injects in the given lanes only; other lanes keep their faults.
  void inject(const rtlil::SigBit& bit, FaultKind kind, LaneMask lanes);
  /// Same, on a pre-resolved net index.
  void inject_net(std::int32_t net, FaultKind kind, LaneMask lanes);
  void clear_fault(const rtlil::SigBit& bit);
  void clear_all_faults();

  /// Number of simulated nets (diagnostics).
  int num_nets() const { return static_cast<int>(values_.size()); }

 private:
  struct FlatOp {
    enum class Kind : std::uint8_t {
      kBuf, kNot, kAnd, kOr, kXor, kXnor, kMux, kAoi21, kOai21, kNand, kNor
    };
    Kind kind;
    std::int32_t out;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;  ///< S for mux, C for AOI/OAI
  };
  struct FlatFf {
    std::int32_t d;
    std::int32_t q;
    bool reset;
  };

  std::int32_t net_of(const rtlil::SigBit& bit) const;
  std::int32_t temp_net();

  /// Fault-corrected 64-lane word: lanes with a stuck fault have
  /// mask_and_ = 0 (and mask_xor_ = the stuck value); lanes with a transient
  /// flip have mask_xor_ = 1. Unfaulted lanes pass through.
  std::uint64_t load(std::int32_t net) const {
    const auto n = static_cast<std::size_t>(net);
    return (values_[n] & mask_and_[n]) ^ mask_xor_[n];
  }

  void compile();
  void compile_cell(const rtlil::Cell& cell);
  /// Emits a balanced gate tree over `terms`, writing the result to `out`.
  void emit_tree(FlatOp::Kind kind, std::vector<std::int32_t> terms, std::int32_t out);

  const rtlil::Module* module_;
  std::unordered_map<const rtlil::Wire*, std::int32_t> wire_base_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> mask_and_;
  std::vector<std::uint64_t> mask_xor_;
  std::vector<FlatOp> ops_;
  std::vector<FlatFf> ffs_;
  std::vector<std::uint64_t> latch_buf_;  ///< scratch for step(), avoids reallocating
  /// Nets (and lanes) carrying a transient flip, for automatic clearing.
  std::vector<std::pair<std::int32_t, LaneMask>> transient_nets_;
};

}  // namespace scfi::sim
