// Cycle-accurate two-valued netlist simulator with fault injection,
// bit-parallel over 64 x `lane_words` independent lanes.
//
// The module (word-level, gate-level, or mixed) is flattened once into a
// topologically-ordered list of bit operations. Net storage is a
// structure-of-arrays *lane block*: every net owns `lane_words` consecutive
// 64-bit words (values_[net * W + w]), so word w, bit k is the net's value
// in lane w*64 + k and one eval() advances up to 512 independent simulations
// at once (parallel-pattern simulation, the classic fault-simulation
// speedup). The per-word inner loop of every gate op is a tight stride-1
// stream over the block, auto-vectorizable to AVX2/AVX-512; the eval core is
// templated on the word count with the 1-word layout as the portable
// fallback, and (on x86-64 GCC) compiled into per-ISA clones selected at
// runtime — no intrinsics anywhere.
//
// Instead of a per-gate switch, eval() runs a *kind-segmented, levelized op
// tape*: at compile time the flat ops are stably sorted by (topological
// level, op kind), so evaluation is a sequence of branch-free tight loops —
// one per contiguous same-kind segment — instead of a per-gate dispatch.
// `eval_reference()` keeps the original-order switch-per-op tape as the
// differential oracle for that reordering.
//
// Faults are per-net, per-lane masks applied at *read* time, so a stuck or
// flipped net corrupts every consumer (combinational logic, flip-flop D pins,
// and observers alike) — matching the transient/stuck-at fault model of the
// paper (§2.1) — and different lanes can fault different sites and cycles in
// the same pass. While no fault is armed, eval() skips the mask streams
// entirely (the no-fault fast path; bit-identical by construction since the
// masks are the identity).
//
// The string-based API drives and reads lane 0 and broadcasts writes to all
// lanes, so single-lane callers see exactly the scalar semantics. Hot loops
// should pre-resolve WireHandles (input_handle()/probe()) and net indices
// once and then use the handle/lane/word entry points, which never touch
// std::string or hash maps.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlil/validate.h"

namespace scfi::sim {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kStuckAt0,
  kStuckAt1,
  kTransientFlip,  ///< cleared automatically at the end of the next step()
  /// Clock-glitch model: the flip-flop driving the injected Q net skips the
  /// next clock edge (keeps its stored value instead of latching D) in the
  /// chosen lanes, then re-arms to normal. Injecting it on a net that is not
  /// a register output is a documented no-op — a glitch starves a register,
  /// not a wire. Not representable as a read-time mask, so it has no SAT
  /// translation (the SAT backend rejects it).
  kSkipCycle,
};

/// Lanes carried by one 64-bit word of a lane block.
inline constexpr int kWordLanes = 64;
/// Supported lane-block widths: lane_words in {1, 2, 4, 8}.
inline constexpr int kMaxLaneWords = 8;
/// Maximum lanes of the widest block (8 words x 64 lanes).
inline constexpr int kMaxLanes = kMaxLaneWords * kWordLanes;
/// Historical name for the lanes of a 1-word Simulator (the default width);
/// kept because "64 runs per word" is still the packing granularity.
inline constexpr int kNumLanes = kWordLanes;

/// A set of lanes across the widest supported block: word w, bit k = lane
/// w*64 + k. Constructible from a plain 64-bit word (lanes 0..63) so legacy
/// `1ULL << lane` call sites keep working; words beyond a Simulator's
/// lane_words are ignored by it.
struct LaneMask {
  std::array<std::uint64_t, kMaxLaneWords> w{};

  constexpr LaneMask() = default;
  constexpr LaneMask(std::uint64_t word0) : w{word0} {}  // NOLINT: implicit

  static constexpr LaneMask all() {
    LaneMask m;
    for (auto& word : m.w) word = ~0ULL;
    return m;
  }
  static constexpr LaneMask lane(int lane) {
    LaneMask m;
    m.w[static_cast<std::size_t>(lane >> 6)] = 1ULL << (lane & 63);
    return m;
  }
  /// Lanes [0, n).
  static constexpr LaneMask first_n(int n) {
    LaneMask m;
    for (int j = 0; j * kWordLanes < n; ++j) {
      const int in_word = n - j * kWordLanes;
      m.w[static_cast<std::size_t>(j)] =
          in_word >= kWordLanes ? ~0ULL : (1ULL << in_word) - 1;
    }
    return m;
  }

  constexpr bool test(int lane) const {
    return (w[static_cast<std::size_t>(lane >> 6)] >> (lane & 63)) & 1;
  }
  constexpr bool any() const {
    for (const auto word : w) {
      if (word != 0) return true;
    }
    return false;
  }
  constexpr LaneMask& operator|=(const LaneMask& o) {
    for (std::size_t j = 0; j < w.size(); ++j) w[j] |= o.w[j];
    return *this;
  }
  constexpr LaneMask& operator&=(const LaneMask& o) {
    for (std::size_t j = 0; j < w.size(); ++j) w[j] &= o.w[j];
    return *this;
  }
  friend constexpr LaneMask operator|(LaneMask a, const LaneMask& b) { return a |= b; }
  friend constexpr LaneMask operator&(LaneMask a, const LaneMask& b) { return a &= b; }
  friend constexpr LaneMask operator~(LaneMask a) {
    for (auto& word : a.w) word = ~word;
    return a;
  }
  bool operator==(const LaneMask&) const = default;
};

inline constexpr LaneMask kAllLanes = LaneMask::all();

/// Lane-block words needed to carry `lanes` lanes, rounded up to the next
/// supported width ({1, 2, 4, 8}). `lanes` must be in [1, kMaxLanes].
int lane_words_for(int lanes);

/// Runtime clamp on *derived* lane widths (campaign/SYNFI/sweep executors):
/// the SCFI_LANE_WORDS_CAP environment variable (1..8, read once) caps how
/// many words those engines select from their `lanes` knob, so CI can force
/// the portable 1-word path (`SCFI_LANE_WORDS_CAP=1`) without touching any
/// configs. Explicit Simulator construction is never clamped. Returns
/// kMaxLaneWords when the variable is unset or invalid.
int lane_words_cap();

namespace detail {

/// One flattened bit operation of the compiled netlist.
struct FlatOp {
  enum class Kind : std::uint8_t {
    kBuf, kNot, kAnd, kOr, kXor, kXnor, kMux, kAoi21, kOai21, kNand, kNor
  };
  Kind kind;
  std::int32_t out;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;  ///< S for mux, C for AOI/OAI
};

/// A maximal run of same-kind ops in the levelized tape: eval() executes
/// [begin, end) of the sorted tape in one branch-free loop.
struct TapeSegment {
  FlatOp::Kind kind;
  std::uint32_t begin;
  std::uint32_t end;
};

}  // namespace detail

class Simulator {
 public:
  /// Pre-resolved wire reference: contiguous net indices [base, base+width).
  struct WireHandle {
    std::int32_t base = -1;
    std::int32_t width = 0;
    bool valid() const { return base >= 0; }
  };

  /// `lane_words` selects the lane-block width (64 x lane_words lanes);
  /// must be one of {1, 2, 4, 8}. The default 1-word block reproduces the
  /// historical 64-lane engine (and is the portable fallback layout).
  explicit Simulator(const rtlil::Module& module, int lane_words = 1);

  const rtlil::Module& module() const { return *module_; }
  int lane_words() const { return lane_words_; }
  int num_lanes() const { return lane_words_ * kWordLanes; }

  /// Applies flip-flop reset values and zeroes all inputs (all lanes), then
  /// settles. Also clears every fault.
  void reset();

  /// Drives an input wire in every lane (value is LSB-first over the wire
  /// bits).
  void set_input(const std::string& wire, std::uint64_t value);

  /// Lane-0 value of a wire (fault-corrected, as consumers see it).
  std::uint64_t get(const std::string& wire) const;
  bool get_bit(const rtlil::SigBit& bit) const;

  /// Settles combinational logic for the current inputs/state (all lanes)
  /// by streaming through the kind-segmented levelized tape.
  void eval();

  /// Settles via the original-order switch-per-op tape. Bit-identical to
  /// eval() by construction; kept (and tested) as the differential oracle
  /// for the levelized reordering and the no-fault fast path.
  void eval_reference();

  /// One clock cycle: settle, latch every flip-flop, clear transients,
  /// settle again.
  void step();

  /// Overwrites the stored value of a register output bit in every lane
  /// (direct state corruption, e.g. modelling a fault that already latched),
  /// then settles.
  void set_register(const std::string& wire, std::uint64_t value);

  // --- pre-resolved handles (hot paths; no strings, no hashing) -----------

  /// Handle for driving an input wire. Throws when `wire` is not an input.
  WireHandle input_handle(const std::string& wire) const;
  /// Handle for observing any wire.
  WireHandle probe(const std::string& wire) const;
  /// Net index of a (non-constant) signal bit.
  std::int32_t net_index(const rtlil::SigBit& bit) const;

  /// Drives every lane of an input wire with the same value.
  void set_input(WireHandle h, std::uint64_t value);
  /// Drives one lane (0..num_lanes()-1) of an input wire, leaving the other
  /// lanes untouched.
  void set_input_lane(WireHandle h, int lane, std::uint64_t value);
  /// Drives one bit of an input wire with an explicit 64-lane word for lane
  /// block word `word` (lanes word*64 .. word*64+63).
  void set_input_word(WireHandle h, int bit, std::uint64_t lanes, int word = 0);
  /// Overwrites the stored register value in every lane; does NOT settle.
  void set_register(WireHandle h, std::uint64_t value);
  /// Overwrites one bit of a stored register value with an explicit 64-lane
  /// word for lane block word `word` (per-lane state stimulus); does NOT
  /// settle.
  void set_register_word(WireHandle h, int bit, std::uint64_t lanes, int word = 0);
  /// Fault-corrected wire value as one lane (0..num_lanes()-1) sees it.
  std::uint64_t get_lane(WireHandle h, int lane) const;
  std::uint64_t get(WireHandle h) const { return get_lane(h, 0); }
  /// Fault-corrected 64-lane word `word` of a single net.
  std::uint64_t lane_word(std::int32_t net, int word = 0) const {
    return load(net, word);
  }

  // --- fault injection ----------------------------------------------------

  /// Injects in every lane (scalar semantics).
  void inject(const rtlil::SigBit& bit, FaultKind kind) { inject(bit, kind, kAllLanes); }
  /// Injects in the given lanes only; other lanes keep their faults.
  void inject(const rtlil::SigBit& bit, FaultKind kind, const LaneMask& lanes);
  /// Same, on a pre-resolved net index.
  void inject_net(std::int32_t net, FaultKind kind, const LaneMask& lanes);
  void clear_fault(const rtlil::SigBit& bit);
  void clear_all_faults();

  /// Number of simulated nets (diagnostics).
  int num_nets() const { return num_nets_; }
  /// Distinct nets queued for transient auto-clear (diagnostics: repeated
  /// inject_net calls on one net within a cycle coalesce into one entry).
  int pending_transient_nets() const {
    return static_cast<int>(transient_nets_.size());
  }
  /// Distinct flip-flops armed to skip the next clock edge (diagnostics;
  /// coalesced per FF like pending_transient_nets()).
  int pending_skip_ffs() const { return static_cast<int>(skip_ffs_.size()); }

 private:
  std::int32_t net_of(const rtlil::SigBit& bit) const;
  std::int32_t temp_net();

  /// Fault-corrected 64-lane word `word`: lanes with a stuck fault have
  /// mask_and_ = 0 (and mask_xor_ = the stuck value); lanes with a transient
  /// flip have mask_xor_ = 1. Unfaulted lanes pass through.
  std::uint64_t load(std::int32_t net, int word = 0) const {
    const auto i = static_cast<std::size_t>(net) *
                       static_cast<std::size_t>(lane_words_) +
                   static_cast<std::size_t>(word);
    return (values_[i] & mask_and_[i]) ^ mask_xor_[i];
  }

  void compile();
  void compile_cell(const rtlil::Cell& cell);
  void build_tape();
  /// Emits a balanced gate tree over `terms`, writing the result to `out`.
  void emit_tree(detail::FlatOp::Kind kind, std::vector<std::int32_t> terms,
                 std::int32_t out);

  struct FlatFf {
    std::int32_t d;
    std::int32_t q;
    bool reset;
  };

  const rtlil::Module* module_;
  int lane_words_ = 1;
  std::int32_t num_nets_ = 0;
  std::unordered_map<const rtlil::Wire*, std::int32_t> wire_base_;
  // Structure-of-arrays lane blocks: index net * lane_words_ + word.
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> mask_and_;
  std::vector<std::uint64_t> mask_xor_;
  std::vector<detail::FlatOp> ops_;         ///< compile order (oracle tape)
  std::vector<detail::FlatOp> tape_;        ///< sorted by (level, kind)
  std::vector<detail::TapeSegment> segments_;
  std::vector<FlatFf> ffs_;
  std::vector<std::uint64_t> latch_buf_;  ///< scratch for step(), ffs x words
  /// True whenever any fault may be armed (conservative; reset by
  /// clear_all_faults). While false, eval() skips the mask streams.
  bool faults_active_ = false;
  /// Nets (and lanes) carrying a transient flip, for automatic clearing.
  /// Coalesced per net: transient_slot_[net] indexes this vector (-1 =
  /// absent) so repeated injections within one cycle merge their masks and
  /// step()'s clear pass stays O(distinct nets).
  std::vector<std::pair<std::int32_t, LaneMask>> transient_nets_;
  std::vector<std::int32_t> transient_slot_;
  /// Flip-flops (by ffs_ index) whose next clock edge is suppressed in the
  /// recorded lanes (kSkipCycle), coalesced per FF via skip_slot_. Applied
  /// and cleared by the next step(); independent of the read-time mask
  /// machinery, so arming a skip does not set faults_active_.
  std::vector<std::pair<std::int32_t, LaneMask>> skip_ffs_;
  std::vector<std::int32_t> skip_slot_;
  /// Q-net -> ffs_ index (-1 for non-register nets), for kSkipCycle routing.
  std::vector<std::int32_t> q_to_ff_;
  /// Every net whose mask block may have left identity since the last
  /// clear_all_faults(), deduplicated via faulted_mark_, so the clear pass
  /// restores O(distinct armed nets x lane_words) words instead of
  /// re-filling the whole mask arrays (the executors clear once per batch).
  std::vector<std::int32_t> faulted_nets_;
  std::vector<char> faulted_mark_;
};

}  // namespace scfi::sim
