// Cycle-accurate two-valued netlist simulator with fault injection.
//
// The module (word-level, gate-level, or mixed) is flattened once into a
// topologically-ordered list of bit operations; eval() interprets that list.
// Faults are applied at *read* time, so a stuck or flipped net corrupts every
// consumer (combinational logic, flip-flop D pins, and observers alike) —
// matching the transient/stuck-at fault model of the paper (§2.1).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlil/validate.h"

namespace scfi::sim {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kStuckAt0,
  kStuckAt1,
  kTransientFlip,  ///< cleared automatically at the end of the next step()
};

class Simulator {
 public:
  explicit Simulator(const rtlil::Module& module);

  const rtlil::Module& module() const { return *module_; }

  /// Applies flip-flop reset values and zeroes all inputs, then settles.
  void reset();

  /// Drives an input wire (value is LSB-first over the wire bits).
  void set_input(const std::string& wire, std::uint64_t value);

  /// Current value of a wire (fault-corrected, as consumers see it).
  std::uint64_t get(const std::string& wire) const;
  bool get_bit(const rtlil::SigBit& bit) const;

  /// Settles combinational logic for the current inputs/state.
  void eval();

  /// One clock cycle: settle, latch every flip-flop, clear transients,
  /// settle again.
  void step();

  /// Overwrites the stored value of a register output bit (direct state
  /// corruption, e.g. modelling a fault that already latched).
  void set_register(const std::string& wire, std::uint64_t value);

  // --- fault injection ----------------------------------------------------
  void inject(const rtlil::SigBit& bit, FaultKind kind);
  void clear_fault(const rtlil::SigBit& bit);
  void clear_all_faults();

  /// Number of simulated nets (diagnostics).
  int num_nets() const { return static_cast<int>(values_.size()); }

 private:
  struct FlatOp {
    enum class Kind : std::uint8_t {
      kBuf, kNot, kAnd, kOr, kXor, kXnor, kMux, kAoi21, kOai21, kNand, kNor
    };
    Kind kind;
    std::int32_t out;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;  ///< S for mux, C for AOI/OAI
  };
  struct FlatFf {
    std::int32_t d;
    std::int32_t q;
    bool reset;
  };

  std::int32_t net_of(const rtlil::SigBit& bit) const;
  std::int32_t temp_net();
  bool load(std::int32_t net) const;

  void compile();
  void compile_cell(const rtlil::Cell& cell);
  /// Emits a balanced gate tree over `terms`, writing the result to `out`.
  void emit_tree(FlatOp::Kind kind, std::vector<std::int32_t> terms, std::int32_t out);

  const rtlil::Module* module_;
  std::unordered_map<const rtlil::Wire*, std::int32_t> wire_base_;
  std::vector<std::uint8_t> values_;
  std::vector<FaultKind> faults_;
  std::vector<FlatOp> ops_;
  std::vector<FlatFf> ffs_;
  std::vector<std::int32_t> transient_nets_;  ///< for automatic clearing
};

}  // namespace scfi::sim
