// Fault-site enumeration over compiled modules.
//
// Sites map onto the paper's fault targets (§3.1):
//   FT1 — state register bits,
//   FT2 — control signal inputs,
//   FT3 — outputs of combinational logic in the module (incl. the hardened
//         next-state function), plus non-state register bits.
//
// Sites are lane-agnostic: a FaultSite names a net, and the executors decide
// per pass which of the simulator's 64 x lane_words lanes inject it (see
// sim::LaneMask in netlist_sim.h).
#pragma once

#include <string>
#include <vector>

#include "rtlil/module.h"
#include "sim/netlist_sim.h"

namespace scfi::sim {

enum class FaultTarget {
  kControlInputs,  ///< FT2
  kStateRegister,  ///< FT1
  kLogic,          ///< FT3
  kAny,
};

struct FaultSite {
  rtlil::SigBit bit;
  FaultTarget target = FaultTarget::kLogic;
  std::string description;
};

/// Enumerates all injectable sites. `state_wire` marks FT1 bits; every module
/// input is FT2; every combinational cell output (and non-state FF output)
/// is FT3.
std::vector<FaultSite> enumerate_fault_sites(const rtlil::Module& module,
                                             const std::string& state_wire);

/// Filters sites by target class (kAny keeps everything).
std::vector<FaultSite> filter_sites(const std::vector<FaultSite>& sites, FaultTarget target);

/// The adversary model shared by every engine (SYNFI, campaign, sweep): how
/// many concurrent faults per run/query (`k`), which target class they may
/// land on, and which physical fault kinds the attacker can produce. The
/// default spec is the historical single-transient-flip-anywhere adversary,
/// so existing configs keep their exact semantics (and bit-identical
/// schedules) unless a caller widens the model.
struct FaultSpec {
  /// Concurrent faults per campaign run / SYNFI combination. The paper's
  /// distance argument says an encoding with minimum distance d tolerates
  /// every k < d; k = d is the first potentially exploitable count.
  int k = 1;
  FaultTarget target = FaultTarget::kAny;
  /// Fault kinds the adversary draws from. Campaign schedules draw uniformly
  /// per fault when more than one kind is listed; a single-kind spec keeps
  /// the historical plan stream bit-identical.
  std::vector<FaultKind> kinds = {FaultKind::kTransientFlip};

  bool operator==(const FaultSpec&) const = default;
};

}  // namespace scfi::sim
