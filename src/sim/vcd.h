// Minimal VCD (value change dump) writer for debugging simulations.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/netlist_sim.h"

namespace scfi::sim {

/// Records selected wires of a running simulation and emits a VCD document.
class VcdWriter {
 public:
  /// `wires` lists the wire names to trace; empty = all named ports.
  VcdWriter(const Simulator& sim, std::vector<std::string> wires);

  /// Samples the current wire values at time `t` (call once per cycle).
  void sample(std::uint64_t t);

  /// Writes the complete document.
  void write(std::ostream& out) const;

 private:
  const Simulator* sim_;
  std::vector<std::string> wires_;
  std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>> samples_;
};

}  // namespace scfi::sim
