// FSM-to-netlist compilation (the unprotected reference implementation) and
// the shared description of compiled FSM variants.
//
// Three kinds of modules are produced in this repo:
//   * unprotected (here): raw control bits, priority guard logic, plain
//     binary state register — the paper's reference (i).
//   * redundancy (src/redundancy): encoded control symbols, N-fold
//     next-state logic + registers, mismatch alert — the paper's (ii).
//   * SCFI (src/core): encoded control symbols, MDS-hardened next-state
//     function, infective error logic — the paper's (iii).
// All three fill in a CompiledFsm so simulators and fault campaigns can
// locate the state register, decode states, and drive inputs uniformly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fsm/fsm.h"
#include "rtlil/design.h"

namespace scfi::fsm {

/// Uniform handle on a compiled FSM variant.
struct CompiledFsm {
  rtlil::Module* module = nullptr;
  std::string state_wire;                        ///< Q wire of the state register
  int state_width = 0;
  std::vector<std::uint64_t> state_codes;        ///< state index -> register code
  std::map<std::string, std::uint64_t> symbol_codes;  ///< symbol -> codeword (encoded variants)
  int symbol_width = 0;                          ///< 0 for raw-bit variants
  std::string symbol_input_wire;                 ///< input wire for encoded variants
  std::string alert_wire;                        ///< 1-bit alert output ("" if none)
  std::uint64_t error_code = 0;                  ///< terminal ERROR register value (SCFI)
  bool has_error_state = false;

  /// Maps a register value back to a state index; -1 when invalid.
  int decode_state(std::uint64_t reg_value) const;
};

struct CompileOptions {
  std::string module_name;                 ///< default: fsm.name
  std::vector<std::uint64_t> state_codes;  ///< empty = binary encoding
  int state_width = 0;                     ///< 0 = minimal binary width
};

/// Compiles the unprotected FSM: raw control-bit inputs, Mealy outputs,
/// priority-ordered guard logic, no alert.
CompiledFsm compile_unprotected(const Fsm& fsm, rtlil::Design& design,
                                const CompileOptions& options = {});

/// Builds the combinational "one copy" of a symbol-encoded next-state
/// function: for every CFG edge, (state == enc(from)) && (x == code(sym))
/// selects enc(to); unmatched inputs keep the current state. Shared by the
/// redundancy baseline. Returns the next-state signal.
rtlil::SigSpec build_symbol_next_state(rtlil::Module& module, const Fsm& fsm,
                                       const rtlil::SigSpec& state, const rtlil::SigSpec& xenc,
                                       const std::vector<std::uint64_t>& state_codes,
                                       const std::map<std::string, std::uint64_t>& symbol_codes);

/// Builds per-edge exclusive activation signals from raw control bits with
/// priority semantics; edge order matches fsm.cfg_edges() restricted to
/// explicit transitions. Used for Mealy output logic.
std::vector<rtlil::SigSpec> build_raw_edge_actives(rtlil::Module& module, const Fsm& fsm,
                                                   const rtlil::SigSpec& state,
                                                   const std::vector<rtlil::SigSpec>& input_bits,
                                                   const std::vector<std::uint64_t>& state_codes);

}  // namespace scfi::fsm
