// KISS2 reader/writer — the standard interchange format for FSM benchmarks
// (LGSynth/MCNC). Lets the SCFI flow consume third-party state machines.
#pragma once

#include <string>

#include "fsm/fsm.h"

namespace scfi::fsm {

/// Parses KISS2 text. Supported directives: .i .o .s .p .r and .e/.end
/// (which terminates parsing — trailing text is ignored); transitions are
/// `<input-pattern> <from> <to> <output-pattern>`. Input names are
/// generated as x0..x{n-1}, outputs as y0..y{m-1}. CRLF input is accepted.
/// Every malformed input — bad/overflowing `.i`/`.o` counts, contradictory
/// redeclarations, width mismatches, an unused `.r` state — raises
/// ScfiError naming the offending line (never a bare std:: exception).
Fsm parse_kiss2(const std::string& text, const std::string& name = "kiss2");

/// Serializes an FSM to KISS2 text.
std::string write_kiss2(const Fsm& fsm);

}  // namespace scfi::fsm
