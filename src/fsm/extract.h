// Automatic FSM discovery + recovery from an arbitrary netlist — the front
// half of Yosys' fsm_detect/fsm_extract (§5.1 of the paper), generalized
// from sim/extract.h which needs the state wire named up front.
//
// Detection is structural: a candidate state register is a wire whose bits
// are all flip-flop outputs and whose next-state cone's flip-flop support is
// exactly the wire itself (self-feeding and self-contained — datapath
// pipeline registers fail the self-feeding test, registers fed by other
// registers fail self-containment). Recovery is exhaustive simulation over
// the cone-relevant input bits, BFS from the reset code, followed by
// adjacent-implicant cube compaction; the encoding of the discovered codes
// is classified as binary / one-hot / other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsm/fsm.h"
#include "rtlil/module.h"

namespace scfi::fsm {

enum class StateEncoding : std::uint8_t {
  kBinary,  ///< codes are exactly {0, ..., n-1}
  kOneHot,  ///< every code has exactly one bit set
  kOther,
};

const char* encoding_name(StateEncoding encoding);

struct ExtractOptions {
  int max_inputs = 14;   ///< exhaustive 2^n bound on cone-relevant inputs
  int max_states = 256;  ///< reachable-state bound (runaway counters)
  bool capture_outputs = true;
};

/// One recovered machine. `state_codes[i]` is the register code of
/// `fsm.states[i]` (named "s<code>", reset state first).
struct ExtractedFsm {
  std::string state_wire;
  StateEncoding encoding = StateEncoding::kOther;
  std::vector<std::uint64_t> state_codes;
  Fsm fsm;
};

/// Structural scan only (no simulation): names of candidate state-register
/// wires, in module wire order. Empty when the module has no FSM.
std::vector<std::string> find_state_registers(const rtlil::Module& module);

/// Recovers every candidate state register as an Fsm (validated by
/// Fsm::check). A module with no FSM yields an empty vector without error;
/// a candidate exceeding the exhaustive bounds throws ScfiError.
std::vector<ExtractedFsm> extract_fsms(const rtlil::Module& module,
                                       const ExtractOptions& options = {});

// --- shared with sim::extract_fsm ------------------------------------------

/// One recovered (input-cube) -> (next state, outputs) row.
struct ExtractCube {
  std::string guard;
  std::uint64_t next = 0;
  std::string output;
};

/// Merges cubes that differ in exactly one determined position and agree on
/// (next, output) until no merge applies — adjacent-implicant compaction
/// (Quine-McCluskey restricted to exact unions). The resulting guards of one
/// state partition the input space, so priority order never matters.
void compact_cubes(std::vector<ExtractCube>& cubes);

}  // namespace scfi::fsm
