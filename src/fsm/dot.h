// Graphviz DOT export of the FSM control-flow graph (paper Figure 2).
#pragma once

#include <string>

#include "fsm/fsm.h"

namespace scfi::fsm {

/// Renders the CFG; implicit idle self-loops are drawn dashed.
std::string to_dot(const Fsm& fsm);

}  // namespace scfi::fsm
