#include "fsm/kiss2.h"

#include <sstream>

#include "base/error.h"
#include "base/strutil.h"

namespace scfi::fsm {

Fsm parse_kiss2(const std::string& text, const std::string& name) {
  Fsm fsm;
  fsm.name = name;
  int declared_inputs = -1;
  int declared_outputs = -1;
  std::string reset_name;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const std::string stripped = trim(line.substr(0, line.find('#')));
    if (stripped.empty()) continue;
    const std::vector<std::string> tok = split(stripped);
    if (tok[0] == ".i") {
      require(tok.size() == 2, "kiss2: malformed .i");
      declared_inputs = std::stoi(tok[1]);
    } else if (tok[0] == ".o") {
      require(tok.size() == 2, "kiss2: malformed .o");
      declared_outputs = std::stoi(tok[1]);
    } else if (tok[0] == ".r") {
      require(tok.size() == 2, "kiss2: malformed .r");
      reset_name = tok[1];
    } else if (tok[0] == ".s" || tok[0] == ".p" || tok[0] == ".e" || tok[0] == ".end") {
      continue;  // counts are recomputed; .e terminates
    } else {
      require(tok.size() == 4, "kiss2: transition line needs 4 fields: " + stripped);
      if (fsm.inputs.empty()) {
        require(declared_inputs >= 0 && declared_outputs >= 0,
                "kiss2: .i/.o must precede transitions");
        for (int i = 0; i < declared_inputs; ++i) fsm.inputs.push_back("x" + std::to_string(i));
        for (int i = 0; i < declared_outputs; ++i) fsm.outputs.push_back("y" + std::to_string(i));
      }
      require(tok[0].size() == static_cast<std::size_t>(declared_inputs),
              "kiss2: input pattern width mismatch: " + stripped);
      require(tok[3].size() == static_cast<std::size_t>(declared_outputs),
              "kiss2: output pattern width mismatch: " + stripped);
      fsm.add_transition(tok[1], tok[0], tok[2], tok[3]);
    }
  }
  require(!fsm.states.empty(), "kiss2: no transitions found");
  if (!reset_name.empty()) {
    const int r = fsm.state_index(reset_name);
    require(r >= 0, "kiss2: reset state " + reset_name + " never used");
    fsm.reset_state = r;
  }
  fsm.check();
  return fsm;
}

std::string write_kiss2(const Fsm& fsm) {
  std::ostringstream out;
  out << ".i " << fsm.num_inputs() << "\n";
  out << ".o " << fsm.num_outputs() << "\n";
  out << ".p " << fsm.transitions.size() << "\n";
  out << ".s " << fsm.num_states() << "\n";
  out << ".r " << fsm.states[static_cast<std::size_t>(fsm.reset_state)] << "\n";
  for (const Transition& t : fsm.transitions) {
    out << t.guard << " " << fsm.states[static_cast<std::size_t>(t.from)] << " "
        << fsm.states[static_cast<std::size_t>(t.to)] << " "
        << (t.output.empty() ? std::string(fsm.outputs.size(), '-') : t.output) << "\n";
  }
  out << ".e\n";
  return out.str();
}

}  // namespace scfi::fsm
