#include "fsm/kiss2.h"

#include <climits>
#include <cstdlib>
#include <sstream>

#include "base/error.h"
#include "base/strutil.h"

namespace scfi::fsm {
namespace {

/// Parses a `.i`/`.o` count. std::stoi would let malformed or overflowing
/// counts escape as std::invalid_argument/std::out_of_range and silently
/// accept trailing junk ("12abc" -> 12); this consumes the whole token or
/// throws ScfiError carrying the offending line.
int parse_count(const std::string& token, const std::string& line) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(token.c_str(), &end, 10);
  require(end != token.c_str() && *end == '\0' && errno != ERANGE && value >= 0 &&
              value <= INT_MAX,
          "kiss2: malformed count in directive: " + line);
  return static_cast<int>(value);
}

/// Handles a `.i`/`.o` (re)declaration: the first declaration wins, an exact
/// duplicate is tolerated, and a contradictory redeclaration — or any
/// redeclaration once transitions have started (the widths are already
/// baked into the generated port names) — is rejected.
void declare_count(int& declared, int value, bool transitions_started,
                   const std::string& line) {
  require(!transitions_started || declared < 0,
          "kiss2: .i/.o redeclared after transitions: " + line);
  require(declared < 0 || declared == value,
          "kiss2: contradictory .i/.o redeclaration: " + line);
  declared = value;
}

}  // namespace

Fsm parse_kiss2(const std::string& text, const std::string& name) {
  Fsm fsm;
  fsm.name = name;
  int declared_inputs = -1;
  int declared_outputs = -1;
  std::string reset_name;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    // trim() also strips the '\r' a CRLF file leaves behind after getline.
    const std::string stripped = trim(line.substr(0, line.find('#')));
    if (stripped.empty()) continue;
    const std::vector<std::string> tok = split(stripped);
    if (tok[0] == ".e" || tok[0] == ".end") {
      break;  // end of description: trailing text is NOT parsed as transitions
    }
    if (tok[0] == ".i") {
      require(tok.size() == 2, "kiss2: malformed .i");
      declare_count(declared_inputs, parse_count(tok[1], stripped),
                    !fsm.transitions.empty(), stripped);
    } else if (tok[0] == ".o") {
      require(tok.size() == 2, "kiss2: malformed .o");
      declare_count(declared_outputs, parse_count(tok[1], stripped),
                    !fsm.transitions.empty(), stripped);
    } else if (tok[0] == ".r") {
      require(tok.size() == 2, "kiss2: malformed .r");
      reset_name = tok[1];
    } else if (tok[0] == ".s" || tok[0] == ".p") {
      continue;  // state/product counts are recomputed
    } else {
      require(tok.size() == 4, "kiss2: transition line needs 4 fields: " + stripped);
      require(declared_inputs >= 0 && declared_outputs >= 0,
              "kiss2: .i/.o must precede transitions");
      // Width checks come BEFORE the port names are generated so an absurd
      // declared count never materializes millions of name strings.
      require(tok[0].size() == static_cast<std::size_t>(declared_inputs),
              "kiss2: input pattern width mismatch: " + stripped);
      require(tok[3].size() == static_cast<std::size_t>(declared_outputs),
              "kiss2: output pattern width mismatch: " + stripped);
      if (fsm.inputs.empty() && fsm.outputs.empty()) {
        for (int i = 0; i < declared_inputs; ++i) fsm.inputs.push_back("x" + std::to_string(i));
        for (int i = 0; i < declared_outputs; ++i) fsm.outputs.push_back("y" + std::to_string(i));
      }
      fsm.add_transition(tok[1], tok[0], tok[2], tok[3]);
    }
  }
  require(!fsm.states.empty(), "kiss2: no transitions found");
  if (!reset_name.empty()) {
    const int r = fsm.state_index(reset_name);
    require(r >= 0, "kiss2: reset state " + reset_name + " never used");
    fsm.reset_state = r;
  }
  fsm.check();
  return fsm;
}

std::string write_kiss2(const Fsm& fsm) {
  std::ostringstream out;
  out << ".i " << fsm.num_inputs() << "\n";
  out << ".o " << fsm.num_outputs() << "\n";
  out << ".p " << fsm.transitions.size() << "\n";
  out << ".s " << fsm.num_states() << "\n";
  out << ".r " << fsm.states[static_cast<std::size_t>(fsm.reset_state)] << "\n";
  for (const Transition& t : fsm.transitions) {
    out << t.guard << " " << fsm.states[static_cast<std::size_t>(t.from)] << " "
        << fsm.states[static_cast<std::size_t>(t.to)] << " "
        << (t.output.empty() ? std::string(fsm.outputs.size(), '-') : t.output) << "\n";
  }
  out << ".e\n";
  return out.str();
}

}  // namespace scfi::fsm
