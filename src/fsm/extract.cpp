#include "fsm/extract.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_set>

#include "base/error.h"
#include "rtlil/validate.h"
#include "sim/netlist_sim.h"

namespace scfi::fsm {
namespace {

using rtlil::Cell;
using rtlil::NetlistIndex;
using rtlil::SigBit;
using rtlil::Wire;

/// Combinational fan-in cone of a set of bits: the flip-flop output wires
/// and primary-input bits it transitively depends on.
struct Cone {
  std::set<const Wire*> ff_wires;
  std::unordered_set<SigBit> input_bits;
};

void trace_cone(const NetlistIndex& index, const rtlil::SigSpec& start, Cone& cone) {
  std::vector<SigBit> stack;
  std::unordered_set<SigBit> visited;
  for (const SigBit& b : start.bits()) stack.push_back(b);
  while (!stack.empty()) {
    const SigBit bit = stack.back();
    stack.pop_back();
    if (bit.is_const() || !visited.insert(bit).second) continue;
    Cell* driver = index.driver(bit);
    if (driver == nullptr) {
      // validate_module guarantees inputs are never driven; an undriven
      // non-input bit is a floating net and contributes nothing.
      if (bit.wire->is_input()) cone.input_bits.insert(bit);
      continue;
    }
    if (rtlil::is_ff(driver->type())) {
      cone.ff_wires.insert(bit.wire);
      continue;
    }
    for (const std::string& port : rtlil::input_ports(driver->type())) {
      for (const SigBit& b : driver->port(port).bits()) stack.push_back(b);
    }
  }
}

/// Candidate state registers with the flip-flop cells that drive them.
struct Candidate {
  const Wire* wire = nullptr;
  std::vector<Cell*> ffs;
};

std::vector<Candidate> find_candidates(const rtlil::Module& module, const NetlistIndex& index) {
  std::vector<Candidate> out;
  for (const Wire* w : module.wires()) {
    if (w->width() < 1 || w->width() > 64) continue;
    // Every bit must come out of a flip-flop.
    std::set<Cell*> ff_cells;
    bool all_ff = true;
    for (int off = 0; off < w->width() && all_ff; ++off) {
      Cell* driver = index.driver(SigBit(w, off));
      if (driver == nullptr || !rtlil::is_ff(driver->type())) {
        all_ff = false;
        break;
      }
      ff_cells.insert(driver);
    }
    if (!all_ff) continue;
    // The register must be drivable independently: none of its flip-flops
    // may latch bits of another wire (concat Q targets span registers).
    bool self_owned = true;
    for (const Cell* cell : ff_cells) {
      for (const SigBit& q : cell->port("Q").bits()) {
        if (q.is_const() || q.wire != w) self_owned = false;
      }
    }
    if (!self_owned) continue;
    // Self-feeding and self-contained: the next-state cone's flip-flop
    // support is exactly this wire.
    Cone cone;
    for (const Cell* cell : ff_cells) trace_cone(index, cell->port("D"), cone);
    if (cone.ff_wires.size() != 1 || *cone.ff_wires.begin() != w) continue;
    Candidate c;
    c.wire = w;
    c.ffs.assign(ff_cells.begin(), ff_cells.end());
    out.push_back(std::move(c));
  }
  return out;
}

std::string bit_name(const SigBit& bit) {
  if (bit.wire->width() == 1) return bit.wire->name();
  return bit.wire->name() + "[" + std::to_string(bit.offset) + "]";
}

StateEncoding classify(const std::vector<std::uint64_t>& codes) {
  std::set<std::uint64_t> set(codes.begin(), codes.end());
  bool binary = true;
  for (std::uint64_t i = 0; i < codes.size(); ++i) binary = binary && set.count(i) != 0;
  if (binary) return StateEncoding::kBinary;
  const bool one_hot = std::all_of(codes.begin(), codes.end(), [](std::uint64_t c) {
    return c != 0 && (c & (c - 1)) == 0;
  });
  if (one_hot) return StateEncoding::kOneHot;
  return StateEncoding::kOther;
}

ExtractedFsm recover(const rtlil::Module& module, const NetlistIndex& index,
                     const Candidate& cand, const ExtractOptions& options) {
  const std::string where = "fsm extract: " + module.name() + "." + cand.wire->name() + ": ";

  // Cone-relevant inputs: the next-state cone plus the cones of every
  // captured output. Outputs are captured when they depend on this register
  // and nothing else that holds state.
  Cone state_cone;
  for (const Cell* cell : cand.ffs) trace_cone(index, cell->port("D"), state_cone);
  std::unordered_set<SigBit> relevant = state_cone.input_bits;

  std::vector<SigBit> output_bits;
  std::vector<std::string> output_names;
  if (options.capture_outputs) {
    for (const Wire* w : module.wires()) {
      if (!w->is_output()) continue;
      for (int off = 0; off < w->width(); ++off) {
        const SigBit bit(w, off);
        Cone cone;
        trace_cone(index, rtlil::SigSpec(bit), cone);
        if (cone.ff_wires.empty()) continue;  // input-only / constant outputs
        if (cone.ff_wires.size() != 1 || *cone.ff_wires.begin() != cand.wire) continue;
        output_bits.push_back(bit);
        output_names.push_back(bit_name(bit));
        relevant.insert(cone.input_bits.begin(), cone.input_bits.end());
      }
    }
  }

  // Deterministic input order: module wire order, then bit offset.
  sim::Simulator sim(module);
  struct InputBit {
    sim::Simulator::WireHandle handle;
    int offset = 0;
  };
  std::vector<InputBit> input_bits;
  std::vector<std::string> input_names;
  for (const Wire* w : module.wires()) {
    if (!w->is_input()) continue;
    const sim::Simulator::WireHandle h = sim.input_handle(w->name());
    for (int off = 0; off < w->width(); ++off) {
      if (relevant.count(SigBit(w, off)) == 0) continue;
      input_bits.push_back(InputBit{h, off});
      input_names.push_back(bit_name(SigBit(w, off)));
    }
  }
  const int n = static_cast<int>(input_bits.size());
  require(n <= options.max_inputs,
          where + std::to_string(n) + " cone-relevant inputs exceed the exhaustive bound of " +
              std::to_string(options.max_inputs));

  const sim::Simulator::WireHandle state_h = sim.probe(cand.wire->name());
  sim.reset();  // zeroes every input; irrelevant ones stay 0 throughout
  const std::uint64_t reset_code = sim.get(state_h);

  // BFS over reachable codes.
  std::vector<std::uint64_t> order{reset_code};
  std::map<std::uint64_t, int> index_of{{reset_code, 0}};
  std::map<std::uint64_t, std::vector<ExtractCube>> rows;
  std::deque<std::uint64_t> queue{reset_code};
  while (!queue.empty()) {
    const std::uint64_t code = queue.front();
    queue.pop_front();
    std::vector<ExtractCube>& cubes = rows[code];
    for (std::uint64_t combo = 0; combo < (1ULL << n); ++combo) {
      for (int i = 0; i < n; ++i) {
        const InputBit& in = input_bits[static_cast<std::size_t>(i)];
        sim.set_input_word(in.handle, in.offset, ((combo >> i) & 1) ? ~0ULL : 0ULL);
      }
      sim.set_register(state_h, code);
      sim.eval();
      std::string out_pattern(output_bits.size(), '0');
      for (std::size_t i = 0; i < output_bits.size(); ++i) {
        if (sim.get_bit(output_bits[i])) out_pattern[i] = '1';
      }
      sim.step();
      const std::uint64_t next = sim.get(state_h);
      if (index_of.count(next) == 0) {
        require(static_cast<int>(order.size()) < options.max_states,
                where + "more than " + std::to_string(options.max_states) +
                    " reachable states (runaway register, not an FSM?)");
        index_of[next] = static_cast<int>(order.size());
        order.push_back(next);
        queue.push_back(next);
      }
      std::string guard(static_cast<std::size_t>(n), '0');
      for (int i = 0; i < n; ++i) {
        if ((combo >> i) & 1) guard[static_cast<std::size_t>(i)] = '1';
      }
      cubes.push_back(ExtractCube{std::move(guard), next, std::move(out_pattern)});
    }
    compact_cubes(cubes);
  }

  ExtractedFsm out;
  out.state_wire = cand.wire->name();
  out.state_codes = order;
  out.encoding = classify(order);
  out.fsm.name = module.name() + "." + cand.wire->name();
  out.fsm.inputs = input_names;
  out.fsm.outputs = output_names;
  for (const std::uint64_t code : order) out.fsm.add_state("s" + std::to_string(code));
  out.fsm.reset_state = 0;
  for (const std::uint64_t code : order) {
    std::vector<ExtractCube>& cubes = rows[code];
    // Self-loops last; the quiet catch-all stay becomes the implicit idle.
    std::stable_sort(cubes.begin(), cubes.end(), [code](const ExtractCube& a,
                                                        const ExtractCube& b) {
      return (a.next != code) > (b.next != code);
    });
    for (const ExtractCube& cube : cubes) {
      const bool all_dash = cube.guard.find_first_not_of('-') == std::string::npos;
      const bool quiet_output = cube.output.find('1') == std::string::npos;
      if (cube.next == code && all_dash && quiet_output) continue;
      out.fsm.add_transition("s" + std::to_string(code), cube.guard,
                             "s" + std::to_string(cube.next), cube.output);
    }
  }
  out.fsm.check();
  return out;
}

}  // namespace

const char* encoding_name(StateEncoding encoding) {
  switch (encoding) {
    case StateEncoding::kBinary:
      return "binary";
    case StateEncoding::kOneHot:
      return "one-hot";
    case StateEncoding::kOther:
      return "other";
  }
  unreachable("encoding_name: bad encoding");
}

void compact_cubes(std::vector<ExtractCube>& cubes) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < cubes.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cubes.size() && !changed; ++j) {
        if (cubes[i].next != cubes[j].next || cubes[i].output != cubes[j].output) continue;
        const std::string& a = cubes[i].guard;
        const std::string& b = cubes[j].guard;
        int diff = -1;
        bool mergeable = true;
        for (std::size_t k = 0; k < a.size(); ++k) {
          if (a[k] == b[k]) continue;
          if (a[k] == '-' || b[k] == '-' || diff >= 0) {
            mergeable = false;
            break;
          }
          diff = static_cast<int>(k);
        }
        if (!mergeable || diff < 0) continue;
        cubes[i].guard[static_cast<std::size_t>(diff)] = '-';
        cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(j));
        changed = true;
      }
    }
  }
}

std::vector<std::string> find_state_registers(const rtlil::Module& module) {
  const NetlistIndex index(module);
  std::vector<std::string> out;
  for (const Candidate& c : find_candidates(module, index)) {
    out.push_back(c.wire->name());
  }
  return out;
}

std::vector<ExtractedFsm> extract_fsms(const rtlil::Module& module,
                                       const ExtractOptions& options) {
  const NetlistIndex index(module);
  std::vector<ExtractedFsm> out;
  for (const Candidate& c : find_candidates(module, index)) {
    out.push_back(recover(module, index, c, options));
  }
  return out;
}

}  // namespace scfi::fsm
