#include "fsm/dot.h"

#include <sstream>

namespace scfi::fsm {

std::string to_dot(const Fsm& fsm) {
  std::ostringstream out;
  out << "digraph \"" << fsm.name << "\" {\n";
  out << "  rankdir=LR;\n";
  out << "  node [shape=circle];\n";
  out << "  __reset [shape=point];\n";
  out << "  __reset -> \"" << fsm.states[static_cast<std::size_t>(fsm.reset_state)] << "\";\n";
  for (const CfgEdge& e : fsm.cfg_edges()) {
    out << "  \"" << fsm.states[static_cast<std::size_t>(e.from)] << "\" -> \""
        << fsm.states[static_cast<std::size_t>(e.to)] << "\" [label=\"" << e.symbol << "\"";
    if (e.transition_index < 0) out << ", style=dashed";
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace scfi::fsm
