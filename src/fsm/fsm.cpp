#include "fsm/fsm.h"

#include <algorithm>
#include <deque>
#include <set>

#include "base/error.h"

namespace scfi::fsm {

int Fsm::state_index(const std::string& state_name) const {
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i] == state_name) return static_cast<int>(i);
  }
  return -1;
}

int Fsm::add_state(const std::string& state_name) {
  const int existing = state_index(state_name);
  if (existing >= 0) return existing;
  states.push_back(state_name);
  return static_cast<int>(states.size()) - 1;
}

void Fsm::add_transition(const std::string& from, const std::string& guard, const std::string& to,
                         const std::string& output) {
  Transition t;
  t.from = add_state(from);
  t.to = add_state(to);
  t.guard = guard;
  t.output = output.empty() ? std::string(outputs.size(), '-') : output;
  transitions.push_back(std::move(t));
}

std::vector<std::string> Fsm::symbols() const {
  std::set<std::string> set;
  for (const Transition& t : transitions) set.insert(t.guard);
  // States whose guards do not cover the whole input space need the
  // implicit idle symbol.
  for (int s = 0; s < num_states(); ++s) {
    if (concrete_input_for_idle(s).has_value()) {
      set.insert(idle_symbol());
      break;
    }
  }
  return std::vector<std::string>(set.begin(), set.end());
}

std::vector<CfgEdge> Fsm::cfg_edges() const {
  std::vector<CfgEdge> edges;
  const std::string idle = idle_symbol();
  for (int s = 0; s < num_states(); ++s) {
    for (int ti : transitions_from(s)) {
      const Transition& t = transitions[static_cast<std::size_t>(ti)];
      edges.push_back(CfgEdge{s, t.guard, t.to, t.output, ti});
    }
    // The implicit stay edge exists only when some input matches no guard.
    if (concrete_input_for_idle(s).has_value()) {
      edges.push_back(CfgEdge{s, idle, s, std::string(outputs.size(), '0'), -1});
    }
  }
  return edges;
}

std::vector<int> Fsm::transitions_from(int s) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    if (transitions[i].from == s) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool Fsm::guard_matches(const std::string& guard, const std::vector<bool>& input_bits) {
  scfi::check(guard.size() == input_bits.size(), "guard_matches: width mismatch");
  for (std::size_t i = 0; i < guard.size(); ++i) {
    if (guard[i] == '-') continue;
    if ((guard[i] == '1') != input_bits[i]) return false;
  }
  return true;
}

std::optional<std::vector<bool>> Fsm::concrete_input_for(int t) const {
  const Transition& target = transitions[static_cast<std::size_t>(t)];
  std::vector<int> earlier;  // higher-priority transitions of the same state
  for (int ti : transitions_from(target.from)) {
    if (ti == t) break;
    earlier.push_back(ti);
  }
  // Collect the don't-care positions of the target guard.
  std::vector<std::size_t> free_pos;
  std::vector<bool> bits(inputs.size(), false);
  for (std::size_t i = 0; i < target.guard.size(); ++i) {
    if (target.guard[i] == '-') {
      free_pos.push_back(i);
    } else {
      bits[i] = target.guard[i] == '1';
    }
  }
  const auto shadowed = [&](const std::vector<bool>& cand) {
    for (int ti : earlier) {
      if (guard_matches(transitions[static_cast<std::size_t>(ti)].guard, cand)) return true;
    }
    return false;
  };
  // Exhaust the free positions (capped; specs in this repo are small).
  const std::size_t combos = free_pos.size() <= 16 ? (1ULL << free_pos.size()) : (1ULL << 16);
  for (std::size_t c = 0; c < combos; ++c) {
    std::vector<bool> cand = bits;
    for (std::size_t i = 0; i < free_pos.size() && i < 16; ++i) {
      cand[free_pos[i]] = (c >> i) & 1;
    }
    if (!shadowed(cand)) return cand;
  }
  return std::nullopt;
}

std::optional<std::vector<bool>> Fsm::concrete_input_for_idle(int state) const {
  const std::vector<int> from = transitions_from(state);
  const auto matches_any = [&](const std::vector<bool>& cand) {
    for (int ti : from) {
      if (guard_matches(transitions[static_cast<std::size_t>(ti)].guard, cand)) return true;
    }
    return false;
  };
  // Exhaust up to 2^16 assignments; FSMs in this repo have few inputs.
  const std::size_t n = inputs.size();
  const std::size_t combos = n <= 16 ? (1ULL << n) : (1ULL << 16);
  for (std::size_t c = 0; c < combos; ++c) {
    std::vector<bool> cand(n, false);
    for (std::size_t i = 0; i < n && i < 16; ++i) cand[i] = (c >> i) & 1;
    if (!matches_any(cand)) return cand;
  }
  return std::nullopt;
}

CfgEdge Fsm::step_symbol(int state, const std::string& symbol) const {
  for (int ti : transitions_from(state)) {
    const Transition& t = transitions[static_cast<std::size_t>(ti)];
    if (t.guard == symbol) return CfgEdge{state, t.guard, t.to, t.output, ti};
  }
  require(symbol == idle_symbol(),
          "step_symbol: state " + states[static_cast<std::size_t>(state)] +
              " has no edge for symbol " + symbol);
  return CfgEdge{state, symbol, state, std::string(outputs.size(), '0'), -1};
}

std::pair<int, int> Fsm::step_raw(int state, const std::vector<bool>& input_bits) const {
  for (int ti : transitions_from(state)) {
    if (guard_matches(transitions[static_cast<std::size_t>(ti)].guard, input_bits)) {
      return {transitions[static_cast<std::size_t>(ti)].to, ti};
    }
  }
  return {state, -1};
}

void Fsm::check() const {
  require(!states.empty(), "fsm " + name + ": no states");
  require(reset_state >= 0 && reset_state < num_states(), "fsm " + name + ": bad reset state");
  std::set<std::string> state_names(states.begin(), states.end());
  require(state_names.size() == states.size(), "fsm " + name + ": duplicate state names");
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    const Transition& t = transitions[i];
    require(t.from >= 0 && t.from < num_states() && t.to >= 0 && t.to < num_states(),
            "fsm " + name + ": transition with invalid state index");
    require(t.guard.size() == inputs.size(),
            "fsm " + name + ": guard width mismatch on transition " + std::to_string(i));
    require(t.output.size() == outputs.size(),
            "fsm " + name + ": output width mismatch on transition " + std::to_string(i));
    for (char c : t.guard) require(c == '0' || c == '1' || c == '-', "bad guard char");
    for (char c : t.output) require(c == '0' || c == '1' || c == '-', "bad output char");
  }
  for (int s = 0; s < num_states(); ++s) {
    std::set<std::string> guards;
    for (int ti : transitions_from(s)) {
      const auto [unused, inserted] =
          guards.insert(transitions[static_cast<std::size_t>(ti)].guard);
      require(inserted, "fsm " + name + ": duplicate guard in state " +
                            states[static_cast<std::size_t>(s)]);
    }
  }
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    require(concrete_input_for(static_cast<int>(i)).has_value(),
            "fsm " + name + ": transition " + std::to_string(i) + " is fully shadowed");
  }
  // Reachability from reset over CFG edges.
  std::vector<bool> seen(static_cast<std::size_t>(num_states()), false);
  std::deque<int> queue{reset_state};
  seen[static_cast<std::size_t>(reset_state)] = true;
  while (!queue.empty()) {
    const int s = queue.front();
    queue.pop_front();
    for (int ti : transitions_from(s)) {
      const int to = transitions[static_cast<std::size_t>(ti)].to;
      if (!seen[static_cast<std::size_t>(to)]) {
        seen[static_cast<std::size_t>(to)] = true;
        queue.push_back(to);
      }
    }
  }
  for (int s = 0; s < num_states(); ++s) {
    require(seen[static_cast<std::size_t>(s)],
            "fsm " + name + ": state " + states[static_cast<std::size_t>(s)] + " unreachable");
  }
}

}  // namespace scfi::fsm
