// Finite-state machine IR.
//
// An Fsm is the 5-tuple {S, X, Y, phi, lambda} of the paper (§2.2): named
// states, raw control bits (inputs), output bits, and a priority-ordered
// transition list with guard patterns over the control bits ('0', '1', '-').
//
// Control-symbol view (used by SCFI, R1): the input alphabet is the set of
// distinct guard strings. Every state additionally has an implicit lowest-
// priority self-loop on the all-dash "idle" symbol unless it already carries
// a catch-all guard. cfg_edges() materializes this complete edge list — the
// control-flow graph of Figure 2.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace scfi::fsm {

struct Transition {
  int from = 0;
  std::string guard;   ///< one char per input: '0', '1' or '-'
  int to = 0;
  std::string output;  ///< one char per output: '0', '1' or '-' (Mealy)
};

/// One edge of the control-flow graph in symbol space.
struct CfgEdge {
  int from = 0;
  std::string symbol;  ///< guard string; all-dash = idle/default
  int to = 0;
  std::string output;
  int transition_index = -1;  ///< -1 for the implicit idle self-loop
};

class Fsm {
 public:
  std::string name = "fsm";
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<std::string> states;
  int reset_state = 0;
  std::vector<Transition> transitions;

  int num_inputs() const { return static_cast<int>(inputs.size()); }
  int num_outputs() const { return static_cast<int>(outputs.size()); }
  int num_states() const { return static_cast<int>(states.size()); }

  /// Index of a state name; -1 when absent.
  int state_index(const std::string& name) const;

  /// Adds a state, returning its index (idempotent for existing names).
  int add_state(const std::string& name);

  /// Appends a transition (priority = insertion order within a state).
  void add_transition(const std::string& from, const std::string& guard, const std::string& to,
                      const std::string& output = "");

  /// The all-dash idle symbol for this FSM.
  std::string idle_symbol() const { return std::string(inputs.size(), '-'); }

  /// Distinct guard strings (sorted), including the idle symbol if any state
  /// needs the implicit self-loop.
  std::vector<std::string> symbols() const;

  /// Complete CFG in symbol space (explicit transitions + implicit idles).
  std::vector<CfgEdge> cfg_edges() const;

  /// Transitions leaving state `s`, in priority order.
  std::vector<int> transitions_from(int s) const;

  /// True when `input_bits[i]` (for input i) satisfies `guard`.
  static bool guard_matches(const std::string& guard, const std::vector<bool>& input_bits);

  /// A concrete input assignment that triggers exactly transition `t`
  /// (satisfies its guard, fails all higher-priority guards of the same
  /// state). nullopt when the transition is completely shadowed.
  std::optional<std::vector<bool>> concrete_input_for(int t) const;

  /// A concrete input assignment matching NO guard of `state` (drives the
  /// implicit idle self-loop). nullopt when the state has a catch-all guard.
  std::optional<std::vector<bool>> concrete_input_for_idle(int state) const;

  /// Symbol-space step: first explicit transition from `state` whose guard
  /// equals `symbol`, else the implicit idle self-loop. Returns the edge.
  CfgEdge step_symbol(int state, const std::string& symbol) const;

  /// Raw-bit step (priority semantics). Returns resulting state and the index
  /// of the taken transition (-1 if none matched).
  std::pair<int, int> step_raw(int state, const std::vector<bool>& input_bits) const;

  /// Validates the machine; throws ScfiError describing the first problem.
  /// Checks: non-empty, consistent widths, valid state refs, no duplicate
  /// guards per state, no fully shadowed transitions, all states reachable.
  void check() const;
};

}  // namespace scfi::fsm
