#include "fsm/compile.h"

#include "base/error.h"
#include "rtlil/validate.h"

namespace scfi::fsm {
namespace {

using rtlil::Const;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;

int minimal_width(int count) {
  int w = 1;
  while ((1LL << w) < count) ++w;
  return w;
}

SigSpec const_bit(bool v) { return SigSpec(SigBit(v)); }

}  // namespace

int CompiledFsm::decode_state(std::uint64_t reg_value) const {
  for (std::size_t i = 0; i < state_codes.size(); ++i) {
    if (state_codes[i] == reg_value) return static_cast<int>(i);
  }
  return -1;
}

std::vector<SigSpec> build_raw_edge_actives(Module& m, const Fsm& fsm, const SigSpec& state,
                                            const std::vector<SigSpec>& input_bits,
                                            const std::vector<std::uint64_t>& state_codes) {
  check(static_cast<int>(input_bits.size()) == fsm.num_inputs(),
        "build_raw_edge_actives: input count mismatch");
  // Guard match = AND over the fixed literals of the pattern.
  const auto guard_match = [&](const std::string& guard) -> SigSpec {
    SigSpec literals;
    for (std::size_t i = 0; i < guard.size(); ++i) {
      if (guard[i] == '-') continue;
      SigSpec bit = input_bits[i];
      if (guard[i] == '0') bit = m.make_not(bit, "gl");
      literals.append(bit);
    }
    if (literals.width() == 0) return const_bit(true);
    if (literals.width() == 1) return literals;
    return m.make_reduce_and(literals, "gm");
  };

  std::vector<SigSpec> actives(fsm.transitions.size());
  for (int s = 0; s < fsm.num_states(); ++s) {
    const SigSpec state_eq =
        m.make_eq(state, SigSpec(Const::from_uint(state_codes[static_cast<std::size_t>(s)],
                                                  state.width())),
                  "seq");
    SigSpec prev_any = const_bit(false);
    for (int ti : fsm.transitions_from(s)) {
      const Transition& t = fsm.transitions[static_cast<std::size_t>(ti)];
      const SigSpec match = guard_match(t.guard);
      const SigSpec not_prev = m.make_not(prev_any, "np");
      const SigSpec excl = m.make_and(match, not_prev, "ex");
      actives[static_cast<std::size_t>(ti)] = m.make_and(state_eq, excl, "act");
      prev_any = m.make_or(prev_any, match, "pa");
    }
  }
  return actives;
}

SigSpec build_symbol_next_state(Module& m, const Fsm& fsm, const SigSpec& state,
                                const SigSpec& xenc,
                                const std::vector<std::uint64_t>& state_codes,
                                const std::map<std::string, std::uint64_t>& symbol_codes) {
  // Balanced AND-OR structure: the edge conditions are mutually exclusive
  // (distinct states or distinct codewords), so each next-state bit is the
  // OR of its asserting edges, with a "stay" term when nothing matches.
  std::vector<SigSpec> conds;
  std::vector<std::uint64_t> targets;
  for (const CfgEdge& e : fsm.cfg_edges()) {
    if (e.from == e.to && e.transition_index < 0) continue;  // implicit stay
    const auto sym_it = symbol_codes.find(e.symbol);
    check(sym_it != symbol_codes.end(), "build_symbol_next_state: missing symbol code");
    const SigSpec state_eq = m.make_eq(
        state, SigSpec(Const::from_uint(state_codes[static_cast<std::size_t>(e.from)],
                                        state.width())),
        "seq");
    const SigSpec sym_eq =
        m.make_eq(xenc, SigSpec(Const::from_uint(sym_it->second, xenc.width())), "xeq");
    conds.push_back(m.make_and(state_eq, sym_eq, "cond"));
    targets.push_back(state_codes[static_cast<std::size_t>(e.to)]);
  }
  SigSpec all;
  for (const SigSpec& c : conds) all.append(c);
  const SigSpec stay = m.make_not(m.make_reduce_or(all, "anyact"), "stayc");
  SigSpec next;
  for (int bit = 0; bit < state.width(); ++bit) {
    SigSpec terms = m.make_and(stay, state.extract(bit, 1), "stayt");
    for (std::size_t e = 0; e < conds.size(); ++e) {
      if ((targets[e] >> bit) & 1) terms.append(conds[e]);
    }
    next.append(terms.width() == 1 ? terms : m.make_reduce_or(terms, "nsrom"));
  }
  return next;
}

CompiledFsm compile_unprotected(const Fsm& fsm, rtlil::Design& design,
                                const CompileOptions& options) {
  fsm.check();
  CompiledFsm out;
  const std::string mod_name = options.module_name.empty() ? fsm.name : options.module_name;
  Module* m = design.add_module(mod_name);
  out.module = m;

  // Encoding: caller-provided or plain binary.
  if (options.state_codes.empty()) {
    out.state_width = options.state_width > 0 ? options.state_width
                                              : minimal_width(fsm.num_states());
    for (int s = 0; s < fsm.num_states(); ++s) {
      out.state_codes.push_back(static_cast<std::uint64_t>(s));
    }
  } else {
    require(options.state_codes.size() == static_cast<std::size_t>(fsm.num_states()),
            "compile_unprotected: encoding size mismatch");
    require(options.state_width > 0, "compile_unprotected: explicit encoding needs width");
    out.state_width = options.state_width;
    out.state_codes = options.state_codes;
  }

  std::vector<SigSpec> input_bits;
  for (const std::string& in_name : fsm.inputs) {
    input_bits.emplace_back(m->add_input(in_name, 1));
  }

  rtlil::Wire* state_w = m->add_wire("state_q", out.state_width);
  out.state_wire = state_w->name();
  const SigSpec state(state_w);

  const std::vector<SigSpec> actives =
      build_raw_edge_actives(*m, fsm, state, input_bits, out.state_codes);

  // Next state as a balanced AND-OR network over the (mutually exclusive)
  // edge activations, with a "stay" term when no transition fires.
  SigSpec all;
  for (const SigSpec& a : actives) all.append(a);
  SigSpec stay;
  if (all.width() == 0) {
    stay = SigSpec(SigBit(true));
  } else {
    stay = m->make_not(m->make_reduce_or(all, "anyact"), "stayc");
  }
  SigSpec next;
  for (int bit = 0; bit < out.state_width; ++bit) {
    SigSpec terms = m->make_and(stay, state.extract(bit, 1), "stayt");
    for (std::size_t ti = 0; ti < fsm.transitions.size(); ++ti) {
      const std::uint64_t code =
          out.state_codes[static_cast<std::size_t>(fsm.transitions[ti].to)];
      if ((code >> bit) & 1) terms.append(actives[ti]);
    }
    next.append(terms.width() == 1 ? terms : m->make_reduce_or(terms, "nsrom"));
  }

  rtlil::Cell* ff = m->add_cell("state_ff", rtlil::CellType::kDff);
  ff->set_port("D", next);
  ff->set_port("Q", state);
  ff->set_reset_value(Const::from_uint(
      out.state_codes[static_cast<std::size_t>(fsm.reset_state)], out.state_width));

  // Mealy outputs: OR of the active edges asserting each bit.
  for (int j = 0; j < fsm.num_outputs(); ++j) {
    rtlil::Wire* y = m->add_output(fsm.outputs[static_cast<std::size_t>(j)], 1);
    SigSpec acc = const_bit(false);
    for (std::size_t ti = 0; ti < fsm.transitions.size(); ++ti) {
      if (fsm.transitions[ti].output[static_cast<std::size_t>(j)] == '1') {
        acc = m->make_or(acc, actives[ti], "yor");
      }
    }
    m->drive(SigSpec(y), acc);
  }

  rtlil::validate_module(*m);
  return out;
}

}  // namespace scfi::fsm
