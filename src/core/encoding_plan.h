// Assignment of Hamming-distance-N codewords to states and control symbols
// (paper requirements R1 and R2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config.h"
#include "fsm/fsm.h"

namespace scfi::core {

struct EncodingPlan {
  int protection_level = 0;

  int state_width = 0;
  std::vector<std::uint64_t> state_codes;  ///< state index -> codeword
  std::uint64_t error_code = 0;            ///< terminal ERROR (all zero, weight
                                           ///< >= N away from every codeword)

  int symbol_width = 0;
  std::map<std::string, std::uint64_t> symbol_codes;
};

/// Builds the plan: lexicodes with pairwise distance >= N (paper R1/R2),
/// excluding the all-zero word so that ERROR (states) and a quiescent bus
/// (symbols) are never valid.
EncodingPlan plan_encoding(const fsm::Fsm& fsm, const ScfiConfig& config);

}  // namespace scfi::core
