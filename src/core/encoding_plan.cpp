#include "core/encoding_plan.h"

#include "base/error.h"
#include "encode/lexicode.h"

namespace scfi::core {

EncodingPlan plan_encoding(const fsm::Fsm& fsm, const ScfiConfig& config) {
  require(config.protection_level >= 1, "plan_encoding: protection level must be >= 1");
  EncodingPlan plan;
  plan.protection_level = config.protection_level;

  // R2 requires pairwise distance >= N. Weight >= 1 keeps the all-zero
  // ERROR word out of the code; landing in ERROR is a *detected* outcome,
  // so no extra distance to it is needed.
  encode::CodeSpec state_spec;
  state_spec.count = fsm.num_states();
  state_spec.min_distance = config.protection_level;
  state_spec.min_weight = 1;
  const encode::Code state_code = encode::generate_code(state_spec);
  plan.state_width = state_code.width;
  plan.state_codes = state_code.words;
  plan.error_code = 0;

  const std::vector<std::string> symbols = fsm.symbols();
  encode::CodeSpec sym_spec;
  sym_spec.count = static_cast<int>(symbols.size());
  sym_spec.min_distance = config.protection_level;
  sym_spec.min_weight = 1;  // the quiescent all-zero bus is never valid
  const encode::Code sym_code = encode::generate_code(sym_spec);
  plan.symbol_width = sym_code.width;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    plan.symbol_codes[symbols[i]] = sym_code.words[i];
  }
  return plan;
}

}  // namespace scfi::core
