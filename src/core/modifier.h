// Per-edge modifier computation (paper R4 and §5.1: "the modifier Mod for
// each state transition is determined, satisfying MDS(S_Ce, X_e, Mod) =
// S_Ne").
//
// Because the diffusion layer is linear over GF(2), each lane's modifier is
// the solution of  M_mod * mod = target ^ M_fixed * [state|symbol]  where the
// constrained rows force the next-state slice to the target codeword and the
// error bits to all-ones.
#pragma once

#include <cstdint>
#include <vector>

#include "core/encoding_plan.h"
#include "core/layout.h"

namespace scfi::core {

struct EdgeModifier {
  int edge_index = 0;                       ///< index into fsm.cfg_edges()
  std::vector<std::uint64_t> lane_mods;     ///< one value per lane (mod_len bits)
};

/// Solves every CFG edge; verifies each solution by forward-evaluating the
/// MDS map (next-state slice and error bits must match exactly).
std::vector<EdgeModifier> compute_modifiers(const fsm::Fsm& fsm, const EncodingPlan& plan,
                                            const LaneLayout& layout,
                                            const mds::Construction& mds);

}  // namespace scfi::core
