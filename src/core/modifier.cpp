#include "core/modifier.h"

#include "base/error.h"
#include "gf2/bitvec.h"

namespace scfi::core {
using gf2::BitVec;

std::vector<EdgeModifier> compute_modifiers(const fsm::Fsm& fsm, const EncodingPlan& plan,
                                            const LaneLayout& layout,
                                            const mds::Construction& mds) {
  const std::vector<fsm::CfgEdge> edges = fsm.cfg_edges();
  std::vector<EdgeModifier> result;
  result.reserve(edges.size());
  const int e = layout.error_bits;

  for (std::size_t ei = 0; ei < edges.size(); ++ei) {
    const fsm::CfgEdge& edge = edges[ei];
    const std::uint64_t s_from = plan.state_codes[static_cast<std::size_t>(edge.from)];
    const std::uint64_t s_to = plan.state_codes[static_cast<std::size_t>(edge.to)];
    const std::uint64_t x = plan.symbol_codes.at(edge.symbol);

    EdgeModifier em;
    em.edge_index = static_cast<int>(ei);
    for (const Lane& lane : layout.lanes) {
      // Fixed part of the lane input and the constrained output targets.
      BitVec fixed(lane.state_len + lane.sym_len);
      for (int i = 0; i < lane.state_len; ++i) {
        fixed.set(i, (s_from >> (lane.state_lo + i)) & 1);
      }
      for (int i = 0; i < lane.sym_len; ++i) {
        fixed.set(lane.state_len + i, (x >> (lane.sym_lo + i)) & 1);
      }
      BitVec target(lane.state_len + e);
      for (int i = 0; i < lane.state_len; ++i) {
        target.set(i, (s_to >> (lane.state_lo + i)) & 1);
      }
      for (int i = 0; i < e; ++i) target.set(lane.state_len + i, true);  // E = 1...1

      const BitVec rhs = target ^ lane.fixed_map.mul(fixed);
      const auto mod = lane.solver.solve(rhs);
      check(mod.has_value(), "compute_modifiers: unsolvable lane (layout bug)");
      em.lane_mods.push_back(mod->to_uint());
    }

    // Forward verification through the exact MDS bit matrix.
    {
      int lane_index = 0;
      for (const Lane& lane : layout.lanes) {
        BitVec input(layout.lane_bits);
        for (int i = 0; i < lane.state_len; ++i) {
          input.set(i, (s_from >> (lane.state_lo + i)) & 1);
        }
        for (int i = 0; i < lane.sym_len; ++i) {
          input.set(lane.state_len + i, (x >> (lane.sym_lo + i)) & 1);
        }
        const std::uint64_t mod = em.lane_mods[static_cast<std::size_t>(lane_index)];
        for (int i = 0; i < lane.mod_len; ++i) {
          input.set(lane.state_len + lane.sym_len + i, (mod >> i) & 1);
        }
        const BitVec out = mds.bit_matrix.mul(input);
        for (int i = 0; i < lane.state_len; ++i) {
          check(out.get(i) == (((s_to >> (lane.state_lo + i)) & 1) != 0),
                "compute_modifiers: forward check failed (state bit)");
        }
        for (int i = 0; i < e; ++i) {
          check(out.get(layout.lane_bits - e + i), "compute_modifiers: forward check failed (E)");
        }
        ++lane_index;
      }
    }
    result.push_back(std::move(em));
  }
  return result;
}

}  // namespace scfi::core
