// The SCFI hardening transformation (paper §4/§5, Figures 5 and 7).
//
// Builds a new module implementing the protected FSM:
//
//   x_enc ──┬─► input pattern matching (1)  ──► modifier selection (2)
//           │                                         │
//   state ──┼──────────────┬──────────────────────────┤
//           │              ▼                          ▼
//           │            mix layer (3): k lanes of {S_Ce | X_e | Mod}
//           │              ▼
//           │            MDS diffusion (4): XOR network per lane
//           │              ▼
//           │            unmix (5): S_Ne slices + error bits E
//           │              ▼
//           └─► error logic (6): S_N = valid ? (S_Ne & repl(&E)) : ERROR
//
// Any fault into the state register (FT1), the encoded control signals
// (FT2) or the next-state logic (FT3) avalanches through the MDS layer,
// breaks E or the codeword, and the register collapses into the terminal
// all-zero ERROR state while fsm_alert is raised.
#pragma once

#include "core/config.h"
#include "core/encoding_plan.h"
#include "core/layout.h"
#include "core/modifier.h"
#include "fsm/compile.h"

namespace scfi::core {

/// Statistics of one hardening run (for reports and benches).
struct ScfiReport {
  EncodingPlan plan;
  int lanes = 0;
  int mod_width = 0;
  int mds_xor_gates = 0;   ///< per lane
  int mds_depth = 0;
  int cfg_edges = 0;
};

/// Hardens `fsm` into a new module `<name><suffix>` inside `design`.
fsm::CompiledFsm scfi_harden(const fsm::Fsm& fsm, rtlil::Design& design,
                             const ScfiConfig& config = {}, ScfiReport* report = nullptr);

}  // namespace scfi::core
