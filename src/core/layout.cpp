#include "core/layout.h"

#include "base/error.h"

namespace scfi::core {
namespace {

/// Splits `total` into `k` near-equal chunks (first chunks get the extras).
std::vector<int> split_even(int total, int k) {
  std::vector<int> parts(static_cast<std::size_t>(k), total / k);
  for (int i = 0; i < total % k; ++i) parts[static_cast<std::size_t>(i)] += 1;
  return parts;
}

}  // namespace

LaneLayout compute_layout(int state_width, int symbol_width, int error_bits,
                          const mds::Construction& mds) {
  require(state_width > 0 && symbol_width > 0, "compute_layout: bad widths");
  require(error_bits >= 1, "compute_layout: need at least one error bit");
  const int lane_bits = 8 * mds.slp.num_inputs();
  const gf2::Matrix& m = mds.bit_matrix;
  check(m.rows() == lane_bits && m.cols() == lane_bits, "compute_layout: matrix shape");

  for (int k = 1; k <= 8; ++k) {
    const std::vector<int> s_parts = split_even(state_width, k);
    const std::vector<int> x_parts = split_even(symbol_width, k);
    bool feasible = true;
    LaneLayout layout;
    layout.lane_bits = lane_bits;
    layout.error_bits = error_bits;
    int s_off = 0;
    int x_off = 0;
    for (int lane = 0; lane < k && feasible; ++lane) {
      const int s_len = s_parts[static_cast<std::size_t>(lane)];
      const int x_len = x_parts[static_cast<std::size_t>(lane)];
      const int mod_len = lane_bits - s_len - x_len;
      // Constrained outputs: s_len next-state bits + e error bits.
      if (mod_len < s_len + error_bits || s_len + error_bits > lane_bits) {
        feasible = false;
        break;
      }
      Lane entry;
      entry.state_lo = s_off;
      entry.state_len = s_len;
      entry.sym_lo = x_off;
      entry.sym_len = x_len;
      entry.mod_len = mod_len;

      std::vector<int> out_rows;
      for (int i = 0; i < s_len; ++i) out_rows.push_back(i);
      for (int i = 0; i < error_bits; ++i) out_rows.push_back(lane_bits - error_bits + i);
      std::vector<int> mod_cols;
      for (int i = 0; i < mod_len; ++i) mod_cols.push_back(s_len + x_len + i);
      std::vector<int> fixed_cols;
      for (int i = 0; i < s_len + x_len; ++i) fixed_cols.push_back(i);

      const gf2::Matrix mod_map = m.submatrix(out_rows, mod_cols);
      entry.solver = gf2::LinearSolver(mod_map);
      if (!entry.solver.full_row_rank()) {
        feasible = false;
        break;
      }
      entry.fixed_map = m.submatrix(out_rows, fixed_cols);
      layout.lanes.push_back(std::move(entry));
      layout.mod_width += mod_len;
      s_off += s_len;
      x_off += x_len;
    }
    if (feasible) return layout;
  }
  throw ScfiError("compute_layout: no feasible lane layout up to k=8");
}

}  // namespace scfi::core
