// Lane layout of the hardened next-state function (paper Figure 5).
//
// The input triple {S_Ce, X_e, Mod} is distributed over k parallel 32-bit
// MDS lanes. Within each lane the input is [state slice | symbol slice |
// modifier bits]; the output carries the next-state slice in its low bits
// and `e` error bits at the top. The layout is feasible when the modifier
// submatrix of each lane (columns = modifier positions, rows = constrained
// output positions) has full row rank, which compute_layout verifies with
// exact GF(2) rank computation.
#pragma once

#include <vector>

#include "gf2/matrix.h"
#include "mds/registry.h"

namespace scfi::core {

struct Lane {
  int state_lo = 0;  ///< first encoded-state bit carried by this lane
  int state_len = 0;
  int sym_lo = 0;    ///< first encoded-symbol bit carried by this lane
  int sym_len = 0;
  int mod_len = 0;   ///< modifier bits (fill the rest of the lane input)
  /// Solver for this lane's modifier: rows = constrained output bits
  /// (next-state slice then error bits), columns = modifier positions.
  gf2::LinearSolver solver;
  /// Constrained output rows of the lane matrix applied to the fixed
  /// (state|symbol) part — reused by the per-edge solve.
  gf2::Matrix fixed_map;  ///< (state_len+e) x (state_len+sym_len)

  Lane() : solver(gf2::Matrix(0, 0)) {}
};

struct LaneLayout {
  int lane_bits = 32;
  int error_bits = 0;  ///< per lane
  int mod_width = 0;   ///< total modifier bits over all lanes
  std::vector<Lane> lanes;

  int k() const { return static_cast<int>(lanes.size()); }
};

/// Computes the minimal-k feasible layout; throws ScfiError when the state
/// and symbol widths cannot fit (never happens for realistic FSMs).
LaneLayout compute_layout(int state_width, int symbol_width, int error_bits,
                          const mds::Construction& mds);

}  // namespace scfi::core
