// End-to-end SCFI pass over a design: detect the FSM in a compiled module
// (via exhaustive-simulation extraction), harden it, and report — the analog
// of inserting the SCFI pass into the Yosys flow (paper §5).
#pragma once

#include <optional>
#include <string>

#include "core/harden.h"
#include "rtlil/design.h"
#include "synfi/synfi.h"

namespace scfi::core {

struct PassOptions {
  ScfiConfig config;
  std::string state_wire = "state_q";  ///< state register of the source module
  /// Run the SYNFI-style exhaustive fault analysis on the hardened module as
  /// part of the pass (the paper's §7 "integrate the formal analysis into
  /// the Yosys pass" extension). Throws ScfiError when faults inside the
  /// MDS diffusion layer turn out exploitable.
  bool verify = false;
};

struct PassResult {
  fsm::CompiledFsm hardened;
  ScfiReport report;
  fsm::Fsm extracted;  ///< the FSM recovered from the netlist
  std::optional<synfi::SynfiReport> verification;  ///< set when verify = true
};

/// Extracts the FSM from `module_name` inside `design` and adds the hardened
/// module next to it.
PassResult run_scfi_pass(rtlil::Design& design, const std::string& module_name,
                         const PassOptions& options = {});

}  // namespace scfi::core
