// User-facing configuration of the SCFI hardening pass.
#pragma once

#include <string>

namespace scfi::core {

struct ScfiConfig {
  /// Protection level N: valid codewords are separated by Hamming distance
  /// >= N, so an attacker needs at least N bit flips to move between them
  /// (paper R1/R2; evaluated for N = 2..4 in Table 1).
  int protection_level = 2;

  /// Error bits per MDS lane (the paper's `e`, §4 unmix layer). 0 selects
  /// the protection level.
  int error_bits = 0;

  /// Registered MDS construction to instantiate (see mds/registry.h).
  std::string mds = "scfi-m8346";

  /// Suffix appended to the module name of the hardened FSM.
  std::string module_suffix = "_scfi";

  /// Paper §7 extension: the prototype's 1-bit pattern-match/modifier-select
  /// signals are its residual single points of failure. When enabled, the
  /// whole selector network (comparators, edge conditions, modifier ROM) is
  /// built twice in independent share groups and a mismatch comparator
  /// forces ERROR when the replicas disagree, so any single selector fault
  /// is detected deterministically instead of probabilistically. Costs
  /// roughly 2x the pattern-matching area.
  bool encoded_selectors = false;

  /// Paper §7 extension: also protect the output logic (lambda). The Mealy
  /// output network is computed twice from independently replicated pattern
  /// matchers; any mismatch raises fsm_alert in the same cycle, so a single
  /// fault in the output cone cannot silently corrupt the outputs.
  bool protect_outputs = false;

  int effective_error_bits() const {
    return error_bits > 0 ? error_bits : protection_level;
  }
};

}  // namespace scfi::core
