#include "core/pass.h"

#include "base/error.h"
#include "sim/extract.h"

namespace scfi::core {

PassResult run_scfi_pass(rtlil::Design& design, const std::string& module_name,
                         const PassOptions& options) {
  rtlil::Module* source = design.module(module_name);
  require(source != nullptr, "run_scfi_pass: no module " + module_name);

  sim::ExtractOptions extract_options;
  extract_options.state_wire = options.state_wire;
  PassResult result;
  result.extracted = sim::extract_fsm(*source, extract_options);
  // Reuse the source module's name for the hardened FSM.
  result.extracted.name = module_name;
  result.hardened = scfi_harden(result.extracted, design, options.config, &result.report);
  if (options.verify) {
    synfi::SynfiConfig synfi_config;  // MDS diffusion region, transient flips
    result.verification = synfi::analyze(result.extracted, result.hardened, synfi_config);
    require(result.verification->exploitable == 0,
            "run_scfi_pass: verification found exploitable faults in the diffusion layer of " +
                module_name);
  }
  return result;
}

}  // namespace scfi::core
