#include "core/harden.h"

#include "base/error.h"
#include "mds/registry.h"
#include "rtlil/validate.h"

namespace scfi::core {
namespace {

using rtlil::Const;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;

/// Emits the MDS straight-line program as an XOR network over `input`
/// (width = 8 * words). Multiplication by alpha is a rewiring plus a single
/// XOR2 (bit2 ^= bit7), exactly as costed in the paper.
SigSpec emit_mds(Module& m, const mds::Slp& slp, const SigSpec& input) {
  check(input.width() == 8 * slp.num_inputs(), "emit_mds: input width mismatch");
  std::vector<SigSpec> value;
  value.reserve(static_cast<std::size_t>(slp.num_values()));
  for (int w = 0; w < slp.num_inputs(); ++w) value.push_back(input.extract(8 * w, 8));
  for (const mds::SlpOp& op : slp.ops()) {
    const SigSpec& a = value[static_cast<std::size_t>(op.a)];
    if (op.kind == mds::SlpOp::Kind::kXor) {
      value.push_back(m.make_xor(a, value[static_cast<std::size_t>(op.b)], "mds_x"));
    } else {
      // alpha * a over F2[X]/(X^8+X^2+1):
      //   out[0]=a[7], out[1]=a[0], out[2]=a[1]^a[7], out[k]=a[k-1] (k>=3).
      const SigSpec folded = m.make_xor(a.extract(1, 1), a.extract(7, 1), "mds_a");
      SigSpec shifted;
      shifted.append(a.extract(7, 1));  // out[0]
      shifted.append(a.extract(0, 1));  // out[1]
      shifted.append(folded);           // out[2]
      shifted.append(a.extract(2, 5));  // out[3..7]
      value.push_back(shifted);
    }
  }
  SigSpec out;
  for (int v : slp.outputs()) out.append(value[static_cast<std::size_t>(v)]);
  return out;
}

SigSpec replicate(const SigSpec& bit, int width) {
  SigSpec out;
  for (int i = 0; i < width; ++i) out.append(bit);
  return out;
}

}  // namespace

fsm::CompiledFsm scfi_harden(const fsm::Fsm& fsm, rtlil::Design& design,
                             const ScfiConfig& config, ScfiReport* report) {
  fsm.check();
  const mds::Construction& mds = mds::construction(config.mds);
  const EncodingPlan plan = plan_encoding(fsm, config);
  const LaneLayout layout =
      compute_layout(plan.state_width, plan.symbol_width, config.effective_error_bits(), mds);
  const std::vector<fsm::CfgEdge> edges = fsm.cfg_edges();
  const std::vector<EdgeModifier> mods = compute_modifiers(fsm, plan, layout, mds);
  check(mods.size() == edges.size(), "scfi_harden: modifier/edge count mismatch");

  fsm::CompiledFsm out;
  Module* m = design.add_module(fsm.name + config.module_suffix);
  out.module = m;
  out.state_width = plan.state_width;
  out.state_codes = plan.state_codes;
  out.symbol_codes = plan.symbol_codes;
  out.symbol_width = plan.symbol_width;
  out.error_code = plan.error_code;
  out.has_error_state = true;

  rtlil::Wire* xw = m->add_input("x_enc", plan.symbol_width);
  out.symbol_input_wire = xw->name();
  const SigSpec xenc(xw);

  rtlil::Wire* sw = m->add_wire("state_q", plan.state_width);
  out.state_wire = sw->name();
  const SigSpec state(sw);

  // (1) Input pattern matching: comparators on the encoded state and the
  // encoded control symbol, shared across edges. With encoded_selectors
  // (paper §7 extension) the whole selector network is duplicated in a
  // separate share group and checked by a mismatch comparator below.
  const int reps = config.encoded_selectors ? 2 : 1;
  std::vector<std::vector<SigSpec>> state_eq_r(static_cast<std::size_t>(reps));
  std::vector<std::map<std::string, SigSpec>> sym_eq_r(static_cast<std::size_t>(reps));
  std::vector<std::vector<SigSpec>> edge_cond_r(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const std::size_t first_cell = m->cells().size();
    auto& state_eq = state_eq_r[static_cast<std::size_t>(r)];
    state_eq.resize(static_cast<std::size_t>(fsm.num_states()));
    for (int s = 0; s < fsm.num_states(); ++s) {
      state_eq[static_cast<std::size_t>(s)] = m->make_eq(
          state,
          SigSpec(Const::from_uint(plan.state_codes[static_cast<std::size_t>(s)],
                                   plan.state_width)),
          "seq");
    }
    auto& sym_eq = sym_eq_r[static_cast<std::size_t>(r)];
    for (const auto& [sym, code] : plan.symbol_codes) {
      sym_eq[sym] = m->make_eq(xenc, SigSpec(Const::from_uint(code, plan.symbol_width)), "xeq");
    }
    auto& edge_cond = edge_cond_r[static_cast<std::size_t>(r)];
    edge_cond.resize(edges.size());
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
      const fsm::CfgEdge& e = edges[ei];
      edge_cond[ei] = m->make_and(state_eq[static_cast<std::size_t>(e.from)],
                                  sym_eq.at(e.symbol), "econd");
    }
    if (reps > 1) {
      for (std::size_t ci = first_cell; ci < m->cells().size(); ++ci) {
        m->cells()[ci]->set_share_group(1000 + r);
      }
    }
  }
  const std::vector<SigSpec>& state_eq = state_eq_r[0];
  const std::vector<SigSpec>& edge_cond = edge_cond_r[0];

  // (2) Modifier selection as an AND-OR ROM: bit i of the modifier bus is
  // the OR of the (mutually exclusive) edge conditions whose modifier sets
  // bit i. No match leaves the all-zero modifier, which cannot produce a
  // valid next state (infective by construction). Because every lane solve
  // confines the nonzero modifier bits to its pivot columns, most bus bits
  // fold to constant zero during optimization. Under encoded_selectors the
  // ROM is built once per selector replica.
  std::vector<SigSpec> mod_bus_r(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const std::size_t first_cell = m->cells().size();
    std::vector<SigSpec> mod_terms(static_cast<std::size_t>(layout.mod_width));
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
      int off = 0;
      for (std::size_t lane = 0; lane < layout.lanes.size(); ++lane) {
        for (int bit = 0; bit < layout.lanes[lane].mod_len; ++bit) {
          if ((mods[ei].lane_mods[lane] >> bit) & 1) {
            mod_terms[static_cast<std::size_t>(off + bit)].append(
                edge_cond_r[static_cast<std::size_t>(r)][ei]);
          }
        }
        off += layout.lanes[lane].mod_len;
      }
    }
    SigSpec bus;
    for (int bit = 0; bit < layout.mod_width; ++bit) {
      const SigSpec& terms = mod_terms[static_cast<std::size_t>(bit)];
      if (terms.width() == 0) {
        bus.append(SigSpec(SigBit(false)));
      } else if (terms.width() == 1) {
        bus.append(terms);
      } else {
        bus.append(m->make_reduce_or(terms, "modrom"));
      }
    }
    mod_bus_r[static_cast<std::size_t>(r)] = bus;
    if (reps > 1) {
      for (std::size_t ci = first_cell; ci < m->cells().size(); ++ci) {
        m->cells()[ci]->set_share_group(1000 + r);
      }
    }
  }
  const SigSpec& mod_bus = mod_bus_r[0];

  // (3) Mix, (4) diffusion, (5) unmix.
  SigSpec next_enc;
  SigSpec error_bits;
  int mod_off = 0;
  for (const Lane& lane : layout.lanes) {
    SigSpec lane_in;
    lane_in.append(state.extract(lane.state_lo, lane.state_len));
    lane_in.append(xenc.extract(lane.sym_lo, lane.sym_len));
    lane_in.append(mod_bus.extract(mod_off, lane.mod_len));
    mod_off += lane.mod_len;
    check(lane_in.width() == layout.lane_bits, "scfi_harden: lane width mismatch");
    const SigSpec lane_out = emit_mds(*m, mds.slp, lane_in);
    next_enc.append(lane_out.extract(0, lane.state_len));
    error_bits.append(
        lane_out.extract(layout.lane_bits - layout.error_bits, layout.error_bits));
  }
  check(next_enc.width() == plan.state_width, "scfi_harden: next state width mismatch");

  // (6) Error logic: the AND-reduced error bits infect the next state; a
  // current state outside the valid set, or an encoded input matching no
  // expected pattern (the `default` branch of Figure 4), collapses to the
  // all-zero terminal ERROR state. The pattern-match gate makes FT2
  // detection deterministic below N flips; the error bits remain as the
  // probabilistic backstop against faults inside the function itself.
  const SigSpec err_ok = m->make_reduce_and(error_bits, "err_ok");
  const SigSpec infected = m->make_and(next_enc, replicate(err_ok, plan.state_width), "infect");
  SigSpec valid = SigSpec(SigBit(false));
  for (int s = 0; s < fsm.num_states(); ++s) {
    valid = m->make_or(valid, state_eq[static_cast<std::size_t>(s)], "valid");
  }
  // Every selector replica must see a match, and (under encoded_selectors)
  // the duplicated modifier buses must agree: a single selector fault makes
  // the replicas diverge and deterministically lands in ERROR.
  SigSpec matched_all;
  for (int r = 0; r < reps; ++r) {
    SigSpec any_edge;
    for (const SigSpec& cond : edge_cond_r[static_cast<std::size_t>(r)]) any_edge.append(cond);
    matched_all.append(m->make_reduce_or(any_edge, "matched"));
  }
  SigSpec matched =
      matched_all.width() == 1 ? matched_all : m->make_reduce_and(matched_all, "matched_and");
  if (reps > 1) {
    const SigSpec sel_eq = m->make_eq(mod_bus_r[0], mod_bus_r[1], "sel_eq");
    matched = m->make_and(matched, sel_eq, "sel_ok");
  }
  const SigSpec ok = m->make_and(valid, matched, "ok");
  const SigSpec next_final =
      m->make_mux(ok, SigSpec(Const::from_uint(plan.error_code, plan.state_width)), infected,
                  "next");

  rtlil::Cell* ff = m->add_cell("state_ff", rtlil::CellType::kDff);
  ff->set_port("D", next_final);
  ff->set_port("Q", state);
  ff->set_reset_value(Const::from_uint(
      plan.state_codes[static_cast<std::size_t>(fsm.reset_state)], plan.state_width));

  // Mealy outputs from the (mutually exclusive) edge conditions. With
  // protect_outputs (paper §7 extension) the output network is duplicated
  // from an independent selector replica and checked; otherwise lambda stays
  // unprotected, as in the paper's prototype.
  const auto output_network = [&](const std::vector<SigSpec>& conds) {
    std::vector<SigSpec> ys;
    for (int j = 0; j < fsm.num_outputs(); ++j) {
      SigSpec acc = SigSpec(SigBit(false));
      for (std::size_t ei = 0; ei < edges.size(); ++ei) {
        if (edges[ei].output[static_cast<std::size_t>(j)] == '1') {
          acc = m->make_or(acc, conds[ei], "yor");
        }
      }
      ys.push_back(acc);
    }
    return ys;
  };
  const std::vector<SigSpec> y_primary = output_network(edge_cond);
  SigSpec out_err = SigSpec(SigBit(false));
  if (config.protect_outputs && fsm.num_outputs() > 0) {
    // Independent replica of the conditions feeding a shadow output network.
    const std::size_t first_cell = m->cells().size();
    std::vector<SigSpec> shadow_cond(edges.size());
    std::vector<SigSpec> sh_state_eq(static_cast<std::size_t>(fsm.num_states()));
    for (int s = 0; s < fsm.num_states(); ++s) {
      sh_state_eq[static_cast<std::size_t>(s)] = m->make_eq(
          state,
          SigSpec(Const::from_uint(plan.state_codes[static_cast<std::size_t>(s)],
                                   plan.state_width)),
          "oseq");
    }
    std::map<std::string, SigSpec> sh_sym_eq;
    for (const auto& [sym, code] : plan.symbol_codes) {
      sh_sym_eq[sym] =
          m->make_eq(xenc, SigSpec(Const::from_uint(code, plan.symbol_width)), "oxeq");
    }
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
      shadow_cond[ei] = m->make_and(sh_state_eq[static_cast<std::size_t>(edges[ei].from)],
                                    sh_sym_eq.at(edges[ei].symbol), "oecond");
    }
    const std::vector<SigSpec> y_shadow = output_network(shadow_cond);
    for (std::size_t ci = first_cell; ci < m->cells().size(); ++ci) {
      m->cells()[ci]->set_share_group(2000);
    }
    for (int j = 0; j < fsm.num_outputs(); ++j) {
      const SigSpec differ =
          m->make_xor(y_primary[static_cast<std::size_t>(j)],
                      y_shadow[static_cast<std::size_t>(j)], "ymm");
      out_err = m->make_or(out_err, differ, "oerr");
    }
  }
  for (int j = 0; j < fsm.num_outputs(); ++j) {
    rtlil::Wire* y = m->add_output(fsm.outputs[static_cast<std::size_t>(j)], 1);
    m->drive(SigSpec(y), y_primary[static_cast<std::size_t>(j)]);
  }

  // Alert: register outside the valid set (includes ERROR), a failing
  // error-bit check, or (with protect_outputs) an output-network mismatch —
  // all in the current cycle (zero detection latency).
  rtlil::Wire* alert = m->add_output("fsm_alert", 1);
  out.alert_wire = alert->name();
  const SigSpec alert_sig =
      m->make_or(m->make_or(m->make_not(ok, "nok"), m->make_not(err_ok, "nerr"), "alrt0"),
                 out_err, "alert");
  m->drive(SigSpec(alert), alert_sig);

  rtlil::validate_module(*m);

  if (report != nullptr) {
    report->plan = plan;
    report->lanes = layout.k();
    report->mod_width = layout.mod_width;
    report->mds_xor_gates = mds.xor_gates;
    report->mds_depth = mds.depth;
    report->cfg_edges = static_cast<int>(edges.size());
  }
  return out;
}

}  // namespace scfi::core
