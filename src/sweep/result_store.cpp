#include "sweep/result_store.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "backends/json.h"
#include "base/error.h"
#include "base/strutil.h"

namespace scfi::sweep {

const char* fault_kind_name(sim::FaultKind kind) {
  switch (kind) {
    case sim::FaultKind::kStuckAt0: return "stuck0";
    case sim::FaultKind::kStuckAt1: return "stuck1";
    case sim::FaultKind::kTransientFlip: return "flip";
    default: return "none";
  }
}

sim::FaultKind fault_kind_of(const std::string& name) {
  if (name == "stuck0") return sim::FaultKind::kStuckAt0;
  if (name == "stuck1") return sim::FaultKind::kStuckAt1;
  if (name == "flip") return sim::FaultKind::kTransientFlip;
  throw ScfiError("sweep: unknown fault kind '" + name +
                  "' (expected flip, stuck0, or stuck1)");
}

const char* backend_name(synfi::Backend backend) {
  return backend == synfi::Backend::kSat ? "sat" : "sim";
}

synfi::Backend backend_of(const std::string& name) {
  if (name == "sat") return synfi::Backend::kSat;
  if (name == "sim") return synfi::Backend::kExhaustiveSim;
  throw ScfiError("sweep: unknown backend '" + name + "' (expected sim or sat)");
}

namespace {

/// Minimal recursive-descent reader for the one flat object shape the store
/// emits: string / integer / double / bool values plus one string array.
class LineParser {
 public:
  explicit LineParser(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    require(pos_ < text_.size() && text_[pos_] == c,
            std::string("result store: expected '") + c + "' in JSONL line");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string raw;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        raw.push_back(text_[pos_++]);
      }
      raw.push_back(text_[pos_++]);
    }
    expect('"');
    return backends::json_unescape(raw);
  }

  double parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    require(end != begin, "result store: malformed number in JSONL line");
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  bool parse_bool() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    throw ScfiError("result store: malformed bool in JSONL line");
  }

  std::vector<std::string> parse_string_array() {
    std::vector<std::string> items;
    expect('[');
    if (consume(']')) return items;
    do {
      items.push_back(parse_string());
    } while (consume(','));
    expect(']');
    return items;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string SweepJob::key() const {
  std::string key = module + "|" + variant + "|n" + std::to_string(protection_level) + "|r=" +
                    synfi.wire_prefix + "|" + backend_name(synfi.backend) + "|" +
                    fault_kind_name(synfi.kind);
  if (synfi.include_inputs) key += "|inputs";
  if (synfi.free_symbol) key += "|free";
  return key;
}

std::string ResultStore::to_line(const SweepResult& result) {
  const SweepJob& job = result.job;
  const synfi::SynfiReport& r = result.report;
  std::ostringstream out;
  out << "{\"schema\":" << kSchemaVersion;
  out << ",\"key\":\"" << backends::json_escape(result.key()) << "\"";
  out << ",\"module\":\"" << backends::json_escape(job.module) << "\"";
  out << ",\"variant\":\"" << backends::json_escape(job.variant) << "\"";
  out << ",\"level\":" << job.protection_level;
  out << ",\"region\":\"" << backends::json_escape(job.synfi.wire_prefix) << "\"";
  out << ",\"include_inputs\":" << (job.synfi.include_inputs ? "true" : "false");
  out << ",\"backend\":\"" << backend_name(job.synfi.backend) << "\"";
  out << ",\"kind\":\"" << fault_kind_name(job.synfi.kind) << "\"";
  out << ",\"free_symbol\":" << (job.synfi.free_symbol ? "true" : "false");
  out << ",\"sites\":" << r.sites;
  out << ",\"injections\":" << r.injections;
  out << ",\"exploitable\":" << r.exploitable;
  out << ",\"detected\":" << r.detected;
  out << ",\"masked\":" << r.masked;
  out << ",\"stalls\":" << r.stalls;
  out << ",\"exploitable_sites\":[";
  for (std::size_t i = 0; i < r.exploitable_sites.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << backends::json_escape(r.exploitable_sites[i]) << "\"";
  }
  out << "]";
  char seconds[32];
  std::snprintf(seconds, sizeof(seconds), "%.6f", result.seconds);
  out << ",\"seconds\":" << seconds << "}";
  return out.str();
}

SweepResult ResultStore::parse_line(const std::string& line) {
  SweepResult result;
  LineParser parser(line);
  bool saw_schema = false;
  parser.expect('{');
  if (!parser.consume('}')) {
    do {
      const std::string field = parser.parse_string();
      parser.expect(':');
      if (field == "schema") {
        const int schema = static_cast<int>(parser.parse_number());
        require(schema == kSchemaVersion,
                "result store: schema version " + std::to_string(schema) + " (expected " +
                    std::to_string(kSchemaVersion) + ")");
        saw_schema = true;
      } else if (field == "key") {
        parser.parse_string();  // derived; recomputed from the job fields
      } else if (field == "module") {
        result.job.module = parser.parse_string();
      } else if (field == "variant") {
        result.job.variant = parser.parse_string();
      } else if (field == "level") {
        result.job.protection_level = static_cast<int>(parser.parse_number());
      } else if (field == "region") {
        result.job.synfi.wire_prefix = parser.parse_string();
      } else if (field == "include_inputs") {
        result.job.synfi.include_inputs = parser.parse_bool();
      } else if (field == "backend") {
        result.job.synfi.backend = backend_of(parser.parse_string());
      } else if (field == "kind") {
        result.job.synfi.kind = fault_kind_of(parser.parse_string());
      } else if (field == "free_symbol") {
        result.job.synfi.free_symbol = parser.parse_bool();
      } else if (field == "sites") {
        result.report.sites = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "injections") {
        result.report.injections = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "exploitable") {
        result.report.exploitable = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "detected") {
        result.report.detected = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "masked") {
        result.report.masked = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "stalls") {
        result.report.stalls = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "exploitable_sites") {
        result.report.exploitable_sites = parser.parse_string_array();
      } else if (field == "seconds") {
        result.seconds = parser.parse_number();
      } else {
        // Unknown fields are skipped so minor forward extensions do not
        // break old readers — but only scalar values, keeping this honest.
        if (parser.peek() == '"') {
          parser.parse_string();
        } else if (parser.peek() == 't' || parser.peek() == 'f') {
          parser.parse_bool();
        } else {
          parser.parse_number();
        }
      }
    } while (parser.consume(','));
    parser.expect('}');
  }
  require(saw_schema, "result store: JSONL line missing schema field");
  require(!result.job.module.empty(), "result store: JSONL line missing module field");
  return result;
}

ResultStore ResultStore::load(const std::string& path) {
  ResultStore store;
  // A missing store is a fresh start; an existing-but-unreadable one must
  // NOT silently resume as empty (every completed job would re-execute).
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return store;
  std::ifstream in(path);
  require(in.good(), "result store: cannot read " + path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    try {
      store.add(parse_line(trimmed));
    } catch (const ScfiError& e) {
      throw ScfiError(path + ":" + std::to_string(line_no) + ": " + e.what());
    }
  }
  return store;
}

void ResultStore::add(SweepResult result) {
  const std::string key = result.key();
  const auto it = index_.find(key);
  if (it != index_.end()) {
    results_[it->second] = std::move(result);
    return;
  }
  index_.emplace(key, results_.size());
  results_.push_back(std::move(result));
}

bool ResultStore::contains(const std::string& key) const { return index_.count(key) > 0; }

const SweepResult* ResultStore::find(const std::string& key) const {
  const auto it = index_.find(key);
  return it != index_.end() ? &results_[it->second] : nullptr;
}

void ResultStore::merge(const ResultStore& other) {
  for (const SweepResult& result : other.results_) add(result);
}

ResultStore::Diff ResultStore::diff(const ResultStore& left, const ResultStore& right) {
  Diff diff;
  for (const SweepResult& l : left.results_) {
    const SweepResult* r = right.find(l.key());
    if (r == nullptr) {
      diff.only_left.push_back(l.key());
    } else if (!(l.report == r->report)) {
      diff.changed.push_back(l.key());
    }
  }
  for (const SweepResult& r : right.results_) {
    if (left.find(r.key()) == nullptr) diff.only_right.push_back(r.key());
  }
  std::sort(diff.only_left.begin(), diff.only_left.end());
  std::sort(diff.only_right.begin(), diff.only_right.end());
  std::sort(diff.changed.begin(), diff.changed.end());
  return diff;
}

void ResultStore::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  require(out.good(), "result store: cannot write " + path);
  for (const SweepResult& result : results_) out << to_line(result) << "\n";
  require(out.good(), "result store: write to " + path + " failed");
}

void ResultStore::append_line(const std::string& path, const SweepResult& result) {
  std::ofstream out(path, std::ios::app);
  require(out.good(), "result store: cannot append to " + path);
  out << to_line(result) << "\n" << std::flush;
  require(out.good(), "result store: append to " + path + " failed");
}

}  // namespace scfi::sweep
