#include "sweep/result_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "backends/json.h"
#include "base/error.h"
#include "base/log.h"
#include "base/strutil.h"

namespace scfi::sweep {

const char* fault_kind_name(sim::FaultKind kind) {
  switch (kind) {
    case sim::FaultKind::kStuckAt0: return "stuck0";
    case sim::FaultKind::kStuckAt1: return "stuck1";
    case sim::FaultKind::kTransientFlip: return "flip";
    case sim::FaultKind::kSkipCycle: return "skip";
    default: return "none";
  }
}

sim::FaultKind fault_kind_of(const std::string& name) {
  if (name == "stuck0") return sim::FaultKind::kStuckAt0;
  if (name == "stuck1") return sim::FaultKind::kStuckAt1;
  if (name == "flip") return sim::FaultKind::kTransientFlip;
  if (name == "skip") return sim::FaultKind::kSkipCycle;
  throw ScfiError("sweep: unknown fault kind '" + name +
                  "' (expected flip, stuck0, stuck1, or skip)");
}

std::string fault_kinds_name(const std::vector<sim::FaultKind>& kinds) {
  require(!kinds.empty(), "sweep: a fault spec needs at least one kind");
  std::string joined;
  for (const sim::FaultKind kind : kinds) {
    if (!joined.empty()) joined += '+';
    joined += fault_kind_name(kind);
  }
  return joined;
}

std::vector<sim::FaultKind> fault_kinds_of(const std::string& name) {
  std::vector<sim::FaultKind> kinds;
  std::string::size_type begin = 0;
  while (begin <= name.size()) {
    const std::string::size_type end = name.find('+', begin);
    const std::string token =
        name.substr(begin, end == std::string::npos ? std::string::npos : end - begin);
    kinds.push_back(fault_kind_of(token));
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return kinds;
}

const char* backend_name(synfi::Backend backend) {
  return backend == synfi::Backend::kSat ? "sat" : "sim";
}

synfi::Backend backend_of(const std::string& name) {
  if (name == "sat") return synfi::Backend::kSat;
  if (name == "sim") return synfi::Backend::kExhaustiveSim;
  throw ScfiError("sweep: unknown backend '" + name + "' (expected sim or sat)");
}

const char* fault_target_name(sim::FaultTarget target) {
  switch (target) {
    case sim::FaultTarget::kControlInputs: return "inputs";
    case sim::FaultTarget::kStateRegister: return "state";
    case sim::FaultTarget::kLogic: return "logic";
    default: return "any";
  }
}

sim::FaultTarget fault_target_of(const std::string& name) {
  if (name == "inputs") return sim::FaultTarget::kControlInputs;
  if (name == "state") return sim::FaultTarget::kStateRegister;
  if (name == "logic") return sim::FaultTarget::kLogic;
  if (name == "any") return sim::FaultTarget::kAny;
  throw ScfiError("sweep: unknown fault target '" + name +
                  "' (expected any, inputs, state, or logic)");
}

const char* job_type_name(JobType type) {
  return type == JobType::kCampaign ? "campaign" : "synfi";
}

JobType job_type_of(const std::string& name) {
  if (name == "synfi") return JobType::kSynfi;
  if (name == "campaign") return JobType::kCampaign;
  throw ScfiError("sweep: unknown job type '" + name + "' (expected synfi or campaign)");
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kFailed: return "failed";
    case JobStatus::kLeased: return "leased";
    default: return "ok";
  }
}

JobStatus job_status_of(const std::string& name) {
  if (name == "ok") return JobStatus::kOk;
  if (name == "failed") return JobStatus::kFailed;
  if (name == "leased") return JobStatus::kLeased;
  throw ScfiError("sweep: unknown job status '" + name +
                  "' (expected ok, failed, or leased)");
}

bool reports_equal(const SweepResult& a, const SweepResult& b) {
  if (a.job.type != b.job.type) return false;
  if (a.status != b.status) return false;
  // Two failures (or two leases) compare equal regardless of error text,
  // attempt count, worker id, or deadline: those are diagnostics, like
  // timing, not part of the verdict.
  if (a.status != JobStatus::kOk) return true;
  if (a.job.type == JobType::kCampaign) return a.campaign == b.campaign;
  return a.report == b.report && a.protection_degree == b.protection_degree;
}

namespace {

/// Minimal recursive-descent reader for the one flat object shape the store
/// emits: string / integer / double / bool values plus one string array.
class LineParser {
 public:
  explicit LineParser(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    require(pos_ < text_.size() && text_[pos_] == c,
            std::string("result store: expected '") + c + "' in JSONL line");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string raw;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        raw.push_back(text_[pos_++]);
      }
      raw.push_back(text_[pos_++]);
    }
    expect('"');
    return backends::json_unescape(raw);
  }

  double parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    require(end != begin, "result store: malformed number in JSONL line");
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  /// Exact 64-bit parse for fields (the campaign seed) where the double
  /// round-trip of parse_number() would be lossy above 2^53 and silently
  /// change the recomputed job key. Rejects negatives and out-of-range
  /// values instead of letting strtoull wrap or saturate them into a
  /// different (and silently resumable) key.
  std::uint64_t parse_uint() {
    skip_ws();
    require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "result store: malformed integer in JSONL line");
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(begin, &end, 10);
    require(end != begin && errno != ERANGE,
            "result store: malformed integer in JSONL line");
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  /// parse_uint bounded to int, for count fields the store writes as
  /// non-negative integers — a double-typed parse cast to int would be UB
  /// (and garbage keys) on corrupted out-of-range lines.
  int parse_int_count() {
    const std::uint64_t value = parse_uint();
    require(value <= 0x7fffffffULL, "result store: count out of range in JSONL line");
    return static_cast<int>(value);
  }

  bool parse_bool() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    throw ScfiError("result store: malformed bool in JSONL line");
  }

  std::vector<std::string> parse_string_array() {
    std::vector<std::string> items;
    expect('[');
    if (consume(']')) return items;
    do {
      items.push_back(parse_string());
    } while (consume(','));
    expect(']');
    return items;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string SweepJob::key() const {
  // Zoo keys (empty source) are byte-identical to the schema-v2 era so old
  // stores keep resuming and diffing against new runs.
  const std::string qualified = source.empty() ? module : source + "::" + module;
  if (type == JobType::kCampaign) {
    return qualified + "|" + variant + "|n" + std::to_string(protection_level) + "|mc|" +
           fault_kinds_name(campaign.fault.kinds) + "|t=" +
           fault_target_name(campaign.fault.target) +
           "|runs=" + std::to_string(campaign.runs) + "|c=" + std::to_string(campaign.cycles) +
           "|f=" + std::to_string(campaign.fault.k) + "|s=" + std::to_string(campaign.seed);
  }
  std::string key = qualified + "|" + variant + "|n" + std::to_string(protection_level) +
                    "|r=" + synfi.wire_prefix + "|" + backend_name(synfi.backend) + "|" +
                    fault_kind_name(synfi.kind);
  // Non-default threat models extend the key; the classic single-fault
  // any-target sweep keeps its pre-v6 key byte-identical.
  if (synfi.target != sim::FaultTarget::kAny) key += "|t=" + std::string(fault_target_name(synfi.target));
  if (synfi.faults_k != 1) key += "|k=" + std::to_string(synfi.faults_k);
  if (synfi.include_inputs) key += "|inputs";
  if (synfi.free_symbol) key += "|free";
  return key;
}

std::string ResultStore::to_line(const SweepResult& result) {
  const SweepJob& job = result.job;
  std::ostringstream out;
  out << "{\"schema\":" << kSchemaVersion;
  out << ",\"type\":\"" << job_type_name(job.type) << "\"";
  out << ",\"key\":\"" << backends::json_escape(result.key()) << "\"";
  out << ",\"source\":\"" << backends::json_escape(job.source) << "\"";
  out << ",\"module\":\"" << backends::json_escape(job.module) << "\"";
  out << ",\"variant\":\"" << backends::json_escape(job.variant) << "\"";
  out << ",\"level\":" << job.protection_level;
  out << ",\"status\":\"" << job_status_name(result.status) << "\"";
  if (!result.worker.empty()) {
    out << ",\"worker\":\"" << backends::json_escape(result.worker) << "\"";
  }
  const bool ok = result.status == JobStatus::kOk;
  // Identity fields are written even for failed/leased records (resume and
  // the lease protocol need the key to round-trip); the payload counters
  // exist only on ok records.
  if (job.type == JobType::kCampaign) {
    const sim::CampaignResult& c = result.campaign;
    out << ",\"kind\":\"" << fault_kinds_name(job.campaign.fault.kinds) << "\"";
    out << ",\"target\":\"" << fault_target_name(job.campaign.fault.target) << "\"";
    out << ",\"runs\":" << job.campaign.runs;
    out << ",\"cycles\":" << job.campaign.cycles;
    out << ",\"faults\":" << job.campaign.fault.k;
    out << ",\"seed\":" << job.campaign.seed;
    if (ok) {
      out << ",\"masked\":" << c.masked;
      out << ",\"detected\":" << c.detected;
      out << ",\"hijacked\":" << c.hijacked;
      out << ",\"lagged\":" << c.lagged;
      out << ",\"silent_invalid\":" << c.silent_invalid;
    }
  } else {
    const synfi::SynfiReport& r = result.report;
    out << ",\"region\":\"" << backends::json_escape(job.synfi.wire_prefix) << "\"";
    out << ",\"include_inputs\":" << (job.synfi.include_inputs ? "true" : "false");
    out << ",\"backend\":\"" << backend_name(job.synfi.backend) << "\"";
    out << ",\"kind\":\"" << fault_kind_name(job.synfi.kind) << "\"";
    out << ",\"target\":\"" << fault_target_name(job.synfi.target) << "\"";
    out << ",\"faults_k\":" << job.synfi.faults_k;
    out << ",\"free_symbol\":" << (job.synfi.free_symbol ? "true" : "false");
    if (ok) {
      out << ",\"sites\":" << r.sites;
      out << ",\"injections\":" << r.injections;
      out << ",\"exploitable\":" << r.exploitable;
      out << ",\"protection_degree\":" << result.protection_degree;
      out << ",\"detected\":" << r.detected;
      out << ",\"masked\":" << r.masked;
      out << ",\"stalls\":" << r.stalls;
      out << ",\"exploitable_sites\":[";
      for (std::size_t i = 0; i < r.exploitable_sites.size(); ++i) {
        if (i > 0) out << ",";
        out << "\"" << backends::json_escape(r.exploitable_sites[i]) << "\"";
      }
      out << "]";
    }
  }
  if (result.status == JobStatus::kFailed) {
    out << ",\"error\":\"" << backends::json_escape(result.error) << "\"";
  }
  if (result.status == JobStatus::kLeased) {
    char deadline[32];
    std::snprintf(deadline, sizeof(deadline), "%.6f", result.deadline);
    out << ",\"deadline\":" << deadline;
  }
  out << ",\"attempts\":" << result.attempts;
  char seconds[32];
  std::snprintf(seconds, sizeof(seconds), "%.6f", result.seconds);
  out << ",\"seconds\":" << seconds << "}";
  return out.str();
}

SweepResult ResultStore::parse_line(const std::string& line, int* schema_out) {
  // Fields are collected first and committed at the end: the `kind`,
  // `target`, `detected`, and `masked` names are shared between the two job
  // types, so they can only be routed once the (possibly later) `type` field
  // is known. v1 lines have no `type` field and migrate as SYNFI records;
  // v2 lines have no `source` field and migrate as zoo records; v3 lines
  // have no `status`/`attempts` fields and migrate as ok single-attempt
  // records; v4 lines predate the fleet and carry no `worker`/`deadline`
  // fields or `leased` status; v5 lines predate the k-fault threat model
  // (no `faults_k`/`protection_degree`, and `target` only on campaigns) and
  // migrate as single-fault records with a derived protection degree.
  int schema = -1;
  std::string type_str = "synfi";
  std::string kind_str;
  std::string target_str;
  bool saw_kind = false;
  bool saw_target = false;
  bool saw_source = false;
  bool saw_status = false;
  bool saw_error = false;
  bool saw_attempts = false;
  bool saw_worker = false;
  bool saw_deadline = false;
  bool saw_faults_k = false;
  bool saw_degree = false;
  int faults_k = 1;
  std::int64_t detected = 0;
  std::int64_t masked = 0;
  SweepResult result;
  LineParser parser(line);
  parser.expect('{');
  if (!parser.consume('}')) {
    do {
      const std::string field = parser.parse_string();
      parser.expect(':');
      if (field == "schema") {
        schema = static_cast<int>(parser.parse_number());
        require(schema >= 1 && schema <= kSchemaVersion,
                "result store: schema version " + std::to_string(schema) +
                    " (expected 1.." + std::to_string(kSchemaVersion) + ")");
      } else if (field == "type") {
        type_str = parser.parse_string();
      } else if (field == "key") {
        parser.parse_string();  // derived; recomputed from the job fields
      } else if (field == "source") {
        result.job.source = parser.parse_string();
        saw_source = true;
      } else if (field == "status") {
        result.status = job_status_of(parser.parse_string());
        saw_status = true;
      } else if (field == "error") {
        result.error = parser.parse_string();
        saw_error = true;
      } else if (field == "attempts") {
        result.attempts = parser.parse_int_count();
        saw_attempts = true;
      } else if (field == "worker") {
        result.worker = parser.parse_string();
        saw_worker = true;
      } else if (field == "deadline") {
        result.deadline = parser.parse_number();
        saw_deadline = true;
      } else if (field == "module") {
        result.job.module = parser.parse_string();
      } else if (field == "variant") {
        result.job.variant = parser.parse_string();
      } else if (field == "level") {
        result.job.protection_level = static_cast<int>(parser.parse_number());
      } else if (field == "region") {
        result.job.synfi.wire_prefix = parser.parse_string();
      } else if (field == "include_inputs") {
        result.job.synfi.include_inputs = parser.parse_bool();
      } else if (field == "backend") {
        result.job.synfi.backend = backend_of(parser.parse_string());
      } else if (field == "kind") {
        kind_str = parser.parse_string();
        saw_kind = true;
      } else if (field == "target") {
        target_str = parser.parse_string();
        saw_target = true;
      } else if (field == "faults_k") {
        faults_k = parser.parse_int_count();
        saw_faults_k = true;
      } else if (field == "protection_degree") {
        result.protection_degree = parser.parse_int_count();
        saw_degree = true;
      } else if (field == "free_symbol") {
        result.job.synfi.free_symbol = parser.parse_bool();
      } else if (field == "runs") {
        result.job.campaign.runs = parser.parse_int_count();
      } else if (field == "cycles") {
        result.job.campaign.cycles = parser.parse_int_count();
      } else if (field == "faults") {
        result.job.campaign.fault.k = parser.parse_int_count();
      } else if (field == "seed") {
        result.job.campaign.seed = parser.parse_uint();
      } else if (field == "hijacked") {
        result.campaign.hijacked = parser.parse_int_count();
      } else if (field == "lagged") {
        result.campaign.lagged = parser.parse_int_count();
      } else if (field == "silent_invalid") {
        result.campaign.silent_invalid = parser.parse_int_count();
      } else if (field == "sites") {
        result.report.sites = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "injections") {
        result.report.injections = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "exploitable") {
        result.report.exploitable = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "detected") {
        detected = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "masked") {
        masked = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "stalls") {
        result.report.stalls = static_cast<std::int64_t>(parser.parse_number());
      } else if (field == "exploitable_sites") {
        result.report.exploitable_sites = parser.parse_string_array();
      } else if (field == "seconds") {
        result.seconds = parser.parse_number();
      } else {
        // Unknown fields are skipped so minor forward extensions do not
        // break old readers — but only scalar values, keeping this honest.
        if (parser.peek() == '"') {
          parser.parse_string();
        } else if (parser.peek() == 't' || parser.peek() == 'f') {
          parser.parse_bool();
        } else {
          parser.parse_number();
        }
      }
    } while (parser.consume(','));
    parser.expect('}');
  }
  require(schema > 0, "result store: JSONL line missing schema field");
  require(!result.job.module.empty(), "result store: JSONL line missing module field");
  result.job.type = job_type_of(type_str);
  require(schema >= 2 || result.job.type == JobType::kSynfi,
          "result store: schema 1 lines cannot carry campaign records");
  require(schema >= 3 || !saw_source,
          "result store: schema " + std::to_string(schema) +
              " lines cannot carry a source field (corpus sources are v3)");
  require(schema >= 4 || !(saw_status || saw_error || saw_attempts),
          "result store: schema " + std::to_string(schema) +
              " lines cannot carry status/error/attempts fields (job status is v4)");
  require(schema >= 5 ||
              !(saw_worker || saw_deadline || result.status == JobStatus::kLeased),
          "result store: schema " + std::to_string(schema) +
              " lines cannot carry worker/deadline fields or a leased status "
              "(fleet leases are v5)");
  require(schema >= 6 || !(saw_faults_k || saw_degree),
          "result store: schema " + std::to_string(schema) +
              " lines cannot carry faults_k/protection_degree fields "
              "(the k-fault threat model is v6)");
  require(result.attempts >= 1, "result store: attempts must be >= 1");
  require(result.status == JobStatus::kFailed || !saw_error,
          "result store: only failed records can carry an error field");
  require(result.status == JobStatus::kLeased || !saw_deadline,
          "result store: only leased records can carry a deadline field");
  require(result.status != JobStatus::kLeased || saw_deadline,
          "result store: leased records must carry a deadline field");
  if (result.job.type == JobType::kCampaign) {
    if (saw_kind) result.job.campaign.fault.kinds = fault_kinds_of(kind_str);
    if (saw_target) result.job.campaign.fault.target = fault_target_of(target_str);
    require(detected >= 0 && detected <= 0x7fffffffLL && masked >= 0 &&
                masked <= 0x7fffffffLL,
            "result store: count out of range in JSONL line");
    result.campaign.runs = result.job.campaign.runs;
    result.campaign.detected = static_cast<int>(detected);
    result.campaign.masked = static_cast<int>(masked);
  } else {
    // `target` on a SYNFI line is itself a v6 extension — campaign lines
    // carried one since v2, so the gate is per-type.
    require(schema >= 6 || !saw_target,
            "result store: schema " + std::to_string(schema) +
                " synfi lines cannot carry a target field "
                "(the k-fault threat model is v6)");
    if (saw_kind) result.job.synfi.kind = fault_kind_of(kind_str);
    if (saw_target) result.job.synfi.target = fault_target_of(target_str);
    require(faults_k >= 1, "result store: faults_k must be >= 1");
    result.job.synfi.faults_k = faults_k;
    result.report.faults_k = faults_k;
    result.report.detected = detected;
    result.report.masked = masked;
    // v5-and-older ok records are all single-fault sweeps, so their
    // protection degree is fully determined by the verdict.
    if (!saw_degree && result.status == JobStatus::kOk) {
      result.protection_degree = result.report.exploitable > 0 ? 1 : 0;
    }
  }
  if (schema_out != nullptr) *schema_out = schema;
  return result;
}

ResultStore ResultStore::load(const std::string& path, bool recover_torn_tail) {
  ResultStore store;
  // A missing store is a fresh start; an existing-but-unreadable one must
  // NOT silently resume as empty (every completed job would re-execute).
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return store;
  std::ifstream in(path);
  require(in.good(), "result store: cannot read " + path);
  // Lines are collected before parsing so the final line is known up front:
  // recovery may salvage ONLY a torn last line (the one shape a crash
  // mid-append can leave); a malformed line anywhere earlier is corruption
  // no crash explains and still aborts the load.
  std::vector<std::pair<std::size_t, std::string>> lines;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    lines.emplace_back(line_no, std::move(trimmed));
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    try {
      int schema = 0;
      store.add(parse_line(lines[i].second, &schema));
      if (store.min_schema_ == 0 || schema < store.min_schema_) store.min_schema_ = schema;
      if (schema > store.max_schema_) store.max_schema_ = schema;
    } catch (const ScfiError& e) {
      if (recover_torn_tail && i + 1 == lines.size()) {
        log_warn("result store: dropping torn final line at " + path + ":" +
                 std::to_string(lines[i].first) + " (" + e.what() +
                 "); the interrupted job will re-execute on resume");
        break;
      }
      throw ScfiError(path + ":" + std::to_string(lines[i].first) + ": " + e.what());
    }
  }
  return store;
}

void ResultStore::add(SweepResult result) {
  const std::string key = result.key();
  const auto it = index_.find(key);
  if (it != index_.end()) {
    results_[it->second] = std::move(result);
    return;
  }
  index_.emplace(key, results_.size());
  results_.push_back(std::move(result));
}

void ResultStore::require_uniform_schema(const std::string& what) const {
  if (min_schema_ == 0 || min_schema_ == max_schema_) return;
  throw ScfiError(what + ": store mixes schema versions v" + std::to_string(min_schema_) +
                  " and v" + std::to_string(max_schema_) +
                  "; refusing to migrate mid-operation — rewrite it explicitly with "
                  "`scfi_cli store-compact --migrate` first");
}

bool ResultStore::contains(const std::string& key) const { return index_.count(key) > 0; }

const SweepResult* ResultStore::find(const std::string& key) const {
  const auto it = index_.find(key);
  return it != index_.end() ? &results_[it->second] : nullptr;
}

void ResultStore::merge(const ResultStore& other) {
  for (const SweepResult& result : other.results_) add(result);
}

ResultStore::Diff ResultStore::diff(const ResultStore& left, const ResultStore& right) {
  Diff diff;
  for (const SweepResult& l : left.results_) {
    const SweepResult* r = right.find(l.key());
    if (r == nullptr) {
      diff.only_left.push_back(l.key());
    } else if (!reports_equal(l, *r)) {
      diff.changed.push_back(l.key());
    }
  }
  for (const SweepResult& r : right.results_) {
    if (left.find(r.key()) == nullptr) diff.only_right.push_back(r.key());
  }
  std::sort(diff.only_left.begin(), diff.only_left.end());
  std::sort(diff.only_right.begin(), diff.only_right.end());
  std::sort(diff.changed.begin(), diff.changed.end());
  return diff;
}

namespace {

/// fsync of an already-written file by path; throws on failure (a store the
/// caller believes durable must actually be on disk).
void fsync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  require(fd >= 0, "result store: cannot reopen " + path + " for fsync");
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  require(ok, "result store: fsync of " + path + " failed");
}

/// Best-effort fsync of `path`'s parent directory, making the rename that
/// just landed there durable. Some filesystems reject directory fsync;
/// that only weakens durability, never correctness, so failures are quiet.
void fsync_parent_dir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void ResultStore::save(const std::string& path) const {
  // Write-to-temp + fsync + atomic rename: the old in-place truncate lost
  // every record if the process died between the truncate and the final
  // flush. After the rename the directory entry is synced too, so the swap
  // itself survives a power cut.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    require(out.good(), "result store: cannot write " + tmp);
    for (const SweepResult& result : results_) out << to_line(result) << "\n";
    out.flush();
    require(out.good(), "result store: write to " + tmp + " failed");
  }
  fsync_file(tmp);
  require(std::rename(tmp.c_str(), path.c_str()) == 0,
          "result store: cannot rename " + tmp + " over " + path);
  fsync_parent_dir(path);
}

void ResultStore::append_line(const std::string& path, const SweepResult& result) {
  const std::string line = to_line(result) + "\n";
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  require(fd >= 0, "result store: cannot append to " + path);
  // One full O_APPEND write so concurrent workers' records never
  // interleave, then fsync so a reported-durable record survives a crash.
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n = ::write(fd, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw ScfiError("result store: append to " + path + " failed");
    }
    written += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  require(synced, "result store: fsync of " + path + " failed");
}

ResultStore::CompactStats ResultStore::compact_file(const std::string& path, bool migrate) {
  std::error_code ec;
  require(std::filesystem::exists(path, ec),
          "store-compact: " + path + ": no such store file");
  CompactStats stats;
  {
    std::ifstream in(path);
    require(in.good(), "store-compact: " + path + ": cannot read store");
    std::string line;
    while (std::getline(in, line)) {
      if (!trim(line).empty()) ++stats.lines;
    }
  }
  require(stats.lines > 0, "store-compact: " + path + ": store is empty");
  const ResultStore store = load(path, /*recover_torn_tail=*/true);
  // All-torn is indistinguishable from pointing at a non-store file; either
  // way an atomic rewrite to zero records would destroy whatever was there.
  require(store.size() > 0,
          "store-compact: " + path + ": store holds no complete records");
  // save() rewrites every line at the current schema, so compacting a
  // mixed-version store would silently migrate the old half of it; that
  // needs the explicit --migrate opt-in.
  if (!migrate) store.require_uniform_schema("store-compact: " + path);
  store.save(path);
  stats.records = store.size();
  return stats;
}

}  // namespace scfi::sweep
