// The sweep fleet's parent process: `scfi_cli sweep --fleet N` forks N
// worker subprocesses that shard one job matrix through the shared JSONL
// store (see lease.h for the claim protocol) and supervises them — a
// worker that segfaults, is OOM-killed, or stops heartbeating is reaped
// and respawned with jittered exponential backoff, and the job it held
// returns to the pool. Process isolation is the point: a job that takes
// its worker down (a simulator bug, an OOM) costs one subprocess, not the
// sweep.
//
// Poison-job quarantine: the supervisor counts, per job key, how many
// workers died holding its lease. At `max_crashes` the key is written as a
// failed record with error "crashed" — terminal for this run, never
// re-leased — and the fleet moves on. Below the threshold the lease is
// released immediately (no waiting for expiry) so a surviving worker can
// steal the job.
//
// Graceful drain: SIGTERM/SIGINT to the supervisor forwards SIGTERM to
// every worker; workers stop claiming, finish their in-flight job within
// `drain_grace` seconds (past it the job's CancelToken fires and the job
// is recorded as cancelled), and exit. The supervisor then merges and
// compacts the store — leases are protocol traffic and are dropped — so
// what is left on disk is a plain schema-v5 result store a later
// `--resume` (fleet or single-process) picks up seamlessly.
//
// Liveness is watched over a per-worker pipe: the worker writes a byte
// every `heartbeat_interval`; a worker silent for `heartbeat_timeout` is
// SIGKILLed (this is how a *wedged* job — spinning forever without
// crashing — is converted into an ordinary crash). If the supervisor
// itself dies, each worker's next heartbeat write hits a closed pipe and
// the default SIGPIPE kills it: no orphan fleet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/retry.h"
#include "sweep/sweep.h"

namespace scfi::sweep {

struct FleetConfig {
  /// Worker subprocesses to keep alive; >= 1.
  int workers = 2;
  /// Worker deaths one job key survives before it is quarantined as a
  /// failed record with error "crashed"; >= 1.
  int max_crashes = 2;
  /// Lease duration a worker claims per job. Renewed at half-life by the
  /// worker's heartbeat thread, so it only expires when the holder is dead
  /// AND the supervisor (which releases a reaped worker's lease
  /// explicitly) is gone too — the cross-fleet work-stealing fallback.
  double lease_seconds = 120.0;
  /// Seconds between heartbeat bytes on the worker->supervisor pipe.
  double heartbeat_interval = 0.2;
  /// Silence after which a worker is presumed wedged and SIGKILLed.
  double heartbeat_timeout = 10.0;
  /// Supervisor monitor-loop tick (also the workers' ledger re-poll
  /// interval while waiting on peers' leases).
  double poll_interval = 0.05;
  /// Seconds a draining worker may spend finishing its in-flight job
  /// before the job's CancelToken fires.
  double drain_grace = 30.0;
  /// When > 0, a worker whose in-flight job exceeds this many seconds
  /// stops heartbeating on purpose, volunteering for the supervisor's
  /// stale-heartbeat SIGKILL: per-job wedge detection stronger than the
  /// cooperative `job.job_timeout` (it catches jobs that never reach a
  /// cancellation checkpoint). 0 = off.
  double wedge_seconds = 0.0;
  /// Seeds the full-jitter respawn backoff (deterministic fleet runs).
  std::uint64_t jitter_seed = 0x5cf1f1ee7ULL;
  /// Delay schedule between a slot's consecutive crashes and its respawn,
  /// full-jittered so crashed slots do not respawn in lockstep.
  BackoffPolicy respawn_backoff{100.0, 2.0, 5000.0};
  /// Per-worker execution config (threads = inner threads PER WORKER;
  /// `jobs` is forced to 1 — a worker runs one job at a time so a crash
  /// attributes to exactly one lease; `cancel` is owned by the worker's
  /// drain token).
  SweepConfig job;
  /// Test hook: a worker that claims this key SIGKILLs itself while
  /// holding the lease — a deterministic stand-in for a job that crashes
  /// its process. "" = off. Wired from $SCFI_FLEET_POISON by the CLI.
  std::string poison_key;
};

struct FleetStats {
  int executed = 0;     ///< pending keys that finished ok this run
  int skipped = 0;      ///< keys already ok in the store (resume)
  int failed = 0;       ///< pending keys with a failed record (quarantined included)
  int quarantined = 0;  ///< keys failed with error "crashed" after max_crashes
  int unfinished = 0;   ///< pending keys with no terminal record (drain cut them)
  int crashes = 0;      ///< worker deaths observed (any abnormal exit)
  int respawns = 0;     ///< replacement workers forked
  bool drained = false; ///< SIGTERM/SIGINT drain was requested
};

class FleetSupervisor {
 public:
  explicit FleetSupervisor(const FleetConfig& config = {});

  /// Runs `jobs` across the worker fleet, coordinating through the JSONL
  /// store at `store_path` (required — it is the fleet's shared medium).
  /// The store is compacted up front (prior history shrinks to latest-wins
  /// records; everything appended past that baseline is this run's
  /// protocol traffic) and again at the end (leases dropped, finals kept).
  /// With `resume`, keys already ok in the store are skipped. Returns the
  /// run's stats; throws ScfiError on a malformed job matrix, on store
  /// corruption no crash explains, or when every worker is lost to
  /// corruption-class exits. The caller decides the exit code —
  /// `failed > 0 || unfinished > 0` is the CI convention.
  FleetStats run(const std::vector<SweepJob>& jobs, const std::string& store_path,
                 bool resume = false, const ModuleSource* source = nullptr);

 private:
  FleetConfig config_;
};

}  // namespace scfi::sweep
