#include "sweep/lease.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "base/error.h"
#include "base/log.h"
#include "base/strutil.h"

namespace scfi::sweep {

double lease_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

SweepResult make_lease(const SweepJob& job, const std::string& worker, double deadline) {
  SweepResult lease;
  lease.job = job;
  lease.status = JobStatus::kLeased;
  lease.worker = worker;
  lease.deadline = deadline;
  return lease;
}

LeaseLedger::LeaseLedger(std::string path, std::uint64_t baseline_offset)
    : path_(std::move(path)), offset_(baseline_offset) {}

void LeaseLedger::fold(SweepResult record) {
  const std::string key = record.key();
  if (record.status == JobStatus::kLeased) {
    leases_.insert_or_assign(key, std::move(record));
    return;
  }
  // Finals are sticky for the run (a completed job never un-completes;
  // results are deterministic, so the latest final is as good as the
  // first), but latest-wins among themselves so a re-executed steal's
  // record simply replaces its twin.
  if (finals_.find(key) == finals_.end()) final_order_.push_back(key);
  finals_.insert_or_assign(key, std::move(record));
}

void LeaseLedger::poll() {
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  require(fd >= 0, "lease ledger: cannot open " + path_);
  require(::lseek(fd, static_cast<off_t>(offset_), SEEK_SET) >= 0,
          "lease ledger: cannot seek in " + path_);
  char buffer[65536];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw ScfiError("lease ledger: read of " + path_ + " failed");
    }
    if (n == 0) break;
    offset_ += static_cast<std::uint64_t>(n);
    carry_.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::size_t start = 0;
  for (;;) {
    const std::size_t newline = carry_.find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = trim(carry_.substr(start, newline - start));
    start = newline + 1;
    if (line.empty()) continue;
    try {
      fold(ResultStore::parse_line(line));
    } catch (const ScfiError& first) {
      // A SIGKILL between a worker's write() and its completion can leave
      // torn bytes that the NEXT append glues a full record onto. The full
      // record is intact at the line's last '{"schema":'; anything that
      // does not salvage that way is corruption no crash explains.
      const std::size_t last = line.rfind("{\"schema\":");
      if (last == std::string::npos || last == 0) {
        throw ScfiError("lease ledger: " + path_ + ": " + first.what());
      }
      log_warn("lease ledger: salvaged a record glued onto torn bytes in " + path_ +
               " (" + std::string(first.what()) + ")");
      fold(ResultStore::parse_line(line.substr(last)));
    }
  }
  carry_.erase(0, start);
}

const SweepResult* LeaseLedger::latest_lease(const std::string& key) const {
  const auto it = leases_.find(key);
  return it != leases_.end() ? &it->second : nullptr;
}

const SweepResult* LeaseLedger::final_record(const std::string& key) const {
  const auto it = finals_.find(key);
  return it != finals_.end() ? &it->second : nullptr;
}

LeaseState LeaseLedger::state(const std::string& key, double now) const {
  if (done(key)) return LeaseState::kDone;
  const SweepResult* lease = latest_lease(key);
  if (lease == nullptr) return LeaseState::kUnclaimed;
  return lease->deadline > now ? LeaseState::kLeased : LeaseState::kExpired;
}

bool LeaseLedger::claimable(const std::string& key, double now) const {
  const LeaseState s = state(key, now);
  return s == LeaseState::kUnclaimed || s == LeaseState::kExpired;
}

std::vector<const SweepResult*> LeaseLedger::finals() const {
  std::vector<const SweepResult*> out;
  out.reserve(final_order_.size());
  for (const std::string& key : final_order_) out.push_back(&finals_.at(key));
  return out;
}

}  // namespace scfi::sweep
