// Where a sweep job matrix draws its modules from.
//
// The paper's evaluation runs over two very different module populations:
// the OpenTitan-style zoo (§6, Table 1 — built-in factories with datapaths)
// and the MCNC/LGSynth KISS2 benchmark corpus (§6 — bare state machines
// from .kiss2 files). `ModuleSource` abstracts over both so the orchestrator
// and the job-matrix expanders never care which population a module came
// from; the source's `label()` is threaded through `SweepJob::source` into
// the result-store keys (schema v3), keeping zoo and corpus results
// distinguishable — and resumable — in one JSONL store.
#pragma once

#include <string>
#include <vector>

#include "ot/zoo.h"

namespace scfi::sweep {

/// Abstract module population. Entries are `ot::OtEntry`s; corpus entries
/// simply carry no datapath builder (`build_ot_variant` skips the attach).
class ModuleSource {
 public:
  virtual ~ModuleSource() = default;

  /// Corpus identity threaded into job keys and the JSONL store. "" is the
  /// built-in zoo — zoo keys are byte-identical to the schema-v2 era. The
  /// label, not the directory path, is the resume/diff identity, so a
  /// relative and an absolute path to the same corpus produce the same keys.
  virtual std::string label() const = 0;

  /// Every entry whose name matches one of the comma-separated glob
  /// patterns (`*`/`?`), in the source's canonical order. May be empty
  /// (callers decide whether that is an error).
  virtual std::vector<ot::OtEntry> modules(const std::string& globs) const = 0;

  /// Entry by exact name; throws ScfiError when unknown.
  virtual ot::OtEntry module(const std::string& name) const = 0;
};

/// The built-in OpenTitan zoo, Table 1 order.
class ZooSource final : public ModuleSource {
 public:
  std::string label() const override { return ""; }
  std::vector<ot::OtEntry> modules(const std::string& globs) const override;
  ot::OtEntry module(const std::string& name) const override;
};

/// One corpus file the scan could not ingest (.kiss2 parse error, Verilog
/// parse/elaboration error, FSM extraction failure). Recorded (and logged)
/// loudly per module instead of aborting the whole sweep: one malformed
/// benchmark must not take down a corpus-scale campaign.
struct CorpusError {
  std::string module;   ///< module name the file would have had
  std::string path;     ///< file path as discovered
  std::string message;  ///< the parse error
};

/// A directory of `.kiss2` files, discovered recursively at construction.
/// Module names are the file paths relative to the corpus root, minus the
/// `.kiss2` extension, with '/' separators (e.g. "mcnc/lion"); entries are
/// name-sorted so discovery order is deterministic across filesystems.
class Kiss2CorpusSource final : public ModuleSource {
 public:
  /// Scans `dir` (throws ScfiError when it is not a directory). `label`
  /// defaults to the directory's base name, e.g. "corpus" for
  /// "bench/corpus/".
  explicit Kiss2CorpusSource(const std::string& dir, const std::string& label = "");

  std::string label() const override { return label_; }
  std::vector<ot::OtEntry> modules(const std::string& globs) const override;
  ot::OtEntry module(const std::string& name) const override;

  /// Files that failed to parse during the scan (already logged as
  /// warnings); the sweep runs on over the remaining entries.
  const std::vector<CorpusError>& errors() const { return errors_; }
  std::size_t size() const { return entries_.size(); }

 private:
  std::string label_;
  std::vector<ot::OtEntry> entries_;  ///< parse-clean entries, name-sorted
  std::vector<CorpusError> errors_;
};

/// A directory of structural Verilog netlists (`.v`), discovered recursively
/// at construction. Every file goes through the frontends reader
/// (parse + elaborate + validate) and each module's state machines are
/// recovered by fsm::extract_fsms — the paper's real-RTL front door: the
/// sweep hardens what was *extracted from a netlist*, not a hand-written
/// FSM description.
///
/// Entry names are the file path relative to the corpus root minus the `.v`
/// extension (like the KISS2 corpus); a file with several modules appends
/// "/<module>", and a module with several state registers appends
/// ".<state_wire>", so every extracted machine has a stable store key.
/// Files that fail to parse/elaborate — and modules where no FSM can be
/// extracted — become loud per-module CorpusErrors, and the sweep runs on.
class VerilogCorpusSource final : public ModuleSource {
 public:
  /// Scans `dir` (throws ScfiError when it is not a directory). `label`
  /// defaults to the directory's base name, e.g. "corpus-verilog" for
  /// "bench/corpus-verilog/".
  explicit VerilogCorpusSource(const std::string& dir, const std::string& label = "");

  std::string label() const override { return label_; }
  std::vector<ot::OtEntry> modules(const std::string& globs) const override;
  ot::OtEntry module(const std::string& name) const override;

  const std::vector<CorpusError>& errors() const { return errors_; }
  std::size_t size() const { return entries_.size(); }

 private:
  std::string label_;
  std::vector<ot::OtEntry> entries_;  ///< extraction-clean entries, name-sorted
  std::vector<CorpusError> errors_;
};

}  // namespace scfi::sweep
