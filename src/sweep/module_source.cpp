#include "sweep/module_source.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/error.h"
#include "base/log.h"
#include "base/strutil.h"
#include "fsm/kiss2.h"

namespace scfi::sweep {
namespace {

bool matches_any(const std::string& name, const std::vector<std::string>& patterns) {
  for (const std::string& pattern : patterns) {
    if (glob_match(name, pattern)) return true;
  }
  return false;
}

}  // namespace

std::vector<ot::OtEntry> ZooSource::modules(const std::string& globs) const {
  return ot::ot_entries(globs);
}

ot::OtEntry ZooSource::module(const std::string& name) const { return ot::ot_entry(name); }

Kiss2CorpusSource::Kiss2CorpusSource(const std::string& dir, const std::string& label) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root = fs::path(dir).lexically_normal();
  require(fs::is_directory(root, ec),
          "corpus: " + dir + " is not a directory of .kiss2 files");
  if (label.empty()) {
    // A trailing slash ("bench/corpus/", what shell completion produces)
    // leaves filename() empty; the base name is then one level up.
    fs::path base = root.filename();
    if (base.empty()) base = root.parent_path().filename();
    label_ = base.generic_string();
  } else {
    label_ = label;
  }
  require(!label_.empty() && label_ != "." && label_ != "..",
          "corpus: cannot derive a label from '" + dir + "'; pass one explicitly");

  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(root, fs::directory_options::skip_permission_denied)) {
    if (!entry.is_regular_file(ec) || entry.path().extension() != ".kiss2") continue;
    const std::string name = entry.path()
                                 .lexically_relative(root)
                                 .replace_extension()
                                 .generic_string();
    std::ifstream in(entry.path());
    if (!in) {
      errors_.push_back(CorpusError{name, entry.path().generic_string(), "cannot open file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      ot::OtEntry parsed;
      parsed.name = name;
      parsed.fsm = fsm::parse_kiss2(buffer.str(), name);
      entries_.push_back(std::move(parsed));  // no datapath: a bare FSM module
    } catch (const ScfiError& e) {
      // Loud per-module error record; the rest of the corpus still sweeps.
      errors_.push_back(CorpusError{name, entry.path().generic_string(), e.what()});
      log_warn("corpus: skipping " + entry.path().generic_string() + ": " + e.what());
    }
  }
  const auto by_name = [](const ot::OtEntry& a, const ot::OtEntry& b) { return a.name < b.name; };
  std::sort(entries_.begin(), entries_.end(), by_name);
  std::sort(errors_.begin(), errors_.end(),
            [](const CorpusError& a, const CorpusError& b) { return a.module < b.module; });
}

std::vector<ot::OtEntry> Kiss2CorpusSource::modules(const std::string& globs) const {
  const std::vector<std::string> patterns = split(globs, ",");
  std::vector<ot::OtEntry> matched;
  for (const ot::OtEntry& entry : entries_) {
    if (matches_any(entry.name, patterns)) matched.push_back(entry);
  }
  return matched;
}

ot::OtEntry Kiss2CorpusSource::module(const std::string& name) const {
  for (const ot::OtEntry& entry : entries_) {
    if (entry.name == name) return entry;
  }
  throw ScfiError("corpus " + label_ + ": unknown module " + name);
}

}  // namespace scfi::sweep
