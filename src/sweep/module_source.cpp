#include "sweep/module_source.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/error.h"
#include "base/log.h"
#include "base/strutil.h"
#include "frontends/verilog_parse.h"
#include "fsm/extract.h"
#include "fsm/kiss2.h"
#include "rtlil/design.h"

namespace scfi::sweep {
namespace {

bool matches_any(const std::string& name, const std::vector<std::string>& patterns) {
  for (const std::string& pattern : patterns) {
    if (glob_match(name, pattern)) return true;
  }
  return false;
}

/// Corpus label: explicit, or the directory's base name. A trailing slash
/// ("bench/corpus/", what shell completion produces) leaves filename()
/// empty; the base name is then one level up.
std::string derive_label(const std::filesystem::path& root, const std::string& dir,
                         const std::string& label) {
  if (!label.empty()) return label;
  std::filesystem::path base = root.filename();
  if (base.empty()) base = root.parent_path().filename();
  const std::string derived = base.generic_string();
  require(!derived.empty() && derived != "." && derived != "..",
          "corpus: cannot derive a label from '" + dir + "'; pass one explicitly");
  return derived;
}

}  // namespace

std::vector<ot::OtEntry> ZooSource::modules(const std::string& globs) const {
  return ot::ot_entries(globs);
}

ot::OtEntry ZooSource::module(const std::string& name) const { return ot::ot_entry(name); }

Kiss2CorpusSource::Kiss2CorpusSource(const std::string& dir, const std::string& label) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root = fs::path(dir).lexically_normal();
  require(fs::is_directory(root, ec),
          "corpus: " + dir + " is not a directory of .kiss2 files");
  label_ = derive_label(root, dir, label);

  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(root, fs::directory_options::skip_permission_denied)) {
    if (!entry.is_regular_file(ec) || entry.path().extension() != ".kiss2") continue;
    const std::string name = entry.path()
                                 .lexically_relative(root)
                                 .replace_extension()
                                 .generic_string();
    std::ifstream in(entry.path());
    if (!in) {
      errors_.push_back(CorpusError{name, entry.path().generic_string(), "cannot open file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      ot::OtEntry parsed;
      parsed.name = name;
      parsed.fsm = fsm::parse_kiss2(buffer.str(), name);
      entries_.push_back(std::move(parsed));  // no datapath: a bare FSM module
    } catch (const ScfiError& e) {
      // Loud per-module error record; the rest of the corpus still sweeps.
      errors_.push_back(CorpusError{name, entry.path().generic_string(), e.what()});
      log_warn("corpus: skipping " + entry.path().generic_string() + ": " + e.what());
    }
  }
  const auto by_name = [](const ot::OtEntry& a, const ot::OtEntry& b) { return a.name < b.name; };
  std::sort(entries_.begin(), entries_.end(), by_name);
  std::sort(errors_.begin(), errors_.end(),
            [](const CorpusError& a, const CorpusError& b) { return a.module < b.module; });
}

std::vector<ot::OtEntry> Kiss2CorpusSource::modules(const std::string& globs) const {
  const std::vector<std::string> patterns = split(globs, ",");
  std::vector<ot::OtEntry> matched;
  for (const ot::OtEntry& entry : entries_) {
    if (matches_any(entry.name, patterns)) matched.push_back(entry);
  }
  return matched;
}

ot::OtEntry Kiss2CorpusSource::module(const std::string& name) const {
  for (const ot::OtEntry& entry : entries_) {
    if (entry.name == name) return entry;
  }
  throw ScfiError("corpus " + label_ + ": unknown module " + name);
}

VerilogCorpusSource::VerilogCorpusSource(const std::string& dir, const std::string& label) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root = fs::path(dir).lexically_normal();
  require(fs::is_directory(root, ec),
          "corpus-verilog: " + dir + " is not a directory of .v netlists");
  label_ = derive_label(root, dir, label);

  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(root, fs::directory_options::skip_permission_denied)) {
    if (!entry.is_regular_file(ec) || entry.path().extension() != ".v") continue;
    const std::string base = entry.path()
                                 .lexically_relative(root)
                                 .replace_extension()
                                 .generic_string();
    const std::string path = entry.path().generic_string();
    rtlil::Design design;
    std::vector<rtlil::Module*> modules;
    try {
      modules = frontends::read_verilog_file(path, design);
    } catch (const ScfiError& e) {
      // Loud per-file error record; the rest of the corpus still sweeps.
      errors_.push_back(CorpusError{base, path, e.what()});
      log_warn("corpus-verilog: skipping " + path + ": " + e.what());
      continue;
    }
    for (const rtlil::Module* module : modules) {
      const std::string module_name =
          modules.size() == 1 ? base : base + "/" + module->name();
      std::vector<fsm::ExtractedFsm> machines;
      try {
        machines = fsm::extract_fsms(*module);
      } catch (const ScfiError& e) {
        errors_.push_back(CorpusError{module_name, path, e.what()});
        log_warn("corpus-verilog: skipping " + module_name + ": " + e.what());
        continue;
      }
      if (machines.empty()) {
        // A netlist without a state machine cannot feed the hardening
        // sweep; record it loudly instead of silently shrinking the corpus.
        errors_.push_back(CorpusError{module_name, path, "no FSM found in module " +
                                                             module->name()});
        log_warn("corpus-verilog: no FSM found in " + module_name);
        continue;
      }
      for (fsm::ExtractedFsm& machine : machines) {
        ot::OtEntry parsed;
        parsed.name = machines.size() == 1 ? module_name
                                           : module_name + "." + machine.state_wire;
        parsed.fsm = std::move(machine.fsm);
        parsed.fsm.name = parsed.name;
        entries_.push_back(std::move(parsed));  // no datapath: a bare FSM module
      }
    }
  }
  const auto by_name = [](const ot::OtEntry& a, const ot::OtEntry& b) { return a.name < b.name; };
  std::sort(entries_.begin(), entries_.end(), by_name);
  std::sort(errors_.begin(), errors_.end(),
            [](const CorpusError& a, const CorpusError& b) { return a.module < b.module; });
}

std::vector<ot::OtEntry> VerilogCorpusSource::modules(const std::string& globs) const {
  const std::vector<std::string> patterns = split(globs, ",");
  std::vector<ot::OtEntry> matched;
  for (const ot::OtEntry& entry : entries_) {
    if (matches_any(entry.name, patterns)) matched.push_back(entry);
  }
  return matched;
}

ot::OtEntry VerilogCorpusSource::module(const std::string& name) const {
  for (const ot::OtEntry& entry : entries_) {
    if (entry.name == name) return entry;
  }
  throw ScfiError("corpus-verilog " + label_ + ": unknown module " + name);
}

}  // namespace scfi::sweep
