// Regression reporting over two sweep result stores (the CI gate behind
// `scfi_cli sweep-diff`).
//
// ResultStore::diff answers *which* keys changed; DiffReport answers *how
// much* and *does it gate*: per-key metric deltas (SYNFI exploitable /
// detected counts, campaign hijack / detection rates) are compared against
// configurable thresholds, and any delta beyond its threshold marks the
// entry — and the report — as a regression. Improvements and sub-threshold
// drift are reported but never gate.
//
// Campaign rates are estimates of a binomial parameter, so by default they
// gate *statistically*: each side's rate gets a Wilson-score confidence
// interval and a regression requires the candidate interval to clear the
// baseline interval (separation beyond the absolute allowance) — Monte-Carlo
// sampling noise inside the bands never fails CI. Keys with too few trials
// for the intervals to mean anything fall back to the plain absolute-delta
// thresholds (and zero-trial keys have the vacuous [0, 1] interval and a
// zero absolute delta, so they can never gate).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/result_store.h"

namespace scfi::sweep {

/// Gate thresholds. The defaults gate on ANY security-relevant worsening
/// beyond sampling noise: a single new exploitable injection (exact counts,
/// no noise), or a campaign rate whose 95% Wilson interval separates from
/// the baseline's.
struct DiffThresholds {
  /// SYNFI jobs: allowed growth of the exploitable-injection count.
  std::int64_t max_exploitable_increase = 0;
  /// Campaign jobs: allowed absolute hijack-rate increase (fraction of
  /// runs, e.g. 0.005 = half a percentage point). Under Wilson gating this
  /// is the allowed *interval separation*, not the allowed point delta.
  double max_hijack_rate_increase = 0.0;
  /// Campaign jobs: allowed absolute detection-rate drop (fraction of
  /// effective faults). Same interval-separation role under Wilson gating.
  double max_detection_rate_drop = 0.0;
  /// Treat keys present in the baseline but missing from the candidate as
  /// regressions (coverage loss). New keys never gate.
  bool fail_on_removed = false;
  /// z-score of the Wilson confidence band on campaign rates (1.96 ~ 95%).
  /// 0 disables interval gating entirely — every campaign key gates on the
  /// raw absolute deltas, the pre-Wilson behavior.
  double wilson_z = 1.96;
  /// Keys whose trial count (runs for the hijack rate, effective faults for
  /// the detection rate) is below this on either side gate on the absolute
  /// thresholds instead — with a handful of trials the interval spans most
  /// of [0, 1] and would wave every regression through.
  std::int64_t wilson_min_trials = 30;
};

/// Two-sided Wilson score interval for `successes` in `trials` Bernoulli
/// trials at z-score `z`. Zero trials yield the vacuous [0, 1]: no
/// information, overlaps everything, never gates.
struct WilsonInterval {
  double lower = 0.0;
  double upper = 1.0;
};
WilsonInterval wilson_interval(std::int64_t successes, std::int64_t trials, double z);

/// One changed key with its metric movement.
struct DiffEntry {
  std::string key;
  JobType type = JobType::kSynfi;
  // SYNFI deltas (candidate - baseline).
  std::int64_t d_exploitable = 0;
  std::int64_t d_detected = 0;
  std::int64_t d_masked = 0;
  // Campaign deltas (candidate - baseline).
  std::int64_t d_hijacked = 0;
  double d_hijack_rate = 0.0;
  double d_detection_rate = 0.0;
  /// Wilson intervals both sides (campaign entries; vacuous for SYNFI).
  WilsonInterval base_hijack, cand_hijack;
  WilsonInterval base_detection, cand_detection;
  /// Which logic decided each rate: interval separation (true) or the
  /// absolute-delta fallback (false). The two rates can differ — e.g.
  /// plenty of runs but too few effective faults for the detection rate.
  bool hijack_wilson = false;
  bool detection_wilson = false;
  bool regression = false;  ///< some delta exceeded its threshold
  std::string note;         ///< human-readable delta summary
};

struct DiffReport {
  std::vector<DiffEntry> changed;      ///< keys in both stores, payload moved
  std::vector<std::string> added;      ///< keys only in the candidate
  std::vector<std::string> removed;    ///< keys only in the baseline
  bool removed_gates = false;          ///< fail_on_removed was set: removals regress
  int regressions = 0;                 ///< gating entries (incl. removals when enabled)
  bool gate_failed = false;

  /// Multi-line human report: one line per changed key with its deltas,
  /// the added/removed key lists, and the verdict line CI scripts match on.
  std::string render() const;
};

/// Compares `candidate` against `baseline` under `thresholds`.
DiffReport diff_report(const ResultStore& baseline, const ResultStore& candidate,
                       const DiffThresholds& thresholds = {});

}  // namespace scfi::sweep
