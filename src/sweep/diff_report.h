// Regression reporting over two sweep result stores (the CI gate behind
// `scfi_cli sweep-diff`).
//
// ResultStore::diff answers *which* keys changed; DiffReport answers *how
// much* and *does it gate*: per-key metric deltas (SYNFI exploitable /
// detected counts, campaign hijack / detection rates) are compared against
// configurable thresholds, and any delta beyond its threshold marks the
// entry — and the report — as a regression. Improvements and sub-threshold
// drift are reported but never gate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/result_store.h"

namespace scfi::sweep {

/// Gate thresholds. The defaults gate on ANY security-relevant worsening:
/// a single new exploitable injection, any hijack-rate increase, any
/// detection-rate drop.
struct DiffThresholds {
  /// SYNFI jobs: allowed growth of the exploitable-injection count.
  std::int64_t max_exploitable_increase = 0;
  /// Campaign jobs: allowed absolute hijack-rate increase (fraction of
  /// runs, e.g. 0.005 = half a percentage point).
  double max_hijack_rate_increase = 0.0;
  /// Campaign jobs: allowed absolute detection-rate drop (fraction of
  /// effective faults).
  double max_detection_rate_drop = 0.0;
  /// Treat keys present in the baseline but missing from the candidate as
  /// regressions (coverage loss). New keys never gate.
  bool fail_on_removed = false;
};

/// One changed key with its metric movement.
struct DiffEntry {
  std::string key;
  JobType type = JobType::kSynfi;
  // SYNFI deltas (candidate - baseline).
  std::int64_t d_exploitable = 0;
  std::int64_t d_detected = 0;
  std::int64_t d_masked = 0;
  // Campaign deltas (candidate - baseline).
  std::int64_t d_hijacked = 0;
  double d_hijack_rate = 0.0;
  double d_detection_rate = 0.0;
  bool regression = false;  ///< some delta exceeded its threshold
  std::string note;         ///< human-readable delta summary
};

struct DiffReport {
  std::vector<DiffEntry> changed;      ///< keys in both stores, payload moved
  std::vector<std::string> added;      ///< keys only in the candidate
  std::vector<std::string> removed;    ///< keys only in the baseline
  bool removed_gates = false;          ///< fail_on_removed was set: removals regress
  int regressions = 0;                 ///< gating entries (incl. removals when enabled)
  bool gate_failed = false;

  /// Multi-line human report: one line per changed key with its deltas,
  /// the added/removed key lists, and the verdict line CI scripts match on.
  std::string render() const;
};

/// Compares `candidate` against `baseline` under `thresholds`.
DiffReport diff_report(const ResultStore& baseline, const ResultStore& candidate,
                       const DiffThresholds& thresholds = {});

}  // namespace scfi::sweep
