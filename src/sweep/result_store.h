// Persistent store for sweep results — SYNFI pre-silicon analyses (§6.4)
// and Monte-Carlo fault campaigns (§6.3) side by side: one JSON object per
// line (JSONL), append-only and schema-versioned, so successive sweeps over
// the module zoo can be resumed, merged, and compared without a database.
//
// See src/sweep/README.md for the line schema. The store is keyed by the
// job identity (for SYNFI jobs: module | variant | level | region | backend
// | fault kind plus the include_inputs/free_symbol flags; for campaign
// jobs: module | variant | level | mc | kind | target | the campaign
// shape — either prefixed by the module-source label when the module came
// from a KISS2 corpus rather than the built-in zoo); re-appending a key
// makes the latest record win, which is what lets `--resume` replay an
// interrupted sweep on top of a partially written file.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/campaign.h"
#include "synfi/synfi.h"

namespace scfi::sweep {

/// Fault-kind / backend / job-type / fault-target name mappings shared by
/// the store, the orchestrator, and the CLI (one place to extend). The *_of
/// parsers throw ScfiError on unknown names.
const char* fault_kind_name(sim::FaultKind kind);
sim::FaultKind fault_kind_of(const std::string& name);
/// A FaultSpec kind set as one token: single kinds print as themselves
/// ("flip"), multi-kind sets join with '+' ("flip+skip"). The parser
/// rejects empty sets and unknown member names.
std::string fault_kinds_name(const std::vector<sim::FaultKind>& kinds);
std::vector<sim::FaultKind> fault_kinds_of(const std::string& name);
const char* backend_name(synfi::Backend backend);
synfi::Backend backend_of(const std::string& name);
const char* fault_target_name(sim::FaultTarget target);
sim::FaultTarget fault_target_of(const std::string& name);

/// What a sweep job runs on its compiled variant.
enum class JobType {
  kSynfi,     ///< §6.4 pre-silicon SYNFI analysis
  kCampaign,  ///< §6.3 Monte-Carlo fault campaign
};
const char* job_type_name(JobType type);
JobType job_type_of(const std::string& name);

/// Outcome of a sweep job. A failed record keeps the full job identity (so
/// resume knows the key) but carries an error message instead of a report
/// payload. A leased record is NOT terminal: it is the fleet's job-claim
/// protocol — a worker appends one to claim the key until `deadline`, and
/// the latest-wins append order arbitrates races. Resume treats leased like
/// failed (the job re-executes); only ok records are skipped.
enum class JobStatus {
  kOk,      ///< report payload is valid
  kFailed,  ///< job threw / timed out / crashed its worker; `error` says why
  kLeased,  ///< claimed by `worker` until `deadline` (fleet mode, schema v5)
};
const char* job_status_name(JobStatus status);
JobStatus job_status_of(const std::string& name);

/// One sweep job: which variant to build and which query to run on it.
/// `synfi.lanes`/`synfi.threads` (and, for campaign jobs,
/// `campaign.lanes`/`campaign.threads`/`campaign.planner`) are execution
/// knobs owned by the orchestrator; everything else is job identity.
struct SweepJob {
  JobType type = JobType::kSynfi;
  /// Module-source identity: "" for the built-in OT zoo (keys unchanged
  /// from the schema-v2 era), otherwise the corpus label (e.g. "corpus" for
  /// a `--corpus bench/corpus` sweep). Part of the job identity so zoo and
  /// corpus results coexist — and resume independently — in one store.
  std::string source;
  std::string module;            ///< module name within the source
  /// For SYNFI jobs only "scfi" is analyzable: unprotected variants have
  /// raw (unencoded) control bits and redundancy variants hold N register
  /// copies the one-cycle SYNFI stimulus does not drive. Campaign jobs run
  /// on any of "scfi", "unprotected", or "redundancy".
  std::string variant = "scfi";
  int protection_level = 2;
  synfi::SynfiConfig synfi;       ///< kSynfi jobs
  sim::CampaignConfig campaign;   ///< kCampaign jobs

  /// Canonical identity string, e.g. "pwrmgr_fsm|scfi|n2|r=mds_|sim|flip"
  /// or "pwrmgr_fsm|scfi|n2|mc|flip|t=any|runs=2000|c=12|f=1|s=1"; corpus
  /// jobs prefix the module with the source label, e.g.
  /// "corpus::lion|scfi|n2|r=mds_|sim|flip". SYNFI jobs append "|t=<target>"
  /// and "|k=<n>" only when the threat model departs from the classic
  /// single-fault any-target sweep, so every pre-v6 key stays byte-identical.
  std::string key() const;
};

/// A finished job: the job identity, its terminal status, the report (one
/// of the two payloads, selected by `job.type`, meaningful only when
/// `status == kOk`), and the wall-clock cost. `attempts` counts executions
/// including retries; `error` is set only on failed records.
struct SweepResult {
  SweepJob job;
  JobStatus status = JobStatus::kOk;
  synfi::SynfiReport report;      ///< kSynfi payload (status == kOk)
  sim::CampaignResult campaign;   ///< kCampaign payload (status == kOk)
  /// Ok SYNFI records only: the variant's measured protection degree — the
  /// smallest k in [1, job.synfi.faults_k] whose k-fault sweep found an
  /// exploitable outcome, 0 when none did. Deterministic given the job
  /// identity, so it participates in reports_equal. v5 records (always
  /// faults_k = 1) migrate it as exploitable > 0 ? 1 : 0.
  int protection_degree = 0;
  std::string error;              ///< why the job failed (status == kFailed)
  int attempts = 1;               ///< executions spent, retries included
  double seconds = 0.0;
  /// Fleet worker id ("w<slot>.<generation>"): the holder on leased records,
  /// the executor on fleet-written final records, "" outside fleet mode.
  /// Pure diagnostics — never part of the verdict or the key.
  std::string worker;
  /// Lease expiry in fractional unix seconds (leased records only): past it
  /// the claim is void and any worker may re-lease the key. 0 (or any past
  /// instant) on an appended lease is an explicit release.
  double deadline = 0.0;

  std::string key() const { return job.key(); }
};

/// Verdict comparison: differing statuses never compare equal; two failed
/// (or two leased) records always do (the error text, attempt count, worker
/// id, and lease deadline are diagnostics, like timing); two ok records
/// compare the report of the job's type.
bool reports_equal(const SweepResult& a, const SweepResult& b);

class ResultStore {
 public:
  /// Bumped whenever the line schema changes. load()/parse_line() migrate
  /// v1 lines (SYNFI-only, no `type` field), v2 lines (zoo-only, no
  /// `source` field), v3 lines (always-ok, no `status`/`attempts` fields),
  /// v4 lines (pre-fleet, no `worker`/`deadline` fields or `leased`
  /// status), and v5 lines (single-fault threat model — no `faults_k` /
  /// `protection_degree` / SYNFI `target` fields) to v6 records on the fly
  /// and reject anything else; to_line() always writes the current version.
  static constexpr int kSchemaVersion = 6;

  ResultStore() = default;

  /// Parses an existing JSONL store. A missing file yields an empty store;
  /// a malformed line or schema mismatch throws ScfiError. With
  /// `recover_torn_tail`, a malformed FINAL line — the one shape a crash or
  /// SIGKILL between append_line's write and its fsync can leave behind —
  /// is dropped with a loud warning instead of aborting the load, so
  /// `--resume` can replay on top of a torn store (the dropped job simply
  /// re-executes). Corruption anywhere but the last line still throws:
  /// only a torn tail is explainable by a crash.
  static ResultStore load(const std::string& path, bool recover_torn_tail = false);

  /// Adds a result; an existing record with the same key is replaced
  /// in place (latest wins).
  void add(SweepResult result);

  bool contains(const std::string& key) const;
  const SweepResult* find(const std::string& key) const;
  const std::vector<SweepResult>& results() const { return results_; }
  std::size_t size() const { return results_.size(); }

  /// Smallest / largest on-disk schema version among the lines load() read,
  /// 0 for a store never loaded from a file (records added programmatically
  /// are implicitly current). load() migrates every line to the in-memory
  /// v6 shape either way; these only report what the file itself said.
  int min_schema() const { return min_schema_; }
  int max_schema() const { return max_schema_; }
  /// Throws ScfiError naming both versions when the loaded file mixed
  /// schema versions. Verdict-bearing consumers (store-compact, sweep-diff)
  /// call this instead of silently migrating half a store mid-comparison;
  /// `what` prefixes the error ("sweep-diff: old.jsonl").
  void require_uniform_schema(const std::string& what) const;

  /// Folds `other` into this store; on key collisions `other` wins.
  void merge(const ResultStore& other);

  /// Key-level comparison of two stores. `changed` lists keys present in
  /// both whose reports differ (timing is ignored — only verdicts count).
  struct Diff {
    std::vector<std::string> only_left;
    std::vector<std::string> only_right;
    std::vector<std::string> changed;
    bool empty() const { return only_left.empty() && only_right.empty() && changed.empty(); }
  };
  static Diff diff(const ResultStore& left, const ResultStore& right);

  /// Rewrites the whole store (one line per record, key order = insertion)
  /// crash-safely: the lines go to a sibling temp file which is fsynced and
  /// atomically renamed over `path`, so a crash at any point leaves either
  /// the complete old store or the complete new one — never a torn mix.
  /// Also the latest-wins compactor behind `scfi_cli store-compact`.
  void save(const std::string& path) const;

  /// Serializes one record as a single JSONL line (no trailing newline).
  static std::string to_line(const SweepResult& result);
  /// Inverse of to_line; throws ScfiError on malformed input or wrong
  /// schema version. `schema_out`, when non-null, receives the line's
  /// on-disk schema version (the record itself is always migrated to v6).
  static SweepResult parse_line(const std::string& line, int* schema_out = nullptr);
  /// Appends one record to a JSONL file (creating it if needed) as one
  /// O_APPEND write followed by fsync: records from concurrent workers
  /// never interleave, and once the call returns the record survives a
  /// crash or power cut. A kill inside the call can at worst leave one
  /// torn final line, which load()'s recovery mode salvages.
  static void append_line(const std::string& path, const SweepResult& result);

  /// What `scfi_cli store-compact` reports after compact_file().
  struct CompactStats {
    std::size_t lines = 0;    ///< non-blank JSONL lines before the rewrite
    std::size_t records = 0;  ///< latest-wins records after it
  };
  /// Rewrites the store at `path` latest-wins compact (salvaging a torn
  /// tail) via the atomic save() path. A missing file, an empty file, or a
  /// file whose every line is torn is an error — ScfiError naming the path
  /// and the reason — not a silent no-op: compacting nothing means the
  /// caller pointed at the wrong store. A store whose lines mix schema
  /// versions is rejected the same way (see require_uniform_schema) unless
  /// `migrate` is set, which deliberately rewrites every record at the
  /// current version.
  static CompactStats compact_file(const std::string& path, bool migrate = false);

 private:
  std::vector<SweepResult> results_;
  std::map<std::string, std::size_t> index_;  ///< key -> position in results_
  int min_schema_ = 0;  ///< smallest on-disk schema seen by load(), 0 = none
  int max_schema_ = 0;  ///< largest on-disk schema seen by load(), 0 = none
};

}  // namespace scfi::sweep
