#include "sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "base/error.h"
#include "base/strutil.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sim/campaign.h"

namespace scfi::sweep {
namespace {

ot::Variant variant_of(const SweepJob& job) {
  if (job.variant == "scfi") return ot::Variant::kScfi;
  if (job.type == JobType::kCampaign) {
    // The campaign engine drives all three compiled forms; only SYNFI is
    // restricted to symbol-encoded variants.
    if (job.variant == "unprotected") return ot::Variant::kUnprotected;
    if (job.variant == "redundancy") return ot::Variant::kRedundancy;
    throw ScfiError("sweep: unknown campaign variant '" + job.variant +
                    "' (expected scfi, unprotected, or redundancy)");
  }
  // kUnprotected compiles to raw control bits, which the symbol-level SYNFI
  // property cannot analyze, and kRedundancy holds N state-register copies
  // of which the one-cycle SYNFI stimulus only drives the primary — its
  // mismatch alert would fire on the stale copies and the report would be
  // meaningless. Reject both up front instead of deep inside a worker.
  throw ScfiError("sweep: unknown or unanalyzable variant '" + job.variant +
                  "' (expected scfi)");
}

/// Jobs that share a compiled variant, served by one Analyzer.
struct VariantGroup {
  std::string source;
  std::string module;
  std::string variant;
  int protection_level = 2;
  std::vector<std::size_t> job_indices;  ///< into the filtered job list
};

/// Maps a job's source label to the ModuleSource serving it: "" is always
/// the built-in zoo; anything else must match the caller-provided source.
const ModuleSource& source_of(const SweepJob& job, const ModuleSource* provided) {
  static const ZooSource zoo;
  if (job.source.empty()) return zoo;
  require(provided != nullptr && provided->label() == job.source,
          "sweep: job source '" + job.source +
              "' has no matching module source (pass the corpus the jobs "
              "were expanded from)");
  return *provided;
}

/// The active exception's message, callable only from a catch block (it
/// rethrows to inspect the type).
std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

void validate_jobs(const std::vector<SweepJob>& jobs, const ModuleSource* source) {
  for (const SweepJob& job : jobs) {
    variant_of(job);
    source_of(job, source);
  }
}

SweepOrchestrator::SweepOrchestrator(const SweepConfig& config) : config_(config) {
  require(config_.jobs >= 1, "sweep: jobs must be >= 1");
  require(config_.threads >= 1, "sweep: threads must be >= 1");
  require(config_.lanes >= 0 && config_.lanes <= sim::kMaxLanes,
          "sweep: lanes must be in [0 (auto), " + std::to_string(sim::kMaxLanes) +
              "] (64 x lane_words)");
  require(config_.retries >= 0, "sweep: retries must be >= 0");
  require(config_.job_timeout >= 0.0, "sweep: job timeout must be >= 0");
}

SweepStats SweepOrchestrator::run(const std::vector<SweepJob>& jobs, ResultStore& store,
                                  const std::string& out_path, bool resume,
                                  const ModuleSource* source) {
  SweepStats stats;

  // Validate and filter up front so a malformed job matrix (a caller bug,
  // unlike an execution failure) aborts before any work runs. The resume
  // lease skips only keys whose stored record is ok: a failed or timed-out
  // key re-executes, and the latest-wins append replaces its record.
  std::vector<SweepJob> pending;
  validate_jobs(jobs, source);
  for (const SweepJob& job : jobs) {
    if (resume) {
      const SweepResult* prior = store.find(job.key());
      if (prior != nullptr && prior->status == JobStatus::kOk) {
        ++stats.skipped;
        continue;
      }
    }
    pending.push_back(job);
  }
  if (pending.empty()) return stats;

  // Group by compiled variant, preserving first-appearance order, so one
  // Analyzer amortizes the build across every query of that variant.
  std::vector<VariantGroup> groups;
  std::map<std::string, std::size_t> group_index;
  for (std::size_t j = 0; j < pending.size(); ++j) {
    const SweepJob& job = pending[j];
    const std::string key = job.source + "|" + job.module + "|" + job.variant + "|n" +
                            std::to_string(job.protection_level);
    const auto it = group_index.find(key);
    if (it == group_index.end()) {
      group_index.emplace(key, groups.size());
      groups.push_back(
          VariantGroup{job.source, job.module, job.variant, job.protection_level, {j}});
    } else {
      groups[it->second].job_indices.push_back(j);
    }
  }

  // Two-level parallelism under one shared budget: `outer` concurrent jobs,
  // each running its queries with `inner` SYNFI worker threads.
  const int outer =
      std::max(1, std::min(config_.jobs, static_cast<int>(groups.size())));
  const int inner = std::max(1, config_.threads / outer);

  std::mutex emit_mutex;
  std::atomic<std::size_t> next_group{0};
  std::atomic<bool> aborted{false};
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(outer));

  // Streams one finished record — ok or failed — under the emit lock.
  const auto emit = [&](SweepResult result) {
    const std::lock_guard<std::mutex> lock(emit_mutex);
    if (!out_path.empty()) ResultStore::append_line(out_path, result);
    if (result.status == JobStatus::kOk) {
      ++stats.executed;
    } else {
      ++stats.failed;
    }
    store.add(std::move(result));
  };
  const auto emit_failure = [&](const SweepJob& job, const std::string& error, int attempts,
                                double seconds) {
    SweepResult result;
    result.job = job;
    result.status = JobStatus::kFailed;
    result.error = error;
    result.attempts = attempts;
    result.seconds = seconds;
    emit(std::move(result));
  };

  const auto worker = [&](int slot) {
    try {
      for (;;) {
        // An escaped worker error (fail_fast, or store/append I/O trouble)
        // stops every worker from claiming further groups; only the groups
        // already in flight finish.
        if (aborted.load(std::memory_order_relaxed)) return;
        const std::size_t g = next_group.fetch_add(1);
        if (g >= groups.size()) return;
        const VariantGroup& group = groups[g];
        // Building the variant is deterministic — an unknown corpus module
        // or a compile failure would fail identically on every retry — so
        // a build error fails every job of the group in one attempt.
        // `design` must outlive `compiled` (the compiled FSM points into it).
        rtlil::Design design;
        std::optional<ot::OtEntry> entry;
        std::optional<fsm::CompiledFsm> compiled;
        try {
          entry = source_of(pending[group.job_indices.front()], source).module(group.module);
          compiled = ot::build_ot_variant(*entry, design,
                                          variant_of(pending[group.job_indices.front()]),
                                          group.protection_level, group.module + "_sweep");
        } catch (...) {
          if (config_.fail_fast) throw;
          const std::string why = describe_current_exception();
          for (const std::size_t j : group.job_indices) {
            emit_failure(pending[j], "variant build failed: " + why, 1, 0.0);
          }
          continue;
        }
        // lanes = 0 resolves per compiled module right here — the one place
        // that holds both the knob and the module; explicit counts pass
        // through untouched.
        const int lanes =
            config_.lanes > 0 ? config_.lanes : synfi::auto_lanes(*compiled->module);
        // The Analyzer is SYNFI-only (it rejects raw/redundant variants);
        // build it lazily so campaign-only groups never pay for — or trip
        // over — it.
        std::unique_ptr<synfi::Analyzer> analyzer;
        for (const std::size_t j : group.job_indices) {
          // One deadline spans every attempt of the job: retries must not
          // extend a timeout budget. The token also observes the external
          // stop signal (fleet drain) when one is configured.
          CancelToken cancel;
          cancel.chain_to(config_.cancel);
          const bool deadline = config_.job_timeout > 0.0;
          if (deadline) cancel.set_deadline_after(config_.job_timeout);
          const bool cancellable = deadline || config_.cancel != nullptr;
          const auto job_start = std::chrono::steady_clock::now();
          const auto elapsed = [&] {
            return std::chrono::duration<double>(std::chrono::steady_clock::now() - job_start)
                .count();
          };
          for (int attempt = 1;; ++attempt) {
            try {
              SweepResult result;
              result.job = pending[j];
              if (result.job.type == JobType::kCampaign) {
                sim::CampaignConfig config = result.job.campaign;
                config.planner = sim::CampaignPlanner::kStreaming;
                config.lanes = lanes;
                config.threads = inner;
                if (cancellable) config.cancel = &cancel;
                result.campaign = sim::run_campaign(entry->fsm, *compiled, config);
              } else {
                if (!analyzer) {
                  analyzer = std::make_unique<synfi::Analyzer>(entry->fsm, *compiled);
                }
                synfi::SynfiConfig config = result.job.synfi;
                config.lanes = lanes;
                config.threads = inner;
                if (cancellable) config.cancel = &cancel;
                result.report = analyzer->run(config);
                // Measured protection degree: the smallest exploitable k up
                // to the job's faults_k. The job's own report answers
                // k = faults_k; smaller k probe the shared (cached)
                // analyzer, which for the common faults_k = 1 job means no
                // extra work at all.
                result.protection_degree = 0;
                for (int k = 1; k < config.faults_k && result.protection_degree == 0; ++k) {
                  synfi::SynfiConfig probe = config;
                  probe.faults_k = k;
                  if (analyzer->run(probe).exploitable > 0) result.protection_degree = k;
                }
                if (result.protection_degree == 0 && result.report.exploitable > 0) {
                  result.protection_degree = config.faults_k;
                }
              }
              result.attempts = attempt;
              result.seconds = elapsed();
              emit(std::move(result));
              break;
            } catch (const CancelledError&) {
              // The deadline — or the external stop — fired mid-attempt.
              // Deterministically final: the budget spans attempts, so
              // there is nothing to retry.
              if (config_.fail_fast) throw;
              const bool external =
                  config_.cancel != nullptr && config_.cancel->stop_requested();
              emit_failure(pending[j],
                           external
                               ? format("cancelled after %.3fs (external stop)", elapsed())
                               : format("timed out after %.3fs (job timeout %.3fs)",
                                        elapsed(), config_.job_timeout),
                           attempt, elapsed());
              break;
            } catch (...) {
              if (config_.fail_fast) throw;
              const std::string why = describe_current_exception();
              if (attempt > config_.retries || cancel.stop_requested()) {
                emit_failure(pending[j], why, attempt, elapsed());
                break;
              }
              {
                const std::lock_guard<std::mutex> lock(emit_mutex);
                ++stats.retried;
              }
              double delay_ms = config_.backoff.delay_ms(attempt);
              if (deadline) {
                const double remaining_ms = (config_.job_timeout - elapsed()) * 1000.0;
                delay_ms = std::min(delay_ms, std::max(0.0, remaining_ms));
              }
              if (delay_ms > 0.0) {
                std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
              }
            }
          }
        }
      }
    } catch (...) {
      errors[static_cast<std::size_t>(slot)] = std::current_exception();
      aborted.store(true, std::memory_order_relaxed);
    }
  };

  if (outer <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(outer));
    for (int w = 0; w < outer; ++w) pool.emplace_back(worker, w);
    for (std::thread& th : pool) th.join();
  }
  // Escaped errors abort the sweep — all of them reported, not just the
  // first worker's: under fail_fast several workers can trip concurrently,
  // and swallowing the others hides real failures.
  std::vector<std::exception_ptr> raised;
  for (const std::exception_ptr& e : errors) {
    if (e) raised.push_back(e);
  }
  if (raised.size() == 1) std::rethrow_exception(raised.front());
  if (raised.size() > 1) {
    std::string message = format("sweep: %zu worker(s) failed:", raised.size());
    for (const std::exception_ptr& e : raised) {
      try {
        std::rethrow_exception(e);
      } catch (...) {
        message += "\n  " + describe_current_exception();
      }
    }
    throw ScfiError(message);
  }
  return stats;
}

namespace {

/// Matched entries of `source`, or a loud error naming the source when the
/// globs select nothing (a typo must not silently sweep zero modules).
std::vector<ot::OtEntry> matched_entries(const ModuleSource& source,
                                         const std::string& module_globs) {
  std::vector<ot::OtEntry> entries = source.modules(module_globs);
  const std::string where =
      source.label().empty() ? "zoo" : "corpus '" + source.label() + "'";
  require(!entries.empty(), "sweep: no " + where + " module matches '" + module_globs + "'");
  return entries;
}

}  // namespace

std::vector<SweepJob> expand_jobs(const ModuleSource& source, const std::string& module_globs,
                                  const std::vector<int>& levels,
                                  const std::vector<synfi::SynfiConfig>& configs,
                                  const std::string& variant) {
  const std::vector<ot::OtEntry> entries = matched_entries(source, module_globs);
  require(!levels.empty(), "sweep: at least one protection level required");
  require(!configs.empty(), "sweep: at least one synfi config required");
  std::vector<SweepJob> jobs;
  jobs.reserve(entries.size() * levels.size() * configs.size());
  for (const ot::OtEntry& entry : entries) {
    for (const int level : levels) {
      for (const synfi::SynfiConfig& config : configs) {
        SweepJob job;
        job.source = source.label();
        job.module = entry.name;
        job.variant = variant;
        job.protection_level = level;
        job.synfi = config;
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

std::vector<SweepJob> expand_jobs(const std::string& module_globs,
                                  const std::vector<int>& levels,
                                  const std::vector<synfi::SynfiConfig>& configs,
                                  const std::string& variant) {
  return expand_jobs(ZooSource{}, module_globs, levels, configs, variant);
}

std::vector<SweepJob> expand_campaign_jobs(const ModuleSource& source,
                                           const std::string& module_globs,
                                           const std::vector<int>& levels,
                                           const std::vector<sim::CampaignConfig>& configs,
                                           const std::string& variant) {
  const std::vector<ot::OtEntry> entries = matched_entries(source, module_globs);
  require(!levels.empty(), "sweep: at least one protection level required");
  require(!configs.empty(), "sweep: at least one campaign config required");
  std::vector<SweepJob> jobs;
  jobs.reserve(entries.size() * levels.size() * configs.size());
  for (const ot::OtEntry& entry : entries) {
    for (const int level : levels) {
      for (const sim::CampaignConfig& config : configs) {
        SweepJob job;
        job.type = JobType::kCampaign;
        job.source = source.label();
        job.module = entry.name;
        job.variant = variant;
        job.protection_level = level;
        job.campaign = config;
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

std::vector<SweepJob> expand_campaign_jobs(const std::string& module_globs,
                                           const std::vector<int>& levels,
                                           const std::vector<sim::CampaignConfig>& configs,
                                           const std::string& variant) {
  return expand_campaign_jobs(ZooSource{}, module_globs, levels, configs, variant);
}

}  // namespace scfi::sweep
