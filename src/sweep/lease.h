// The sweep fleet's job-claim protocol over the shared JSONL store.
//
// Fleet workers coordinate through nothing but the store file itself: a
// worker claims a job by appending a schema-v5 `leased` record (worker id +
// wall-clock deadline) and owns the job iff, after the append, the latest
// lease for that key is its own — O_APPEND makes concurrent appends
// serialize, so "latest wins" is a total order and doubles as the race
// arbiter. Work-stealing falls out of expiry: once a lease's deadline
// passes (or a zero-deadline release is appended) any worker may re-lease
// the key. Because every job's result is deterministic, a lost race or a
// stolen-then-finished-twice job costs only wasted work, never wrong
// results — the latest final record wins exactly like any other append.
//
// `LeaseLedger` is the incremental reader both sides poll: it tails the
// bytes appended after a baseline offset (the supervisor compacts the store
// at fleet start, so everything past the baseline belongs to this run) and
// folds complete lines into two latest-wins maps — in-flight leases and
// terminal finals. Finals are sticky for the run: once a key has an
// ok/failed record, a stale lease renewal landing after it (a slow worker
// that lost a steal race) cannot resurrect the job.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sweep/result_store.h"

namespace scfi::sweep {

/// Wall-clock now in fractional unix seconds (CLOCK_REALTIME): lease
/// deadlines must be comparable across worker processes, so the shared
/// clock is the system clock, not any per-process steady clock.
double lease_now();

/// The lease record a worker appends to claim `job` until `deadline` (unix
/// seconds). An empty worker with deadline 0 is an explicit release — the
/// supervisor appends one when it reaps a crashed holder, returning the job
/// to the pool without waiting for expiry.
SweepResult make_lease(const SweepJob& job, const std::string& worker, double deadline);

/// Classification of one job key in this run's ledger.
enum class LeaseState {
  kUnclaimed,  ///< no record this run: claimable
  kLeased,     ///< unexpired lease held by some worker
  kExpired,    ///< lease whose deadline passed or was released: claimable
  kDone,       ///< terminal ok/failed record exists this run
};

class LeaseLedger {
 public:
  /// Tails `path` starting at `baseline_offset` (bytes before it are a
  /// previous run's compacted history, not this run's protocol traffic).
  /// Offset 0 reads the whole file — the supervisor's final merge uses
  /// that to rebuild the store tolerantly after a crash-heavy run.
  LeaseLedger(std::string path, std::uint64_t baseline_offset);

  /// Reads any bytes appended since the last poll, folding complete lines
  /// into the ledger. A partial final line (a concurrent append caught
  /// mid-write) is carried until its newline arrives. A malformed
  /// COMPLETED line is first re-parsed from its last embedded record start
  /// ('{"schema":') — the one shape a SIGKILL mid-append leaves once the
  /// next worker's record glues onto the torn bytes — and only throws if
  /// that salvage fails too (real corruption).
  void poll();

  /// Latest lease appended for `key` this run, superseded or not; nullptr
  /// when none. Claim verification: after appending, a worker owns the job
  /// iff this is its own record and the key is not done.
  const SweepResult* latest_lease(const std::string& key) const;

  /// Terminal record for `key` this run (latest final wins), or nullptr.
  const SweepResult* final_record(const std::string& key) const;

  bool done(const std::string& key) const { return finals_.count(key) > 0; }

  LeaseState state(const std::string& key, double now) const;

  /// True when `state` is kUnclaimed or kExpired.
  bool claimable(const std::string& key, double now) const;

  /// Terminal records in first-appearance order — the supervisor's final
  /// compaction writes exactly these (leases are protocol traffic, not
  /// results, and are dropped from the compacted store).
  std::vector<const SweepResult*> finals() const;

 private:
  void fold(SweepResult record);

  std::string path_;
  std::uint64_t offset_;
  std::string carry_;  ///< bytes of a not-yet-newline-terminated tail line
  std::map<std::string, SweepResult> leases_;
  std::map<std::string, SweepResult> finals_;
  std::vector<std::string> final_order_;  ///< keys, first final appearance
};

}  // namespace scfi::sweep
