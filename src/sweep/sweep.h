// Multi-module sweep orchestration: the paper's §6.4 SYNFI evaluation and
// §6.3 Monte-Carlo fault campaigns as ONE fleet experiment over the
// OpenTitan zoo and/or a KISS2 benchmark corpus (see module_source.h).
//
// A sweep is a set of SweepJobs — module x protection config x query, where
// a query is either a SYNFI analysis or a Monte-Carlo campaign (tagged by
// `SweepJob.type`). The orchestrator groups jobs by compiled variant so
// that the variant is built once per group (and ONE synfi::Analyzer serves
// every SYNFI query of that variant, amortizing the simulator/CNF build),
// shards the groups across an outer worker pool, and splits a shared thread
// budget between the outer pool and the per-job inner parallelism (SYNFI
// `threads` / campaign `threads`). Completed jobs are streamed into a
// ResultStore (and, when requested, appended to a JSONL file as they
// finish), so an interrupted sweep can be resumed by skipping the keys
// already present.
//
// Because every synfi report is lanes/threads-invariant, every campaign
// runs on the streaming jump-ahead planner (per-run RNG streams — also
// lanes/threads-invariant), and jobs are independent, the per-key results
// are bit-identical for every jobs/threads combination — only the
// completion (file) order varies.
#pragma once

#include <string>
#include <vector>

#include "sweep/module_source.h"
#include "sweep/result_store.h"

namespace scfi::sweep {

struct SweepConfig {
  /// Maximum concurrently running jobs (outer parallelism); >= 1.
  int jobs = 1;
  /// Total worker-thread budget shared by all running jobs: each job runs
  /// its SYNFI queries with max(1, threads / <outer workers>) inner
  /// threads; >= 1.
  int threads = 1;
  /// Simulator lanes per pass: (site, edge) injection jobs for
  /// exhaustive-backend SYNFI queries, campaign runs per batch for
  /// campaign jobs.
  int lanes = sim::kNumLanes;
};

struct SweepStats {
  int executed = 0;  ///< jobs run in this invocation
  int skipped = 0;   ///< jobs already present in the store (resume)
};

class SweepOrchestrator {
 public:
  explicit SweepOrchestrator(const SweepConfig& config = {});

  /// Runs `jobs`, streaming each completed result into `store` and — when
  /// `out_path` is non-empty — appending it to that JSONL file as it
  /// finishes. With `resume`, jobs whose key is already in `store` are
  /// skipped (load the store from `out_path` first to resume a previous
  /// invocation). Jobs with an empty `source` resolve against the built-in
  /// zoo; jobs whose `source` matches `source->label()` resolve against
  /// `source` (so zoo and corpus jobs can share one fleet run); any other
  /// source label throws. Throws on unknown modules/variants; the first
  /// worker error aborts the sweep after in-flight jobs complete.
  SweepStats run(const std::vector<SweepJob>& jobs, ResultStore& store,
                 const std::string& out_path = "", bool resume = false,
                 const ModuleSource* source = nullptr);

 private:
  SweepConfig config_;
};

/// Expands a module-glob x levels x configs matrix into the flat SYNFI job
/// list `SweepOrchestrator::run` consumes (modules in the source's
/// canonical order; one job per combination, carrying the source's label).
/// Throws when the glob matches nothing in `source`.
std::vector<SweepJob> expand_jobs(const ModuleSource& source, const std::string& module_globs,
                                  const std::vector<int>& levels,
                                  const std::vector<synfi::SynfiConfig>& configs,
                                  const std::string& variant = "scfi");

/// Zoo convenience overload (modules in Table 1 order).
std::vector<SweepJob> expand_jobs(const std::string& module_globs,
                                  const std::vector<int>& levels,
                                  const std::vector<synfi::SynfiConfig>& configs,
                                  const std::string& variant = "scfi");

/// Campaign analog of expand_jobs: module-glob x levels x campaign configs,
/// tagged JobType::kCampaign. Campaign jobs accept the "unprotected" and
/// "redundancy" variants too (the campaign engine drives all three compiled
/// forms). The configs' lanes/threads/planner knobs are overwritten by the
/// orchestrator at execution time and do not enter the job identity.
std::vector<SweepJob> expand_campaign_jobs(const ModuleSource& source,
                                           const std::string& module_globs,
                                           const std::vector<int>& levels,
                                           const std::vector<sim::CampaignConfig>& configs,
                                           const std::string& variant = "scfi");

/// Zoo convenience overload (modules in Table 1 order).
std::vector<SweepJob> expand_campaign_jobs(const std::string& module_globs,
                                           const std::vector<int>& levels,
                                           const std::vector<sim::CampaignConfig>& configs,
                                           const std::string& variant = "scfi");

}  // namespace scfi::sweep
