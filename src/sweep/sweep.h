// Multi-module sweep orchestration: the paper's §6.4 SYNFI evaluation and
// §6.3 Monte-Carlo fault campaigns as ONE fleet experiment over the
// OpenTitan zoo and/or a KISS2 benchmark corpus (see module_source.h).
//
// A sweep is a set of SweepJobs — module x protection config x query, where
// a query is either a SYNFI analysis or a Monte-Carlo campaign (tagged by
// `SweepJob.type`). The orchestrator groups jobs by compiled variant so
// that the variant is built once per group (and ONE synfi::Analyzer serves
// every SYNFI query of that variant, amortizing the simulator/CNF build),
// shards the groups across an outer worker pool, and splits a shared thread
// budget between the outer pool and the per-job inner parallelism (SYNFI
// `threads` / campaign `threads`). Completed jobs are streamed into a
// ResultStore (and, when requested, appended to a JSONL file as they
// finish), so an interrupted sweep can be resumed by skipping the keys
// already present.
//
// Because every synfi report is lanes/threads-invariant, every campaign
// runs on the streaming jump-ahead planner (per-run RNG streams — also
// lanes/threads-invariant), and jobs are independent, the per-key results
// are bit-identical for every jobs/threads combination — only the
// completion (file) order varies.
//
// The fleet is failure-isolated: a job that throws mid-execution (or whose
// variant fails to build) is retried up to `retries` times with exponential
// backoff, then recorded as a schema-v4 failure record — it never takes
// down the other jobs. A per-job wall-clock deadline (`job_timeout`) is
// enforced cooperatively via a CancelToken polled inside the SYNFI and
// campaign inner loops. `fail_fast` restores the old abort-the-fleet
// behavior for CI. A resumed sweep re-executes failed/timed-out keys and
// skips only the ones that completed ok.
#pragma once

#include <string>
#include <vector>

#include "base/retry.h"
#include "sweep/module_source.h"
#include "sweep/result_store.h"

namespace scfi::sweep {

struct SweepConfig {
  /// Maximum concurrently running jobs (outer parallelism); >= 1.
  int jobs = 1;
  /// Total worker-thread budget shared by all running jobs: each job runs
  /// its SYNFI queries with max(1, threads / <outer workers>) inner
  /// threads; >= 1.
  int threads = 1;
  /// Simulator lanes per pass: (site, edge) injection jobs for
  /// exhaustive-backend SYNFI queries, campaign runs per batch for
  /// campaign jobs. 1..sim::kMaxLanes (64 x lane_words); widths past 64
  /// use multi-word SoA lane blocks. 0 picks the count per compiled module
  /// via synfi::auto_lanes (small modules peak at 128–256 lanes; the
  /// orchestrator is the layer that knows the module, so the sentinel is
  /// resolved here — the engines themselves still reject 0).
  int lanes = 0;
  /// Re-executions granted to a job that throws, beyond its first attempt
  /// (so a job runs at most `retries + 1` times); >= 0. Variant-build
  /// failures and timeouts are deterministic and are never retried.
  int retries = 2;
  /// Per-job wall-clock deadline in seconds, spanning all attempts of the
  /// job; 0 = no deadline. Enforced cooperatively (checked per simulator
  /// batch / SAT query), so a job overruns by at most one batch.
  double job_timeout = 0.0;
  /// Abort the whole sweep on the first job failure (the pre-v4 behavior,
  /// kept for CI): the error propagates out of run() instead of becoming a
  /// failure record, and no retries are attempted.
  bool fail_fast = false;
  /// Delay schedule between retry attempts of one job.
  BackoffPolicy backoff;
  /// Optional external stop signal: every per-job deadline token chains to
  /// it, so firing it cancels the in-flight attempt at the next batch
  /// boundary (recorded as a failure, never retried). The fleet's graceful
  /// drain arms this with a grace deadline on SIGTERM. Must outlive run().
  const CancelToken* cancel = nullptr;
};

struct SweepStats {
  int executed = 0;  ///< jobs that completed ok in this invocation
  int skipped = 0;   ///< jobs already ok in the store (resume)
  int failed = 0;    ///< jobs recorded as failure records
  int retried = 0;   ///< extra attempts spent across all jobs
};

class SweepOrchestrator {
 public:
  explicit SweepOrchestrator(const SweepConfig& config = {});

  /// Runs `jobs`, streaming each finished result — ok or failed — into
  /// `store` and, when `out_path` is non-empty, appending it to that JSONL
  /// file as it finishes. With `resume`, jobs whose key is already in
  /// `store` with an ok record are skipped (load the store from `out_path`
  /// first to resume a previous invocation); failed/timed-out keys
  /// re-execute, and the latest-wins append acts as the retry lease.
  /// Jobs with an empty `source` resolve against the built-in zoo; jobs
  /// whose `source` matches `source->label()` resolve against `source` (so
  /// zoo and corpus jobs can share one fleet run); any other source label
  /// throws up front, as do unknown/unanalyzable variants (malformed job
  /// matrices are caller bugs, not fleet failures). Execution errors —
  /// unknown modules, variant-build failures, jobs that throw or exceed
  /// `job_timeout` — become failure records unless `fail_fast` is set, in
  /// which case run() throws: the first error when one worker failed, or
  /// one ScfiError aggregating every worker's error when several did.
  SweepStats run(const std::vector<SweepJob>& jobs, ResultStore& store,
                 const std::string& out_path = "", bool resume = false,
                 const ModuleSource* source = nullptr);

 private:
  SweepConfig config_;
};

/// The up-front malformed-matrix check run() performs — unknown or
/// unanalyzable variants, unresolvable source labels — exposed so the fleet
/// supervisor can reject a bad matrix in the parent process before forking
/// any worker. Throws ScfiError on the first bad job.
void validate_jobs(const std::vector<SweepJob>& jobs, const ModuleSource* source);

/// Expands a module-glob x levels x configs matrix into the flat SYNFI job
/// list `SweepOrchestrator::run` consumes (modules in the source's
/// canonical order; one job per combination, carrying the source's label).
/// Throws when the glob matches nothing in `source`.
std::vector<SweepJob> expand_jobs(const ModuleSource& source, const std::string& module_globs,
                                  const std::vector<int>& levels,
                                  const std::vector<synfi::SynfiConfig>& configs,
                                  const std::string& variant = "scfi");

/// Zoo convenience overload (modules in Table 1 order).
std::vector<SweepJob> expand_jobs(const std::string& module_globs,
                                  const std::vector<int>& levels,
                                  const std::vector<synfi::SynfiConfig>& configs,
                                  const std::string& variant = "scfi");

/// Campaign analog of expand_jobs: module-glob x levels x campaign configs,
/// tagged JobType::kCampaign. Campaign jobs accept the "unprotected" and
/// "redundancy" variants too (the campaign engine drives all three compiled
/// forms). The configs' lanes/threads/planner knobs are overwritten by the
/// orchestrator at execution time and do not enter the job identity.
std::vector<SweepJob> expand_campaign_jobs(const ModuleSource& source,
                                           const std::string& module_globs,
                                           const std::vector<int>& levels,
                                           const std::vector<sim::CampaignConfig>& configs,
                                           const std::string& variant = "scfi");

/// Zoo convenience overload (modules in Table 1 order).
std::vector<SweepJob> expand_campaign_jobs(const std::string& module_globs,
                                           const std::vector<int>& levels,
                                           const std::vector<sim::CampaignConfig>& configs,
                                           const std::string& variant = "scfi");

}  // namespace scfi::sweep
