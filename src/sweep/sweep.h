// Multi-module SYNFI sweep orchestration (the paper's §6.4 evaluation run
// as one fleet experiment over the OpenTitan zoo).
//
// A sweep is a set of SweepJobs — module x protection config x fault model.
// The orchestrator groups jobs by compiled variant so that ONE
// synfi::Analyzer serves every region/fault-kind query of that variant
// (amortizing the simulator/CNF build), shards the groups across an outer
// worker pool, and splits a shared thread budget between the outer pool and
// the per-job `SynfiConfig.threads` inner parallelism. Completed jobs are
// streamed into a ResultStore (and, when requested, appended to a JSONL
// file as they finish), so an interrupted sweep can be resumed by skipping
// the keys already present.
//
// Because every synfi report is lanes/threads-invariant and jobs are
// independent, the per-key results are bit-identical for every jobs/threads
// combination — only the completion (file) order varies.
#pragma once

#include <string>
#include <vector>

#include "sweep/result_store.h"

namespace scfi::sweep {

struct SweepConfig {
  /// Maximum concurrently running jobs (outer parallelism); >= 1.
  int jobs = 1;
  /// Total worker-thread budget shared by all running jobs: each job runs
  /// its SYNFI queries with max(1, threads / <outer workers>) inner
  /// threads; >= 1.
  int threads = 1;
  /// Injection jobs per simulator pass for exhaustive-backend queries.
  int lanes = sim::kNumLanes;
};

struct SweepStats {
  int executed = 0;  ///< jobs run in this invocation
  int skipped = 0;   ///< jobs already present in the store (resume)
};

class SweepOrchestrator {
 public:
  explicit SweepOrchestrator(const SweepConfig& config = {});

  /// Runs `jobs`, streaming each completed result into `store` and — when
  /// `out_path` is non-empty — appending it to that JSONL file as it
  /// finishes. With `resume`, jobs whose key is already in `store` are
  /// skipped (load the store from `out_path` first to resume a previous
  /// invocation). Throws on unknown modules/variants; the first worker
  /// error aborts the sweep after in-flight jobs complete.
  SweepStats run(const std::vector<SweepJob>& jobs, ResultStore& store,
                 const std::string& out_path = "", bool resume = false);

 private:
  SweepConfig config_;
};

/// Expands a module-glob x levels x configs matrix into the flat job list
/// `SweepOrchestrator::run` consumes (modules in Table 1 order; one job per
/// combination). Throws when the glob matches nothing.
std::vector<SweepJob> expand_jobs(const std::string& module_globs,
                                  const std::vector<int>& levels,
                                  const std::vector<synfi::SynfiConfig>& configs,
                                  const std::string& variant = "scfi");

}  // namespace scfi::sweep
