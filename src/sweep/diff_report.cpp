#include "sweep/diff_report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/error.h"
#include "base/strutil.h"

namespace scfi::sweep {

WilsonInterval wilson_interval(std::int64_t successes, std::int64_t trials, double z) {
  require(trials >= 0 && successes >= 0 && successes <= trials,
          "wilson_interval: successes must be in [0, trials]");
  require(z >= 0.0, "wilson_interval: z must be non-negative");
  if (trials == 0) return WilsonInterval{0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return WilsonInterval{std::max(0.0, center - half), std::min(1.0, center + half)};
}

namespace {

/// A changed pair where at least one side is a non-ok record. Same-status
/// pairs never reach here (reports_equal treats two failures — or two
/// leases — as equal), so this is always a status transition: a job that
/// used to pass and now does not (failed, or still leased because the
/// sweep never finished it) is a regression regardless of thresholds; a
/// transition INTO ok is a recovery and never gates.
DiffEntry compare_status(const SweepResult& base, const SweepResult& cand) {
  DiffEntry entry;
  entry.key = base.key();
  entry.type = base.job.type;
  if (cand.status != JobStatus::kOk) {
    entry.regression = true;
    const char* to = cand.status == JobStatus::kLeased ? "LEASED (sweep did not finish it)"
                                                       : "FAILED";
    entry.note = std::string(job_status_name(base.status)) + " -> " + to +
                 (cand.error.empty() ? "" : " (" + cand.error + ")");
  } else {
    entry.regression = false;
    entry.note = std::string(job_status_name(base.status)) + " -> ok (recovered" +
                 (base.error.empty() ? "" : "; was: " + base.error) + ")";
  }
  return entry;
}

DiffEntry compare_synfi(const SweepResult& base, const SweepResult& cand,
                        const DiffThresholds& thresholds) {
  DiffEntry entry;
  entry.key = base.key();
  entry.type = JobType::kSynfi;
  entry.d_exploitable = cand.report.exploitable - base.report.exploitable;
  entry.d_detected = cand.report.detected - base.report.detected;
  entry.d_masked = cand.report.masked - base.report.masked;
  entry.regression = entry.d_exploitable > thresholds.max_exploitable_increase;
  entry.note = format("exploitable %lld -> %lld (%+lld), detected %+lld, masked %+lld",
                      static_cast<long long>(base.report.exploitable),
                      static_cast<long long>(cand.report.exploitable),
                      static_cast<long long>(entry.d_exploitable),
                      static_cast<long long>(entry.d_detected),
                      static_cast<long long>(entry.d_masked));
  return entry;
}

DiffEntry compare_campaign(const SweepResult& base, const SweepResult& cand,
                           const DiffThresholds& thresholds) {
  DiffEntry entry;
  entry.key = base.key();
  entry.type = JobType::kCampaign;
  entry.d_hijacked = cand.campaign.hijacked - base.campaign.hijacked;
  entry.d_hijack_rate = cand.campaign.hijack_rate() - base.campaign.hijack_rate();
  entry.d_detection_rate = cand.campaign.detection_rate() - base.campaign.detection_rate();

  const sim::CampaignResult& b = base.campaign;
  const sim::CampaignResult& c = cand.campaign;
  entry.base_hijack = wilson_interval(b.hijacked, b.runs, thresholds.wilson_z);
  entry.cand_hijack = wilson_interval(c.hijacked, c.runs, thresholds.wilson_z);
  entry.base_detection = wilson_interval(b.detected, b.effective(), thresholds.wilson_z);
  entry.cand_detection = wilson_interval(c.detected, c.effective(), thresholds.wilson_z);

  // A rate regresses when the candidate interval clears the baseline
  // interval by more than the absolute allowance — sampling noise inside
  // the bands never gates. Low-trial keys (either side) fall back to the
  // raw absolute deltas: their intervals are too wide to say anything.
  const auto wilson_usable = [&](std::int64_t base_trials, std::int64_t cand_trials) {
    return thresholds.wilson_z > 0.0 && base_trials >= thresholds.wilson_min_trials &&
           cand_trials >= thresholds.wilson_min_trials;
  };
  bool hijack_regressed = false;
  entry.hijack_wilson = wilson_usable(b.runs, c.runs);
  if (entry.hijack_wilson) {
    hijack_regressed =
        entry.cand_hijack.lower - entry.base_hijack.upper > thresholds.max_hijack_rate_increase;
  } else {
    hijack_regressed = entry.d_hijack_rate > thresholds.max_hijack_rate_increase;
  }
  bool detection_regressed = false;
  entry.detection_wilson = wilson_usable(b.effective(), c.effective());
  if (entry.detection_wilson) {
    detection_regressed = entry.base_detection.lower - entry.cand_detection.upper >
                          thresholds.max_detection_rate_drop;
  } else {
    detection_regressed = -entry.d_detection_rate > thresholds.max_detection_rate_drop;
  }
  entry.regression = hijack_regressed || detection_regressed;
  entry.note = format(
      "hijack %.4f%% [%.4f, %.4f] -> %.4f%% [%.4f, %.4f] (%+lld run(s))%s, "
      "detection %.2f%% [%.2f, %.2f] -> %.2f%% [%.2f, %.2f]%s",
      100.0 * b.hijack_rate(), 100.0 * entry.base_hijack.lower, 100.0 * entry.base_hijack.upper,
      100.0 * c.hijack_rate(), 100.0 * entry.cand_hijack.lower, 100.0 * entry.cand_hijack.upper,
      static_cast<long long>(entry.d_hijacked), entry.hijack_wilson ? "" : " (absolute gate)",
      100.0 * b.detection_rate(), 100.0 * entry.base_detection.lower,
      100.0 * entry.base_detection.upper, 100.0 * c.detection_rate(),
      100.0 * entry.cand_detection.lower, 100.0 * entry.cand_detection.upper,
      entry.detection_wilson ? "" : " (absolute gate)");
  return entry;
}

}  // namespace

DiffReport diff_report(const ResultStore& baseline, const ResultStore& candidate,
                       const DiffThresholds& thresholds) {
  // The key-level walk is ResultStore::diff's job (one definition of
  // "changed"); this layer only scores the changed pairs against the
  // thresholds. diff() returns each list key-sorted.
  const ResultStore::Diff diff = ResultStore::diff(baseline, candidate);
  DiffReport report;
  report.removed = diff.only_left;
  report.added = diff.only_right;
  report.changed.reserve(diff.changed.size());
  for (const std::string& key : diff.changed) {
    const SweepResult& base = *baseline.find(key);
    const SweepResult& cand = *candidate.find(key);
    if (base.status != cand.status) {
      report.changed.push_back(compare_status(base, cand));
    } else {
      report.changed.push_back(base.job.type == JobType::kCampaign
                                   ? compare_campaign(base, cand, thresholds)
                                   : compare_synfi(base, cand, thresholds));
    }
  }
  for (const DiffEntry& entry : report.changed) report.regressions += entry.regression;
  report.removed_gates = thresholds.fail_on_removed;
  if (report.removed_gates) {
    report.regressions += static_cast<int>(report.removed.size());
  }
  report.gate_failed = report.regressions > 0;
  return report;
}

std::string DiffReport::render() const {
  std::ostringstream out;
  for (const DiffEntry& entry : changed) {
    out << (entry.regression ? "REGRESSION " : "drift      ") << entry.key << ": " << entry.note
        << "\n";
  }
  for (const std::string& key : removed) {
    out << (removed_gates ? "REGRESSION " : "removed    ") << key << " (missing from candidate)\n";
  }
  for (const std::string& key : added) out << "added      " << key << "\n";
  if (changed.empty() && removed.empty() && added.empty()) {
    out << "sweep-diff: stores are identical (timing ignored)\n";
  }
  out << format("sweep-diff: %zu changed, %zu added, %zu removed, %d regression(s)\n",
                changed.size(), added.size(), removed.size(), regressions);
  return out.str();
}

}  // namespace scfi::sweep
