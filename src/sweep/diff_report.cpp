#include "sweep/diff_report.h"

#include <sstream>

#include "base/strutil.h"

namespace scfi::sweep {
namespace {

DiffEntry compare_synfi(const SweepResult& base, const SweepResult& cand,
                        const DiffThresholds& thresholds) {
  DiffEntry entry;
  entry.key = base.key();
  entry.type = JobType::kSynfi;
  entry.d_exploitable = cand.report.exploitable - base.report.exploitable;
  entry.d_detected = cand.report.detected - base.report.detected;
  entry.d_masked = cand.report.masked - base.report.masked;
  entry.regression = entry.d_exploitable > thresholds.max_exploitable_increase;
  entry.note = format("exploitable %lld -> %lld (%+lld), detected %+lld, masked %+lld",
                      static_cast<long long>(base.report.exploitable),
                      static_cast<long long>(cand.report.exploitable),
                      static_cast<long long>(entry.d_exploitable),
                      static_cast<long long>(entry.d_detected),
                      static_cast<long long>(entry.d_masked));
  return entry;
}

DiffEntry compare_campaign(const SweepResult& base, const SweepResult& cand,
                           const DiffThresholds& thresholds) {
  DiffEntry entry;
  entry.key = base.key();
  entry.type = JobType::kCampaign;
  entry.d_hijacked = cand.campaign.hijacked - base.campaign.hijacked;
  entry.d_hijack_rate = cand.campaign.hijack_rate() - base.campaign.hijack_rate();
  entry.d_detection_rate = cand.campaign.detection_rate() - base.campaign.detection_rate();
  entry.regression = entry.d_hijack_rate > thresholds.max_hijack_rate_increase ||
                     -entry.d_detection_rate > thresholds.max_detection_rate_drop;
  entry.note =
      format("hijack %.4f%% -> %.4f%% (%+lld run(s)), detection %.2f%% -> %.2f%%",
             100.0 * base.campaign.hijack_rate(), 100.0 * cand.campaign.hijack_rate(),
             static_cast<long long>(entry.d_hijacked), 100.0 * base.campaign.detection_rate(),
             100.0 * cand.campaign.detection_rate());
  return entry;
}

}  // namespace

DiffReport diff_report(const ResultStore& baseline, const ResultStore& candidate,
                       const DiffThresholds& thresholds) {
  // The key-level walk is ResultStore::diff's job (one definition of
  // "changed"); this layer only scores the changed pairs against the
  // thresholds. diff() returns each list key-sorted.
  const ResultStore::Diff diff = ResultStore::diff(baseline, candidate);
  DiffReport report;
  report.removed = diff.only_left;
  report.added = diff.only_right;
  report.changed.reserve(diff.changed.size());
  for (const std::string& key : diff.changed) {
    const SweepResult& base = *baseline.find(key);
    const SweepResult& cand = *candidate.find(key);
    report.changed.push_back(base.job.type == JobType::kCampaign
                                 ? compare_campaign(base, cand, thresholds)
                                 : compare_synfi(base, cand, thresholds));
  }
  for (const DiffEntry& entry : report.changed) report.regressions += entry.regression;
  report.removed_gates = thresholds.fail_on_removed;
  if (report.removed_gates) {
    report.regressions += static_cast<int>(report.removed.size());
  }
  report.gate_failed = report.regressions > 0;
  return report;
}

std::string DiffReport::render() const {
  std::ostringstream out;
  for (const DiffEntry& entry : changed) {
    out << (entry.regression ? "REGRESSION " : "drift      ") << entry.key << ": " << entry.note
        << "\n";
  }
  for (const std::string& key : removed) {
    out << (removed_gates ? "REGRESSION " : "removed    ") << key << " (missing from candidate)\n";
  }
  for (const std::string& key : added) out << "added      " << key << "\n";
  if (changed.empty() && removed.empty() && added.empty()) {
    out << "sweep-diff: stores are identical (timing ignored)\n";
  }
  out << format("sweep-diff: %zu changed, %zu added, %zu removed, %d regression(s)\n",
                changed.size(), added.size(), removed.size(), regressions);
  return out.str();
}

}  // namespace scfi::sweep
