#include "sweep/supervisor.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include "base/error.h"
#include "base/log.h"
#include "base/rng.h"
#include "base/strutil.h"
#include "sweep/lease.h"

namespace scfi::sweep {
namespace {

// Both processes share the handler: the supervisor's SIGTERM/SIGINT starts
// the fleet drain; a worker (which inherits the handler across fork, and
// also receives terminal SIGINT directly as part of the foreground process
// group) stops claiming and finishes its in-flight job. Each process has
// its own copy of the flag after fork.
volatile std::sig_atomic_t g_drain = 0;
void drain_handler(int) { g_drain = 1; }

/// Worker exit codes the supervisor dispatches on. Anything else — and any
/// signal death — is a crash.
constexpr int kExitClean = 0;     ///< all jobs done, or drained
constexpr int kExitInternal = 2;  ///< unexpected exception escaped the worker
constexpr int kExitCorrupt = 3;   ///< store corruption no crash explains: abort the fleet

double steady_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_seconds(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

struct WorkerArgs {
  const FleetConfig* fleet = nullptr;
  const std::vector<SweepJob>* pending = nullptr;  ///< inherited via fork
  const ModuleSource* source = nullptr;
  std::string store_path;
  std::uint64_t baseline = 0;
  std::string worker_id;  ///< "w<slot>.<generation>"
  int slot = 0;
  int heartbeat_fd = -1;
};

/// The worker subprocess body: claim one job at a time through the lease
/// ledger, execute it, append the final record, repeat until every pending
/// key is done or a drain is requested. Runs a heartbeat thread on the
/// side that (a) writes liveness bytes to the supervisor pipe, (b) renews
/// the held lease at half-life, and (c) arms the drain token's grace
/// deadline when a drain arrives. Returns the process exit code.
int worker_body(const WorkerArgs& args) {
  set_log_worker(args.worker_id);
  const FleetConfig& fleet = *args.fleet;
  const std::vector<SweepJob>& pending = *args.pending;

  LeaseLedger ledger(args.store_path, args.baseline);

  // State shared with the heartbeat thread. The mutex orders lease
  // renewals against the final-record append: job_active is cleared under
  // the lock IN THE SAME critical section as the final append, so a
  // renewal can never land after this worker's own final record and
  // resurrect the job.
  std::mutex mutex;
  bool job_active = false;
  const SweepJob* active_job = nullptr;
  double lease_until = 0.0;
  double job_started = 0.0;  // steady seconds
  bool drain_armed = false;
  std::atomic<bool> stop_heartbeat{false};
  CancelToken drain_token;

  std::thread heartbeat([&] {
    while (!stop_heartbeat.load(std::memory_order_relaxed)) {
      bool silent = false;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (g_drain != 0 && !drain_armed) {
          drain_armed = true;
          drain_token.set_deadline_after(fleet.drain_grace);
          log_info("drain requested: finishing in-flight work within " +
                   format("%.1fs", fleet.drain_grace));
        }
        if (job_active) {
          if (fleet.wedge_seconds > 0.0 &&
              steady_seconds() - job_started > fleet.wedge_seconds) {
            // Volunteer for the supervisor's stale-heartbeat SIGKILL: the
            // in-flight job blew its wedge budget and may never reach a
            // cooperative cancellation point.
            silent = true;
          }
          const double now = lease_now();
          if (now > lease_until - fleet.lease_seconds / 2.0) {
            ResultStore::append_line(
                args.store_path,
                make_lease(*active_job, args.worker_id, now + fleet.lease_seconds));
            lease_until = now + fleet.lease_seconds;
          }
        }
      }
      if (!silent) {
        const char byte = 'h';
        // If the supervisor died this write raises SIGPIPE, whose default
        // disposition kills us — exactly the no-orphan policy.
        (void)!::write(args.heartbeat_fd, &byte, 1);
      }
      sleep_seconds(fleet.heartbeat_interval);
    }
  });

  SweepConfig job_config = fleet.job;
  job_config.jobs = 1;  // one job at a time: a crash attributes to one lease
  job_config.fail_fast = false;
  job_config.cancel = &drain_token;

  // Slot-scatter: start the claim scan at a per-slot offset so N fresh
  // workers spread over the matrix instead of racing for job 0.
  const std::size_t scatter =
      pending.empty() ? 0
                      : (static_cast<std::size_t>(args.slot) * pending.size()) /
                            static_cast<std::size_t>(std::max(1, fleet.workers));

  int exit_code = kExitClean;
  for (;;) {
    if (g_drain != 0) break;
    try {
      ledger.poll();
    } catch (const ScfiError& e) {
      log_error(std::string(e.what()));
      exit_code = kExitCorrupt;
      break;
    }
    const double now = lease_now();
    const SweepJob* chosen = nullptr;
    bool all_done = true;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const SweepJob& job = pending[(scatter + i) % pending.size()];
      const std::string key = job.key();
      if (ledger.done(key)) continue;
      all_done = false;
      if (chosen == nullptr && ledger.claimable(key, now)) chosen = &job;
    }
    if (all_done) break;
    if (chosen == nullptr) {
      // Everything left is leased by live peers; wait for finals, releases,
      // or expiries.
      sleep_seconds(fleet.poll_interval);
      continue;
    }

    // Claim: append our lease, then re-read — we own the job iff the
    // latest lease for the key is ours and no final landed meanwhile.
    // (Two workers can pass this check in a tight race; that costs one
    // duplicate execution, never a wrong result — jobs are deterministic
    // and the latest final wins.)
    const std::string key = chosen->key();
    const double until = now + fleet.lease_seconds;
    try {
      ResultStore::append_line(args.store_path, make_lease(*chosen, args.worker_id, until));
      ledger.poll();
    } catch (const ScfiError& e) {
      log_error(std::string(e.what()));
      exit_code = kExitCorrupt;
      break;
    }
    const SweepResult* latest = ledger.latest_lease(key);
    if (ledger.done(key) || latest == nullptr || latest->worker != args.worker_id) {
      continue;  // lost the race; pick another job
    }

    if (!fleet.poison_key.empty() && key == fleet.poison_key) {
      // Test hook: die holding the lease, like a segfault mid-job.
      log_warn("poison key claimed; killing self: " + key);
      (void)::raise(SIGKILL);
    }

    {
      const std::lock_guard<std::mutex> lock(mutex);
      job_active = true;
      active_job = chosen;
      lease_until = until;
      job_started = steady_seconds();
    }
    log_info("claimed " + key);

    SweepResult record;
    try {
      ResultStore local;
      SweepOrchestrator orchestrator(job_config);
      orchestrator.run({*chosen}, local, "", false, args.source);
      record = *local.find(key);  // fail_fast=false: ok or failed, always present
    } catch (...) {
      // Orchestrator-level escape (not a job failure — those become
      // records). Record it rather than dying: the job would fail
      // identically on a peer.
      record.job = *chosen;
      record.status = JobStatus::kFailed;
      record.error = describe_current_exception();
    }
    record.worker = args.worker_id;
    try {
      const std::lock_guard<std::mutex> lock(mutex);
      job_active = false;
      active_job = nullptr;
      ResultStore::append_line(args.store_path, record);
    } catch (const ScfiError& e) {
      log_error(std::string(e.what()));
      exit_code = kExitCorrupt;
      break;
    }
    log_info("finished " + key + " (" + job_status_name(record.status) + ")");
  }

  stop_heartbeat.store(true, std::memory_order_relaxed);
  heartbeat.join();
  return exit_code;
}

int worker_main(const WorkerArgs& args) noexcept {
  try {
    return worker_body(args);
  } catch (const std::exception& e) {
    log_error(std::string("worker died on unexpected exception: ") + e.what());
    return kExitInternal;
  } catch (...) {
    log_error("worker died on unknown exception");
    return kExitInternal;
  }
}

/// One fleet slot as the supervisor sees it. A slot outlives any single
/// worker process: crashes respawn a new generation into the same slot.
struct Slot {
  pid_t pid = -1;
  int read_fd = -1;       ///< supervisor end of the heartbeat pipe
  int generation = 0;
  int failures = 0;       ///< consecutive crashes (respawn-backoff input)
  double last_heartbeat = 0.0;  ///< steady seconds
  double respawn_at = -1.0;     ///< steady seconds; >= 0 = respawn scheduled
  bool retired = false;         ///< exited clean / no respawn wanted
  std::string worker_id;
};

}  // namespace

FleetSupervisor::FleetSupervisor(const FleetConfig& config) : config_(config) {
  require(config_.workers >= 1, "fleet: workers must be >= 1");
  require(config_.max_crashes >= 1, "fleet: max-crashes must be >= 1");
  require(config_.lease_seconds > 0.0, "fleet: lease duration must be > 0");
  require(config_.heartbeat_interval > 0.0, "fleet: heartbeat interval must be > 0");
  require(config_.heartbeat_timeout > config_.heartbeat_interval,
          "fleet: heartbeat timeout must exceed the heartbeat interval");
  require(config_.poll_interval > 0.0, "fleet: poll interval must be > 0");
  require(config_.drain_grace >= 0.0, "fleet: drain grace must be >= 0");
  require(config_.wedge_seconds >= 0.0, "fleet: wedge budget must be >= 0");
}

FleetStats FleetSupervisor::run(const std::vector<SweepJob>& jobs,
                                const std::string& store_path, bool resume,
                                const ModuleSource* source) {
  require(!store_path.empty(),
          "fleet: a store path is required (the store file is the fleet's "
          "coordination medium)");
  // A malformed matrix is a caller bug: reject it in the parent before any
  // worker is forked.
  validate_jobs(jobs, source);

  FleetStats stats;

  // Compact the store up front: history shrinks to latest-wins records
  // (torn tail salvaged), and every byte past the resulting size is THIS
  // run's protocol traffic — the ledger baseline.
  ResultStore store;
  struct stat st;
  if (::stat(store_path.c_str(), &st) == 0) {
    store = ResultStore::load(store_path, /*recover_torn_tail=*/true);
  }
  store.save(store_path);
  require(::stat(store_path.c_str(), &st) == 0, "fleet: cannot stat " + store_path);
  const std::uint64_t baseline = static_cast<std::uint64_t>(st.st_size);

  std::vector<SweepJob> pending;
  for (const SweepJob& job : jobs) {
    if (resume) {
      const SweepResult* prior = store.find(job.key());
      if (prior != nullptr && prior->status == JobStatus::kOk) {
        ++stats.skipped;
        continue;
      }
    }
    pending.push_back(job);
  }
  if (pending.empty()) return stats;

  std::map<std::string, const SweepJob*> job_by_key;
  std::vector<std::string> pending_keys;
  pending_keys.reserve(pending.size());
  for (const SweepJob& job : pending) {
    job_by_key[job.key()] = &job;
    pending_keys.push_back(job.key());
  }

  using SignalHandler = void (*)(int);
  g_drain = 0;
  const SignalHandler old_term = std::signal(SIGTERM, drain_handler);
  const SignalHandler old_int = std::signal(SIGINT, drain_handler);

  Rng rng(config_.jitter_seed);
  LeaseLedger ledger(store_path, baseline);
  std::vector<Slot> slots(static_cast<std::size_t>(config_.workers));
  std::map<std::string, int> crash_counts;

  // Fork one worker into `slot`. fork() without exec is safe here: the
  // supervisor is single-threaded (workers start their heartbeat thread
  // only after the fork), and the child touches nothing but its own state
  // before _exit.
  const auto spawn = [&](int index) {
    Slot& slot = slots[static_cast<std::size_t>(index)];
    int fds[2];
    require(::pipe(fds) == 0, "fleet: pipe() failed");
    const int flags = ::fcntl(fds[0], F_GETFL, 0);
    require(flags >= 0 && ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK) == 0,
            "fleet: cannot set the heartbeat pipe nonblocking");
    const std::string worker_id =
        format("w%d.%d", index, slot.generation);
    const pid_t pid = ::fork();
    require(pid >= 0, "fleet: fork() failed");
    if (pid == 0) {
      // Child. Close every supervisor-side read end — ours and the copies
      // of our siblings' pipes we inherited. A stray inherited read end
      // would keep a sibling's pipe open after the supervisor died and
      // defeat the SIGPIPE orphan policy.
      for (const Slot& s : slots) {
        if (s.read_fd >= 0) ::close(s.read_fd);
      }
      ::close(fds[0]);
      WorkerArgs args;
      args.fleet = &config_;
      args.pending = &pending;
      args.source = source;
      args.store_path = store_path;
      args.baseline = baseline;
      args.worker_id = worker_id;
      args.slot = index;
      args.heartbeat_fd = fds[1];
      ::_exit(worker_main(args));
    }
    ::close(fds[1]);
    slot.pid = pid;
    slot.read_fd = fds[0];
    slot.worker_id = worker_id;
    slot.last_heartbeat = steady_seconds();
    slot.respawn_at = -1.0;
    slot.retired = false;
    log_info(format("fleet: spawned worker %s (pid %d)", worker_id.c_str(),
                    static_cast<int>(pid)));
  };

  for (int s = 0; s < config_.workers; ++s) spawn(s);

  bool drain_forwarded = false;
  bool drain_killed = false;
  double drain_started = 0.0;
  bool corrupt = false;
  std::string corrupt_why;

  const auto poll_ledger = [&] {
    if (corrupt) return;
    try {
      ledger.poll();
    } catch (const ScfiError& e) {
      corrupt = true;
      corrupt_why = e.what();
    }
  };

  for (;;) {
    // 1. Drain: forward SIGTERM once; SIGKILL stragglers past the grace.
    if (g_drain != 0 && !drain_forwarded) {
      drain_forwarded = true;
      stats.drained = true;
      drain_started = steady_seconds();
      log_warn("fleet: drain requested; forwarding SIGTERM to workers");
      for (Slot& slot : slots) {
        if (slot.pid > 0) (void)::kill(slot.pid, SIGTERM);
        if (slot.pid < 0) slot.retired = true;  // cancel scheduled respawns
      }
    }
    if (drain_forwarded && !drain_killed &&
        steady_seconds() - drain_started > config_.drain_grace + 5.0) {
      drain_killed = true;
      for (const Slot& slot : slots) {
        if (slot.pid > 0) {
          log_warn("fleet: worker " + slot.worker_id + " ignored the drain; SIGKILL");
          (void)::kill(slot.pid, SIGKILL);
        }
      }
    }

    // 2. Drain heartbeat bytes; any byte refreshes the slot's liveness.
    for (Slot& slot : slots) {
      if (slot.read_fd < 0) continue;
      char buffer[256];
      bool beat = false;
      for (;;) {
        const ssize_t n = ::read(slot.read_fd, buffer, sizeof(buffer));
        if (n > 0) {
          beat = true;
          continue;
        }
        break;  // 0 = EOF (child gone; waitpid handles it), <0 = EAGAIN/EINTR
      }
      if (beat) slot.last_heartbeat = steady_seconds();
    }

    poll_ledger();
    if (corrupt) break;

    // 3. Reap. A clean exit retires the slot; exit 3 aborts the fleet;
    // everything else is a crash — attribute the held lease, quarantine or
    // release it, and schedule a backed-off respawn.
    for (;;) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, WNOHANG);
      if (pid <= 0) break;
      Slot* slot = nullptr;
      for (Slot& s : slots) {
        if (s.pid == pid) slot = &s;
      }
      if (slot == nullptr) continue;
      ::close(slot->read_fd);
      slot->read_fd = -1;
      slot->pid = -1;
      if (WIFEXITED(status) && WEXITSTATUS(status) == kExitClean) {
        slot->retired = true;
        slot->failures = 0;
        log_info("fleet: worker " + slot->worker_id + " finished");
        continue;
      }
      if (WIFEXITED(status) && WEXITSTATUS(status) == kExitCorrupt) {
        corrupt = true;
        corrupt_why =
            "worker " + slot->worker_id + " reported store corruption (exit 3)";
        continue;
      }
      ++stats.crashes;
      const std::string how =
          WIFSIGNALED(status)
              ? format("killed by signal %d", WTERMSIG(status))
              : format("exit code %d", WIFEXITED(status) ? WEXITSTATUS(status) : -1);
      log_warn("fleet: worker " + slot->worker_id + " crashed (" + how + ")");

      // The dead worker appended nothing after its death, but its last
      // renewal may postdate our poll above — re-poll before attributing.
      poll_ledger();
      if (corrupt) break;
      for (const std::string& key : pending_keys) {
        if (ledger.done(key)) continue;  // sticky final: never resurrect
        const SweepResult* lease = ledger.latest_lease(key);
        if (lease == nullptr || lease->worker != slot->worker_id) continue;
        int& count = crash_counts[key];
        ++count;
        if (count >= config_.max_crashes) {
          SweepResult poison;
          poison.job = *job_by_key.at(key);
          poison.status = JobStatus::kFailed;
          poison.error = "crashed";
          poison.attempts = count;
          poison.worker = slot->worker_id;
          ResultStore::append_line(store_path, poison);
          ++stats.quarantined;
          log_warn(format("fleet: quarantined %s after %d crash(es)", key.c_str(), count));
        } else {
          // Explicit release: back to the pool now, not at lease expiry.
          ResultStore::append_line(store_path, make_lease(*job_by_key.at(key), "", 0.0));
          log_warn("fleet: released lease on " + key);
        }
      }
      if (drain_forwarded) {
        slot->retired = true;
        continue;
      }
      ++slot->failures;
      const double delay_ms =
          config_.respawn_backoff.jittered_delay_ms(slot->failures, rng);
      slot->respawn_at = steady_seconds() + delay_ms / 1000.0;
      log_info(format("fleet: respawning slot %s in %.0fms", slot->worker_id.c_str(),
                      delay_ms));
    }
    if (corrupt) break;

    // 4. Stale heartbeats: a silent worker is presumed wedged or dead and
    // SIGKILLed; the reaper above turns that into an ordinary crash.
    const double now_steady = steady_seconds();
    for (Slot& slot : slots) {
      if (slot.pid > 0 &&
          now_steady - slot.last_heartbeat > config_.heartbeat_timeout) {
        log_warn(format("fleet: worker %s heartbeat stale for %.1fs; SIGKILL",
                        slot.worker_id.c_str(), now_steady - slot.last_heartbeat));
        (void)::kill(slot.pid, SIGKILL);
        slot.last_heartbeat = now_steady;  // one kill per silence, not per tick
      }
    }

    // 5. Respawn scheduled slots; terminate when nothing is running and
    // nothing will be.
    bool all_done = true;
    for (const std::string& key : pending_keys) {
      if (!ledger.done(key)) {
        all_done = false;
        break;
      }
    }
    for (int s = 0; s < config_.workers; ++s) {
      Slot& slot = slots[static_cast<std::size_t>(s)];
      if (slot.pid < 0 && !slot.retired && slot.respawn_at >= 0.0 &&
          now_steady >= slot.respawn_at) {
        if (all_done || drain_forwarded) {
          slot.retired = true;
          continue;
        }
        ++slot.generation;
        ++stats.respawns;
        spawn(s);
      }
    }
    bool any_live = false;
    bool any_scheduled = false;
    for (const Slot& slot : slots) {
      if (slot.pid > 0) any_live = true;
      if (slot.pid < 0 && !slot.retired && slot.respawn_at >= 0.0) any_scheduled = true;
    }
    if (!any_live && !any_scheduled) break;

    sleep_seconds(config_.poll_interval);
  }

  // Tear down: on corruption nothing more can be trusted — kill what is
  // left and surface the error after restoring the signal dispositions.
  if (corrupt) {
    for (Slot& slot : slots) {
      if (slot.pid > 0) {
        (void)::kill(slot.pid, SIGKILL);
        int status = 0;
        while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
        }
        slot.pid = -1;
      }
      if (slot.read_fd >= 0) {
        ::close(slot.read_fd);
        slot.read_fd = -1;
      }
    }
  }
  for (Slot& slot : slots) {
    if (slot.read_fd >= 0) {
      ::close(slot.read_fd);
      slot.read_fd = -1;
    }
  }
  (void)std::signal(SIGTERM, old_term);
  (void)std::signal(SIGINT, old_int);
  // A worker's last append can postdate the loop's final poll (it lands
  // just before the exit we reaped); pick it up before accounting.
  poll_ledger();
  require(!corrupt, "fleet: " + corrupt_why);

  // Final merge + compaction: a tolerant whole-file read (a SIGKILL
  // mid-append can leave glued torn bytes strict load refuses), then the
  // atomic save keeps finals only — leases are protocol traffic, not
  // results, and are dropped from what lands on disk.
  LeaseLedger merge(store_path, 0);
  merge.poll();
  ResultStore merged;
  for (const SweepResult* record : merge.finals()) merged.add(*record);
  merged.save(store_path);

  // Accounting runs against THIS run's ledger, not the merged history: a
  // drained key with a stale pre-run record is unfinished, not done.
  for (const std::string& key : pending_keys) {
    const SweepResult* final_record = ledger.final_record(key);
    if (final_record == nullptr) {
      ++stats.unfinished;
    } else if (final_record->status == JobStatus::kOk) {
      ++stats.executed;
    } else {
      ++stats.failed;
    }
  }
  return stats;
}

}  // namespace scfi::sweep
