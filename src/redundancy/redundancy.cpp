#include "redundancy/redundancy.h"

#include "base/error.h"
#include "encode/lexicode.h"
#include "rtlil/validate.h"

namespace scfi::redundancy {

using rtlil::Const;
using rtlil::SigBit;
using rtlil::SigSpec;

fsm::CompiledFsm build_redundant(const fsm::Fsm& fsm, rtlil::Design& design,
                                 const RedundancyConfig& config) {
  fsm.check();
  require(config.protection_level >= 1, "build_redundant: protection level must be >= 1");
  const int n = config.protection_level;

  fsm::CompiledFsm out;
  rtlil::Module* m = design.add_module(fsm.name + config.module_suffix);
  out.module = m;

  // Binary state encoding, replicated N times (the paper encodes only the
  // control signals for this baseline).
  out.state_width = 1;
  while ((1 << out.state_width) < fsm.num_states()) ++out.state_width;
  for (int s = 0; s < fsm.num_states(); ++s) {
    out.state_codes.push_back(static_cast<std::uint64_t>(s));
  }

  // Control symbols encoded with Hamming distance N (shared with SCFI's R1).
  const std::vector<std::string> symbols = fsm.symbols();
  encode::CodeSpec spec;
  spec.count = static_cast<int>(symbols.size());
  spec.min_distance = n;
  spec.min_weight = n;
  const encode::Code code = encode::generate_code(spec);
  out.symbol_width = code.width;
  for (std::size_t i = 0; i < symbols.size(); ++i) out.symbol_codes[symbols[i]] = code.words[i];

  rtlil::Wire* xw = m->add_input("x_enc", out.symbol_width);
  out.symbol_input_wire = xw->name();
  const SigSpec xenc(xw);

  const Const reset = Const::from_uint(
      out.state_codes[static_cast<std::size_t>(fsm.reset_state)], out.state_width);

  // N independent copies of register + next-state logic. Each copy is put
  // in its own share group so the optimizer cannot merge identical
  // comparators across copies — the paper instantiates them manually and
  // warns (§6.4) that optimization would weaken the redundancy.
  std::vector<SigSpec> q(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string wire_name = i == 0 ? "state_q" : "state_q_r" + std::to_string(i);
    rtlil::Wire* sq = m->add_wire(wire_name, out.state_width);
    q[static_cast<std::size_t>(i)] = SigSpec(sq);
    const std::size_t cells_before = m->cells().size();
    const SigSpec next = fsm::build_symbol_next_state(*m, fsm, q[static_cast<std::size_t>(i)],
                                                      xenc, out.state_codes, out.symbol_codes);
    rtlil::Cell* ff = m->add_cell(m->uniquify("state_ff"), rtlil::CellType::kDff);
    ff->set_port("D", next);
    ff->set_port("Q", q[static_cast<std::size_t>(i)]);
    ff->set_reset_value(reset);
    for (std::size_t ci = cells_before; ci < m->cells().size(); ++ci) {
      m->cells()[ci]->set_share_group(i + 1);
    }
  }
  out.state_wire = "state_q";

  // Mismatch detector over the state registers.
  SigSpec mismatch = SigSpec(SigBit(false));
  for (int i = 1; i < n; ++i) {
    const SigSpec eq = m->make_eq(q[0], q[static_cast<std::size_t>(i)], "cmp");
    mismatch = m->make_or(mismatch, m->make_not(eq, "ncmp"), "mm");
  }
  rtlil::Wire* alert = m->add_output("fsm_alert", 1);
  out.alert_wire = alert->name();
  m->drive(SigSpec(alert), mismatch);

  // Mealy outputs from the primary copy.
  const std::vector<fsm::CfgEdge> edges = fsm.cfg_edges();
  std::vector<SigSpec> cond(edges.size());
  for (std::size_t ei = 0; ei < edges.size(); ++ei) {
    const fsm::CfgEdge& e = edges[ei];
    const SigSpec seq = m->make_eq(
        q[0], SigSpec(Const::from_uint(out.state_codes[static_cast<std::size_t>(e.from)],
                                       out.state_width)),
        "oseq");
    const SigSpec xeq = m->make_eq(
        xenc, SigSpec(Const::from_uint(out.symbol_codes.at(e.symbol), out.symbol_width)), "oxeq");
    cond[ei] = m->make_and(seq, xeq, "ocond");
  }
  for (int j = 0; j < fsm.num_outputs(); ++j) {
    rtlil::Wire* y = m->add_output(fsm.outputs[static_cast<std::size_t>(j)], 1);
    SigSpec acc = SigSpec(SigBit(false));
    for (std::size_t ei = 0; ei < edges.size(); ++ei) {
      if (edges[ei].output[static_cast<std::size_t>(j)] == '1') {
        acc = m->make_or(acc, cond[ei], "yor");
      }
    }
    m->drive(SigSpec(y), acc);
  }

  rtlil::validate_module(*m);
  return out;
}

}  // namespace scfi::redundancy
