// Classical N-modular redundancy baseline (paper §6.1, configuration (ii)).
//
// The control signals are HD-N encoded exactly as for SCFI; the next-state
// logic and the state register are instantiated N times; a comparator network
// monitors the N state registers and raises fsm_alert on any mismatch. Each
// additional copy only protects against one additional fault, which is the
// poor scaling SCFI improves upon.
#pragma once

#include "fsm/compile.h"

namespace scfi::redundancy {

struct RedundancyConfig {
  int protection_level = 2;  ///< N: number of next-state logic instances
  std::string module_suffix = "_red";
};

/// Builds the redundant module `<fsm.name><suffix>` inside `design`.
fsm::CompiledFsm build_redundant(const fsm::Fsm& fsm, rtlil::Design& design,
                                 const RedundancyConfig& config = {});

}  // namespace scfi::redundancy
