#include "gf2/matrix.h"

#include "base/error.h"

namespace scfi::gf2 {

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  check(rows >= 0 && cols >= 0, "Matrix dimensions must be non-negative");
  row_.assign(static_cast<std::size_t>(rows), BitVec(cols));
}

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

BitVec Matrix::mul(const BitVec& x) const {
  check(x.size() == cols_, "Matrix::mul dimension mismatch");
  BitVec y(rows_);
  for (int r = 0; r < rows_; ++r) y.set(r, row_[static_cast<std::size_t>(r)].dot(x));
  return y;
}

Matrix Matrix::mul(const Matrix& other) const {
  check(cols_ == other.rows_, "Matrix::mul dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      if (get(r, k)) out.row(r) ^= other.row(k);
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (get(r, c)) t.set(c, r, true);
    }
  }
  return t;
}

Matrix Matrix::submatrix(const std::vector<int>& rows, const std::vector<int>& cols) const {
  Matrix s(static_cast<int>(rows.size()), static_cast<int>(cols.size()));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      s.set(static_cast<int>(r), static_cast<int>(c), get(rows[r], cols[c]));
    }
  }
  return s;
}

int Matrix::rank() const {
  Matrix work = *this;
  int rank = 0;
  for (int c = 0; c < cols_ && rank < rows_; ++c) {
    int pivot = -1;
    for (int r = rank; r < rows_; ++r) {
      if (work.get(r, c)) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(work.row(rank), work.row(pivot));
    for (int r = 0; r < rows_; ++r) {
      if (r != rank && work.get(r, c)) work.row(r) ^= work.row(rank);
    }
    ++rank;
  }
  return rank;
}

bool Matrix::invertible() const { return rows_ == cols_ && rank() == rows_; }

std::optional<Matrix> Matrix::inverse() const {
  check(rows_ == cols_, "Matrix::inverse requires a square matrix");
  Matrix work = *this;
  Matrix inv = identity(rows_);
  int rank = 0;
  for (int c = 0; c < cols_; ++c) {
    int pivot = -1;
    for (int r = rank; r < rows_; ++r) {
      if (work.get(r, c)) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return std::nullopt;
    std::swap(work.row(rank), work.row(pivot));
    std::swap(inv.row(rank), inv.row(pivot));
    for (int r = 0; r < rows_; ++r) {
      if (r != rank && work.get(r, c)) {
        work.row(r) ^= work.row(rank);
        inv.row(r) ^= inv.row(rank);
      }
    }
    ++rank;
  }
  return inv;
}

LinearSolver::LinearSolver(const Matrix& a)
    : rows_(a.rows()), cols_(a.cols()), reduced_(a), transform_(Matrix::identity(a.rows())) {
  for (int c = 0; c < cols_ && rank_ < rows_; ++c) {
    int pivot = -1;
    for (int r = rank_; r < rows_; ++r) {
      if (reduced_.get(r, c)) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(reduced_.row(rank_), reduced_.row(pivot));
    std::swap(transform_.row(rank_), transform_.row(pivot));
    for (int r = 0; r < rows_; ++r) {
      if (r != rank_ && reduced_.get(r, c)) {
        reduced_.row(r) ^= reduced_.row(rank_);
        transform_.row(r) ^= transform_.row(rank_);
      }
    }
    pivot_col_.push_back(c);
    ++rank_;
  }
}

std::optional<BitVec> LinearSolver::solve(const BitVec& b) const {
  check(b.size() == rows_, "LinearSolver::solve rhs size mismatch");
  const BitVec tb = transform_.mul(b);
  // Rows beyond the rank are all-zero in `reduced_`; the system is
  // inconsistent if the transformed rhs is nonzero there.
  for (int r = rank_; r < rows_; ++r) {
    if (tb.get(r)) return std::nullopt;
  }
  BitVec x(cols_);
  for (int r = 0; r < rank_; ++r) x.set(pivot_col_[static_cast<std::size_t>(r)], tb.get(r));
  return x;
}

}  // namespace scfi::gf2
