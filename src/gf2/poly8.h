// Arithmetic in the byte ring R = F2[X] / (X^8 + X^2 + 1).
//
// SCFI's diffusion layer works in F2[alpha] with alpha a root of
// X^8 + X^2 + 1 (paper §5.1). Note that X^8+X^2+1 = (X^4+X+1)^2 over GF(2),
// so R is a *ring*, not a field: an element is a unit iff it is not divisible
// by X^4+X+1. MDS matrices over R are still well-defined (every square
// submatrix must be a unit-determinant matrix); multiplication by alpha costs
// a single XOR gate, which is why the paper picked this modulus.
#pragma once

#include <cstdint>

namespace scfi::gf2 {

/// Reduction polynomial X^8 + X^2 + 1 (bit 8, bit 2, bit 0).
inline constexpr std::uint16_t kScfiPoly = 0x105;

/// The radical generator X^4 + X + 1 whose square is kScfiPoly.
inline constexpr std::uint16_t kScfiRadical = 0x13;

/// Multiplication by alpha (i.e. by X) modulo kScfiPoly.
std::uint8_t xtime(std::uint8_t a);

/// Ring multiplication modulo kScfiPoly.
std::uint8_t ring_mul(std::uint8_t a, std::uint8_t b);

/// a * X^k modulo kScfiPoly.
std::uint8_t ring_mul_xk(std::uint8_t a, int k);

/// True iff `a` is a unit of R (not divisible by X^4+X+1).
bool ring_is_unit(std::uint8_t a);

/// Multiplicative inverse of a unit (undefined behaviour checked: throws for
/// non-units).
std::uint8_t ring_inverse(std::uint8_t a);

/// Remainder of polynomial `a` (degree < 8) modulo X^4+X+1, as a 4-bit value.
std::uint8_t mod_radical(std::uint8_t a);

}  // namespace scfi::gf2
