// Dynamic bit vector over GF(2), packed into 64-bit words.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scfi::gf2 {

/// Fixed-size (after construction) vector of bits with GF(2) arithmetic.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(int size) : size_(size), words_((static_cast<std::size_t>(size) + 63) / 64, 0) {}

  /// Builds from a binary string, MSB first ("1011" -> bit3=1,bit2=0,...).
  static BitVec from_string(const std::string& bits);

  /// Builds from the low `size` bits of `value` (bit 0 = LSB).
  static BitVec from_uint(std::uint64_t value, int size);

  int size() const { return size_; }

  bool get(int i) const;
  void set(int i, bool v);
  void flip(int i);

  /// XOR-accumulates `other` into this vector (sizes must match).
  void operator^=(const BitVec& other);
  BitVec operator^(const BitVec& other) const;

  bool operator==(const BitVec& other) const = default;

  /// Number of set bits.
  int popcount() const;

  /// True when all bits are zero.
  bool is_zero() const;

  /// Hamming distance to `other` (sizes must match).
  int distance(const BitVec& other) const;

  /// Dot product over GF(2).
  bool dot(const BitVec& other) const;

  /// Low 64 bits as an integer (size must be <= 64 for a faithful value).
  std::uint64_t to_uint() const;

  /// Binary string, MSB first.
  std::string to_string() const;

  /// Extracts bits [lo, lo+len) into a new vector.
  BitVec slice(int lo, int len) const;

 private:
  int size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace scfi::gf2
