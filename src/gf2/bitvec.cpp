#include "gf2/bitvec.h"

#include <bit>

#include "base/error.h"

namespace scfi::gf2 {

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(static_cast<int>(bits.size()));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    require(c == '0' || c == '1', "BitVec::from_string: invalid character");
    v.set(static_cast<int>(bits.size() - 1 - i), c == '1');
  }
  return v;
}

BitVec BitVec::from_uint(std::uint64_t value, int size) {
  check(size >= 0 && size <= 64, "BitVec::from_uint size out of range");
  BitVec v(size);
  for (int i = 0; i < size; ++i) v.set(i, (value >> i) & 1);
  return v;
}

bool BitVec::get(int i) const {
  check(i >= 0 && i < size_, "BitVec::get index out of range");
  return (words_[static_cast<std::size_t>(i) / 64] >> (i % 64)) & 1;
}

void BitVec::set(int i, bool v) {
  check(i >= 0 && i < size_, "BitVec::set index out of range");
  const std::uint64_t mask = 1ULL << (i % 64);
  auto& word = words_[static_cast<std::size_t>(i) / 64];
  word = v ? (word | mask) : (word & ~mask);
}

void BitVec::flip(int i) { set(i, !get(i)); }

void BitVec::operator^=(const BitVec& other) {
  check(size_ == other.size_, "BitVec xor: size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
}

BitVec BitVec::operator^(const BitVec& other) const {
  BitVec r = *this;
  r ^= other;
  return r;
}

int BitVec::popcount() const {
  int n = 0;
  for (std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

bool BitVec::is_zero() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

int BitVec::distance(const BitVec& other) const {
  check(size_ == other.size_, "BitVec distance: size mismatch");
  int n = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) n += std::popcount(words_[w] ^ other.words_[w]);
  return n;
}

bool BitVec::dot(const BitVec& other) const {
  check(size_ == other.size_, "BitVec dot: size mismatch");
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) acc ^= words_[w] & other.words_[w];
  return std::popcount(acc) & 1;
}

std::uint64_t BitVec::to_uint() const {
  check(size_ <= 64, "BitVec::to_uint requires size <= 64");
  return words_.empty() ? 0 : words_[0] & (size_ == 64 ? ~0ULL : ((1ULL << size_) - 1));
}

std::string BitVec::to_string() const {
  std::string s(static_cast<std::size_t>(size_), '0');
  for (int i = 0; i < size_; ++i) {
    if (get(i)) s[static_cast<std::size_t>(size_ - 1 - i)] = '1';
  }
  return s;
}

BitVec BitVec::slice(int lo, int len) const {
  check(lo >= 0 && len >= 0 && lo + len <= size_, "BitVec::slice out of range");
  BitVec v(len);
  for (int i = 0; i < len; ++i) v.set(i, get(lo + i));
  return v;
}

}  // namespace scfi::gf2
