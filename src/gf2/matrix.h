// Dense GF(2) matrices with Gaussian elimination, rank, solve and inverse.
//
// Matrices are row-major collections of BitVec rows. These are small
// (hundreds of bits) throughout scfi, so the dense representation is ideal.
#pragma once

#include <optional>
#include <vector>

#include "gf2/bitvec.h"

namespace scfi::gf2 {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  static Matrix identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  bool get(int r, int c) const { return row_[static_cast<std::size_t>(r)].get(c); }
  void set(int r, int c, bool v) { row_[static_cast<std::size_t>(r)].set(c, v); }

  const BitVec& row(int r) const { return row_[static_cast<std::size_t>(r)]; }
  BitVec& row(int r) { return row_[static_cast<std::size_t>(r)]; }

  /// Matrix-vector product y = M x.
  BitVec mul(const BitVec& x) const;

  /// Matrix-matrix product.
  Matrix mul(const Matrix& other) const;

  Matrix transpose() const;

  /// Selects a submatrix by explicit row and column index lists.
  Matrix submatrix(const std::vector<int>& rows, const std::vector<int>& cols) const;

  int rank() const;

  /// True iff square and invertible.
  bool invertible() const;

  /// Inverse of a square invertible matrix (nullopt when singular).
  std::optional<Matrix> inverse() const;

  bool operator==(const Matrix& other) const = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<BitVec> row_;
};

/// Precomputed echelon factorization of `A` for repeatedly solving A x = b
/// with different right-hand sides (used for per-edge modifier solving).
class LinearSolver {
 public:
  explicit LinearSolver(const Matrix& a);

  int rank() const { return rank_; }

  /// True when A x = b is solvable for EVERY b (A has full row rank).
  bool full_row_rank() const { return rank_ == rows_; }

  /// One solution of A x = b, or nullopt when inconsistent.
  std::optional<BitVec> solve(const BitVec& b) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  int rank_ = 0;
  Matrix reduced_;           // row-reduced echelon form of A
  Matrix transform_;         // transform_ * A == reduced_
  std::vector<int> pivot_col_;  // pivot column of each echelon row
};

}  // namespace scfi::gf2
