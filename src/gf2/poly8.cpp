#include "gf2/poly8.h"

#include "base/error.h"

namespace scfi::gf2 {

std::uint8_t xtime(std::uint8_t a) {
  const std::uint16_t shifted = static_cast<std::uint16_t>(a) << 1;
  // X^8 == X^2 + 1 (mod X^8+X^2+1): folding the overflow bit costs 1 XOR in
  // hardware (bit 0 is a plain rewire of the carry).
  return static_cast<std::uint8_t>((shifted & 0xff) ^ ((shifted & 0x100) ? 0x05 : 0x00));
}

std::uint8_t ring_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t acc = 0;
  std::uint8_t shifted = a;
  for (int i = 0; i < 8; ++i) {
    if ((b >> i) & 1) acc = static_cast<std::uint8_t>(acc ^ shifted);
    shifted = xtime(shifted);
  }
  return acc;
}

std::uint8_t ring_mul_xk(std::uint8_t a, int k) {
  check(k >= 0, "ring_mul_xk: negative exponent");
  std::uint8_t v = a;
  for (int i = 0; i < k; ++i) v = xtime(v);
  return v;
}

std::uint8_t mod_radical(std::uint8_t a) {
  // Divide the degree-<8 polynomial `a` by X^4+X+1, return the remainder.
  std::uint16_t rem = a;
  for (int deg = 7; deg >= 4; --deg) {
    if (rem & (1u << deg)) rem ^= static_cast<std::uint16_t>(kScfiRadical) << (deg - 4);
  }
  return static_cast<std::uint8_t>(rem & 0x0f);
}

bool ring_is_unit(std::uint8_t a) { return mod_radical(a) != 0; }

std::uint8_t ring_inverse(std::uint8_t a) {
  require(ring_is_unit(a), "ring_inverse: element is not a unit");
  // R has 256 elements; brute force is instant and obviously correct.
  for (int b = 1; b < 256; ++b) {
    if (ring_mul(a, static_cast<std::uint8_t>(b)) == 1) return static_cast<std::uint8_t>(b);
  }
  unreachable("unit without inverse in F2[X]/(X^8+X^2+1)");
}

}  // namespace scfi::gf2
