// A compact CDCL SAT solver (watched literals, first-UIP clause learning,
// VSIDS-style activities, Luby restarts, phase saving).
//
// Used by the SYNFI-style formal fault analysis (src/synfi) to decide
// per-fault exploitability queries on netlist miters. The solver is complete
// and deterministic, and supports incremental use: solve(assumptions) may be
// called any number of times on a growing clause database, with learned
// clauses (which are always assumption-independent) carried across calls.
#pragma once

#include <cstdint>
#include <vector>

namespace scfi::sat {

/// External literal representation: +v / -v with v >= 1.
using Lit = int;

enum class Result { kSat, kUnsat };

class Solver {
 public:
  Solver() = default;

  /// Allocates a fresh variable, returning its index (>= 1).
  int new_var();
  int num_vars() const { return static_cast<int>(activity_.size()); }

  /// Adds a clause (empty clause makes the instance trivially UNSAT).
  void add_clause(const std::vector<Lit>& lits);
  void add_unit(Lit a) { add_clause({a}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }

  /// Decides satisfiability under the given assumptions.
  Result solve(const std::vector<Lit>& assumptions = {});

  /// Model value of a literal after kSat.
  bool value(Lit lit) const;

  std::uint64_t conflicts() const { return conflicts_; }
  std::uint64_t decisions() const { return decisions_; }

  /// Branching-heuristic snapshot: VSIDS activities and saved phases. Purely
  /// heuristic state — importing one into another solver can only change the
  /// search order, never a SAT/UNSAT verdict — so sweeps over structurally
  /// similar instances (e.g. the per-shard SYNFI miters of one variant) can
  /// seed fresh solvers from an already-trained one.
  struct WarmStart {
    std::vector<double> activity;
    std::vector<std::int8_t> phase;
    double var_inc = 1.0;
    bool empty() const { return activity.empty(); }
  };
  WarmStart export_warm_start() const;
  /// Copies the snapshot onto the first min(num_vars, |snapshot|) variables;
  /// extra variables on either side are left untouched.
  void import_warm_start(const WarmStart& warm);

 private:
  // Internal literal encoding: var v (0-based) -> 2v (positive), 2v+1
  // (negated).
  static int ilit(Lit lit) {
    const int v = lit > 0 ? lit : -lit;
    return 2 * (v - 1) + (lit < 0 ? 1 : 0);
  }
  static int neg(int l) { return l ^ 1; }
  static int var(int l) { return l >> 1; }

  enum : std::int8_t { kUndef = -1, kFalse = 0, kTrue = 1 };

  std::int8_t lit_value(int l) const {
    const std::int8_t a = assign_[static_cast<std::size_t>(var(l))];
    if (a == kUndef) return kUndef;
    if ((l & 1) == 0) return a;
    return a == kTrue ? static_cast<std::int8_t>(kFalse) : static_cast<std::int8_t>(kTrue);
  }

  void enqueue(int l, int reason);
  int propagate();  ///< returns conflicting clause index or -1
  void analyze(int conflict, std::vector<int>& learned, int& backtrack_level);
  void backtrack(int level);
  int pick_branch();
  void bump(int v);
  void decay();
  bool trivially_unsat_ = false;

  std::vector<std::vector<int>> clauses_;       // literal lists (internal encoding)
  std::vector<int> units_;                      // top-level unit literals (internal)
  std::vector<std::vector<int>> watches_;       // internal lit -> clause indices
  std::vector<std::int8_t> assign_;             // per var
  std::vector<std::int8_t> phase_;              // saved phases
  std::vector<int> level_;                      // per var
  std::vector<int> reason_;                     // per var: clause index or -1
  std::vector<int> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::uint64_t conflicts_ = 0;
  std::uint64_t decisions_ = 0;
};

}  // namespace scfi::sat
