#include "sat/cnf.h"

#include "base/error.h"

namespace scfi::sat {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::SigBit;
using rtlil::SigSpec;

CnfCopy::CnfCopy(Solver& solver, const rtlil::Module& module,
                 const std::unordered_map<SigBit, int>& bound,
                 const std::optional<CnfFault>& fault)
    : CnfCopy(solver, module, bound,
              fault ? std::vector<CnfFault>{*fault} : std::vector<CnfFault>{}) {}

CnfCopy::CnfCopy(Solver& solver, const rtlil::Module& module,
                 const std::unordered_map<SigBit, int>& bound,
                 const std::vector<CnfFault>& faults)
    : solver_(&solver), module_(&module), vars_(bound), faults_(faults) {
  const_true_ = solver.new_var();
  solver.add_unit(const_true_);

  // Allocate the readers' view of every faulted net up front so the cell
  // encoding below routes consumers through it.
  fault_vars_.reserve(faults_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    check(!faults_[i].bit.is_const(), "CnfCopy: cannot fault a constant bit");
    check(fault_index_.emplace(faults_[i].bit, i).second, "CnfCopy: duplicate fault site");
    fault_vars_.push_back(solver.new_var());
  }

  const rtlil::NetlistIndex index(module);
  for (const Cell* cell : index.topo_comb()) encode_cell(*cell);

  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const CnfFault& f = faults_[i];
    const int fv = fault_vars_[i];
    // Ensure the faulted net has a variable even if nothing read it yet.
    const int orig = lookup_driven(f.bit);
    if (f.selector == 0) {
      switch (f.kind) {
        case CnfFaultKind::kFlip:
          // fv == !orig
          solver.add_binary(fv, orig);
          solver.add_binary(-fv, -orig);
          break;
        case CnfFaultKind::kStuckAt0:
          solver.add_unit(-fv);
          break;
        case CnfFaultKind::kStuckAt1:
          solver.add_unit(fv);
          break;
      }
      continue;
    }
    // Gated override: selector off means pass-through (fv == orig), so the
    // same copy serves every query with exactly the selected fault active.
    const Lit sel = f.selector;
    switch (f.kind) {
      case CnfFaultKind::kFlip:
        // fv == sel XOR orig
        solver.add_ternary(-fv, sel, orig);
        solver.add_ternary(-fv, -sel, -orig);
        solver.add_ternary(fv, -sel, orig);
        solver.add_ternary(fv, sel, -orig);
        break;
      case CnfFaultKind::kStuckAt0:
        solver.add_binary(-sel, -fv);
        solver.add_ternary(sel, -fv, orig);
        solver.add_ternary(sel, fv, -orig);
        break;
      case CnfFaultKind::kStuckAt1:
        solver.add_binary(-sel, fv);
        solver.add_ternary(sel, -fv, orig);
        solver.add_ternary(sel, fv, -orig);
        break;
    }
  }
}

int CnfCopy::lookup_driven(const SigBit& bit) {
  if (bit.is_const()) return bit.const_value() ? const_true_ : -const_true_;
  const auto it = vars_.find(bit);
  if (it != vars_.end()) return it->second;
  const int v = solver_->new_var();
  vars_.emplace(bit, v);
  return v;
}

int CnfCopy::fault_override(const SigBit& bit) const {
  if (fault_index_.empty() || bit.is_const()) return 0;
  const auto it = fault_index_.find(bit);
  return it != fault_index_.end() ? fault_vars_[it->second] : 0;
}

int CnfCopy::lookup(const SigBit& bit) {
  const int fv = fault_override(bit);
  if (fv != 0) return fv;
  return lookup_driven(bit);
}

int CnfCopy::emit_not(int a) { return -a; }

int CnfCopy::emit_and(int a, int b) {
  const int y = solver_->new_var();
  solver_->add_binary(-y, a);
  solver_->add_binary(-y, b);
  solver_->add_ternary(y, -a, -b);
  return y;
}

int CnfCopy::emit_or(int a, int b) {
  const int y = solver_->new_var();
  solver_->add_binary(y, -a);
  solver_->add_binary(y, -b);
  solver_->add_ternary(-y, a, b);
  return y;
}

int CnfCopy::emit_xor(int a, int b) {
  const int y = solver_->new_var();
  solver_->add_ternary(-y, a, b);
  solver_->add_ternary(-y, -a, -b);
  solver_->add_ternary(y, -a, b);
  solver_->add_ternary(y, a, -b);
  return y;
}

int CnfCopy::emit_xnor(int a, int b) { return -emit_xor(a, b); }

int CnfCopy::emit_mux(int s, int a, int b) {
  // y = s ? b : a
  const int y = solver_->new_var();
  solver_->add_ternary(-y, s, a);
  solver_->add_ternary(y, s, -a);
  solver_->add_ternary(-y, -s, b);
  solver_->add_ternary(y, -s, -b);
  return y;
}

int CnfCopy::emit_tree_and(std::vector<int> terms) {
  check(!terms.empty(), "CnfCopy: empty AND tree");
  while (terms.size() > 1) {
    std::vector<int> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(emit_and(terms[i], terms[i + 1]));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

void CnfCopy::encode_cell(const Cell& cell) {
  const SigSpec& y = cell.port(rtlil::output_port(cell.type()));
  const auto bind_out = [&](int i, int lit) {
    const SigBit bit = y.bit(i);
    check(!bit.is_const(), "CnfCopy: cell drives constant");
    const auto it = vars_.find(bit);
    if (it == vars_.end()) {
      vars_.emplace(bit, lit);
    } else {
      // Already referenced (or bound): tie with equivalence clauses.
      solver_->add_binary(-it->second, lit);
      solver_->add_binary(it->second, -lit);
    }
  };
  const auto a_bits = [&](const char* p) {
    std::vector<int> lits;
    for (const SigBit& b : cell.port(p).bits()) lits.push_back(lookup(b));
    return lits;
  };
  switch (cell.type()) {
    case CellType::kBuf:
    case CellType::kGateBuf: {
      const std::vector<int> a = a_bits("A");
      for (int i = 0; i < y.width(); ++i) bind_out(i, a[static_cast<std::size_t>(i)]);
      break;
    }
    case CellType::kNot:
    case CellType::kGateInv: {
      const std::vector<int> a = a_bits("A");
      for (int i = 0; i < y.width(); ++i) bind_out(i, -a[static_cast<std::size_t>(i)]);
      break;
    }
    case CellType::kAnd:
    case CellType::kGateAnd2:
    case CellType::kGateNand2:
    case CellType::kOr:
    case CellType::kGateOr2:
    case CellType::kGateNor2:
    case CellType::kXor:
    case CellType::kGateXor2:
    case CellType::kXnor:
    case CellType::kGateXnor2: {
      const std::vector<int> a = a_bits("A");
      const std::vector<int> b = a_bits("B");
      for (int i = 0; i < y.width(); ++i) {
        int lit = 0;
        switch (cell.type()) {
          case CellType::kAnd:
          case CellType::kGateAnd2:
            lit = emit_and(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
            break;
          case CellType::kGateNand2:
            lit = -emit_and(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
            break;
          case CellType::kOr:
          case CellType::kGateOr2:
            lit = emit_or(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
            break;
          case CellType::kGateNor2:
            lit = -emit_or(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
            break;
          case CellType::kXor:
          case CellType::kGateXor2:
            lit = emit_xor(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
            break;
          default:
            lit = emit_xnor(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
            break;
        }
        bind_out(i, lit);
      }
      break;
    }
    case CellType::kMux:
    case CellType::kGateMux2: {
      const std::vector<int> a = a_bits("A");
      const std::vector<int> b = a_bits("B");
      const int s = lookup(cell.port("S").bit(0));
      for (int i = 0; i < y.width(); ++i) {
        bind_out(i, emit_mux(s, a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]));
      }
      break;
    }
    case CellType::kGateAoi21: {
      const int a = lookup(cell.port("A").bit(0));
      const int b = lookup(cell.port("B").bit(0));
      const int c = lookup(cell.port("C").bit(0));
      bind_out(0, -emit_or(emit_and(a, b), c));
      break;
    }
    case CellType::kGateOai21: {
      const int a = lookup(cell.port("A").bit(0));
      const int b = lookup(cell.port("B").bit(0));
      const int c = lookup(cell.port("C").bit(0));
      bind_out(0, -emit_and(emit_or(a, b), c));
      break;
    }
    case CellType::kEq: {
      const std::vector<int> a = a_bits("A");
      const std::vector<int> b = a_bits("B");
      std::vector<int> eqs;
      for (std::size_t i = 0; i < a.size(); ++i) eqs.push_back(emit_xnor(a[i], b[i]));
      bind_out(0, emit_tree_and(std::move(eqs)));
      break;
    }
    case CellType::kReduceAnd:
      bind_out(0, emit_tree_and(a_bits("A")));
      break;
    case CellType::kReduceOr: {
      std::vector<int> terms = a_bits("A");
      for (int& t : terms) t = -t;
      bind_out(0, -emit_tree_and(std::move(terms)));
      break;
    }
    case CellType::kReduceXor: {
      std::vector<int> terms = a_bits("A");
      int acc = terms[0];
      for (std::size_t i = 1; i < terms.size(); ++i) acc = emit_xor(acc, terms[i]);
      bind_out(0, acc);
      break;
    }
    default:
      unreachable(std::string("CnfCopy: unhandled cell type ") +
                  rtlil::cell_type_name(cell.type()));
  }
}

int CnfCopy::reader_var(const SigBit& bit) const {
  const int fv = fault_override(bit);
  if (fv != 0) return fv;
  return driven_var(bit);
}

int CnfCopy::driven_var(const SigBit& bit) const {
  if (bit.is_const()) return bit.const_value() ? const_true_ : -const_true_;
  const auto it = vars_.find(bit);
  check(it != vars_.end(), "CnfCopy: bit has no variable");
  return it->second;
}

std::vector<int> CnfCopy::wire_vars(const std::string& wire) const {
  const rtlil::Wire* w = module_->wire(wire);
  require(w != nullptr, "CnfCopy::wire_vars: no wire " + wire);
  std::vector<int> out;
  for (int i = 0; i < w->width(); ++i) out.push_back(reader_var(SigBit(w, i)));
  return out;
}

std::vector<int> CnfCopy::ff_next_vars(const std::string& q_wire) const {
  const rtlil::Wire* w = module_->wire(q_wire);
  require(w != nullptr, "CnfCopy::ff_next_vars: no wire " + q_wire);
  std::vector<int> out(static_cast<std::size_t>(w->width()), 0);
  std::vector<bool> found(static_cast<std::size_t>(w->width()), false);
  for (const Cell* cell : module_->cells()) {
    if (!rtlil::is_ff(cell->type())) continue;
    const SigSpec& q = cell->port("Q");
    const SigSpec& d = cell->port("D");
    for (int i = 0; i < q.width(); ++i) {
      const SigBit qb = q.bit(i);
      if (!qb.is_const() && qb.wire == w) {
        out[static_cast<std::size_t>(qb.offset)] = reader_var(d.bit(i));
        found[static_cast<std::size_t>(qb.offset)] = true;
      }
    }
  }
  for (bool f : found) {
    require(f, "CnfCopy::ff_next_vars: wire " + q_wire + " not fully registered");
  }
  return out;
}

}  // namespace scfi::sat
