#include "sat/solver.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"

namespace scfi::sat {
namespace {

/// Luby restart sequence (1,1,2,1,1,2,4,...).
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t k = 1;
  while ((1ULL << k) - 1 < i + 1) ++k;
  while ((1ULL << k) - 1 != i + 1) {
    i -= (1ULL << (k - 1)) - 1;
    k = 1;
    while ((1ULL << k) - 1 < i + 1) ++k;
  }
  return 1ULL << (k - 1);
}

}  // namespace

int Solver::new_var() {
  assign_.push_back(kUndef);
  phase_.push_back(kFalse);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  watches_.emplace_back();
  watches_.emplace_back();
  return static_cast<int>(activity_.size());
}

void Solver::add_clause(const std::vector<Lit>& lits) {
  std::vector<int> clause;
  clause.reserve(lits.size());
  for (Lit lit : lits) {
    check(lit != 0 && std::abs(lit) <= num_vars(), "Solver::add_clause: literal out of range");
    clause.push_back(ilit(lit));
  }
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  // Tautology?
  for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
    if (clause[i] == neg(clause[i + 1])) return;
  }
  if (clause.empty()) {
    trivially_unsat_ = true;
    return;
  }
  if (clause.size() == 1) {
    // Defer unit enqueueing to solve() (top level); the dedicated unit list
    // keeps the per-call scan O(units) instead of O(all clauses).
    units_.push_back(clause[0]);
    return;
  }
  const int idx = static_cast<int>(clauses_.size());
  clauses_.push_back(clause);
  watches_[static_cast<std::size_t>(clause[0])].push_back(idx);
  watches_[static_cast<std::size_t>(clause[1])].push_back(idx);
}

void Solver::enqueue(int l, int reason) {
  assign_[static_cast<std::size_t>(var(l))] =
      static_cast<std::int8_t>((l & 1) != 0 ? kFalse : kTrue);
  level_[static_cast<std::size_t>(var(l))] = static_cast<int>(trail_lim_.size());
  reason_[static_cast<std::size_t>(var(l))] = reason;
  trail_.push_back(l);
}

int Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const int l = trail_[qhead_++];
    const int falsified = neg(l);
    std::vector<int>& watch_list = watches_[static_cast<std::size_t>(falsified)];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < watch_list.size(); ++wi) {
      const int ci = watch_list[wi];
      std::vector<int>& clause = clauses_[static_cast<std::size_t>(ci)];
      // Normalize: watched literals are clause[0], clause[1].
      if (clause[0] == falsified) std::swap(clause[0], clause[1]);
      if (lit_value(clause[0]) == kTrue) {
        watch_list[keep++] = ci;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < clause.size(); ++k) {
        if (lit_value(clause[k]) != kFalse) {
          std::swap(clause[1], clause[k]);
          watches_[static_cast<std::size_t>(clause[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch migrated; drop from this list
      // Unit or conflict.
      watch_list[keep++] = ci;
      if (lit_value(clause[0]) == kFalse) {
        // Conflict: keep remaining watches, then report.
        for (std::size_t k = wi + 1; k < watch_list.size(); ++k) {
          watch_list[keep++] = watch_list[k];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
      enqueue(clause[0], ci);
    }
    watch_list.resize(keep);
  }
  return -1;
}

void Solver::bump(int v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
}

void Solver::decay() { var_inc_ /= 0.95; }

void Solver::analyze(int conflict, std::vector<int>& learned, int& backtrack_level) {
  learned.clear();
  learned.push_back(0);  // placeholder for the asserting literal
  std::vector<bool> seen(static_cast<std::size_t>(num_vars()), false);
  int counter = 0;
  int l = -1;
  int ci = conflict;
  std::size_t trail_pos = trail_.size();
  const int current_level = static_cast<int>(trail_lim_.size());

  for (;;) {
    const std::vector<int>& clause = clauses_[static_cast<std::size_t>(ci)];
    for (const int q : clause) {
      if (l != -1 && q == l) continue;
      const int v = var(q);
      if (seen[static_cast<std::size_t>(v)] || level_[static_cast<std::size_t>(v)] == 0) continue;
      seen[static_cast<std::size_t>(v)] = true;
      bump(v);
      if (level_[static_cast<std::size_t>(v)] >= current_level) {
        ++counter;
      } else {
        learned.push_back(q);
      }
    }
    // Next literal on the trail that participates.
    do {
      --trail_pos;
      l = trail_[trail_pos];
    } while (!seen[static_cast<std::size_t>(var(l))]);
    seen[static_cast<std::size_t>(var(l))] = false;
    --counter;
    if (counter == 0) break;
    ci = reason_[static_cast<std::size_t>(var(l))];
    check(ci >= 0, "Solver::analyze: missing reason");
  }
  learned[0] = neg(l);

  backtrack_level = 0;
  if (learned.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learned.size(); ++i) {
      if (level_[static_cast<std::size_t>(var(learned[i]))] >
          level_[static_cast<std::size_t>(var(learned[max_i]))]) {
        max_i = i;
      }
    }
    std::swap(learned[1], learned[max_i]);
    backtrack_level = level_[static_cast<std::size_t>(var(learned[1]))];
  }
}

void Solver::backtrack(int target) {
  while (static_cast<int>(trail_lim_.size()) > target) {
    const int boundary = trail_lim_.back();
    trail_lim_.pop_back();
    while (static_cast<int>(trail_.size()) > boundary) {
      const int l = trail_.back();
      trail_.pop_back();
      const int v = var(l);
      phase_[static_cast<std::size_t>(v)] = assign_[static_cast<std::size_t>(v)];
      assign_[static_cast<std::size_t>(v)] = kUndef;
      reason_[static_cast<std::size_t>(v)] = -1;
    }
    qhead_ = trail_.size();
  }
}

int Solver::pick_branch() {
  int best = -1;
  double best_activity = -1.0;
  for (int v = 0; v < num_vars(); ++v) {
    if (assign_[static_cast<std::size_t>(v)] != kUndef) continue;
    if (activity_[static_cast<std::size_t>(v)] > best_activity) {
      best_activity = activity_[static_cast<std::size_t>(v)];
      best = v;
    }
  }
  if (best < 0) return -1;
  return 2 * best + (phase_[static_cast<std::size_t>(best)] == kTrue ? 0 : 1);
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  if (trivially_unsat_) return Result::kUnsat;
  backtrack(0);
  // Re-propagate the retained level-0 trail from scratch: an incremental
  // call may have left the queue head past entries whose consequences (under
  // clauses learned later) were never drawn, and a level-0 conflict return
  // leaves the trail itself inconsistent. Propagation is idempotent, so
  // replaying the prefix is cheap and restores the invariant.
  qhead_ = 0;
  // Enqueue top-level units.
  for (const int unit : units_) {
    const std::int8_t v = lit_value(unit);
    if (v == kFalse) {
      trivially_unsat_ = true;
      return Result::kUnsat;
    }
    if (v == kUndef) enqueue(unit, -1);
  }
  if (propagate() >= 0) {
    // Conflict with no decisions or assumptions on the trail: the clause
    // database itself is contradictory, for this and every future call.
    trivially_unsat_ = true;
    return Result::kUnsat;
  }

  std::uint64_t restart_round = 0;
  std::uint64_t conflict_budget = 128 * luby(restart_round);
  std::uint64_t conflicts_here = 0;
  std::vector<int> learned;

  for (;;) {
    const int conflict = propagate();
    if (conflict >= 0) {
      ++conflicts_;
      ++conflicts_here;
      if (trail_lim_.empty()) {
        // Level-0 conflict (below every assumption): globally UNSAT.
        trivially_unsat_ = true;
        return Result::kUnsat;
      }
      int back_level = 0;
      analyze(conflict, learned, back_level);
      // Backtracking below the assumption levels is fine: the re-assertion
      // loop below replays them and reports kUnsat when the learned clause
      // contradicts one.
      backtrack(std::max(back_level, 0));
      int reason = -1;
      if (learned.size() >= 2) {
        const int idx = static_cast<int>(clauses_.size());
        clauses_.push_back(learned);
        watches_[static_cast<std::size_t>(learned[0])].push_back(idx);
        watches_[static_cast<std::size_t>(learned[1])].push_back(idx);
        reason = idx;
      } else {
        units_.push_back(learned[0]);  // learned facts are globally valid
      }
      if (lit_value(learned[0]) == kUndef) {
        enqueue(learned[0], reason);
      } else if (lit_value(learned[0]) == kFalse) {
        if (trail_lim_.empty()) trivially_unsat_ = true;
        return Result::kUnsat;
      }
      decay();
      if (conflicts_here >= conflict_budget) {
        conflicts_here = 0;
        conflict_budget = 128 * luby(++restart_round);
        backtrack(static_cast<int>(assumptions.size()));
      }
      continue;
    }
    // Re-assert pending assumptions as decision levels.
    if (trail_lim_.size() < assumptions.size()) {
      const Lit a = assumptions[trail_lim_.size()];
      const int l = ilit(a);
      const std::int8_t v = lit_value(l);
      if (v == kFalse) return Result::kUnsat;
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      if (v == kUndef) enqueue(l, -1);
      continue;
    }
    const int branch = pick_branch();
    if (branch < 0) return Result::kSat;
    ++decisions_;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(branch, -1);
  }
}

bool Solver::value(Lit lit) const {
  const std::int8_t v = lit_value(ilit(lit));
  check(v != kUndef, "Solver::value: variable unassigned");
  return v == kTrue;
}

Solver::WarmStart Solver::export_warm_start() const {
  WarmStart warm;
  warm.activity = activity_;
  warm.phase = phase_;
  warm.var_inc = var_inc_;
  return warm;
}

void Solver::import_warm_start(const WarmStart& warm) {
  const std::size_t n = std::min(activity_.size(), warm.activity.size());
  std::copy_n(warm.activity.begin(), n, activity_.begin());
  std::copy_n(warm.phase.begin(), std::min(phase_.size(), warm.phase.size()), phase_.begin());
  if (warm.var_inc > 0) var_inc_ = warm.var_inc;
}

}  // namespace scfi::sat
