// Miter construction helpers: inequality/equality of variable vectors,
// membership in a codeword set, and exactly-one selection — the constraint
// vocabulary of the SYNFI exploitability query.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/solver.h"

namespace scfi::sat {

/// Returns a literal that is true iff the two vectors differ (adds clauses).
Lit differ(Solver& solver, const std::vector<int>& a, const std::vector<int>& b);

/// Constrains `vars` to the constant `value` under activation literal `sel`
/// (sel -> vars == value).
void imply_equals(Solver& solver, Lit sel, const std::vector<int>& vars, std::uint64_t value);

/// Returns a literal that is true iff `vars` equals `value` (adds clauses).
Lit equals_const(Solver& solver, const std::vector<int>& vars, std::uint64_t value);

/// Returns a literal that is true iff `vars` is one of `codes`.
Lit member_of(Solver& solver, const std::vector<int>& vars,
              const std::vector<std::uint64_t>& codes);

/// Adds exactly-one constraints over the selector literals (pairwise).
void exactly_one(Solver& solver, const std::vector<Lit>& sels);

/// Sequential-counter (Sinz) cardinality network over a selector vector,
/// encoded *bidirectionally* so that thresholds can be forced from the
/// assumption side: the counter registers s_{i,j} are constrained
/// s_{i,j} <-> at least j+1 of sels[0..i] are true, for j <= min(i, k_max).
/// One network answers every query "exactly k" / "at most k" for
/// k <= k_max via assumptions — no re-encoding per k, which is what lets a
/// single incremental miter serve a whole k-fault sweep.
class CardinalityCounter {
 public:
  /// Builds the counter clauses immediately. `k_max` bounds the largest
  /// threshold that can later be assumed (rows above k_max are not encoded).
  CardinalityCounter(Solver& solver, const std::vector<Lit>& sels, int k_max);

  /// Literal that is true iff at least `count` selectors are true.
  /// Requires 1 <= count <= min(k_max + 1, sels.size()); one row above
  /// k_max is kept so assume_exactly(k_max) can negate it.
  Lit at_least(int count) const;

  /// Assumption set forcing exactly `k` selectors true (0 <= k <= k_max).
  /// When k == sels.size() the upper bound is vacuous and omitted.
  std::vector<Lit> assume_exactly(int k) const;

  /// Assumption set forcing at most `k` selectors true (0 <= k <= k_max).
  /// Vacuous (empty) when k >= sels.size().
  std::vector<Lit> assume_at_most(int k) const;

  int k_max() const { return k_max_; }
  int num_inputs() const { return static_cast<int>(n_); }

 private:
  std::size_t n_ = 0;
  int k_max_ = 0;
  // rows_[j] holds s_{i,j} for i in [j, n): the "at least j+1" row. Entries
  // are solver variables; rows are ragged because s_{i,j} is constant false
  // for j > i and never materialised.
  std::vector<std::vector<Lit>> rows_;
};

}  // namespace scfi::sat
