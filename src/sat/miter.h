// Miter construction helpers: inequality/equality of variable vectors,
// membership in a codeword set, and exactly-one selection — the constraint
// vocabulary of the SYNFI exploitability query.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/solver.h"

namespace scfi::sat {

/// Returns a literal that is true iff the two vectors differ (adds clauses).
Lit differ(Solver& solver, const std::vector<int>& a, const std::vector<int>& b);

/// Constrains `vars` to the constant `value` under activation literal `sel`
/// (sel -> vars == value).
void imply_equals(Solver& solver, Lit sel, const std::vector<int>& vars, std::uint64_t value);

/// Returns a literal that is true iff `vars` equals `value` (adds clauses).
Lit equals_const(Solver& solver, const std::vector<int>& vars, std::uint64_t value);

/// Returns a literal that is true iff `vars` is one of `codes`.
Lit member_of(Solver& solver, const std::vector<int>& vars,
              const std::vector<std::uint64_t>& codes);

/// Adds exactly-one constraints over the selector literals (pairwise).
void exactly_one(Solver& solver, const std::vector<Lit>& sels);

}  // namespace scfi::sat
