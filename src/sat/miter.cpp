#include "sat/miter.h"

#include "base/error.h"

namespace scfi::sat {

Lit differ(Solver& solver, const std::vector<int>& a, const std::vector<int>& b) {
  check(a.size() == b.size(), "differ: size mismatch");
  std::vector<Lit> any;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int x = solver.new_var();  // x = a[i] XOR b[i]
    solver.add_ternary(-x, a[i], b[i]);
    solver.add_ternary(-x, -a[i], -b[i]);
    solver.add_ternary(x, -a[i], b[i]);
    solver.add_ternary(x, a[i], -b[i]);
    any.push_back(x);
  }
  const int y = solver.new_var();  // y = OR(any)
  std::vector<Lit> clause{-y};
  for (Lit x : any) {
    solver.add_binary(y, -x);
    clause.push_back(x);
  }
  solver.add_clause(clause);
  return y;
}

void imply_equals(Solver& solver, Lit sel, const std::vector<int>& vars, std::uint64_t value) {
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const bool bit = (value >> i) & 1;
    solver.add_binary(-sel, bit ? vars[i] : -vars[i]);
  }
}

Lit equals_const(Solver& solver, const std::vector<int>& vars, std::uint64_t value) {
  const int y = solver.new_var();
  std::vector<Lit> clause{y};
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const bool bit = (value >> i) & 1;
    const Lit lit = bit ? vars[i] : -vars[i];
    solver.add_binary(-y, lit);   // y -> bit matches
    clause.push_back(-lit);       // all bits match -> y
  }
  solver.add_clause(clause);
  return y;
}

Lit member_of(Solver& solver, const std::vector<int>& vars,
              const std::vector<std::uint64_t>& codes) {
  std::vector<Lit> eqs;
  eqs.reserve(codes.size());
  for (std::uint64_t c : codes) eqs.push_back(equals_const(solver, vars, c));
  const int y = solver.new_var();
  std::vector<Lit> clause{-y};
  for (Lit e : eqs) {
    solver.add_binary(y, -e);
    clause.push_back(e);
  }
  solver.add_clause(clause);
  return y;
}

void exactly_one(Solver& solver, const std::vector<Lit>& sels) {
  check(!sels.empty(), "exactly_one: empty selector set");
  solver.add_clause(sels);
  const std::size_t n = sels.size();
  if (n <= 32) {
    // Pairwise at-most-one: no auxiliary variables, fine for small sets.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        solver.add_binary(-sels[i], -sels[j]);
      }
    }
    return;
  }
  // Sequential (Sinz) at-most-one: O(n) clauses instead of O(n^2), which
  // keeps selector-gated fault miters tractable for thousands of sites.
  // s_i == "some sels[j] with j <= i is true".
  int prev = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const int s = solver.new_var();
    solver.add_binary(-sels[i], s);
    if (prev != 0) {
      solver.add_binary(-prev, s);
      solver.add_binary(-sels[i], -prev);
    }
    prev = s;
  }
  solver.add_binary(-sels[n - 1], -prev);
}

CardinalityCounter::CardinalityCounter(Solver& solver, const std::vector<Lit>& sels,
                                       int k_max)
    : n_(sels.size()), k_max_(k_max) {
  check(!sels.empty(), "CardinalityCounter: empty selector set");
  check(k_max >= 1, "CardinalityCounter: k_max must be >= 1");
  // Row j encodes the threshold "at least j+1 true". Row k_max exists (when
  // the input count allows it) purely so exactly-k_max can negate it.
  const int jmax = std::min(k_max_, static_cast<int>(n_) - 1);
  rows_.resize(static_cast<std::size_t>(jmax) + 1);
  for (int j = 0; j <= jmax; ++j) rows_[j].resize(n_ - static_cast<std::size_t>(j));
  const auto at = [&](std::size_t i, int j) -> Lit { return rows_[j][i - j]; };
  // Base column i = 0: s_{0,0} <-> sels[0]; s_{0,j>=1} is constant false and
  // never materialised (the ragged rows simply start at i = j).
  rows_[0][0] = solver.new_var();
  solver.add_binary(-sels[0], rows_[0][0]);
  solver.add_binary(-rows_[0][0], sels[0]);
  for (std::size_t i = 1; i < n_; ++i) {
    const int jhi = std::min(jmax, static_cast<int>(i));
    for (int j = 0; j <= jhi; ++j) {
      const Lit s = solver.new_var();
      rows_[j][i - j] = s;
      // s_{i-1,j} is constant false on the diagonal (j == i); clauses where
      // it appears positively drop the literal, clauses where it appears
      // negatively are vacuously true and dropped entirely.
      const bool have_prev = j < static_cast<int>(i);
      if (j == 0) {
        // Forward: carry the count and absorb sels[i].
        solver.add_binary(-at(i - 1, 0), s);
        solver.add_binary(-sels[i], s);
        // Backward: s_{i,0} -> s_{i-1,0} v sels[i].
        solver.add_ternary(-s, at(i - 1, 0), sels[i]);
      } else {
        const Lit below = at(i - 1, j - 1);
        if (have_prev) solver.add_binary(-at(i - 1, j), s);
        solver.add_ternary(-sels[i], -below, s);
        // Backward: s_{i,j} -> s_{i-1,j} v (sels[i] ^ s_{i-1,j-1}).
        if (have_prev) {
          solver.add_ternary(-s, at(i - 1, j), sels[i]);
          solver.add_ternary(-s, at(i - 1, j), below);
        } else {
          solver.add_binary(-s, sels[i]);
          solver.add_binary(-s, below);
        }
      }
    }
  }
}

Lit CardinalityCounter::at_least(int count) const {
  check(count >= 1 && count <= static_cast<int>(rows_.size()),
        "CardinalityCounter::at_least: count outside the encoded rows");
  return rows_[count - 1].back();  // s_{n-1, count-1}
}

std::vector<Lit> CardinalityCounter::assume_exactly(int k) const {
  check(k >= 0 && k <= k_max_, "assume_exactly: k exceeds k_max");
  check(k <= static_cast<int>(n_), "assume_exactly: k exceeds the selector count");
  std::vector<Lit> out;
  if (k >= 1) out.push_back(at_least(k));
  if (k < static_cast<int>(n_)) out.push_back(-at_least(k + 1));
  return out;
}

std::vector<Lit> CardinalityCounter::assume_at_most(int k) const {
  check(k >= 0 && k <= k_max_, "assume_at_most: k exceeds k_max");
  if (k >= static_cast<int>(n_)) return {};
  return {-at_least(k + 1)};
}

}  // namespace scfi::sat
