#include "sat/miter.h"

#include "base/error.h"

namespace scfi::sat {

Lit differ(Solver& solver, const std::vector<int>& a, const std::vector<int>& b) {
  check(a.size() == b.size(), "differ: size mismatch");
  std::vector<Lit> any;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int x = solver.new_var();  // x = a[i] XOR b[i]
    solver.add_ternary(-x, a[i], b[i]);
    solver.add_ternary(-x, -a[i], -b[i]);
    solver.add_ternary(x, -a[i], b[i]);
    solver.add_ternary(x, a[i], -b[i]);
    any.push_back(x);
  }
  const int y = solver.new_var();  // y = OR(any)
  std::vector<Lit> clause{-y};
  for (Lit x : any) {
    solver.add_binary(y, -x);
    clause.push_back(x);
  }
  solver.add_clause(clause);
  return y;
}

void imply_equals(Solver& solver, Lit sel, const std::vector<int>& vars, std::uint64_t value) {
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const bool bit = (value >> i) & 1;
    solver.add_binary(-sel, bit ? vars[i] : -vars[i]);
  }
}

Lit equals_const(Solver& solver, const std::vector<int>& vars, std::uint64_t value) {
  const int y = solver.new_var();
  std::vector<Lit> clause{y};
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const bool bit = (value >> i) & 1;
    const Lit lit = bit ? vars[i] : -vars[i];
    solver.add_binary(-y, lit);   // y -> bit matches
    clause.push_back(-lit);       // all bits match -> y
  }
  solver.add_clause(clause);
  return y;
}

Lit member_of(Solver& solver, const std::vector<int>& vars,
              const std::vector<std::uint64_t>& codes) {
  std::vector<Lit> eqs;
  eqs.reserve(codes.size());
  for (std::uint64_t c : codes) eqs.push_back(equals_const(solver, vars, c));
  const int y = solver.new_var();
  std::vector<Lit> clause{-y};
  for (Lit e : eqs) {
    solver.add_binary(y, -e);
    clause.push_back(e);
  }
  solver.add_clause(clause);
  return y;
}

void exactly_one(Solver& solver, const std::vector<Lit>& sels) {
  check(!sels.empty(), "exactly_one: empty selector set");
  solver.add_clause(sels);
  const std::size_t n = sels.size();
  if (n <= 32) {
    // Pairwise at-most-one: no auxiliary variables, fine for small sets.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        solver.add_binary(-sels[i], -sels[j]);
      }
    }
    return;
  }
  // Sequential (Sinz) at-most-one: O(n) clauses instead of O(n^2), which
  // keeps selector-gated fault miters tractable for thousands of sites.
  // s_i == "some sels[j] with j <= i is true".
  int prev = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const int s = solver.new_var();
    solver.add_binary(-sels[i], s);
    if (prev != 0) {
      solver.add_binary(-prev, s);
      solver.add_binary(-sels[i], -prev);
    }
    prev = s;
  }
  solver.add_binary(-sels[n - 1], -prev);
}

}  // namespace scfi::sat
