// Tseitin encoding of netlists into CNF, with support for shared-input
// module copies and single-net fault overrides (the building block of the
// SYNFI fault miters).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlil/validate.h"
#include "sat/solver.h"

namespace scfi::sat {

enum class CnfFaultKind { kFlip, kStuckAt0, kStuckAt1 };

struct CnfFault {
  rtlil::SigBit bit;  ///< faulted net (as its readers see it)
  CnfFaultKind kind = CnfFaultKind::kFlip;
  /// Activation literal: 0 = always-on (the classic single-fault miter).
  /// Otherwise the override is conditional — selector true injects the
  /// fault, selector false makes the net pass through unchanged. Gating
  /// many faults on fresh selectors (plus `exactly_one`) turns one encoded
  /// copy into a whole family of single-fault miters answerable via
  /// `Solver::solve(assumptions)`.
  Lit selector = 0;
};

/// One encoded copy of a module.
class CnfCopy {
 public:
  /// Encodes the combinational logic of `module` into `solver`.
  /// `bound` pre-binds wire bits to existing solver variables (use it to
  /// share inputs and state registers between copies). Flip-flops are cut:
  /// their Q bits become free variables (unless bound), their D bits are
  /// readable outputs.
  CnfCopy(Solver& solver, const rtlil::Module& module,
          const std::unordered_map<rtlil::SigBit, int>& bound,
          const std::optional<CnfFault>& fault = std::nullopt);

  /// Same, with any number of (optionally selector-gated) fault overrides.
  /// Fault sites must be distinct bits.
  CnfCopy(Solver& solver, const rtlil::Module& module,
          const std::unordered_map<rtlil::SigBit, int>& bound,
          const std::vector<CnfFault>& faults);

  /// Variable carrying the value of `bit` as seen by readers in this copy
  /// (i.e. after the fault override, when it targets `bit`).
  int reader_var(const rtlil::SigBit& bit) const;

  /// Variable of the bit as driven (pre-fault).
  int driven_var(const rtlil::SigBit& bit) const;

  /// Convenience: reader variables of a whole wire, LSB first.
  std::vector<int> wire_vars(const std::string& wire) const;

  /// Reader variables of a flip-flop D pin, LSB first (the "next value").
  std::vector<int> ff_next_vars(const std::string& q_wire) const;

  Solver& solver() const { return *solver_; }

 private:
  /// Readers' view of a faulted net (0 when `bit` has no fault override).
  int fault_override(const rtlil::SigBit& bit) const;
  int lookup(const rtlil::SigBit& bit);  ///< creates free vars on demand
  int lookup_driven(const rtlil::SigBit& bit);
  void encode_cell(const rtlil::Cell& cell);
  int emit_tree_and(std::vector<int> terms);
  int emit_and(int a, int b);
  int emit_or(int a, int b);
  int emit_xor(int a, int b);
  int emit_xnor(int a, int b);
  int emit_not(int a);
  int emit_mux(int s, int a, int b);

  Solver* solver_;
  const rtlil::Module* module_;
  std::unordered_map<rtlil::SigBit, int> vars_;  ///< driven values
  std::vector<CnfFault> faults_;
  std::vector<int> fault_vars_;                         ///< readers' view per fault
  std::unordered_map<rtlil::SigBit, std::size_t> fault_index_;
  int const_true_ = 0;
};

}  // namespace scfi::sat
