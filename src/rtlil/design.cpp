#include "rtlil/design.h"

#include <algorithm>

#include "base/error.h"

namespace scfi::rtlil {

Module* Design::add_module(const std::string& name) {
  require(modules_.count(name) == 0, "duplicate module name: " + name);
  auto mod = std::make_unique<Module>(name);
  Module* raw = mod.get();
  modules_.emplace(name, std::move(mod));
  order_.push_back(raw);
  return raw;
}

Module* Design::module(const std::string& name) const {
  const auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second.get();
}

void Design::remove_module(const std::string& name) {
  Module* m = module(name);
  if (m == nullptr) return;
  order_.erase(std::remove(order_.begin(), order_.end(), m), order_.end());
  modules_.erase(name);
}

}  // namespace scfi::rtlil
