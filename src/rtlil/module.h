// Module: owns wires and cells, provides the word-level builder API used by
// the FSM compiler, the SCFI pass and the datapath library.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlil/cell.h"
#include "rtlil/sig.h"

namespace scfi::rtlil {

class Wire {
 public:
  Wire(std::string name, int width) : name_(std::move(name)), width_(width) {}

  const std::string& name() const { return name_; }
  int width() const { return width_; }

  bool is_input() const { return input_; }
  bool is_output() const { return output_; }
  void set_input(bool v) { input_ = v; }
  void set_output(bool v) { output_ = v; }

 private:
  std::string name_;
  int width_;
  bool input_ = false;
  bool output_ = false;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  // --- wires -------------------------------------------------------------
  Wire* add_wire(const std::string& name, int width);
  Wire* add_input(const std::string& name, int width);
  Wire* add_output(const std::string& name, int width);
  Wire* wire(const std::string& name) const;  ///< nullptr when absent
  const std::vector<Wire*>& wires() const { return wire_order_; }

  /// Removes a wire that is no longer referenced by any cell (caller's
  /// responsibility; validate() catches violations).
  void remove_wires(const std::vector<Wire*>& dead);

  // --- cells -------------------------------------------------------------
  Cell* add_cell(const std::string& name, CellType type);
  void remove_cells(const std::vector<Cell*>& dead);
  const std::vector<Cell*>& cells() const { return cell_order_; }

  /// Generates a fresh name with the given prefix.
  std::string uniquify(const std::string& prefix);

  // --- word-level builders (each returns the Y/Q output spec) -------------
  SigSpec make_not(const SigSpec& a, const std::string& hint = "not");
  SigSpec make_and(const SigSpec& a, const SigSpec& b, const std::string& hint = "and");
  SigSpec make_or(const SigSpec& a, const SigSpec& b, const std::string& hint = "or");
  SigSpec make_xor(const SigSpec& a, const SigSpec& b, const std::string& hint = "xor");
  SigSpec make_xnor(const SigSpec& a, const SigSpec& b, const std::string& hint = "xnor");
  SigSpec make_mux(const SigSpec& s, const SigSpec& a, const SigSpec& b,
                   const std::string& hint = "mux");
  SigSpec make_eq(const SigSpec& a, const SigSpec& b, const std::string& hint = "eq");
  SigSpec make_reduce_and(const SigSpec& a, const std::string& hint = "rand");
  SigSpec make_reduce_or(const SigSpec& a, const std::string& hint = "ror");
  SigSpec make_reduce_xor(const SigSpec& a, const std::string& hint = "rxor");
  SigSpec make_buf(const SigSpec& a, const std::string& hint = "buf");
  /// D flip-flop with reset value; returns Q.
  SigSpec make_dff(const SigSpec& d, const Const& reset, const std::string& hint = "dff");
  /// Drives an existing signal (typically an output port wire) from `src`
  /// through a Buf cell.
  void drive(const SigSpec& dst, const SigSpec& src);

 private:
  SigSpec fresh(int width, const std::string& hint);

  std::string name_;
  std::unordered_map<std::string, std::unique_ptr<Wire>> wires_;
  std::unordered_map<std::string, std::unique_ptr<Cell>> cells_;
  std::vector<Wire*> wire_order_;
  std::vector<Cell*> cell_order_;
  std::uint64_t name_counter_ = 0;
};

}  // namespace scfi::rtlil
