// Signal model of the netlist IR: constants, wires, bits and bit vectors.
//
// This follows the Yosys RTLIL design: a SigBit is either a constant 0/1 or
// one bit of a named Wire; a SigSpec is an ordered list of SigBits and is the
// universal currency for cell port connections.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace scfi::rtlil {

class Wire;

/// A constant bit vector (LSB first).
class Const {
 public:
  Const() = default;
  explicit Const(std::vector<bool> bits) : bits_(std::move(bits)) {}

  static Const from_uint(std::uint64_t value, int width);

  int width() const { return static_cast<int>(bits_.size()); }
  bool bit(int i) const { return bits_.at(static_cast<std::size_t>(i)); }
  std::uint64_t to_uint() const;
  std::string to_string() const;  ///< MSB-first binary

  bool operator==(const Const& other) const = default;

 private:
  std::vector<bool> bits_;
};

/// One bit: either a constant or wire[offset].
struct SigBit {
  const Wire* wire = nullptr;  ///< nullptr for constants
  int offset = 0;              ///< bit offset within the wire, or const value 0/1

  SigBit() = default;
  explicit SigBit(bool value) : wire(nullptr), offset(value ? 1 : 0) {}
  SigBit(const Wire* w, int off) : wire(w), offset(off) {}

  bool is_const() const { return wire == nullptr; }
  bool const_value() const { return offset != 0; }

  bool operator==(const SigBit& other) const = default;
};

/// An ordered, possibly mixed, list of bits (LSB first).
class SigSpec {
 public:
  SigSpec() = default;
  SigSpec(const Wire* wire);                 // NOLINT(google-explicit-constructor)
  SigSpec(const Const& value);               // NOLINT(google-explicit-constructor)
  SigSpec(SigBit bit) : bits_{bit} {}        // NOLINT(google-explicit-constructor)
  explicit SigSpec(std::vector<SigBit> bits) : bits_(std::move(bits)) {}

  int width() const { return static_cast<int>(bits_.size()); }
  bool empty() const { return bits_.empty(); }
  SigBit bit(int i) const { return bits_.at(static_cast<std::size_t>(i)); }
  const std::vector<SigBit>& bits() const { return bits_; }

  /// Appends `other` above the current MSB.
  void append(const SigSpec& other);

  /// Extracts bits [lo, lo+len).
  SigSpec extract(int lo, int len) const;

  /// True when every bit is a constant.
  bool is_fully_const() const;

  /// Interprets a fully-constant spec as an unsigned integer (width <= 64).
  std::uint64_t const_to_uint() const;

  bool operator==(const SigSpec& other) const = default;

 private:
  std::vector<SigBit> bits_;
};

/// Concatenates specs, LSB-first (first argument is least significant).
SigSpec concat(const std::vector<SigSpec>& parts);

}  // namespace scfi::rtlil

template <>
struct std::hash<scfi::rtlil::SigBit> {
  std::size_t operator()(const scfi::rtlil::SigBit& b) const noexcept {
    return std::hash<const void*>()(b.wire) * 31 + static_cast<std::size_t>(b.offset);
  }
};
