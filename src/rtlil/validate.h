// Structural validation and netlist indexing.
//
// NetlistIndex computes, for a module, the driver of every wire bit and a
// topological order of the combinational cells (throwing on combinational
// loops). It is the shared backbone of the simulator, static timing analysis
// and the optimization passes.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "rtlil/module.h"

namespace scfi::rtlil {

/// Names of the output ports of a cell type ("Y" or "Q").
const char* output_port(CellType type);

/// Names of the input ports of a cell type, in canonical order.
std::vector<std::string> input_ports(CellType type);

/// Validates port presence/widths and driver uniqueness; throws ScfiError
/// with a diagnostic on the first violation. Also rejects combinational
/// loops (via NetlistIndex).
void validate_module(const Module& module);

class NetlistIndex {
 public:
  explicit NetlistIndex(const Module& module);

  const Module& module() const { return *module_; }

  /// Driving cell of a wire bit; nullptr for inputs/undriven bits.
  Cell* driver(const SigBit& bit) const;

  /// Combinational cells in dependency order (inputs/FF outputs first).
  const std::vector<Cell*>& topo_comb() const { return topo_comb_; }

  /// All flip-flop cells.
  const std::vector<Cell*>& ffs() const { return ffs_; }

  /// All cells reading a given wire bit.
  std::vector<Cell*> readers(const SigBit& bit) const;

 private:
  const Module* module_;
  std::unordered_map<SigBit, Cell*> driver_;
  std::unordered_map<SigBit, std::vector<Cell*>> readers_;
  std::vector<Cell*> topo_comb_;
  std::vector<Cell*> ffs_;
};

}  // namespace scfi::rtlil
