#include "rtlil/module.h"

#include <algorithm>

#include "base/error.h"
#include "base/strutil.h"

namespace scfi::rtlil {

Wire* Module::add_wire(const std::string& name, int width) {
  require(width > 0, "wire " + name + " must have positive width");
  require(wires_.count(name) == 0, "duplicate wire name: " + name);
  auto wire = std::make_unique<Wire>(name, width);
  Wire* raw = wire.get();
  wires_.emplace(name, std::move(wire));
  wire_order_.push_back(raw);
  return raw;
}

Wire* Module::add_input(const std::string& name, int width) {
  Wire* w = add_wire(name, width);
  w->set_input(true);
  return w;
}

Wire* Module::add_output(const std::string& name, int width) {
  Wire* w = add_wire(name, width);
  w->set_output(true);
  return w;
}

Wire* Module::wire(const std::string& name) const {
  const auto it = wires_.find(name);
  return it == wires_.end() ? nullptr : it->second.get();
}

void Module::remove_wires(const std::vector<Wire*>& dead) {
  for (Wire* w : dead) {
    wire_order_.erase(std::remove(wire_order_.begin(), wire_order_.end(), w), wire_order_.end());
    wires_.erase(w->name());
  }
}

Cell* Module::add_cell(const std::string& name, CellType type) {
  require(cells_.count(name) == 0, "duplicate cell name: " + name);
  auto cell = std::make_unique<Cell>(name, type);
  Cell* raw = cell.get();
  cells_.emplace(name, std::move(cell));
  cell_order_.push_back(raw);
  return raw;
}

void Module::remove_cells(const std::vector<Cell*>& dead) {
  for (Cell* c : dead) {
    cell_order_.erase(std::remove(cell_order_.begin(), cell_order_.end(), c), cell_order_.end());
    cells_.erase(c->name());
  }
}

std::string Module::uniquify(const std::string& prefix) {
  for (;;) {
    std::string cand = prefix + "_" + std::to_string(name_counter_++);
    if (wires_.count(cand) == 0 && cells_.count(cand) == 0) return cand;
  }
}

SigSpec Module::fresh(int width, const std::string& hint) {
  return SigSpec(add_wire(uniquify(hint), width));
}

namespace {
void same_width(const SigSpec& a, const SigSpec& b, const char* what) {
  check(a.width() == b.width(), std::string(what) + ": operand width mismatch");
}
}  // namespace

SigSpec Module::make_not(const SigSpec& a, const std::string& hint) {
  SigSpec y = fresh(a.width(), hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kNot);
  c->set_port("A", a);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_and(const SigSpec& a, const SigSpec& b, const std::string& hint) {
  same_width(a, b, "$and");
  SigSpec y = fresh(a.width(), hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kAnd);
  c->set_port("A", a);
  c->set_port("B", b);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_or(const SigSpec& a, const SigSpec& b, const std::string& hint) {
  same_width(a, b, "$or");
  SigSpec y = fresh(a.width(), hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kOr);
  c->set_port("A", a);
  c->set_port("B", b);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_xor(const SigSpec& a, const SigSpec& b, const std::string& hint) {
  same_width(a, b, "$xor");
  SigSpec y = fresh(a.width(), hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kXor);
  c->set_port("A", a);
  c->set_port("B", b);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_xnor(const SigSpec& a, const SigSpec& b, const std::string& hint) {
  same_width(a, b, "$xnor");
  SigSpec y = fresh(a.width(), hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kXnor);
  c->set_port("A", a);
  c->set_port("B", b);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_mux(const SigSpec& s, const SigSpec& a, const SigSpec& b,
                         const std::string& hint) {
  same_width(a, b, "$mux");
  check(s.width() == 1, "$mux: select must be one bit");
  SigSpec y = fresh(a.width(), hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kMux);
  c->set_port("S", s);
  c->set_port("A", a);
  c->set_port("B", b);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_eq(const SigSpec& a, const SigSpec& b, const std::string& hint) {
  same_width(a, b, "$eq");
  SigSpec y = fresh(1, hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kEq);
  c->set_port("A", a);
  c->set_port("B", b);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_reduce_and(const SigSpec& a, const std::string& hint) {
  SigSpec y = fresh(1, hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kReduceAnd);
  c->set_port("A", a);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_reduce_or(const SigSpec& a, const std::string& hint) {
  SigSpec y = fresh(1, hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kReduceOr);
  c->set_port("A", a);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_reduce_xor(const SigSpec& a, const std::string& hint) {
  SigSpec y = fresh(1, hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kReduceXor);
  c->set_port("A", a);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_buf(const SigSpec& a, const std::string& hint) {
  SigSpec y = fresh(a.width(), hint);
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kBuf);
  c->set_port("A", a);
  c->set_port("Y", y);
  return y;
}

SigSpec Module::make_dff(const SigSpec& d, const Const& reset, const std::string& hint) {
  check(reset.width() == d.width(), "$dff: reset width mismatch");
  SigSpec q = fresh(d.width(), hint + "_q");
  Cell* c = add_cell(uniquify(hint + "_c"), CellType::kDff);
  c->set_port("D", d);
  c->set_port("Q", q);
  c->set_reset_value(reset);
  return q;
}

void Module::drive(const SigSpec& dst, const SigSpec& src) {
  same_width(dst, src, "drive");
  Cell* c = add_cell(uniquify("drv_c"), CellType::kBuf);
  c->set_port("A", src);
  c->set_port("Y", dst);
}

}  // namespace scfi::rtlil
