#include "rtlil/cell.h"

#include "base/error.h"

namespace scfi::rtlil {

bool is_word_level(CellType type) {
  switch (type) {
    case CellType::kNot:
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kXor:
    case CellType::kXnor:
    case CellType::kMux:
    case CellType::kEq:
    case CellType::kReduceAnd:
    case CellType::kReduceOr:
    case CellType::kReduceXor:
    case CellType::kBuf:
    case CellType::kDff:
      return true;
    default:
      return false;
  }
}

bool is_ff(CellType type) { return type == CellType::kDff || type == CellType::kGateDff; }

bool is_gate(CellType type) { return !is_word_level(type); }

const char* cell_type_name(CellType type) {
  switch (type) {
    case CellType::kNot: return "$not";
    case CellType::kAnd: return "$and";
    case CellType::kOr: return "$or";
    case CellType::kXor: return "$xor";
    case CellType::kXnor: return "$xnor";
    case CellType::kMux: return "$mux";
    case CellType::kEq: return "$eq";
    case CellType::kReduceAnd: return "$reduce_and";
    case CellType::kReduceOr: return "$reduce_or";
    case CellType::kReduceXor: return "$reduce_xor";
    case CellType::kBuf: return "$buf";
    case CellType::kDff: return "$dff";
    case CellType::kGateInv: return "INV";
    case CellType::kGateBuf: return "BUF";
    case CellType::kGateNand2: return "NAND2";
    case CellType::kGateNor2: return "NOR2";
    case CellType::kGateAnd2: return "AND2";
    case CellType::kGateOr2: return "OR2";
    case CellType::kGateXor2: return "XOR2";
    case CellType::kGateXnor2: return "XNOR2";
    case CellType::kGateMux2: return "MUX2";
    case CellType::kGateAoi21: return "AOI21";
    case CellType::kGateOai21: return "OAI21";
    case CellType::kGateDff: return "DFF";
  }
  unreachable("cell_type_name: unknown type");
}

const SigSpec& Cell::port(const std::string& port) const {
  const auto it = ports_.find(port);
  check(it != ports_.end(), "cell " + name_ + " has no port " + port);
  return it->second;
}

void Cell::set_port(const std::string& port, SigSpec sig) { ports_[port] = std::move(sig); }

}  // namespace scfi::rtlil
