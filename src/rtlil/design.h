// Design: a named collection of modules (no hierarchy — every module is
// self-contained, as produced by flattening in a conventional flow).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlil/module.h"

namespace scfi::rtlil {

class Design {
 public:
  Design() = default;
  Design(const Design&) = delete;
  Design& operator=(const Design&) = delete;

  Module* add_module(const std::string& name);
  Module* module(const std::string& name) const;  ///< nullptr when absent
  const std::vector<Module*>& modules() const { return order_; }
  void remove_module(const std::string& name);

 private:
  std::unordered_map<std::string, std::unique_ptr<Module>> modules_;
  std::vector<Module*> order_;
};

}  // namespace scfi::rtlil
