#include "rtlil/validate.h"

#include <deque>

#include "base/error.h"

namespace scfi::rtlil {

const char* output_port(CellType type) {
  return is_ff(type) ? "Q" : "Y";
}

std::vector<std::string> input_ports(CellType type) {
  switch (type) {
    case CellType::kNot:
    case CellType::kBuf:
    case CellType::kReduceAnd:
    case CellType::kReduceOr:
    case CellType::kReduceXor:
    case CellType::kGateInv:
    case CellType::kGateBuf:
      return {"A"};
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kXor:
    case CellType::kXnor:
    case CellType::kEq:
    case CellType::kGateNand2:
    case CellType::kGateNor2:
    case CellType::kGateAnd2:
    case CellType::kGateOr2:
    case CellType::kGateXor2:
    case CellType::kGateXnor2:
      return {"A", "B"};
    case CellType::kMux:
    case CellType::kGateMux2:
      return {"A", "B", "S"};
    case CellType::kGateAoi21:
    case CellType::kGateOai21:
      return {"A", "B", "C"};
    case CellType::kDff:
    case CellType::kGateDff:
      return {"D"};
  }
  unreachable("input_ports: unknown cell type");
}

namespace {

void check_widths(const Cell& cell) {
  const auto fail = [&cell](const std::string& msg) {
    throw ScfiError("cell " + cell.name() + " (" + cell_type_name(cell.type()) + "): " + msg);
  };
  const auto need = [&](const char* port) -> const SigSpec& {
    if (!cell.has_port(port)) fail(std::string("missing port ") + port);
    return cell.port(port);
  };
  const SigSpec& y = need(output_port(cell.type()));
  switch (cell.type()) {
    case CellType::kNot:
    case CellType::kBuf:
      if (need("A").width() != y.width()) fail("A/Y width mismatch");
      break;
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kXor:
    case CellType::kXnor:
      if (need("A").width() != y.width() || need("B").width() != y.width()) {
        fail("A/B/Y width mismatch");
      }
      break;
    case CellType::kMux:
      if (need("A").width() != y.width() || need("B").width() != y.width()) {
        fail("A/B/Y width mismatch");
      }
      if (need("S").width() != 1) fail("S must be 1 bit");
      break;
    case CellType::kEq:
      if (need("A").width() != need("B").width()) fail("A/B width mismatch");
      if (y.width() != 1) fail("Y must be 1 bit");
      break;
    case CellType::kReduceAnd:
    case CellType::kReduceOr:
    case CellType::kReduceXor:
      need("A");
      if (y.width() != 1) fail("Y must be 1 bit");
      break;
    case CellType::kDff:
      if (need("D").width() != y.width()) fail("D/Q width mismatch");
      if (cell.reset_value().width() != y.width()) fail("reset width mismatch");
      break;
    case CellType::kGateDff:
      if (need("D").width() != 1 || y.width() != 1) fail("gate DFF must be 1 bit");
      if (cell.reset_value().width() != 1) fail("reset width mismatch");
      break;
    default:
      // One-bit gates.
      for (const std::string& p : input_ports(cell.type())) {
        if (need(p.c_str()).width() != 1) fail("port " + p + " must be 1 bit");
      }
      if (y.width() != 1) fail("Y must be 1 bit");
      break;
  }
}

}  // namespace

NetlistIndex::NetlistIndex(const Module& module) : module_(&module) {
  for (Cell* cell : module.cells()) {
    check_widths(*cell);
    const SigSpec& out = cell->port(output_port(cell->type()));
    for (const SigBit& bit : out.bits()) {
      require(!bit.is_const(), "cell " + cell->name() + " drives a constant bit");
      require(!bit.wire->is_input(), "cell " + cell->name() + " drives input wire " +
                                         bit.wire->name());
      const auto [it, inserted] = driver_.emplace(bit, cell);
      require(inserted, "multiple drivers on wire " + bit.wire->name() + " (cells " +
                            it->second->name() + ", " + cell->name() + ")");
    }
    for (const std::string& p : input_ports(cell->type())) {
      for (const SigBit& bit : cell->port(p).bits()) {
        if (!bit.is_const()) readers_[bit].push_back(cell);
      }
    }
    if (is_ff(cell->type())) ffs_.push_back(cell);
  }

  // Kahn topological sort of combinational cells. FF outputs and module
  // inputs have no combinational driver and act as sources.
  std::unordered_map<Cell*, int> pending;
  std::deque<Cell*> ready;
  for (Cell* cell : module.cells()) {
    if (is_ff(cell->type())) continue;
    int deps = 0;
    for (const std::string& p : input_ports(cell->type())) {
      for (const SigBit& bit : cell->port(p).bits()) {
        if (bit.is_const()) continue;
        const auto it = driver_.find(bit);
        if (it != driver_.end() && !is_ff(it->second->type())) ++deps;
      }
    }
    pending[cell] = deps;
    if (deps == 0) ready.push_back(cell);
  }
  while (!ready.empty()) {
    Cell* cell = ready.front();
    ready.pop_front();
    topo_comb_.push_back(cell);
    for (const SigBit& bit : cell->port(output_port(cell->type())).bits()) {
      const auto it = readers_.find(bit);
      if (it == readers_.end()) continue;
      for (Cell* reader : it->second) {
        if (is_ff(reader->type())) continue;
        if (--pending[reader] == 0) ready.push_back(reader);
      }
    }
  }
  std::size_t comb_count = 0;
  for (Cell* cell : module.cells()) {
    if (!is_ff(cell->type())) ++comb_count;
  }
  if (topo_comb_.size() != comb_count) {
    throw ScfiError("module " + module.name() + ": combinational loop detected");
  }
}

Cell* NetlistIndex::driver(const SigBit& bit) const {
  const auto it = driver_.find(bit);
  return it == driver_.end() ? nullptr : it->second;
}

std::vector<Cell*> NetlistIndex::readers(const SigBit& bit) const {
  const auto it = readers_.find(bit);
  return it == readers_.end() ? std::vector<Cell*>() : it->second;
}

void validate_module(const Module& module) {
  NetlistIndex index(module);  // performs all checks
  (void)index;
}

}  // namespace scfi::rtlil
