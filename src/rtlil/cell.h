// Cell model: word-level operators (Yosys-style) and mapped standard-cell
// gates live in one type system so passes can handle mixed netlists.
#pragma once

#include <map>
#include <string>

#include "rtlil/sig.h"

namespace scfi::rtlil {

enum class CellType {
  // Word-level cells (arbitrary width, bitwise unless noted).
  kNot,        // Y = ~A
  kAnd,        // Y = A & B
  kOr,         // Y = A | B
  kXor,        // Y = A ^ B
  kXnor,       // Y = ~(A ^ B)
  kMux,        // Y = S ? B : A          (S is 1 bit)
  kEq,         // Y = (A == B)           (Y is 1 bit)
  kReduceAnd,  // Y = &A                 (Y is 1 bit)
  kReduceOr,   // Y = |A                 (Y is 1 bit)
  kReduceXor,  // Y = ^A                 (Y is 1 bit)
  kBuf,        // Y = A (alias; removed by opt_clean)
  kDff,        // Q <= D, with a reset Const applied by the simulator/reset
  // One-bit standard-cell gates (after lowering / technology mapping).
  kGateInv,    // Y = !A
  kGateBuf,    // Y = A
  kGateNand2,  // Y = !(A & B)
  kGateNor2,   // Y = !(A | B)
  kGateAnd2,   // Y = A & B
  kGateOr2,    // Y = A | B
  kGateXor2,   // Y = A ^ B
  kGateXnor2,  // Y = !(A ^ B)
  kGateMux2,   // Y = S ? B : A
  kGateAoi21,  // Y = !((A & B) | C)
  kGateOai21,  // Y = !((A | B) & C)
  kGateDff,    // Q <= D (1 bit), param reset bit
};

/// True for word-level types that the lowering pass must decompose.
bool is_word_level(CellType type);

/// True for the two flip-flop types.
bool is_ff(CellType type);

/// True for single-bit mapped gates (including kGateDff).
bool is_gate(CellType type);

const char* cell_type_name(CellType type);

class Cell {
 public:
  Cell(std::string name, CellType type) : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  CellType type() const { return type_; }
  void set_type(CellType t) { type_ = t; }

  bool has_port(const std::string& port) const { return ports_.count(port) != 0; }
  const SigSpec& port(const std::string& port) const;
  void set_port(const std::string& port, SigSpec sig);
  void unset_port(const std::string& port) { ports_.erase(port); }
  const std::map<std::string, SigSpec>& ports() const { return ports_; }

  /// Reset value for kDff/kGateDff cells (width matches Q).
  const Const& reset_value() const { return reset_; }
  void set_reset_value(Const value) { reset_ = std::move(value); }

  /// Drive-strength index into the techlib variants (0 = X1).
  int drive() const { return drive_; }
  void set_drive(int d) { drive_ = d; }

  /// Cells in different share groups are never merged by the optimizer's
  /// structural sharing pass. Used to keep manually instantiated redundant
  /// logic copies physically separate (paper §6.1(ii) / §6.4 note on
  /// optimizers weakening redundancy-based countermeasures).
  int share_group() const { return share_group_; }
  void set_share_group(int g) { share_group_ = g; }

 private:
  std::string name_;
  CellType type_;
  std::map<std::string, SigSpec> ports_;
  Const reset_;
  int drive_ = 0;
  int share_group_ = 0;
};

}  // namespace scfi::rtlil
