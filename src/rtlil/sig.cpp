#include "rtlil/sig.h"

#include "base/error.h"
#include "rtlil/module.h"

namespace scfi::rtlil {

Const Const::from_uint(std::uint64_t value, int width) {
  check(width >= 0 && width <= 64, "Const::from_uint width out of range");
  std::vector<bool> bits(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bits[static_cast<std::size_t>(i)] = (value >> i) & 1;
  return Const(std::move(bits));
}

std::uint64_t Const::to_uint() const {
  check(width() <= 64, "Const::to_uint width out of range");
  std::uint64_t v = 0;
  for (int i = 0; i < width(); ++i) {
    if (bit(i)) v |= 1ULL << i;
  }
  return v;
}

std::string Const::to_string() const {
  std::string s(static_cast<std::size_t>(width()), '0');
  for (int i = 0; i < width(); ++i) {
    if (bit(i)) s[static_cast<std::size_t>(width() - 1 - i)] = '1';
  }
  return s;
}

SigSpec::SigSpec(const Wire* wire) {
  check(wire != nullptr, "SigSpec from null wire");
  bits_.reserve(static_cast<std::size_t>(wire->width()));
  for (int i = 0; i < wire->width(); ++i) bits_.emplace_back(wire, i);
}

SigSpec::SigSpec(const Const& value) {
  bits_.reserve(static_cast<std::size_t>(value.width()));
  for (int i = 0; i < value.width(); ++i) bits_.emplace_back(SigBit(value.bit(i)));
}

void SigSpec::append(const SigSpec& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

SigSpec SigSpec::extract(int lo, int len) const {
  check(lo >= 0 && len >= 0 && lo + len <= width(), "SigSpec::extract out of range");
  return SigSpec(std::vector<SigBit>(bits_.begin() + lo, bits_.begin() + lo + len));
}

bool SigSpec::is_fully_const() const {
  for (const SigBit& b : bits_) {
    if (!b.is_const()) return false;
  }
  return true;
}

std::uint64_t SigSpec::const_to_uint() const {
  check(width() <= 64, "SigSpec::const_to_uint width out of range");
  std::uint64_t v = 0;
  for (int i = 0; i < width(); ++i) {
    const SigBit& b = bits_[static_cast<std::size_t>(i)];
    check(b.is_const(), "SigSpec::const_to_uint on non-constant spec");
    if (b.const_value()) v |= 1ULL << i;
  }
  return v;
}

SigSpec concat(const std::vector<SigSpec>& parts) {
  SigSpec out;
  for (const SigSpec& p : parts) out.append(p);
  return out;
}

}  // namespace scfi::rtlil
