// Structural Verilog writer.
//
// Emits synthesizable Verilog-2001 for any module of the IR (word-level,
// gate-level, or mixed), with a single clock `clk` and asynchronous
// active-low reset `rst_n` applied to every flip-flop's reset value. This is
// the hand-off format to a conventional tool flow.
#pragma once

#include <ostream>

#include "rtlil/module.h"

namespace scfi::backends {

void write_verilog(const rtlil::Module& module, std::ostream& out);

}  // namespace scfi::backends
