#include "backends/json.h"

#include <cstdio>
#include <map>
#include <string>

#include "base/error.h"
#include "rtlil/validate.h"

namespace scfi::backends {
namespace {

using rtlil::SigBit;
using rtlil::SigSpec;

/// Yosys-JSON style bit ids: 0/1 are the constants, wires get 2+.
class BitIds {
 public:
  explicit BitIds(const rtlil::Module& module) {
    int next = 2;
    for (const rtlil::Wire* w : module.wires()) {
      base_[w] = next;
      next += w->width();
    }
  }
  int of(const SigBit& bit) const {
    if (bit.is_const()) return bit.const_value() ? 1 : 0;
    return base_.at(bit.wire) + bit.offset;
  }

 private:
  std::map<const rtlil::Wire*, int> base_;
};

void write_bits(const SigSpec& sig, const BitIds& ids, std::ostream& out) {
  out << "[";
  for (int i = 0; i < sig.width(); ++i) {
    out << ids.of(sig.bit(i));
    if (i + 1 < sig.width()) out << ", ";
  }
  out << "]";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    const char e = s[++i];
    switch (e) {
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'u': {
        require(i + 4 < s.size(), "json_unescape: truncated \\u escape");
        unsigned code = 0;
        for (int d = 1; d <= 4; ++d) {
          const char h = s[i + static_cast<std::size_t>(d)];
          unsigned digit = 0;
          if (h >= '0' && h <= '9') {
            digit = static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            digit = static_cast<unsigned>(h - 'a') + 10;
          } else if (h >= 'A' && h <= 'F') {
            digit = static_cast<unsigned>(h - 'A') + 10;
          } else {
            throw ScfiError("json_unescape: non-hex digit in \\u escape");
          }
          code = code * 16 + digit;
        }
        require(code < 0x80, "json_unescape: only ASCII \\u escapes supported");
        out.push_back(static_cast<char>(code));
        i += 4;
        break;
      }
      default: out.push_back(e);
    }
  }
  return out;
}

void write_json(const rtlil::Module& module, std::ostream& out) {
  const BitIds ids(module);
  out << "{\n  \"module\": \"" << json_escape(module.name()) << "\",\n";
  out << "  \"ports\": {\n";
  bool first = true;
  for (const rtlil::Wire* w : module.wires()) {
    if (!w->is_input() && !w->is_output()) continue;
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << json_escape(w->name()) << "\": {\"direction\": \""
        << (w->is_input() ? "input" : "output") << "\", \"bits\": ";
    write_bits(SigSpec(w), ids, out);
    out << "}";
  }
  out << "\n  },\n  \"cells\": {\n";
  first = true;
  for (const rtlil::Cell* cell : module.cells()) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << json_escape(cell->name()) << "\": {\"type\": \""
        << json_escape(rtlil::cell_type_name(cell->type())) << "\", \"drive\": " << cell->drive()
        << ", \"connections\": {";
    bool first_port = true;
    for (const auto& [port, sig] : cell->ports()) {
      if (!first_port) out << ", ";
      first_port = false;
      out << "\"" << json_escape(port) << "\": ";
      write_bits(sig, ids, out);
    }
    out << "}";
    if (rtlil::is_ff(cell->type())) {
      out << ", \"reset\": \"" << cell->reset_value().to_string() << "\"";
    }
    out << "}";
  }
  out << "\n  }\n}\n";
}

}  // namespace scfi::backends
