#include "backends/json.h"

#include <map>
#include <string>

#include "base/error.h"
#include "rtlil/validate.h"

namespace scfi::backends {
namespace {

using rtlil::SigBit;
using rtlil::SigSpec;

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Yosys-JSON style bit ids: 0/1 are the constants, wires get 2+.
class BitIds {
 public:
  explicit BitIds(const rtlil::Module& module) {
    int next = 2;
    for (const rtlil::Wire* w : module.wires()) {
      base_[w] = next;
      next += w->width();
    }
  }
  int of(const SigBit& bit) const {
    if (bit.is_const()) return bit.const_value() ? 1 : 0;
    return base_.at(bit.wire) + bit.offset;
  }

 private:
  std::map<const rtlil::Wire*, int> base_;
};

void write_bits(const SigSpec& sig, const BitIds& ids, std::ostream& out) {
  out << "[";
  for (int i = 0; i < sig.width(); ++i) {
    out << ids.of(sig.bit(i));
    if (i + 1 < sig.width()) out << ", ";
  }
  out << "]";
}

}  // namespace

void write_json(const rtlil::Module& module, std::ostream& out) {
  const BitIds ids(module);
  out << "{\n  \"module\": \"" << escape(module.name()) << "\",\n";
  out << "  \"ports\": {\n";
  bool first = true;
  for (const rtlil::Wire* w : module.wires()) {
    if (!w->is_input() && !w->is_output()) continue;
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << escape(w->name()) << "\": {\"direction\": \""
        << (w->is_input() ? "input" : "output") << "\", \"bits\": ";
    write_bits(SigSpec(w), ids, out);
    out << "}";
  }
  out << "\n  },\n  \"cells\": {\n";
  first = true;
  for (const rtlil::Cell* cell : module.cells()) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << escape(cell->name()) << "\": {\"type\": \""
        << escape(rtlil::cell_type_name(cell->type())) << "\", \"drive\": " << cell->drive()
        << ", \"connections\": {";
    bool first_port = true;
    for (const auto& [port, sig] : cell->ports()) {
      if (!first_port) out << ", ";
      first_port = false;
      out << "\"" << escape(port) << "\": ";
      write_bits(sig, ids, out);
    }
    out << "}";
    if (rtlil::is_ff(cell->type())) {
      out << ", \"reset\": \"" << cell->reset_value().to_string() << "\"";
    }
    out << "}";
  }
  out << "\n  }\n}\n";
}

}  // namespace scfi::backends
