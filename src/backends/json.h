// JSON netlist writer (Yosys-JSON-flavored): ports, cells and per-bit
// connections, for downstream tooling and diffing.
#pragma once

#include <ostream>
#include <string>

#include "rtlil/module.h"

namespace scfi::backends {

void write_json(const rtlil::Module& module, std::ostream& out);

/// Escapes a string for embedding in a JSON string literal (backslash,
/// quote, and control characters). Shared by the netlist writer and the
/// sweep result store.
std::string json_escape(const std::string& s);

/// Inverse of json_escape for the escapes it emits (\" \\ \n \t \r \uXXXX
/// for other control characters).
std::string json_unescape(const std::string& s);

}  // namespace scfi::backends
