// JSON netlist writer (Yosys-JSON-flavored): ports, cells and per-bit
// connections, for downstream tooling and diffing.
#pragma once

#include <ostream>

#include "rtlil/module.h"

namespace scfi::backends {

void write_json(const rtlil::Module& module, std::ostream& out);

}  // namespace scfi::backends
