#include "base/rng.h"

#include "base/error.h"

namespace scfi {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used only to expand the seed into the xoshiro state.
std::uint64_t splitmix(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix(x);
  // All-zero state would be a fixed point; splitmix of any seed avoids it,
  // but keep the guarantee explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Absorb the pair (seed, stream) into one splitmix counter — hash the seed
  // first so that nearby (seed, stream) pairs land far apart — then expand
  // into the xoshiro state exactly like the single-seed constructor.
  std::uint64_t x = seed;
  const std::uint64_t h = splitmix(x);
  x = h ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  for (auto& word : s_) word = splitmix(x);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  check(bound > 0, "Rng::below bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  check(lo <= hi, "Rng::range lo must be <= hi");
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace scfi
