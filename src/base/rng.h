// Deterministic pseudo-random number generation (xoshiro256**).
//
// All randomized components of scfi (fault campaigns, stimulus generation,
// SLP search) take an explicit Rng so that every experiment is reproducible
// from its seed.
#pragma once

#include <cstdint>
#include <vector>

namespace scfi {

/// xoshiro256** by Blackman & Vigna: small, fast, high-quality, and — unlike
/// std::mt19937 — identical across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5cf15cf15cf15cf1ULL);

  /// Jump-ahead (splittable) construction: an independent stream whose state
  /// is derived from hash(seed, stream) in O(1), so stream k can be opened
  /// without generating streams 0..k-1. Streaming campaign planning keys one
  /// stream per run index; results are then independent of how runs are
  /// packed into lanes, batches, or threads.
  Rng(std::uint64_t seed, std::uint64_t stream);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p.
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace scfi
