#include "base/retry.h"

#include <algorithm>
#include <cmath>

#include "base/rng.h"

namespace scfi {

void CancelToken::set_deadline_after(double seconds) {
  require(seconds >= 0.0, "cancel token: deadline must be non-negative");
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
  has_deadline_ = true;
}

bool CancelToken::stop_requested() const {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  if (parent_ != nullptr && parent_->stop_requested()) return true;
  return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
}

void CancelToken::check(const char* where) const {
  if (stop_requested()) {
    throw CancelledError(std::string(where) + ": cancelled (stop requested or deadline exceeded)");
  }
}

double BackoffPolicy::delay_ms(int failures) const {
  if (failures < 1 || initial_ms <= 0.0) return 0.0;
  const double factor = std::pow(std::max(1.0, multiplier), failures - 1);
  return std::min(std::max(0.0, max_ms), initial_ms * factor);
}

double BackoffPolicy::jittered_delay_ms(int failures, Rng& rng) const {
  const double cap = delay_ms(failures);
  if (cap <= 0.0) return 0.0;
  // Full jitter (not cap/2 + jitter): the strongest de-correlation for a
  // given mean, and the schedule's exponential cap still bounds the tail.
  return rng.uniform() * cap;
}

}  // namespace scfi
