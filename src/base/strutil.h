// Small string helpers used by parsers and report printers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scfi {

/// Splits on any of the characters in `seps`, dropping empty fields.
std::vector<std::string> split(std::string_view text, std::string_view seps = " \t");

/// Strips leading/trailing whitespace.
std::string trim(std::string_view text);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Shell-style glob match: `*` matches any run of characters, `?` matches
/// exactly one; everything else is literal. The whole text must match.
bool glob_match(std::string_view text, std::string_view pattern);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders `value` as a binary string of `width` characters, MSB first.
std::string to_bin(std::uint64_t value, int width);

/// Parses a binary string (MSB first); characters other than 0/1 are invalid.
std::uint64_t parse_bin(std::string_view text);

}  // namespace scfi
