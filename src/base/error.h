// Error handling primitives shared by every scfi library.
//
// Recoverable failures (bad user input, unsolvable constraints, parse errors)
// throw ScfiError. Internal invariants use check()/unreachable(), which throw
// LogicBug so that tests can observe violations instead of aborting.
#pragma once

#include <stdexcept>
#include <string>

namespace scfi {

/// Base class for all recoverable scfi errors (parse failures, infeasible
/// configurations, malformed netlists, ...).
class ScfiError : public std::runtime_error {
 public:
  explicit ScfiError(const std::string& what) : std::runtime_error(what) {}
};

/// Violated internal invariant; indicates a bug in scfi itself.
class LogicBug : public std::logic_error {
 public:
  explicit LogicBug(const std::string& what) : std::logic_error(what) {}
};

/// Throws LogicBug when `cond` is false. Used for internal invariants.
inline void check(bool cond, const std::string& msg) {
  if (!cond) throw LogicBug("internal check failed: " + msg);
}

/// Throws ScfiError when `cond` is false. Used to validate user-facing input.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw ScfiError(msg);
}

/// Marks unreachable control flow.
[[noreturn]] inline void unreachable(const std::string& msg) {
  throw LogicBug("unreachable: " + msg);
}

}  // namespace scfi
