#include "base/strutil.h"

#include <cstdarg>
#include <cstdio>

#include "base/error.h"

namespace scfi {

std::vector<std::string> split(std::string_view text, std::string_view seps) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && seps.find(text[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < text.size() && seps.find(text[j]) == std::string_view::npos) ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\r' || text[b] == '\n')) ++b;
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' || text[e - 1] == '\r' ||
                   text[e - 1] == '\n'))
    --e;
  return std::string(text.substr(b, e - b));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool glob_match(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking to the last '*'.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(n));
  }
  va_end(args);
  return out;
}

std::string to_bin(std::uint64_t value, int width) {
  check(width >= 0 && width <= 64, "to_bin width out of range");
  std::string out(static_cast<std::size_t>(width), '0');
  for (int i = 0; i < width; ++i) {
    if ((value >> i) & 1) out[static_cast<std::size_t>(width - 1 - i)] = '1';
  }
  return out;
}

std::uint64_t parse_bin(std::string_view text) {
  require(!text.empty() && text.size() <= 64, "binary literal must have 1..64 digits");
  std::uint64_t v = 0;
  for (char c : text) {
    require(c == '0' || c == '1', "invalid binary digit");
    v = (v << 1) | static_cast<std::uint64_t>(c == '1');
  }
  return v;
}

}  // namespace scfi
