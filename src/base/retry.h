// Cooperative cancellation and retry-backoff primitives for long-running
// engines (the sweep fleet's per-job deadlines and attempt budgets).
//
// A CancelToken is armed by the owner — an explicit cancel() and/or a
// wall-clock deadline — and polled by worker inner loops at batch
// granularity via stop_requested()/check(): workers stop at the next batch
// boundary instead of being killed, so partial work is never torn and
// caches stay consistent. A fired token surfaces as CancelledError, which
// callers can distinguish from ordinary (retryable) failures.
#pragma once

#include <atomic>
#include <chrono>
#include <string>

#include "base/error.h"

namespace scfi {

class Rng;

/// A cancellation request (explicit or deadline) reached a cooperative
/// check point. Derived from ScfiError so generic handlers still treat it
/// as recoverable, while retry loops can catch it specifically — a fired
/// deadline must not be retried into.
class CancelledError : public ScfiError {
 public:
  explicit CancelledError(const std::string& what) : ScfiError(what) {}
};

/// Shared stop signal: set once (explicitly or by an armed deadline
/// passing), observed by every loop polling it. The token itself is
/// passive — nothing is interrupted until a worker polls.
class CancelToken {
 public:
  /// Requests cancellation explicitly.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms a wall-clock deadline `seconds` from now; stop_requested()
  /// reports true once it passes. Re-arming replaces the old deadline.
  void set_deadline_after(double seconds);

  /// True once cancel() was called or an armed deadline has passed.
  bool stop_requested() const;

  /// Throws CancelledError when stop_requested(); `where` names the
  /// interrupted engine in the message.
  void check(const char* where) const;

  /// Chains this token to a parent: stop_requested() also reports true once
  /// the parent fires. The sweep fleet arms one drain token per worker and
  /// chains every per-job deadline token to it, so an external stop (SIGTERM
  /// drain) cancels the in-flight job without disturbing its own deadline.
  /// The parent must outlive this token; nullptr unchains.
  void chain_to(const CancelToken* parent) { parent_ = parent; }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

/// Exponential backoff schedule between retry attempts. delay_ms(1) is the
/// sleep before the first re-attempt; each further attempt multiplies the
/// delay, capped at max_ms. Tests zero initial_ms to retry instantly.
struct BackoffPolicy {
  double initial_ms = 10.0;
  double multiplier = 2.0;
  double max_ms = 1000.0;

  /// Delay before re-attempt number `failures` (>= 1 = after the first
  /// failed try). Never negative.
  double delay_ms(int failures) const;

  /// Full-jitter variant: uniform in [0, delay_ms(failures)), so N workers
  /// respawning after a correlated failure (a crashed fleet peer, a shared
  /// resource hiccup) spread out instead of retrying in lockstep.
  /// Deterministic under the injected Rng — tests (and reproducible fleet
  /// runs) seed it explicitly.
  double jittered_delay_ms(int failures, Rng& rng) const;
};

}  // namespace scfi
