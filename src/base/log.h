// Minimal leveled logger. Passes report through this so that examples and
// benches can silence or surface pass diagnostics uniformly.
#pragma once

#include <string>

namespace scfi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kQuiet = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

}  // namespace scfi
