// Minimal leveled logger. Passes report through this so that examples and
// benches can silence or surface pass diagnostics uniformly. Every line is
// prefixed with a wall-clock UTC timestamp and, when set, a worker-id tag,
// so the interleaved stderr of a multi-process sweep fleet stays
// attributable post-mortem.
#pragma once

#include <string>

namespace scfi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kQuiet = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Tags every subsequent log line from this process with a worker id
/// (fleet workers set this right after fork, e.g. "w2.1" = slot 2,
/// generation 1). Empty clears the tag. Set before spawning threads — the
/// tag is process-wide state, not synchronized.
void set_log_worker(const std::string& tag);
const std::string& log_worker();

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

}  // namespace scfi
