#include "base/log.h"

#include <cstdio>

namespace scfi {
namespace {

LogLevel g_level = LogLevel::kWarn;

void emit(LogLevel level, const char* tag, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[scfi %s] %s\n", tag, msg.c_str());
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_debug(const std::string& msg) { emit(LogLevel::kDebug, "debug", msg); }
void log_info(const std::string& msg) { emit(LogLevel::kInfo, "info", msg); }
void log_warn(const std::string& msg) { emit(LogLevel::kWarn, "warn", msg); }
void log_error(const std::string& msg) { emit(LogLevel::kError, "error", msg); }

}  // namespace scfi
