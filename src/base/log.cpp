#include "base/log.h"

#include <cstdio>
#include <ctime>

namespace scfi {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::string g_worker;

void emit(LogLevel level, const char* tag, const std::string& msg) {
  if (level < g_level) return;
  // Wall-clock UTC stamp (millisecond resolution): fleet workers on one
  // machine share the system clock, so interleaved lines sort causally.
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char stamp[40];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                tm.tm_sec, ts.tv_nsec / 1000000);
  // One fprintf per line so concurrent workers' lines do not interleave
  // mid-record on a line-buffered stderr.
  if (g_worker.empty()) {
    std::fprintf(stderr, "[%s scfi %s] %s\n", stamp, tag, msg.c_str());
  } else {
    std::fprintf(stderr, "[%s scfi %s %s] %s\n", stamp, tag, g_worker.c_str(), msg.c_str());
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_worker(const std::string& tag) { g_worker = tag; }
const std::string& log_worker() { return g_worker; }

void log_debug(const std::string& msg) { emit(LogLevel::kDebug, "debug", msg); }
void log_info(const std::string& msg) { emit(LogLevel::kInfo, "info", msg); }
void log_warn(const std::string& msg) { emit(LogLevel::kWarn, "warn", msg); }
void log_error(const std::string& msg) { emit(LogLevel::kError, "error", msg); }

}  // namespace scfi
