// Tokenizer for the structural Verilog-2001 netlist subset (see
// verilog_parse.h for the grammar). Handles `//` and `/* */` comments,
// `(* attribute *)` skipping, `\`-escaped identifiers, and sized/based
// numeric literals. Every malformed input raises ScfiError carrying the
// file name and line number — never a bare std:: exception.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scfi::frontends {

enum class TokKind : std::uint8_t {
  kId,      ///< identifier; `escaped` distinguishes `\foo ` from `foo`
  kNumber,  ///< literal text, e.g. "13", "4'b0101", "8'hFF"
  kPunct,   ///< operator/punctuation, e.g. "(", "<=", "=="
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int line = 0;
  bool escaped = false;  ///< kId only: written as a `\`-escaped identifier

  bool is_punct(const char* p) const;
  /// Unescaped keyword/identifier match (an escaped `\wire ` is NOT the
  /// keyword `wire`).
  bool is_keyword(const char* kw) const;
};

/// Tokenizes the whole input up front (netlists are small relative to the
/// elaborated module) and serves peek/next with unlimited lookahead.
class VerilogLexer {
 public:
  VerilogLexer(std::string_view text, std::string filename);

  const Token& peek(int ahead = 0) const;
  Token next();
  bool at_eof() const { return peek().kind == TokKind::kEof; }

  /// Throws ScfiError "<file>:<line>: <msg>". Uses the current token's line
  /// when `line` is 0.
  [[noreturn]] void fail(const std::string& msg, int line = 0) const;

  const std::string& filename() const { return filename_; }

 private:
  void tokenize(std::string_view text);

  std::string filename_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

/// True when `name` needs `\`-escaping to be a legal Verilog identifier:
/// empty, leading digit/$, a character outside [A-Za-z0-9_$], or a reserved
/// word. Shared with backends/verilog.cpp so writer and reader agree.
bool verilog_needs_escape(const std::string& name);

}  // namespace scfi::frontends
