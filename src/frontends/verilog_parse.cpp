#include "frontends/verilog_parse.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "base/error.h"
#include "frontends/verilog_lexer.h"
#include "rtlil/validate.h"

namespace scfi::frontends {
namespace {

using ast::Dir;
using ast::Expr;
using ast::ExprPtr;
using rtlil::CellType;
using rtlil::Const;
using rtlil::SigBit;
using rtlil::SigSpec;

/// Hard cap on declared/constant widths so a bogus `[99999999:0]` range is
/// a clean parse error, not an allocation storm.
constexpr int kMaxWidth = 1 << 16;

// --- number literals --------------------------------------------------------

int base_bits(char base) {
  switch (base) {
    case 'b':
    case 'B':
      return 1;
    case 'o':
    case 'O':
      return 3;
    case 'h':
    case 'H':
      return 4;
    default:
      return 0;  // decimal
  }
}

int digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Interprets a number token ("13", "4'b01_01", "8'hFF", "'b101") into an
/// AST constant. Sized literals carry explicit bits (LSB first); a plain
/// decimal is unsized (width -1) and sized by its context during
/// elaboration. Unsized *based* literals self-size to their digits.
Expr parse_number(const VerilogLexer& lex, const Token& tok) {
  Expr e;
  e.kind = Expr::Kind::kConst;
  e.line = tok.line;
  const std::string& text = tok.text;
  const std::size_t quote = text.find('\'');
  if (quote == std::string::npos) {
    // Plain decimal, unsized.
    std::uint64_t value = 0;
    for (char c : text) {
      if (c == '_') continue;
      const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
      if (value > (UINT64_MAX - digit) / 10) lex.fail("decimal literal overflows", tok.line);
      value = value * 10 + digit;
    }
    e.width = -1;
    e.value = value;
    return e;
  }

  int size = -1;  // -1 = unsized based literal
  if (quote > 0) {
    long declared = 0;
    for (std::size_t i = 0; i < quote; ++i) {
      if (text[i] == '_') continue;
      declared = declared * 10 + (text[i] - '0');
      if (declared > kMaxWidth) lex.fail("literal width too large: " + text, tok.line);
    }
    if (declared <= 0) lex.fail("literal width must be positive: " + text, tok.line);
    size = static_cast<int>(declared);
  }
  const char base = text[quote + 1];
  const int bits_per_digit = base_bits(base);
  const std::string digits = text.substr(quote + 2);

  std::vector<bool> bits;  // LSB first
  if (bits_per_digit == 0) {
    // Based decimal.
    std::uint64_t value = 0;
    for (char c : digits) {
      if (c == '_') continue;
      const int d = digit_value(c);
      if (d < 0 || d > 9) lex.fail("malformed decimal literal: " + text, tok.line);
      if (value > (UINT64_MAX - static_cast<std::uint64_t>(d)) / 10) {
        lex.fail("decimal literal overflows", tok.line);
      }
      value = value * 10 + static_cast<std::uint64_t>(d);
    }
    if (size < 0) lex.fail("unsized 'd literal needs an explicit width: " + text, tok.line);
    for (int i = 0; i < size && i < 64; ++i) bits.push_back((value >> i) & 1);
    if (size > 64) bits.resize(static_cast<std::size_t>(size), false);
    if (size < 64 && (value >> size) != 0) {
      lex.fail("literal value does not fit its width: " + text, tok.line);
    }
  } else {
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
      if (*it == '_') continue;
      if (*it == 'x' || *it == 'X' || *it == 'z' || *it == 'Z') {
        lex.fail("x/z literals are not supported (two-valued netlists): " + text, tok.line);
      }
      const int d = digit_value(*it);
      if (d < 0 || d >= (1 << bits_per_digit)) {
        lex.fail("malformed based literal: " + text, tok.line);
      }
      for (int b = 0; b < bits_per_digit; ++b) bits.push_back((d >> b) & 1);
    }
    if (size < 0) size = std::max<int>(1, static_cast<int>(bits.size()));
    if (static_cast<int>(bits.size()) > size) {
      // Verilog truncates silently; only excess *zero* bits are dropped here
      // so a value can never change meaning behind the caller's back.
      for (std::size_t i = static_cast<std::size_t>(size); i < bits.size(); ++i) {
        if (bits[i]) lex.fail("literal value does not fit its width: " + text, tok.line);
      }
    }
    bits.resize(static_cast<std::size_t>(size), false);
  }
  e.width = size;
  e.bits = std::move(bits);
  return e;
}

// --- parser -----------------------------------------------------------------

class Parser {
 public:
  Parser(const std::string& text, const std::string& filename) : lex_(text, filename) {}

  ast::File parse_file() {
    ast::File file;
    while (!lex_.at_eof()) {
      const Token& t = lex_.peek();
      if (t.is_keyword("module")) {
        file.modules.push_back(parse_module());
      } else if (t.is_keyword("endmodule")) {
        lex_.fail("unbalanced endmodule (no open module)");
      } else {
        lex_.fail("expected 'module', got '" + t.text + "'");
      }
    }
    return file;
  }

 private:
  Token expect_punct(const char* p) {
    const Token t = lex_.next();
    if (!t.is_punct(p)) {
      lex_.fail(std::string("expected '") + p + "', got '" + t.text + "'", t.line);
    }
    return t;
  }

  Token expect_id() {
    const Token t = lex_.next();
    if (t.kind != TokKind::kId) lex_.fail("expected identifier, got '" + t.text + "'", t.line);
    return t;
  }

  int expect_index() {
    const Token t = lex_.next();
    if (t.kind != TokKind::kNumber) {
      lex_.fail("expected a constant index, got '" + t.text + "'", t.line);
    }
    const Expr e = parse_number(lex_, t);
    std::uint64_t value = e.value;
    if (e.width >= 0) {
      value = 0;
      for (std::size_t i = 0; i < e.bits.size() && i < 64; ++i) {
        if (e.bits[i]) value |= 1ULL << i;
      }
    }
    if (value > static_cast<std::uint64_t>(kMaxWidth)) lex_.fail("index too large", t.line);
    return static_cast<int>(value);
  }

  /// `[msb:lsb]` (or nothing). Rejects ascending ranges.
  bool try_parse_range(int& msb, int& lsb) {
    if (!lex_.peek().is_punct("[")) return false;
    const Token open = lex_.next();
    msb = expect_index();
    expect_punct(":");
    lsb = expect_index();
    expect_punct("]");
    if (msb < lsb) lex_.fail("ascending ranges ([lsb:msb]) are not supported", open.line);
    if (msb - lsb + 1 > kMaxWidth) lex_.fail("range width too large", open.line);
    return true;
  }

  static bool is_dir_keyword(const Token& t) {
    return t.is_keyword("input") || t.is_keyword("output") || t.is_keyword("inout");
  }

  static bool is_gate_keyword(const Token& t) {
    return t.is_keyword("and") || t.is_keyword("nand") || t.is_keyword("or") ||
           t.is_keyword("nor") || t.is_keyword("xor") || t.is_keyword("xnor") ||
           t.is_keyword("buf") || t.is_keyword("not");
  }

  ast::Module parse_module() {
    ast::Module m;
    m.line = lex_.next().line;  // 'module'
    m.name = expect_id().text;
    if (lex_.peek().is_punct("(")) {
      lex_.next();
      if (!lex_.peek().is_punct(")")) {
        if (is_dir_keyword(lex_.peek())) {
          parse_ansi_ports(m);
        } else {
          parse_port_name_list(m);
        }
      }
      expect_punct(")");
    }
    expect_punct(";");
    while (true) {
      const Token& t = lex_.peek();
      if (t.kind == TokKind::kEof) {
        lex_.fail("unexpected end of file inside module " + m.name + " (missing endmodule)",
                  t.line);
      }
      if (t.is_keyword("endmodule")) {
        lex_.next();
        break;
      }
      parse_module_item(m);
    }
    return m;
  }

  void parse_ansi_ports(ast::Module& m) {
    Dir dir = Dir::kNone;
    bool is_reg = false;
    bool has_range = false;
    int msb = 0, lsb = 0;
    while (true) {
      const Token& t = lex_.peek();
      if (is_dir_keyword(t)) {
        if (t.is_keyword("inout")) lex_.fail("inout ports are not supported");
        dir = t.is_keyword("input") ? Dir::kInput : Dir::kOutput;
        lex_.next();
        is_reg = false;
        if (lex_.peek().is_keyword("wire")) {
          lex_.next();
        } else if (lex_.peek().is_keyword("reg")) {
          is_reg = true;
          lex_.next();
        }
        has_range = try_parse_range(msb, lsb);
      }
      const Token name = expect_id();
      ast::Net net;
      net.name = name.text;
      net.dir = dir;
      net.is_reg = is_reg;
      net.has_range = has_range;
      net.msb = has_range ? msb : 0;
      net.lsb = has_range ? lsb : 0;
      net.line = name.line;
      if (net.dir == Dir::kNone) lex_.fail("ANSI port " + net.name + " has no direction");
      m.nets.push_back(net);
      m.port_order.push_back(name.text);
      if (!lex_.peek().is_punct(",")) break;
      lex_.next();
    }
  }

  void parse_port_name_list(ast::Module& m) {
    while (true) {
      m.port_order.push_back(expect_id().text);
      if (!lex_.peek().is_punct(",")) break;
      lex_.next();
    }
  }

  void parse_module_item(ast::Module& m) {
    const Token& t = lex_.peek();
    if (is_dir_keyword(t) || t.is_keyword("wire") || t.is_keyword("reg")) {
      parse_net_decl(m);
    } else if (t.is_keyword("assign")) {
      parse_assign(m);
    } else if (t.is_keyword("always")) {
      parse_always(m);
    } else if (is_gate_keyword(t)) {
      parse_gate(m);
    } else if (t.is_keyword("parameter") || t.is_keyword("localparam") ||
               t.is_keyword("defparam")) {
      lex_.fail("parameters are not supported (flatten/deparameterize the netlist first)");
    } else if (t.is_keyword("initial") || t.is_keyword("function") || t.is_keyword("task") ||
               t.is_keyword("generate")) {
      lex_.fail("'" + t.text + "' blocks are not supported in structural netlists");
    } else if (t.kind == TokKind::kId && lex_.peek(1).kind == TokKind::kId) {
      lex_.fail("hierarchical instantiation of '" + t.text +
                "' is not supported (the IR is flat; flatten the design first)");
    } else {
      lex_.fail("unexpected '" + t.text + "' in module body");
    }
  }

  void parse_net_decl(ast::Module& m) {
    const Token head = lex_.next();
    Dir dir = Dir::kNone;
    bool is_reg = false;
    if (head.is_keyword("inout")) lex_.fail("inout ports are not supported", head.line);
    if (head.is_keyword("input")) dir = Dir::kInput;
    if (head.is_keyword("output")) dir = Dir::kOutput;
    if (head.is_keyword("reg")) is_reg = true;
    if (dir != Dir::kNone) {
      if (lex_.peek().is_keyword("wire")) {
        lex_.next();
      } else if (lex_.peek().is_keyword("reg")) {
        is_reg = true;
        lex_.next();
      }
    }
    int msb = 0, lsb = 0;
    const bool has_range = try_parse_range(msb, lsb);
    while (true) {
      const Token name = expect_id();
      if (lex_.peek().is_punct("=")) {
        lex_.fail("net initializers are not supported (reset values come from always blocks)");
      }
      ast::Net net;
      net.name = name.text;
      net.dir = dir;
      net.is_reg = is_reg;
      net.has_range = has_range;
      net.msb = has_range ? msb : 0;
      net.lsb = has_range ? lsb : 0;
      net.line = name.line;
      m.nets.push_back(net);
      if (lex_.peek().is_punct(",")) {
        lex_.next();
        continue;
      }
      break;
    }
    expect_punct(";");
  }

  void parse_assign(ast::Module& m) {
    lex_.next();  // 'assign'
    while (true) {
      ast::Assign a;
      a.lhs = parse_expr();
      a.line = a.lhs->line;
      expect_punct("=");
      a.rhs = parse_expr();
      m.assigns.push_back(std::move(a));
      if (lex_.peek().is_punct(",")) {
        lex_.next();
        continue;
      }
      break;
    }
    expect_punct(";");
  }

  void parse_gate(ast::Module& m) {
    const Token prim = lex_.next();
    while (true) {
      ast::GateInst g;
      g.prim = prim.text;
      g.line = prim.line;
      if (lex_.peek().kind == TokKind::kId) g.name = lex_.next().text;
      expect_punct("(");
      while (true) {
        g.terminals.push_back(parse_expr());
        if (lex_.peek().is_punct(",")) {
          lex_.next();
          continue;
        }
        break;
      }
      expect_punct(")");
      const std::size_t min_terms = (g.prim == "buf" || g.prim == "not") ? 2 : 3;
      if (g.terminals.size() < min_terms) {
        lex_.fail("primitive '" + g.prim + "' needs at least " + std::to_string(min_terms) +
                      " terminals",
                  g.line);
      }
      m.gates.push_back(std::move(g));
      if (lex_.peek().is_punct(",")) {
        lex_.next();
        continue;
      }
      break;
    }
    expect_punct(";");
  }

  // --- always blocks --------------------------------------------------------

  /// Minimal statement tree, flattened into AlwaysFf right after parsing.
  struct Stmt {
    enum class Kind { kBlock, kIf, kNba } kind;
    std::vector<Stmt> body;       // kBlock
    ExprPtr cond;                 // kIf
    std::vector<Stmt> then_body;  // kIf
    std::vector<Stmt> else_body;  // kIf
    ast::NbAssign nba;            // kNba
    int line = 0;
  };

  Stmt parse_stmt() {
    Stmt s;
    const Token& t = lex_.peek();
    s.line = t.line;
    if (t.is_keyword("begin")) {
      lex_.next();
      s.kind = Stmt::Kind::kBlock;
      while (!lex_.peek().is_keyword("end")) {
        if (lex_.peek().kind == TokKind::kEof) lex_.fail("unterminated begin/end block", s.line);
        s.body.push_back(parse_stmt());
      }
      lex_.next();  // 'end'
      return s;
    }
    if (t.is_keyword("if")) {
      lex_.next();
      s.kind = Stmt::Kind::kIf;
      expect_punct("(");
      s.cond = parse_expr();
      expect_punct(")");
      s.then_body.push_back(parse_stmt());
      if (lex_.peek().is_keyword("else")) {
        lex_.next();
        s.else_body.push_back(parse_stmt());
      }
      return s;
    }
    // Nonblocking assignment.
    s.kind = Stmt::Kind::kNba;
    s.nba.lhs = parse_expr();
    s.nba.line = s.nba.lhs->line;
    expect_punct("<=");
    s.nba.rhs = parse_expr();
    expect_punct(";");
    return s;
  }

  /// Collects the nonblocking assignments of a branch, unwrapping begin/end;
  /// nested control flow is out of the structural subset.
  void flatten_nbas(std::vector<Stmt>& stmts, std::vector<ast::NbAssign>& out) {
    for (Stmt& s : stmts) {
      switch (s.kind) {
        case Stmt::Kind::kBlock:
          flatten_nbas(s.body, out);
          break;
        case Stmt::Kind::kNba:
          out.push_back(std::move(s.nba));
          break;
        case Stmt::Kind::kIf:
          lex_.fail("nested if inside an always block is not supported "
                    "(only the async-reset pattern)",
                    s.line);
      }
    }
  }

  /// True when `cond` is `!rst`, `~rst`, or `rst == 0`-style for `rst`.
  static bool is_reset_cond(const Expr& cond, const std::string& rst) {
    if (cond.kind == Expr::Kind::kUnary && (cond.op == '!' || cond.op == '~')) {
      const Expr& a = *cond.args[0];
      return a.kind == Expr::Kind::kId && a.name == rst;
    }
    if (cond.kind == Expr::Kind::kBinary && cond.op == '=') {
      const Expr& a = *cond.args[0];
      const Expr& b = *cond.args[1];
      const auto is_zero = [](const Expr& e) {
        if (e.kind != Expr::Kind::kConst) return false;
        if (e.width < 0) return e.value == 0;
        return std::none_of(e.bits.begin(), e.bits.end(), [](bool bit) { return bit; });
      };
      return a.kind == Expr::Kind::kId && a.name == rst && is_zero(b);
    }
    return false;
  }

  void parse_always(ast::Module& m) {
    ast::AlwaysFf ff;
    ff.line = lex_.next().line;  // 'always'
    expect_punct("@");
    expect_punct("(");
    while (true) {
      const Token edge = lex_.next();
      const bool posedge = edge.is_keyword("posedge");
      if (!posedge && !edge.is_keyword("negedge")) {
        lex_.fail("expected posedge/negedge in sensitivity list (combinational always "
                  "blocks are not supported; use assign)",
                  edge.line);
      }
      const Token sig = expect_id();
      if (posedge) {
        if (!ff.clock.empty()) lex_.fail("multiple posedge clocks in one always block", sig.line);
        ff.clock = sig.text;
      } else {
        if (!ff.reset.empty()) lex_.fail("multiple negedge resets in one always block", sig.line);
        ff.reset = sig.text;
      }
      if (lex_.peek().is_keyword("or") || lex_.peek().is_punct(",")) {
        lex_.next();
        continue;
      }
      break;
    }
    expect_punct(")");
    if (ff.clock.empty()) lex_.fail("always block has no posedge clock", ff.line);

    Stmt body = parse_stmt();
    std::vector<Stmt> top;
    top.push_back(std::move(body));
    // Unwrap a single begin/end around the whole body.
    while (top.size() == 1 && top.front().kind == Stmt::Kind::kBlock) {
      std::vector<Stmt> inner = std::move(top.front().body);
      top = std::move(inner);
    }
    if (!ff.reset.empty()) {
      if (top.size() != 1 || top.front().kind != Stmt::Kind::kIf) {
        lex_.fail("async-reset always block must be a single if (!rst) ... else ...", ff.line);
      }
      Stmt& branch = top.front();
      if (!is_reset_cond(*branch.cond, ff.reset)) {
        lex_.fail("reset condition must test the negedge signal (e.g. if (!" + ff.reset + "))",
                  branch.line);
      }
      if (branch.else_body.empty()) {
        lex_.fail("async-reset always block needs an else branch with the data assignments",
                  branch.line);
      }
      flatten_nbas(branch.then_body, ff.reset_assigns);
      flatten_nbas(branch.else_body, ff.data_assigns);
    } else {
      flatten_nbas(top, ff.data_assigns);
    }
    if (ff.data_assigns.empty()) lex_.fail("always block assigns nothing", ff.line);
    m.always_ffs.push_back(std::move(ff));
  }

  // --- expressions ----------------------------------------------------------
  // Precedence (low to high): ?: | ^ & ==/!= unary primary.

  ExprPtr parse_expr() {
    ExprPtr cond = parse_bitor();
    if (!lex_.peek().is_punct("?")) return cond;
    const int line = lex_.next().line;
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kTernary;
    e->line = line;
    e->args.push_back(std::move(cond));
    e->args.push_back(parse_expr());
    expect_punct(":");
    e->args.push_back(parse_expr());
    return e;
  }

  ExprPtr parse_binary_chain(const char* punct, char op, ExprPtr (Parser::*sub)()) {
    ExprPtr lhs = (this->*sub)();
    while (lex_.peek().is_punct(punct)) {
      const int line = lex_.next().line;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = op;
      e->line = line;
      e->args.push_back(std::move(lhs));
      e->args.push_back((this->*sub)());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_bitor() { return parse_binary_chain("|", '|', &Parser::parse_bitxor); }
  ExprPtr parse_bitxor() { return parse_binary_chain("^", '^', &Parser::parse_bitand); }
  ExprPtr parse_bitand() { return parse_binary_chain("&", '&', &Parser::parse_equality); }

  ExprPtr parse_equality() {
    ExprPtr lhs = parse_unary();
    while (lex_.peek().is_punct("==") || lex_.peek().is_punct("!=")) {
      const bool negated = lex_.peek().is_punct("!=");
      const int line = lex_.next().line;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = '=';
      e->line = line;
      e->args.push_back(std::move(lhs));
      e->args.push_back(parse_unary());
      if (negated) {
        auto n = std::make_unique<Expr>();
        n->kind = Expr::Kind::kUnary;
        n->op = '!';
        n->line = line;
        n->args.push_back(std::move(e));
        lhs = std::move(n);
      } else {
        lhs = std::move(e);
      }
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    const Token& t = lex_.peek();
    if (t.is_punct("~") || t.is_punct("!") || t.is_punct("&") || t.is_punct("|") ||
        t.is_punct("^")) {
      const Token op = lex_.next();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = op.text[0];
      e->line = op.line;
      e->args.push_back(parse_unary());
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = lex_.peek();
    if (t.is_punct("(")) {
      lex_.next();
      ExprPtr e = parse_expr();
      expect_punct(")");
      return e;
    }
    if (t.kind == TokKind::kNumber) {
      const Token num = lex_.next();
      return std::make_unique<Expr>(parse_number(lex_, num));
    }
    if (t.is_punct("{")) return parse_concat();
    if (t.kind == TokKind::kId) {
      const Token id = lex_.next();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kId;
      e->name = id.text;
      e->line = id.line;
      if (!lex_.peek().is_punct("[")) return e;
      lex_.next();
      auto sel = std::make_unique<Expr>();
      sel->kind = Expr::Kind::kSelect;
      sel->line = id.line;
      sel->msb = expect_index();
      sel->lsb = sel->msb;
      if (lex_.peek().is_punct(":")) {
        lex_.next();
        sel->lsb = expect_index();
        if (sel->msb < sel->lsb) lex_.fail("ascending part-select is not supported", id.line);
      }
      expect_punct("]");
      sel->args.push_back(std::move(e));
      return sel;
    }
    lex_.fail("expected an expression, got '" + t.text + "'", t.line);
  }

  /// `{a, b, c}` or replication `{4{expr, ...}}`. Replications reuse the
  /// kConcat node with `value` = repeat count.
  ExprPtr parse_concat() {
    const Token open = lex_.next();  // '{'
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kConcat;
    e->value = 1;
    e->line = open.line;
    ExprPtr first = parse_expr();
    if (lex_.peek().is_punct("{")) {
      if (first->kind != Expr::Kind::kConst) {
        lex_.fail("replication count must be a constant", open.line);
      }
      std::uint64_t count = first->value;
      if (first->width >= 0) {
        count = 0;
        for (std::size_t i = 0; i < first->bits.size() && i < 64; ++i) {
          if (first->bits[i]) count |= 1ULL << i;
        }
      }
      if (count == 0 || count > static_cast<std::uint64_t>(kMaxWidth)) {
        lex_.fail("replication count out of range", open.line);
      }
      e->value = count;
      lex_.next();  // inner '{'
      while (true) {
        e->args.push_back(parse_expr());
        if (lex_.peek().is_punct(",")) {
          lex_.next();
          continue;
        }
        break;
      }
      expect_punct("}");
      expect_punct("}");
      return e;
    }
    e->args.push_back(std::move(first));
    while (lex_.peek().is_punct(",")) {
      lex_.next();
      e->args.push_back(parse_expr());
    }
    expect_punct("}");
    return e;
  }

  VerilogLexer lex_;
};

// --- elaborator -------------------------------------------------------------

class Elaborator {
 public:
  Elaborator(const ast::Module& m, rtlil::Design& design, const std::string& filename)
      : m_(m), design_(design), filename_(filename) {}

  rtlil::Module& run() {
    identify_clocks();
    collect_nets();
    require(design_.module(m_.name) == nullptr,
            err_prefix(m_.line) + "duplicate module " + m_.name);
    mod_ = design_.add_module(m_.name);
    create_wires();
    for (const ast::Assign& a : m_.assigns) lower_assign(a);
    for (const ast::GateInst& g : m_.gates) lower_gate(g);
    for (const ast::AlwaysFf& ff : m_.always_ffs) lower_always(ff);
    prune_vestigial_clock_ports();
    rtlil::validate_module(*mod_);  // the post-load gate
    return *mod_;
  }

 private:
  struct NetInfo {
    ast::Net decl;
    rtlil::Wire* wire = nullptr;
    bool clocklike = false;  ///< consumed as a clock/reset; no wire created
  };

  std::string err_prefix(int line) const {
    return "verilog: " + filename_ + ":" + std::to_string(line) + ": ";
  }

  [[noreturn]] void fail(int line, const std::string& msg) const {
    throw ScfiError(err_prefix(line) + msg);
  }

  void identify_clocks() {
    for (const ast::AlwaysFf& ff : m_.always_ffs) {
      if (clock_.empty()) {
        clock_ = ff.clock;
      } else if (clock_ != ff.clock) {
        fail(ff.line, "multiple clock nets (" + clock_ + ", " + ff.clock +
                          "); the IR is single-clock");
      }
      if (ff.reset.empty()) continue;
      if (reset_.empty()) {
        reset_ = ff.reset;
      } else if (reset_ != ff.reset) {
        fail(ff.line, "multiple reset nets (" + reset_ + ", " + ff.reset + ")");
      }
    }
    if (!reset_.empty() && reset_ == clock_) {
      fail(m_.line, "net " + clock_ + " is used as both clock and reset");
    }
  }

  /// Merges the (possibly repeated) declarations of each net — the non-ANSI
  /// `output [1:0] y; reg [1:0] y;` idiom — and checks consistency.
  void collect_nets() {
    for (const ast::Net& decl : m_.nets) {
      auto [it, inserted] = nets_.try_emplace(decl.name);
      NetInfo& info = it->second;
      if (inserted) {
        info.decl = decl;
        decl_order_.push_back(decl.name);
        continue;
      }
      ast::Net& have = info.decl;
      if (decl.dir != Dir::kNone) {
        if (have.dir != Dir::kNone && have.dir != decl.dir) {
          fail(decl.line, "net " + decl.name + " declared both input and output");
        }
        have.dir = decl.dir;
      }
      have.is_reg = have.is_reg || decl.is_reg;
      if (decl.has_range) {
        if (have.has_range && (have.msb != decl.msb || have.lsb != decl.lsb)) {
          fail(decl.line, "net " + decl.name + " redeclared with a different range");
        }
        have.has_range = true;
        have.msb = decl.msb;
        have.lsb = decl.lsb;
      }
    }
    // Header ports must end up with a direction.
    for (const std::string& port : m_.port_order) {
      const auto it = nets_.find(port);
      if (it == nets_.end() || it->second.decl.dir == Dir::kNone) {
        fail(m_.line, "port " + port + " has no input/output declaration");
      }
    }
    for (const std::string& name : {clock_, reset_}) {
      if (name.empty()) continue;
      const auto it = nets_.find(name);
      if (it == nets_.end()) fail(m_.line, "clock/reset net " + name + " is not declared");
      if (it->second.decl.dir != Dir::kInput) {
        fail(it->second.decl.line, "clock/reset net " + name + " must be an input port");
      }
      it->second.clocklike = true;
    }
  }

  /// Port wires first (header order), then internal nets in declaration
  /// order, so module.wires() ordering — which downstream passes use for
  /// deterministic iteration — mirrors the source. Clock/reset nets get no
  /// wire: the IR keeps them implicit.
  void create_wires() {
    std::set<std::string> created;
    const auto create = [&](const std::string& name) {
      NetInfo& info = nets_.at(name);
      if (info.clocklike || !created.insert(name).second) return;
      const ast::Net& d = info.decl;
      switch (d.dir) {
        case Dir::kInput:
          info.wire = mod_->add_input(name, d.width());
          break;
        case Dir::kOutput:
          info.wire = mod_->add_output(name, d.width());
          break;
        case Dir::kNone:
          info.wire = mod_->add_wire(name, d.width());
          break;
      }
    };
    for (const std::string& port : m_.port_order) create(port);
    for (const std::string& name : decl_order_) create(name);
  }

  NetInfo& resolve(const std::string& name, int line) {
    const auto it = nets_.find(name);
    if (it == nets_.end()) fail(line, "unknown net " + name);
    if (it->second.clocklike) {
      fail(line, "clock/reset net " + name +
                     " may only appear in sensitivity lists and reset conditions");
    }
    return it->second;
  }

  // --- signal lowering ------------------------------------------------------

  SigSpec lower_lvalue(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kId:
        return SigSpec(resolve(e.name, e.line).wire);
      case Expr::Kind::kSelect: {
        const Expr& base = *e.args[0];
        if (base.kind != Expr::Kind::kId) fail(e.line, "invalid assignment target");
        const NetInfo& info = resolve(base.name, e.line);
        return extract_select(info, e);
      }
      case Expr::Kind::kConcat: {
        if (e.value != 1) fail(e.line, "replication is not a valid assignment target");
        SigSpec out;  // source order is MSB first; SigSpec is LSB first
        for (auto it = e.args.rbegin(); it != e.args.rend(); ++it) {
          out.append(lower_lvalue(**it));
        }
        return out;
      }
      default:
        fail(e.line, "invalid assignment target");
    }
  }

  SigSpec extract_select(const NetInfo& info, const Expr& sel) {
    const ast::Net& d = info.decl;
    if (sel.msb > d.msb || sel.lsb < d.lsb) {
      fail(sel.line, "select [" + std::to_string(sel.msb) + ":" + std::to_string(sel.lsb) +
                         "] out of range for " + d.name + "[" + std::to_string(d.msb) + ":" +
                         std::to_string(d.lsb) + "]");
    }
    return SigSpec(info.wire).extract(sel.lsb - d.lsb, sel.msb - sel.lsb + 1);
  }

  /// Lowers an rvalue; `ctx_width` (0 = self-determined) sizes unsized
  /// constants and zero-extends narrower constant operands.
  SigSpec lower_rvalue(const Expr& e, int ctx_width) {
    switch (e.kind) {
      case Expr::Kind::kId:
        return SigSpec(resolve(e.name, e.line).wire);
      case Expr::Kind::kSelect: {
        const Expr& base = *e.args[0];
        if (base.kind != Expr::Kind::kId) fail(e.line, "select base must be an identifier");
        return extract_select(resolve(base.name, e.line), e);
      }
      case Expr::Kind::kConst:
        return lower_const(e, ctx_width);
      case Expr::Kind::kConcat: {
        SigSpec one;
        for (auto it = e.args.rbegin(); it != e.args.rend(); ++it) {
          one.append(lower_rvalue(**it, 0));  // concat parts are self-determined
        }
        if (one.width() == 0) fail(e.line, "empty concatenation");
        SigSpec out;
        for (std::uint64_t r = 0; r < e.value; ++r) out.append(one);
        return out;
      }
      case Expr::Kind::kUnary:
      case Expr::Kind::kBinary:
      case Expr::Kind::kTernary:
        return lower_operator(e, ctx_width, SigSpec());
    }
    unreachable("lower_rvalue: bad expr kind");
  }

  SigSpec lower_const(const Expr& e, int ctx_width) {
    if (e.width < 0) {
      if (ctx_width <= 0) {
        fail(e.line, "unsized constant needs a sized context (add an explicit width, "
                     "e.g. 4'd" + std::to_string(e.value) + ")");
      }
      if (ctx_width < 64 && (e.value >> ctx_width) != 0) {
        fail(e.line, "constant " + std::to_string(e.value) + " does not fit " +
                         std::to_string(ctx_width) + " bits");
      }
      std::vector<bool> bits;
      for (int i = 0; i < ctx_width; ++i) {
        bits.push_back(i < 64 && ((e.value >> i) & 1));
      }
      return SigSpec(Const(std::move(bits)));
    }
    std::vector<bool> bits = e.bits;
    if (ctx_width > static_cast<int>(bits.size())) {
      bits.resize(static_cast<std::size_t>(ctx_width), false);  // zero-extend
    }
    return SigSpec(Const(std::move(bits)));
  }

  /// Width reconciliation for binary operands: zero-extends a narrower
  /// fully-constant side; anything else must match exactly.
  void reconcile(SigSpec& a, SigSpec& b, int line, const char* what) {
    if (a.width() == b.width()) return;
    SigSpec& narrow = a.width() < b.width() ? a : b;
    const SigSpec& wide = a.width() < b.width() ? b : a;
    if (narrow.is_fully_const()) {
      SigSpec extended = narrow;
      for (int i = narrow.width(); i < wide.width(); ++i) extended.append(SigBit(false));
      narrow = extended;
      return;
    }
    fail(line, std::string(what) + ": operand widths differ (" + std::to_string(a.width()) +
                   " vs " + std::to_string(b.width()) +
                   "); pad explicitly with a concatenation");
  }

  // Cell emitters with an optional caller-provided output (so `assign y =
  // a & b` drives y directly instead of a fresh wire plus a buffer).
  SigSpec out_or_fresh(const SigSpec& sink, int width, const char* hint, int line) {
    if (sink.width() > 0) {
      if (sink.width() != width) {
        fail(line, "width mismatch: target is " + std::to_string(sink.width()) +
                       " bits but the expression yields " + std::to_string(width));
      }
      return sink;
    }
    return SigSpec(mod_->add_wire(mod_->uniquify(hint), width));
  }

  SigSpec emit1(CellType type, const SigSpec& a, const SigSpec& sink, int y_width,
                const char* hint, int line) {
    const SigSpec y = out_or_fresh(sink, y_width, hint, line);
    rtlil::Cell* c = mod_->add_cell(mod_->uniquify(std::string(hint) + "_c"), type);
    c->set_port("A", a);
    c->set_port("Y", y);
    return y;
  }

  SigSpec emit2(CellType type, const SigSpec& a, const SigSpec& b, const SigSpec& sink,
                int y_width, const char* hint, int line) {
    const SigSpec y = out_or_fresh(sink, y_width, hint, line);
    rtlil::Cell* c = mod_->add_cell(mod_->uniquify(std::string(hint) + "_c"), type);
    c->set_port("A", a);
    c->set_port("B", b);
    c->set_port("Y", y);
    return y;
  }

  /// Lowers an operator node, optionally straight into `sink` (empty = fresh
  /// wire). `ctx_width` sizes the operands of width-preserving operators.
  SigSpec lower_operator(const Expr& e, int ctx_width, const SigSpec& sink) {
    switch (e.kind) {
      case Expr::Kind::kUnary: {
        if (e.op == '~') {
          SigSpec a = lower_rvalue(*e.args[0], ctx_width);
          return emit1(CellType::kNot, a, sink, a.width(), "vnot", e.line);
        }
        if (e.op == '!') {
          SigSpec a = lower_rvalue(*e.args[0], 0);
          if (a.width() == 1) return emit1(CellType::kNot, a, sink, 1, "vlnot", e.line);
          const SigSpec any = emit1(CellType::kReduceOr, a, SigSpec(), 1, "vlnor", e.line);
          return emit1(CellType::kNot, any, sink, 1, "vlnot", e.line);
        }
        // Reductions.
        SigSpec a = lower_rvalue(*e.args[0], 0);
        const CellType type = e.op == '&'   ? CellType::kReduceAnd
                              : e.op == '|' ? CellType::kReduceOr
                                            : CellType::kReduceXor;
        return emit1(type, a, sink, 1, "vred", e.line);
      }
      case Expr::Kind::kBinary: {
        if (e.op == '=') {
          SigSpec a = lower_rvalue(*e.args[0], 0);
          SigSpec b = lower_rvalue(*e.args[1], a.width());
          reconcile(a, b, e.line, "==");
          return emit2(CellType::kEq, a, b, sink, 1, "veq", e.line);
        }
        SigSpec a = lower_rvalue(*e.args[0], ctx_width);
        SigSpec b = lower_rvalue(*e.args[1], ctx_width > 0 ? ctx_width : a.width());
        reconcile(a, b, e.line, "bitwise operator");
        const CellType type = e.op == '&'   ? CellType::kAnd
                              : e.op == '|' ? CellType::kOr
                                            : CellType::kXor;
        return emit2(type, a, b, sink, a.width(), "vbin", e.line);
      }
      case Expr::Kind::kTernary: {
        SigSpec s = lower_rvalue(*e.args[0], 0);
        if (s.width() != 1) {
          fail(e.line, "ternary condition must be 1 bit (reduce it explicitly)");
        }
        SigSpec t = lower_rvalue(*e.args[1], ctx_width);
        SigSpec f = lower_rvalue(*e.args[2], ctx_width > 0 ? ctx_width : t.width());
        reconcile(t, f, e.line, "ternary");
        // kMux: Y = S ? B : A.
        const SigSpec y = out_or_fresh(sink, t.width(), "vmux", e.line);
        rtlil::Cell* c = mod_->add_cell(mod_->uniquify("vmux_c"), CellType::kMux);
        c->set_port("S", s);
        c->set_port("A", f);
        c->set_port("B", t);
        c->set_port("Y", y);
        return y;
      }
      default:
        unreachable("lower_operator: not an operator");
    }
  }

  void lower_assign(const ast::Assign& a) {
    const SigSpec lhs = lower_lvalue(*a.lhs);
    const Expr& rhs = *a.rhs;
    if (rhs.kind == Expr::Kind::kUnary || rhs.kind == Expr::Kind::kBinary ||
        rhs.kind == Expr::Kind::kTernary) {
      const SigSpec y = lower_operator(rhs, lhs.width(), lhs);
      if (y.width() != lhs.width()) {
        fail(a.line, "assign width mismatch: lhs " + std::to_string(lhs.width()) + " vs rhs " +
                         std::to_string(y.width()));
      }
      return;
    }
    SigSpec value = lower_rvalue(rhs, lhs.width());
    if (value.width() != lhs.width()) {
      if (value.is_fully_const() && value.width() < lhs.width()) {
        for (int i = value.width(); i < lhs.width(); ++i) value.append(SigBit(false));
      } else {
        fail(a.line, "assign width mismatch: lhs " + std::to_string(lhs.width()) + " vs rhs " +
                         std::to_string(value.width()));
      }
    }
    mod_->drive(lhs, value);
  }

  void lower_gate(const ast::GateInst& g) {
    // Terminal 0 is the output (buf/not: all but the last are outputs).
    std::vector<SigSpec> terms;
    terms.reserve(g.terminals.size());
    for (std::size_t i = 0; i < g.terminals.size(); ++i) {
      const bool is_output =
          (g.prim == "buf" || g.prim == "not") ? i + 1 < g.terminals.size() : i == 0;
      SigSpec t = is_output ? lower_lvalue(*g.terminals[i]) : lower_rvalue(*g.terminals[i], 1);
      if (t.width() != 1) {
        fail(g.line, "primitive '" + g.prim + "' terminals must be 1 bit");
      }
      terms.push_back(std::move(t));
    }
    if (g.prim == "buf" || g.prim == "not") {
      const SigSpec& in = terms.back();
      const CellType type = g.prim == "buf" ? CellType::kGateBuf : CellType::kGateInv;
      for (std::size_t i = 0; i + 1 < terms.size(); ++i) {
        emit1(type, in, terms[i], 1, "vgate", g.line);
      }
      return;
    }
    const CellType base = (g.prim == "and" || g.prim == "nand")  ? CellType::kGateAnd2
                          : (g.prim == "or" || g.prim == "nor")  ? CellType::kGateOr2
                                                                 : CellType::kGateXor2;
    const CellType final_type = g.prim == "nand"   ? CellType::kGateNand2
                                : g.prim == "nor"  ? CellType::kGateNor2
                                : g.prim == "xnor" ? CellType::kGateXnor2
                                                   : base;
    // Fold inputs left to right; the last 2-input stage uses the (possibly
    // inverting) primitive type and drives the output terminal directly.
    SigSpec acc = terms[1];
    for (std::size_t i = 2; i + 1 < terms.size(); ++i) {
      acc = emit2(base, acc, terms[i], SigSpec(), 1, "vgate", g.line);
    }
    emit2(final_type, acc, terms.back(), terms[0], 1, "vgate", g.line);
  }

  void lower_always(const ast::AlwaysFf& ff) {
    // Pair every data assignment with its reset constant by lowered target.
    std::vector<std::pair<SigSpec, Const>> resets;
    for (const ast::NbAssign& r : ff.reset_assigns) {
      const SigSpec q = lower_lvalue(*r.lhs);
      const SigSpec value = lower_rvalue(*r.rhs, q.width());
      if (!value.is_fully_const()) {
        fail(r.line, "reset value must be a constant");
      }
      if (value.width() != q.width()) {
        fail(r.line, "reset width mismatch for register");
      }
      std::vector<bool> bits;
      for (const SigBit& b : value.bits()) bits.push_back(b.const_value());
      resets.emplace_back(q, Const(std::move(bits)));
    }
    std::vector<bool> reset_used(resets.size(), false);
    for (const ast::NbAssign& d : ff.data_assigns) {
      const SigSpec q = lower_lvalue(*d.lhs);
      const SigSpec next = lower_rvalue(*d.rhs, q.width());
      if (next.width() != q.width()) {
        fail(d.line, "register width mismatch: target " + std::to_string(q.width()) +
                         " vs expression " + std::to_string(next.width()));
      }
      Const reset = Const(std::vector<bool>(static_cast<std::size_t>(q.width()), false));
      if (!ff.reset_assigns.empty()) {
        bool found = false;
        for (std::size_t i = 0; i < resets.size(); ++i) {
          if (resets[i].first == q) {
            reset = resets[i].second;
            reset_used[i] = true;
            found = true;
            break;
          }
        }
        if (!found) {
          fail(d.line, "register has no assignment in the reset branch");
        }
      }
      rtlil::Cell* cell = mod_->add_cell(mod_->uniquify("vff"), CellType::kDff);
      cell->set_port("D", next);
      cell->set_port("Q", q);
      cell->set_reset_value(std::move(reset));
    }
    for (std::size_t i = 0; i < reset_used.size(); ++i) {
      if (!reset_used[i]) {
        fail(ff.reset_assigns[i].line,
             "register is reset but never assigned in the data branch");
      }
    }
  }

  /// The writer emits clock/reset ports even for combinational modules
  /// (conventionally clk/rst_n, or the scfi_-prefixed fallbacks when those
  /// names are taken); when no always block claimed them, drop them if they
  /// ended up as completely unreferenced input wires.
  void prune_vestigial_clock_ports() {
    std::set<const rtlil::Wire*> referenced;
    for (const rtlil::Cell* cell : mod_->cells()) {
      for (const auto& [port, sig] : cell->ports()) {
        for (const SigBit& bit : sig.bits()) {
          if (!bit.is_const()) referenced.insert(bit.wire);
        }
      }
    }
    const auto conventional = [](const std::string& name) {
      return name == "clk" || name == "rst_n" || name == "scfi_clk" || name == "scfi_rst_n";
    };
    std::vector<rtlil::Wire*> dead;
    for (rtlil::Wire* w : mod_->wires()) {
      if (w->is_input() && referenced.count(w) == 0 && conventional(w->name())) {
        dead.push_back(w);
      }
    }
    mod_->remove_wires(dead);
  }

  const ast::Module& m_;
  rtlil::Design& design_;
  const std::string& filename_;
  rtlil::Module* mod_ = nullptr;
  std::map<std::string, NetInfo> nets_;
  std::vector<std::string> decl_order_;
  std::string clock_;
  std::string reset_;
};

}  // namespace

ast::File parse_verilog(const std::string& text, const std::string& filename) {
  Parser parser(text, filename);
  return parser.parse_file();
}

rtlil::Module& elaborate(const ast::Module& module, rtlil::Design& design,
                         const std::string& filename) {
  Elaborator elab(module, design, filename);
  return elab.run();
}

std::vector<rtlil::Module*> read_verilog(const std::string& text, rtlil::Design& design,
                                         const std::string& filename) {
  const ast::File file = parse_verilog(text, filename);
  require(!file.modules.empty(), "verilog: " + filename + ": no modules found");
  std::vector<rtlil::Module*> modules;
  modules.reserve(file.modules.size());
  for (const ast::Module& m : file.modules) {
    modules.push_back(&elaborate(m, design, filename));
  }
  return modules;
}

std::vector<rtlil::Module*> read_verilog_file(const std::string& path, rtlil::Design& design) {
  std::ifstream in(path);
  require(static_cast<bool>(in), "verilog: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_verilog(buffer.str(), design, path);
}

}  // namespace scfi::frontends
