// Structural Verilog-2001 front door: parser + elaborator into the RTLIL
// netlist IR — the read-side complement of backends/verilog.cpp.
//
// Supported subset (the writer's output plus common synthesized-netlist
// idioms):
//   * `module`/`endmodule` with ANSI (`module m (input wire [3:0] a, ...)`)
//     or non-ANSI (`module m (a, b); input [3:0] a; ...`) port styles
//   * `wire`/`reg` declarations with `[msb:lsb]` ranges (lsb need not be 0)
//   * continuous `assign` with bitwise (`~ & | ^`), reduction (`&a |a ^a`),
//     logical-not (`!`), equality (`==`), and ternary (`s ? b : a`)
//     expressions over identifiers, bit-/part-selects, concatenations and
//     sized/based constants
//   * primitive gate instantiations (`and`/`nand`/`or`/`nor`/`xor`/`xnor`
//     with 2+ inputs, `buf`/`not` with 1+ outputs)
//   * single-clock always-block DFFs: `always @(posedge clk [or negedge
//     rst]) [begin] if (!rst) q <= <const>; else q <= d; [end]` with any
//     number of nonblocking target pairs; reset optional
//   * `//`, `/* */` comments, `(* attribute *)` skipping, `\`-escaped
//     identifiers
//
// Elaboration policy: the netlist IR keeps clock and reset implicit (every
// kDff is posedge-clocked with an async active-low reset applied by the
// simulator), so the clock/reset nets named in sensitivity lists are
// consumed during elaboration and dropped from the module — they may not
// feed any logic. `rtlil::validate_module` runs on every elaborated module
// as the post-load gate. Every malformed input raises ScfiError naming the
// file and line.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "rtlil/design.h"

namespace scfi::frontends {

// --- AST (exposed for the parser unit tests; most callers want
// read_verilog below) -------------------------------------------------------

namespace ast {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression tree node. `op` holds the operator spelling for kUnary
/// ('~', '!', '&', '|', '^') and kBinary ('&', '|', '^', '=' for ==).
struct Expr {
  enum class Kind : std::uint8_t {
    kId,       ///< name
    kConst,    ///< width (-1 = unsized decimal) + bits/value
    kUnary,    ///< op, args[0]
    kBinary,   ///< op, args[0], args[1]
    kTernary,  ///< args[0] ? args[1] : args[2]
    kConcat,   ///< args, MSB-first as written
    kSelect,   ///< args[0] = base id, [msb:lsb] (bit-select: msb == lsb)
  };
  Kind kind = Kind::kId;
  int line = 0;
  std::string name;             // kId
  int width = -1;               // kConst: -1 = unsized decimal
  std::uint64_t value = 0;      // kConst, unsized
  std::vector<bool> bits;       // kConst, sized (LSB first)
  char op = 0;                  // kUnary/kBinary
  int msb = 0, lsb = 0;         // kSelect
  std::vector<ExprPtr> args;
};

enum class Dir : std::uint8_t { kNone, kInput, kOutput };

/// One declared net (port or internal). `msb < lsb` never occurs (rejected
/// at parse time); scalar nets have msb == lsb == 0.
struct Net {
  std::string name;
  Dir dir = Dir::kNone;
  bool is_reg = false;
  bool has_range = false;
  int msb = 0, lsb = 0;
  int line = 0;

  int width() const { return msb - lsb + 1; }
};

struct Assign {
  ExprPtr lhs;
  ExprPtr rhs;
  int line = 0;
};

struct GateInst {
  std::string prim;  ///< and/nand/or/nor/xor/xnor/buf/not
  std::string name;  ///< optional instance name ("" when omitted)
  std::vector<ExprPtr> terminals;
  int line = 0;
};

/// One `q <= expr;` nonblocking assignment inside an always block.
struct NbAssign {
  ExprPtr lhs;
  ExprPtr rhs;
  int line = 0;
};

struct AlwaysFf {
  std::string clock;                  ///< posedge net
  std::string reset;                  ///< negedge net; "" = no async reset
  std::vector<NbAssign> reset_assigns;  ///< `if (!reset)` branch
  std::vector<NbAssign> data_assigns;   ///< else branch (or whole body)
  int line = 0;
};

struct Module {
  std::string name;
  std::vector<std::string> port_order;  ///< header order
  std::vector<Net> nets;                ///< declaration order
  std::vector<Assign> assigns;
  std::vector<GateInst> gates;
  std::vector<AlwaysFf> always_ffs;
  int line = 0;
};

struct File {
  std::vector<Module> modules;
};

}  // namespace ast

/// Parses Verilog text into the AST (no elaboration). Throws ScfiError on
/// any syntax error, naming `filename` and the line.
ast::File parse_verilog(const std::string& text, const std::string& filename = "<verilog>");

/// Elaborates one parsed module into `design` (module name = AST name).
/// Runs rtlil::validate_module on the result. Throws ScfiError on semantic
/// errors (unknown nets, width mismatches, multi-clock always blocks,
/// clock/reset nets feeding logic, duplicate module names, ...).
rtlil::Module& elaborate(const ast::Module& module, rtlil::Design& design,
                         const std::string& filename = "<verilog>");

/// Parse + elaborate every module in `text` into `design` (file order).
/// Returns the elaborated modules. The one-call front door:
///   rtlil::Design d;
///   frontends::read_verilog(text, d, "netlist.v");
std::vector<rtlil::Module*> read_verilog(const std::string& text, rtlil::Design& design,
                                         const std::string& filename = "<verilog>");

/// Reads and ingests a `.v` file from disk (ScfiError when unreadable).
std::vector<rtlil::Module*> read_verilog_file(const std::string& path, rtlil::Design& design);

}  // namespace scfi::frontends
