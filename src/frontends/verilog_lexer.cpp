#include "frontends/verilog_lexer.h"

#include <cctype>
#include <cstring>
#include <unordered_set>

#include "base/error.h"

namespace scfi::frontends {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool space_char(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}

/// Verilog-2001 reserved words that can plausibly collide with netlist
/// names. Escaping a non-reserved word is always legal, so the list errs on
/// the generous side rather than aiming for completeness.
const std::unordered_set<std::string>& reserved_words() {
  static const std::unordered_set<std::string> kWords = {
      "always",   "and",       "assign",   "begin",    "buf",      "case",
      "casex",    "casez",     "default",  "defparam", "else",     "end",
      "endcase",  "endfunction", "endmodule", "endtask", "for",    "function",
      "generate", "endgenerate", "genvar",  "if",       "inout",   "initial",
      "input",    "integer",   "localparam", "module",  "nand",    "negedge",
      "nor",      "not",       "or",       "output",   "parameter", "posedge",
      "real",     "reg",       "repeat",   "signed",   "supply0",  "supply1",
      "task",     "tri",       "tri0",     "tri1",     "wand",     "while",
      "wire",     "wor",       "xnor",     "xor",
  };
  return kWords;
}

}  // namespace

bool verilog_needs_escape(const std::string& name) {
  if (name.empty()) return true;
  if (!ident_start(name[0])) return true;  // leading digit, '$', or other
  for (char c : name) {
    if (!ident_char(c)) return true;
  }
  return reserved_words().count(name) != 0;
}

bool Token::is_punct(const char* p) const {
  return kind == TokKind::kPunct && text == p;
}

bool Token::is_keyword(const char* kw) const {
  return kind == TokKind::kId && !escaped && text == kw;
}

VerilogLexer::VerilogLexer(std::string_view text, std::string filename)
    : filename_(std::move(filename)) {
  tokenize(text);
}

const Token& VerilogLexer::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < tokens_.size() ? tokens_[i] : tokens_.back();  // last is kEof
}

Token VerilogLexer::next() {
  Token t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

void VerilogLexer::fail(const std::string& msg, int line) const {
  if (line == 0) line = peek().line;
  throw ScfiError("verilog: " + filename_ + ":" + std::to_string(line) + ": " + msg);
}

void VerilogLexer::tokenize(std::string_view text) {
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = text.size();
  const auto raise = [&](const std::string& msg) {
    throw ScfiError("verilog: " + filename_ + ":" + std::to_string(line) + ": " + msg);
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (space_char(c)) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      i += 2;
      for (;; ++i) {
        if (i + 1 >= n) {
          line = start_line;
          raise("unterminated /* comment");
        }
        if (text[i] == '\n') ++line;
        if (text[i] == '*' && text[i + 1] == '/') break;
      }
      i += 2;
      continue;
    }
    // Attribute instances `(* ... *)` carry synthesis hints we do not model;
    // skip them wholesale (string values containing `*)` are out of scope).
    if (c == '(' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      i += 2;
      for (;; ++i) {
        if (i + 1 >= n) {
          line = start_line;
          raise("unterminated (* attribute");
        }
        if (text[i] == '\n') ++line;
        if (text[i] == '*' && text[i + 1] == ')') break;
      }
      i += 2;
      continue;
    }
    // Escaped identifier: `\` up to the next whitespace.
    if (c == '\\') {
      const std::size_t start = ++i;
      while (i < n && !space_char(text[i])) ++i;
      if (i == start) raise("empty \\-escaped identifier");
      Token t;
      t.kind = TokKind::kId;
      t.text = std::string(text.substr(start, i - start));
      t.line = line;
      t.escaped = true;
      tokens_.push_back(std::move(t));
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(text[i])) ++i;
      Token t;
      t.kind = TokKind::kId;
      t.text = std::string(text.substr(start, i - start));
      t.line = line;
      tokens_.push_back(std::move(t));
      continue;
    }
    // Number: [size]'<base><digits> or a plain decimal run. The parser
    // interprets the text; the lexer only delimits it.
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
      const std::size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '_')) ++i;
      if (i < n && text[i] == '\'') {
        ++i;
        if (i >= n || std::strchr("bBdDhHoO", text[i]) == nullptr) {
          raise("malformed based literal (expected b/d/h/o after ')");
        }
        ++i;
        const std::size_t digits = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_')) {
          ++i;
        }
        if (i == digits) raise("based literal has no digits");
      }
      Token t;
      t.kind = TokKind::kNumber;
      t.text = std::string(text.substr(start, i - start));
      t.line = line;
      tokens_.push_back(std::move(t));
      continue;
    }
    // Punctuation; two-char operators first.
    Token t;
    t.kind = TokKind::kPunct;
    t.line = line;
    if (i + 1 < n && ((c == '<' && text[i + 1] == '=') || (c == '=' && text[i + 1] == '=') ||
                      (c == '!' && text[i + 1] == '=') || (c == '&' && text[i + 1] == '&') ||
                      (c == '|' && text[i + 1] == '|'))) {
      t.text = std::string(text.substr(i, 2));
      i += 2;
    } else if (std::strchr("()[]{};,:.?~!&|^=@#*+-<>", c) != nullptr) {
      t.text = std::string(1, c);
      ++i;
    } else {
      raise(std::string("unexpected character '") + c + "'");
    }
    tokens_.push_back(std::move(t));
  }
  Token eof;
  eof.kind = TokKind::kEof;
  eof.text = "<eof>";
  eof.line = line;
  tokens_.push_back(std::move(eof));
}

}  // namespace scfi::frontends
