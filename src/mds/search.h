// Randomized search for low-XOR-count MDS straight-line programs.
//
// The paper notes (§7) that adapting the MDS matrix to the input size could
// further improve the area-time product. This module provides the search
// harness used to explore alternative programs: it samples random SLPs with
// a bounded operation budget and keeps those that pass the exact MDS check.
#pragma once

#include <optional>

#include "base/rng.h"
#include "mds/slp.h"

namespace scfi::mds {

struct SearchSpec {
  int words = 4;          ///< matrix dimension (byte words)
  int max_xor_ops = 12;   ///< word-XOR budget
  int max_alpha_ops = 4;  ///< alpha-multiplication budget
  int iterations = 20000; ///< random samples to try
};

struct SearchResult {
  Slp slp;
  int xor_gates = 0;
  int depth = 0;
};

/// Returns the cheapest MDS program found within the budget, if any.
std::optional<SearchResult> search_mds_slp(const SearchSpec& spec, Rng& rng);

/// Searches over *in-place* register programs of generalized XORs
/// xi ^= scale * xj with scale in {1, alpha} — the program shape of the
/// Duval-Leurent lightweight MDS constructions (a plain op costs 8 XOR
/// gates, an alpha-scaled op 9, so 5 plain + 3 scaled = the paper's 67).
/// Hill climbing on the number of unit minors with random restarts. This is
/// how the repository's baked-in low-XOR construction was produced.
struct InplaceSearchSpec {
  int plain_ops = 5;
  int scaled_ops = 3;
  int restarts = 2000;
  int climb_steps = 400;
};
std::optional<SearchResult> search_mds_inplace(const InplaceSearchSpec& spec, Rng& rng);

}  // namespace scfi::mds
