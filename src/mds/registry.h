// Named, pre-verified MDS diffusion constructions.
//
// The paper instantiates the Duval-Leurent M^{8,3}_{4,6} matrix (4x4 bytes,
// 67 XOR gates, alpha-multiplications costing one XOR each, low XOR count
// traded against a slightly larger logical depth). The exact published
// straight-line program is not reproduced in the paper, so this registry
// provides:
//   * "scfi-m8346"  — the default: a 9-op in-place program found by the
//                     exhaustive generalized-XOR search (src/mds/search.h):
//                     6 plain + 3 alpha-scaled ops = 75 XOR gates. Like the
//                     paper's M_{4,6} it minimizes XOR count at the price of
//                     depth.
//   * "scfi-shared" — hand-optimized circulant(alpha, alpha+1, 1, 1):
//                     12 word-XORs + 4 alpha = 100 XOR gates, only 3 XOR
//                     layers deep (the low-depth alternative).
//   * "scfi-naive"  — the circulant compiled naively (ablation baseline).
// All constructions are verified MDS (branch number 5) at construction time.
#pragma once

#include <string>
#include <vector>

#include "mds/slp.h"

namespace scfi::mds {

struct Construction {
  std::string name;
  Slp slp;
  gf2::Matrix bit_matrix;  ///< 32x32 exact linear map
  int xor_gates = 0;
  int depth = 0;
};

/// Returns the construction registered under `name`; throws ScfiError for
/// unknown names.
const Construction& construction(const std::string& name);

/// Default construction used by the SCFI pass.
const Construction& default_construction();

/// All registered names.
std::vector<std::string> construction_names();

}  // namespace scfi::mds
