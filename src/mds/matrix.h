// Word-level matrices over the ring F2[X]/(X^8+X^2+1) and their compilation
// into straight-line programs.
#pragma once

#include <cstdint>
#include <vector>

#include "mds/slp.h"

namespace scfi::mds {

class RingMatrix;

/// Extracts the ring-level matrix computed by an SLP (every SLP op is
/// ring-linear, so this is always possible).
RingMatrix ring_matrix_of(const Slp& slp);

/// Ring coefficients of every SSA value of the program over its inputs
/// (one row per value, num_inputs() entries each).
std::vector<std::vector<std::uint8_t>> ring_coefficients(const Slp& slp);

/// Square word matrix with ring-element entries (row-major).
class RingMatrix {
 public:
  RingMatrix(int n, std::vector<std::uint8_t> entries);

  static RingMatrix circulant(std::vector<std::uint8_t> first_row);

  int size() const { return n_; }
  std::uint8_t at(int r, int c) const;

  /// Exact MDS test via the block-submatrix criterion on the bit expansion.
  bool is_mds() const;

  /// Equivalent MDS test via ring minors: every square submatrix determinant
  /// must be a unit of F2[X]/(X^8+X^2+1). Much faster; used by the search.
  bool is_mds_by_minors() const;

  /// Naive SLP: per-row xtime chains and XOR accumulation, with the xtime
  /// chains shared between rows. No cross-row subexpression sharing.
  Slp to_naive_slp() const;

  /// Bit-level expansion ((8n) x (8n)).
  gf2::Matrix to_bit_matrix() const;

 private:
  int n_;
  std::vector<std::uint8_t> e_;
};

}  // namespace scfi::mds
