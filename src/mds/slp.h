// Straight-line programs (SLPs) over byte words.
//
// An MDS diffusion circuit is represented as an SSA sequence of word
// operations: XOR of two previously defined words, or multiplication by alpha
// in F2[X]/(X^8+X^2+1). An SLP can be evaluated on concrete bytes, expanded
// into its exact GF(2) bit-matrix, costed in 2-input XOR gates, and emitted
// as a gate netlist by the hardening pass.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gf2/matrix.h"

namespace scfi::mds {

struct SlpOp {
  enum class Kind { kXor, kMulAlpha };
  Kind kind = Kind::kXor;
  int a = 0;  ///< operand value index
  int b = 0;  ///< second operand (kXor only)
};

class Slp {
 public:
  /// `inputs` byte-wide input words; operations are appended with add_*().
  explicit Slp(int inputs);

  /// Appends dst = a ^ b; returns the new value index.
  int add_xor(int a, int b);

  /// Appends dst = alpha * a; returns the new value index.
  int add_mul_alpha(int a);

  /// Declares the output word order (value indices).
  void set_outputs(std::vector<int> outputs);

  int num_inputs() const { return inputs_; }
  int num_values() const { return inputs_ + static_cast<int>(ops_.size()); }
  const std::vector<SlpOp>& ops() const { return ops_; }
  const std::vector<int>& outputs() const { return outputs_; }

  /// Evaluates on concrete bytes (in.size() == num_inputs()).
  std::vector<std::uint8_t> eval(std::span<const std::uint8_t> in) const;

  /// Exact bit-level linear map: (8*outputs) x (8*inputs) over GF(2).
  /// Bit layout: word w bit b maps to index 8*w + b.
  gf2::Matrix to_bit_matrix() const;

  /// Total 2-input XOR gates: 8 per word XOR, 1 per alpha multiplication.
  int xor_gate_count() const;

  /// Longest chain of XOR layers from any input to any output.
  int xor_depth() const;

 private:
  int inputs_;
  std::vector<SlpOp> ops_;
  std::vector<int> outputs_;
};

/// True iff the linear map is MDS, i.e. has branch number words+1 when the
/// 8w x 8w bit matrix is interpreted as w x w blocks of 8x8. Uses the exact
/// criterion: every square block submatrix must be nonsingular.
bool is_mds(const gf2::Matrix& bit_matrix, int words, int word_bits = 8);

}  // namespace scfi::mds
