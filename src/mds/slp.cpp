#include "mds/slp.h"

#include <algorithm>
#include <array>
#include <bit>

#include "base/error.h"
#include "gf2/poly8.h"

namespace scfi::mds {

Slp::Slp(int inputs) : inputs_(inputs) {
  check(inputs > 0, "Slp: need at least one input");
}

int Slp::add_xor(int a, int b) {
  check(a >= 0 && a < num_values() && b >= 0 && b < num_values(), "Slp::add_xor: bad operand");
  ops_.push_back(SlpOp{SlpOp::Kind::kXor, a, b});
  return num_values() - 1;
}

int Slp::add_mul_alpha(int a) {
  check(a >= 0 && a < num_values(), "Slp::add_mul_alpha: bad operand");
  ops_.push_back(SlpOp{SlpOp::Kind::kMulAlpha, a, 0});
  return num_values() - 1;
}

void Slp::set_outputs(std::vector<int> outputs) {
  for (int v : outputs) check(v >= 0 && v < num_values(), "Slp::set_outputs: bad value index");
  outputs_ = std::move(outputs);
}

std::vector<std::uint8_t> Slp::eval(std::span<const std::uint8_t> in) const {
  check(static_cast<int>(in.size()) == inputs_, "Slp::eval: wrong input count");
  std::vector<std::uint8_t> value(in.begin(), in.end());
  value.reserve(static_cast<std::size_t>(num_values()));
  for (const SlpOp& op : ops_) {
    const std::uint8_t va = value[static_cast<std::size_t>(op.a)];
    if (op.kind == SlpOp::Kind::kXor) {
      value.push_back(static_cast<std::uint8_t>(va ^ value[static_cast<std::size_t>(op.b)]));
    } else {
      value.push_back(gf2::xtime(va));
    }
  }
  std::vector<std::uint8_t> out;
  out.reserve(outputs_.size());
  for (int v : outputs_) out.push_back(value[static_cast<std::size_t>(v)]);
  return out;
}

gf2::Matrix Slp::to_bit_matrix() const {
  check(!outputs_.empty(), "Slp::to_bit_matrix: outputs not set");
  const int in_bits = 8 * inputs_;
  // Track, for every SSA value, each of its 8 bits as a linear combination of
  // the input bits.
  std::vector<std::array<gf2::BitVec, 8>> value;
  value.reserve(static_cast<std::size_t>(num_values()));
  for (int w = 0; w < inputs_; ++w) {
    std::array<gf2::BitVec, 8> bits;
    for (int b = 0; b < 8; ++b) {
      bits[static_cast<std::size_t>(b)] = gf2::BitVec(in_bits);
      bits[static_cast<std::size_t>(b)].set(8 * w + b, true);
    }
    value.push_back(std::move(bits));
  }
  for (const SlpOp& op : ops_) {
    std::array<gf2::BitVec, 8> bits;
    const auto& va = value[static_cast<std::size_t>(op.a)];
    if (op.kind == SlpOp::Kind::kXor) {
      const auto& vb = value[static_cast<std::size_t>(op.b)];
      for (int b = 0; b < 8; ++b) {
        bits[static_cast<std::size_t>(b)] =
            va[static_cast<std::size_t>(b)] ^ vb[static_cast<std::size_t>(b)];
      }
    } else {
      // alpha * v: out[0]=v[7], out[1]=v[0], out[2]=v[1]^v[7], out[k]=v[k-1].
      bits[0] = va[7];
      for (int b = 1; b < 8; ++b) bits[static_cast<std::size_t>(b)] = va[static_cast<std::size_t>(b - 1)];
      bits[2] ^= va[7];
    }
    value.push_back(std::move(bits));
  }
  gf2::Matrix m(8 * static_cast<int>(outputs_.size()), in_bits);
  for (std::size_t w = 0; w < outputs_.size(); ++w) {
    const auto& bits = value[static_cast<std::size_t>(outputs_[w])];
    for (int b = 0; b < 8; ++b) m.row(static_cast<int>(8 * w) + b) = bits[static_cast<std::size_t>(b)];
  }
  return m;
}

int Slp::xor_gate_count() const {
  int n = 0;
  for (const SlpOp& op : ops_) n += (op.kind == SlpOp::Kind::kXor) ? 8 : 1;
  return n;
}

int Slp::xor_depth() const {
  std::vector<int> depth(static_cast<std::size_t>(num_values()), 0);
  int i = inputs_;
  for (const SlpOp& op : ops_) {
    const int da = depth[static_cast<std::size_t>(op.a)];
    if (op.kind == SlpOp::Kind::kXor) {
      depth[static_cast<std::size_t>(i)] = std::max(da, depth[static_cast<std::size_t>(op.b)]) + 1;
    } else {
      depth[static_cast<std::size_t>(i)] = da + 1;
    }
    ++i;
  }
  int worst = 0;
  for (int v : outputs_) worst = std::max(worst, depth[static_cast<std::size_t>(v)]);
  return worst;
}

bool is_mds(const gf2::Matrix& bit_matrix, int words, int word_bits) {
  check(bit_matrix.rows() == words * word_bits && bit_matrix.cols() == words * word_bits,
        "is_mds: matrix shape mismatch");
  // Criterion (exact, standard for codes over vector alphabets): the map has
  // branch number words+1 iff every square block submatrix is nonsingular.
  const int n = words;
  for (std::uint32_t rmask = 1; rmask < (1u << n); ++rmask) {
    for (std::uint32_t cmask = 1; cmask < (1u << n); ++cmask) {
      if (std::popcount(rmask) != std::popcount(cmask)) continue;
      std::vector<int> rows;
      std::vector<int> cols;
      for (int i = 0; i < n; ++i) {
        if ((rmask >> i) & 1) {
          for (int b = 0; b < word_bits; ++b) rows.push_back(i * word_bits + b);
        }
        if ((cmask >> i) & 1) {
          for (int b = 0; b < word_bits; ++b) cols.push_back(i * word_bits + b);
        }
      }
      const gf2::Matrix sub = bit_matrix.submatrix(rows, cols);
      if (sub.rank() != static_cast<int>(rows.size())) return false;
    }
  }
  return true;
}

}  // namespace scfi::mds
