#include "mds/search.h"

#include <algorithm>
#include <functional>
#include <bit>

#include "base/error.h"
#include "gf2/poly8.h"
#include "mds/matrix.h"

namespace scfi::mds {
namespace {

/// Samples one random SLP within the budget. Outputs are the last `words`
/// defined values, which biases the search toward programs that actually use
/// their late operations.
Slp sample(const SearchSpec& spec, Rng& rng) {
  Slp slp(spec.words);
  std::vector<SlpOp::Kind> kinds;
  const int xors = static_cast<int>(rng.range(static_cast<std::uint64_t>(spec.words * 2),
                                              static_cast<std::uint64_t>(spec.max_xor_ops)));
  const int alphas = static_cast<int>(rng.range(1, static_cast<std::uint64_t>(spec.max_alpha_ops)));
  for (int i = 0; i < xors; ++i) kinds.push_back(SlpOp::Kind::kXor);
  for (int i = 0; i < alphas; ++i) kinds.push_back(SlpOp::Kind::kMulAlpha);
  rng.shuffle(kinds);
  for (const auto kind : kinds) {
    const int n = slp.num_values();
    if (kind == SlpOp::Kind::kXor) {
      const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      int b = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      if (b == a) b = (b + 1) % n;
      slp.add_xor(a, b);
    } else {
      slp.add_mul_alpha(static_cast<int>(rng.below(static_cast<std::uint64_t>(n))));
    }
  }
  std::vector<int> outs;
  for (int i = 0; i < spec.words; ++i) outs.push_back(slp.num_values() - spec.words + i);
  slp.set_outputs(std::move(outs));
  return slp;
}

}  // namespace

namespace {

/// Tries every 4-subset of the program's full-weight values as the output
/// tuple; returns an MDS-selecting Slp when one exists.
std::optional<Slp> select_mds_outputs(const Slp& cand, int words) {
  const std::vector<std::vector<std::uint8_t>> coeffs = ring_coefficients(cand);
  std::vector<int> full_weight;
  for (int v = words; v < cand.num_values(); ++v) {
    bool full = true;
    for (int c = 0; c < words; ++c) {
      full &= coeffs[static_cast<std::size_t>(v)][static_cast<std::size_t>(c)] != 0;
    }
    if (full) full_weight.push_back(v);
  }
  if (static_cast<int>(full_weight.size()) < words) return std::nullopt;
  // Enumerate subsets (the candidate pool is small in practice).
  const std::size_t n = full_weight.size();
  std::vector<std::size_t> idx(static_cast<std::size_t>(words));
  for (std::size_t a = 0; a + 3 < n; ++a) {
    for (std::size_t b = a + 1; b + 2 < n; ++b) {
      for (std::size_t c = b + 1; c + 1 < n; ++c) {
        for (std::size_t d = c + 1; d < n; ++d) {
          Slp trial = cand;
          trial.set_outputs({full_weight[a], full_weight[b], full_weight[c], full_weight[d]});
          if (ring_matrix_of(trial).is_mds_by_minors()) return trial;
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace

namespace {

struct InplaceOp {
  bool scaled = false;  // dst ^= alpha * src (else dst ^= src)
  int dst = 0;
  int src = 0;
};

/// Applies the program to the identity and counts unit minors (max 69 for
/// 4x4); 69 means MDS.
int score_inplace(const std::vector<InplaceOp>& ops) {
  std::uint8_t m[4][4] = {};
  for (int i = 0; i < 4; ++i) m[i][i] = 1;
  for (const InplaceOp& op : ops) {
    for (int c = 0; c < 4; ++c) {
      const std::uint8_t term =
          op.scaled ? gf2::ring_mul(m[op.src][c], 0x02) : m[op.src][c];
      m[op.dst][c] = static_cast<std::uint8_t>(m[op.dst][c] ^ term);
    }
  }
  // Count unit minors over all square submatrices.
  std::vector<std::uint8_t> flat;
  for (auto& row : m) {
    for (std::uint8_t e : row) flat.push_back(e);
  }
  const RingMatrix rm(4, flat);
  int good = 0;
  for (std::uint32_t rmask = 1; rmask < 16; ++rmask) {
    for (std::uint32_t cmask = 1; cmask < 16; ++cmask) {
      if (std::popcount(rmask) != std::popcount(cmask)) continue;
      std::vector<int> rows;
      std::vector<int> cols;
      for (int i = 0; i < 4; ++i) {
        if ((rmask >> i) & 1) rows.push_back(i);
        if ((cmask >> i) & 1) cols.push_back(i);
      }
      // Submatrix-restricted determinant check via a tiny RingMatrix.
      std::vector<std::uint8_t> sub;
      for (int r : rows) {
        for (int c : cols) sub.push_back(rm.at(r, c));
      }
      const RingMatrix s(static_cast<int>(rows.size()), sub);
      // Reuse the minors check at full size 1: determinant of the whole sub.
      std::vector<std::uint8_t> m2 = sub;
      // Inline determinant via recursion on RingMatrix is private; emulate:
      // for sizes 1..4 compute by expansion.
      std::function<std::uint8_t(std::vector<int>, std::vector<int>)> det =
          [&](std::vector<int> rr, std::vector<int> cc) -> std::uint8_t {
        if (rr.size() == 1) return rm.at(rr[0], cc[0]);
        std::uint8_t acc = 0;
        std::vector<int> rest(rr.begin() + 1, rr.end());
        for (std::size_t k = 0; k < cc.size(); ++k) {
          const std::uint8_t pivot = rm.at(rr[0], cc[k]);
          if (pivot == 0) continue;
          std::vector<int> sub_c;
          for (std::size_t j = 0; j < cc.size(); ++j) {
            if (j != k) sub_c.push_back(cc[j]);
          }
          acc = static_cast<std::uint8_t>(acc ^ gf2::ring_mul(pivot, det(rest, sub_c)));
        }
        return acc;
      };
      if (gf2::ring_is_unit(det(rows, cols))) ++good;
    }
  }
  return good;
}

Slp inplace_to_slp(const std::vector<InplaceOp>& ops) {
  Slp slp(4);
  int reg[4] = {0, 1, 2, 3};
  for (const InplaceOp& op : ops) {
    int term = reg[op.src];
    if (op.scaled) term = slp.add_mul_alpha(term);
    reg[op.dst] = slp.add_xor(reg[op.dst], term);
  }
  slp.set_outputs({reg[0], reg[1], reg[2], reg[3]});
  return slp;
}

}  // namespace

std::optional<SearchResult> search_mds_inplace(const InplaceSearchSpec& spec, Rng& rng) {
  const int total_ops = spec.plain_ops + spec.scaled_ops;
  const auto random_program = [&]() {
    std::vector<InplaceOp> ops;
    std::vector<bool> kinds;
    for (int i = 0; i < spec.plain_ops; ++i) kinds.push_back(false);
    for (int i = 0; i < spec.scaled_ops; ++i) kinds.push_back(true);
    rng.shuffle(kinds);
    for (bool scaled : kinds) {
      InplaceOp op;
      op.scaled = scaled;
      op.dst = static_cast<int>(rng.below(4));
      op.src = static_cast<int>((op.dst + 1 + rng.below(3)) % 4);
      ops.push_back(op);
    }
    return ops;
  };
  const auto mutate = [&](std::vector<InplaceOp> ops) {
    const std::size_t i = static_cast<std::size_t>(rng.below(ops.size()));
    if (rng.chance(0.5)) {
      ops[i].dst = static_cast<int>(rng.below(4));
    }
    ops[i].src = static_cast<int>((ops[i].dst + 1 + rng.below(3)) % 4);
    if (rng.chance(0.2) && static_cast<int>(i) + 1 < total_ops) {
      std::swap(ops[i], ops[i + 1]);
    }
    return ops;
  };

  std::optional<SearchResult> best;
  for (int restart = 0; restart < spec.restarts; ++restart) {
    std::vector<InplaceOp> ops = random_program();
    int score = score_inplace(ops);
    for (int step = 0; step < spec.climb_steps && score < 69; ++step) {
      std::vector<InplaceOp> cand = mutate(ops);
      const int cand_score = score_inplace(cand);
      if (cand_score >= score) {
        ops = std::move(cand);
        score = cand_score;
      }
    }
    if (score == 69) {
      Slp slp = inplace_to_slp(ops);
      check(ring_matrix_of(slp).is_mds_by_minors(), "in-place search: inconsistent result");
      SearchResult r{slp, slp.xor_gate_count(), slp.xor_depth()};
      if (!best || r.xor_gates < best->xor_gates) best = std::move(r);
    }
  }
  return best;
}

std::optional<SearchResult> search_mds_slp(const SearchSpec& spec, Rng& rng) {
  check(spec.words >= 2, "search_mds_slp: need at least 2 words");
  std::optional<SearchResult> best;
  for (int it = 0; it < spec.iterations; ++it) {
    Slp cand = sample(spec, rng);
    if (cand.num_values() < spec.words * 2) continue;
    std::optional<Slp> selected;
    if (spec.words == 4) {
      selected = select_mds_outputs(cand, spec.words);
    } else if (ring_matrix_of(cand).is_mds_by_minors()) {
      selected = cand;
    }
    if (!selected) continue;
    // Trim unused trailing ops from the cost accounting by re-counting only
    // ops reachable from the outputs.
    SearchResult r{*selected, selected->xor_gate_count(), selected->xor_depth()};
    if (!best || r.xor_gates < best->xor_gates) best = std::move(r);
  }
  return best;
}

}  // namespace scfi::mds
