#include "mds/matrix.h"

#include <algorithm>
#include <bit>

#include "base/error.h"
#include "gf2/poly8.h"

namespace scfi::mds {

RingMatrix::RingMatrix(int n, std::vector<std::uint8_t> entries) : n_(n), e_(std::move(entries)) {
  check(n > 0 && e_.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
        "RingMatrix: entry count mismatch");
}

RingMatrix RingMatrix::circulant(std::vector<std::uint8_t> first_row) {
  const int n = static_cast<int>(first_row.size());
  std::vector<std::uint8_t> entries(static_cast<std::size_t>(n) * n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      // Row r is the first row rotated right by r positions.
      entries[static_cast<std::size_t>(r) * n + c] =
          first_row[static_cast<std::size_t>(((c - r) % n + n) % n)];
    }
  }
  return RingMatrix(n, std::move(entries));
}

std::uint8_t RingMatrix::at(int r, int c) const {
  check(r >= 0 && r < n_ && c >= 0 && c < n_, "RingMatrix::at out of range");
  return e_[static_cast<std::size_t>(r) * n_ + c];
}

gf2::Matrix RingMatrix::to_bit_matrix() const {
  gf2::Matrix m(8 * n_, 8 * n_);
  for (int r = 0; r < n_; ++r) {
    for (int c = 0; c < n_; ++c) {
      const std::uint8_t coeff = at(r, c);
      // Column bit b of block (r,c): coeff * X^b reduced.
      for (int b = 0; b < 8; ++b) {
        const std::uint8_t col = gf2::ring_mul_xk(coeff, b);
        for (int ob = 0; ob < 8; ++ob) {
          if ((col >> ob) & 1) m.set(8 * r + ob, 8 * c + b, true);
        }
      }
    }
  }
  return m;
}

bool RingMatrix::is_mds() const { return mds::is_mds(to_bit_matrix(), n_); }

namespace {

/// Determinant over the commutative ring by Laplace expansion (n <= 4).
std::uint8_t ring_det(const std::vector<std::uint8_t>& m, const std::vector<int>& rows,
                      const std::vector<int>& cols, int n) {
  if (rows.size() == 1) {
    return m[static_cast<std::size_t>(rows[0]) * n + cols[0]];
  }
  std::uint8_t acc = 0;
  std::vector<int> sub_rows(rows.begin() + 1, rows.end());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const std::uint8_t pivot = m[static_cast<std::size_t>(rows[0]) * n + cols[c]];
    if (pivot == 0) continue;
    std::vector<int> sub_cols;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (k != c) sub_cols.push_back(cols[k]);
    }
    // Characteristic 2: all cofactor signs are +1.
    acc = static_cast<std::uint8_t>(acc ^ gf2::ring_mul(pivot, ring_det(m, sub_rows, sub_cols, n)));
  }
  return acc;
}

}  // namespace

bool RingMatrix::is_mds_by_minors() const {
  // Every square submatrix must be invertible over the ring, i.e. have a
  // unit determinant (equivalent to the bit-level block criterion).
  for (std::uint32_t rmask = 1; rmask < (1u << n_); ++rmask) {
    for (std::uint32_t cmask = 1; cmask < (1u << n_); ++cmask) {
      if (std::popcount(rmask) != std::popcount(cmask)) continue;
      std::vector<int> rows;
      std::vector<int> cols;
      for (int i = 0; i < n_; ++i) {
        if ((rmask >> i) & 1) rows.push_back(i);
        if ((cmask >> i) & 1) cols.push_back(i);
      }
      if (!gf2::ring_is_unit(ring_det(e_, rows, cols, n_))) return false;
    }
  }
  return true;
}

std::vector<std::vector<std::uint8_t>> ring_coefficients(const Slp& slp) {
  const int n = slp.num_inputs();
  std::vector<std::vector<std::uint8_t>> coeff;
  for (int i = 0; i < n; ++i) {
    std::vector<std::uint8_t> row(static_cast<std::size_t>(n), 0);
    row[static_cast<std::size_t>(i)] = 1;
    coeff.push_back(std::move(row));
  }
  for (const SlpOp& op : slp.ops()) {
    std::vector<std::uint8_t> row(static_cast<std::size_t>(n), 0);
    const auto& a = coeff[static_cast<std::size_t>(op.a)];
    if (op.kind == SlpOp::Kind::kXor) {
      const auto& b = coeff[static_cast<std::size_t>(op.b)];
      for (int i = 0; i < n; ++i) {
        row[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
            a[static_cast<std::size_t>(i)] ^ b[static_cast<std::size_t>(i)]);
      }
    } else {
      for (int i = 0; i < n; ++i) {
        row[static_cast<std::size_t>(i)] = gf2::ring_mul(a[static_cast<std::size_t>(i)], 0x02);
      }
    }
    coeff.push_back(std::move(row));
  }
  return coeff;
}

RingMatrix ring_matrix_of(const Slp& slp) {
  const int n = slp.num_inputs();
  check(static_cast<int>(slp.outputs().size()) == n, "ring_matrix_of: needs a square map");
  const std::vector<std::vector<std::uint8_t>> coeff = ring_coefficients(slp);
  std::vector<std::uint8_t> entries;
  for (int out : slp.outputs()) {
    for (int i = 0; i < n; ++i) {
      entries.push_back(coeff[static_cast<std::size_t>(out)][static_cast<std::size_t>(i)]);
    }
  }
  return RingMatrix(n, std::move(entries));
}

Slp RingMatrix::to_naive_slp() const {
  Slp slp(n_);
  // Shared xtime chains: chain[c][k] holds the value index of X^k * input c.
  int max_deg = 0;
  for (std::uint8_t e : e_) {
    for (int b = 7; b >= 0; --b) {
      if ((e >> b) & 1) {
        max_deg = std::max(max_deg, b);
        break;
      }
    }
  }
  std::vector<std::vector<int>> chain(static_cast<std::size_t>(n_));
  for (int c = 0; c < n_; ++c) {
    chain[static_cast<std::size_t>(c)].push_back(c);
    for (int k = 1; k <= max_deg; ++k) {
      chain[static_cast<std::size_t>(c)].push_back(
          slp.add_mul_alpha(chain[static_cast<std::size_t>(c)].back()));
    }
  }
  std::vector<int> outs;
  for (int r = 0; r < n_; ++r) {
    int acc = -1;
    for (int c = 0; c < n_; ++c) {
      const std::uint8_t coeff = at(r, c);
      for (int b = 0; b <= max_deg; ++b) {
        if (!((coeff >> b) & 1)) continue;
        const int term = chain[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
        acc = (acc < 0) ? term : slp.add_xor(acc, term);
      }
    }
    check(acc >= 0, "RingMatrix::to_naive_slp: zero row cannot be MDS");
    outs.push_back(acc);
  }
  slp.set_outputs(std::move(outs));
  return slp;
}

}  // namespace scfi::mds
