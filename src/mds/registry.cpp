#include "mds/registry.h"

#include <map>

#include "base/error.h"
#include "mds/matrix.h"

namespace scfi::mds {
namespace {

Construction make(const std::string& name, Slp slp) {
  gf2::Matrix m = slp.to_bit_matrix();
  check(static_cast<int>(slp.outputs().size()) == slp.num_inputs(),
        "MDS construction must be square");
  check(is_mds(m, slp.num_inputs()), "construction '" + name + "' failed the MDS check");
  const int gates = slp.xor_gate_count();
  const int depth = slp.xor_depth();
  return Construction{name, std::move(slp), std::move(m), gates, depth};
}

/// Hand-optimized shared-subexpression program for circ(a, a+1, 1, 1) with
/// a = alpha. Row i computes a*(x_i + x_{i+1}) + (sum of the other three).
Slp shared_circulant_slp() {
  Slp s(4);
  const int x0 = 0;
  const int x1 = 1;
  const int x2 = 2;
  const int x3 = 3;
  const int s01 = s.add_xor(x0, x1);
  const int s12 = s.add_xor(x1, x2);
  const int s23 = s.add_xor(x2, x3);
  const int s30 = s.add_xor(x3, x0);
  const int t01 = s.add_mul_alpha(s01);
  const int t12 = s.add_mul_alpha(s12);
  const int t23 = s.add_mul_alpha(s23);
  const int t30 = s.add_mul_alpha(s30);
  const int u0 = s.add_xor(s23, x1);  // x1+x2+x3
  const int u1 = s.add_xor(s23, x0);  // x0+x2+x3
  const int u2 = s.add_xor(s01, x3);  // x0+x1+x3
  const int u3 = s.add_xor(s01, x2);  // x0+x1+x2
  const int y0 = s.add_xor(t01, u0);  // a(x0+x1) + x1+x2+x3
  const int y1 = s.add_xor(t12, u1);  // a(x1+x2) + x2+x3+x0
  const int y2 = s.add_xor(t23, u2);  // a(x2+x3) + x3+x0+x1
  const int y3 = s.add_xor(t30, u3);  // a(x3+x0) + x0+x1+x2
  s.set_outputs({y0, y1, y2, y3});
  return s;
}

RingMatrix scfi_matrix() {
  // circ(alpha, alpha+1, 1, 1): the AES-MixColumns shape transplanted into
  // the SCFI ring F2[X]/(X^8+X^2+1); verified MDS by the block criterion.
  return RingMatrix::circulant({0x02, 0x03, 0x01, 0x01});
}

/// Reconstruction of the paper's lightweight M^{8,3}_{4,6}: a 9-operation
/// in-place generalized-XOR program (x_d ^= [alpha*] x_s) discovered by the
/// exhaustive search in src/mds/search (the 8-op space is provably empty).
/// Cost: 6 plain word XORs (8 gates) + 3 alpha-scaled XORs (9 gates) = 75.
Slp m8346_slp() {
  Slp s(4);
  // Registers start as (x0, x1, x2, x3); each step updates one register.
  const int v4 = s.add_xor(0, 1);                    // x0 ^= x1
  const int v5 = s.add_xor(2, 3);                    // x2 ^= x3
  const int v7 = s.add_xor(1, s.add_mul_alpha(v5));  // x1 ^= a*x2
  const int v9 = s.add_xor(v5, s.add_mul_alpha(v4)); // x2 ^= a*x0
  const int v11 = s.add_xor(v4, s.add_mul_alpha(v7)); // x0 ^= a*x1
  const int v12 = s.add_xor(v11, 3);                 // x0 ^= x3
  const int v13 = s.add_xor(3, v7);                  // x3 ^= x1
  const int v14 = s.add_xor(v7, v12);                // x1 ^= x0
  const int v15 = s.add_xor(v13, v9);                // x3 ^= x2
  s.set_outputs({v12, v14, v9, v15});
  return s;
}

std::map<std::string, Construction> build_registry() {
  std::map<std::string, Construction> reg;
  {
    Slp slp = shared_circulant_slp();
    // The shared program must compute exactly the circulant matrix.
    check(slp.to_bit_matrix() == scfi_matrix().to_bit_matrix(),
          "shared circulant SLP does not match its matrix");
    reg.emplace("scfi-shared", make("scfi-shared", std::move(slp)));
  }
  reg.emplace("scfi-naive", make("scfi-naive", scfi_matrix().to_naive_slp()));
  reg.emplace("scfi-m8346", make("scfi-m8346", m8346_slp()));
  return reg;
}

const std::map<std::string, Construction>& registry() {
  static const std::map<std::string, Construction> reg = build_registry();
  return reg;
}

}  // namespace

const Construction& construction(const std::string& name) {
  const auto& reg = registry();
  const auto it = reg.find(name);
  require(it != reg.end(), "unknown MDS construction: " + name);
  return it->second;
}

const Construction& default_construction() { return construction("scfi-m8346"); }

std::vector<std::string> construction_names() {
  std::vector<std::string> names;
  for (const auto& [name, unused] : registry()) names.push_back(name);
  return names;
}

}  // namespace scfi::mds
