#include "synfi/synfi.h"

#include <algorithm>
#include <array>
#include <bit>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "base/error.h"
#include "base/retry.h"
#include "base/strutil.h"
#include "sat/cnf.h"
#include "sat/miter.h"

namespace scfi::synfi {
namespace {

using fsm::CfgEdge;
using fsm::CompiledFsm;
using fsm::Fsm;
using rtlil::SigBit;

std::string format_site(const SigBit& site) {
  return site.wire->name() + "[" + std::to_string(site.offset) + "]";
}

std::vector<SigBit> enumerate_region(const rtlil::Module& module, const std::string& prefix,
                                     bool include_inputs, sim::FaultTarget target,
                                     const std::string& state_wire) {
  std::vector<SigBit> sites;
  // FT1: the state register Q bits themselves — the class the encoding
  // distance protects. These are FF-driven, so the combinational walk below
  // would skip them; resolve the state wire directly instead.
  if (target == sim::FaultTarget::kStateRegister) {
    const rtlil::Wire* w = module.wire(state_wire);
    check(w != nullptr, "synfi: variant has no state wire '" + state_wire + "'");
    for (int i = 0; i < w->width(); ++i) sites.emplace_back(w, i);
    return sites;
  }
  const rtlil::NetlistIndex index(module);
  for (const rtlil::Wire* w : module.wires()) {
    if (!prefix.empty() && !starts_with(w->name(), prefix)) continue;
    if (w->is_input()) {
      if (target == sim::FaultTarget::kControlInputs ||
          (target == sim::FaultTarget::kAny && include_inputs)) {
        for (int i = 0; i < w->width(); ++i) sites.emplace_back(w, i);
      }
      continue;
    }
    if (target == sim::FaultTarget::kControlInputs) continue;
    for (int i = 0; i < w->width(); ++i) {
      const SigBit bit(w, i);
      const rtlil::Cell* driver = index.driver(bit);
      if (driver == nullptr || rtlil::is_ff(driver->type())) continue;
      sites.push_back(bit);
    }
  }
  return sites;
}

sat::CnfFaultKind to_cnf_kind(sim::FaultKind kind) {
  require(kind != sim::FaultKind::kSkipCycle,
          "synfi: the SAT backend cannot model skip-cycle (clock-glitch) faults; "
          "use the exhaustive simulation backend");
  switch (kind) {
    case sim::FaultKind::kStuckAt0: return sat::CnfFaultKind::kStuckAt0;
    case sim::FaultKind::kStuckAt1: return sat::CnfFaultKind::kStuckAt1;
    default: return sat::CnfFaultKind::kFlip;
  }
}

// --- lazy combination streaming (k-fault sweeps) ---------------------------
//
// k-fault jobs are (combination, edge) pairs in combo-major lexicographic
// order. Shards claim contiguous *rank* ranges, unrank their first
// combination once, and then step with the O(k) lexicographic successor —
// no shard ever materialises the C(n, k) combination list.

std::uint64_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t r = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    const std::uint64_t num = n - k + i;
    // r * num / i is exact at every step (it equals C(n-k+i, i)).
    check(r <= std::numeric_limits<std::uint64_t>::max() / num,
          "synfi: combination count overflows 64 bits");
    r = r * num / i;
  }
  return r;
}

/// Lexicographic combination of `rank` (0-based) among C(n, k).
std::vector<std::size_t> unrank_combination(std::uint64_t rank, std::size_t n,
                                            std::size_t k) {
  std::vector<std::size_t> c(k);
  std::size_t x = 0;
  for (std::size_t i = 0; i < k; ++i) {
    while (true) {
      const std::uint64_t block = binomial(n - x - 1, k - i - 1);
      if (rank < block) break;
      rank -= block;
      ++x;
    }
    c[i] = x++;
  }
  return c;
}

/// Advances to the lexicographic successor; false when `c` was the last one.
bool next_combination(std::vector<std::size_t>& c, std::size_t n) {
  const std::size_t k = c.size();
  for (std::size_t i = k; i-- > 0;) {
    if (c[i] < n - k + i) {
      ++c[i];
      for (std::size_t j = i + 1; j < k; ++j) c[j] = c[j - 1] + 1;
      return true;
    }
  }
  return false;
}

/// Loop-invariant per-edge stimulus, resolved once per Analyzer and shared
/// by both back-ends: symbol codeword plus from/to state indices (no map
/// lookups inside the query loops).
struct EdgeTable {
  std::vector<std::uint64_t> code;   ///< encoded control symbol per edge
  std::vector<std::uint64_t> from_code;
  std::vector<std::int32_t> from;    ///< state index per edge
  std::vector<std::int32_t> to;
  std::size_t size() const { return code.size(); }
};

EdgeTable build_edge_table(const CompiledFsm& variant, const std::vector<CfgEdge>& edges) {
  EdgeTable table;
  table.code.reserve(edges.size());
  table.from_code.reserve(edges.size());
  table.from.reserve(edges.size());
  table.to.reserve(edges.size());
  for (const CfgEdge& edge : edges) {
    table.code.push_back(variant.symbol_codes.at(edge.symbol));
    table.from_code.push_back(variant.state_codes[static_cast<std::size_t>(edge.from)]);
    table.from.push_back(edge.from);
    table.to.push_back(edge.to);
  }
  return table;
}

/// Partial report for one contiguous site range. Counters are plain sums
/// and exploitable_sites stays in site order, so merging shards in range
/// order reproduces the single-threaded report exactly.
struct ShardReport {
  std::int64_t injections = 0;
  std::int64_t exploitable = 0;
  std::int64_t detected = 0;
  std::int64_t masked = 0;
  std::int64_t stalls = 0;
  std::vector<std::string> exploitable_sites;
};

/// One reusable worker context of the exhaustive back-end: the compiled
/// 64-lane simulator plus the resolved interface handles. Building the
/// Simulator (netlist flattening) is the fixed cost a many-region sweep
/// amortizes, so the Analyzer keeps one context per worker slot alive
/// across run() calls. Per-job state/symbol stimulus is fully overwritten
/// every batch and outcome classification reads only the state/alert cone,
/// so carried-over simulator state cannot change any verdict (the same
/// property that makes the report lanes/threads-invariant).
struct SimContext {
  sim::Simulator simulator;
  sim::Simulator::WireHandle symbol_h;
  sim::Simulator::WireHandle state_h;
  sim::Simulator::WireHandle alert_h;

  SimContext(const CompiledFsm& variant, int lane_words)
      : simulator(*variant.module, lane_words) {
    symbol_h = simulator.input_handle(variant.symbol_input_wire);
    state_h = simulator.probe(variant.state_wire);
    if (!variant.alert_wire.empty()) alert_h = simulator.probe(variant.alert_wire);
    check(state_h.width <= 64, "synfi: state wire too wide");
  }
};

/// Per-edge-alignment stimulus. Jobs stay in (site-major, edge-minor) order,
/// so a batch starting at job j0 always drives lane k with edge (j0 + k)
/// mod E: the per-word stimulus and per-lane from/to state indices depend
/// only on j0 mod E. Precomputed per alignment so the batch loops never
/// repack bits or divide. Shared verbatim by the single-fault and k-fault
/// exhaustive shards (k-fault jobs are (combo-major, edge-minor), the same
/// edge cadence).
struct AlignedStimulus {
  std::vector<std::uint64_t> in_words;   ///< symbol bit x word -> lane word
  std::vector<std::uint64_t> st_words;   ///< state bit x word -> lane word
  std::vector<std::int32_t> lane_from;   ///< state index per lane
  std::vector<std::int32_t> lane_to;
};

std::vector<AlignedStimulus> build_aligned_stimulus(const EdgeTable& edges, int symbol_w,
                                                    int state_w, int W,
                                                    std::size_t total_lanes) {
  const std::size_t num_edges = edges.size();
  std::vector<AlignedStimulus> aligned(num_edges);
  for (std::size_t r = 0; r < num_edges; ++r) {
    AlignedStimulus& a = aligned[r];
    a.in_words.assign(static_cast<std::size_t>(symbol_w * W), 0);
    a.st_words.assign(static_cast<std::size_t>(state_w * W), 0);
    a.lane_from.resize(total_lanes);
    a.lane_to.resize(total_lanes);
    std::size_t e = r;
    for (std::size_t lane = 0; lane < total_lanes; ++lane) {
      const std::size_t wj = lane >> 6;
      const std::uint64_t bit = 1ULL << (lane & 63);
      const std::uint64_t code = edges.code[e];
      const std::uint64_t from_code = edges.from_code[e];
      for (int i = 0; i < symbol_w; ++i) {
        if ((code >> i) & 1) a.in_words[static_cast<std::size_t>(i * W) + wj] |= bit;
      }
      for (int i = 0; i < state_w; ++i) {
        if ((from_code >> i) & 1) a.st_words[static_cast<std::size_t>(i * W) + wj] |= bit;
      }
      a.lane_from[lane] = edges.from[e];
      a.lane_to[lane] = edges.to[e];
      if (++e == num_edges) e = 0;
    }
  }
  return aligned;
}

/// Exhaustive-simulation back-end over sites [site_begin, site_end): packs
/// up to `config.lanes` (site, edge) jobs into every eval/step pass —
/// 64 x lane_words jobs when the context's simulator carries a multi-word
/// lane block. Lane k carries job k's state/symbol stimulus (per-lane
/// register/input words) and a single-lane fault mask; outcomes are
/// classified word-parallel, W lane words at a time. Lanes never interact,
/// so the per-job outcome equals the scalar one-job-per-pass path bit for
/// bit.
void run_exhaustive_shard(SimContext& ctx, const CompiledFsm& variant,
                          const std::vector<SigBit>& sites, const EdgeTable& edges,
                          const SynfiConfig& config, std::size_t site_begin,
                          std::size_t site_end, ShardReport& out) {
  sim::Simulator& simulator = ctx.simulator;
  const sim::Simulator::WireHandle symbol_h = ctx.symbol_h;
  const sim::Simulator::WireHandle state_h = ctx.state_h;
  const sim::Simulator::WireHandle alert_h = ctx.alert_h;
  const int W = simulator.lane_words();
  const std::size_t total_lanes = static_cast<std::size_t>(W) * 64;
  const int state_w = state_h.width;
  const int symbol_w = symbol_h.width;
  const std::size_t num_states = variant.state_codes.size();
  // A code with bits beyond the register width can never match.
  const auto fits = [state_w](std::uint64_t code) {
    return state_w >= 64 || (code >> state_w) == 0;
  };

  std::vector<std::int32_t> site_net;
  site_net.reserve(site_end - site_begin);
  for (std::size_t s = site_begin; s < site_end; ++s) {
    site_net.push_back(simulator.net_index(sites[s]));
  }

  const std::size_t num_edges = edges.size();
  const std::size_t num_jobs = (site_end - site_begin) * num_edges;
  const auto lanes = static_cast<std::size_t>(config.lanes);
  const auto alert_word = [&](int w) {
    std::uint64_t word = 0;
    for (std::int32_t i = 0; i < alert_h.width; ++i) {
      word |= simulator.lane_word(alert_h.base + i, w);
    }
    return word;
  };

  // Runtime-width lane sets: words [0, W) of a kMaxLaneWords array, so the
  // classic one-word configuration pays for exactly one word.
  using LaneWords = std::array<std::uint64_t, sim::kMaxLaneWords>;
  std::vector<std::uint64_t> state_words(static_cast<std::size_t>(state_w * W));
  std::vector<std::uint64_t> state_eq(num_states * static_cast<std::size_t>(W));
  std::vector<char> site_hit(site_end - site_begin, 0);

  const std::vector<AlignedStimulus> aligned =
      build_aligned_stimulus(edges, symbol_w, state_w, W, total_lanes);

  std::size_t cur_site = 0;  ///< shard-local site index of the next job
  std::size_t cur_edge = 0;
  for (std::size_t job0 = 0; job0 < num_jobs; job0 += lanes) {
    // Cooperative cancellation at batch granularity: a fired token (sweep
    // job deadline) stops the shard here, never mid-batch.
    if (config.cancel != nullptr) config.cancel->check("synfi");
    const std::size_t batch_jobs = std::min(lanes, num_jobs - job0);
    const sim::LaneMask batch_mask = sim::LaneMask::first_n(static_cast<int>(batch_jobs));
    const AlignedStimulus& a = aligned[cur_edge];

    simulator.clear_all_faults();
    for (int i = 0; i < symbol_w; ++i) {
      for (int w = 0; w < W; ++w) {
        simulator.set_input_word(symbol_h, i, a.in_words[static_cast<std::size_t>(i * W + w)], w);
      }
    }
    for (int i = 0; i < state_w; ++i) {
      for (int w = 0; w < W; ++w) {
        simulator.set_register_word(state_h, i, a.st_words[static_cast<std::size_t>(i * W + w)],
                                    w);
      }
    }
    std::size_t s = cur_site;
    std::size_t e = cur_edge;
    for (std::size_t lane = 0; lane < batch_jobs; ++lane) {
      simulator.inject_net(site_net[s], config.kind,
                           sim::LaneMask::lane(static_cast<int>(lane)));
      if (++e == num_edges) {
        e = 0;
        ++s;
      }
    }

    simulator.eval();
    LaneWords alert_pre{};
    if (alert_h.valid()) {
      for (int w = 0; w < W; ++w) alert_pre[static_cast<std::size_t>(w)] = alert_word(w);
    }
    simulator.step();
    LaneWords alert_post{};
    if (alert_h.valid()) {
      for (int w = 0; w < W; ++w) alert_post[static_cast<std::size_t>(w)] = alert_word(w);
    }
    for (int i = 0; i < state_w; ++i) {
      for (int w = 0; w < W; ++w) {
        state_words[static_cast<std::size_t>(i * W + w)] =
            simulator.lane_word(state_h.base + i, w);
      }
    }

    // Word-parallel classification: equality masks of the latched state
    // against every codeword at once instead of decoding lane by lane.
    for (std::size_t sc = 0; sc < num_states; ++sc) {
      const std::uint64_t code = variant.state_codes[sc];
      for (int w = 0; w < W; ++w) {
        std::uint64_t eq = fits(code) ? batch_mask.w[static_cast<std::size_t>(w)] : 0;
        for (int i = 0; i < state_w && eq != 0; ++i) {
          const std::uint64_t sw = state_words[static_cast<std::size_t>(i * W + w)];
          eq &= ((code >> i) & 1) ? sw : ~sw;
        }
        state_eq[sc * static_cast<std::size_t>(W) + static_cast<std::size_t>(w)] = eq;
      }
    }
    LaneWords err_eq{};
    if (variant.has_error_state) {
      for (int w = 0; w < W; ++w) {
        std::uint64_t eq = fits(variant.error_code) ? batch_mask.w[static_cast<std::size_t>(w)] : 0;
        for (int i = 0; i < state_w && eq != 0; ++i) {
          const std::uint64_t sw = state_words[static_cast<std::size_t>(i * W + w)];
          eq &= ((variant.error_code >> i) & 1) ? sw : ~sw;
        }
        err_eq[static_cast<std::size_t>(w)] = eq;
      }
    }
    LaneWords match_expect{};
    LaneWords match_from{};
    for (std::size_t lane = 0; lane < batch_jobs; ++lane) {
      const std::size_t wj = lane >> 6;
      const std::uint64_t bit = 1ULL << (lane & 63);
      match_expect[wj] |= state_eq[static_cast<std::size_t>(a.lane_to[lane]) *
                                       static_cast<std::size_t>(W) +
                                   wj] &
                          bit;
      match_from[wj] |= state_eq[static_cast<std::size_t>(a.lane_from[lane]) *
                                     static_cast<std::size_t>(W) +
                                 wj] &
                        bit;
    }

    out.injections += static_cast<std::int64_t>(batch_jobs);
    for (int w = 0; w < W; ++w) {
      const auto j = static_cast<std::size_t>(w);
      const std::uint64_t mask = batch_mask.w[j];
      const std::uint64_t masked = match_expect[j] & ~alert_pre[j] & mask;
      const std::uint64_t detected =
          (alert_pre[j] | alert_post[j] | err_eq[j]) & ~masked & mask;
      // Everything else is an undetected deviation: a valid-but-wrong state
      // (hijack/stall) or an undetected non-codeword (cannot happen for SCFI
      // variants) — both count as exploitable, exactly like the scalar path.
      const std::uint64_t expl = mask & ~masked & ~detected;

      out.masked += std::popcount(masked);
      out.detected += std::popcount(detected);
      out.exploitable += std::popcount(expl);
      out.stalls += std::popcount(expl & match_from[j]);
      for (std::uint64_t hits = expl; hits != 0; hits &= hits - 1) {
        const auto lane = (j << 6) + static_cast<std::size_t>(std::countr_zero(hits));
        site_hit[cur_site + (cur_edge + lane) / num_edges] = 1;
      }
    }
    cur_site = s;
    cur_edge = e;
  }
  for (std::size_t s = site_begin; s < site_end; ++s) {
    if (site_hit[s - site_begin]) out.exploitable_sites.push_back(format_site(sites[s]));
  }
}

/// k-fault exhaustive back-end over combination ranks [combo_begin,
/// combo_end): every job is one lexicographic site combination x one edge
/// (combo-major, edge-minor), all k faults of a combo injected into the same
/// lane. Unlike the single-fault shard, any shard can prove any site
/// exploitable (combinations straddle the whole region), so attribution goes
/// into a caller-owned full-region bitmap that the merge step ORs; counters
/// stay plain range sums, so the report remains lanes/threads-invariant.
void run_exhaustive_kfault_shard(SimContext& ctx, const CompiledFsm& variant,
                                 const std::vector<SigBit>& sites, const EdgeTable& edges,
                                 const SynfiConfig& config, std::uint64_t combo_begin,
                                 std::uint64_t combo_end, std::vector<char>& site_hit,
                                 ShardReport& out) {
  sim::Simulator& simulator = ctx.simulator;
  const sim::Simulator::WireHandle symbol_h = ctx.symbol_h;
  const sim::Simulator::WireHandle state_h = ctx.state_h;
  const sim::Simulator::WireHandle alert_h = ctx.alert_h;
  const int W = simulator.lane_words();
  const std::size_t total_lanes = static_cast<std::size_t>(W) * 64;
  const int state_w = state_h.width;
  const int symbol_w = symbol_h.width;
  const std::size_t num_states = variant.state_codes.size();
  const auto fits = [state_w](std::uint64_t code) {
    return state_w >= 64 || (code >> state_w) == 0;
  };
  const auto k = static_cast<std::size_t>(config.faults_k);

  std::vector<std::int32_t> site_net;
  site_net.reserve(sites.size());
  for (const SigBit& site : sites) site_net.push_back(simulator.net_index(site));

  const std::size_t num_edges = edges.size();
  const std::uint64_t num_jobs = (combo_end - combo_begin) * num_edges;
  const auto lanes = static_cast<std::size_t>(config.lanes);
  const auto alert_word = [&](int w) {
    std::uint64_t word = 0;
    for (std::int32_t i = 0; i < alert_h.width; ++i) {
      word |= simulator.lane_word(alert_h.base + i, w);
    }
    return word;
  };

  using LaneWords = std::array<std::uint64_t, sim::kMaxLaneWords>;
  std::vector<std::uint64_t> state_words(static_cast<std::size_t>(state_w * W));
  std::vector<std::uint64_t> state_eq(num_states * static_cast<std::size_t>(W));
  const std::vector<AlignedStimulus> aligned =
      build_aligned_stimulus(edges, symbol_w, state_w, W, total_lanes);

  // Streamed combination bookkeeping: unrank the shard's first combination
  // once, then advance lexicographically; each lane records the sites of its
  // combo so exploitable lanes can credit every member.
  std::vector<std::size_t> combo = unrank_combination(combo_begin, sites.size(), k);
  std::vector<std::size_t> lane_sites(total_lanes * k);
  std::size_t cur_edge = 0;
  for (std::uint64_t job0 = 0; job0 < num_jobs; job0 += lanes) {
    if (config.cancel != nullptr) config.cancel->check("synfi");
    const auto batch_jobs =
        static_cast<std::size_t>(std::min<std::uint64_t>(lanes, num_jobs - job0));
    const sim::LaneMask batch_mask = sim::LaneMask::first_n(static_cast<int>(batch_jobs));
    const AlignedStimulus& a = aligned[cur_edge];

    simulator.clear_all_faults();
    for (int i = 0; i < symbol_w; ++i) {
      for (int w = 0; w < W; ++w) {
        simulator.set_input_word(symbol_h, i, a.in_words[static_cast<std::size_t>(i * W + w)], w);
      }
    }
    for (int i = 0; i < state_w; ++i) {
      for (int w = 0; w < W; ++w) {
        simulator.set_register_word(state_h, i, a.st_words[static_cast<std::size_t>(i * W + w)],
                                    w);
      }
    }
    std::size_t e = cur_edge;
    for (std::size_t lane = 0; lane < batch_jobs; ++lane) {
      const sim::LaneMask mask = sim::LaneMask::lane(static_cast<int>(lane));
      for (std::size_t j = 0; j < k; ++j) {
        simulator.inject_net(site_net[combo[j]], config.kind, mask);
        lane_sites[lane * k + j] = combo[j];
      }
      if (++e == num_edges) {
        e = 0;
        next_combination(combo, sites.size());
      }
    }

    simulator.eval();
    LaneWords alert_pre{};
    if (alert_h.valid()) {
      for (int w = 0; w < W; ++w) alert_pre[static_cast<std::size_t>(w)] = alert_word(w);
    }
    simulator.step();
    LaneWords alert_post{};
    if (alert_h.valid()) {
      for (int w = 0; w < W; ++w) alert_post[static_cast<std::size_t>(w)] = alert_word(w);
    }
    for (int i = 0; i < state_w; ++i) {
      for (int w = 0; w < W; ++w) {
        state_words[static_cast<std::size_t>(i * W + w)] =
            simulator.lane_word(state_h.base + i, w);
      }
    }

    for (std::size_t sc = 0; sc < num_states; ++sc) {
      const std::uint64_t code = variant.state_codes[sc];
      for (int w = 0; w < W; ++w) {
        std::uint64_t eq = fits(code) ? batch_mask.w[static_cast<std::size_t>(w)] : 0;
        for (int i = 0; i < state_w && eq != 0; ++i) {
          const std::uint64_t sw = state_words[static_cast<std::size_t>(i * W + w)];
          eq &= ((code >> i) & 1) ? sw : ~sw;
        }
        state_eq[sc * static_cast<std::size_t>(W) + static_cast<std::size_t>(w)] = eq;
      }
    }
    LaneWords err_eq{};
    if (variant.has_error_state) {
      for (int w = 0; w < W; ++w) {
        std::uint64_t eq = fits(variant.error_code) ? batch_mask.w[static_cast<std::size_t>(w)] : 0;
        for (int i = 0; i < state_w && eq != 0; ++i) {
          const std::uint64_t sw = state_words[static_cast<std::size_t>(i * W + w)];
          eq &= ((variant.error_code >> i) & 1) ? sw : ~sw;
        }
        err_eq[static_cast<std::size_t>(w)] = eq;
      }
    }
    LaneWords match_expect{};
    LaneWords match_from{};
    for (std::size_t lane = 0; lane < batch_jobs; ++lane) {
      const std::size_t wj = lane >> 6;
      const std::uint64_t bit = 1ULL << (lane & 63);
      match_expect[wj] |= state_eq[static_cast<std::size_t>(a.lane_to[lane]) *
                                       static_cast<std::size_t>(W) +
                                   wj] &
                          bit;
      match_from[wj] |= state_eq[static_cast<std::size_t>(a.lane_from[lane]) *
                                     static_cast<std::size_t>(W) +
                                 wj] &
                        bit;
    }

    out.injections += static_cast<std::int64_t>(batch_jobs);
    for (int w = 0; w < W; ++w) {
      const auto j = static_cast<std::size_t>(w);
      const std::uint64_t mask = batch_mask.w[j];
      const std::uint64_t masked = match_expect[j] & ~alert_pre[j] & mask;
      const std::uint64_t detected =
          (alert_pre[j] | alert_post[j] | err_eq[j]) & ~masked & mask;
      const std::uint64_t expl = mask & ~masked & ~detected;

      out.masked += std::popcount(masked);
      out.detected += std::popcount(detected);
      out.exploitable += std::popcount(expl);
      out.stalls += std::popcount(expl & match_from[j]);
      for (std::uint64_t hits = expl; hits != 0; hits &= hits - 1) {
        const auto lane = (j << 6) + static_cast<std::size_t>(std::countr_zero(hits));
        for (std::size_t m = 0; m < k; ++m) site_hit[lane_sites[lane * k + m]] = 1;
      }
    }
    cur_edge = e;
  }
}

/// Interface wires of the miter, resolved once per shard construction.
struct MiterWires {
  const rtlil::Wire* symbol = nullptr;
  const rtlil::Wire* state = nullptr;
};

MiterWires resolve_interface(const rtlil::Module& module, const CompiledFsm& variant) {
  MiterWires wires;
  wires.symbol = module.wire(variant.symbol_input_wire);
  wires.state = module.wire(variant.state_wire);
  check(wires.symbol != nullptr && wires.state != nullptr, "synfi: missing interface wires");
  return wires;
}

/// Interface variables shared between the golden and faulty CNF copies.
struct MiterInterface {
  std::unordered_map<SigBit, int> bound;
  std::vector<int> xvars;
  std::vector<int> svars;
};

MiterInterface bind_interface(sat::Solver& solver, const MiterWires& wires) {
  MiterInterface iface;
  for (int i = 0; i < wires.symbol->width(); ++i) {
    const int v = solver.new_var();
    iface.bound.emplace(SigBit(wires.symbol, i), v);
    iface.xvars.push_back(v);
  }
  for (int i = 0; i < wires.state->width(); ++i) {
    const int v = solver.new_var();
    iface.bound.emplace(SigBit(wires.state, i), v);
    iface.svars.push_back(v);
  }
  return iface;
}

void push_equals(std::vector<sat::Lit>& lits, const std::vector<int>& vars,
                 std::uint64_t value) {
  for (std::size_t i = 0; i < vars.size(); ++i) {
    lits.push_back(((value >> i) & 1) ? vars[i] : -vars[i]);
  }
}

/// The exhaustive back-end's detection window spans the latch: the symbol is
/// held for one evaluation past the fault cycle and the alert is sampled
/// again (alert_post) before a run is classified, so a fault set whose wrong
/// state trips the alert one cycle later still counts as detected. Mirror
/// that here with a post-cycle copy of the module — every FF Q bit bound to
/// the faulty copy's D reader (the latched faulty state), symbol bits shared
/// with the fault cycle — and require its alert to stay low as well.
/// Stuck-at overrides persist across the clock edge exactly like the
/// simulator's persistent faults; transient flips are cleared at the end of
/// the fault cycle and do not carry over.
void add_post_cycle_alert(sat::Solver& solver, const rtlil::Module& module,
                          const CompiledFsm& variant, const MiterWires& wires,
                          const MiterInterface& iface, const sat::CnfCopy& faulty,
                          const std::vector<sat::CnfFault>& faults, sim::FaultKind kind) {
  if (variant.alert_wire.empty()) return;
  std::unordered_map<SigBit, int> bound;
  for (int i = 0; i < wires.symbol->width(); ++i) {
    bound.emplace(SigBit(wires.symbol, i), iface.xvars[static_cast<std::size_t>(i)]);
  }
  for (const rtlil::Cell* cell : module.cells()) {
    if (!rtlil::is_ff(cell->type())) continue;
    const rtlil::SigSpec& q = cell->port("Q");
    const rtlil::SigSpec& d = cell->port("D");
    for (int i = 0; i < q.width(); ++i) {
      const SigBit qb = q.bit(i);
      if (!qb.is_const()) bound.emplace(qb, faulty.reader_var(d.bit(i)));
    }
  }
  const bool persistent =
      kind == sim::FaultKind::kStuckAt0 || kind == sim::FaultKind::kStuckAt1;
  const sat::CnfCopy post(solver, module, bound,
                          persistent ? faults : std::vector<sat::CnfFault>{});
  solver.add_unit(-post.wire_vars(variant.alert_wire)[0]);
}

/// One live incremental SAT shard: the solver holds the golden copy plus a
/// faulty copy whose overrides over sites [site_begin, site_end) are each
/// gated on a fresh selector literal (exactly_one over the selectors), and
/// the query-invariant property clauses (alert low, next-state mismatch,
/// valid faulty codeword). Every (site, edge) query is then a
/// solve(assumptions) call — selector + state/symbol units — so the CNF and
/// all learned clauses are shared across the whole sweep, and (held inside
/// an Analyzer) across every later run() that touches the same region and
/// fault kind. `free_symbol` only changes the assumptions, never the CNF,
/// so one shard serves both symbol modes.
struct SatShard {
  sat::Solver solver;
  MiterInterface iface;
  std::vector<sat::Lit> selectors;
  std::vector<int> fn;  ///< faulty next-state variables
  /// k-fault shards only: the Sinz counter over *all* region selectors, so
  /// "exactly k faults" is a per-query assumption set.
  std::unique_ptr<sat::CardinalityCounter> counter;
};

std::unique_ptr<SatShard> build_sat_shard(const CompiledFsm& variant,
                                          const std::vector<SigBit>& sites,
                                          sim::FaultKind kind, int faults_k,
                                          std::size_t site_begin, std::size_t site_end,
                                          const sat::Solver::WarmStart& warm) {
  const rtlil::Module& module = *variant.module;
  const MiterWires wires = resolve_interface(module, variant);
  auto shard = std::make_unique<SatShard>();
  sat::Solver& solver = shard->solver;
  shard->iface = bind_interface(solver, wires);

  const sat::CnfCopy golden(solver, module, shard->iface.bound);
  // Single-fault shards gate only their own site range (exactly_one picks
  // the queried site). k-fault shards must let the other k-1 faults land
  // anywhere in the region, so every site gets a selector regardless of the
  // shard's query range, constrained by the cardinality counter instead.
  const std::size_t sel_begin = faults_k > 1 ? 0 : site_begin;
  const std::size_t sel_end = faults_k > 1 ? sites.size() : site_end;
  std::vector<sat::CnfFault> faults;
  shard->selectors.reserve(sel_end - sel_begin);
  faults.reserve(sel_end - sel_begin);
  for (std::size_t s = sel_begin; s < sel_end; ++s) {
    const sat::Lit sel = solver.new_var();
    shard->selectors.push_back(sel);
    faults.push_back(sat::CnfFault{sites[s], to_cnf_kind(kind), sel});
  }
  const sat::CnfCopy faulty(solver, module, shard->iface.bound, faults);
  if (faults_k > 1) {
    shard->counter =
        std::make_unique<sat::CardinalityCounter>(solver, shard->selectors, faults_k);
  } else {
    sat::exactly_one(solver, shard->selectors);
  }

  const std::vector<int> gn = golden.ff_next_vars(variant.state_wire);
  shard->fn = faulty.ff_next_vars(variant.state_wire);
  if (!variant.alert_wire.empty()) {
    solver.add_unit(-faulty.wire_vars(variant.alert_wire)[0]);
  }
  add_post_cycle_alert(solver, module, variant, wires, shard->iface, faulty, faults, kind);
  solver.add_unit(sat::differ(solver, gn, shard->fn));
  solver.add_unit(sat::member_of(solver, shard->fn, variant.state_codes));

  // Seed the branching heuristic from what a sibling shard of this variant
  // already learned. Pure heuristic state: search order may change, the
  // SAT/UNSAT verdicts (and with them the report) cannot.
  if (!warm.empty()) solver.import_warm_start(warm);
  return shard;
}

/// Answers the (site, edge) queries of one shard via solve(assumptions).
void run_sat_queries(SatShard& shard, const std::vector<SigBit>& sites, const EdgeTable& edges,
                     const SynfiConfig& config, std::size_t site_begin, std::size_t site_end,
                     ShardReport& out) {
  std::vector<sat::Lit> assumptions;
  for (std::size_t s = site_begin; s < site_end; ++s) {
    bool site_exploitable = false;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      // One check per SAT query — the batch analog for this back-end.
      if (config.cancel != nullptr) config.cancel->check("synfi");
      ++out.injections;
      assumptions.clear();
      assumptions.push_back(shard.selectors[s - site_begin]);
      push_equals(assumptions, shard.iface.svars, edges.from_code[e]);
      if (!config.free_symbol) push_equals(assumptions, shard.iface.xvars, edges.code[e]);
      if (shard.solver.solve(assumptions) == sat::Result::kSat) {
        ++out.exploitable;
        site_exploitable = true;
        // Stall iff some undetected model keeps the old state: decided by a
        // second assumption query, so the count does not depend on which
        // model the solver happened to find.
        push_equals(assumptions, shard.fn, edges.from_code[e]);
        if (shard.solver.solve(assumptions) == sat::Result::kSat) ++out.stalls;
      } else {
        // Conservatively attribute UNSAT to detection/masking; the
        // simulation back-end provides the fine-grained split.
        ++out.detected;
      }
    }
    if (site_exploitable) out.exploitable_sites.push_back(format_site(sites[s]));
  }
}

/// k-fault participation queries over one cardinality-constrained shard:
/// for every site s in the query range and every edge, "is there an
/// exactly-k fault set *including s* with an undetected valid-but-wrong next
/// state?" — selector s plus the counter's exactly-k assumptions. Counting
/// is per (site, edge) like the single-fault SAT sweep (the exhaustive
/// back-end counts per (combination, edge) instead; both agree on
/// exploitable > 0 and on the exploitable site set).
void run_sat_kfault_queries(SatShard& shard, const std::vector<SigBit>& sites,
                            const EdgeTable& edges, const SynfiConfig& config,
                            std::size_t site_begin, std::size_t site_end,
                            ShardReport& out) {
  const std::vector<sat::Lit> cardinality =
      shard.counter->assume_exactly(config.faults_k);
  std::vector<sat::Lit> assumptions;
  for (std::size_t s = site_begin; s < site_end; ++s) {
    bool site_exploitable = false;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (config.cancel != nullptr) config.cancel->check("synfi");
      ++out.injections;
      assumptions.clear();
      assumptions.push_back(shard.selectors[s]);  // global: selectors span the region
      assumptions.insert(assumptions.end(), cardinality.begin(), cardinality.end());
      push_equals(assumptions, shard.iface.svars, edges.from_code[e]);
      if (!config.free_symbol) push_equals(assumptions, shard.iface.xvars, edges.code[e]);
      if (shard.solver.solve(assumptions) == sat::Result::kSat) {
        ++out.exploitable;
        site_exploitable = true;
        push_equals(assumptions, shard.fn, edges.from_code[e]);
        if (shard.solver.solve(assumptions) == sat::Result::kSat) ++out.stalls;
      } else {
        ++out.detected;
      }
    }
    if (site_exploitable) out.exploitable_sites.push_back(format_site(sites[s]));
  }
}

/// Reference SAT back-end: a fresh single-fault miter per (site, edge)
/// query. Kept as the baseline the incremental engine is validated and
/// benchmarked against (never cached — it IS the rebuild cost).
void run_sat_rebuild_shard(const CompiledFsm& variant, const std::vector<SigBit>& sites,
                           const EdgeTable& edges, const SynfiConfig& config,
                           std::size_t site_begin, std::size_t site_end, ShardReport& out) {
  const rtlil::Module& module = *variant.module;
  const MiterWires wires = resolve_interface(module, variant);
  for (std::size_t s = site_begin; s < site_end; ++s) {
    bool site_exploitable = false;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (config.cancel != nullptr) config.cancel->check("synfi");
      ++out.injections;
      sat::Solver solver;
      const MiterInterface iface = bind_interface(solver, wires);
      const sat::CnfCopy golden(solver, module, iface.bound);
      std::vector<sat::CnfFault> fault_set;
      if (config.faults_k == 1) {
        fault_set.push_back(sat::CnfFault{sites[s], to_cnf_kind(config.kind)});
      } else {
        // Participation query, rebuilt per call: the queried site is an
        // always-on override, every other region site a gated one, and an
        // exactly-(k-1) counter over the gates is asserted as units.
        std::vector<sat::Lit> others;
        fault_set.reserve(sites.size());
        others.reserve(sites.size() - 1);
        for (std::size_t t = 0; t < sites.size(); ++t) {
          if (t == s) {
            fault_set.push_back(sat::CnfFault{sites[t], to_cnf_kind(config.kind)});
          } else {
            const sat::Lit sel = solver.new_var();
            others.push_back(sel);
            fault_set.push_back(sat::CnfFault{sites[t], to_cnf_kind(config.kind), sel});
          }
        }
        const sat::CardinalityCounter counter(solver, others, config.faults_k - 1);
        for (const sat::Lit lit : counter.assume_exactly(config.faults_k - 1)) {
          solver.add_unit(lit);
        }
      }
      const sat::CnfCopy faulty(solver, module, iface.bound, fault_set);

      // Stimulus constraints.
      std::vector<sat::Lit> units;
      push_equals(units, iface.svars, edges.from_code[e]);
      if (!config.free_symbol) push_equals(units, iface.xvars, edges.code[e]);
      for (const sat::Lit lit : units) solver.add_unit(lit);

      const std::vector<int> gn = golden.ff_next_vars(variant.state_wire);
      const std::vector<int> fn = faulty.ff_next_vars(variant.state_wire);
      if (!variant.alert_wire.empty()) {
        solver.add_unit(-faulty.wire_vars(variant.alert_wire)[0]);
      }
      add_post_cycle_alert(solver, module, variant, wires, iface, faulty, fault_set,
                           config.kind);
      solver.add_unit(sat::differ(solver, gn, fn));
      solver.add_unit(sat::member_of(solver, fn, variant.state_codes));

      if (solver.solve() == sat::Result::kSat) {
        ++out.exploitable;
        site_exploitable = true;
        std::vector<sat::Lit> stall_assumptions;
        push_equals(stall_assumptions, fn, edges.from_code[e]);
        if (solver.solve(stall_assumptions) == sat::Result::kSat) ++out.stalls;
      } else {
        ++out.detected;
      }
    }
    if (site_exploitable) out.exploitable_sites.push_back(format_site(sites[s]));
  }
}

/// Region cache key: the site list depends on (prefix, include_inputs,
/// target class).
using RegionKey = std::tuple<std::string, bool, sim::FaultTarget>;

/// Incremental SAT shard cache key: the CNF depends on the region, the fault
/// kind, the fault count (selector span + cardinality network), and the
/// shard's site range (free_symbol and the stimulus live in the
/// assumptions).
using SatShardKey = std::tuple<std::string, bool, sim::FaultTarget, sim::FaultKind, int,
                               std::size_t, std::size_t>;

}  // namespace

struct Analyzer::Impl {
  const Fsm* fsm;
  const CompiledFsm* variant;
  EdgeTable edges;

  std::map<RegionKey, std::vector<SigBit>> regions;
  /// One simulator context per worker slot, grown on demand; slot w is only
  /// ever touched by worker w of a run() call, so no locking is needed once
  /// the vector is pre-sized.
  std::vector<std::unique_ptr<SimContext>> sim_pool;
  std::map<SatShardKey, std::unique_ptr<SatShard>> sat_shards;
  std::mutex sat_mutex;
  /// Branching-heuristic snapshot shared across shards of this variant.
  sat::Solver::WarmStart warm;

  const std::vector<SigBit>& region(const std::string& prefix, bool include_inputs,
                                    sim::FaultTarget target) {
    const RegionKey key{prefix, include_inputs, target};
    const auto it = regions.find(key);
    if (it != regions.end()) return it->second;
    return regions
        .emplace(key, enumerate_region(*variant->module, prefix, include_inputs, target,
                                       variant->state_wire))
        .first->second;
  }

  SatShard& sat_shard(const std::vector<SigBit>& sites, const SynfiConfig& config,
                      std::size_t begin, std::size_t end) {
    const SatShardKey key{config.wire_prefix, config.include_inputs, config.target,
                          config.kind,        config.faults_k,       begin,
                          end};
    {
      const std::lock_guard<std::mutex> lock(sat_mutex);
      const auto it = sat_shards.find(key);
      if (it != sat_shards.end()) return *it->second;
    }
    // Shard ranges are disjoint per worker, so no two workers ever build the
    // same key — construction can happen outside the lock.
    sat::Solver::WarmStart warm_copy;
    {
      const std::lock_guard<std::mutex> lock(sat_mutex);
      warm_copy = warm;
    }
    auto shard =
        build_sat_shard(*variant, sites, config.kind, config.faults_k, begin, end, warm_copy);
    const std::lock_guard<std::mutex> lock(sat_mutex);
    return *sat_shards.emplace(key, std::move(shard)).first->second;
  }
};

Analyzer::Analyzer(const Fsm& fsm, const CompiledFsm& variant) : impl_(new Impl) {
  check(variant.module != nullptr, "synfi: variant has no module");
  require(variant.symbol_width > 0, "synfi: variant must use encoded control symbols");
  impl_->fsm = &fsm;
  impl_->variant = &variant;
  impl_->edges = build_edge_table(variant, fsm.cfg_edges());
}

Analyzer::~Analyzer() = default;

const CompiledFsm& Analyzer::variant() const { return *impl_->variant; }

std::size_t Analyzer::cached_simulators() const {
  std::size_t live = 0;
  for (const auto& ctx : impl_->sim_pool) {
    if (ctx != nullptr) ++live;
  }
  return live;
}

std::size_t Analyzer::cached_sat_shards() const { return impl_->sat_shards.size(); }

SynfiReport Analyzer::run(const SynfiConfig& user_config) {
  require(user_config.lanes >= 1 && user_config.lanes <= sim::kMaxLanes,
          format("synfi: lanes must be in [1, %d] (64 x lane_words)", sim::kMaxLanes));
  require(user_config.threads >= 1, "synfi: threads must be >= 1");
  require(user_config.faults_k >= 1, "synfi: faults_k must be >= 1");
  // SCFI_LANE_WORDS_CAP clamps the *derived* simulator width (CI portable
  // leg); lanes is an execution knob, so the report is unchanged.
  SynfiConfig config = user_config;
  config.lanes = std::min(config.lanes, 64 * sim::lane_words_cap());
  const int lane_words = sim::lane_words_for(config.lanes);
  const CompiledFsm& variant = *impl_->variant;
  const std::vector<SigBit>& sites =
      impl_->region(config.wire_prefix, config.include_inputs, config.target);
  require(!sites.empty(), "synfi: no fault sites match prefix '" + config.wire_prefix + "'");
  const EdgeTable& edges = impl_->edges;

  if (static_cast<std::size_t>(config.faults_k) > sites.size()) {
    // No k-subset of the region exists: zero injections by definition. Kept
    // a report (not an error) so measured_protection_degree can scan past
    // the region size of a small variant without special-casing.
    SynfiReport report;
    report.faults_k = config.faults_k;
    report.sites = static_cast<std::int64_t>(sites.size());
    return report;
  }

  // k-fault exhaustive sweeps shard over combination *ranks*, not sites:
  // any combination can involve any site, so shards OR full-region
  // attribution bitmaps and the site names are emitted once, in global site
  // order — the same deterministic-merge contract as the single-fault path.
  if (config.backend == Backend::kExhaustiveSim && config.faults_k > 1) {
    const std::uint64_t num_combos =
        binomial(sites.size(), static_cast<std::size_t>(config.faults_k));
    const int workers = std::max(
        1, static_cast<int>(std::min<std::uint64_t>(config.threads, num_combos)));
    if (impl_->sim_pool.size() < static_cast<std::size_t>(workers)) {
      impl_->sim_pool.resize(static_cast<std::size_t>(workers));
    }
    std::vector<ShardReport> partial(static_cast<std::size_t>(workers));
    std::vector<std::vector<char>> hits(static_cast<std::size_t>(workers),
                                        std::vector<char>(sites.size(), 0));
    const auto run_combo_shard = [&](int slot, std::uint64_t begin, std::uint64_t end) {
      auto& ctx = impl_->sim_pool[static_cast<std::size_t>(slot)];
      if (ctx == nullptr || ctx->simulator.lane_words() != lane_words) {
        ctx = std::make_unique<SimContext>(variant, lane_words);
      }
      run_exhaustive_kfault_shard(*ctx, variant, sites, edges, config, begin, end,
                                  hits[static_cast<std::size_t>(slot)],
                                  partial[static_cast<std::size_t>(slot)]);
    };
    if (workers <= 1) {
      run_combo_shard(0, 0, num_combos);
    } else {
      std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        const std::uint64_t begin = num_combos * static_cast<std::uint64_t>(w) /
                                    static_cast<std::uint64_t>(workers);
        const std::uint64_t end = num_combos * static_cast<std::uint64_t>(w + 1) /
                                  static_cast<std::uint64_t>(workers);
        pool.emplace_back([&, w, begin, end] {
          try {
            run_combo_shard(w, begin, end);
          } catch (...) {
            errors[static_cast<std::size_t>(w)] = std::current_exception();
          }
        });
      }
      for (std::thread& th : pool) th.join();
      for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    }
    SynfiReport report;
    report.faults_k = config.faults_k;
    report.sites = static_cast<std::int64_t>(sites.size());
    for (const ShardReport& p : partial) {
      report.injections += p.injections;
      report.exploitable += p.exploitable;
      report.detected += p.detected;
      report.masked += p.masked;
      report.stalls += p.stalls;
    }
    for (std::size_t s = 0; s < sites.size(); ++s) {
      for (const auto& h : hits) {
        if (h[s]) {
          report.exploitable_sites.push_back(format_site(sites[s]));
          break;
        }
      }
    }
    return report;
  }

  const int workers =
      std::max(1, std::min<int>(config.threads, static_cast<int>(sites.size())));
  if (impl_->sim_pool.size() < static_cast<std::size_t>(workers) &&
      config.backend == Backend::kExhaustiveSim) {
    impl_->sim_pool.resize(static_cast<std::size_t>(workers));
  }

  const auto run_shard = [&](int slot, std::size_t begin, std::size_t end, ShardReport& out) {
    if (config.backend == Backend::kExhaustiveSim) {
      auto& ctx = impl_->sim_pool[static_cast<std::size_t>(slot)];
      // (Re)build when absent or compiled for a different lane-block width —
      // a cached narrow simulator cannot carry a wider run's lanes.
      if (ctx == nullptr || ctx->simulator.lane_words() != lane_words) {
        ctx = std::make_unique<SimContext>(variant, lane_words);
      }
      run_exhaustive_shard(*ctx, variant, sites, edges, config, begin, end, out);
    } else if (config.sat_incremental) {
      SatShard& shard = impl_->sat_shard(sites, config, begin, end);
      if (config.faults_k > 1) {
        run_sat_kfault_queries(shard, sites, edges, config, begin, end, out);
      } else {
        run_sat_queries(shard, sites, edges, config, begin, end, out);
      }
    } else {
      run_sat_rebuild_shard(variant, sites, edges, config, begin, end, out);
    }
  };

  std::vector<ShardReport> partial(static_cast<std::size_t>(workers));
  if (workers <= 1) {
    run_shard(0, 0, sites.size(), partial[0]);
  } else {
    // Contiguous site ranges per worker: no shared mutable state, and the
    // in-order merge below reproduces the single-threaded report exactly.
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      const auto begin = sites.size() * static_cast<std::size_t>(w) /
                         static_cast<std::size_t>(workers);
      const auto end = sites.size() * static_cast<std::size_t>(w + 1) /
                       static_cast<std::size_t>(workers);
      pool.emplace_back([&, w, begin, end] {
        try {
          run_shard(w, begin, end, partial[static_cast<std::size_t>(w)]);
        } catch (...) {
          errors[static_cast<std::size_t>(w)] = std::current_exception();
        }
      });
    }
    for (std::thread& th : pool) th.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Refresh the warm-start snapshot from the first shard of this query so
  // the next region/kind starts from trained activities. Done after the
  // join, on the calling thread.
  if (config.backend == Backend::kSat && config.sat_incremental) {
    const SatShardKey key{config.wire_prefix, config.include_inputs, config.target,
                          config.kind,        config.faults_k,       0,
                          sites.size() / static_cast<std::size_t>(workers)};
    const std::lock_guard<std::mutex> lock(impl_->sat_mutex);
    const auto it = impl_->sat_shards.find(key);
    if (it != impl_->sat_shards.end()) impl_->warm = it->second->solver.export_warm_start();
  }

  SynfiReport report;
  report.faults_k = config.faults_k;
  report.sites = static_cast<std::int64_t>(sites.size());
  for (ShardReport& p : partial) {
    report.injections += p.injections;
    report.exploitable += p.exploitable;
    report.detected += p.detected;
    report.masked += p.masked;
    report.stalls += p.stalls;
    report.exploitable_sites.insert(report.exploitable_sites.end(),
                                    std::make_move_iterator(p.exploitable_sites.begin()),
                                    std::make_move_iterator(p.exploitable_sites.end()));
  }
  return report;
}

SynfiReport analyze(const Fsm& fsm, const CompiledFsm& variant, const SynfiConfig& config) {
  return Analyzer(fsm, variant).run(config);
}

int measured_protection_degree(Analyzer& analyzer, const SynfiConfig& config, int max_k) {
  require(max_k >= 1, "synfi: measured_protection_degree needs max_k >= 1");
  for (int k = 1; k <= max_k; ++k) {
    SynfiConfig probe = config;
    probe.faults_k = k;
    if (analyzer.run(probe).exploitable > 0) return k;
  }
  return 0;
}

int auto_lanes(const rtlil::Module& module) {
  std::size_t net_bits = 2;  // the two constant nets
  for (const rtlil::Wire* w : module.wires()) {
    net_bits += static_cast<std::size_t>(w->width());
  }
  // The faulty eval streams ~7 words per net per lane word (value + two mask
  // words, read and written); keep that working set inside a 128 KiB L2
  // budget. Small modules land on the measured 128–256 lane sweet spot and
  // big ones fall back to the portable width instead of thrashing.
  int words = 4;
  while (words > 1 && net_bits * static_cast<std::size_t>(words) * 8 * 7 > 128 * 1024) {
    words /= 2;
  }
  return words * sim::kWordLanes;
}

}  // namespace scfi::synfi
