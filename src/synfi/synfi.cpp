#include "synfi/synfi.h"

#include "base/error.h"
#include "base/strutil.h"
#include "sat/cnf.h"
#include "sat/miter.h"

namespace scfi::synfi {
namespace {

using fsm::CfgEdge;
using fsm::CompiledFsm;
using fsm::Fsm;
using rtlil::SigBit;

std::vector<SigBit> enumerate_region(const rtlil::Module& module, const std::string& prefix,
                                     bool include_inputs) {
  std::vector<SigBit> sites;
  const rtlil::NetlistIndex index(module);
  for (const rtlil::Wire* w : module.wires()) {
    if (!prefix.empty() && !starts_with(w->name(), prefix)) continue;
    if (w->is_input()) {
      if (include_inputs) {
        for (int i = 0; i < w->width(); ++i) sites.emplace_back(w, i);
      }
      continue;
    }
    for (int i = 0; i < w->width(); ++i) {
      const SigBit bit(w, i);
      const rtlil::Cell* driver = index.driver(bit);
      if (driver == nullptr || rtlil::is_ff(driver->type())) continue;
      sites.push_back(bit);
    }
  }
  return sites;
}

sat::CnfFaultKind to_cnf_kind(sim::FaultKind kind) {
  switch (kind) {
    case sim::FaultKind::kStuckAt0: return sat::CnfFaultKind::kStuckAt0;
    case sim::FaultKind::kStuckAt1: return sat::CnfFaultKind::kStuckAt1;
    default: return sat::CnfFaultKind::kFlip;
  }
}

}  // namespace

SynfiReport analyze(const Fsm& fsm, const CompiledFsm& variant, const SynfiConfig& config) {
  check(variant.module != nullptr, "synfi: variant has no module");
  require(variant.symbol_width > 0, "synfi: variant must use encoded control symbols");
  const rtlil::Module& module = *variant.module;
  const std::vector<SigBit> sites =
      enumerate_region(module, config.wire_prefix, config.include_inputs);
  require(!sites.empty(), "synfi: no fault sites match prefix '" + config.wire_prefix + "'");
  const std::vector<CfgEdge> edges = fsm.cfg_edges();

  SynfiReport report;
  report.sites = static_cast<int>(sites.size());

  if (config.backend == Backend::kExhaustiveSim) {
    sim::Simulator simulator(module);
    // Pre-resolve interface wires and fault nets so the injection loop never
    // touches strings or hash maps.
    const sim::Simulator::WireHandle symbol_h =
        simulator.input_handle(variant.symbol_input_wire);
    const sim::Simulator::WireHandle state_h = simulator.probe(variant.state_wire);
    sim::Simulator::WireHandle alert_h;
    if (!variant.alert_wire.empty()) alert_h = simulator.probe(variant.alert_wire);
    std::vector<std::uint64_t> edge_code;
    edge_code.reserve(edges.size());
    for (const CfgEdge& edge : edges) edge_code.push_back(variant.symbol_codes.at(edge.symbol));
    for (const SigBit& site : sites) {
      const std::int32_t site_net = simulator.net_index(site);
      bool site_exploitable = false;
      for (std::size_t ei = 0; ei < edges.size(); ++ei) {
        const CfgEdge& edge = edges[ei];
        ++report.injections;
        simulator.clear_all_faults();
        simulator.set_input(symbol_h, edge_code[ei]);
        simulator.set_register(state_h,
                               variant.state_codes[static_cast<std::size_t>(edge.from)]);
        simulator.inject_net(site_net, config.kind, sim::kAllLanes);
        simulator.eval();
        const bool alert_pre = alert_h.valid() && simulator.get(alert_h) != 0;
        simulator.step();
        const bool alert_post = alert_h.valid() && simulator.get(alert_h) != 0;
        const std::uint64_t next = simulator.get(state_h);
        const std::uint64_t expected =
            variant.state_codes[static_cast<std::size_t>(edge.to)];
        if (next == expected && !alert_pre) {
          ++report.masked;
        } else if (alert_pre || alert_post ||
                   (variant.has_error_state && next == variant.error_code)) {
          ++report.detected;
        } else if (variant.decode_state(next) >= 0) {
          ++report.exploitable;
          site_exploitable = true;
          if (next == variant.state_codes[static_cast<std::size_t>(edge.from)]) {
            ++report.stalls;
          }
        } else {
          // Invalid state without any alert: undetected corruption, counts
          // as exploitable denial (cannot happen for SCFI variants).
          ++report.exploitable;
          site_exploitable = true;
        }
      }
      if (site_exploitable) {
        report.exploitable_sites.push_back(site.wire->name() + "[" +
                                           std::to_string(site.offset) + "]");
      }
    }
    return report;
  }

  // SAT back-end: one miter per (site, edge).
  for (const SigBit& site : sites) {
    bool site_exploitable = false;
    for (const CfgEdge& edge : edges) {
      ++report.injections;
      sat::Solver solver;
      // Shared input/state variables between the two copies.
      std::unordered_map<SigBit, int> bound;
      const rtlil::Wire* xw = module.wire(variant.symbol_input_wire);
      const rtlil::Wire* sw = module.wire(variant.state_wire);
      check(xw != nullptr && sw != nullptr, "synfi: missing interface wires");
      std::vector<int> xvars;
      std::vector<int> svars;
      for (int i = 0; i < xw->width(); ++i) {
        const int v = solver.new_var();
        bound.emplace(SigBit(xw, i), v);
        xvars.push_back(v);
      }
      for (int i = 0; i < sw->width(); ++i) {
        const int v = solver.new_var();
        bound.emplace(SigBit(sw, i), v);
        svars.push_back(v);
      }
      sat::CnfCopy golden(solver, module, bound);
      sat::CnfCopy faulty(solver, module, bound,
                          sat::CnfFault{site, to_cnf_kind(config.kind)});

      // Stimulus constraints.
      const std::uint64_t s_from = variant.state_codes[static_cast<std::size_t>(edge.from)];
      for (std::size_t i = 0; i < svars.size(); ++i) {
        solver.add_unit(((s_from >> i) & 1) ? svars[i] : -svars[i]);
      }
      if (!config.free_symbol) {
        const std::uint64_t x = variant.symbol_codes.at(edge.symbol);
        for (std::size_t i = 0; i < xvars.size(); ++i) {
          solver.add_unit(((x >> i) & 1) ? xvars[i] : -xvars[i]);
        }
      }

      const std::vector<int> gn = golden.ff_next_vars(variant.state_wire);
      const std::vector<int> fn = faulty.ff_next_vars(variant.state_wire);
      if (!variant.alert_wire.empty()) {
        solver.add_unit(-faulty.wire_vars(variant.alert_wire)[0]);
      }
      solver.add_unit(sat::differ(solver, gn, fn));
      solver.add_unit(sat::member_of(solver, fn, variant.state_codes));

      if (solver.solve() == sat::Result::kSat) {
        ++report.exploitable;
        site_exploitable = true;
        // Stall classification from the model.
        std::uint64_t next = 0;
        for (std::size_t i = 0; i < fn.size(); ++i) {
          if (solver.value(fn[i])) next |= 1ULL << i;
        }
        if (next == s_from) ++report.stalls;
      } else {
        // Conservatively attribute UNSAT to detection/masking; the
        // simulation back-end provides the fine-grained split.
        ++report.detected;
      }
    }
    if (site_exploitable) {
      report.exploitable_sites.push_back(site.wire->name() + "[" + std::to_string(site.offset) +
                                         "]");
    }
  }
  return report;
}

}  // namespace scfi::synfi
