#include "synfi/synfi.h"

#include <algorithm>
#include <array>
#include <bit>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "base/error.h"
#include "base/retry.h"
#include "base/strutil.h"
#include "sat/cnf.h"
#include "sat/miter.h"

namespace scfi::synfi {
namespace {

using fsm::CfgEdge;
using fsm::CompiledFsm;
using fsm::Fsm;
using rtlil::SigBit;

std::string format_site(const SigBit& site) {
  return site.wire->name() + "[" + std::to_string(site.offset) + "]";
}

std::vector<SigBit> enumerate_region(const rtlil::Module& module, const std::string& prefix,
                                     bool include_inputs) {
  std::vector<SigBit> sites;
  const rtlil::NetlistIndex index(module);
  for (const rtlil::Wire* w : module.wires()) {
    if (!prefix.empty() && !starts_with(w->name(), prefix)) continue;
    if (w->is_input()) {
      if (include_inputs) {
        for (int i = 0; i < w->width(); ++i) sites.emplace_back(w, i);
      }
      continue;
    }
    for (int i = 0; i < w->width(); ++i) {
      const SigBit bit(w, i);
      const rtlil::Cell* driver = index.driver(bit);
      if (driver == nullptr || rtlil::is_ff(driver->type())) continue;
      sites.push_back(bit);
    }
  }
  return sites;
}

sat::CnfFaultKind to_cnf_kind(sim::FaultKind kind) {
  switch (kind) {
    case sim::FaultKind::kStuckAt0: return sat::CnfFaultKind::kStuckAt0;
    case sim::FaultKind::kStuckAt1: return sat::CnfFaultKind::kStuckAt1;
    default: return sat::CnfFaultKind::kFlip;
  }
}

/// Loop-invariant per-edge stimulus, resolved once per Analyzer and shared
/// by both back-ends: symbol codeword plus from/to state indices (no map
/// lookups inside the query loops).
struct EdgeTable {
  std::vector<std::uint64_t> code;   ///< encoded control symbol per edge
  std::vector<std::uint64_t> from_code;
  std::vector<std::int32_t> from;    ///< state index per edge
  std::vector<std::int32_t> to;
  std::size_t size() const { return code.size(); }
};

EdgeTable build_edge_table(const CompiledFsm& variant, const std::vector<CfgEdge>& edges) {
  EdgeTable table;
  table.code.reserve(edges.size());
  table.from_code.reserve(edges.size());
  table.from.reserve(edges.size());
  table.to.reserve(edges.size());
  for (const CfgEdge& edge : edges) {
    table.code.push_back(variant.symbol_codes.at(edge.symbol));
    table.from_code.push_back(variant.state_codes[static_cast<std::size_t>(edge.from)]);
    table.from.push_back(edge.from);
    table.to.push_back(edge.to);
  }
  return table;
}

/// Partial report for one contiguous site range. Counters are plain sums
/// and exploitable_sites stays in site order, so merging shards in range
/// order reproduces the single-threaded report exactly.
struct ShardReport {
  std::int64_t injections = 0;
  std::int64_t exploitable = 0;
  std::int64_t detected = 0;
  std::int64_t masked = 0;
  std::int64_t stalls = 0;
  std::vector<std::string> exploitable_sites;
};

/// One reusable worker context of the exhaustive back-end: the compiled
/// 64-lane simulator plus the resolved interface handles. Building the
/// Simulator (netlist flattening) is the fixed cost a many-region sweep
/// amortizes, so the Analyzer keeps one context per worker slot alive
/// across run() calls. Per-job state/symbol stimulus is fully overwritten
/// every batch and outcome classification reads only the state/alert cone,
/// so carried-over simulator state cannot change any verdict (the same
/// property that makes the report lanes/threads-invariant).
struct SimContext {
  sim::Simulator simulator;
  sim::Simulator::WireHandle symbol_h;
  sim::Simulator::WireHandle state_h;
  sim::Simulator::WireHandle alert_h;

  SimContext(const CompiledFsm& variant, int lane_words)
      : simulator(*variant.module, lane_words) {
    symbol_h = simulator.input_handle(variant.symbol_input_wire);
    state_h = simulator.probe(variant.state_wire);
    if (!variant.alert_wire.empty()) alert_h = simulator.probe(variant.alert_wire);
    check(state_h.width <= 64, "synfi: state wire too wide");
  }
};

/// Exhaustive-simulation back-end over sites [site_begin, site_end): packs
/// up to `config.lanes` (site, edge) jobs into every eval/step pass —
/// 64 x lane_words jobs when the context's simulator carries a multi-word
/// lane block. Lane k carries job k's state/symbol stimulus (per-lane
/// register/input words) and a single-lane fault mask; outcomes are
/// classified word-parallel, W lane words at a time. Lanes never interact,
/// so the per-job outcome equals the scalar one-job-per-pass path bit for
/// bit.
void run_exhaustive_shard(SimContext& ctx, const CompiledFsm& variant,
                          const std::vector<SigBit>& sites, const EdgeTable& edges,
                          const SynfiConfig& config, std::size_t site_begin,
                          std::size_t site_end, ShardReport& out) {
  sim::Simulator& simulator = ctx.simulator;
  const sim::Simulator::WireHandle symbol_h = ctx.symbol_h;
  const sim::Simulator::WireHandle state_h = ctx.state_h;
  const sim::Simulator::WireHandle alert_h = ctx.alert_h;
  const int W = simulator.lane_words();
  const std::size_t total_lanes = static_cast<std::size_t>(W) * 64;
  const int state_w = state_h.width;
  const int symbol_w = symbol_h.width;
  const std::size_t num_states = variant.state_codes.size();
  // A code with bits beyond the register width can never match.
  const auto fits = [state_w](std::uint64_t code) {
    return state_w >= 64 || (code >> state_w) == 0;
  };

  std::vector<std::int32_t> site_net;
  site_net.reserve(site_end - site_begin);
  for (std::size_t s = site_begin; s < site_end; ++s) {
    site_net.push_back(simulator.net_index(sites[s]));
  }

  const std::size_t num_edges = edges.size();
  const std::size_t num_jobs = (site_end - site_begin) * num_edges;
  const auto lanes = static_cast<std::size_t>(config.lanes);
  const auto alert_word = [&](int w) {
    std::uint64_t word = 0;
    for (std::int32_t i = 0; i < alert_h.width; ++i) {
      word |= simulator.lane_word(alert_h.base + i, w);
    }
    return word;
  };

  // Runtime-width lane sets: words [0, W) of a kMaxLaneWords array, so the
  // classic one-word configuration pays for exactly one word.
  using LaneWords = std::array<std::uint64_t, sim::kMaxLaneWords>;
  std::vector<std::uint64_t> state_words(static_cast<std::size_t>(state_w * W));
  std::vector<std::uint64_t> state_eq(num_states * static_cast<std::size_t>(W));
  std::vector<char> site_hit(site_end - site_begin, 0);

  // Jobs stay in (site-major, edge-minor) order, so a batch starting at job
  // j0 always drives lane k with edge (j0 + k) mod E: the per-word stimulus
  // and per-lane from/to state indices depend only on j0 mod E. Precompute
  // them per alignment so the batch loop never repacks bits or divides.
  struct AlignedStimulus {
    std::vector<std::uint64_t> in_words;   ///< symbol bit x word -> lane word
    std::vector<std::uint64_t> st_words;   ///< state bit x word -> lane word
    std::vector<std::int32_t> lane_from;   ///< state index per lane
    std::vector<std::int32_t> lane_to;
  };
  std::vector<AlignedStimulus> aligned(num_edges);
  for (std::size_t r = 0; r < num_edges; ++r) {
    AlignedStimulus& a = aligned[r];
    a.in_words.assign(static_cast<std::size_t>(symbol_w * W), 0);
    a.st_words.assign(static_cast<std::size_t>(state_w * W), 0);
    a.lane_from.resize(total_lanes);
    a.lane_to.resize(total_lanes);
    std::size_t e = r;
    for (std::size_t lane = 0; lane < total_lanes; ++lane) {
      const std::size_t wj = lane >> 6;
      const std::uint64_t bit = 1ULL << (lane & 63);
      const std::uint64_t code = edges.code[e];
      const std::uint64_t from_code = edges.from_code[e];
      for (int i = 0; i < symbol_w; ++i) {
        if ((code >> i) & 1) a.in_words[static_cast<std::size_t>(i * W) + wj] |= bit;
      }
      for (int i = 0; i < state_w; ++i) {
        if ((from_code >> i) & 1) a.st_words[static_cast<std::size_t>(i * W) + wj] |= bit;
      }
      a.lane_from[lane] = edges.from[e];
      a.lane_to[lane] = edges.to[e];
      if (++e == num_edges) e = 0;
    }
  }

  std::size_t cur_site = 0;  ///< shard-local site index of the next job
  std::size_t cur_edge = 0;
  for (std::size_t job0 = 0; job0 < num_jobs; job0 += lanes) {
    // Cooperative cancellation at batch granularity: a fired token (sweep
    // job deadline) stops the shard here, never mid-batch.
    if (config.cancel != nullptr) config.cancel->check("synfi");
    const std::size_t batch_jobs = std::min(lanes, num_jobs - job0);
    const sim::LaneMask batch_mask = sim::LaneMask::first_n(static_cast<int>(batch_jobs));
    const AlignedStimulus& a = aligned[cur_edge];

    simulator.clear_all_faults();
    for (int i = 0; i < symbol_w; ++i) {
      for (int w = 0; w < W; ++w) {
        simulator.set_input_word(symbol_h, i, a.in_words[static_cast<std::size_t>(i * W + w)], w);
      }
    }
    for (int i = 0; i < state_w; ++i) {
      for (int w = 0; w < W; ++w) {
        simulator.set_register_word(state_h, i, a.st_words[static_cast<std::size_t>(i * W + w)],
                                    w);
      }
    }
    std::size_t s = cur_site;
    std::size_t e = cur_edge;
    for (std::size_t lane = 0; lane < batch_jobs; ++lane) {
      simulator.inject_net(site_net[s], config.kind,
                           sim::LaneMask::lane(static_cast<int>(lane)));
      if (++e == num_edges) {
        e = 0;
        ++s;
      }
    }

    simulator.eval();
    LaneWords alert_pre{};
    if (alert_h.valid()) {
      for (int w = 0; w < W; ++w) alert_pre[static_cast<std::size_t>(w)] = alert_word(w);
    }
    simulator.step();
    LaneWords alert_post{};
    if (alert_h.valid()) {
      for (int w = 0; w < W; ++w) alert_post[static_cast<std::size_t>(w)] = alert_word(w);
    }
    for (int i = 0; i < state_w; ++i) {
      for (int w = 0; w < W; ++w) {
        state_words[static_cast<std::size_t>(i * W + w)] =
            simulator.lane_word(state_h.base + i, w);
      }
    }

    // Word-parallel classification: equality masks of the latched state
    // against every codeword at once instead of decoding lane by lane.
    for (std::size_t sc = 0; sc < num_states; ++sc) {
      const std::uint64_t code = variant.state_codes[sc];
      for (int w = 0; w < W; ++w) {
        std::uint64_t eq = fits(code) ? batch_mask.w[static_cast<std::size_t>(w)] : 0;
        for (int i = 0; i < state_w && eq != 0; ++i) {
          const std::uint64_t sw = state_words[static_cast<std::size_t>(i * W + w)];
          eq &= ((code >> i) & 1) ? sw : ~sw;
        }
        state_eq[sc * static_cast<std::size_t>(W) + static_cast<std::size_t>(w)] = eq;
      }
    }
    LaneWords err_eq{};
    if (variant.has_error_state) {
      for (int w = 0; w < W; ++w) {
        std::uint64_t eq = fits(variant.error_code) ? batch_mask.w[static_cast<std::size_t>(w)] : 0;
        for (int i = 0; i < state_w && eq != 0; ++i) {
          const std::uint64_t sw = state_words[static_cast<std::size_t>(i * W + w)];
          eq &= ((variant.error_code >> i) & 1) ? sw : ~sw;
        }
        err_eq[static_cast<std::size_t>(w)] = eq;
      }
    }
    LaneWords match_expect{};
    LaneWords match_from{};
    for (std::size_t lane = 0; lane < batch_jobs; ++lane) {
      const std::size_t wj = lane >> 6;
      const std::uint64_t bit = 1ULL << (lane & 63);
      match_expect[wj] |= state_eq[static_cast<std::size_t>(a.lane_to[lane]) *
                                       static_cast<std::size_t>(W) +
                                   wj] &
                          bit;
      match_from[wj] |= state_eq[static_cast<std::size_t>(a.lane_from[lane]) *
                                     static_cast<std::size_t>(W) +
                                 wj] &
                        bit;
    }

    out.injections += static_cast<std::int64_t>(batch_jobs);
    for (int w = 0; w < W; ++w) {
      const auto j = static_cast<std::size_t>(w);
      const std::uint64_t mask = batch_mask.w[j];
      const std::uint64_t masked = match_expect[j] & ~alert_pre[j] & mask;
      const std::uint64_t detected =
          (alert_pre[j] | alert_post[j] | err_eq[j]) & ~masked & mask;
      // Everything else is an undetected deviation: a valid-but-wrong state
      // (hijack/stall) or an undetected non-codeword (cannot happen for SCFI
      // variants) — both count as exploitable, exactly like the scalar path.
      const std::uint64_t expl = mask & ~masked & ~detected;

      out.masked += std::popcount(masked);
      out.detected += std::popcount(detected);
      out.exploitable += std::popcount(expl);
      out.stalls += std::popcount(expl & match_from[j]);
      for (std::uint64_t hits = expl; hits != 0; hits &= hits - 1) {
        const auto lane = (j << 6) + static_cast<std::size_t>(std::countr_zero(hits));
        site_hit[cur_site + (cur_edge + lane) / num_edges] = 1;
      }
    }
    cur_site = s;
    cur_edge = e;
  }
  for (std::size_t s = site_begin; s < site_end; ++s) {
    if (site_hit[s - site_begin]) out.exploitable_sites.push_back(format_site(sites[s]));
  }
}

/// Interface wires of the miter, resolved once per shard construction.
struct MiterWires {
  const rtlil::Wire* symbol = nullptr;
  const rtlil::Wire* state = nullptr;
};

MiterWires resolve_interface(const rtlil::Module& module, const CompiledFsm& variant) {
  MiterWires wires;
  wires.symbol = module.wire(variant.symbol_input_wire);
  wires.state = module.wire(variant.state_wire);
  check(wires.symbol != nullptr && wires.state != nullptr, "synfi: missing interface wires");
  return wires;
}

/// Interface variables shared between the golden and faulty CNF copies.
struct MiterInterface {
  std::unordered_map<SigBit, int> bound;
  std::vector<int> xvars;
  std::vector<int> svars;
};

MiterInterface bind_interface(sat::Solver& solver, const MiterWires& wires) {
  MiterInterface iface;
  for (int i = 0; i < wires.symbol->width(); ++i) {
    const int v = solver.new_var();
    iface.bound.emplace(SigBit(wires.symbol, i), v);
    iface.xvars.push_back(v);
  }
  for (int i = 0; i < wires.state->width(); ++i) {
    const int v = solver.new_var();
    iface.bound.emplace(SigBit(wires.state, i), v);
    iface.svars.push_back(v);
  }
  return iface;
}

void push_equals(std::vector<sat::Lit>& lits, const std::vector<int>& vars,
                 std::uint64_t value) {
  for (std::size_t i = 0; i < vars.size(); ++i) {
    lits.push_back(((value >> i) & 1) ? vars[i] : -vars[i]);
  }
}

/// One live incremental SAT shard: the solver holds the golden copy plus a
/// faulty copy whose overrides over sites [site_begin, site_end) are each
/// gated on a fresh selector literal (exactly_one over the selectors), and
/// the query-invariant property clauses (alert low, next-state mismatch,
/// valid faulty codeword). Every (site, edge) query is then a
/// solve(assumptions) call — selector + state/symbol units — so the CNF and
/// all learned clauses are shared across the whole sweep, and (held inside
/// an Analyzer) across every later run() that touches the same region and
/// fault kind. `free_symbol` only changes the assumptions, never the CNF,
/// so one shard serves both symbol modes.
struct SatShard {
  sat::Solver solver;
  MiterInterface iface;
  std::vector<sat::Lit> selectors;
  std::vector<int> fn;  ///< faulty next-state variables
};

std::unique_ptr<SatShard> build_sat_shard(const CompiledFsm& variant,
                                          const std::vector<SigBit>& sites,
                                          sim::FaultKind kind, std::size_t site_begin,
                                          std::size_t site_end,
                                          const sat::Solver::WarmStart& warm) {
  const rtlil::Module& module = *variant.module;
  const MiterWires wires = resolve_interface(module, variant);
  auto shard = std::make_unique<SatShard>();
  sat::Solver& solver = shard->solver;
  shard->iface = bind_interface(solver, wires);

  const sat::CnfCopy golden(solver, module, shard->iface.bound);
  std::vector<sat::CnfFault> faults;
  shard->selectors.reserve(site_end - site_begin);
  faults.reserve(site_end - site_begin);
  for (std::size_t s = site_begin; s < site_end; ++s) {
    const sat::Lit sel = solver.new_var();
    shard->selectors.push_back(sel);
    faults.push_back(sat::CnfFault{sites[s], to_cnf_kind(kind), sel});
  }
  const sat::CnfCopy faulty(solver, module, shard->iface.bound, faults);
  sat::exactly_one(solver, shard->selectors);

  const std::vector<int> gn = golden.ff_next_vars(variant.state_wire);
  shard->fn = faulty.ff_next_vars(variant.state_wire);
  if (!variant.alert_wire.empty()) {
    solver.add_unit(-faulty.wire_vars(variant.alert_wire)[0]);
  }
  solver.add_unit(sat::differ(solver, gn, shard->fn));
  solver.add_unit(sat::member_of(solver, shard->fn, variant.state_codes));

  // Seed the branching heuristic from what a sibling shard of this variant
  // already learned. Pure heuristic state: search order may change, the
  // SAT/UNSAT verdicts (and with them the report) cannot.
  if (!warm.empty()) solver.import_warm_start(warm);
  return shard;
}

/// Answers the (site, edge) queries of one shard via solve(assumptions).
void run_sat_queries(SatShard& shard, const std::vector<SigBit>& sites, const EdgeTable& edges,
                     const SynfiConfig& config, std::size_t site_begin, std::size_t site_end,
                     ShardReport& out) {
  std::vector<sat::Lit> assumptions;
  for (std::size_t s = site_begin; s < site_end; ++s) {
    bool site_exploitable = false;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      // One check per SAT query — the batch analog for this back-end.
      if (config.cancel != nullptr) config.cancel->check("synfi");
      ++out.injections;
      assumptions.clear();
      assumptions.push_back(shard.selectors[s - site_begin]);
      push_equals(assumptions, shard.iface.svars, edges.from_code[e]);
      if (!config.free_symbol) push_equals(assumptions, shard.iface.xvars, edges.code[e]);
      if (shard.solver.solve(assumptions) == sat::Result::kSat) {
        ++out.exploitable;
        site_exploitable = true;
        // Stall iff some undetected model keeps the old state: decided by a
        // second assumption query, so the count does not depend on which
        // model the solver happened to find.
        push_equals(assumptions, shard.fn, edges.from_code[e]);
        if (shard.solver.solve(assumptions) == sat::Result::kSat) ++out.stalls;
      } else {
        // Conservatively attribute UNSAT to detection/masking; the
        // simulation back-end provides the fine-grained split.
        ++out.detected;
      }
    }
    if (site_exploitable) out.exploitable_sites.push_back(format_site(sites[s]));
  }
}

/// Reference SAT back-end: a fresh single-fault miter per (site, edge)
/// query. Kept as the baseline the incremental engine is validated and
/// benchmarked against (never cached — it IS the rebuild cost).
void run_sat_rebuild_shard(const CompiledFsm& variant, const std::vector<SigBit>& sites,
                           const EdgeTable& edges, const SynfiConfig& config,
                           std::size_t site_begin, std::size_t site_end, ShardReport& out) {
  const rtlil::Module& module = *variant.module;
  const MiterWires wires = resolve_interface(module, variant);
  for (std::size_t s = site_begin; s < site_end; ++s) {
    bool site_exploitable = false;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (config.cancel != nullptr) config.cancel->check("synfi");
      ++out.injections;
      sat::Solver solver;
      const MiterInterface iface = bind_interface(solver, wires);
      const sat::CnfCopy golden(solver, module, iface.bound);
      const sat::CnfCopy faulty(solver, module, iface.bound,
                                sat::CnfFault{sites[s], to_cnf_kind(config.kind)});

      // Stimulus constraints.
      std::vector<sat::Lit> units;
      push_equals(units, iface.svars, edges.from_code[e]);
      if (!config.free_symbol) push_equals(units, iface.xvars, edges.code[e]);
      for (const sat::Lit lit : units) solver.add_unit(lit);

      const std::vector<int> gn = golden.ff_next_vars(variant.state_wire);
      const std::vector<int> fn = faulty.ff_next_vars(variant.state_wire);
      if (!variant.alert_wire.empty()) {
        solver.add_unit(-faulty.wire_vars(variant.alert_wire)[0]);
      }
      solver.add_unit(sat::differ(solver, gn, fn));
      solver.add_unit(sat::member_of(solver, fn, variant.state_codes));

      if (solver.solve() == sat::Result::kSat) {
        ++out.exploitable;
        site_exploitable = true;
        std::vector<sat::Lit> stall_assumptions;
        push_equals(stall_assumptions, fn, edges.from_code[e]);
        if (solver.solve(stall_assumptions) == sat::Result::kSat) ++out.stalls;
      } else {
        ++out.detected;
      }
    }
    if (site_exploitable) out.exploitable_sites.push_back(format_site(sites[s]));
  }
}

/// Region cache key: the site list depends only on (prefix, include_inputs).
using RegionKey = std::pair<std::string, bool>;

/// Incremental SAT shard cache key: the CNF depends on the region, the fault
/// kind, and the shard's site range (free_symbol and the stimulus live in
/// the assumptions).
using SatShardKey = std::tuple<std::string, bool, sim::FaultKind, std::size_t, std::size_t>;

}  // namespace

struct Analyzer::Impl {
  const Fsm* fsm;
  const CompiledFsm* variant;
  EdgeTable edges;

  std::map<RegionKey, std::vector<SigBit>> regions;
  /// One simulator context per worker slot, grown on demand; slot w is only
  /// ever touched by worker w of a run() call, so no locking is needed once
  /// the vector is pre-sized.
  std::vector<std::unique_ptr<SimContext>> sim_pool;
  std::map<SatShardKey, std::unique_ptr<SatShard>> sat_shards;
  std::mutex sat_mutex;
  /// Branching-heuristic snapshot shared across shards of this variant.
  sat::Solver::WarmStart warm;

  const std::vector<SigBit>& region(const std::string& prefix, bool include_inputs) {
    const RegionKey key{prefix, include_inputs};
    const auto it = regions.find(key);
    if (it != regions.end()) return it->second;
    return regions.emplace(key, enumerate_region(*variant->module, prefix, include_inputs))
        .first->second;
  }

  SatShard& sat_shard(const std::vector<SigBit>& sites, const SynfiConfig& config,
                      std::size_t begin, std::size_t end) {
    const SatShardKey key{config.wire_prefix, config.include_inputs, config.kind, begin, end};
    {
      const std::lock_guard<std::mutex> lock(sat_mutex);
      const auto it = sat_shards.find(key);
      if (it != sat_shards.end()) return *it->second;
    }
    // Shard ranges are disjoint per worker, so no two workers ever build the
    // same key — construction can happen outside the lock.
    sat::Solver::WarmStart warm_copy;
    {
      const std::lock_guard<std::mutex> lock(sat_mutex);
      warm_copy = warm;
    }
    auto shard = build_sat_shard(*variant, sites, config.kind, begin, end, warm_copy);
    const std::lock_guard<std::mutex> lock(sat_mutex);
    return *sat_shards.emplace(key, std::move(shard)).first->second;
  }
};

Analyzer::Analyzer(const Fsm& fsm, const CompiledFsm& variant) : impl_(new Impl) {
  check(variant.module != nullptr, "synfi: variant has no module");
  require(variant.symbol_width > 0, "synfi: variant must use encoded control symbols");
  impl_->fsm = &fsm;
  impl_->variant = &variant;
  impl_->edges = build_edge_table(variant, fsm.cfg_edges());
}

Analyzer::~Analyzer() = default;

const CompiledFsm& Analyzer::variant() const { return *impl_->variant; }

std::size_t Analyzer::cached_simulators() const {
  std::size_t live = 0;
  for (const auto& ctx : impl_->sim_pool) {
    if (ctx != nullptr) ++live;
  }
  return live;
}

std::size_t Analyzer::cached_sat_shards() const { return impl_->sat_shards.size(); }

SynfiReport Analyzer::run(const SynfiConfig& user_config) {
  require(user_config.lanes >= 1 && user_config.lanes <= sim::kMaxLanes,
          format("synfi: lanes must be in [1, %d] (64 x lane_words)", sim::kMaxLanes));
  require(user_config.threads >= 1, "synfi: threads must be >= 1");
  // SCFI_LANE_WORDS_CAP clamps the *derived* simulator width (CI portable
  // leg); lanes is an execution knob, so the report is unchanged.
  SynfiConfig config = user_config;
  config.lanes = std::min(config.lanes, 64 * sim::lane_words_cap());
  const int lane_words = sim::lane_words_for(config.lanes);
  const CompiledFsm& variant = *impl_->variant;
  const std::vector<SigBit>& sites =
      impl_->region(config.wire_prefix, config.include_inputs);
  require(!sites.empty(), "synfi: no fault sites match prefix '" + config.wire_prefix + "'");
  const EdgeTable& edges = impl_->edges;

  const int workers =
      std::max(1, std::min<int>(config.threads, static_cast<int>(sites.size())));
  if (impl_->sim_pool.size() < static_cast<std::size_t>(workers) &&
      config.backend == Backend::kExhaustiveSim) {
    impl_->sim_pool.resize(static_cast<std::size_t>(workers));
  }

  const auto run_shard = [&](int slot, std::size_t begin, std::size_t end, ShardReport& out) {
    if (config.backend == Backend::kExhaustiveSim) {
      auto& ctx = impl_->sim_pool[static_cast<std::size_t>(slot)];
      // (Re)build when absent or compiled for a different lane-block width —
      // a cached narrow simulator cannot carry a wider run's lanes.
      if (ctx == nullptr || ctx->simulator.lane_words() != lane_words) {
        ctx = std::make_unique<SimContext>(variant, lane_words);
      }
      run_exhaustive_shard(*ctx, variant, sites, edges, config, begin, end, out);
    } else if (config.sat_incremental) {
      SatShard& shard = impl_->sat_shard(sites, config, begin, end);
      run_sat_queries(shard, sites, edges, config, begin, end, out);
    } else {
      run_sat_rebuild_shard(variant, sites, edges, config, begin, end, out);
    }
  };

  std::vector<ShardReport> partial(static_cast<std::size_t>(workers));
  if (workers <= 1) {
    run_shard(0, 0, sites.size(), partial[0]);
  } else {
    // Contiguous site ranges per worker: no shared mutable state, and the
    // in-order merge below reproduces the single-threaded report exactly.
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      const auto begin = sites.size() * static_cast<std::size_t>(w) /
                         static_cast<std::size_t>(workers);
      const auto end = sites.size() * static_cast<std::size_t>(w + 1) /
                       static_cast<std::size_t>(workers);
      pool.emplace_back([&, w, begin, end] {
        try {
          run_shard(w, begin, end, partial[static_cast<std::size_t>(w)]);
        } catch (...) {
          errors[static_cast<std::size_t>(w)] = std::current_exception();
        }
      });
    }
    for (std::thread& th : pool) th.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Refresh the warm-start snapshot from the first shard of this query so
  // the next region/kind starts from trained activities. Done after the
  // join, on the calling thread.
  if (config.backend == Backend::kSat && config.sat_incremental) {
    const SatShardKey key{config.wire_prefix, config.include_inputs, config.kind, 0,
                          sites.size() / static_cast<std::size_t>(workers)};
    const std::lock_guard<std::mutex> lock(impl_->sat_mutex);
    const auto it = impl_->sat_shards.find(key);
    if (it != impl_->sat_shards.end()) impl_->warm = it->second->solver.export_warm_start();
  }

  SynfiReport report;
  report.sites = static_cast<std::int64_t>(sites.size());
  for (ShardReport& p : partial) {
    report.injections += p.injections;
    report.exploitable += p.exploitable;
    report.detected += p.detected;
    report.masked += p.masked;
    report.stalls += p.stalls;
    report.exploitable_sites.insert(report.exploitable_sites.end(),
                                    std::make_move_iterator(p.exploitable_sites.begin()),
                                    std::make_move_iterator(p.exploitable_sites.end()));
  }
  return report;
}

SynfiReport analyze(const Fsm& fsm, const CompiledFsm& variant, const SynfiConfig& config) {
  return Analyzer(fsm, variant).run(config);
}

}  // namespace scfi::synfi
