// Pre-silicon fault analysis in the style of SYNFI (paper §6.4).
//
// For every fault location inside a region of the hardened netlist and every
// valid state transition, the analysis decides whether a single induced
// fault lets the attacker reach a *valid but wrong* next state without
// raising the alert — the exploitability criterion of the paper. Two
// back-ends are provided:
//   * exhaustive simulation (complete here, because all valid stimuli of the
//     one-cycle property are enumerated). (site, edge) injection jobs are
//     packed `lanes` at a time into the bit-parallel simulator (up to
//     64 x lane_words = 512 lanes per pass via multi-word SoA lane blocks) —
//     each lane carries its own state/symbol stimulus and a single-lane
//     fault mask — and outcomes are classified word-parallel against the
//     expected/error/valid codewords and the alert word.
//   * a SAT back-end (CDCL solver) that additionally supports leaving the
//     control symbol unconstrained. By default it builds ONE golden +
//     selector-gated-faulty miter per variant (every fault override
//     conditioned on a fresh selector literal, `exactly_one` over the
//     selectors) and answers each (site, edge) query incrementally via
//     `solve(assumptions)`, sharing the CNF and learned clauses across all
//     queries; `sat_incremental = false` falls back to rebuilding a
//     single-fault miter per query.
//
// The (site, edge) job list is sharded across `threads` workers in
// contiguous site ranges with a deterministic merge, so every report —
// all counters and the `exploitable_sites` order — is bit-identical for
// every lanes/threads combination.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fsm/compile.h"
#include "sim/fault.h"
#include "sim/netlist_sim.h"

namespace scfi {
class CancelToken;
}

namespace scfi::synfi {

enum class Backend { kExhaustiveSim, kSat };

struct SynfiConfig {
  /// Only fault bits of wires whose name starts with this prefix
  /// ("" = every combinational net). "mds_" selects the diffusion layer,
  /// matching the paper's experiment.
  std::string wire_prefix = "mds_";
  Backend backend = Backend::kExhaustiveSim;
  sim::FaultKind kind = sim::FaultKind::kTransientFlip;
  /// Concurrent faults per injection: 1 reproduces the classic single-fault
  /// sweep; k > 1 switches the exhaustive back-end to lazily streamed site
  /// *combinations* (C(sites, k) x edges injections) and the SAT back-end to
  /// per-site participation queries ("does some exactly-k fault set
  /// including this site break this edge?") over one cardinality-constrained
  /// miter. This is how the paper's distance claim is measured directly: an
  /// encoding with minimum distance d must show no exploitable outcome for
  /// any k < d.
  int faults_k = 1;
  /// Restrict the fault region to one target class of the paper (§3.1):
  /// kStateRegister faults the state register Q bits themselves (the class
  /// the encoding distance argument protects), kControlInputs the module
  /// inputs, kLogic the combinational prefix region. kAny keeps the classic
  /// prefix region (plus inputs when include_inputs is set).
  sim::FaultTarget target = sim::FaultTarget::kAny;
  /// SAT back-end only: leave the encoded control symbol unconstrained
  /// (any bus value, not just valid codewords).
  bool free_symbol = false;
  /// Also inject into module input bits (FT2 / common-mode faults). Only
  /// meaningful with an empty or matching wire_prefix.
  bool include_inputs = false;
  /// Exhaustive back-end: (site, edge) injection jobs per simulator pass
  /// (1..sim::kMaxLanes = 64*lane_words). 1 reproduces the scalar
  /// one-job-per-pass path; widths past 64 select a multi-word lane block,
  /// subject to the SCFI_LANE_WORDS_CAP runtime clamp.
  int lanes = sim::kNumLanes;
  /// Worker threads sharding the site list (both back-ends); <= 1 = inline.
  /// The report is bit-identical for every lanes/threads combination.
  int threads = 1;
  /// SAT back-end: answer queries on one reusable selector-gated solver via
  /// assumptions (default) instead of rebuilding the miter per query.
  bool sat_incremental = true;
  /// Optional cooperative stop signal, polled once per simulator batch /
  /// SAT query: when it fires, workers throw CancelledError at the next
  /// check point instead of being killed. Execution knob like
  /// lanes/threads — never part of a job identity — and must outlive the
  /// run() call. nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
};

struct SynfiReport {
  int faults_k = 1;              ///< concurrent faults per injection
  std::int64_t sites = 0;        ///< fault locations analyzed
  std::int64_t injections = 0;   ///< sites x transitions (paper: 7644)
  std::int64_t exploitable = 0;  ///< undetected control-flow hijacks (paper: 32)
  std::int64_t detected = 0;     ///< alert raised or ERROR state entered
  std::int64_t masked = 0;       ///< no architectural effect
  /// Exploitable injections that merely kept the old state. The SAT
  /// back-end counts a query as a stall when *some* undetected model keeps
  /// the old state (a second `solve(assumptions)` pass), which is
  /// deterministic regardless of solver state or query order.
  std::int64_t stalls = 0;
  std::vector<std::string> exploitable_sites;

  double exploitable_pct() const {
    return injections > 0 ? 100.0 * static_cast<double>(exploitable) /
                                static_cast<double>(injections)
                          : 0.0;
  }

  bool operator==(const SynfiReport& other) const = default;
};

/// Stateful analysis engine bound to ONE compiled variant. Construction and
/// the first `run()` pay the fixed costs — edge table, per-worker simulators,
/// per-region site enumeration, and (for the incremental SAT back-end) the
/// per-shard selector-gated solvers — and every further `run()` re-queries
/// the cached state, so a many-region / many-fault-kind sweep over one
/// variant no longer rebuilds the Simulator or CNF per call. New incremental
/// SAT shards are additionally warm-started from the variable activities and
/// phases a previous shard of the same variant learned.
///
/// Every `run()` report is bit-identical to a fresh `analyze()` call with
/// the same config (cached simulators/solvers can only change speed, never a
/// verdict). `fsm` and `variant` must outlive the Analyzer. The object is
/// not thread-safe — use one Analyzer per calling thread; `run()` itself
/// fans out across `config.threads` workers internally.
class Analyzer {
 public:
  Analyzer(const fsm::Fsm& fsm, const fsm::CompiledFsm& variant);
  ~Analyzer();
  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  SynfiReport run(const SynfiConfig& config = {});

  const fsm::CompiledFsm& variant() const;
  /// Cache diagnostics (tests/benches): live simulator contexts and
  /// incremental SAT shard solvers.
  std::size_t cached_simulators() const;
  std::size_t cached_sat_shards() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Analyzes `variant` (a symbol-encoded compiled FSM) against `fsm`'s CFG.
/// One-shot convenience wrapper over `Analyzer` — construction cost is paid
/// per call; sweeps touching one variant more than once should hold an
/// Analyzer instead.
SynfiReport analyze(const fsm::Fsm& fsm, const fsm::CompiledFsm& variant,
                    const SynfiConfig& config = {});

/// Measured protection degree of a variant: the smallest k in [1, max_k]
/// whose k-fault sweep (config with faults_k = k) finds an exploitable
/// outcome, or 0 when no k up to max_k does. The paper's claim for an
/// encoding with minimum distance d is degree == d (and 0 when max_k < d);
/// an unprotected variant measures 1. `config.faults_k` is ignored.
int measured_protection_degree(Analyzer& analyzer, const SynfiConfig& config, int max_k);

/// Lane-count heuristic for a module (ROADMAP item 3): the widest supported
/// lane block whose faulty-eval working set (~7 streamed words per net) still
/// fits a 128 KiB L2 budget, capped at 256 lanes — BENCH_sim.json records
/// that small modules peak at 128–256 lanes and regress at 512
/// (`synfi_best_lanes`). Callers that accept lanes = 0 as "auto" resolve it
/// through this before handing the count to an engine; explicit lane counts
/// are never second-guessed.
int auto_lanes(const rtlil::Module& module);

}  // namespace scfi::synfi
