// Pre-silicon fault analysis in the style of SYNFI (paper §6.4).
//
// For every fault location inside a region of the hardened netlist and every
// valid state transition, the analysis decides whether a single induced
// fault lets the attacker reach a *valid but wrong* next state without
// raising the alert — the exploitability criterion of the paper. Two
// back-ends are provided:
//   * exhaustive simulation (complete here, because all valid stimuli of the
//     one-cycle property are enumerated), and
//   * a SAT back-end building a golden/faulty miter per query (CDCL solver),
//     which additionally supports leaving the control symbol unconstrained.
#pragma once

#include <string>
#include <vector>

#include "fsm/compile.h"
#include "sim/netlist_sim.h"

namespace scfi::synfi {

enum class Backend { kExhaustiveSim, kSat };

struct SynfiConfig {
  /// Only fault bits of wires whose name starts with this prefix
  /// ("" = every combinational net). "mds_" selects the diffusion layer,
  /// matching the paper's experiment.
  std::string wire_prefix = "mds_";
  Backend backend = Backend::kExhaustiveSim;
  sim::FaultKind kind = sim::FaultKind::kTransientFlip;
  /// SAT back-end only: leave the encoded control symbol unconstrained
  /// (any bus value, not just valid codewords).
  bool free_symbol = false;
  /// Also inject into module input bits (FT2 / common-mode faults). Only
  /// meaningful with an empty or matching wire_prefix.
  bool include_inputs = false;
};

struct SynfiReport {
  int sites = 0;        ///< fault locations analyzed
  int injections = 0;   ///< sites x transitions (paper: 7644)
  int exploitable = 0;  ///< undetected control-flow hijacks (paper: 32)
  int detected = 0;     ///< alert raised or ERROR state entered
  int masked = 0;       ///< no architectural effect
  int stalls = 0;       ///< exploitable injections that merely kept the old state
  std::vector<std::string> exploitable_sites;

  double exploitable_pct() const {
    return injections > 0 ? 100.0 * exploitable / injections : 0.0;
  }
};

/// Analyzes `variant` (a symbol-encoded compiled FSM) against `fsm`'s CFG.
SynfiReport analyze(const fsm::Fsm& fsm, const fsm::CompiledFsm& variant,
                    const SynfiConfig& config = {});

}  // namespace scfi::synfi
