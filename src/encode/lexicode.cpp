#include "encode/lexicode.h"

#include <bit>

#include "base/error.h"

namespace scfi::encode {
namespace {

constexpr int kMaxWidth = 28;

bool try_greedy(const CodeSpec& spec, int width, std::vector<std::uint64_t>& out) {
  out.clear();
  const std::uint64_t space = 1ULL << width;
  const std::uint64_t all_ones = space - 1;
  for (std::uint64_t cand = 0; cand < space; ++cand) {
    if (std::popcount(cand) < spec.min_weight) continue;
    if (spec.forbid_all_ones && cand == all_ones) continue;
    bool ok = true;
    for (std::uint64_t w : out) {
      if (std::popcount(cand ^ w) < spec.min_distance) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    out.push_back(cand);
    if (static_cast<int>(out.size()) == spec.count) return true;
  }
  return false;
}

}  // namespace

int singleton_floor(int count, int min_distance) {
  check(count > 0 && min_distance > 0, "singleton_floor: invalid arguments");
  int log2_count = 0;
  while ((1LL << log2_count) < count) ++log2_count;
  // Singleton bound: |C| <= 2^(n - d + 1)  =>  n >= log2|C| + d - 1.
  return count == 1 ? min_distance : log2_count + min_distance - 1;
}

Code generate_code(const CodeSpec& spec) {
  require(spec.count > 0, "generate_code: need at least one codeword");
  require(spec.min_distance >= 1, "generate_code: distance must be >= 1");
  int start = singleton_floor(spec.count, spec.min_distance);
  if (start < spec.min_weight) start = spec.min_weight;
  if (spec.width > 0) {
    require(spec.width <= kMaxWidth, "generate_code: width too large");
    start = spec.width;
  }
  for (int width = start; width <= kMaxWidth; ++width) {
    std::vector<std::uint64_t> words;
    if (try_greedy(spec, width, words)) {
      return Code{width, spec.min_distance, std::move(words)};
    }
    if (spec.width > 0) break;  // fixed width requested: no widening
  }
  throw ScfiError("generate_code: no feasible code within supported widths");
}

int min_pairwise_distance(const std::vector<std::uint64_t>& words, int width) {
  require(!words.empty(), "min_pairwise_distance: empty code");
  if (words.size() == 1) return width;
  int best = width;
  for (std::size_t i = 0; i < words.size(); ++i) {
    for (std::size_t j = i + 1; j < words.size(); ++j) {
      best = std::min(best, std::popcount(words[i] ^ words[j]));
    }
  }
  return best;
}

}  // namespace scfi::encode
