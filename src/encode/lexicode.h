// Generation of binary codes with guaranteed minimum Hamming distance.
//
// SCFI requirements R1/R2: state symbols and control-signal symbols must be
// encoded so that any two valid codewords differ in at least N bits. We use
// the classic greedy lexicode construction, optionally excluding low-weight
// words so that the all-zero ERROR state keeps distance >= N from every valid
// codeword.
#pragma once

#include <cstdint>
#include <vector>

namespace scfi::encode {

struct CodeSpec {
  int count = 0;         ///< number of codewords required
  int min_distance = 1;  ///< pairwise Hamming distance lower bound (N)
  int width = 0;         ///< 0 = choose the smallest feasible width
  int min_weight = 0;    ///< minimum popcount of every codeword (distance to the
                         ///< all-zero ERROR word); 0 = no constraint
  bool forbid_all_ones = false;  ///< exclude the all-ones word
};

struct Code {
  int width = 0;
  int min_distance = 0;
  std::vector<std::uint64_t> words;
};

/// Builds a code satisfying `spec`; throws ScfiError when infeasible within
/// the supported width range (<= 28 bits, far beyond any FSM in this repo).
Code generate_code(const CodeSpec& spec);

/// Exact minimum pairwise Hamming distance (>= 1 codeword required; returns
/// width for a single codeword by convention of "unconstrained").
int min_pairwise_distance(const std::vector<std::uint64_t>& words, int width);

/// Smallest width that could possibly satisfy (count, distance) by the
/// Singleton bound; used as the search floor.
int singleton_floor(int count, int min_distance);

}  // namespace scfi::encode
