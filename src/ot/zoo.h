// The OpenTitan-inspired evaluation module zoo (paper Table 1).
//
// Each entry provides the control FSM and a datapath builder that adds the
// surrounding module logic (timers, accumulators, shifters) sized so that
// the unprotected module area is in the ballpark of the paper's GE numbers.
// The FSMs re-create the state/transition structure of their OpenTitan
// namesakes; see DESIGN.md for the substitution rationale.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fsm/compile.h"
#include "rtlil/design.h"
#include "synth/stat.h"

namespace scfi::ot {

struct OtEntry {
  std::string name;
  fsm::Fsm fsm;
  /// Adds the module's datapath; may read the FSM's output port wires.
  std::function<void(rtlil::Module&)> datapath;
};

// One factory per module (each in its own translation unit).
OtEntry adc_ctrl_entry();
OtEntry aes_control_entry();
OtEntry i2c_entry();
OtEntry ibex_controller_entry();
OtEntry ibex_lsu_entry();
OtEntry otbn_controller_entry();
OtEntry pwrmgr_entry();

/// All seven modules in Table 1 order.
std::vector<OtEntry> ot_zoo();

/// Lookup by name; throws ScfiError when unknown.
OtEntry ot_entry(const std::string& name);

/// Every zoo module whose name matches one of the comma-separated glob
/// patterns (`*`/`?`), in Table 1 order. "pwrmgr_fsm,i2c*" selects two
/// modules; "*" selects the whole zoo. Empty result is allowed.
std::vector<OtEntry> ot_entries(const std::string& globs);

enum class Variant { kUnprotected, kRedundancy, kScfi };

/// Compiles the FSM in the requested variant, attaches the datapath, and
/// validates. `module_name` must be unique within the design.
fsm::CompiledFsm build_ot_variant(const OtEntry& entry, rtlil::Design& design, Variant variant,
                                  int protection_level, const std::string& module_name);

/// Lowers to gates, optimizes, and returns the area report.
synth::AreaReport synthesize_area(rtlil::Module& module);

}  // namespace scfi::ot
