// Datapath component library for the OpenTitan-inspired evaluation modules.
//
// Table 1 of the paper reports areas of entire modules (FSM + surrounding
// datapath); the FSM share of the module determines the relative overhead of
// protection. These builders create the representative datapath structures
// (timers, accumulators, shift registers, LFSRs) that the seven evaluation
// modules wire around their control FSMs.
#pragma once

#include <string>

#include "rtlil/module.h"

namespace scfi::ot {

/// Ripple-carry increment-by-one of `a`; returns the sum (same width).
rtlil::SigSpec dp_increment(rtlil::Module& m, const rtlil::SigSpec& a, const std::string& name);

/// Ripple-carry adder a + b (widths equal; carry out dropped).
rtlil::SigSpec dp_adder(rtlil::Module& m, const rtlil::SigSpec& a, const rtlil::SigSpec& b,
                        const std::string& name);

/// Synchronous up-counter with enable and clear; returns the count register.
rtlil::SigSpec dp_counter(rtlil::Module& m, int width, const rtlil::SigSpec& enable,
                          const rtlil::SigSpec& clear, const std::string& name);

/// Accumulator register: q <= clear ? 0 : (enable ? q + in : q).
rtlil::SigSpec dp_accumulator(rtlil::Module& m, const rtlil::SigSpec& in,
                              const rtlil::SigSpec& enable, const rtlil::SigSpec& clear,
                              const std::string& name);

/// Serial-in shift register with enable; returns the parallel register.
rtlil::SigSpec dp_shift_reg(rtlil::Module& m, int width, const rtlil::SigSpec& serial_in,
                            const rtlil::SigSpec& enable, const std::string& name);

/// Fibonacci LFSR with the given tap mask (bit i set = tap at stage i).
rtlil::SigSpec dp_lfsr(rtlil::Module& m, int width, std::uint64_t taps,
                       const rtlil::SigSpec& enable, const std::string& name);

/// Equality flag against a constant threshold.
rtlil::SigSpec dp_matches(rtlil::Module& m, const rtlil::SigSpec& value, std::uint64_t threshold,
                          const std::string& name);

}  // namespace scfi::ot
