// I2C host state machine (modeled after OpenTitan's i2c_fsm): start/stop
// conditioning, address and data phases with per-bit timing, ACK handling
// and clock stretching.
#include "ot/datapath.h"
#include "ot/zoo.h"

namespace scfi::ot {
namespace {

// Inputs: [host_en, sda_i, scl_i, bit_done, byte_done, ack, rw, stretch]
fsm::Fsm build_fsm() {
  fsm::Fsm f;
  f.name = "i2c_fsm";
  f.inputs = {"host_en", "sda_i", "scl_i", "bit_done", "byte_done", "ack", "rw", "stretch"};
  f.outputs = {"sda_o", "scl_o", "shift_en", "byte_clr", "rx_we", "fmt_rd", "irq"};
  //                     e s c b B a r t
  f.add_transition("IDLE",        "1-------", "START_SU",    "1100000");
  f.add_transition("START_SU",    "---1----", "START_H",     "0100000");
  f.add_transition("START_H",     "---1----", "ADDR_TX",     "0110100");
  f.add_transition("ADDR_TX",     "---1----", "ADDR_TX_2",   "1110000");
  f.add_transition("ADDR_TX_2",   "----1---", "ADDR_ACK",    "1100000");
  f.add_transition("ADDR_ACK",    "---1-1-0", "PHASE_SEL",   "1100000");
  f.add_transition("ADDR_ACK",    "---1-0--", "STOP_SU",     "1000001");
  f.add_transition("ADDR_ACK",    "---1-1-1", "STRETCH_A",   "1000000");
  f.add_transition("STRETCH_A",   "-------0", "PHASE_SEL",   "1100000");
  f.add_transition("PHASE_SEL",   "------10", "READ_BIT",    "1110000");
  f.add_transition("PHASE_SEL",   "------11", "T_SU_DATA",   "1100000");
  f.add_transition("PHASE_SEL",   "------0-", "WRITE_BIT",   "1110100");
  f.add_transition("T_SU_DATA",   "---1----", "READ_BIT",    "1110000");
  f.add_transition("READ_BIT",    "---1----", "READ_BIT_2",  "1110000");
  f.add_transition("READ_BIT_2",  "----1---", "HOST_ACK",    "1101100");
  f.add_transition("READ_BIT_2",  "---1-0--", "READ_BIT",    "1110000");
  f.add_transition("HOST_ACK",    "---1--1-", "READ_BIT",    "1110000");
  f.add_transition("HOST_ACK",    "---1--0-", "NACK_WAIT",   "1000000");
  f.add_transition("NACK_WAIT",   "---1----", "STOP_SU",     "1000001");
  f.add_transition("WRITE_BIT",   "---1----", "WRITE_BIT_2", "1110000");
  f.add_transition("WRITE_BIT_2", "----1---", "DEV_ACK",     "1100000");
  f.add_transition("WRITE_BIT_2", "---1-0--", "WRITE_BIT",   "1110100");
  f.add_transition("DEV_ACK",     "---1-1--", "PHASE_SEL",   "1100000");
  f.add_transition("DEV_ACK",     "---1-0-0", "STOP_SU",     "1000001");
  f.add_transition("DEV_ACK",     "---1-0-1", "ERR_RECOVER", "1000000");
  f.add_transition("ERR_RECOVER", "---1----", "STOP_SU",     "1000001");
  f.add_transition("STOP_SU",     "---1----", "STOP_H",      "0000000");
  f.add_transition("STOP_H",      "1--1---0", "REP_START",   "1100000");
  f.add_transition("STOP_H",      "0--1---0", "IDLE",        "0000001");
  f.add_transition("REP_START",   "---1----", "START_H",     "0100000");
  f.reset_state = f.state_index("IDLE");
  return f;
}

void build_datapath(rtlil::Module& m) {
  using rtlil::SigSpec;
  const SigSpec shift_en(m.wire("shift_en"));
  const SigSpec byte_clr(m.wire("byte_clr"));
  const SigSpec rx_we(m.wire("rx_we"));
  // The datapath samples SDA through its own synchronizer input (the raw
  // control bit "sda_i" only exists on the unprotected variant's port list).
  const SigSpec sda_i(m.add_input("sda_sync", 1));

  // Bit timing: SCL high/low period counters against programmed durations.
  rtlil::Wire* thigh = m.add_input("t_high", 16);
  rtlil::Wire* tlow = m.add_input("t_low", 16);
  const SigSpec tcnt = dp_counter(m, 16, shift_en, byte_clr, "tcnt");
  const SigSpec expired = m.make_eq(tcnt, SigSpec(thigh), "texp");
  const SigSpec low_done = m.make_eq(tcnt, SigSpec(tlow), "tlexp");

  // Bit index within a byte plus the RX/TX shift registers.
  const SigSpec bitcnt = dp_counter(m, 4, shift_en, byte_clr, "bitcnt");
  const SigSpec rx = dp_shift_reg(m, 8, sda_i, rx_we, "rx_sr");
  const SigSpec tx = dp_shift_reg(m, 8, expired, shift_en, "tx_sr");

  // Byte counter for multi-byte transfers.
  const SigSpec bytecnt = dp_counter(m, 8, rx_we, byte_clr, "bytecnt");

  // Small format/RX FIFOs (4 stages x 8 bit each way) with depth counters —
  // the i2c block is FIFO-heavy in its OpenTitan namesake.
  SigSpec fifo_taps;
  for (int stage = 0; stage < 4; ++stage) {
    const SigSpec fmt = dp_shift_reg(m, 8, rx.extract(stage, 1), shift_en,
                                     "fmt_fifo" + std::to_string(stage));
    const SigSpec rxf = dp_shift_reg(m, 8, tx.extract(stage, 1), rx_we,
                                     "rx_fifo" + std::to_string(stage));
    fifo_taps.append(m.make_xor(fmt.extract(7, 1), rxf.extract(7, 1), "ftap"));
  }
  const SigSpec fmt_depth = dp_counter(m, 4, shift_en, byte_clr, "fmt_depth");
  const SigSpec rx_depth = dp_counter(m, 4, rx_we, byte_clr, "rx_depth");

  rtlil::Wire* rdata = m.add_output("rx_data", 8);
  m.drive(SigSpec(rdata), rx);
  rtlil::Wire* status = m.add_output("status", 15);
  SigSpec st = bitcnt;
  st.append(dp_matches(m, bytecnt, 0x40, "blast"));
  st.append(expired);
  st.append(low_done);
  st.append(tx.extract(7, 1));
  st.append(dp_matches(m, bitcnt, 8, "bit8"));
  st.append(fifo_taps);
  st.append(dp_matches(m, fmt_depth, 4, "fmt_full"));
  st.append(dp_matches(m, rx_depth, 4, "rx_full"));
  m.drive(SigSpec(status), st);
}

}  // namespace

OtEntry i2c_entry() {
  return OtEntry{"i2c_fsm", build_fsm(), build_datapath};
}

}  // namespace scfi::ot
