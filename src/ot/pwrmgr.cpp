// Power manager slow FSM (modeled after OpenTitan's pwrmgr): the module is
// almost pure FSM, which maximizes the relative cost of protection — the
// paper's worst-case row in Table 1.
#include "ot/datapath.h"
#include "ot/zoo.h"

namespace scfi::ot {
namespace {

// Inputs: [pwr_req, clk_ok, rst_done, otp_done, lc_done]
fsm::Fsm build_fsm() {
  fsm::Fsm f;
  f.name = "pwrmgr_fsm";
  f.inputs = {"pwr_req", "clk_ok", "rst_done", "otp_done", "lc_done"};
  f.outputs = {"clk_en", "rst_n", "otp_go", "lc_go", "active"};
  //                    p c r o l
  f.add_transition("LOW_POWER",    "1----", "ENABLE_CLKS",  "10000");
  f.add_transition("ENABLE_CLKS",  "-1---", "RELEASE_RST",  "11000");
  f.add_transition("RELEASE_RST",  "--1--", "OTP_INIT",     "11100");
  f.add_transition("OTP_INIT",     "---1-", "LC_INIT",      "11010");
  f.add_transition("LC_INIT",      "----1", "ACK_PWRUP",    "11000");
  f.add_transition("ACK_PWRUP",    "-----", "ACTIVE",       "11001");
  f.add_transition("ACTIVE",       "0----", "DISABLE_CLKS", "01000");
  f.add_transition("DISABLE_CLKS", "-0---", "ASSERT_RST",   "00000");
  f.add_transition("ASSERT_RST",   "--0--", "LOW_POWER",    "00000");
  f.reset_state = f.state_index("LOW_POWER");
  return f;
}

void build_datapath(rtlil::Module& m) {
  using rtlil::SigSpec;
  const SigSpec clk_en(m.wire("clk_en"));
  const SigSpec active(m.wire("active"));

  // Tiny stabilization and wakeup timers — the module stays FSM-dominated.
  const SigSpec not_clk = m.make_not(clk_en, "nclk");
  const SigSpec timer = dp_counter(m, 4, clk_en, not_clk, "stab_timer");
  const SigSpec wake_cnt = dp_counter(m, 6, active, not_clk, "wake_timer");
  rtlil::Wire* stable = m.add_output("clk_stable", 1);
  m.drive(SigSpec(stable), dp_matches(m, timer, 12, "stab"));
  rtlil::Wire* wake = m.add_output("wake_elapsed", 1);
  m.drive(SigSpec(wake), dp_matches(m, wake_cnt, 48, "wk"));
  rtlil::Wire* led = m.add_output("active_o", 1);
  m.drive(SigSpec(led), active);
}

}  // namespace

OtEntry pwrmgr_entry() {
  return OtEntry{"pwrmgr_fsm", build_fsm(), build_datapath};
}

}  // namespace scfi::ot
