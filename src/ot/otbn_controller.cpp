// OTBN big-number accelerator controller (modeled after otbn_controller):
// the FSM is small but the surrounding datapath is wide, so the relative
// cost of FSM protection is tiny — the paper's outlier row in Table 1.
#include "ot/datapath.h"
#include "ot/zoo.h"

namespace scfi::ot {
namespace {

// Inputs: [start, insn_valid, stall, done, err, wipe_done]
fsm::Fsm build_fsm() {
  fsm::Fsm f;
  f.name = "otbn_controller";
  f.inputs = {"start", "insn_valid", "stall", "done", "err", "wipe_done"};
  f.outputs = {"fetch_en", "exec_en", "wipe_en", "busy", "lock"};
  //                    s v S d e w
  f.add_transition("HALT",       "1---0-", "FETCH_WAIT", "10010");
  f.add_transition("FETCH_WAIT", "-1--0-", "RUN",        "11010");
  f.add_transition("RUN",        "--1-0-", "STALL",      "01010");
  f.add_transition("RUN",        "--010-", "WIPE",       "00110");
  f.add_transition("RUN",        "----1-", "LOCKED",     "00101");
  f.add_transition("STALL",      "--0-0-", "RUN",        "11010");
  f.add_transition("STALL",      "----1-", "LOCKED",     "00101");
  f.add_transition("WIPE",       "-----1", "HALT",       "00000");
  f.add_transition("WIPE",       "----1-", "LOCKED",     "00101");
  f.reset_state = f.state_index("HALT");
  return f;
}

void build_datapath(rtlil::Module& m) {
  using rtlil::SigSpec;
  const SigSpec exec_en(m.wire("exec_en"));
  const SigSpec wipe_en(m.wire("wipe_en"));
  const SigSpec fetch_en(m.wire("fetch_en"));

  // Wide bignum ALU slice: two 56-bit accumulators, a 56-bit operand XOR
  // stage, and a wipe LFSR providing pseudo-random clearing data.
  rtlil::Wire* op_w = m.add_input("operand", 56);
  const SigSpec op(op_w);
  const SigSpec acc0 = dp_accumulator(m, op, exec_en, wipe_en, "acc0");
  const SigSpec mixed = m.make_xor(acc0, op, "opmix");
  const SigSpec acc1 = dp_accumulator(m, mixed, exec_en, wipe_en, "acc1");
  const SigSpec prng = dp_lfsr(m, 48, 0x800000000057ULL, wipe_en, "wipe_prng");

  // Instruction counter and loop stack depth slice.
  const SigSpec icount = dp_counter(m, 16, exec_en, fetch_en, "icount");
  const SigSpec loop_depth = dp_counter(m, 4, exec_en, wipe_en, "loop_depth");

  rtlil::Wire* res = m.add_output("result", 56);
  m.drive(SigSpec(res), acc1);
  rtlil::Wire* dbg = m.add_output("dbg", 8);
  SigSpec status = loop_depth;
  status.append(dp_matches(m, icount, 0xfff, "imax"));
  status.append(prng.extract(0, 1));
  status.append(acc0.extract(55, 1));
  status.append(dp_matches(m, loop_depth, 8, "lmax"));
  m.drive(SigSpec(dbg), status);
}

}  // namespace

OtEntry otbn_controller_entry() {
  return OtEntry{"otbn_controller", build_fsm(), build_datapath};
}

}  // namespace scfi::ot
