#include "ot/zoo.h"

#include "base/error.h"
#include "base/strutil.h"
#include "core/harden.h"
#include "redundancy/redundancy.h"
#include "rtlil/validate.h"
#include "synth/lower.h"
#include "synth/opt.h"

namespace scfi::ot {

std::vector<OtEntry> ot_zoo() {
  std::vector<OtEntry> zoo;
  zoo.push_back(adc_ctrl_entry());
  zoo.push_back(aes_control_entry());
  zoo.push_back(i2c_entry());
  zoo.push_back(ibex_controller_entry());
  zoo.push_back(ibex_lsu_entry());
  zoo.push_back(otbn_controller_entry());
  zoo.push_back(pwrmgr_entry());
  return zoo;
}

OtEntry ot_entry(const std::string& name) {
  for (OtEntry& entry : ot_zoo()) {
    if (entry.name == name) return entry;
  }
  throw ScfiError("ot_entry: unknown module " + name);
}

std::vector<OtEntry> ot_entries(const std::string& globs) {
  const std::vector<std::string> patterns = split(globs, ",");
  std::vector<OtEntry> matched;
  for (OtEntry& entry : ot_zoo()) {
    for (const std::string& pattern : patterns) {
      if (glob_match(entry.name, pattern)) {
        matched.push_back(std::move(entry));
        break;
      }
    }
  }
  return matched;
}

fsm::CompiledFsm build_ot_variant(const OtEntry& entry, rtlil::Design& design, Variant variant,
                                  int protection_level, const std::string& module_name) {
  fsm::Fsm fsm = entry.fsm;
  fsm.name = module_name;
  fsm::CompiledFsm compiled;
  switch (variant) {
    case Variant::kUnprotected:
      compiled = fsm::compile_unprotected(fsm, design);
      break;
    case Variant::kRedundancy: {
      redundancy::RedundancyConfig config;
      config.protection_level = protection_level;
      config.module_suffix = "";
      compiled = redundancy::build_redundant(fsm, design, config);
      break;
    }
    case Variant::kScfi: {
      core::ScfiConfig config;
      config.protection_level = protection_level;
      config.module_suffix = "";
      compiled = core::scfi_harden(fsm, design, config);
      break;
    }
  }
  // Corpus-sourced entries (bare KISS2 machines) carry no datapath builder.
  if (entry.datapath) entry.datapath(*compiled.module);
  rtlil::validate_module(*compiled.module);
  return compiled;
}

synth::AreaReport synthesize_area(rtlil::Module& module) {
  synth::lower_to_gates(module);
  synth::optimize(module);
  return synth::area_report(module);
}

}  // namespace scfi::ot
