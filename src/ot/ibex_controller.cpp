// Ibex core controller (modeled after ibex_controller): boot, sleep/wake,
// normal issue, exception/IRQ/debug entry and pipeline flush.
#include "ot/datapath.h"
#include "ot/zoo.h"

namespace scfi::ot {
namespace {

// Inputs: [fetch_en, irq, dbg_req, exc, wfi, done]
fsm::Fsm build_fsm() {
  fsm::Fsm f;
  f.name = "ibex_controller";
  f.inputs = {"fetch_en", "irq", "dbg_req", "exc", "wfi", "done"};
  f.outputs = {"if_en", "pc_set", "halt", "flush", "save_csr"};
  //                    f i d e w D
  f.add_transition("RESET",       "1-----", "BOOT_SET",    "01000");
  f.add_transition("BOOT_SET",    "------", "FIRST_FETCH", "11000");
  f.add_transition("FIRST_FETCH", "--1---", "DBG_TAKEN",   "01101");
  f.add_transition("FIRST_FETCH", "--0---", "NORMAL",      "10000");
  f.add_transition("NORMAL",      "--1---", "DBG_TAKEN",   "01101");
  f.add_transition("NORMAL",      "--01--", "FLUSH",       "00110");
  f.add_transition("NORMAL",      "-10---", "IRQ_TAKEN",   "01001");
  f.add_transition("NORMAL",      "-0-0-1", "WAIT_SLEEP",  "00100");
  f.add_transition("IRQ_TAKEN",   "------", "NORMAL",      "11000");
  f.add_transition("DBG_TAKEN",   "-----1", "NORMAL",      "11000");
  f.add_transition("FLUSH",       "-----1", "NORMAL",      "10000");
  f.add_transition("FLUSH",       "--1--0", "DBG_TAKEN",   "01101");
  f.add_transition("WAIT_SLEEP",  "------", "SLEEP",       "00100");
  f.add_transition("SLEEP",       "-1----", "FIRST_FETCH", "01000");
  f.add_transition("SLEEP",       "--1---", "DBG_TAKEN",   "01101");
  f.reset_state = f.state_index("RESET");
  return f;
}

void build_datapath(rtlil::Module& m) {
  using rtlil::SigSpec;
  const SigSpec pc_set(m.wire("pc_set"));
  const SigSpec if_en(m.wire("if_en"));
  const SigSpec save_csr(m.wire("save_csr"));

  // Program counter slice plus saved-PC and trap-value CSRs.
  const SigSpec pc = dp_counter(m, 16, if_en, pc_set, "pc");
  rtlil::Wire* epc_w = m.add_wire("mepc_q", 16);
  const SigSpec epc(epc_w);
  const SigSpec epc_next = m.make_mux(save_csr, epc, pc, "epc_mux");
  rtlil::Cell* ff = m.add_cell("mepc_ff", rtlil::CellType::kDff);
  ff->set_port("D", epc_next);
  ff->set_port("Q", epc);
  ff->set_reset_value(rtlil::Const::from_uint(0, 16));
  rtlil::Wire* tval_in = m.add_input("tval_i", 16);
  rtlil::Wire* tval_w = m.add_wire("mtval_q", 16);
  const SigSpec tval(tval_w);
  const SigSpec tval_next = m.make_mux(save_csr, tval, SigSpec(tval_in), "tval_mux");
  rtlil::Cell* tff = m.add_cell("mtval_ff", rtlil::CellType::kDff);
  tff->set_port("D", tval_next);
  tff->set_port("Q", tval);
  tff->set_reset_value(rtlil::Const::from_uint(0, 16));

  rtlil::Wire* pc_o = m.add_output("pc_o", 16);
  m.drive(SigSpec(pc_o), pc);
  rtlil::Wire* epc_o = m.add_output("mepc_o", 16);
  m.drive(SigSpec(epc_o), epc);
  rtlil::Wire* tval_o = m.add_output("mtval_o", 16);
  m.drive(SigSpec(tval_o), tval);
}

}  // namespace

OtEntry ibex_controller_entry() {
  return OtEntry{"ibex_controller", build_fsm(), build_datapath};
}

}  // namespace scfi::ot
