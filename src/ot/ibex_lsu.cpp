// Ibex load-store unit controller (modeled after ibex_load_store_unit):
// aligned/misaligned request sequencing over a grant/rvalid memory bus.
#include "ot/datapath.h"
#include "ot/zoo.h"

namespace scfi::ot {
namespace {

// Inputs: [req, gnt, rvalid, misaligned, err]
fsm::Fsm build_fsm() {
  fsm::Fsm f;
  f.name = "ibex_lsu";
  f.inputs = {"req", "gnt", "rvalid", "misaligned", "err"};
  f.outputs = {"data_req", "addr_incr", "rdata_we", "done", "err_pulse"};
  //                    r g v m e
  f.add_transition("IDLE",          "11-0-", "WAIT_RVALID",      "10000");
  f.add_transition("IDLE",          "11-1-", "WAIT_RVALID_MIS",  "11000");
  f.add_transition("IDLE",          "10-0-", "WAIT_GNT",         "10000");
  f.add_transition("IDLE",          "10-1-", "WAIT_GNT_MIS",     "10000");
  f.add_transition("WAIT_GNT",      "-1---", "WAIT_RVALID",      "10000");
  f.add_transition("WAIT_GNT_MIS",  "-1---", "WAIT_RVALID_MIS",  "11000");
  f.add_transition("WAIT_RVALID",   "--1-0", "IDLE",             "00110");
  f.add_transition("WAIT_RVALID",   "--1-1", "IDLE",             "00011");
  f.add_transition("WAIT_RVALID_MIS", "-11-0", "WAIT_RVALID",    "10100");
  f.add_transition("WAIT_RVALID_MIS", "-01-0", "WAIT_GNT_SPLIT", "10100");
  f.add_transition("WAIT_RVALID_MIS", "--1-1", "IDLE",           "00011");
  f.add_transition("WAIT_GNT_SPLIT",  "-1---", "WAIT_RVALID",    "10000");
  f.reset_state = f.state_index("IDLE");
  return f;
}

void build_datapath(rtlil::Module& m) {
  using rtlil::SigSpec;
  const SigSpec addr_incr(m.wire("addr_incr"));
  const SigSpec rdata_we(m.wire("rdata_we"));
  const SigSpec err_pulse(m.wire("err_pulse"));

  // Address register with +4-style increment (modeled at reduced width) and
  // the read-data capture register.
  const SigSpec addr = dp_counter(m, 24, addr_incr, err_pulse, "addr");
  rtlil::Wire* rdata_i = m.add_input("rdata_i", 32);
  const SigSpec rdata(rdata_i);
  const SigSpec buf = dp_accumulator(m, rdata, rdata_we, err_pulse, "rdata_buf");
  // Write-data staging register (store path).
  const SigSpec wbuf = dp_shift_reg(m, 16, rdata.extract(0, 1), rdata_we, "wdata_buf");

  rtlil::Wire* addr_o = m.add_output("addr_o", 24);
  m.drive(SigSpec(addr_o), addr);
  rtlil::Wire* rdata_o = m.add_output("rdata_o", 32);
  m.drive(SigSpec(rdata_o), buf);
  rtlil::Wire* wdata_o = m.add_output("wdata_o", 16);
  m.drive(SigSpec(wdata_o), wbuf);
}

}  // namespace

OtEntry ibex_lsu_entry() {
  return OtEntry{"ibex_lsu", build_fsm(), build_datapath};
}

}  // namespace scfi::ot
