// AES unit controller (modeled after OpenTitan's aes_control): block load,
// round iteration, output handshake and secure clearing.
#include "ot/datapath.h"
#include "ot/zoo.h"

namespace scfi::ot {
namespace {

// Inputs: [start, in_valid, rounds_done, out_ack, clear_req, key_ready]
fsm::Fsm build_fsm() {
  fsm::Fsm f;
  f.name = "aes_control";
  f.inputs = {"start", "in_valid", "rounds_done", "out_ack", "clear_req", "key_ready"};
  f.outputs = {"state_we", "key_we", "round_en", "out_valid", "busy", "clear_we"};
  //                 s v r a c k             swe kwe ren ov bsy cwe
  f.add_transition("IDLE",     "1----1", "INIT",     "010010");
  f.add_transition("IDLE",     "----1-", "CLEAR_S",  "000011");
  f.add_transition("INIT",     "-1----", "LOAD",     "110010");
  f.add_transition("LOAD",     "------", "UPDATE",   "101010");
  f.add_transition("UPDATE",   "--1---", "FINISH",   "100110");
  f.add_transition("UPDATE",   "--0---", "UPDATE",   "101010");
  f.add_transition("FINISH",   "---1--", "IDLE",     "000100");
  f.add_transition("CLEAR_S",  "------", "CLEAR_KD", "100011");
  f.add_transition("CLEAR_KD", "------", "IDLE",     "010001");
  f.reset_state = f.state_index("IDLE");
  return f;
}

void build_datapath(rtlil::Module& m) {
  using rtlil::SigSpec;
  const SigSpec round_en(m.wire("round_en"));
  const SigSpec state_we(m.wire("state_we"));
  const SigSpec clear_we(m.wire("clear_we"));

  // Round counter and comparison (up to 14 rounds for AES-256).
  const SigSpec round_cnt = dp_counter(m, 4, round_en, clear_we, "round_cnt");
  const SigSpec last_round = dp_matches(m, round_cnt, 14, "last_round");

  // A slice of the state/key pipeline: shift register banks that stand in
  // for the (much larger) datapath controlled by this FSM.
  rtlil::Wire* din = m.add_input("data_in", 8);
  const SigSpec data(din);
  const SigSpec bank0 = dp_shift_reg(m, 24, data.extract(0, 1), state_we, "bank0");
  const SigSpec bank1 = dp_shift_reg(m, 24, data.extract(1, 1), round_en, "bank1");
  const SigSpec bank2 = dp_shift_reg(m, 24, data.extract(2, 1), clear_we, "bank2");
  const SigSpec iv = dp_accumulator(m, data, round_en, clear_we, "iv_acc");
  const SigSpec mixed = m.make_xor(m.make_xor(bank0, bank1, "mixa"), bank2, "mix");
  const SigSpec folded = m.make_xor(mixed.extract(0, 8), mixed.extract(8, 8), "fold");
  const SigSpec masked = m.make_xor(
      m.make_xor(m.make_xor(folded, mixed.extract(16, 8), "fold2"), iv, "fold3"), data, "mask");

  rtlil::Wire* dout = m.add_output("data_out", 8);
  m.drive(SigSpec(dout), masked);
  rtlil::Wire* last = m.add_output("last_round_o", 1);
  m.drive(SigSpec(last), last_round);
}

}  // namespace

OtEntry aes_control_entry() {
  return OtEntry{"aes_control", build_fsm(), build_datapath};
}

}  // namespace scfi::ot
