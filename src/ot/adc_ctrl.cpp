// ADC controller (modeled after OpenTitan's adc_ctrl_fsm): power sequencing,
// one-shot and low-power sampling modes, dual-channel filter evaluation.
#include "ot/datapath.h"
#include "ot/zoo.h"

namespace scfi::ot {
namespace {

// Inputs: [oneshot, lp_mode, adc_done, match, timer_done, pwr_req]
fsm::Fsm build_fsm() {
  fsm::Fsm f;
  f.name = "adc_ctrl_fsm";
  f.inputs = {"oneshot", "lp_mode", "adc_done", "match", "timer_done", "pwr_req"};
  f.outputs = {"chn_sel", "adc_pd_n", "sample_en", "oneshot_done", "wakeup"};
  //                   o l d m t p            csel pdn smp osd wak
  f.add_transition("PWRDN",      "-----1", "PWRUP",      "01000");
  f.add_transition("PWRUP",      "----1-", "IDLE",       "01000");
  f.add_transition("IDLE",       "1-----", "ONEST_0",    "11100");
  f.add_transition("IDLE",       "01----", "LP_0",       "11100");
  f.add_transition("IDLE",       "00---1", "NP_0",       "11100");
  f.add_transition("IDLE",       "00---0", "PWRDN",      "00000");
  f.add_transition("ONEST_0",    "--1---", "ONEST_1",    "11100");
  f.add_transition("ONEST_1",    "--1---", "ONEST_DONE", "01010");
  f.add_transition("ONEST_DONE", "-----0", "PWRDN",      "00010");
  f.add_transition("ONEST_DONE", "1----1", "ONEST_0",    "11100");
  f.add_transition("LP_0",       "--1---", "LP_EVAL",    "11000");
  f.add_transition("LP_EVAL",    "---1--", "NP_0",       "11101");
  f.add_transition("LP_EVAL",    "---0--", "LP_SLP",     "00000");
  f.add_transition("LP_SLP",     "----1-", "LP_PWRUP",   "01000");
  f.add_transition("LP_PWRUP",   "----1-", "LP_0",       "11100");
  f.add_transition("NP_0",       "--1---", "NP_EVAL",    "11000");
  f.add_transition("NP_EVAL",    "---1--", "NP_DONE",    "01001");
  f.add_transition("NP_EVAL",    "---0-1", "NP_0",       "11100");
  f.add_transition("NP_EVAL",    "---0-0", "PWRDN",      "00000");
  f.add_transition("NP_DONE",    "-----0", "PWRDN",      "00000");
  f.add_transition("NP_DONE",    "-----1", "NP_0",       "11100");
  f.reset_state = f.state_index("PWRDN");
  return f;
}

void build_datapath(rtlil::Module& m) {
  using rtlil::SigSpec;
  const SigSpec sample_en(m.wire("sample_en"));
  const SigSpec wakeup(m.wire("wakeup"));
  const SigSpec pd_n(m.wire("adc_pd_n"));
  const SigSpec chn_sel(m.wire("chn_sel"));

  // ADC sample value input and filter thresholds.
  rtlil::Wire* adc_d = m.add_input("adc_d", 10);
  const SigSpec sample(adc_d);

  // Power-up and wakeup timers.
  const SigSpec not_pd = m.make_not(pd_n, "npd");
  const SigSpec pwrup_cnt = dp_counter(m, 8, pd_n, not_pd, "pwrup_timer");
  const SigSpec wakeup_cnt = dp_counter(m, 16, sample_en, wakeup, "wakeup_timer");

  // Two channel filters: accumulate samples while enabled, compare against
  // thresholds.
  const SigSpec clr = m.make_not(sample_en, "nsmp");
  const SigSpec acc0 = dp_accumulator(m, sample, sample_en, clr, "filter0");
  const SigSpec ch1_en = m.make_and(sample_en, chn_sel, "ch1en");
  const SigSpec acc1 = dp_accumulator(m, sample, ch1_en, clr, "filter1");

  // Match detection history.
  const SigSpec m0 = dp_matches(m, acc0, 0x2a0, "match0");
  const SigSpec m1 = dp_matches(m, acc1, 0x150, "match1");
  const SigSpec any = m.make_or(m0, m1, "anym");
  const SigSpec hist = dp_shift_reg(m, 4, any, sample_en, "match_hist");

  rtlil::Wire* debug = m.add_output("dbg_status", 8);
  SigSpec status = hist;
  status.append(m0);
  status.append(m1);
  status.append(dp_matches(m, pwrup_cnt, 0x30, "pw_done"));
  status.append(dp_matches(m, wakeup_cnt, 0x1000, "wk_done"));
  m.drive(SigSpec(debug), status);
}

}  // namespace

OtEntry adc_ctrl_entry() {
  return OtEntry{"adc_ctrl_fsm", build_fsm(), build_datapath};
}

}  // namespace scfi::ot
