#include "ot/datapath.h"

#include "base/error.h"

namespace scfi::ot {

using rtlil::Const;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;

SigSpec dp_increment(Module& m, const SigSpec& a, const std::string& name) {
  SigSpec sum;
  SigSpec carry(SigBit(true));
  for (int i = 0; i < a.width(); ++i) {
    const SigSpec bit = a.extract(i, 1);
    sum.append(m.make_xor(bit, carry, name + "_s"));
    if (i + 1 < a.width()) carry = m.make_and(bit, carry, name + "_c");
  }
  return sum;
}

SigSpec dp_adder(Module& m, const SigSpec& a, const SigSpec& b, const std::string& name) {
  check(a.width() == b.width(), "dp_adder: width mismatch");
  SigSpec sum;
  SigSpec carry(SigBit(false));
  for (int i = 0; i < a.width(); ++i) {
    const SigSpec ai = a.extract(i, 1);
    const SigSpec bi = b.extract(i, 1);
    const SigSpec axb = m.make_xor(ai, bi, name + "_x");
    sum.append(m.make_xor(axb, carry, name + "_s"));
    if (i + 1 < a.width()) {
      const SigSpec t1 = m.make_and(ai, bi, name + "_c1");
      const SigSpec t2 = m.make_and(axb, carry, name + "_c2");
      carry = m.make_or(t1, t2, name + "_c");
    }
  }
  return sum;
}

SigSpec dp_counter(Module& m, int width, const SigSpec& enable, const SigSpec& clear,
                   const std::string& name) {
  rtlil::Wire* q_wire = m.add_wire(m.uniquify(name + "_q"), width);
  const SigSpec q(q_wire);
  const SigSpec inc = dp_increment(m, q, name);
  const SigSpec kept = m.make_mux(enable, q, inc, name + "_en");
  const SigSpec next = m.make_mux(clear, kept, SigSpec(Const::from_uint(0, width)), name + "_clr");
  rtlil::Cell* ff = m.add_cell(m.uniquify(name + "_ff"), rtlil::CellType::kDff);
  ff->set_port("D", next);
  ff->set_port("Q", q);
  ff->set_reset_value(Const::from_uint(0, width));
  return q;
}

SigSpec dp_accumulator(Module& m, const SigSpec& in, const SigSpec& enable, const SigSpec& clear,
                       const std::string& name) {
  const int width = in.width();
  rtlil::Wire* q_wire = m.add_wire(m.uniquify(name + "_q"), width);
  const SigSpec q(q_wire);
  const SigSpec sum = dp_adder(m, q, in, name);
  const SigSpec kept = m.make_mux(enable, q, sum, name + "_en");
  const SigSpec next = m.make_mux(clear, kept, SigSpec(Const::from_uint(0, width)), name + "_clr");
  rtlil::Cell* ff = m.add_cell(m.uniquify(name + "_ff"), rtlil::CellType::kDff);
  ff->set_port("D", next);
  ff->set_port("Q", q);
  ff->set_reset_value(Const::from_uint(0, width));
  return q;
}

SigSpec dp_shift_reg(Module& m, int width, const SigSpec& serial_in, const SigSpec& enable,
                     const std::string& name) {
  rtlil::Wire* q_wire = m.add_wire(m.uniquify(name + "_q"), width);
  const SigSpec q(q_wire);
  SigSpec shifted = serial_in;
  if (width > 1) {
    SigSpec tail = q.extract(0, width - 1);
    SigSpec combined = serial_in;
    combined.append(tail);
    shifted = combined;
  }
  const SigSpec next = m.make_mux(enable, q, shifted, name + "_en");
  rtlil::Cell* ff = m.add_cell(m.uniquify(name + "_ff"), rtlil::CellType::kDff);
  ff->set_port("D", next);
  ff->set_port("Q", q);
  ff->set_reset_value(Const::from_uint(0, width));
  return q;
}

SigSpec dp_lfsr(Module& m, int width, std::uint64_t taps, const SigSpec& enable,
                const std::string& name) {
  rtlil::Wire* q_wire = m.add_wire(m.uniquify(name + "_q"), width);
  const SigSpec q(q_wire);
  SigSpec feedback;
  for (int i = 0; i < width; ++i) {
    if (!((taps >> i) & 1)) continue;
    const SigSpec bit = q.extract(i, 1);
    feedback = feedback.empty() ? bit : m.make_xor(feedback, bit, name + "_fb");
  }
  check(!feedback.empty(), "dp_lfsr: empty tap mask");
  SigSpec rotated = feedback;
  if (width > 1) rotated.append(q.extract(0, width - 1));
  const SigSpec next = m.make_mux(enable, q, rotated, name + "_en");
  rtlil::Cell* ff = m.add_cell(m.uniquify(name + "_ff"), rtlil::CellType::kDff);
  ff->set_port("D", next);
  ff->set_port("Q", q);
  // Non-zero seed so the LFSR cycles.
  ff->set_reset_value(Const::from_uint(1, width));
  return q;
}

SigSpec dp_matches(Module& m, const SigSpec& value, std::uint64_t threshold,
                   const std::string& name) {
  return m.make_eq(value, SigSpec(Const::from_uint(threshold, value.width())), name);
}

}  // namespace scfi::ot
