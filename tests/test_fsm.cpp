#include <gtest/gtest.h>

#include <algorithm>

#include "base/error.h"
#include "fsm/compile.h"
#include "fsm/dot.h"
#include "fsm/kiss2.h"
#include "rtlil/design.h"
#include "test_helpers.h"

namespace scfi::fsm {
namespace {

TEST(Fsm, PaperFigure2Checks) {
  const Fsm f = test::paper_fsm();
  EXPECT_NO_THROW(f.check());
  EXPECT_EQ(f.num_states(), 4);
  EXPECT_EQ(f.transitions.size(), 5u);
}

TEST(Fsm, SymbolsIncludeIdle) {
  const Fsm f = test::paper_fsm();
  const auto symbols = f.symbols();
  EXPECT_NE(std::find(symbols.begin(), symbols.end(), f.idle_symbol()), symbols.end());
  // 4 distinct guards ("1---" appears twice) + idle.
  EXPECT_EQ(symbols.size(), 5u);
}

TEST(Fsm, CfgEdgesAddImplicitIdles) {
  const Fsm f = test::paper_fsm();
  const auto edges = f.cfg_edges();
  // 5 explicit + 4 implicit idle self-loops.
  EXPECT_EQ(edges.size(), 9u);
  int implicit = 0;
  for (const CfgEdge& e : edges) {
    if (e.transition_index < 0) {
      ++implicit;
      EXPECT_EQ(e.from, e.to);
      EXPECT_EQ(e.symbol, f.idle_symbol());
    }
  }
  EXPECT_EQ(implicit, 4);
}

TEST(Fsm, SynfiFsmHasFourteenEdges) {
  EXPECT_EQ(test::synfi_fsm().cfg_edges().size(), 14u);
}

TEST(Fsm, GuardMatching) {
  EXPECT_TRUE(Fsm::guard_matches("1-0", {true, true, false}));
  EXPECT_FALSE(Fsm::guard_matches("1-0", {false, true, false}));
  EXPECT_TRUE(Fsm::guard_matches("---", {true, false, true}));
}

TEST(Fsm, StepRawPriority) {
  Fsm f;
  f.inputs = {"a", "b"};
  f.add_transition("S", "1-", "T1");
  f.add_transition("S", "-1", "T2");
  const auto [to1, t1] = f.step_raw(0, {true, true});
  EXPECT_EQ(f.states[static_cast<std::size_t>(to1)], "T1");
  EXPECT_EQ(t1, 0);
  const auto [to2, t2] = f.step_raw(0, {false, true});
  EXPECT_EQ(f.states[static_cast<std::size_t>(to2)], "T2");
  EXPECT_EQ(t2, 1);
  const auto [to3, t3] = f.step_raw(0, {false, false});
  EXPECT_EQ(to3, 0);
  EXPECT_EQ(t3, -1);
}

TEST(Fsm, ConcreteInputRespectsPriority) {
  Fsm f;
  f.inputs = {"a", "b"};
  f.add_transition("S", "1-", "T1");
  f.add_transition("S", "-1", "T2");
  const auto bits = f.concrete_input_for(1);
  ASSERT_TRUE(bits.has_value());
  EXPECT_FALSE((*bits)[0]);  // must dodge the higher-priority "1-"
  EXPECT_TRUE((*bits)[1]);
}

TEST(Fsm, ShadowedTransitionRejected) {
  Fsm f;
  f.inputs = {"a"};
  f.add_transition("S", "-", "T");
  f.add_transition("S", "1", "U");  // unreachable: "-" wins always
  EXPECT_THROW(f.check(), ScfiError);
}

TEST(Fsm, DuplicateGuardRejected) {
  Fsm f;
  f.inputs = {"a"};
  f.add_transition("S", "1", "T");
  EXPECT_NO_THROW(f.check());
  f.add_transition("S", "1", "U");
  EXPECT_THROW(f.check(), ScfiError);
}

TEST(Fsm, UnreachableStateRejected) {
  Fsm f;
  f.inputs = {"a"};
  f.add_transition("S", "1", "T");
  f.add_state("ORPHan");
  EXPECT_THROW(f.check(), ScfiError);
}

TEST(Fsm, IdleInputExists) {
  const Fsm f = test::paper_fsm();
  const auto idle = f.concrete_input_for_idle(0);
  ASSERT_TRUE(idle.has_value());
  EXPECT_EQ(f.step_raw(0, *idle).second, -1);
}

TEST(Kiss2, RoundTrip) {
  const Fsm f = test::paper_fsm();
  const std::string text = write_kiss2(f);
  const Fsm g = parse_kiss2(text, f.name);
  EXPECT_EQ(g.num_states(), f.num_states());
  EXPECT_EQ(g.transitions.size(), f.transitions.size());
  EXPECT_EQ(g.states[static_cast<std::size_t>(g.reset_state)],
            f.states[static_cast<std::size_t>(f.reset_state)]);
  for (std::size_t i = 0; i < f.transitions.size(); ++i) {
    EXPECT_EQ(g.transitions[i].guard, f.transitions[i].guard);
  }
}

TEST(Kiss2, ParsesClassicFormat) {
  const std::string text = R"(
.i 2
.o 1
.s 2
.p 3
.r st0
10 st0 st1 1
01 st1 st0 0
11 st1 st1 1
.e
)";
  const Fsm f = parse_kiss2(text);
  EXPECT_EQ(f.num_inputs(), 2);
  EXPECT_EQ(f.num_states(), 2);
  EXPECT_EQ(f.transitions.size(), 3u);
}

TEST(Kiss2, RejectsMalformed) {
  EXPECT_THROW(parse_kiss2(".i 2\n.o 1\n1 st0 st1 1\n"), ScfiError);   // width
  EXPECT_THROW(parse_kiss2("10 st0 st1 1\n"), ScfiError);              // no .i/.o
}

TEST(Dot, ContainsStatesAndEdges) {
  const std::string dot = to_dot(test::paper_fsm());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"S0\" -> \"S1\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Compile, UnprotectedFollowsSpec) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  const CompiledFsm c = compile_unprotected(f, d);
  EXPECT_EQ(c.state_width, 2);
  EXPECT_EQ(c.state_codes.size(), 4u);
  EXPECT_TRUE(c.alert_wire.empty());
  EXPECT_EQ(c.decode_state(2), 2);
  EXPECT_EQ(c.decode_state(9), -1);
}

TEST(Compile, CustomEncoding) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  CompileOptions options;
  options.state_codes = {0b0101, 0b1010};
  options.state_width = 4;
  const CompiledFsm c = compile_unprotected(f, d, options);
  EXPECT_EQ(c.state_width, 4);
  EXPECT_EQ(c.decode_state(0b1010), 1);
}

}  // namespace
}  // namespace scfi::fsm
