#include <gtest/gtest.h>

#include <algorithm>

#include "base/error.h"
#include "fsm/compile.h"
#include "fsm/dot.h"
#include "fsm/kiss2.h"
#include "rtlil/design.h"
#include "test_helpers.h"

namespace scfi::fsm {
namespace {

TEST(Fsm, PaperFigure2Checks) {
  const Fsm f = test::paper_fsm();
  EXPECT_NO_THROW(f.check());
  EXPECT_EQ(f.num_states(), 4);
  EXPECT_EQ(f.transitions.size(), 5u);
}

TEST(Fsm, SymbolsIncludeIdle) {
  const Fsm f = test::paper_fsm();
  const auto symbols = f.symbols();
  EXPECT_NE(std::find(symbols.begin(), symbols.end(), f.idle_symbol()), symbols.end());
  // 4 distinct guards ("1---" appears twice) + idle.
  EXPECT_EQ(symbols.size(), 5u);
}

TEST(Fsm, CfgEdgesAddImplicitIdles) {
  const Fsm f = test::paper_fsm();
  const auto edges = f.cfg_edges();
  // 5 explicit + 4 implicit idle self-loops.
  EXPECT_EQ(edges.size(), 9u);
  int implicit = 0;
  for (const CfgEdge& e : edges) {
    if (e.transition_index < 0) {
      ++implicit;
      EXPECT_EQ(e.from, e.to);
      EXPECT_EQ(e.symbol, f.idle_symbol());
    }
  }
  EXPECT_EQ(implicit, 4);
}

TEST(Fsm, SynfiFsmHasFourteenEdges) {
  EXPECT_EQ(test::synfi_fsm().cfg_edges().size(), 14u);
}

TEST(Fsm, GuardMatching) {
  EXPECT_TRUE(Fsm::guard_matches("1-0", {true, true, false}));
  EXPECT_FALSE(Fsm::guard_matches("1-0", {false, true, false}));
  EXPECT_TRUE(Fsm::guard_matches("---", {true, false, true}));
}

TEST(Fsm, StepRawPriority) {
  Fsm f;
  f.inputs = {"a", "b"};
  f.add_transition("S", "1-", "T1");
  f.add_transition("S", "-1", "T2");
  const auto [to1, t1] = f.step_raw(0, {true, true});
  EXPECT_EQ(f.states[static_cast<std::size_t>(to1)], "T1");
  EXPECT_EQ(t1, 0);
  const auto [to2, t2] = f.step_raw(0, {false, true});
  EXPECT_EQ(f.states[static_cast<std::size_t>(to2)], "T2");
  EXPECT_EQ(t2, 1);
  const auto [to3, t3] = f.step_raw(0, {false, false});
  EXPECT_EQ(to3, 0);
  EXPECT_EQ(t3, -1);
}

TEST(Fsm, ConcreteInputRespectsPriority) {
  Fsm f;
  f.inputs = {"a", "b"};
  f.add_transition("S", "1-", "T1");
  f.add_transition("S", "-1", "T2");
  const auto bits = f.concrete_input_for(1);
  ASSERT_TRUE(bits.has_value());
  EXPECT_FALSE((*bits)[0]);  // must dodge the higher-priority "1-"
  EXPECT_TRUE((*bits)[1]);
}

TEST(Fsm, ShadowedTransitionRejected) {
  Fsm f;
  f.inputs = {"a"};
  f.add_transition("S", "-", "T");
  f.add_transition("S", "1", "U");  // unreachable: "-" wins always
  EXPECT_THROW(f.check(), ScfiError);
}

TEST(Fsm, DuplicateGuardRejected) {
  Fsm f;
  f.inputs = {"a"};
  f.add_transition("S", "1", "T");
  EXPECT_NO_THROW(f.check());
  f.add_transition("S", "1", "U");
  EXPECT_THROW(f.check(), ScfiError);
}

TEST(Fsm, UnreachableStateRejected) {
  Fsm f;
  f.inputs = {"a"};
  f.add_transition("S", "1", "T");
  f.add_state("ORPHan");
  EXPECT_THROW(f.check(), ScfiError);
}

TEST(Fsm, IdleInputExists) {
  const Fsm f = test::paper_fsm();
  const auto idle = f.concrete_input_for_idle(0);
  ASSERT_TRUE(idle.has_value());
  EXPECT_EQ(f.step_raw(0, *idle).second, -1);
}

TEST(Kiss2, RoundTrip) {
  const Fsm f = test::paper_fsm();
  const std::string text = write_kiss2(f);
  const Fsm g = parse_kiss2(text, f.name);
  EXPECT_EQ(g.num_states(), f.num_states());
  EXPECT_EQ(g.transitions.size(), f.transitions.size());
  EXPECT_EQ(g.states[static_cast<std::size_t>(g.reset_state)],
            f.states[static_cast<std::size_t>(f.reset_state)]);
  for (std::size_t i = 0; i < f.transitions.size(); ++i) {
    EXPECT_EQ(g.transitions[i].guard, f.transitions[i].guard);
  }
}

TEST(Kiss2, ParsesClassicFormat) {
  const std::string text = R"(
.i 2
.o 1
.s 2
.p 3
.r st0
10 st0 st1 1
01 st1 st0 0
11 st1 st1 1
.e
)";
  const Fsm f = parse_kiss2(text);
  EXPECT_EQ(f.num_inputs(), 2);
  EXPECT_EQ(f.num_states(), 2);
  EXPECT_EQ(f.transitions.size(), 3u);
}

TEST(Kiss2, RejectsMalformed) {
  EXPECT_THROW(parse_kiss2(".i 2\n.o 1\n1 st0 st1 1\n"), ScfiError);   // width
  EXPECT_THROW(parse_kiss2("10 st0 st1 1\n"), ScfiError);              // no .i/.o
}

TEST(Kiss2, EndDirectiveStopsParsing) {
  // Trailing junk after .e (common in concatenated benchmark dumps) must
  // not be parsed as transitions — including well-formed ones that would
  // silently grow the machine.
  const std::string text =
      ".i 1\n.o 1\n.r A\n0 A A 0\n1 A B 1\n- B A 0\n.e\n"
      "this is not kiss2 at all\n"
      "1 B C 1\n";
  const Fsm f = parse_kiss2(text);
  EXPECT_EQ(f.num_states(), 2);
  EXPECT_EQ(f.transitions.size(), 3u);
  // .end is the long-form synonym.
  const Fsm g = parse_kiss2(".i 1\n.o 1\n0 A A 0\n1 A B 1\n- B A 0\n.end\ngarbage\n");
  EXPECT_EQ(g.transitions.size(), 3u);
  // Everything after .e ignored also means a file that redeclares .i there
  // parses cleanly.
  EXPECT_EQ(parse_kiss2(".i 1\n.o 1\n0 A A 0\n1 A B 1\n- B A 0\n.e\n.i 7\n").num_inputs(), 1);
}

TEST(Kiss2, ParsesCrlfInput) {
  const std::string text =
      ".i 2\r\n.o 1\r\n.s 2\r\n.p 3\r\n.r st0\r\n"
      "10 st0 st1 1\r\n01 st1 st0 0\r\n11 st1 st1 1\r\n.e\r\n";
  const Fsm f = parse_kiss2(text);
  EXPECT_EQ(f.num_inputs(), 2);
  EXPECT_EQ(f.num_states(), 2);
  EXPECT_EQ(f.states[0], "st0");  // no trailing '\r' baked into names
}

TEST(Kiss2, MalformedCountsRaiseScfiError) {
  // std::stoi used to escape as std::invalid_argument/std::out_of_range;
  // every malformed count must surface as ScfiError naming the line.
  const char* bad_counts[] = {
      ".i abc\n.o 1\n1 A B 1\n.e\n",          // non-numeric
      ".i 99999999999999999999\n.o 1\n",      // overflow
      ".i -2\n.o 1\n",                        // negative
      ".i 2x\n.o 1\n",                        // trailing junk (stoi took 2)
      ".i\n.o 1\n",                           // missing operand
  };
  for (const char* text : bad_counts) {
    try {
      parse_kiss2(text);
      FAIL() << "expected ScfiError for: " << text;
    } catch (const ScfiError& e) {
      EXPECT_NE(std::string(e.what()).find("kiss2"), std::string::npos) << text;
    } catch (const std::exception& e) {
      FAIL() << "non-ScfiError escaped (" << e.what() << ") for: " << text;
    }
  }
}

TEST(Kiss2, RejectsRedeclarations) {
  // Contradictory .i/.o redeclarations are rejected outright; an exact
  // duplicate before any transition is tolerated (seen in the wild).
  EXPECT_THROW(parse_kiss2(".i 2\n.i 3\n.o 1\n10 A B 1\n.e\n"), ScfiError);
  EXPECT_THROW(parse_kiss2(".i 2\n.o 1\n.o 2\n10 A B 1\n.e\n"), ScfiError);
  EXPECT_EQ(parse_kiss2(".i 2\n.i 2\n.o 1\n10 A B 1\n01 B A 0\n.e\n").num_inputs(), 2);
  // Any redeclaration after transitions have started is rejected — the
  // widths are already baked into the generated port names.
  EXPECT_THROW(parse_kiss2(".i 2\n.o 1\n10 A B 1\n.i 2\n01 B A 0\n.e\n"), ScfiError);
  EXPECT_THROW(parse_kiss2(".i 2\n.o 1\n10 A B 1\n.o 3\n01 B A 0\n.e\n"), ScfiError);
}

TEST(Kiss2, MissingResetStateRejected) {
  EXPECT_THROW(parse_kiss2(".i 1\n.o 1\n.r nowhere\n0 A A 0\n1 A A 1\n.e\n"), ScfiError);
  // Without .r the first-seen state is the reset state.
  const Fsm f = parse_kiss2(".i 1\n.o 1\n0 B B 0\n1 B A 1\n- A B 0\n.e\n");
  EXPECT_EQ(f.states[static_cast<std::size_t>(f.reset_state)], "B");
}

TEST(Dot, ContainsStatesAndEdges) {
  const std::string dot = to_dot(test::paper_fsm());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"S0\" -> \"S1\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Compile, UnprotectedFollowsSpec) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  const CompiledFsm c = compile_unprotected(f, d);
  EXPECT_EQ(c.state_width, 2);
  EXPECT_EQ(c.state_codes.size(), 4u);
  EXPECT_TRUE(c.alert_wire.empty());
  EXPECT_EQ(c.decode_state(2), 2);
  EXPECT_EQ(c.decode_state(9), -1);
}

TEST(Compile, CustomEncoding) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  CompileOptions options;
  options.state_codes = {0b0101, 0b1010};
  options.state_width = 4;
  const CompiledFsm c = compile_unprotected(f, d, options);
  EXPECT_EQ(c.state_width, 4);
  EXPECT_EQ(c.decode_state(0b1010), 1);
}

}  // namespace
}  // namespace scfi::fsm
