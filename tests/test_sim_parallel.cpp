// Lane-parallel simulation: equivalence of the 64-lane bit-parallel engine
// with independent scalar simulations, and invariance of campaign results
// under the lanes/threads execution knobs.
#include <gtest/gtest.h>

#include <vector>

#include "base/error.h"
#include "base/rng.h"
#include "core/harden.h"
#include "fsm/compile.h"
#include "fsm/kiss2.h"
#include "kiss2_corpus.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sim/campaign.h"
#include "sim/fault.h"
#include "sim/netlist_sim.h"
#include "test_helpers.h"

namespace scfi::sim {
namespace {

struct LaneFault {
  std::size_t site = 0;
  int cycle = 0;
  FaultKind kind = FaultKind::kTransientFlip;
};

FaultKind random_kind(Rng& rng) {
  switch (rng.below(3)) {
    case 0: return FaultKind::kStuckAt0;
    case 1: return FaultKind::kStuckAt1;
    default: return FaultKind::kTransientFlip;
  }
}

/// Runs every KISS2 corpus machine through the hardened flow twice — once
/// with 64 lanes carrying independent walks and faults, once as 64 separate
/// scalar simulations — and demands identical per-lane, per-cycle state and
/// alert trajectories.
TEST(SimParallel, LanesMatchScalarReplayOnCorpus) {
  constexpr int kCycles = 20;
  constexpr int kFaultsPerLane = 2;
  for (std::size_t bench = 0; bench < test::kKiss2Corpus.size(); ++bench) {
    const fsm::Fsm f = fsm::parse_kiss2(std::string(test::kKiss2Corpus[bench].text),
                                        std::string(test::kKiss2Corpus[bench].name));
    rtlil::Design d;
    core::ScfiConfig config;
    config.protection_level = 2;
    const fsm::CompiledFsm c = core::scfi_harden(f, d, config);
    const std::vector<FaultSite> sites = enumerate_fault_sites(*c.module, c.state_wire);
    ASSERT_FALSE(sites.empty());
    std::vector<std::uint64_t> codes;
    for (const auto& [symbol, code] : c.symbol_codes) codes.push_back(code);

    // Per-lane stimulus and fault schedules.
    Rng rng(0xC0DE + bench);
    std::vector<std::vector<std::uint64_t>> lane_inputs(kNumLanes);
    std::vector<std::vector<LaneFault>> lane_faults(kNumLanes);
    for (int lane = 0; lane < kNumLanes; ++lane) {
      for (int t = 0; t < kCycles; ++t) {
        lane_inputs[static_cast<std::size_t>(lane)].push_back(rng.pick(codes));
      }
      for (int k = 0; k < kFaultsPerLane; ++k) {
        lane_faults[static_cast<std::size_t>(lane)].push_back(
            LaneFault{static_cast<std::size_t>(rng.below(sites.size())),
                      static_cast<int>(rng.below(kCycles)), random_kind(rng)});
      }
    }

    // Batched pass: all 64 lanes in one simulator.
    Simulator batched(*c.module);
    const Simulator::WireHandle symbol_h = batched.input_handle(c.symbol_input_wire);
    const Simulator::WireHandle state_h = batched.probe(c.state_wire);
    const Simulator::WireHandle alert_h = batched.probe(c.alert_wire);
    std::vector<std::int32_t> site_net;
    for (const FaultSite& s : sites) site_net.push_back(batched.net_index(s.bit));
    std::vector<std::vector<std::uint64_t>> got_state(kNumLanes);
    std::vector<std::vector<std::uint64_t>> got_alert(kNumLanes);
    for (int t = 0; t < kCycles; ++t) {
      for (int lane = 0; lane < kNumLanes; ++lane) {
        batched.set_input_lane(symbol_h, lane,
                               lane_inputs[static_cast<std::size_t>(lane)][static_cast<std::size_t>(t)]);
        for (const LaneFault& lf : lane_faults[static_cast<std::size_t>(lane)]) {
          if (lf.cycle == t) {
            batched.inject_net(site_net[lf.site], lf.kind, 1ULL << lane);
          }
        }
      }
      batched.eval();
      for (int lane = 0; lane < kNumLanes; ++lane) {
        got_alert[static_cast<std::size_t>(lane)].push_back(batched.get_lane(alert_h, lane));
      }
      batched.step();
      for (int lane = 0; lane < kNumLanes; ++lane) {
        got_state[static_cast<std::size_t>(lane)].push_back(batched.get_lane(state_h, lane));
      }
    }

    // Scalar replay: one fresh single-context simulator per lane.
    for (int lane = 0; lane < kNumLanes; ++lane) {
      Simulator scalar(*c.module);
      const Simulator::WireHandle sym = scalar.input_handle(c.symbol_input_wire);
      const Simulator::WireHandle st = scalar.probe(c.state_wire);
      const Simulator::WireHandle al = scalar.probe(c.alert_wire);
      for (int t = 0; t < kCycles; ++t) {
        scalar.set_input(sym, lane_inputs[static_cast<std::size_t>(lane)][static_cast<std::size_t>(t)]);
        for (const LaneFault& lf : lane_faults[static_cast<std::size_t>(lane)]) {
          if (lf.cycle == t) scalar.inject(sites[lf.site].bit, lf.kind);
        }
        scalar.eval();
        ASSERT_EQ(scalar.get(al), got_alert[static_cast<std::size_t>(lane)][static_cast<std::size_t>(t)])
            << f.name << " lane " << lane << " cycle " << t;
        scalar.step();
        ASSERT_EQ(scalar.get(st), got_state[static_cast<std::size_t>(lane)][static_cast<std::size_t>(t)])
            << f.name << " lane " << lane << " cycle " << t;
      }
    }
  }
}

TEST(SimParallel, StuckFaultsAreLaneLocal) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* y = m->add_output("y", 1);
  m->drive(rtlil::SigSpec(y), m->make_buf(rtlil::SigSpec(a)));
  Simulator s(*m);
  const Simulator::WireHandle ah = s.input_handle("a");
  const Simulator::WireHandle yh = s.probe("y");
  s.set_input(ah, 1);  // all lanes high
  s.inject(rtlil::SigBit(a, 0), FaultKind::kStuckAt0, 1ULL << 3);
  s.eval();
  EXPECT_EQ(s.get_lane(yh, 3), 0u);
  EXPECT_EQ(s.get_lane(yh, 0), 1u);
  EXPECT_EQ(s.get_lane(yh, 63), 1u);
  // A transient in another lane expires after one step; the stuck lane stays.
  s.inject(rtlil::SigBit(a, 0), FaultKind::kTransientFlip, 1ULL << 5);
  s.eval();
  EXPECT_EQ(s.get_lane(yh, 5), 0u);
  s.step();
  EXPECT_EQ(s.get_lane(yh, 5), 1u);
  EXPECT_EQ(s.get_lane(yh, 3), 0u);
}

TEST(SimParallel, WideLaneFaultsAreLaneLocal) {
  // StuckFaultsAreLaneLocal past word 0: lanes of different block words
  // carry independent faults, and a transient in word 7 expires on step()
  // without touching a stuck lane in word 1.
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m_wide");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* y = m->add_output("y", 1);
  m->drive(rtlil::SigSpec(y), m->make_buf(rtlil::SigSpec(a)));
  Simulator s(*m, /*lane_words=*/8);
  ASSERT_EQ(s.num_lanes(), kMaxLanes);
  const Simulator::WireHandle ah = s.input_handle("a");
  const Simulator::WireHandle yh = s.probe("y");
  s.set_input(ah, 1);  // all 512 lanes high
  s.inject(rtlil::SigBit(a, 0), FaultKind::kStuckAt0, LaneMask::lane(100));
  s.eval();
  EXPECT_EQ(s.get_lane(yh, 100), 0u);
  EXPECT_EQ(s.get_lane(yh, 99), 1u);
  EXPECT_EQ(s.get_lane(yh, 0), 1u);
  EXPECT_EQ(s.get_lane(yh, 511), 1u);
  s.inject(rtlil::SigBit(a, 0), FaultKind::kTransientFlip, LaneMask::lane(500));
  s.eval();
  EXPECT_EQ(s.get_lane(yh, 500), 0u);
  s.step();
  EXPECT_EQ(s.get_lane(yh, 500), 1u);
  EXPECT_EQ(s.get_lane(yh, 100), 0u);
}

TEST(SimParallel, TransientInjectionsCoalescePerNet) {
  // Repeated transient injections on one net within a cycle must merge into
  // one pending entry (step()'s clear pass is O(distinct nets)), and the
  // merged mask must clear both lanes on the next step.
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m_coalesce");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* b = m->add_input("b", 1);
  rtlil::Wire* y = m->add_output("y", 2);
  m->drive(rtlil::SigSpec(rtlil::SigBit(y, 0)), m->make_buf(rtlil::SigSpec(a)));
  m->drive(rtlil::SigSpec(rtlil::SigBit(y, 1)), m->make_buf(rtlil::SigSpec(b)));
  Simulator s(*m, /*lane_words=*/2);
  const Simulator::WireHandle yh = s.probe("y");
  s.set_input(s.input_handle("a"), 1);
  s.set_input(s.input_handle("b"), 1);
  EXPECT_EQ(s.pending_transient_nets(), 0);
  s.inject(rtlil::SigBit(a, 0), FaultKind::kTransientFlip, LaneMask::lane(3));
  s.inject(rtlil::SigBit(a, 0), FaultKind::kTransientFlip, LaneMask::lane(70));
  s.inject(rtlil::SigBit(a, 0), FaultKind::kTransientFlip, LaneMask::lane(3));
  EXPECT_EQ(s.pending_transient_nets(), 1);  // coalesced, not 3 entries
  s.inject(rtlil::SigBit(b, 0), FaultKind::kTransientFlip, LaneMask::lane(9));
  EXPECT_EQ(s.pending_transient_nets(), 2);  // distinct net, new entry
  s.eval();
  EXPECT_EQ(s.get_lane(yh, 3), 0b10u);
  EXPECT_EQ(s.get_lane(yh, 70), 0b10u);
  EXPECT_EQ(s.get_lane(yh, 9), 0b01u);
  EXPECT_EQ(s.get_lane(yh, 0), 0b11u);
  s.step();
  EXPECT_EQ(s.pending_transient_nets(), 0);
  for (const int lane : {3, 70, 9, 0}) {
    EXPECT_EQ(s.get_lane(yh, lane), 0b11u) << "lane " << lane;
  }
  // clear_all_faults must also reset the coalescing slots, so a fresh
  // injection on the same net starts a fresh entry.
  s.inject(rtlil::SigBit(a, 0), FaultKind::kTransientFlip, LaneMask::lane(1));
  s.clear_all_faults();
  EXPECT_EQ(s.pending_transient_nets(), 0);
  s.inject(rtlil::SigBit(a, 0), FaultKind::kTransientFlip, LaneMask::lane(2));
  EXPECT_EQ(s.pending_transient_nets(), 1);
  s.step();
  EXPECT_EQ(s.get_lane(yh, 2), 0b11u);
}

TEST(SimParallel, SegmentedEvalMatchesReferenceTapeOnZoo) {
  // The kind-segmented levelized tape (eval) against the original-order
  // switch-per-op tape (eval_reference): identical fault-corrected values
  // on every net of every zoo module, at every lane-block width, with
  // random per-lane stimulus and armed faults. This is the differential
  // oracle for the (level, kind) stable-sort reordering and the no-fault
  // fast path.
  for (const ot::OtEntry& entry : ot::ot_zoo()) {
    rtlil::Design d;
    const fsm::CompiledFsm c =
        ot::build_ot_variant(entry, d, ot::Variant::kScfi, 2, entry.name + "_segeval");
    const std::vector<FaultSite> sites = enumerate_fault_sites(*c.module, c.state_wire);
    ASSERT_FALSE(sites.empty());
    std::vector<std::uint64_t> codes;
    for (const auto& [symbol, code] : c.symbol_codes) codes.push_back(code);

    for (const int lane_words : {1, 2, 4, 8}) {
      Simulator sim(*c.module, lane_words);
      const Simulator::WireHandle symbol_h = sim.input_handle(c.symbol_input_wire);
      Rng rng(0x5E6 + static_cast<std::uint64_t>(lane_words));
      // Random per-word symbol stimulus (valid codewords in lane 0 are not
      // required: the oracle property holds for arbitrary bit soup).
      for (int i = 0; i < symbol_h.width; ++i) {
        for (int w = 0; w < lane_words; ++w) {
          sim.set_input_word(symbol_h, i, rng.next(), w);
        }
      }

      const auto snapshot = [&] {
        std::vector<std::uint64_t> all;
        all.reserve(static_cast<std::size_t>(sim.num_nets() * lane_words));
        for (const rtlil::Wire* wire : c.module->wires()) {
          const Simulator::WireHandle h = sim.probe(wire->name());
          for (std::int32_t i = 0; i < h.width; ++i) {
            for (int w = 0; w < lane_words; ++w) all.push_back(sim.lane_word(h.base + i, w));
          }
        }
        return all;
      };

      // No-fault fast path vs reference.
      sim.eval();
      const std::vector<std::uint64_t> segmented = snapshot();
      sim.eval_reference();
      EXPECT_EQ(segmented, snapshot()) << entry.name << " W=" << lane_words << " no-fault";

      // Armed faults (masked loads) vs reference.
      for (int k = 0; k < 6; ++k) {
        const FaultSite& site = sites[static_cast<std::size_t>(rng.below(sites.size()))];
        sim.inject(site.bit, random_kind(rng),
                   LaneMask::lane(static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(sim.num_lanes())))));
      }
      sim.eval();
      const std::vector<std::uint64_t> faulty = snapshot();
      sim.eval_reference();
      EXPECT_EQ(faulty, snapshot()) << entry.name << " W=" << lane_words << " faulty";
    }
  }
}

TEST(SimParallel, CampaignInvariantUnderLanesAndThreads) {
  const fsm::Fsm f = test::synfi_fsm();
  rtlil::Design d;
  const fsm::CompiledFsm plain = fsm::compile_unprotected(f, d);
  core::ScfiConfig sc;
  sc.protection_level = 3;
  const fsm::CompiledFsm hardened = core::scfi_harden(f, d, sc);
  for (const CampaignPlanner planner :
       {CampaignPlanner::kStreaming, CampaignPlanner::kStreamingMaterialized}) {
    for (const fsm::CompiledFsm* variant : {&plain, &hardened}) {
      for (const FaultKind kind : {FaultKind::kTransientFlip, FaultKind::kStuckAt1}) {
        CampaignConfig base;
        base.runs = 200;
        base.cycles = 12;
        base.fault.k = 2;
        base.fault.kinds = {kind};
        base.seed = 99;
        base.planner = planner;
        base.lanes = 1;
        const CampaignResult scalar = run_campaign(f, *variant, base);
        // All four lane-block widths (1/2/4/8 words -> 64/128/256/512
        // lanes) plus ragged shapes, against the scalar reference.
        for (const int lanes : {7, 64, 100, 128, 256, 512}) {
          CampaignConfig cfg = base;
          cfg.lanes = lanes;
          EXPECT_EQ(run_campaign(f, *variant, cfg), scalar) << "lanes=" << lanes;
        }
        for (const int lanes : {64, 512}) {
          CampaignConfig threaded = base;
          threaded.lanes = lanes;
          threaded.threads = 4;
          EXPECT_EQ(run_campaign(f, *variant, threaded), scalar)
              << "lanes=" << lanes << " threads=4";
        }
      }
    }
  }
}

TEST(SimParallel, StreamingMatchesMaterializedOracle) {
  // The on-the-fly streaming planner must be bit-identical to the same plan
  // materialized up front and fed through the shared batch executor — the
  // differential oracle for the O(lanes)-memory path — for every lanes /
  // threads packing.
  const fsm::Fsm f = test::synfi_fsm();
  rtlil::Design d;
  const fsm::CompiledFsm plain = fsm::compile_unprotected(f, d);
  core::ScfiConfig sc;
  sc.protection_level = 2;
  const fsm::CompiledFsm hardened = core::scfi_harden(f, d, sc);
  for (const fsm::CompiledFsm* variant : {&plain, &hardened}) {
    CampaignConfig base;
    base.runs = 500;
    base.cycles = 10;
    base.fault.k = 3;
    base.seed = 2024;
    base.planner = CampaignPlanner::kStreamingMaterialized;
    const CampaignResult oracle = run_campaign(f, *variant, base);
    struct LanesThreads {
      int lanes;
      int threads;
    };
    for (const LanesThreads lt : {LanesThreads{1, 1}, {7, 1}, {64, 1}, {64, 4}, {13, 3},
                                  {128, 1}, {256, 4}, {512, 1}, {512, 4}, {100, 3}}) {
      CampaignConfig cfg = base;
      cfg.planner = CampaignPlanner::kStreaming;
      cfg.lanes = lt.lanes;
      cfg.threads = lt.threads;
      EXPECT_EQ(run_campaign(f, *variant, cfg), oracle)
          << "lanes=" << lt.lanes << " threads=" << lt.threads;
    }
  }
}

TEST(SimParallel, CampaignSeedIsDeterministic) {
  const fsm::Fsm f = test::paper_fsm();
  rtlil::Design d;
  const fsm::CompiledFsm plain = fsm::compile_unprotected(f, d);
  CampaignConfig cfg;
  cfg.runs = 150;
  cfg.cycles = 10;
  cfg.fault.k = 3;
  cfg.seed = 7;
  cfg.threads = 3;
  const CampaignResult first = run_campaign(f, plain, cfg);
  const CampaignResult second = run_campaign(f, plain, cfg);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.runs, cfg.runs);
  EXPECT_EQ(first.masked + first.detected + first.hijacked + first.lagged +
                first.silent_invalid,
            cfg.runs);
  cfg.seed = 8;
  EXPECT_NE(run_campaign(f, plain, cfg), first);
}

TEST(SimParallel, DistinctFaultSitesWhenPopulationSuffices) {
  // FT1 on the unprotected paper FSM has exactly state_width sites; ask for
  // all of them and verify classification still accounts every run (the old
  // rejection sampler could silently double-fault one site, which showed up
  // as biased masking; here we only require the draw machinery to accept
  // fault.k == population).
  const fsm::Fsm f = test::paper_fsm();
  rtlil::Design d;
  const fsm::CompiledFsm plain = fsm::compile_unprotected(f, d);
  CampaignConfig cfg;
  cfg.runs = 100;
  cfg.cycles = 8;
  cfg.fault.target = FaultTarget::kStateRegister;
  cfg.fault.k = plain.state_width;  // == site population for FT1
  cfg.seed = 3;
  const CampaignResult r = run_campaign(f, plain, cfg);
  EXPECT_EQ(r.masked + r.detected + r.hijacked + r.lagged + r.silent_invalid, cfg.runs);
  // With every state-register bit flipped in each run, no run can be masked
  // unless every flip lands after the walk's effect horizon; the overwhelming
  // majority must be effective.
  EXPECT_GT(r.effective(), 0);
}

TEST(SimParallel, PlanBytesCapAppliesToMaterializingPlannersOnly) {
  const fsm::Fsm f = test::paper_fsm();
  rtlil::Design d;
  const fsm::CompiledFsm plain = fsm::compile_unprotected(f, d);

  CampaignConfig cfg;
  cfg.runs = 100;
  cfg.cycles = 8;
  cfg.fault.k = 2;
  // ~8 bytes per run-cycle plus 12 per scheduled fault (site, cycle, kind).
  EXPECT_EQ(planned_bytes(cfg), 100 * (8 * 4 + (8 + 1) * 4) + 100 * 2 * 12);

  // A 10^8-run campaign would materialize ~8 GB of plan; the default cap
  // rejects the materializing planner up front (ScfiError, not OOM). The
  // estimate itself must not overflow.
  CampaignConfig huge = cfg;
  huge.runs = 100'000'000;
  EXPECT_GT(planned_bytes(huge), huge.max_plan_bytes);
  huge.planner = CampaignPlanner::kStreamingMaterialized;
  EXPECT_THROW(run_campaign(f, plain, huge), ScfiError);

  // A tight explicit cap rejects even a small campaign when materializing;
  // cap 0 disables the check.
  CampaignConfig capped = cfg;
  capped.planner = CampaignPlanner::kStreamingMaterialized;
  capped.max_plan_bytes = 16;
  EXPECT_THROW(run_campaign(f, plain, capped), ScfiError);
  capped.max_plan_bytes = 0;
  CampaignConfig uncapped = cfg;
  uncapped.planner = CampaignPlanner::kStreamingMaterialized;
  EXPECT_EQ(run_campaign(f, plain, capped), run_campaign(f, plain, uncapped));
}

TEST(SimParallel, OverCapCampaignRunsWithStreamingPlanner) {
  // A campaign whose materialized plan would blow a (here deliberately
  // tiny) max_plan_bytes cap runs to completion with the streaming planner
  // — the cap only guards up-front materialization — and stays bit-identical
  // across lane/thread packings while accounting every run.
  const fsm::Fsm f = test::paper_fsm();
  rtlil::Design d;
  const fsm::CompiledFsm plain = fsm::compile_unprotected(f, d);

  CampaignConfig cfg;
  cfg.runs = 300'000;
  cfg.cycles = 3;
  cfg.fault.k = 1;
  cfg.seed = 11;
  cfg.max_plan_bytes = 1 << 16;  // 64 KiB: far below the ~10 MB plan
  ASSERT_GT(planned_bytes(cfg), cfg.max_plan_bytes);

  CampaignConfig materialized = cfg;
  materialized.planner = CampaignPlanner::kStreamingMaterialized;
  EXPECT_THROW(run_campaign(f, plain, materialized), ScfiError);

  cfg.planner = CampaignPlanner::kStreaming;
  const CampaignResult r = run_campaign(f, plain, cfg);
  EXPECT_EQ(r.runs, cfg.runs);
  EXPECT_EQ(r.masked + r.detected + r.hijacked + r.lagged + r.silent_invalid, cfg.runs);

  CampaignConfig threaded = cfg;
  threaded.lanes = 7;
  threaded.threads = 4;
  EXPECT_EQ(run_campaign(f, plain, threaded), r);
}

}  // namespace
}  // namespace scfi::sim
