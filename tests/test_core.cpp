#include <gtest/gtest.h>

#include <bit>

#include "base/rng.h"
#include "core/harden.h"
#include "core/pass.h"
#include "fsm/compile.h"
#include "mds/registry.h"
#include "rtlil/design.h"
#include "sim/netlist_sim.h"
#include "synth/lower.h"
#include "synth/opt.h"
#include "test_helpers.h"

namespace scfi::core {
namespace {

using fsm::CfgEdge;
using fsm::CompiledFsm;
using fsm::Fsm;

CompiledFsm harden(const Fsm& f, rtlil::Design& d, int n, ScfiReport* report = nullptr) {
  ScfiConfig config;
  config.protection_level = n;
  return scfi_harden(f, d, config, report);
}

TEST(EncodingPlan, RespectsProtectionLevel) {
  const Fsm f = test::paper_fsm();
  for (int n = 2; n <= 4; ++n) {
    ScfiConfig config;
    config.protection_level = n;
    const EncodingPlan plan = plan_encoding(f, config);
    EXPECT_EQ(plan.state_codes.size(), 4u);
    for (std::size_t i = 0; i < plan.state_codes.size(); ++i) {
      EXPECT_NE(plan.state_codes[i], plan.error_code) << "ERROR must stay invalid";
      for (std::size_t j = i + 1; j < plan.state_codes.size(); ++j) {
        EXPECT_GE(std::popcount(plan.state_codes[i] ^ plan.state_codes[j]), n);
      }
    }
    std::vector<std::uint64_t> symbols;
    for (const auto& [unused, code] : plan.symbol_codes) symbols.push_back(code);
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      EXPECT_NE(symbols[i], 0u);
      for (std::size_t j = i + 1; j < symbols.size(); ++j) {
        EXPECT_GE(std::popcount(symbols[i] ^ symbols[j]), n);
      }
    }
  }
}

TEST(Layout, FeasibleForTypicalWidths) {
  const mds::Construction& mds = mds::default_construction();
  for (int sw = 3; sw <= 14; ++sw) {
    for (int xw = 3; xw <= 14; ++xw) {
      const LaneLayout layout = compute_layout(sw, xw, 2, mds);
      int total_state = 0;
      for (const Lane& lane : layout.lanes) {
        total_state += lane.state_len;
        EXPECT_EQ(lane.state_len + lane.sym_len + lane.mod_len, 32);
        EXPECT_GE(lane.mod_len, lane.state_len + 2);
      }
      EXPECT_EQ(total_state, sw);
    }
  }
}

TEST(Layout, LaneCountGrowsWithWidth) {
  const mds::Construction& mds = mds::default_construction();
  const LaneLayout small = compute_layout(5, 5, 2, mds);
  const LaneLayout big = compute_layout(14, 22, 2, mds);
  EXPECT_EQ(small.k(), 1);
  EXPECT_GE(big.k(), 2);
}

TEST(Modifier, SolutionsVerifyForward) {
  // compute_modifiers internally forward-checks every edge; constructing it
  // for several FSMs and levels must not throw.
  for (int n = 2; n <= 4; ++n) {
    const Fsm f = test::synfi_fsm();
    ScfiConfig config;
    config.protection_level = n;
    const EncodingPlan plan = plan_encoding(f, config);
    const LaneLayout layout = compute_layout(plan.state_width, plan.symbol_width,
                                             config.effective_error_bits(),
                                             mds::default_construction());
    const auto mods = compute_modifiers(f, plan, layout, mds::default_construction());
    EXPECT_EQ(mods.size(), f.cfg_edges().size());
  }
}

TEST(Harden, FollowsControlFlowFaultFree) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  const CompiledFsm c = harden(f, d, 2);
  sim::Simulator s(*c.module);
  Rng rng(9);
  const auto edges = f.cfg_edges();
  int golden = f.reset_state;
  for (int t = 0; t < 300; ++t) {
    std::vector<CfgEdge> options;
    for (const CfgEdge& e : edges) {
      if (e.from == golden) options.push_back(e);
    }
    const CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
    s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
    s.eval();
    EXPECT_EQ(s.get(c.alert_wire), 0u) << "false alarm at cycle " << t;
    s.step();
    golden = e.to;
    EXPECT_EQ(s.get(c.state_wire), c.state_codes[static_cast<std::size_t>(golden)]);
  }
}

TEST(Harden, MealyOutputsMatchSpec) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  const CompiledFsm c = harden(f, d, 2);
  sim::Simulator s(*c.module);
  int golden = f.reset_state;
  Rng rng(10);
  const auto edges = f.cfg_edges();
  for (int t = 0; t < 100; ++t) {
    std::vector<CfgEdge> options;
    for (const CfgEdge& e : edges) {
      if (e.from == golden) options.push_back(e);
    }
    const CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
    s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
    s.eval();
    for (std::size_t j = 0; j < f.outputs.size(); ++j) {
      if (e.output[j] == '-') continue;
      EXPECT_EQ(s.get(f.outputs[j]), e.output[j] == '1' ? 1u : 0u);
    }
    s.step();
    golden = e.to;
  }
}

TEST(Harden, InvalidSymbolTriggersErrorState) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  const CompiledFsm c = harden(f, d, 2);
  sim::Simulator s(*c.module);
  // Drive a bus value that is not a valid codeword.
  std::uint64_t bad = 0;
  for (std::uint64_t cand = 1; cand < (1ULL << c.symbol_width); ++cand) {
    bool used = false;
    for (const auto& [sym, code] : c.symbol_codes) used |= (code == cand);
    if (!used) {
      bad = cand;
      break;
    }
  }
  ASSERT_NE(bad, 0u) << "no invalid bus value exists";
  s.set_input(c.symbol_input_wire, bad);
  s.eval();
  EXPECT_EQ(s.get(c.alert_wire), 1u);
  s.step();
  EXPECT_EQ(s.get(c.state_wire), c.error_code);
}

TEST(Harden, ErrorStateIsTerminal) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  const CompiledFsm c = harden(f, d, 2);
  sim::Simulator s(*c.module);
  s.set_register(c.state_wire, c.error_code);
  // Even with a valid symbol, the FSM must stay in ERROR with the alert on.
  const std::uint64_t good = c.symbol_codes.begin()->second;
  for (int t = 0; t < 5; ++t) {
    s.set_input(c.symbol_input_wire, good);
    s.eval();
    EXPECT_EQ(s.get(c.alert_wire), 1u);
    s.step();
    EXPECT_EQ(s.get(c.state_wire), c.error_code);
  }
}

TEST(Harden, StateRegisterFaultDetected) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  const CompiledFsm c = harden(f, d, 2);
  sim::Simulator s(*c.module);
  const rtlil::Wire* sq = c.module->wire(c.state_wire);
  // Single bit flips in the state register (FT1) must always be caught:
  // the flipped value has distance 1 to the old codeword, so it is not a
  // codeword itself.
  for (int bit = 0; bit < c.state_width; ++bit) {
    s.reset();
    s.set_input(c.symbol_input_wire, c.symbol_codes.at(f.idle_symbol()));
    s.inject(rtlil::SigBit(sq, bit), sim::FaultKind::kTransientFlip);
    s.eval();
    EXPECT_EQ(s.get(c.alert_wire), 1u) << "FT1 flip on bit " << bit;
    s.step();
    EXPECT_EQ(s.get(c.state_wire), c.error_code);
    s.clear_all_faults();
  }
}

TEST(Harden, SingleLogicFaultsNeverHijackN2) {
  // Exhaustively flip every MDS-internal net for every CFG edge and verify
  // the outcome is never a valid wrong state (the §6.3 security argument;
  // single faults are within the N=2 protection level).
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  const CompiledFsm c = harden(f, d, 2);
  sim::Simulator s(*c.module);
  const auto edges = f.cfg_edges();
  int hijacks = 0;
  int total = 0;
  for (const rtlil::Wire* w : c.module->wires()) {
    if (w->name().rfind("mds_", 0) != 0) continue;
    for (int bit = 0; bit < w->width(); ++bit) {
      for (const CfgEdge& e : edges) {
        ++total;
        s.clear_all_faults();
        s.set_register(c.state_wire, c.state_codes[static_cast<std::size_t>(e.from)]);
        s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
        s.inject(rtlil::SigBit(w, bit), sim::FaultKind::kTransientFlip);
        s.eval();
        const bool alerted = s.get(c.alert_wire) != 0;
        s.step();
        const std::uint64_t next = s.get(c.state_wire);
        const bool ok = next == c.state_codes[static_cast<std::size_t>(e.to)];
        const bool error = next == c.error_code;
        if (!ok && !error && !alerted && c.decode_state(next) >= 0 &&
            next != c.state_codes[static_cast<std::size_t>(e.to)]) {
          ++hijacks;
        }
      }
    }
  }
  EXPECT_GT(total, 100);
  // The paper measures a small but nonzero rate for gate-level faults in the
  // last MDS layer; at word level with N=2 single flips land at distance 1
  // from a codeword and must always be caught.
  EXPECT_EQ(hijacks, 0);
}

TEST(Harden, ReportIsFilled) {
  rtlil::Design d;
  ScfiReport report;
  const Fsm f = test::synfi_fsm();
  ScfiConfig config;
  config.protection_level = 2;
  scfi_harden(f, d, config, &report);
  EXPECT_EQ(report.cfg_edges, 14);
  EXPECT_GE(report.lanes, 1);
  EXPECT_GT(report.mod_width, 0);
  EXPECT_EQ(report.mds_xor_gates, mds::default_construction().xor_gates);
  EXPECT_GT(report.mds_depth, 0);
}

TEST(Harden, WorksAfterLoweringToGates) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  const CompiledFsm c = harden(f, d, 3);
  synth::lower_to_gates(*c.module);
  synth::optimize(*c.module);
  sim::Simulator s(*c.module);
  Rng rng(21);
  const auto edges = f.cfg_edges();
  int golden = f.reset_state;
  for (int t = 0; t < 200; ++t) {
    std::vector<CfgEdge> options;
    for (const CfgEdge& e : edges) {
      if (e.from == golden) options.push_back(e);
    }
    const CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
    s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
    s.step();
    golden = e.to;
    EXPECT_EQ(s.get(c.state_wire), c.state_codes[static_cast<std::size_t>(golden)]);
  }
}

class HardenLevels : public ::testing::TestWithParam<int> {};

TEST_P(HardenLevels, FaultFreeWalkAtEveryLevel) {
  const int n = GetParam();
  rtlil::Design d;
  const Fsm f = test::synfi_fsm();
  const CompiledFsm c = harden(f, d, n);
  sim::Simulator s(*c.module);
  Rng rng(static_cast<std::uint64_t>(n));
  const auto edges = f.cfg_edges();
  int golden = f.reset_state;
  for (int t = 0; t < 150; ++t) {
    std::vector<CfgEdge> options;
    for (const CfgEdge& e : edges) {
      if (e.from == golden) options.push_back(e);
    }
    const CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
    s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
    s.eval();
    ASSERT_EQ(s.get(c.alert_wire), 0u);
    s.step();
    golden = e.to;
    ASSERT_EQ(s.get(c.state_wire), c.state_codes[static_cast<std::size_t>(golden)]);
  }
}

INSTANTIATE_TEST_SUITE_P(ProtectionLevels, HardenLevels, ::testing::Values(2, 3, 4));

TEST(Harden, ProtectedOutputFaultRaisesAlert) {
  // §7 extension: with protect_outputs, a fault inside the output network is
  // flagged by the duplicate-and-compare checker; without it, the output
  // corruption is silent (the paper's documented limitation).
  for (const bool protect : {false, true}) {
    rtlil::Design d;
    const Fsm f = test::paper_fsm();
    ScfiConfig config;
    config.protection_level = 2;
    config.protect_outputs = protect;
    const CompiledFsm c = scfi_harden(f, d, config);
    sim::Simulator s(*c.module);
    // Drive a valid edge whose output asserts y0 (S0 --"1---"--> S1).
    s.set_input(c.symbol_input_wire, c.symbol_codes.at("1---"));
    s.eval();
    ASSERT_EQ(s.get("y0"), 1u);
    ASSERT_EQ(s.get(c.alert_wire), 0u);
    // Fault the primary output OR-tree result (the wire driving y0).
    const rtlil::Wire* y0_wire = nullptr;
    for (const rtlil::Wire* w : c.module->wires()) {
      if (w->name().rfind("yor", 0) == 0) y0_wire = w;  // last yor node
    }
    ASSERT_NE(y0_wire, nullptr);
    s.inject(rtlil::SigBit(y0_wire, 0), sim::FaultKind::kTransientFlip);
    s.eval();
    if (protect) {
      EXPECT_EQ(s.get(c.alert_wire), 1u) << "output fault must be detected";
    } else {
      EXPECT_EQ(s.get(c.alert_wire), 0u) << "unprotected lambda is silent";
    }
    s.clear_all_faults();
  }
}

TEST(Harden, EncodedSelectorsAndOutputsCompose) {
  rtlil::Design d;
  const Fsm f = test::synfi_fsm();
  ScfiConfig config;
  config.protection_level = 2;
  config.encoded_selectors = true;
  config.protect_outputs = true;
  const CompiledFsm c = scfi_harden(f, d, config);
  sim::Simulator s(*c.module);
  Rng rng(55);
  const auto edges = f.cfg_edges();
  int golden = f.reset_state;
  for (int t = 0; t < 60; ++t) {
    std::vector<CfgEdge> options;
    for (const CfgEdge& e : edges) {
      if (e.from == golden) options.push_back(e);
    }
    const CfgEdge& e = options[static_cast<std::size_t>(rng.below(options.size()))];
    s.set_input(c.symbol_input_wire, c.symbol_codes.at(e.symbol));
    s.eval();
    ASSERT_EQ(s.get(c.alert_wire), 0u);
    s.step();
    golden = e.to;
    ASSERT_EQ(s.get(c.state_wire), c.state_codes[static_cast<std::size_t>(golden)]);
  }
}

TEST(Pass, ExtractsAndHardens) {
  rtlil::Design d;
  const Fsm f = test::paper_fsm();
  fsm::compile_unprotected(f, d, {.module_name = "victim", .state_codes = {}, .state_width = 0});
  PassOptions options;
  options.config.protection_level = 2;
  const PassResult result = run_scfi_pass(d, "victim", options);
  EXPECT_EQ(result.extracted.num_states(), f.num_states());
  EXPECT_NE(d.module("victim_scfi"), nullptr);
  EXPECT_TRUE(result.hardened.has_error_state);
}

}  // namespace
}  // namespace scfi::core
