// The k-fault threat-model layer: the Sinz cardinality counter the SAT
// back-end builds its exactly-k miters from, the k-fault SYNFI sweep
// against brute-force multi-injection simulation, the paper's distance
// claim (an encoding with minimum distance d tolerates every k < d and
// breaks first at k = d), the clock-glitch fault kind, auto lane
// selection, and the schema-v6 store plumbing that records it all.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "base/error.h"
#include "core/harden.h"
#include "fsm/kiss2.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sat/miter.h"
#include "sat/solver.h"
#include "sim/campaign.h"
#include "sim/netlist_sim.h"
#include "sweep/result_store.h"
#include "synfi/synfi.h"
#include "test_helpers.h"

namespace scfi {
namespace {

using fsm::CompiledFsm;
using fsm::Fsm;

// ---------------------------------------------------------------------------
// CardinalityCounter: the bidirectional Sinz sequential counter.

/// Auxiliary variables the ragged counter matrix materializes: one s_{i,j}
/// per j in [0, min(k_max, n-1)] and i in [j, n).
int expected_counter_vars(int n, int k_max) {
  int vars = 0;
  for (int j = 0; j <= std::min(k_max, n - 1); ++j) vars += n - j;
  return vars;
}

TEST(CardinalityCounter, PinnedCnfShape) {
  // n = 5, k_max = 2: rows j = 0..2 of lengths 5, 4, 3 -> 12 aux vars.
  sat::Solver solver;
  std::vector<sat::Lit> sels;
  for (int i = 0; i < 5; ++i) sels.push_back(solver.new_var());
  const int base = solver.num_vars();
  const sat::CardinalityCounter counter(solver, sels, 2);
  EXPECT_EQ(solver.num_vars() - base, 12);
  EXPECT_EQ(expected_counter_vars(5, 2), 12);
  EXPECT_EQ(counter.k_max(), 2);
  EXPECT_EQ(counter.num_inputs(), 5);
  // Thresholds above the encoded rows (and below 1) are caller bugs.
  EXPECT_NO_THROW(counter.at_least(1));
  EXPECT_NO_THROW(counter.at_least(3));  // one row above k_max is kept
  EXPECT_THROW(counter.at_least(0), LogicBug);
  EXPECT_THROW(counter.at_least(4), LogicBug);
  EXPECT_THROW(counter.assume_exactly(3), LogicBug);

  // k_max >= n - 1 encodes every row once — never more.
  sat::Solver full;
  std::vector<sat::Lit> all;
  for (int i = 0; i < 4; ++i) all.push_back(full.new_var());
  const int full_base = full.num_vars();
  const sat::CardinalityCounter saturated(full, all, 7);
  EXPECT_EQ(full.num_vars() - full_base, expected_counter_vars(4, 7));
  EXPECT_EQ(expected_counter_vars(4, 7), 4 + 3 + 2 + 1);
}

/// Forces the assignment `bits` of `sels` as assumptions and reports
/// whether the solver accepts it under the extra assumption set.
bool assignment_sat(sat::Solver& solver, const std::vector<sat::Lit>& sels,
                    unsigned bits, const std::vector<sat::Lit>& extra) {
  std::vector<sat::Lit> assumptions;
  for (std::size_t i = 0; i < sels.size(); ++i) {
    assumptions.push_back((bits >> i) & 1 ? sels[i] : -sels[i]);
  }
  assumptions.insert(assumptions.end(), extra.begin(), extra.end());
  return solver.solve(assumptions) == sat::Result::kSat;
}

TEST(CardinalityCounter, ExhaustiveModelCountMatchesNaive) {
  // Every assignment of up to 12 selector variables, checked against the
  // popcount ground truth for every threshold: the counter must accept
  // exactly the assignments the naive count accepts — the bidirectional
  // encoding may neither over- nor under-constrain in either direction.
  for (const int n : {3, 6, 12}) {
    sat::Solver solver;
    std::vector<sat::Lit> sels;
    for (int i = 0; i < n; ++i) sels.push_back(solver.new_var());
    const int k_max = std::min(n, 5);
    const sat::CardinalityCounter counter(solver, sels, k_max);
    for (unsigned bits = 0; bits < (1u << n); ++bits) {
      const int pop = __builtin_popcount(bits);
      for (int k = 0; k <= k_max; ++k) {
        EXPECT_EQ(assignment_sat(solver, sels, bits, counter.assume_exactly(k)),
                  pop == k)
            << "n=" << n << " bits=" << bits << " exactly " << k;
        EXPECT_EQ(assignment_sat(solver, sels, bits, counter.assume_at_most(k)),
                  pop <= k)
            << "n=" << n << " bits=" << bits << " at most " << k;
      }
      // The at_least literals are usable directly as assumptions too.
      for (int c = 1; c <= std::min(k_max + 1, n); ++c) {
        EXPECT_EQ(assignment_sat(solver, sels, bits, {counter.at_least(c)}), pop >= c)
            << "n=" << n << " bits=" << bits << " at least " << c;
        EXPECT_EQ(assignment_sat(solver, sels, bits, {-counter.at_least(c)}), pop < c)
            << "n=" << n << " bits=" << bits << " fewer than " << c;
      }
    }
  }
}

TEST(CardinalityCounter, ModelCountsWithFreeSelectors) {
  // With nothing forced, the number of models of exactly-k must be C(n, k):
  // enumerate by blocking clauses.
  sat::Solver solver;
  std::vector<sat::Lit> sels;
  const int n = 6;
  for (int i = 0; i < n; ++i) sels.push_back(solver.new_var());
  const sat::CardinalityCounter counter(solver, sels, n);
  const int binomial[7] = {1, 6, 15, 20, 15, 6, 1};
  for (int k = 0; k <= n; ++k) {
    sat::Solver fresh;
    std::vector<sat::Lit> fs;
    for (int i = 0; i < n; ++i) fs.push_back(fresh.new_var());
    const sat::CardinalityCounter fc(fresh, fs, n);
    const std::vector<sat::Lit> exactly = fc.assume_exactly(k);
    int models = 0;
    while (fresh.solve(exactly) == sat::Result::kSat) {
      ++models;
      ASSERT_LE(models, binomial[k]) << "k=" << k;
      std::vector<sat::Lit> blocking;
      for (const sat::Lit s : fs) blocking.push_back(fresh.value(s) ? -s : s);
      fresh.add_clause(blocking);
    }
    EXPECT_EQ(models, binomial[k]) << "k=" << k;
  }
}

// ---------------------------------------------------------------------------
// k-fault SYNFI: brute-force combination sweep vs the cardinality miter.

/// The handshake corpus machine hardened at `level` — small enough that a
/// whole-region k = 2 sweep (C(75, 2) x 8 edges) takes milliseconds.
CompiledFsm handshake_variant(rtlil::Design& design, int level) {
  std::FILE* f = std::fopen("bench/corpus/handshake.kiss2", "rb");
  if (f == nullptr) {
    // ctest may run from the build directory.
    f = std::fopen("../bench/corpus/handshake.kiss2", "rb");
  }
  EXPECT_NE(f, nullptr) << "bench/corpus/handshake.kiss2 not found";
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  const Fsm fsm = fsm::parse_kiss2(text, "handshake");
  core::ScfiConfig config;
  config.protection_level = level;
  return core::scfi_harden(fsm, design, config);
}

Fsm handshake_fsm() {
  rtlil::Design scratch;
  std::FILE* f = std::fopen("bench/corpus/handshake.kiss2", "rb");
  if (f == nullptr) f = std::fopen("../bench/corpus/handshake.kiss2", "rb");
  EXPECT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  return fsm::parse_kiss2(text, "handshake");
}

TEST(KFaultSynfi, SimCombinationsAgreeWithSatParticipation) {
  // The exhaustive back-end enumerates C(sites, 2) x edges double
  // injections; the SAT back-end asks, per (site, edge), whether some
  // exactly-2 fault set including the site is exploitable. The *site sets*
  // they surface must be identical: a site participates in an exploitable
  // pair iff some pair containing it simulates as exploitable.
  rtlil::Design d;
  const Fsm f = handshake_fsm();
  const CompiledFsm c = handshake_variant(d, 2);
  synfi::SynfiConfig sim_config;
  sim_config.wire_prefix = "";
  sim_config.faults_k = 2;
  const synfi::SynfiReport sim_report = synfi::analyze(f, c, sim_config);

  synfi::SynfiConfig sat_config = sim_config;
  sat_config.backend = synfi::Backend::kSat;
  const synfi::SynfiReport sat_report = synfi::analyze(f, c, sat_config);

  EXPECT_EQ(sim_report.sites, sat_report.sites);
  EXPECT_GT(sim_report.exploitable, 0);
  EXPECT_GT(sat_report.exploitable, 0);
  const std::set<std::string> sim_sites(sim_report.exploitable_sites.begin(),
                                        sim_report.exploitable_sites.end());
  const std::set<std::string> sat_sites(sat_report.exploitable_sites.begin(),
                                        sat_report.exploitable_sites.end());
  EXPECT_EQ(sim_sites, sat_sites);

  // The rebuild-per-query SAT path answers the same participation queries.
  synfi::SynfiConfig rebuild = sat_config;
  rebuild.sat_incremental = false;
  EXPECT_TRUE(synfi::analyze(f, c, rebuild) == sat_report);
}

TEST(KFaultSynfi, KLargerThanSitesIsEmptySweep) {
  // Asking for more concurrent faults than the region has sites is a
  // well-defined empty sweep, not an error: C(n, k) = 0 for k > n.
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  core::ScfiConfig hc;
  hc.protection_level = 2;
  const CompiledFsm c = core::scfi_harden(f, d, hc);
  synfi::SynfiConfig config;
  config.target = sim::FaultTarget::kStateRegister;
  config.faults_k = 1000;
  const synfi::SynfiReport r = synfi::analyze(f, c, config);
  EXPECT_GT(r.sites, 0);
  EXPECT_EQ(r.injections, 0);
  EXPECT_EQ(r.exploitable, 0);
}

TEST(KFaultSynfi, ReportInvariantAcrossLanesAndThreads) {
  // The k-fault combination stream shards by combination rank; like the
  // k = 1 sweep, every lanes/threads combination must produce the
  // bit-identical report.
  rtlil::Design d;
  const Fsm f = handshake_fsm();
  const CompiledFsm c = handshake_variant(d, 2);
  synfi::SynfiConfig base;
  base.wire_prefix = "";
  base.faults_k = 2;
  const synfi::SynfiReport reference = synfi::analyze(f, c, base);
  for (const int lanes : {1, 64, 128}) {
    for (const int threads : {1, 3}) {
      synfi::SynfiConfig config = base;
      config.lanes = lanes;
      config.threads = threads;
      EXPECT_TRUE(synfi::analyze(f, c, config) == reference)
          << "lanes=" << lanes << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// The distance claim (paper R1/R2): no exploitable set below d, break at d.

TEST(KFaultSynfi, DistanceClaimLevel2) {
  rtlil::Design d;
  const Fsm f = handshake_fsm();
  const CompiledFsm c = handshake_variant(d, 2);
  synfi::Analyzer analyzer(f, c);
  // Default mds_ region: the claim is about the encoded state vector; the
  // whole-module region also covers the unencoded selector network, whose
  // residual single points of failure (§7) are measured separately below.
  synfi::SynfiConfig config;
  config.faults_k = 1;
  EXPECT_EQ(analyzer.run(config).exploitable, 0) << "single fault beat distance 2";
  config.faults_k = 2;
  EXPECT_GT(analyzer.run(config).exploitable, 0) << "distance 2 must break at k = 2";
  EXPECT_EQ(synfi::measured_protection_degree(analyzer, config, 3), 2);
}

TEST(KFaultSynfi, DistanceClaimLevel3) {
  rtlil::Design d;
  const Fsm f = handshake_fsm();
  const CompiledFsm c = handshake_variant(d, 3);
  synfi::Analyzer analyzer(f, c);
  synfi::SynfiConfig config;  // default mds_ region, as in DistanceClaimLevel2
  for (int k = 1; k < 3; ++k) {
    config.faults_k = k;
    EXPECT_EQ(analyzer.run(config).exploitable, 0) << k << " faults beat distance 3";
  }
  config.faults_k = 3;
  EXPECT_GT(analyzer.run(config).exploitable, 0) << "distance 3 must break at k = 3";
  EXPECT_EQ(synfi::measured_protection_degree(analyzer, config, 3), 3);
}

TEST(KFaultSynfi, DistanceClaimZooMdsRegion) {
  // The §6.4 experiment region on a real zoo module: the level-2 diffusion
  // layer of pwrmgr_fsm tolerates every single fault and breaks first at
  // two concurrent faults.
  const ot::OtEntry entry = ot::ot_entry("pwrmgr_fsm");
  rtlil::Design d;
  const CompiledFsm c =
      ot::build_ot_variant(entry, d, ot::Variant::kScfi, 2, "pwrmgr_kfault");
  synfi::Analyzer analyzer(entry.fsm, c);
  synfi::SynfiConfig config;  // default mds_ region
  config.faults_k = 1;
  EXPECT_EQ(analyzer.run(config).exploitable, 0);
  config.faults_k = 2;
  const synfi::SynfiReport broken = analyzer.run(config);
  EXPECT_GT(broken.exploitable, 0);
  EXPECT_EQ(broken.faults_k, 2);
  EXPECT_EQ(synfi::measured_protection_degree(analyzer, config, 2), 2);
}

// ---------------------------------------------------------------------------
// Campaigns: FaultSpec semantics and the clock-glitch kind.

TEST(KFaultCampaign, MultiFaultRunsClassifyEveryRun) {
  rtlil::Design d;
  const Fsm f = test::synfi_fsm();
  core::ScfiConfig hc;
  hc.protection_level = 2;
  const CompiledFsm c = core::scfi_harden(f, d, hc);
  sim::CampaignConfig config;
  config.runs = 400;
  config.cycles = 10;
  config.fault.k = 3;
  config.seed = 11;
  const sim::CampaignResult r = sim::run_campaign(f, c, config);
  EXPECT_EQ(r.runs, 400);
  EXPECT_EQ(r.masked + r.effective(), r.runs);
  // Three concurrent faults must not be gentler than one.
  sim::CampaignConfig single = config;
  single.fault.k = 1;
  const sim::CampaignResult one = sim::run_campaign(f, c, single);
  EXPECT_GE(r.effective(), one.effective());
}

TEST(KFaultCampaign, MultiKindSpecDrawsEveryKind) {
  // A {flip, skip} spec must actually schedule both kinds: its result
  // diverges from both pure-flip and pure-skip campaigns with the same
  // seed (the extra kind draw perturbs the plan stream by design — only
  // single-kind specs promise bit-identity with the historical planner).
  rtlil::Design d;
  const Fsm f = test::synfi_fsm();
  core::ScfiConfig hc;
  hc.protection_level = 2;
  const CompiledFsm c = core::scfi_harden(f, d, hc);
  sim::CampaignConfig mixed;
  mixed.runs = 600;
  mixed.cycles = 12;
  mixed.seed = 23;
  mixed.fault.kinds = {sim::FaultKind::kTransientFlip, sim::FaultKind::kSkipCycle};
  const sim::CampaignResult both = sim::run_campaign(f, c, mixed);
  EXPECT_EQ(both.runs, 600);

  sim::CampaignConfig flips = mixed;
  flips.fault.kinds = {sim::FaultKind::kTransientFlip};
  sim::CampaignConfig skips = mixed;
  skips.fault.kinds = {sim::FaultKind::kSkipCycle};
  const sim::CampaignResult flip_only = sim::run_campaign(f, c, flips);
  const sim::CampaignResult skip_only = sim::run_campaign(f, c, skips);
  EXPECT_FALSE(both == flip_only);
  EXPECT_FALSE(both == skip_only);
}

TEST(KFaultCampaign, SingleFaultInvariantAcrossLanesThreadsPlanners) {
  // The k = 1 acceptance bar: one FaultSpec result, bit-identical for
  // every lanes/threads/planner combination.
  rtlil::Design d;
  const Fsm f = test::synfi_fsm();
  core::ScfiConfig hc;
  hc.protection_level = 2;
  const CompiledFsm c = core::scfi_harden(f, d, hc);
  sim::CampaignConfig base;
  base.runs = 500;
  base.cycles = 12;
  base.seed = 9;
  const sim::CampaignResult reference = sim::run_campaign(f, c, base);
  for (const int lanes : {1, 64, 128}) {
    for (const int threads : {1, 3}) {
      for (const auto planner :
           {sim::CampaignPlanner::kStreaming, sim::CampaignPlanner::kStreamingMaterialized}) {
        sim::CampaignConfig config = base;
        config.lanes = lanes;
        config.threads = threads;
        config.planner = planner;
        EXPECT_TRUE(sim::run_campaign(f, c, config) == reference)
            << "lanes=" << lanes << " threads=" << threads;
      }
    }
  }
}

TEST(Simulator, SkipCycleStallsTheRegisterForOneEdge) {
  using rtlil::Const;
  using rtlil::SigSpec;
  rtlil::Design d;
  rtlil::Module* m = d.add_module("skip");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* q = m->add_output("q", 1);
  const SigSpec reg = m->make_dff(SigSpec(a), Const::from_uint(0, 1));
  m->drive(SigSpec(q), reg);
  sim::Simulator s(*m);
  s.set_input("a", 1);
  s.step();
  EXPECT_EQ(s.get("q"), 1u);
  // Glitch the clock of the FF driving q: the next edge is skipped (the
  // register keeps 1 instead of latching 0), then the FF re-arms.
  s.set_input("a", 0);
  s.inject(reg.bit(0), sim::FaultKind::kSkipCycle);
  EXPECT_EQ(s.pending_skip_ffs(), 1);
  s.step();
  EXPECT_EQ(s.get("q"), 1u);  // held across the skipped edge
  EXPECT_EQ(s.pending_skip_ffs(), 0);
  s.step();
  EXPECT_EQ(s.get("q"), 0u);  // normal latching resumed
}

TEST(Simulator, SkipCycleOnNonRegisterNetIsNoOp) {
  using rtlil::SigSpec;
  rtlil::Design d;
  rtlil::Module* m = d.add_module("skip_noop");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* y = m->add_output("y", 1);
  const SigSpec n = m->make_not(SigSpec(a), "inv");
  m->drive(SigSpec(y), n);
  sim::Simulator s(*m);
  s.set_input("a", 0);
  s.inject(n.bit(0), sim::FaultKind::kSkipCycle);  // a glitch starves a
  EXPECT_EQ(s.pending_skip_ffs(), 0);              // register, not a wire
  s.eval();
  EXPECT_EQ(s.get("y"), 1u);
}

TEST(KFaultSynfi, SatBackendRejectsSkipCycle) {
  rtlil::Design d;
  const Fsm f = test::toggle_fsm();
  core::ScfiConfig hc;
  hc.protection_level = 2;
  const CompiledFsm c = core::scfi_harden(f, d, hc);
  synfi::SynfiConfig config;
  config.backend = synfi::Backend::kSat;
  config.kind = sim::FaultKind::kSkipCycle;
  EXPECT_THROW(synfi::analyze(f, c, config), ScfiError);
  // The exhaustive back-end simulates it fine.
  config.backend = synfi::Backend::kExhaustiveSim;
  config.wire_prefix = "";
  const synfi::SynfiReport r = synfi::analyze(f, c, config);
  EXPECT_GT(r.injections, 0);
}

// ---------------------------------------------------------------------------
// auto_lanes and the store-side threat-model plumbing.

TEST(AutoLanes, BoundedAndMonotonic) {
  // Small modules peak at 128-256 lanes (BENCH_sim.json synfi_best_lanes);
  // every result is a supported lane-block width.
  rtlil::Design d;
  const Fsm tiny = test::toggle_fsm();
  core::ScfiConfig hc;
  hc.protection_level = 2;
  const CompiledFsm small = core::scfi_harden(tiny, d, hc);
  const int small_lanes = synfi::auto_lanes(*small.module);
  EXPECT_EQ(small_lanes, 256) << "a toggle FSM fits the full 256-lane budget";
  for (const auto& name : {"pwrmgr_fsm", "aes_control"}) {
    const ot::OtEntry entry = ot::ot_entry(name);
    rtlil::Design zd;
    const CompiledFsm c = ot::build_ot_variant(entry, zd, ot::Variant::kScfi, 2,
                                               std::string(name) + "_auto_lanes");
    const int lanes = synfi::auto_lanes(*c.module);
    EXPECT_TRUE(lanes == 64 || lanes == 128 || lanes == 256) << name;
    EXPECT_LE(lanes, small_lanes) << name << ": bigger module, narrower block";
  }
}

TEST(ResultStoreKFault, FaultKindSetNamesRoundTrip) {
  using sweep::fault_kinds_name;
  using sweep::fault_kinds_of;
  EXPECT_EQ(fault_kinds_name({sim::FaultKind::kTransientFlip}), "flip");
  EXPECT_EQ(fault_kinds_name({sim::FaultKind::kTransientFlip, sim::FaultKind::kSkipCycle}),
            "flip+skip");
  const std::vector<sim::FaultKind> parsed = fault_kinds_of("flip+skip");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_TRUE(parsed[0] == sim::FaultKind::kTransientFlip);
  EXPECT_TRUE(parsed[1] == sim::FaultKind::kSkipCycle);
  EXPECT_EQ(fault_kinds_name(fault_kinds_of("stuck0+stuck1")), "stuck0+stuck1");
  EXPECT_THROW(fault_kinds_name({}), ScfiError);
  EXPECT_THROW(fault_kinds_of(""), ScfiError);
  EXPECT_THROW(fault_kinds_of("flip+"), ScfiError);
  EXPECT_THROW(fault_kinds_of("flip+warp"), ScfiError);
}

TEST(ResultStoreKFault, ThreatModelEntersTheKeyOnlyWhenWidened) {
  // Pre-v6 keys must stay byte-identical: the |t=/|k= segments appear only
  // when the job departs from the single-fault any-target sweep.
  sweep::SweepJob job;
  job.module = "pwrmgr_fsm";
  EXPECT_EQ(job.key(), "pwrmgr_fsm|scfi|n2|r=mds_|sim|flip");
  job.synfi.faults_k = 2;
  EXPECT_EQ(job.key(), "pwrmgr_fsm|scfi|n2|r=mds_|sim|flip|k=2");
  job.synfi.target = sim::FaultTarget::kStateRegister;
  EXPECT_EQ(job.key(), "pwrmgr_fsm|scfi|n2|r=mds_|sim|flip|t=state|k=2");
  job.synfi.faults_k = 1;
  EXPECT_EQ(job.key(), "pwrmgr_fsm|scfi|n2|r=mds_|sim|flip|t=state");

  sweep::SweepJob campaign;
  campaign.type = sweep::JobType::kCampaign;
  campaign.module = "pwrmgr_fsm";
  campaign.campaign.runs = 100;
  campaign.campaign.cycles = 8;
  campaign.campaign.fault.k = 2;
  campaign.campaign.fault.kinds = {sim::FaultKind::kTransientFlip,
                                   sim::FaultKind::kSkipCycle};
  EXPECT_EQ(campaign.key(), "pwrmgr_fsm|scfi|n2|mc|flip+skip|t=any|runs=100|c=8|f=2|s=1");
}

TEST(ResultStoreKFault, MixedSchemaStoresAreRejectedUntilMigrated) {
  const std::string path = ::testing::TempDir() + "/mixed_schema.jsonl";
  std::remove(path.c_str());

  // One current line and one v5 line in the same store.
  sweep::SweepResult current;
  current.job.module = "pwrmgr_fsm";
  current.report.faults_k = 1;
  sweep::ResultStore::append_line(path, current);
  const std::string v5_line =
      "{\"schema\":5,\"type\":\"synfi\",\"key\":\"aes_control|scfi|n2|r=mds_|sim|flip\","
      "\"source\":\"\",\"module\":\"aes_control\",\"variant\":\"scfi\",\"level\":2,"
      "\"status\":\"ok\",\"region\":\"mds_\",\"include_inputs\":false,\"backend\":\"sim\","
      "\"kind\":\"flip\",\"free_symbol\":false,\"sites\":10,\"injections\":100,"
      "\"exploitable\":0,\"detected\":90,\"masked\":10,\"stalls\":0,"
      "\"exploitable_sites\":[],\"attempts\":1,\"seconds\":0.100000}";
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs((v5_line + "\n").c_str(), f);
  std::fclose(f);

  // load() migrates both records but remembers what the file said...
  const sweep::ResultStore store = sweep::ResultStore::load(path);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.min_schema(), 5);
  EXPECT_EQ(store.max_schema(), 6);
  // ...and verdict-bearing consumers refuse the mix, naming both versions.
  try {
    store.require_uniform_schema("test-store");
    FAIL() << "mixed-schema store accepted";
  } catch (const ScfiError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("v5"), std::string::npos) << what;
    EXPECT_NE(what.find("v6"), std::string::npos) << what;
    EXPECT_NE(what.find("store-compact"), std::string::npos) << what;
  }
  EXPECT_THROW(sweep::ResultStore::compact_file(path), ScfiError);

  // --migrate deliberately rewrites everything at the current version;
  // afterwards the store is uniform and compaction succeeds.
  const auto stats = sweep::ResultStore::compact_file(path, /*migrate=*/true);
  EXPECT_EQ(stats.records, 2u);
  const sweep::ResultStore migrated = sweep::ResultStore::load(path);
  EXPECT_EQ(migrated.min_schema(), 6);
  EXPECT_EQ(migrated.max_schema(), 6);
  EXPECT_NO_THROW(migrated.require_uniform_schema("test-store"));
  EXPECT_NO_THROW(sweep::ResultStore::compact_file(path));

  // A uniform store — even an all-v5 one — passes the check: uniformity,
  // not age, is the property the verdict consumers need.
  const std::string old_path = ::testing::TempDir() + "/uniform_v5.jsonl";
  std::remove(old_path.c_str());
  std::FILE* old_file = std::fopen(old_path.c_str(), "wb");
  ASSERT_NE(old_file, nullptr);
  std::fputs((v5_line + "\n").c_str(), old_file);
  std::fclose(old_file);
  EXPECT_NO_THROW(sweep::ResultStore::load(old_path).require_uniform_schema("old"));
  std::remove(old_path.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace scfi
