// The sweep subsystem contract: the JSONL result-store schema is pinned by
// golden lines (schema v5 — bump ResultStore::kSchemaVersion when it has
// to change; v1..v4 lines migrate on load), load/save/merge/diff
// round-trip, SweepOrchestrator results — SYNFI and Monte-Carlo campaign
// jobs alike, from the zoo or a KISS2 corpus — are bit-identical to direct
// per-module analyze()/run_campaign() for every jobs/threads combination
// with --resume skipping stored ok jobs, failing jobs are isolated into
// failure records (retried on an attempt budget, bounded by a cooperative
// per-job deadline) instead of taking down the fleet, and diff_report
// gates on the configured thresholds (Wilson-interval separation for
// campaign rates, absolute deltas as the low-trial fallback; an ok ->
// failed transition always gates).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "base/error.h"
#include "base/strutil.h"
#include "kiss2_corpus.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sim/campaign.h"
#include "sweep/diff_report.h"
#include "sweep/module_source.h"
#include "sweep/sweep.h"
#include "synfi/synfi.h"

namespace scfi::sweep {
namespace {

/// A store record with every field populated, fixed so the golden line
/// below pins the v1 schema byte for byte.
SweepResult golden_result() {
  SweepResult result;
  result.job.module = "pwrmgr_fsm";
  result.job.variant = "scfi";
  result.job.protection_level = 3;
  result.job.synfi.wire_prefix = "mds_";
  result.job.synfi.backend = synfi::Backend::kSat;
  result.job.synfi.kind = sim::FaultKind::kStuckAt1;
  result.job.synfi.free_symbol = true;
  result.report.sites = 75;
  result.report.injections = 1275;
  result.report.exploitable = 2;
  result.report.detected = 1200;
  result.report.masked = 73;
  result.report.stalls = 1;
  result.report.exploitable_sites = {"mds_x_12[0]", "mds_a_3[1]"};
  result.protection_degree = 1;
  result.seconds = 0.125;
  return result;
}

constexpr const char* kGoldenLine =
    "{\"schema\":6,\"type\":\"synfi\",\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,"
    "\"status\":\"ok\",\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\","
    "\"target\":\"any\",\"faults_k\":1,\"free_symbol\":true,"
    "\"sites\":75,\"injections\":1275,\"exploitable\":2,\"protection_degree\":1,"
    "\"detected\":1200,\"masked\":73,"
    "\"stalls\":1,\"exploitable_sites\":[\"mds_x_12[0]\",\"mds_a_3[1]\"],"
    "\"attempts\":1,\"seconds\":0.125000}";

/// The same record as a schema-v5 line (single-fault threat model: no
/// `faults_k`/`protection_degree`/SYNFI `target` fields); load() must keep
/// accepting these, defaulting the threat model to one any-target fault and
/// deriving the degree from the single-fault verdict.
constexpr const char* kGoldenLineV5 =
    "{\"schema\":5,\"type\":\"synfi\",\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,"
    "\"status\":\"ok\",\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\",\"free_symbol\":true,"
    "\"sites\":75,\"injections\":1275,\"exploitable\":2,\"detected\":1200,\"masked\":73,"
    "\"stalls\":1,\"exploitable_sites\":[\"mds_x_12[0]\",\"mds_a_3[1]\"],"
    "\"attempts\":1,\"seconds\":0.125000}";

/// The same record as a schema-v3 line (pre-status: no `status`/`attempts`
/// fields); load() must keep accepting these and migrate them to ok
/// single-attempt records.
constexpr const char* kGoldenLineV3 =
    "{\"schema\":3,\"type\":\"synfi\",\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,"
    "\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\",\"free_symbol\":true,"
    "\"sites\":75,\"injections\":1275,\"exploitable\":2,\"detected\":1200,\"masked\":73,"
    "\"stalls\":1,\"exploitable_sites\":[\"mds_x_12[0]\",\"mds_a_3[1]\"],"
    "\"seconds\":0.125000}";

/// A failed record: full job identity, no payload counters, the error and
/// attempt count instead.
SweepResult golden_failed_result() {
  SweepResult result;
  result.job.module = "pwrmgr_fsm";
  result.job.variant = "scfi";
  result.job.protection_level = 3;
  result.job.synfi.wire_prefix = "mds_";
  result.job.synfi.backend = synfi::Backend::kSat;
  result.job.synfi.kind = sim::FaultKind::kStuckAt1;
  result.job.synfi.free_symbol = true;
  result.status = JobStatus::kFailed;
  result.error = "synfi: no fault sites match prefix 'mds_'";
  result.attempts = 3;
  result.seconds = 0.125;
  return result;
}

constexpr const char* kGoldenFailedLine =
    "{\"schema\":6,\"type\":\"synfi\",\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,"
    "\"status\":\"failed\",\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\","
    "\"target\":\"any\",\"faults_k\":1,\"free_symbol\":true,"
    "\"error\":\"synfi: no fault sites match prefix 'mds_'\","
    "\"attempts\":3,\"seconds\":0.125000}";

constexpr const char* kGoldenFailedLineV5 =
    "{\"schema\":5,\"type\":\"synfi\",\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,"
    "\"status\":\"failed\",\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\",\"free_symbol\":true,"
    "\"error\":\"synfi: no fault sites match prefix 'mds_'\","
    "\"attempts\":3,\"seconds\":0.125000}";

/// The same record as a schema-v1 line (pre-campaign: no `type` field);
/// load() must keep accepting these and migrate them to SYNFI records.
constexpr const char* kGoldenLineV1 =
    "{\"schema\":1,\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\",\"free_symbol\":true,"
    "\"sites\":75,\"injections\":1275,\"exploitable\":2,\"detected\":1200,\"masked\":73,"
    "\"stalls\":1,\"exploitable_sites\":[\"mds_x_12[0]\",\"mds_a_3[1]\"],"
    "\"seconds\":0.125000}";

/// The same record as a schema-v2 line (pre-corpus: no `source` field);
/// load() must keep accepting these and migrate them to zoo records.
constexpr const char* kGoldenLineV2 =
    "{\"schema\":2,\"type\":\"synfi\",\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\",\"free_symbol\":true,"
    "\"sites\":75,\"injections\":1275,\"exploitable\":2,\"detected\":1200,\"masked\":73,"
    "\"stalls\":1,\"exploitable_sites\":[\"mds_x_12[0]\",\"mds_a_3[1]\"],"
    "\"seconds\":0.125000}";

/// A schema-v2 campaign line: the `type` routing must survive the v3 bump.
constexpr const char* kGoldenCampaignLineV2 =
    "{\"schema\":2,\"type\":\"campaign\","
    "\"key\":\"pwrmgr_fsm|scfi|n2|mc|flip|t=any|runs=2000|c=12|f=1|s=7\","
    "\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":2,\"kind\":\"flip\","
    "\"target\":\"any\",\"runs\":2000,\"cycles\":12,\"faults\":1,\"seed\":7,"
    "\"masked\":1500,\"detected\":480,\"hijacked\":3,\"lagged\":12,\"silent_invalid\":5,"
    "\"seconds\":0.250000}";

/// A campaign record with every field populated, pinning the v2 campaign
/// line byte for byte.
SweepResult golden_campaign_result() {
  SweepResult result;
  result.job.type = JobType::kCampaign;
  result.job.module = "pwrmgr_fsm";
  result.job.variant = "scfi";
  result.job.protection_level = 2;
  result.job.campaign.runs = 2000;
  result.job.campaign.cycles = 12;
  result.job.campaign.fault.k = 1;
  result.job.campaign.seed = 7;
  result.campaign.runs = 2000;
  result.campaign.masked = 1500;
  result.campaign.detected = 480;
  result.campaign.hijacked = 3;
  result.campaign.lagged = 12;
  result.campaign.silent_invalid = 5;
  result.seconds = 0.25;
  return result;
}

constexpr const char* kGoldenCampaignLine =
    "{\"schema\":6,\"type\":\"campaign\","
    "\"key\":\"pwrmgr_fsm|scfi|n2|mc|flip|t=any|runs=2000|c=12|f=1|s=7\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":2,"
    "\"status\":\"ok\",\"kind\":\"flip\","
    "\"target\":\"any\",\"runs\":2000,\"cycles\":12,\"faults\":1,\"seed\":7,"
    "\"masked\":1500,\"detected\":480,\"hijacked\":3,\"lagged\":12,\"silent_invalid\":5,"
    "\"attempts\":1,\"seconds\":0.250000}";

/// The same campaign record as a schema-v5 line (campaign lines carry the
/// threat model since v2 — kind/target/faults — so only the version bumps).
constexpr const char* kGoldenCampaignLineV5 =
    "{\"schema\":5,\"type\":\"campaign\","
    "\"key\":\"pwrmgr_fsm|scfi|n2|mc|flip|t=any|runs=2000|c=12|f=1|s=7\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":2,"
    "\"status\":\"ok\",\"kind\":\"flip\","
    "\"target\":\"any\",\"runs\":2000,\"cycles\":12,\"faults\":1,\"seed\":7,"
    "\"masked\":1500,\"detected\":480,\"hijacked\":3,\"lagged\":12,\"silent_invalid\":5,"
    "\"attempts\":1,\"seconds\":0.250000}";

/// The same campaign record as a schema-v3 line.
constexpr const char* kGoldenCampaignLineV3 =
    "{\"schema\":3,\"type\":\"campaign\","
    "\"key\":\"pwrmgr_fsm|scfi|n2|mc|flip|t=any|runs=2000|c=12|f=1|s=7\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":2,"
    "\"kind\":\"flip\","
    "\"target\":\"any\",\"runs\":2000,\"cycles\":12,\"faults\":1,\"seed\":7,"
    "\"masked\":1500,\"detected\":480,\"hijacked\":3,\"lagged\":12,\"silent_invalid\":5,"
    "\"seconds\":0.250000}";

/// A corpus-sourced campaign record: the source label prefixes the key and
/// is carried in the v3 `source` field.
SweepResult golden_corpus_result() {
  SweepResult result = golden_campaign_result();
  result.job.source = "corpus";
  result.job.module = "mcnc/lion";
  return result;
}

constexpr const char* kGoldenCorpusLine =
    "{\"schema\":6,\"type\":\"campaign\","
    "\"key\":\"corpus::mcnc/lion|scfi|n2|mc|flip|t=any|runs=2000|c=12|f=1|s=7\","
    "\"source\":\"corpus\",\"module\":\"mcnc/lion\",\"variant\":\"scfi\",\"level\":2,"
    "\"status\":\"ok\",\"kind\":\"flip\","
    "\"target\":\"any\",\"runs\":2000,\"cycles\":12,\"faults\":1,\"seed\":7,"
    "\"masked\":1500,\"detected\":480,\"hijacked\":3,\"lagged\":12,\"silent_invalid\":5,"
    "\"attempts\":1,\"seconds\":0.250000}";

constexpr const char* kGoldenCorpusLineV5 =
    "{\"schema\":5,\"type\":\"campaign\","
    "\"key\":\"corpus::mcnc/lion|scfi|n2|mc|flip|t=any|runs=2000|c=12|f=1|s=7\","
    "\"source\":\"corpus\",\"module\":\"mcnc/lion\",\"variant\":\"scfi\",\"level\":2,"
    "\"status\":\"ok\",\"kind\":\"flip\","
    "\"target\":\"any\",\"runs\":2000,\"cycles\":12,\"faults\":1,\"seed\":7,"
    "\"masked\":1500,\"detected\":480,\"hijacked\":3,\"lagged\":12,\"silent_invalid\":5,"
    "\"attempts\":1,\"seconds\":0.250000}";

/// The same corpus record as a schema-v3 line.
constexpr const char* kGoldenCorpusLineV3 =
    "{\"schema\":3,\"type\":\"campaign\","
    "\"key\":\"corpus::mcnc/lion|scfi|n2|mc|flip|t=any|runs=2000|c=12|f=1|s=7\","
    "\"source\":\"corpus\",\"module\":\"mcnc/lion\",\"variant\":\"scfi\",\"level\":2,"
    "\"kind\":\"flip\","
    "\"target\":\"any\",\"runs\":2000,\"cycles\":12,\"faults\":1,\"seed\":7,"
    "\"masked\":1500,\"detected\":480,\"hijacked\":3,\"lagged\":12,\"silent_invalid\":5,"
    "\"seconds\":0.250000}";

/// The ok and failed goldens as schema-v4 lines (pre-fleet: no
/// `worker`/`deadline` fields, no `leased` status); load() must keep
/// accepting these and migrate them to v5 unchanged.
constexpr const char* kGoldenLineV4 =
    "{\"schema\":4,\"type\":\"synfi\",\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,"
    "\"status\":\"ok\",\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\",\"free_symbol\":true,"
    "\"sites\":75,\"injections\":1275,\"exploitable\":2,\"detected\":1200,\"masked\":73,"
    "\"stalls\":1,\"exploitable_sites\":[\"mds_x_12[0]\",\"mds_a_3[1]\"],"
    "\"attempts\":1,\"seconds\":0.125000}";

constexpr const char* kGoldenFailedLineV4 =
    "{\"schema\":4,\"type\":\"synfi\",\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,"
    "\"status\":\"failed\",\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\",\"free_symbol\":true,"
    "\"error\":\"synfi: no fault sites match prefix 'mds_'\","
    "\"attempts\":3,\"seconds\":0.125000}";

constexpr const char* kGoldenCampaignLineV4 =
    "{\"schema\":4,\"type\":\"campaign\","
    "\"key\":\"pwrmgr_fsm|scfi|n2|mc|flip|t=any|runs=2000|c=12|f=1|s=7\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":2,"
    "\"status\":\"ok\",\"kind\":\"flip\","
    "\"target\":\"any\",\"runs\":2000,\"cycles\":12,\"faults\":1,\"seed\":7,"
    "\"masked\":1500,\"detected\":480,\"hijacked\":3,\"lagged\":12,\"silent_invalid\":5,"
    "\"attempts\":1,\"seconds\":0.250000}";

/// A fleet lease record (v5): status `leased` with the holder and its
/// expiry; no payload counters.
SweepResult golden_leased_result() {
  SweepResult result;
  result.job = golden_result().job;
  result.status = JobStatus::kLeased;
  result.worker = "w2.1";
  result.deadline = 1754700000.5;
  result.attempts = 1;
  result.seconds = 0.0;
  return result;
}

constexpr const char* kGoldenLeasedLine =
    "{\"schema\":6,\"type\":\"synfi\",\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,"
    "\"status\":\"leased\",\"worker\":\"w2.1\",\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\","
    "\"target\":\"any\",\"faults_k\":1,\"free_symbol\":true,"
    "\"deadline\":1754700000.500000,"
    "\"attempts\":1,\"seconds\":0.000000}";

constexpr const char* kGoldenLeasedLineV5 =
    "{\"schema\":5,\"type\":\"synfi\",\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"source\":\"\",\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,"
    "\"status\":\"leased\",\"worker\":\"w2.1\",\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\",\"free_symbol\":true,"
    "\"deadline\":1754700000.500000,"
    "\"attempts\":1,\"seconds\":0.000000}";

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ResultStore, GoldenLinePinsSchema) {
  EXPECT_EQ(ResultStore::to_line(golden_result()), kGoldenLine);
  EXPECT_EQ(ResultStore::to_line(golden_campaign_result()), kGoldenCampaignLine);
  EXPECT_EQ(ResultStore::to_line(golden_corpus_result()), kGoldenCorpusLine);
  EXPECT_EQ(ResultStore::to_line(golden_failed_result()), kGoldenFailedLine);
  EXPECT_EQ(ResultStore::to_line(golden_leased_result()), kGoldenLeasedLine);
}

TEST(ResultStore, SchemaV4LinesMigrateToCurrent) {
  // v4 predates the fleet: lines migrate with empty worker / zero deadline
  // (and, like every pre-v6 line, a single-fault any-target threat model)
  // and re-serialize as the current version.
  for (const auto& [v4, v6] : {std::pair{kGoldenLineV4, kGoldenLine},
                               {kGoldenFailedLineV4, kGoldenFailedLine},
                               {kGoldenCampaignLineV4, kGoldenCampaignLine}}) {
    const SweepResult migrated = ResultStore::parse_line(v4);
    EXPECT_EQ(migrated.worker, "");
    EXPECT_EQ(migrated.deadline, 0.0);
    EXPECT_EQ(ResultStore::to_line(migrated), v6);
  }
  // Pre-v5 lines cannot smuggle in the fleet fields (worker/deadline and
  // the leased status are v5).
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":4,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"ok\",\"worker\":\"w0.0\"}"),
               ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":4,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"leased\",\"deadline\":1.0}"),
               ScfiError);
}

TEST(ResultStore, SchemaV5LinesMigrateToKFaultRecords) {
  // v5 predates the k-fault threat model: SYNFI lines migrate with
  // faults_k = 1, an any-target filter, and a protection degree derived
  // from the single-fault verdict (exploitable > 0 -> degree 1); campaign
  // lines carried kind/target/faults since v2, so only the version bumps.
  int schema = 0;
  for (const auto& [v5, v6] : {std::pair{kGoldenLineV5, kGoldenLine},
                               {kGoldenFailedLineV5, kGoldenFailedLine},
                               {kGoldenCampaignLineV5, kGoldenCampaignLine},
                               {kGoldenCorpusLineV5, kGoldenCorpusLine},
                               {kGoldenLeasedLineV5, kGoldenLeasedLine}}) {
    const SweepResult migrated = ResultStore::parse_line(v5, &schema);
    EXPECT_EQ(schema, 5);
    EXPECT_EQ(migrated.job.synfi.faults_k, 1);
    EXPECT_TRUE(migrated.job.synfi.target == sim::FaultTarget::kAny);
    EXPECT_EQ(migrated.job.campaign.fault.k, 1);
    EXPECT_EQ(ResultStore::to_line(migrated), v6);
  }
  // The ok golden has exploitable = 2, so its migrated degree is 1; a
  // clean v5 record migrates to degree 0.
  EXPECT_EQ(ResultStore::parse_line(kGoldenLineV5).protection_degree, 1);
  std::string clean = kGoldenLineV5;
  clean.replace(clean.find("\"exploitable\":2"), 15, "\"exploitable\":0");
  EXPECT_EQ(ResultStore::parse_line(clean).protection_degree, 0);
  // parse_line reports the current version for current lines.
  ResultStore::parse_line(kGoldenLine, &schema);
  EXPECT_EQ(schema, 6);
  // Pre-v6 lines cannot smuggle in the threat-model fields (faults_k,
  // protection_degree, and the SYNFI target are v6).
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":5,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"ok\",\"faults_k\":2}"),
               ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":5,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"ok\",\"protection_degree\":1}"),
               ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":5,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"ok\",\"target\":\"state\"}"),
               ScfiError);
}

TEST(ResultStore, LeasedRecordRoundTripAndValidation) {
  const SweepResult parsed = ResultStore::parse_line(kGoldenLeasedLine);
  EXPECT_TRUE(parsed.status == JobStatus::kLeased);
  EXPECT_EQ(parsed.worker, "w2.1");
  EXPECT_DOUBLE_EQ(parsed.deadline, 1754700000.5);
  EXPECT_EQ(ResultStore::to_line(parsed), kGoldenLeasedLine);

  // Two leases compare equal (protocol traffic, not a verdict) but never
  // equal an ok or failed record.
  SweepResult other = golden_leased_result();
  other.worker = "w0.7";
  other.deadline = 1.0;
  EXPECT_TRUE(reports_equal(parsed, other));
  EXPECT_FALSE(reports_equal(parsed, golden_result()));
  EXPECT_FALSE(reports_equal(parsed, golden_failed_result()));

  // The deadline travels with leases only, and leases must carry one.
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":5,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"ok\",\"deadline\":1.0}"),
               ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":5,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"leased\"}"),
               ScfiError);
  // Only failed records carry an error message.
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":5,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"leased\",\"deadline\":1.0,"
                                       "\"error\":\"boom\"}"),
               ScfiError);
}

TEST(ResultStore, SchemaV3LinesMigrateToOkRecords) {
  // v3 predates job status: lines migrate as ok single-attempt records and
  // re-serialize as the current version, byte for byte.
  for (const auto& [v3, v4] : {std::pair{kGoldenLineV3, kGoldenLine},
                               {kGoldenCampaignLineV3, kGoldenCampaignLine},
                               {kGoldenCorpusLineV3, kGoldenCorpusLine}}) {
    const SweepResult migrated = ResultStore::parse_line(v3);
    EXPECT_TRUE(migrated.status == JobStatus::kOk);
    EXPECT_EQ(migrated.attempts, 1);
    EXPECT_EQ(migrated.error, "");
    EXPECT_EQ(ResultStore::to_line(migrated), v4);
  }
  // Pre-v4 lines cannot smuggle in the status fields (job status is v4).
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":3,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"ok\"}"),
               ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":3,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"attempts\":2}"),
               ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":2,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"error\":\"boom\"}"),
               ScfiError);
  // Malformed v4 status values are rejected, as are zero attempt counts and
  // ok records carrying an error message.
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":4,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"exploded\"}"),
               ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":4,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"attempts\":0}"),
               ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":4,\"type\":\"synfi\",\"module\":\"m\","
                                       "\"status\":\"ok\",\"error\":\"boom\"}"),
               ScfiError);
}

TEST(ResultStore, FailedRecordRoundTripAndEquality) {
  const SweepResult failed = golden_failed_result();
  const SweepResult parsed = ResultStore::parse_line(kGoldenFailedLine);
  EXPECT_TRUE(parsed.status == JobStatus::kFailed);
  EXPECT_EQ(parsed.key(), failed.key());
  EXPECT_EQ(parsed.error, failed.error);
  EXPECT_EQ(parsed.attempts, 3);
  EXPECT_EQ(ResultStore::to_line(parsed), kGoldenFailedLine);

  // Status is part of the verdict: ok vs failed never compare equal, so an
  // old failure record never satisfies a resume or a baseline...
  const SweepResult ok = golden_result();
  EXPECT_FALSE(reports_equal(ok, failed));
  EXPECT_FALSE(reports_equal(failed, ok));
  // ...while two failures compare equal whatever their diagnostics say
  // (error text and attempt count are timing-like noise).
  SweepResult other = failed;
  other.error = "different message";
  other.attempts = 1;
  EXPECT_TRUE(reports_equal(failed, other));

  // diff() surfaces the ok <-> failed flip as a changed key.
  ResultStore left, right;
  left.add(ok);
  right.add(failed);
  EXPECT_EQ(ResultStore::diff(left, right).changed, std::vector<std::string>{ok.key()});
}

TEST(DiffReport, StatusTransitionsGateAsymmetrically) {
  const SweepResult ok = golden_result();
  const SweepResult failed = golden_failed_result();
  ResultStore was_ok, now_failed;
  was_ok.add(ok);
  now_failed.add(failed);

  // ok -> failed is a regression no threshold can wave through, and the
  // render names the error on the REGRESSION line CI greps for.
  const DiffReport broke = diff_report(was_ok, now_failed);
  ASSERT_EQ(broke.changed.size(), 1u);
  EXPECT_TRUE(broke.changed[0].regression);
  EXPECT_TRUE(broke.gate_failed);
  EXPECT_NE(broke.render().find("REGRESSION"), std::string::npos);
  EXPECT_NE(broke.render().find(failed.error), std::string::npos);

  // failed -> ok is a recovery: reported, never gated.
  const DiffReport recovered = diff_report(now_failed, was_ok);
  ASSERT_EQ(recovered.changed.size(), 1u);
  EXPECT_FALSE(recovered.changed[0].regression);
  EXPECT_FALSE(recovered.gate_failed);
  EXPECT_NE(recovered.render().find("recovered"), std::string::npos);

  // failed -> failed is not a change at all.
  SweepResult still_failed = failed;
  still_failed.error = "another message";
  ResultStore later;
  later.add(still_failed);
  EXPECT_TRUE(diff_report(now_failed, later).changed.empty());
}

TEST(ResultStore, CorpusLineRoundTripAndKeyPrefix) {
  const SweepResult expected = golden_corpus_result();
  EXPECT_EQ(expected.key(), "corpus::mcnc/lion|scfi|n2|mc|flip|t=any|runs=2000|c=12|f=1|s=7");
  const SweepResult parsed = ResultStore::parse_line(kGoldenCorpusLine);
  EXPECT_EQ(parsed.job.source, "corpus");
  EXPECT_EQ(parsed.job.module, "mcnc/lion");
  EXPECT_EQ(parsed.key(), expected.key());
  EXPECT_TRUE(reports_equal(parsed, expected));
  EXPECT_EQ(ResultStore::to_line(parsed), kGoldenCorpusLine);
  // The same module name from a different source is a different key: zoo
  // and corpus results never collide in one store.
  SweepResult zoo = expected;
  zoo.job.source = "";
  EXPECT_NE(zoo.key(), expected.key());
}

TEST(ResultStore, SchemaV2LinesMigrateToZooRecords) {
  const SweepResult migrated = ResultStore::parse_line(kGoldenLineV2);
  const SweepResult expected = golden_result();
  EXPECT_EQ(migrated.job.source, "");
  EXPECT_EQ(migrated.key(), expected.key());
  EXPECT_TRUE(migrated.report == expected.report);
  // Re-serializing a migrated record writes the current schema version.
  EXPECT_EQ(ResultStore::to_line(migrated), kGoldenLine);
  // Campaign routing survives the migration too.
  const SweepResult campaign = ResultStore::parse_line(kGoldenCampaignLineV2);
  EXPECT_TRUE(campaign.job.type == JobType::kCampaign);
  EXPECT_EQ(campaign.key(), golden_campaign_result().key());
  EXPECT_EQ(ResultStore::to_line(campaign), kGoldenCampaignLine);
  // A v2 (or v1) line cannot smuggle in a source field (corpora are v3).
  EXPECT_THROW(
      ResultStore::parse_line("{\"schema\":2,\"type\":\"synfi\",\"module\":\"m\","
                              "\"source\":\"corpus\"}"),
      ScfiError);
  EXPECT_THROW(
      ResultStore::parse_line("{\"schema\":1,\"module\":\"m\",\"source\":\"corpus\"}"),
      ScfiError);
}

TEST(ResultStore, CampaignSeedRoundTripsExactly) {
  // Seeds above 2^53 must survive the JSONL round trip bit-exactly — a
  // double-typed parse would silently round the seed and change the
  // recomputed key, breaking --resume and the diff gate.
  SweepResult result = golden_campaign_result();
  result.job.campaign.seed = 9007199254740993ULL;  // 2^53 + 1
  const SweepResult parsed = ResultStore::parse_line(ResultStore::to_line(result));
  EXPECT_EQ(parsed.job.campaign.seed, result.job.campaign.seed);
  EXPECT_EQ(parsed.key(), result.key());
  // Negative or out-of-range seeds are malformed lines, not values to wrap
  // or saturate into a different (silently resumable) key.
  const std::string prefix = "{\"schema\":2,\"type\":\"campaign\",\"module\":\"m\",\"seed\":";
  EXPECT_THROW(ResultStore::parse_line(prefix + "-1}"), ScfiError);
  EXPECT_THROW(ResultStore::parse_line(prefix + "18446744073709551616}"), ScfiError);
  // Count fields are int-bounded: an out-of-range or negative count is a
  // malformed line, not a value to wrap through a double->int cast.
  const std::string count_prefix = "{\"schema\":2,\"type\":\"campaign\",\"module\":\"m\",\"runs\":";
  EXPECT_THROW(ResultStore::parse_line(count_prefix + "9999999999}"), ScfiError);
  EXPECT_THROW(ResultStore::parse_line(count_prefix + "-5}"), ScfiError);
}

TEST(ResultStore, CampaignLineRoundTrip) {
  const SweepResult parsed = ResultStore::parse_line(kGoldenCampaignLine);
  const SweepResult expected = golden_campaign_result();
  EXPECT_EQ(parsed.key(), expected.key());
  EXPECT_TRUE(parsed.job.type == JobType::kCampaign);
  EXPECT_EQ(parsed.job.campaign.runs, expected.job.campaign.runs);
  EXPECT_EQ(parsed.job.campaign.cycles, expected.job.campaign.cycles);
  EXPECT_EQ(parsed.job.campaign.fault.k, expected.job.campaign.fault.k);
  EXPECT_EQ(parsed.job.campaign.seed, expected.job.campaign.seed);
  EXPECT_TRUE(parsed.campaign == expected.campaign);
  EXPECT_TRUE(reports_equal(parsed, expected));
  EXPECT_EQ(ResultStore::to_line(parsed), kGoldenCampaignLine);
}

TEST(ResultStore, SchemaV1LinesMigrateToSynfiRecords) {
  const SweepResult migrated = ResultStore::parse_line(kGoldenLineV1);
  const SweepResult expected = golden_result();
  EXPECT_TRUE(migrated.job.type == JobType::kSynfi);
  EXPECT_EQ(migrated.key(), expected.key());
  EXPECT_TRUE(migrated.report == expected.report);
  // Re-serializing a migrated record writes the current schema version.
  EXPECT_EQ(ResultStore::to_line(migrated), kGoldenLine);
  // A v1 line cannot smuggle in a campaign record (the type postdates v1).
  EXPECT_THROW(
      ResultStore::parse_line("{\"schema\":1,\"type\":\"campaign\",\"module\":\"m\"}"),
      ScfiError);
}

TEST(ResultStore, ParseRoundTrip) {
  const SweepResult parsed = ResultStore::parse_line(kGoldenLine);
  const SweepResult expected = golden_result();
  EXPECT_EQ(parsed.key(), expected.key());
  EXPECT_EQ(parsed.job.module, expected.job.module);
  EXPECT_EQ(parsed.job.protection_level, expected.job.protection_level);
  EXPECT_EQ(parsed.job.synfi.wire_prefix, expected.job.synfi.wire_prefix);
  EXPECT_TRUE(parsed.job.synfi.backend == expected.job.synfi.backend);
  EXPECT_TRUE(parsed.job.synfi.kind == expected.job.synfi.kind);
  EXPECT_EQ(parsed.job.synfi.free_symbol, expected.job.synfi.free_symbol);
  EXPECT_TRUE(parsed.report == expected.report);
  EXPECT_DOUBLE_EQ(parsed.seconds, expected.seconds);
  // And serializing the parse reproduces the line exactly.
  EXPECT_EQ(ResultStore::to_line(parsed), kGoldenLine);
}

TEST(ResultStore, ParseRejectsBadInput) {
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":99,\"module\":\"m\"}"), ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"module\":\"m\"}"), ScfiError);  // no schema
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":1}"), ScfiError);      // no module
  EXPECT_THROW(ResultStore::parse_line("not json"), ScfiError);
  // Malformed \u escapes surface as ScfiError (with file:line context from
  // load()), never as a bare std::invalid_argument.
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":1,\"module\":\"\\uzzzz\"}"), ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":1,\"module\":\"\\u00x1\"}"), ScfiError);
}

TEST(ResultStore, EscapedStringsRoundTrip) {
  SweepResult result = golden_result();
  result.job.module = "odd\"name\\with\tescapes";
  result.report.exploitable_sites = {"wire\"x[0]"};
  const std::string line = ResultStore::to_line(result);
  const SweepResult parsed = ResultStore::parse_line(line);
  EXPECT_EQ(parsed.job.module, result.job.module);
  EXPECT_EQ(parsed.report.exploitable_sites, result.report.exploitable_sites);
}

TEST(ResultStore, SaveLoadAppendDedupe) {
  const std::string path = temp_path("store_roundtrip.jsonl");
  std::remove(path.c_str());

  ResultStore store;
  SweepResult a = golden_result();
  SweepResult b = golden_result();
  b.job.module = "aes_control";
  store.add(a);
  store.add(b);
  store.save(path);

  // Appending a NEWER record for a's key: on load, the later line wins.
  a.report.exploitable = 7;
  ResultStore::append_line(path, a);

  const ResultStore loaded = ResultStore::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  ASSERT_TRUE(loaded.contains(a.key()));
  EXPECT_EQ(loaded.find(a.key())->report.exploitable, 7);
  EXPECT_TRUE(loaded.contains(b.key()));

  // Missing file -> empty store.
  EXPECT_EQ(ResultStore::load(temp_path("does_not_exist.jsonl")).size(), 0u);
}

TEST(ResultStore, TornTailRecoveryIsOptInAndLastLineOnly) {
  // A SIGKILL between append_line's write and its fsync leaves a torn final
  // line — exactly what truncating a complete store mid-record simulates.
  const std::string path = temp_path("store_torn_tail.jsonl");
  std::remove(path.c_str());
  const SweepResult a = golden_result();
  SweepResult b = golden_result();
  b.job.module = "aes_control";
  ResultStore::append_line(path, a);
  ResultStore::append_line(path, b);
  {
    const std::string full = ResultStore::to_line(b);
    std::ofstream out(path, std::ios::trunc);
    out << ResultStore::to_line(a) << "\n" << full.substr(0, full.size() / 2);
  }

  // Strict load (the default, and what sweep-diff uses) still throws with
  // path:line context; recovery salvages every complete record.
  EXPECT_THROW(ResultStore::load(path), ScfiError);
  try {
    ResultStore::load(path);
    FAIL() << "strict load accepted a torn line";
  } catch (const ScfiError& e) {
    EXPECT_NE(std::string(e.what()).find(path + ":2"), std::string::npos);
  }
  const ResultStore recovered = ResultStore::load(path, /*recover_torn_tail=*/true);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_TRUE(recovered.contains(a.key()));

  // Corruption anywhere BEFORE the last line is not a torn tail — no crash
  // produces it — so even recovery mode refuses the file.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"schema\":3,\"type\":\"synfi\",\"module\":\"m\"" << "\n"
        << ResultStore::to_line(a) << "\n";
  }
  EXPECT_THROW(ResultStore::load(path, /*recover_torn_tail=*/true), ScfiError);

  // A store that is ONLY a torn line recovers to empty rather than failing.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"schema\":3,\"ty";
  }
  EXPECT_EQ(ResultStore::load(path, /*recover_torn_tail=*/true).size(), 0u);
}

TEST(ResultStore, SaveIsAtomicAndCompactsLatestWins) {
  // An append-heavy store (key re-appended, torn tail) compacts through
  // recovery-load + save to one line per key, and save never leaves its
  // temp file behind.
  const std::string path = temp_path("store_compact.jsonl");
  std::remove(path.c_str());
  SweepResult a = golden_result();
  ResultStore::append_line(path, a);
  a.report.exploitable = 9;
  ResultStore::append_line(path, a);
  SweepResult b = golden_result();
  b.job.module = "aes_control";
  ResultStore::append_line(path, b);
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"schema\":3,\"torn";
  }

  ResultStore store = ResultStore::load(path, /*recover_torn_tail=*/true);
  ASSERT_EQ(store.size(), 2u);
  store.save(path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  std::ifstream in(path);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2u);
  const ResultStore reloaded = ResultStore::load(path);  // strict: no torn tail left
  ASSERT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.find(a.key())->report.exploitable, 9);
  EXPECT_TRUE(reloaded.contains(b.key()));

  // Saving over a live store replaces it atomically — the target keeps its
  // old contents if the temp write fails (unwritable directory).
  ResultStore fresh;
  fresh.add(b);
  EXPECT_THROW(fresh.save("/no/such/dir/store.jsonl"), ScfiError);
}

TEST(ResultStore, CompactFileRewritesLatestWinsAndReportsStats) {
  const std::string path = temp_path("compact_stats.jsonl");
  std::filesystem::remove(path);
  SweepResult a = golden_result();
  ResultStore::append_line(path, a);
  a.report.exploitable = 9;
  ResultStore::append_line(path, a);
  ResultStore::append_line(path, golden_campaign_result());
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"schema\":5,\"torn";  // crash-shaped torn tail: salvaged, not fatal
  }

  const ResultStore::CompactStats stats = ResultStore::compact_file(path);
  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.records, 2u);
  const ResultStore store = ResultStore::load(path);  // strict reload passes
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.find(a.key())->report.exploitable, 9);
}

TEST(ResultStore, CompactFileFailsLoudlyOnMissingOrEmptyStore) {
  // A missing store is an error naming the path and the reason — not a
  // silently created empty file.
  const std::string missing = temp_path("compact_missing.jsonl");
  std::filesystem::remove(missing);
  try {
    ResultStore::compact_file(missing);
    FAIL() << "compact_file must throw on a missing store";
  } catch (const ScfiError& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("no such store"), std::string::npos);
  }
  EXPECT_FALSE(std::filesystem::exists(missing));

  // An empty (or blank-line-only) store is equally a caller mistake.
  const std::string empty = temp_path("compact_empty.jsonl");
  {
    std::ofstream out(empty, std::ios::trunc);
    out << "\n  \n";
  }
  try {
    ResultStore::compact_file(empty);
    FAIL() << "compact_file must throw on an empty store";
  } catch (const ScfiError& e) {
    EXPECT_NE(std::string(e.what()).find(empty), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos);
  }

  // A store whose only line is torn holds no complete records: also loud.
  const std::string torn = temp_path("compact_torn_only.jsonl");
  {
    std::ofstream out(torn, std::ios::trunc);
    out << "{\"schema\":5,\"torn";
  }
  EXPECT_THROW(ResultStore::compact_file(torn), ScfiError);
}

TEST(ResultStore, ConcurrentForkedAppendsNeverTearOrInterleave) {
  // Two REAL processes hammering one store through the O_APPEND append
  // path: every line must parse strictly (no torn or interleaved bytes),
  // no append may be lost, and the shared key must resolve latest-wins to
  // some process's final write — the exact guarantee the fleet's lease
  // protocol is built on.
  const std::string path = temp_path("forked_appends.jsonl");
  std::filesystem::remove(path);
  constexpr int kAppendsPerProcess = 200;

  std::vector<pid_t> children;
  for (int p = 1; p <= 2; ++p) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: interleave private-key and shared-key appends. exploitable
      // encodes (process, sequence) so the parent can check freshness.
      for (int i = 0; i < kAppendsPerProcess; ++i) {
        SweepResult own = golden_result();
        own.job.module = "proc" + std::to_string(p);
        own.report.exploitable = 1000 * p + i;
        SweepResult shared = golden_result();
        shared.report.exploitable = 1000 * p + i;
        ResultStore::append_line(path, own);
        ResultStore::append_line(path, shared);
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  std::size_t lines = 0;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      EXPECT_FALSE(line.empty());
      ++lines;
    }
  }
  EXPECT_EQ(lines, 2u * 2u * kAppendsPerProcess);  // nothing lost, nothing glued

  const ResultStore store = ResultStore::load(path);  // strict: all lines intact
  ASSERT_EQ(store.size(), 3u);  // proc1 + proc2 + the shared key
  SweepResult probe = golden_result();
  probe.job.module = "proc1";
  EXPECT_EQ(store.find(probe.key())->report.exploitable, 1000 + kAppendsPerProcess - 1);
  probe.job.module = "proc2";
  EXPECT_EQ(store.find(probe.key())->report.exploitable, 2000 + kAppendsPerProcess - 1);
  // The shared key holds SOME process's final write: O_APPEND makes the
  // race a total order whose winner is the last full record.
  const std::int64_t last = store.find(golden_result().key())->report.exploitable;
  EXPECT_TRUE(last == 1000 + kAppendsPerProcess - 1 || last == 2000 + kAppendsPerProcess - 1)
      << "shared key resolved to a non-final write: " << last;
}

TEST(ResultStore, MergeAndDiff) {
  SweepResult a = golden_result();
  SweepResult b = golden_result();
  b.job.module = "aes_control";
  SweepResult c = golden_result();
  c.job.module = "i2c_fsm";

  ResultStore left;
  left.add(a);
  left.add(b);
  ResultStore right;
  SweepResult b2 = b;
  b2.report.exploitable += 5;
  b2.seconds = 99.0;  // timing must NOT count as a change
  right.add(b2);
  right.add(c);

  const ResultStore::Diff diff = ResultStore::diff(left, right);
  EXPECT_EQ(diff.only_left, std::vector<std::string>{a.key()});
  EXPECT_EQ(diff.only_right, std::vector<std::string>{c.key()});
  EXPECT_EQ(diff.changed, std::vector<std::string>{b.key()});
  EXPECT_FALSE(diff.empty());

  ResultStore merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.find(b.key())->report.exploitable, b2.report.exploitable);
  // Same-timing stores with equal reports diff empty.
  EXPECT_TRUE(ResultStore::diff(merged, merged).empty());
}

TEST(ResultStore, CampaignDiffIgnoresTiming) {
  SweepResult base = golden_campaign_result();
  ResultStore left;
  left.add(base);

  // Timing-only movement is not a change.
  SweepResult same = base;
  same.seconds = 42.0;
  ResultStore right_same;
  right_same.add(same);
  EXPECT_TRUE(ResultStore::diff(left, right_same).empty());

  // A verdict movement is.
  SweepResult moved = base;
  moved.campaign.hijacked += 1;
  moved.campaign.masked -= 1;
  ResultStore right_moved;
  right_moved.add(moved);
  const ResultStore::Diff diff = ResultStore::diff(left, right_moved);
  EXPECT_EQ(diff.changed, std::vector<std::string>{base.key()});
}

TEST(DiffReport, GatesOnConfiguredThresholds) {
  const SweepResult synfi_base = golden_result();
  const SweepResult campaign_base = golden_campaign_result();
  ResultStore baseline;
  baseline.add(synfi_base);
  baseline.add(campaign_base);

  // One new exploitable injection + a hijack-rate jump far outside the
  // baseline's Wilson interval (3/2000 [0.05%, 0.44%] -> 103/2000, whose
  // lower bound 4.26% clears it).
  SweepResult synfi_cand = synfi_base;
  synfi_cand.report.exploitable += 1;
  SweepResult campaign_cand = campaign_base;
  campaign_cand.campaign.hijacked += 100;
  campaign_cand.campaign.masked -= 100;
  ResultStore candidate;
  candidate.add(synfi_cand);
  candidate.add(campaign_cand);

  // Default thresholds: any worsening beyond sampling noise gates.
  const DiffReport strict = diff_report(baseline, candidate);
  ASSERT_EQ(strict.changed.size(), 2u);
  EXPECT_EQ(strict.regressions, 2);
  EXPECT_TRUE(strict.gate_failed);
  EXPECT_NE(strict.render().find("REGRESSION"), std::string::npos);

  // Loose thresholds: the same movement is reported but does not gate (the
  // allowances are on the interval separation: hijack ~3.8pp, detection
  // ~10.9pp here).
  DiffThresholds loose;
  loose.max_exploitable_increase = 1;
  loose.max_hijack_rate_increase = 0.05;
  loose.max_detection_rate_drop = 0.12;
  const DiffReport lenient = diff_report(baseline, candidate, loose);
  EXPECT_EQ(lenient.changed.size(), 2u);
  EXPECT_EQ(lenient.regressions, 0);
  EXPECT_FALSE(lenient.gate_failed);

  // A detection-rate drop gates independently of the hijack rate
  // (480/500 [93.9%, 97.4%] -> 400/500 [76.3%, 83.3%]: disjoint).
  SweepResult det_drop = campaign_base;
  det_drop.campaign.detected -= 80;
  det_drop.campaign.lagged += 80;
  ResultStore det_candidate;
  det_candidate.add(synfi_base);
  det_candidate.add(det_drop);
  const DiffReport det_report = diff_report(baseline, det_candidate);
  EXPECT_EQ(det_report.regressions, 1);

  // Improvements never gate.
  SweepResult better = synfi_base;
  better.report.exploitable -= 1;
  better.report.detected += 1;
  ResultStore improved;
  improved.add(better);
  improved.add(campaign_base);
  const DiffReport improvement = diff_report(baseline, improved);
  EXPECT_EQ(improvement.changed.size(), 1u);
  EXPECT_FALSE(improvement.gate_failed);

  // Removed keys gate only when asked; added keys never do.
  ResultStore subset;
  subset.add(campaign_base);
  EXPECT_FALSE(diff_report(baseline, subset).gate_failed);
  DiffThresholds coverage;
  coverage.fail_on_removed = true;
  const DiffReport removed = diff_report(baseline, subset, coverage);
  EXPECT_TRUE(removed.gate_failed);
  EXPECT_EQ(removed.removed, std::vector<std::string>{synfi_base.key()});
  // A gating removal must surface on the REGRESSION lines CI greps for,
  // not only in the exit code.
  EXPECT_NE(removed.render().find("REGRESSION"), std::string::npos);
  EXPECT_EQ(diff_report(baseline, subset).render().find("REGRESSION"), std::string::npos);
  EXPECT_FALSE(diff_report(subset, baseline, coverage).gate_failed);  // additions OK
}

TEST(WilsonInterval, ClosedFormValuesPinned) {
  // Zero trials: vacuous interval — no information, can never gate.
  const WilsonInterval none = wilson_interval(0, 0, 1.96);
  EXPECT_DOUBLE_EQ(none.lower, 0.0);
  EXPECT_DOUBLE_EQ(none.upper, 1.0);
  // Known closed-form values (z = 1.96).
  const WilsonInterval zero = wilson_interval(0, 100, 1.96);
  EXPECT_NEAR(zero.lower, 0.0, 1e-9);
  EXPECT_NEAR(zero.upper, 0.036994807, 1e-8);
  const WilsonInterval one_in_ten = wilson_interval(1, 10, 1.96);
  EXPECT_NEAR(one_in_ten.lower, 0.017875750, 1e-8);
  EXPECT_NEAR(one_in_ten.upper, 0.404156385, 1e-8);
  const WilsonInterval half = wilson_interval(50, 100, 1.96);
  EXPECT_NEAR(half.lower, 0.403829829, 1e-8);
  EXPECT_NEAR(half.upper, 0.596170171, 1e-8);
  // The interval is symmetric under success/failure exchange.
  EXPECT_NEAR(half.lower + half.upper, 1.0, 1e-12);
  const WilsonInterval rare = wilson_interval(5, 2000, 1.96);
  EXPECT_NEAR(rare.lower, 0.001068293, 1e-8);
  EXPECT_NEAR(rare.upper, 0.005839239, 1e-8);
  // z = 0 collapses to the point estimate; bounds stay clamped to [0, 1].
  const WilsonInterval point = wilson_interval(5, 2000, 0.0);
  EXPECT_NEAR(point.lower, 0.0025, 1e-12);
  EXPECT_NEAR(point.upper, 0.0025, 1e-12);
  EXPECT_THROW(wilson_interval(5, 2, 1.96), ScfiError);   // successes > trials
  EXPECT_THROW(wilson_interval(-1, 2, 1.96), ScfiError);  // negative count
}

TEST(DiffReport, WilsonGatingAbsorbsSamplingNoise) {
  // 3/2000 -> 12/2000 hijacks: a 4x point-estimate jump, but the intervals
  // [0.05%, 0.44%] and [0.34%, 1.05%] overlap — Monte-Carlo noise, not a
  // provable regression. The absolute gate (wilson_z = 0) fails it, the
  // default Wilson gate does not.
  const SweepResult base = golden_campaign_result();  // hijacked = 3, runs = 2000
  SweepResult cand = base;
  cand.campaign.hijacked += 9;
  cand.campaign.masked -= 9;
  ResultStore left, right;
  left.add(base);
  right.add(cand);

  const DiffReport wilson = diff_report(left, right);
  ASSERT_EQ(wilson.changed.size(), 1u);
  EXPECT_TRUE(wilson.changed[0].hijack_wilson);
  EXPECT_TRUE(wilson.changed[0].detection_wilson);
  EXPECT_FALSE(wilson.changed[0].regression);
  EXPECT_FALSE(wilson.gate_failed);
  EXPECT_NEAR(wilson.changed[0].base_hijack.upper, 0.004401112, 1e-8);
  EXPECT_NEAR(wilson.changed[0].cand_hijack.lower, 0.003435560, 1e-8);

  DiffThresholds absolute;
  absolute.wilson_z = 0.0;
  const DiffReport raw = diff_report(left, right, absolute);
  ASSERT_EQ(raw.changed.size(), 1u);
  EXPECT_FALSE(raw.changed[0].hijack_wilson);
  EXPECT_FALSE(raw.changed[0].detection_wilson);
  EXPECT_TRUE(raw.changed[0].regression);
  EXPECT_TRUE(raw.gate_failed);
  EXPECT_NE(raw.changed[0].note.find("absolute gate"), std::string::npos);
}

TEST(DiffReport, RatesGateIndependentlyWhenTrialCountsDiverge) {
  // 2000 runs but only ~10 effective faults: the hijack rate has enough
  // trials for Wilson, the detection rate does not — it falls back to the
  // absolute threshold independently, and a 1-count detection drop gates
  // even while the hijack movement is absorbed as noise.
  SweepResult base = golden_campaign_result();
  base.campaign.masked = 1990;
  base.campaign.detected = 6;
  base.campaign.hijacked = 2;
  base.campaign.lagged = 1;
  base.campaign.silent_invalid = 1;  // effective = 10
  SweepResult cand = base;
  cand.campaign.detected = 5;
  cand.campaign.lagged = 2;  // detection 6/10 -> 5/10
  cand.campaign.hijacked = 3;
  cand.campaign.masked = 1989;  // hijack 2/2000 -> 3/2000: inside the band
  ResultStore left, right;
  left.add(base);
  right.add(cand);
  const DiffReport report = diff_report(left, right);
  ASSERT_EQ(report.changed.size(), 1u);
  EXPECT_TRUE(report.changed[0].hijack_wilson);
  EXPECT_FALSE(report.changed[0].detection_wilson);
  EXPECT_TRUE(report.changed[0].regression);
  EXPECT_NE(report.changed[0].note.find("absolute gate"), std::string::npos);
}

TEST(DiffReport, LowTrialKeysFallBackToAbsoluteThresholds) {
  // 20 runs is below wilson_min_trials: the interval would span most of
  // [0, 1] and wave any regression through, so the absolute thresholds
  // (default: any increase) decide instead.
  SweepResult base = golden_campaign_result();
  base.job.campaign.runs = 20;
  base.campaign.runs = 20;
  base.campaign.masked = 20;
  base.campaign.detected = 0;
  base.campaign.hijacked = 0;
  base.campaign.lagged = 0;
  base.campaign.silent_invalid = 0;
  SweepResult cand = base;
  cand.campaign.hijacked = 3;
  cand.campaign.masked = 17;
  ResultStore left, right;
  left.add(base);
  right.add(cand);
  const DiffReport report = diff_report(left, right);
  ASSERT_EQ(report.changed.size(), 1u);
  EXPECT_FALSE(report.changed[0].hijack_wilson);
  EXPECT_TRUE(report.changed[0].regression);

  // Raising the trial floor above both sides of a large-sample pair forces
  // the same fallback there too.
  DiffThresholds high_floor;
  high_floor.wilson_min_trials = 1'000'000;
  const SweepResult big_base = golden_campaign_result();
  SweepResult big_cand = big_base;
  big_cand.campaign.hijacked += 1;
  big_cand.campaign.masked -= 1;
  ResultStore bl, br;
  bl.add(big_base);
  br.add(big_cand);
  EXPECT_FALSE(diff_report(bl, br).gate_failed);  // Wilson: noise
  EXPECT_TRUE(diff_report(bl, br, high_floor).gate_failed);  // absolute: any increase
}

TEST(SweepJobs, ExpandCampaignMatrix) {
  sim::CampaignConfig flip;
  flip.runs = 500;
  flip.cycles = 10;
  sim::CampaignConfig stuck = flip;
  stuck.fault.kinds = {sim::FaultKind::kStuckAt1};
  const std::vector<SweepJob> jobs =
      expand_campaign_jobs("pwrmgr_fsm,i2c*", {2, 3}, {flip, stuck});
  ASSERT_EQ(jobs.size(), 8u);  // 2 modules x 2 levels x 2 configs
  EXPECT_EQ(jobs[0].key(), "i2c_fsm|scfi|n2|mc|flip|t=any|runs=500|c=10|f=1|s=1");
  EXPECT_EQ(jobs[7].key(), "pwrmgr_fsm|scfi|n3|mc|stuck1|t=any|runs=500|c=10|f=1|s=1");
  for (const SweepJob& job : jobs) EXPECT_TRUE(job.type == JobType::kCampaign);
  const std::vector<SweepJob> raw =
      expand_campaign_jobs("pwrmgr_fsm", {2}, {flip}, "unprotected");
  EXPECT_EQ(raw[0].key(), "pwrmgr_fsm|unprotected|n2|mc|flip|t=any|runs=500|c=10|f=1|s=1");
  EXPECT_THROW(expand_campaign_jobs("no_such_module*", {2}, {flip}), ScfiError);
  EXPECT_THROW(expand_campaign_jobs("pwrmgr_fsm", {2}, {}), ScfiError);
}

TEST(SweepJobs, ExpandMatrixAndGlobs) {
  synfi::SynfiConfig mds;
  synfi::SynfiConfig whole;
  whole.wire_prefix = "";
  const std::vector<SweepJob> jobs =
      expand_jobs("pwrmgr_fsm,i2c*", {2, 3}, {mds, whole});
  ASSERT_EQ(jobs.size(), 8u);  // 2 modules x 2 levels x 2 configs
  EXPECT_EQ(jobs[0].key(), "i2c_fsm|scfi|n2|r=mds_|sim|flip");
  EXPECT_EQ(jobs[7].key(), "pwrmgr_fsm|scfi|n3|r=|sim|flip");
  EXPECT_THROW(expand_jobs("no_such_module*", {2}, {mds}), ScfiError);
  EXPECT_THROW(expand_jobs("pwrmgr_fsm", {}, {mds}), ScfiError);
}

/// Writes a throwaway corpus tree: two parse-clean machines (one nested, to
/// exercise recursive discovery), one malformed file, and one non-.kiss2
/// file that must be ignored.
std::string write_test_corpus(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / name;
  fs::remove_all(root);
  fs::create_directories(root / "sub");
  const auto write = [](const fs::path& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
  };
  write(root / "lion.kiss2", std::string(test::kLion));
  write(root / "sub" / "train.kiss2", std::string(test::kTrain4));
  write(root / "bad.kiss2", ".i 2\n.o 1\nnot a transition\n.e\n");
  write(root / "notes.txt", "not a kiss2 file\n");
  return root.generic_string();
}

TEST(ModuleSource, CorpusDiscoveryGlobsAndErrors) {
  const std::string dir = write_test_corpus("corpus_discovery");
  const Kiss2CorpusSource corpus(dir);
  EXPECT_EQ(corpus.label(), "corpus_discovery");
  ASSERT_EQ(corpus.size(), 2u);
  // Parse failures are loud per-module records, not aborts.
  ASSERT_EQ(corpus.errors().size(), 1u);
  EXPECT_EQ(corpus.errors()[0].module, "bad");
  EXPECT_NE(corpus.errors()[0].message.find("kiss2"), std::string::npos);

  // Name-sorted discovery; nested files keep their relative path as name.
  const std::vector<ot::OtEntry> all = corpus.modules("*");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "lion");
  EXPECT_EQ(all[1].name, "sub/train");
  EXPECT_FALSE(all[0].datapath);  // bare FSM: no datapath builder

  EXPECT_EQ(corpus.modules("sub/*").size(), 1u);
  EXPECT_EQ(corpus.modules("lion,sub/train").size(), 2u);
  EXPECT_EQ(corpus.modules("no_such*").size(), 0u);
  EXPECT_EQ(corpus.module("lion").fsm.num_states(), 4);
  EXPECT_THROW(corpus.module("bad"), ScfiError);
  EXPECT_THROW(Kiss2CorpusSource("/no/such/dir"), ScfiError);

  // An explicit label overrides the directory-derived one, and a trailing
  // slash (shell tab-completion) still derives the base name.
  EXPECT_EQ(Kiss2CorpusSource(dir, "mcnc").label(), "mcnc");
  EXPECT_EQ(Kiss2CorpusSource(dir + "/").label(), "corpus_discovery");
}

TEST(SweepJobs, ExpandFromCorpusCarriesSourceLabel) {
  const std::string dir = write_test_corpus("corpus_expand");
  const Kiss2CorpusSource corpus(dir, "mcnc");
  synfi::SynfiConfig flip;
  const std::vector<SweepJob> jobs = expand_jobs(corpus, "*", {2}, {flip});
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].key(), "mcnc::lion|scfi|n2|r=mds_|sim|flip");
  EXPECT_EQ(jobs[1].key(), "mcnc::sub/train|scfi|n2|r=mds_|sim|flip");
  EXPECT_THROW(expand_jobs(corpus, "no_such*", {2}, {flip}), ScfiError);

  sim::CampaignConfig camp;
  camp.runs = 100;
  const std::vector<SweepJob> campaign_jobs =
      expand_campaign_jobs(corpus, "lion", {2}, {camp}, "unprotected");
  ASSERT_EQ(campaign_jobs.size(), 1u);
  EXPECT_EQ(campaign_jobs[0].key(),
            "mcnc::lion|unprotected|n2|mc|flip|t=any|runs=100|c=24|f=1|s=1");
}

TEST(SweepOrchestrator, CorpusJobsMatchDirectRuns) {
  // A mixed corpus + zoo matrix in ONE fleet run: per-key results must be
  // bit-identical to direct per-module analyze()/run_campaign() for every
  // jobs/threads combination, and the store must resume cleanly.
  const std::string dir = write_test_corpus("corpus_orchestrate");
  const Kiss2CorpusSource corpus(dir);
  synfi::SynfiConfig flip;
  sim::CampaignConfig camp;
  camp.runs = 300;
  camp.cycles = 8;
  camp.seed = 9;
  std::vector<SweepJob> jobs = expand_jobs(corpus, "*", {2}, {flip});
  const std::vector<SweepJob> corpus_camp = expand_campaign_jobs(corpus, "lion", {2}, {camp});
  jobs.insert(jobs.end(), corpus_camp.begin(), corpus_camp.end());
  const std::vector<SweepJob> zoo_jobs = expand_jobs("pwrmgr_fsm", {2}, {flip});
  jobs.insert(jobs.end(), zoo_jobs.begin(), zoo_jobs.end());
  ASSERT_EQ(jobs.size(), 4u);

  ResultStore reference;
  for (const SweepJob& job : jobs) {
    const ot::OtEntry entry =
        job.source.empty() ? ot::ot_entry(job.module) : corpus.module(job.module);
    rtlil::Design d;
    const fsm::CompiledFsm c = ot::build_ot_variant(entry, d, ot::Variant::kScfi,
                                                    job.protection_level, job.module + "_ref");
    SweepResult result;
    result.job = job;
    if (job.type == JobType::kCampaign) {
      sim::CampaignConfig config = job.campaign;
      config.lanes = sim::kNumLanes;
      result.campaign = sim::run_campaign(entry.fsm, c, config);
    } else {
      result.report = synfi::analyze(entry.fsm, c, job.synfi);
    }
    reference.add(result);
  }

  struct JobsThreads {
    int jobs;
    int threads;
  };
  for (const JobsThreads jt : {JobsThreads{1, 1}, {2, 2}, {3, 8}}) {
    SweepConfig config;
    config.jobs = jt.jobs;
    config.threads = jt.threads;
    ResultStore store;
    SweepOrchestrator orchestrator(config);
    const SweepStats stats = orchestrator.run(jobs, store, "", false, &corpus);
    EXPECT_EQ(stats.executed, 4);
    ASSERT_EQ(store.size(), 4u);
    for (const SweepJob& job : jobs) {
      const SweepResult* got = store.find(job.key());
      ASSERT_NE(got, nullptr) << job.key();
      EXPECT_TRUE(reports_equal(*got, *reference.find(job.key())))
          << job.key() << " jobs=" << jt.jobs << " threads=" << jt.threads;
    }
  }

  // The mixed store round-trips through JSONL (v3 lines) and resumes with
  // every job skipped.
  const std::string path = temp_path("sweep_corpus.jsonl");
  std::remove(path.c_str());
  ResultStore store;
  SweepOrchestrator orchestrator{SweepConfig{}};
  EXPECT_EQ(orchestrator.run(jobs, store, path, false, &corpus).executed, 4);
  ResultStore resumed = ResultStore::load(path);
  EXPECT_EQ(resumed.size(), 4u);
  const SweepStats second = orchestrator.run(jobs, resumed, path, true, &corpus);
  EXPECT_EQ(second.executed, 0);
  EXPECT_EQ(second.skipped, 4);

  // Corpus jobs without their source are rejected up front, whatever the
  // provided source's label is.
  ResultStore empty;
  EXPECT_THROW(orchestrator.run(jobs, empty), ScfiError);
  const Kiss2CorpusSource other(dir, "other_label");
  EXPECT_THROW(orchestrator.run(jobs, empty, "", false, &other), ScfiError);
  EXPECT_EQ(empty.size(), 0u);
}

TEST(SweepOrchestrator, MatchesSequentialAnalyzeForAllJobsThreads) {
  synfi::SynfiConfig flip;
  synfi::SynfiConfig stuck;
  stuck.kind = sim::FaultKind::kStuckAt1;
  const std::vector<SweepJob> jobs =
      expand_jobs("pwrmgr_fsm,adc_ctrl_fsm", {2}, {flip, stuck});
  ASSERT_EQ(jobs.size(), 4u);

  // Sequential reference: fresh variant + one-shot analyze() per job.
  ResultStore reference;
  for (const SweepJob& job : jobs) {
    const ot::OtEntry entry = ot::ot_entry(job.module);
    rtlil::Design d;
    const fsm::CompiledFsm c = ot::build_ot_variant(entry, d, ot::Variant::kScfi,
                                                    job.protection_level, job.module + "_ref");
    SweepResult result;
    result.job = job;
    result.report = synfi::analyze(entry.fsm, c, job.synfi);
    reference.add(result);
  }

  struct JobsThreads {
    int jobs;
    int threads;
  };
  for (const JobsThreads jt : {JobsThreads{1, 1}, {2, 2}, {4, 3}, {2, 8}}) {
    SweepConfig config;
    config.jobs = jt.jobs;
    config.threads = jt.threads;
    ResultStore store;
    SweepOrchestrator orchestrator(config);
    const SweepStats stats = orchestrator.run(jobs, store);
    EXPECT_EQ(stats.executed, 4);
    EXPECT_EQ(stats.skipped, 0);
    ASSERT_EQ(store.size(), 4u);
    for (const SweepJob& job : jobs) {
      const SweepResult* got = store.find(job.key());
      ASSERT_NE(got, nullptr) << job.key();
      EXPECT_TRUE(got->report == reference.find(job.key())->report)
          << job.key() << " jobs=" << jt.jobs << " threads=" << jt.threads;
    }
  }
}

TEST(SweepOrchestrator, MixedSynfiAndCampaignMatrix) {
  // SYNFI and Monte-Carlo campaign jobs share one fleet run; per-key
  // results must be bit-identical to direct analyze()/run_campaign() calls
  // for every jobs/threads combination, including campaign jobs on the
  // unprotected variant (which SYNFI cannot analyze).
  synfi::SynfiConfig flip;
  sim::CampaignConfig camp;
  camp.runs = 400;
  camp.cycles = 8;
  camp.fault.k = 1;
  camp.seed = 5;
  std::vector<SweepJob> jobs = expand_jobs("pwrmgr_fsm", {2}, {flip});
  const std::vector<SweepJob> campaign_jobs =
      expand_campaign_jobs("pwrmgr_fsm,adc_ctrl_fsm", {2}, {camp});
  jobs.insert(jobs.end(), campaign_jobs.begin(), campaign_jobs.end());
  const std::vector<SweepJob> raw_jobs =
      expand_campaign_jobs("pwrmgr_fsm", {2}, {camp}, "unprotected");
  jobs.insert(jobs.end(), raw_jobs.begin(), raw_jobs.end());
  ASSERT_EQ(jobs.size(), 4u);

  // Direct reference, one fresh variant per job. Campaign jobs run the
  // streaming planner at the orchestrator's lane count; threads never
  // change results.
  ResultStore reference;
  for (const SweepJob& job : jobs) {
    const ot::OtEntry entry = ot::ot_entry(job.module);
    rtlil::Design d;
    const ot::Variant variant =
        job.variant == "unprotected" ? ot::Variant::kUnprotected : ot::Variant::kScfi;
    const fsm::CompiledFsm c =
        ot::build_ot_variant(entry, d, variant, job.protection_level, job.module + "_ref");
    SweepResult result;
    result.job = job;
    if (job.type == JobType::kCampaign) {
      sim::CampaignConfig config = job.campaign;
      config.planner = sim::CampaignPlanner::kStreaming;
      config.lanes = sim::kNumLanes;
      result.campaign = sim::run_campaign(entry.fsm, c, config);
    } else {
      result.report = synfi::analyze(entry.fsm, c, job.synfi);
    }
    reference.add(result);
  }

  struct JobsThreads {
    int jobs;
    int threads;
  };
  for (const JobsThreads jt : {JobsThreads{1, 1}, {2, 2}, {3, 8}}) {
    SweepConfig config;
    config.jobs = jt.jobs;
    config.threads = jt.threads;
    ResultStore store;
    SweepOrchestrator orchestrator(config);
    const SweepStats stats = orchestrator.run(jobs, store);
    EXPECT_EQ(stats.executed, 4);
    ASSERT_EQ(store.size(), 4u);
    for (const SweepJob& job : jobs) {
      const SweepResult* got = store.find(job.key());
      ASSERT_NE(got, nullptr) << job.key();
      EXPECT_TRUE(reports_equal(*got, *reference.find(job.key())))
          << job.key() << " jobs=" << jt.jobs << " threads=" << jt.threads;
    }
  }

  // The mixed store round-trips through JSONL and resumes with every job
  // type skipped.
  const std::string path = temp_path("sweep_mixed.jsonl");
  std::remove(path.c_str());
  ResultStore store;
  SweepOrchestrator orchestrator{SweepConfig{}};
  const SweepStats first = orchestrator.run(jobs, store, path, /*resume=*/false);
  EXPECT_EQ(first.executed, 4);
  ResultStore resumed = ResultStore::load(path);
  EXPECT_EQ(resumed.size(), 4u);
  const SweepStats second = orchestrator.run(jobs, resumed, path, /*resume=*/true);
  EXPECT_EQ(second.executed, 0);
  EXPECT_EQ(second.skipped, 4);
}

TEST(SweepOrchestrator, ResumeSkipsStoredJobs) {
  const std::string path = temp_path("sweep_resume.jsonl");
  std::remove(path.c_str());

  synfi::SynfiConfig flip;
  synfi::SynfiConfig stuck;
  stuck.kind = sim::FaultKind::kStuckAt0;
  const std::vector<SweepJob> jobs = expand_jobs("pwrmgr_fsm", {2}, {flip, stuck});

  SweepConfig config;
  config.jobs = 2;
  config.threads = 2;
  SweepOrchestrator orchestrator(config);

  ResultStore store;
  const SweepStats first = orchestrator.run(jobs, store, path, /*resume=*/false);
  EXPECT_EQ(first.executed, 2);

  // A second invocation resuming from the streamed file runs nothing.
  ResultStore resumed = ResultStore::load(path);
  EXPECT_EQ(resumed.size(), 2u);
  const SweepStats second = orchestrator.run(jobs, resumed, path, /*resume=*/true);
  EXPECT_EQ(second.executed, 0);
  EXPECT_EQ(second.skipped, 2);

  // Partial store: drop one record, resume runs exactly the missing job.
  ResultStore partial;
  partial.add(*resumed.find(jobs[0].key()));
  const SweepStats third = orchestrator.run(jobs, partial, "", /*resume=*/true);
  EXPECT_EQ(third.executed, 1);
  EXPECT_EQ(third.skipped, 1);
  EXPECT_TRUE(partial.find(jobs[1].key())->report ==
              resumed.find(jobs[1].key())->report);
}

TEST(SweepOrchestrator, RejectsBadJobsAndConfig) {
  EXPECT_THROW(SweepOrchestrator(SweepConfig{0, 1, 64}), ScfiError);
  EXPECT_THROW(SweepOrchestrator(SweepConfig{1, 0, 64}), ScfiError);
  EXPECT_THROW(SweepOrchestrator(SweepConfig{1, 1, sim::kMaxLanes + 1}), ScfiError);
  EXPECT_THROW(SweepOrchestrator(SweepConfig{1, 1, 64, -1}), ScfiError);      // retries
  EXPECT_THROW(SweepOrchestrator(SweepConfig{1, 1, 64, 0, -0.5}), ScfiError);  // timeout

  // Malformed job matrices — unknown or unanalyzable variant names — are
  // caller bugs and still abort up front, before any work runs.
  SweepOrchestrator orchestrator{SweepConfig{}};
  ResultStore store;
  SweepJob unknown;
  unknown.module = "pwrmgr_fsm";
  unknown.variant = "unprotected";  // raw control bits: not symbol-analyzable
  EXPECT_THROW(orchestrator.run({unknown}, store), ScfiError);
  // Redundancy variants hold N register copies the SYNFI stimulus does not
  // drive; accepting them would produce meaningless reports.
  unknown.variant = "redundancy";
  EXPECT_THROW(orchestrator.run({unknown}, store), ScfiError);
  // Campaign jobs accept all three compiled forms but still reject unknown
  // variant names up front.
  SweepJob campaign;
  campaign.type = JobType::kCampaign;
  campaign.module = "pwrmgr_fsm";
  campaign.variant = "no_such_variant";
  EXPECT_THROW(orchestrator.run({campaign}, store), ScfiError);
  EXPECT_EQ(store.size(), 0u);

  // An unknown MODULE, by contrast, is an execution failure: it is
  // isolated into a failure record (fail_fast restores the old abort).
  SweepJob missing;
  missing.module = "no_such_module";
  const SweepStats stats = orchestrator.run({missing}, store);
  EXPECT_EQ(stats.failed, 1);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.find(missing.key())->status == JobStatus::kFailed);
  SweepConfig strict;
  strict.fail_fast = true;
  SweepOrchestrator fail_fast{strict};
  ResultStore empty;
  EXPECT_THROW(fail_fast.run({missing}, empty), ScfiError);
  EXPECT_EQ(empty.size(), 0u);
}

TEST(SweepOrchestrator, IsolatesFailingJobsAndResumesOnlyThose) {
  // The acceptance scenario: a corpus sweep with one job on a module whose
  // .kiss2 failed to parse (group-build failure: "bad" is not among the
  // corpus entries) and one job that throws mid-execution (a SYNFI region
  // prefix matching no fault site), next to two healthy jobs. The fleet
  // must complete, record failure entries for exactly the two bad keys,
  // and a --resume must re-execute only them — for every jobs/threads
  // combination.
  const std::string dir = write_test_corpus("corpus_isolate");
  const Kiss2CorpusSource corpus(dir);
  synfi::SynfiConfig flip;
  std::vector<SweepJob> jobs = expand_jobs(corpus, "*", {2}, {flip});
  ASSERT_EQ(jobs.size(), 2u);  // lion, sub/train
  SweepJob unparseable = jobs[0];
  unparseable.module = "bad";
  jobs.push_back(unparseable);
  SweepJob throws_midway = jobs[0];
  throws_midway.synfi.wire_prefix = "no_such_region_";
  jobs.push_back(throws_midway);

  const std::vector<std::string> bad_keys = {unparseable.key(), throws_midway.key()};
  const std::vector<std::string> good_keys = {jobs[0].key(), jobs[1].key()};

  struct JobsThreads {
    int jobs;
    int threads;
  };
  for (const JobsThreads jt : {JobsThreads{1, 1}, {2, 2}, {3, 8}}) {
    SweepConfig config;
    config.jobs = jt.jobs;
    config.threads = jt.threads;
    config.retries = 1;
    config.backoff.initial_ms = 0.0;  // retry instantly in tests
    ResultStore store;
    SweepOrchestrator orchestrator(config);
    const std::string path =
        temp_path("sweep_isolate_" + std::to_string(jt.jobs) + ".jsonl");
    std::remove(path.c_str());
    const SweepStats stats = orchestrator.run(jobs, store, path, false, &corpus);
    EXPECT_EQ(stats.executed, 2) << "jobs=" << jt.jobs;
    EXPECT_EQ(stats.failed, 2) << "jobs=" << jt.jobs;
    // The build failure is deterministic and not retried; the mid-execution
    // throw burns the full attempt budget.
    EXPECT_EQ(stats.retried, config.retries) << "jobs=" << jt.jobs;
    ASSERT_EQ(store.size(), 4u);
    for (const std::string& key : good_keys) {
      ASSERT_NE(store.find(key), nullptr) << key;
      EXPECT_TRUE(store.find(key)->status == JobStatus::kOk) << key;
    }
    const SweepResult* build_failure = store.find(unparseable.key());
    ASSERT_NE(build_failure, nullptr);
    EXPECT_TRUE(build_failure->status == JobStatus::kFailed);
    EXPECT_EQ(build_failure->attempts, 1);
    EXPECT_NE(build_failure->error.find("variant build failed"), std::string::npos);
    const SweepResult* exec_failure = store.find(throws_midway.key());
    ASSERT_NE(exec_failure, nullptr);
    EXPECT_TRUE(exec_failure->status == JobStatus::kFailed);
    EXPECT_EQ(exec_failure->attempts, config.retries + 1);
    EXPECT_NE(exec_failure->error.find("no fault sites"), std::string::npos);

    // The failure records stream into the JSONL file like any other and
    // survive the round trip.
    ResultStore reloaded = ResultStore::load(path);
    ASSERT_EQ(reloaded.size(), 4u);
    EXPECT_TRUE(reloaded.find(unparseable.key())->status == JobStatus::kFailed);

    // Resume skips the ok keys and re-executes exactly the failed ones
    // (which fail again here — the lease just grants them a fresh run).
    const SweepStats second = orchestrator.run(jobs, reloaded, path, true, &corpus);
    EXPECT_EQ(second.skipped, 2);
    EXPECT_EQ(second.executed, 0);
    EXPECT_EQ(second.failed, 2);
  }
}

TEST(SweepOrchestrator, RetryBudgetIsSpentAndRecorded) {
  // A deterministic mid-execution failure burns first + `retries` attempts,
  // and the failure record reports the full count.
  SweepJob job = expand_jobs("pwrmgr_fsm", {2}, {synfi::SynfiConfig{}})[0];
  job.synfi.wire_prefix = "no_such_region_";
  for (const int retries : {0, 3}) {
    SweepConfig config;
    config.retries = retries;
    config.backoff.initial_ms = 0.0;
    ResultStore store;
    const SweepStats stats = SweepOrchestrator(config).run({job}, store);
    EXPECT_EQ(stats.failed, 1);
    EXPECT_EQ(stats.retried, retries);
    ASSERT_EQ(store.size(), 1u);
    EXPECT_EQ(store.find(job.key())->attempts, retries + 1);
  }
}

TEST(SweepOrchestrator, JobTimeoutRecordsFailureAndResumeRecovers) {
  // An already-expired deadline cancels the job at its first cooperative
  // check point — deterministically, whatever the machine speed — and the
  // timeout is terminal: no retry can extend the budget.
  const std::vector<SweepJob> jobs =
      expand_jobs("pwrmgr_fsm", {2}, {synfi::SynfiConfig{}});
  const std::string path = temp_path("sweep_timeout.jsonl");
  std::remove(path.c_str());
  SweepConfig config;
  config.job_timeout = 1e-9;
  ResultStore store;
  const SweepStats stats = SweepOrchestrator(config).run(jobs, store, path);
  EXPECT_EQ(stats.executed, 0);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.retried, 0);
  ASSERT_EQ(store.size(), 1u);
  const SweepResult* timed_out = store.find(jobs[0].key());
  ASSERT_NE(timed_out, nullptr);
  EXPECT_TRUE(timed_out->status == JobStatus::kFailed);
  EXPECT_NE(timed_out->error.find("timed out"), std::string::npos);

  // Campaign jobs poll the same token per executed batch.
  const std::vector<SweepJob> campaign_jobs =
      expand_campaign_jobs("pwrmgr_fsm", {2}, {sim::CampaignConfig{}});
  ResultStore campaign_store;
  EXPECT_EQ(SweepOrchestrator(config).run(campaign_jobs, campaign_store).failed, 1);

  // A resume without the deadline re-executes the timed-out key and its
  // latest-wins record flips to ok — the retry-lease path end to end.
  ResultStore resumed = ResultStore::load(path);
  const SweepStats second = SweepOrchestrator(SweepConfig{}).run(jobs, resumed, path, true);
  EXPECT_EQ(second.executed, 1);
  EXPECT_EQ(second.skipped, 0);
  EXPECT_EQ(second.failed, 0);
  EXPECT_TRUE(ResultStore::load(path).find(jobs[0].key())->status == JobStatus::kOk);
}

TEST(GlobMatch, Basics) {
  EXPECT_TRUE(glob_match("pwrmgr_fsm", "pwrmgr_fsm"));
  EXPECT_TRUE(glob_match("pwrmgr_fsm", "pwr*"));
  EXPECT_TRUE(glob_match("pwrmgr_fsm", "*fsm"));
  EXPECT_TRUE(glob_match("pwrmgr_fsm", "*"));
  EXPECT_TRUE(glob_match("abc", "a?c"));
  EXPECT_TRUE(glob_match("", "*"));
  EXPECT_FALSE(glob_match("pwrmgr_fsm", "pwr"));
  EXPECT_FALSE(glob_match("abc", "a?d"));
  EXPECT_FALSE(glob_match("abc", "abcd"));
}

}  // namespace
}  // namespace scfi::sweep
