// The sweep subsystem contract: the JSONL result-store schema is pinned by
// a golden line (schema v1 — bump ResultStore::kSchemaVersion when it has
// to change), load/save/merge/diff round-trip, and SweepOrchestrator
// results are bit-identical to sequential per-module synfi::analyze() for
// every jobs/threads combination, with --resume skipping stored jobs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/error.h"
#include "base/strutil.h"
#include "ot/zoo.h"
#include "rtlil/design.h"
#include "sweep/sweep.h"
#include "synfi/synfi.h"

namespace scfi::sweep {
namespace {

/// A store record with every field populated, fixed so the golden line
/// below pins the v1 schema byte for byte.
SweepResult golden_result() {
  SweepResult result;
  result.job.module = "pwrmgr_fsm";
  result.job.variant = "scfi";
  result.job.protection_level = 3;
  result.job.synfi.wire_prefix = "mds_";
  result.job.synfi.backend = synfi::Backend::kSat;
  result.job.synfi.kind = sim::FaultKind::kStuckAt1;
  result.job.synfi.free_symbol = true;
  result.report.sites = 75;
  result.report.injections = 1275;
  result.report.exploitable = 2;
  result.report.detected = 1200;
  result.report.masked = 73;
  result.report.stalls = 1;
  result.report.exploitable_sites = {"mds_x_12[0]", "mds_a_3[1]"};
  result.seconds = 0.125;
  return result;
}

constexpr const char* kGoldenLine =
    "{\"schema\":1,\"key\":\"pwrmgr_fsm|scfi|n3|r=mds_|sat|stuck1|free\","
    "\"module\":\"pwrmgr_fsm\",\"variant\":\"scfi\",\"level\":3,\"region\":\"mds_\","
    "\"include_inputs\":false,\"backend\":\"sat\",\"kind\":\"stuck1\",\"free_symbol\":true,"
    "\"sites\":75,\"injections\":1275,\"exploitable\":2,\"detected\":1200,\"masked\":73,"
    "\"stalls\":1,\"exploitable_sites\":[\"mds_x_12[0]\",\"mds_a_3[1]\"],"
    "\"seconds\":0.125000}";

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ResultStore, GoldenLinePinsSchema) {
  EXPECT_EQ(ResultStore::to_line(golden_result()), kGoldenLine);
}

TEST(ResultStore, ParseRoundTrip) {
  const SweepResult parsed = ResultStore::parse_line(kGoldenLine);
  const SweepResult expected = golden_result();
  EXPECT_EQ(parsed.key(), expected.key());
  EXPECT_EQ(parsed.job.module, expected.job.module);
  EXPECT_EQ(parsed.job.protection_level, expected.job.protection_level);
  EXPECT_EQ(parsed.job.synfi.wire_prefix, expected.job.synfi.wire_prefix);
  EXPECT_TRUE(parsed.job.synfi.backend == expected.job.synfi.backend);
  EXPECT_TRUE(parsed.job.synfi.kind == expected.job.synfi.kind);
  EXPECT_EQ(parsed.job.synfi.free_symbol, expected.job.synfi.free_symbol);
  EXPECT_TRUE(parsed.report == expected.report);
  EXPECT_DOUBLE_EQ(parsed.seconds, expected.seconds);
  // And serializing the parse reproduces the line exactly.
  EXPECT_EQ(ResultStore::to_line(parsed), kGoldenLine);
}

TEST(ResultStore, ParseRejectsBadInput) {
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":99,\"module\":\"m\"}"), ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"module\":\"m\"}"), ScfiError);  // no schema
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":1}"), ScfiError);      // no module
  EXPECT_THROW(ResultStore::parse_line("not json"), ScfiError);
  // Malformed \u escapes surface as ScfiError (with file:line context from
  // load()), never as a bare std::invalid_argument.
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":1,\"module\":\"\\uzzzz\"}"), ScfiError);
  EXPECT_THROW(ResultStore::parse_line("{\"schema\":1,\"module\":\"\\u00x1\"}"), ScfiError);
}

TEST(ResultStore, EscapedStringsRoundTrip) {
  SweepResult result = golden_result();
  result.job.module = "odd\"name\\with\tescapes";
  result.report.exploitable_sites = {"wire\"x[0]"};
  const std::string line = ResultStore::to_line(result);
  const SweepResult parsed = ResultStore::parse_line(line);
  EXPECT_EQ(parsed.job.module, result.job.module);
  EXPECT_EQ(parsed.report.exploitable_sites, result.report.exploitable_sites);
}

TEST(ResultStore, SaveLoadAppendDedupe) {
  const std::string path = temp_path("store_roundtrip.jsonl");
  std::remove(path.c_str());

  ResultStore store;
  SweepResult a = golden_result();
  SweepResult b = golden_result();
  b.job.module = "aes_control";
  store.add(a);
  store.add(b);
  store.save(path);

  // Appending a NEWER record for a's key: on load, the later line wins.
  a.report.exploitable = 7;
  ResultStore::append_line(path, a);

  const ResultStore loaded = ResultStore::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  ASSERT_TRUE(loaded.contains(a.key()));
  EXPECT_EQ(loaded.find(a.key())->report.exploitable, 7);
  EXPECT_TRUE(loaded.contains(b.key()));

  // Missing file -> empty store.
  EXPECT_EQ(ResultStore::load(temp_path("does_not_exist.jsonl")).size(), 0u);
}

TEST(ResultStore, MergeAndDiff) {
  SweepResult a = golden_result();
  SweepResult b = golden_result();
  b.job.module = "aes_control";
  SweepResult c = golden_result();
  c.job.module = "i2c_fsm";

  ResultStore left;
  left.add(a);
  left.add(b);
  ResultStore right;
  SweepResult b2 = b;
  b2.report.exploitable += 5;
  b2.seconds = 99.0;  // timing must NOT count as a change
  right.add(b2);
  right.add(c);

  const ResultStore::Diff diff = ResultStore::diff(left, right);
  EXPECT_EQ(diff.only_left, std::vector<std::string>{a.key()});
  EXPECT_EQ(diff.only_right, std::vector<std::string>{c.key()});
  EXPECT_EQ(diff.changed, std::vector<std::string>{b.key()});
  EXPECT_FALSE(diff.empty());

  ResultStore merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.find(b.key())->report.exploitable, b2.report.exploitable);
  // Same-timing stores with equal reports diff empty.
  EXPECT_TRUE(ResultStore::diff(merged, merged).empty());
}

TEST(SweepJobs, ExpandMatrixAndGlobs) {
  synfi::SynfiConfig mds;
  synfi::SynfiConfig whole;
  whole.wire_prefix = "";
  const std::vector<SweepJob> jobs =
      expand_jobs("pwrmgr_fsm,i2c*", {2, 3}, {mds, whole});
  ASSERT_EQ(jobs.size(), 8u);  // 2 modules x 2 levels x 2 configs
  EXPECT_EQ(jobs[0].key(), "i2c_fsm|scfi|n2|r=mds_|sim|flip");
  EXPECT_EQ(jobs[7].key(), "pwrmgr_fsm|scfi|n3|r=|sim|flip");
  EXPECT_THROW(expand_jobs("no_such_module*", {2}, {mds}), ScfiError);
  EXPECT_THROW(expand_jobs("pwrmgr_fsm", {}, {mds}), ScfiError);
}

TEST(SweepOrchestrator, MatchesSequentialAnalyzeForAllJobsThreads) {
  synfi::SynfiConfig flip;
  synfi::SynfiConfig stuck;
  stuck.kind = sim::FaultKind::kStuckAt1;
  const std::vector<SweepJob> jobs =
      expand_jobs("pwrmgr_fsm,adc_ctrl_fsm", {2}, {flip, stuck});
  ASSERT_EQ(jobs.size(), 4u);

  // Sequential reference: fresh variant + one-shot analyze() per job.
  ResultStore reference;
  for (const SweepJob& job : jobs) {
    const ot::OtEntry entry = ot::ot_entry(job.module);
    rtlil::Design d;
    const fsm::CompiledFsm c = ot::build_ot_variant(entry, d, ot::Variant::kScfi,
                                                    job.protection_level, job.module + "_ref");
    SweepResult result;
    result.job = job;
    result.report = synfi::analyze(entry.fsm, c, job.synfi);
    reference.add(result);
  }

  struct JobsThreads {
    int jobs;
    int threads;
  };
  for (const JobsThreads jt : {JobsThreads{1, 1}, {2, 2}, {4, 3}, {2, 8}}) {
    SweepConfig config;
    config.jobs = jt.jobs;
    config.threads = jt.threads;
    ResultStore store;
    SweepOrchestrator orchestrator(config);
    const SweepStats stats = orchestrator.run(jobs, store);
    EXPECT_EQ(stats.executed, 4);
    EXPECT_EQ(stats.skipped, 0);
    ASSERT_EQ(store.size(), 4u);
    for (const SweepJob& job : jobs) {
      const SweepResult* got = store.find(job.key());
      ASSERT_NE(got, nullptr) << job.key();
      EXPECT_TRUE(got->report == reference.find(job.key())->report)
          << job.key() << " jobs=" << jt.jobs << " threads=" << jt.threads;
    }
  }
}

TEST(SweepOrchestrator, ResumeSkipsStoredJobs) {
  const std::string path = temp_path("sweep_resume.jsonl");
  std::remove(path.c_str());

  synfi::SynfiConfig flip;
  synfi::SynfiConfig stuck;
  stuck.kind = sim::FaultKind::kStuckAt0;
  const std::vector<SweepJob> jobs = expand_jobs("pwrmgr_fsm", {2}, {flip, stuck});

  SweepConfig config;
  config.jobs = 2;
  config.threads = 2;
  SweepOrchestrator orchestrator(config);

  ResultStore store;
  const SweepStats first = orchestrator.run(jobs, store, path, /*resume=*/false);
  EXPECT_EQ(first.executed, 2);

  // A second invocation resuming from the streamed file runs nothing.
  ResultStore resumed = ResultStore::load(path);
  EXPECT_EQ(resumed.size(), 2u);
  const SweepStats second = orchestrator.run(jobs, resumed, path, /*resume=*/true);
  EXPECT_EQ(second.executed, 0);
  EXPECT_EQ(second.skipped, 2);

  // Partial store: drop one record, resume runs exactly the missing job.
  ResultStore partial;
  partial.add(*resumed.find(jobs[0].key()));
  const SweepStats third = orchestrator.run(jobs, partial, "", /*resume=*/true);
  EXPECT_EQ(third.executed, 1);
  EXPECT_EQ(third.skipped, 1);
  EXPECT_TRUE(partial.find(jobs[1].key())->report ==
              resumed.find(jobs[1].key())->report);
}

TEST(SweepOrchestrator, RejectsBadJobsAndConfig) {
  EXPECT_THROW(SweepOrchestrator(SweepConfig{0, 1, 64}), ScfiError);
  EXPECT_THROW(SweepOrchestrator(SweepConfig{1, 0, 64}), ScfiError);
  EXPECT_THROW(SweepOrchestrator(SweepConfig{1, 1, 65}), ScfiError);

  SweepOrchestrator orchestrator{SweepConfig{}};
  ResultStore store;
  SweepJob unknown;
  unknown.module = "pwrmgr_fsm";
  unknown.variant = "unprotected";  // raw control bits: not symbol-analyzable
  EXPECT_THROW(orchestrator.run({unknown}, store), ScfiError);
  // Redundancy variants hold N register copies the SYNFI stimulus does not
  // drive; accepting them would produce meaningless reports.
  unknown.variant = "redundancy";
  EXPECT_THROW(orchestrator.run({unknown}, store), ScfiError);
  SweepJob missing;
  missing.module = "no_such_module";
  EXPECT_THROW(orchestrator.run({missing}, store), ScfiError);
  EXPECT_EQ(store.size(), 0u);
}

TEST(GlobMatch, Basics) {
  EXPECT_TRUE(glob_match("pwrmgr_fsm", "pwrmgr_fsm"));
  EXPECT_TRUE(glob_match("pwrmgr_fsm", "pwr*"));
  EXPECT_TRUE(glob_match("pwrmgr_fsm", "*fsm"));
  EXPECT_TRUE(glob_match("pwrmgr_fsm", "*"));
  EXPECT_TRUE(glob_match("abc", "a?c"));
  EXPECT_TRUE(glob_match("", "*"));
  EXPECT_FALSE(glob_match("pwrmgr_fsm", "pwr"));
  EXPECT_FALSE(glob_match("abc", "a?d"));
  EXPECT_FALSE(glob_match("abc", "abcd"));
}

}  // namespace
}  // namespace scfi::sweep
