// End-to-end integration tests: full pipelines from FSM spec (or KISS2 text)
// through hardening, synthesis, simulation and fault campaigns.
#include <gtest/gtest.h>

#include "core/pass.h"
#include "fsm/kiss2.h"
#include "ot/zoo.h"
#include "redundancy/redundancy.h"
#include "rtlil/design.h"
#include "sim/campaign.h"
#include "synth/lower.h"
#include "synth/opt.h"
#include "synth/stat.h"
#include "test_helpers.h"

namespace scfi {
namespace {

TEST(Integration, Kiss2ToHardenedGateLevel) {
  const std::string kiss = fsm::write_kiss2(test::paper_fsm());
  const fsm::Fsm f = fsm::parse_kiss2(kiss, "fig2");
  rtlil::Design d;
  core::ScfiConfig config;
  config.protection_level = 3;
  core::ScfiReport report;
  const fsm::CompiledFsm c = core::scfi_harden(f, d, config, &report);
  synth::lower_to_gates(*c.module);
  synth::optimize(*c.module);
  const synth::AreaReport area = synth::area_report(*c.module);
  EXPECT_GT(area.total_ge, 100.0);
  EXPECT_EQ(report.plan.protection_level, 3);
}

TEST(Integration, CampaignUnprotectedVsScfi) {
  // Single-fault campaigns: the unprotected FSM must show undetected
  // deviations; SCFI must never hijack and detect aggressively.
  const fsm::Fsm f = test::synfi_fsm();
  rtlil::Design d;
  const fsm::CompiledFsm plain = fsm::compile_unprotected(f, d);
  core::ScfiConfig config;
  config.protection_level = 2;
  const fsm::CompiledFsm hard = core::scfi_harden(f, d, config);

  sim::CampaignConfig campaign;
  campaign.runs = 300;
  campaign.cycles = 16;
  campaign.fault.k = 1;
  campaign.seed = 99;

  const sim::CampaignResult pr = sim::run_campaign(f, plain, campaign);
  const sim::CampaignResult hr = sim::run_campaign(f, hard, campaign);
  EXPECT_EQ(pr.detected, 0);  // no detection logic at all
  EXPECT_GT(pr.hijacked + pr.lagged + pr.silent_invalid, 0);
  // SCFI's protection is probabilistic for faults inside the next-state
  // function (paper §6.3/§6.4 measure a sub-percent residual); register and
  // control-signal faults are covered deterministically. The hijack rate
  // must be tiny and far below the unprotected baseline.
  EXPECT_LE(hr.hijacked, campaign.runs / 50);
  EXPECT_LT(hr.hijacked, pr.hijacked + pr.lagged + pr.silent_invalid);
  EXPECT_GT(hr.detected, 0);
  EXPECT_EQ(hr.silent_invalid, 0);  // corruption never goes unnoticed
}

TEST(Integration, CampaignStateRegisterTarget) {
  const fsm::Fsm f = test::paper_fsm();
  rtlil::Design d;
  core::ScfiConfig config;
  config.protection_level = 2;
  const fsm::CompiledFsm hard = core::scfi_harden(f, d, config);
  sim::CampaignConfig campaign;
  campaign.runs = 200;
  campaign.cycles = 12;
  campaign.fault.target = sim::FaultTarget::kStateRegister;
  campaign.seed = 7;
  const sim::CampaignResult r = sim::run_campaign(f, hard, campaign);
  EXPECT_EQ(r.hijacked, 0);
  EXPECT_EQ(r.silent_invalid, 0);
  EXPECT_GT(r.detected, 0);
}

TEST(Integration, CampaignMultiFaultScalesWithN) {
  // With enough simultaneous faults the attacker eventually wins even
  // against SCFI (probabilistically); at N=4 the hijack rate must not
  // exceed the N=2 rate.
  const fsm::Fsm f = test::synfi_fsm();
  sim::CampaignConfig campaign;
  campaign.runs = 400;
  campaign.cycles = 10;
  campaign.fault.k = 4;
  campaign.fault.target = sim::FaultTarget::kControlInputs;
  campaign.seed = 5;

  rtlil::Design d2;
  core::ScfiConfig c2;
  c2.protection_level = 2;
  const auto r2 = sim::run_campaign(f, core::scfi_harden(f, d2, c2), campaign);
  rtlil::Design d4;
  core::ScfiConfig c4;
  c4.protection_level = 4;
  const auto r4 = sim::run_campaign(f, core::scfi_harden(f, d4, c4), campaign);
  EXPECT_LE(r4.hijacked, r2.hijacked + 5);  // allow sampling noise
}

TEST(Integration, FullPassOnCompiledNetlist) {
  rtlil::Design d;
  fsm::compile_unprotected(test::synfi_fsm(), d, {.module_name = "ctrl"});
  core::PassOptions options;
  options.config.protection_level = 2;
  const core::PassResult result = core::run_scfi_pass(d, "ctrl", options);
  EXPECT_EQ(result.extracted.num_states(), 5);
  EXPECT_EQ(result.report.cfg_edges,
            static_cast<int>(result.extracted.cfg_edges().size()));
  // Hardened module simulates its CFG.
  sim::Simulator s(*result.hardened.module);
  const auto edges = result.extracted.cfg_edges();
  int golden = result.extracted.reset_state;
  for (int t = 0; t < 40; ++t) {
    const fsm::CfgEdge* chosen = nullptr;
    for (const fsm::CfgEdge& e : edges) {
      if (e.from == golden) {
        chosen = &e;
        break;
      }
    }
    ASSERT_NE(chosen, nullptr);
    s.set_input(result.hardened.symbol_input_wire,
                result.hardened.symbol_codes.at(chosen->symbol));
    s.step();
    golden = chosen->to;
    ASSERT_EQ(s.get(result.hardened.state_wire),
              result.hardened.state_codes[static_cast<std::size_t>(golden)]);
  }
}

TEST(Integration, AreaOrderingMatchesTable1Shape) {
  // For an FSM-dominated module (pwrmgr), SCFI must beat redundancy at
  // higher protection levels — the headline claim of Table 1.
  const ot::OtEntry entry = ot::ot_entry("pwrmgr_fsm");
  rtlil::Design d;
  const auto u = ot::build_ot_variant(entry, d, ot::Variant::kUnprotected, 4, "u");
  const auto r = ot::build_ot_variant(entry, d, ot::Variant::kRedundancy, 4, "r");
  const auto s = ot::build_ot_variant(entry, d, ot::Variant::kScfi, 4, "s");
  const double ua = ot::synthesize_area(*u.module).total_ge;
  const double ra = ot::synthesize_area(*r.module).total_ge;
  const double sa = ot::synthesize_area(*s.module).total_ge;
  const double red_overhead = 100.0 * (ra - ua) / ua;
  const double scfi_overhead = 100.0 * (sa - ua) / ua;
  EXPECT_LT(scfi_overhead, red_overhead);
}

}  // namespace
}  // namespace scfi
