#include <gtest/gtest.h>

#include "base/rng.h"
#include "fsm/compile.h"
#include "rtlil/design.h"
#include "sat/cnf.h"
#include "sat/miter.h"
#include "sat/solver.h"
#include "sim/netlist_sim.h"
#include "test_helpers.h"

namespace scfi::sat {
namespace {

TEST(Solver, TrivialSat) {
  Solver s;
  const int a = s.new_var();
  s.add_unit(a);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const int a = s.new_var();
  s.add_unit(a);
  s.add_unit(-a);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, EmptyClauseUnsat) {
  Solver s;
  s.add_clause({});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, PropagationChain) {
  Solver s;
  std::vector<int> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) s.add_binary(-v[static_cast<std::size_t>(i)],
                                                v[static_cast<std::size_t>(i + 1)]);
  s.add_unit(v[0]);
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.value(v[static_cast<std::size_t>(i)]));
}

TEST(Solver, PigeonHole3in2Unsat) {
  // 3 pigeons, 2 holes: classic small UNSAT instance exercising learning.
  Solver s;
  int p[3][2];
  for (auto& row : p) {
    for (int& x : row) x = s.new_var();
  }
  for (auto& row : p) s.add_binary(row[0], row[1]);
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) s.add_binary(-p[i][h], -p[j][h]);
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, AssumptionsRestrictModels) {
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  s.add_binary(a, b);
  EXPECT_EQ(s.solve({-a}), Result::kSat);
  EXPECT_TRUE(s.value(b));
  EXPECT_EQ(s.solve({-a, -b}), Result::kUnsat);
  EXPECT_EQ(s.solve(), Result::kSat);  // solvable again without assumptions
}

TEST(Solver, RandomXorChainsAgreeWithParity) {
  // x1 ^ x2 ^ ... ^ xk = c encoded via Tseitin chains; satisfiable iff
  // always (free variables), then check the model parity.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Solver s;
    const int k = 3 + static_cast<int>(rng.below(6));
    std::vector<int> x;
    for (int i = 0; i < k; ++i) x.push_back(s.new_var());
    int acc = x[0];
    for (int i = 1; i < k; ++i) {
      const int y = s.new_var();
      s.add_ternary(-y, acc, x[static_cast<std::size_t>(i)]);
      s.add_ternary(-y, -acc, -x[static_cast<std::size_t>(i)]);
      s.add_ternary(y, -acc, x[static_cast<std::size_t>(i)]);
      s.add_ternary(y, acc, -x[static_cast<std::size_t>(i)]);
      acc = y;
    }
    const bool target = rng.chance(0.5);
    s.add_unit(target ? acc : -acc);
    ASSERT_EQ(s.solve(), Result::kSat);
    bool parity = false;
    for (int i = 0; i < k; ++i) parity ^= s.value(x[static_cast<std::size_t>(i)]);
    EXPECT_EQ(parity, target);
  }
}

TEST(Miter, EqualsConstBothPolarities) {
  Solver s;
  std::vector<int> v{s.new_var(), s.new_var(), s.new_var()};
  const Lit eq = equals_const(s, v, 0b101);
  s.add_unit(eq);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(v[0]));
  EXPECT_FALSE(s.value(v[1]));
  EXPECT_TRUE(s.value(v[2]));
  Solver s2;
  std::vector<int> w{s2.new_var(), s2.new_var()};
  const Lit eq2 = equals_const(s2, w, 0b11);
  s2.add_unit(-eq2);
  s2.add_unit(w[0]);
  s2.add_unit(w[1]);
  EXPECT_EQ(s2.solve(), Result::kUnsat);
}

TEST(Miter, MemberOf) {
  Solver s;
  std::vector<int> v{s.new_var(), s.new_var(), s.new_var()};
  const Lit member = member_of(s, v, {0b001, 0b110});
  s.add_unit(member);
  s.add_unit(v[0]);  // forces 0b001
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.value(v[1]));
  EXPECT_FALSE(s.value(v[2]));
}

TEST(Miter, ExactlyOne) {
  Solver s;
  std::vector<Lit> sel{s.new_var(), s.new_var(), s.new_var()};
  exactly_one(s, sel);
  s.add_unit(sel[1]);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.value(sel[0]));
  EXPECT_FALSE(s.value(sel[2]));
}

TEST(Miter, ExactlyOneSequentialEncoding) {
  // Above the pairwise threshold the sequential (Sinz) encoding is used;
  // the semantics must be unchanged: any single selector is a model, any
  // pair is not, and all-off is not.
  constexpr int kN = 80;
  Solver s;
  std::vector<Lit> sel;
  for (int i = 0; i < kN; ++i) sel.push_back(s.new_var());
  exactly_one(s, sel);
  for (const int pick : {0, 1, 37, kN - 2, kN - 1}) {
    ASSERT_EQ(s.solve({sel[static_cast<std::size_t>(pick)]}), Result::kSat) << pick;
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(s.value(sel[static_cast<std::size_t>(i)]), i == pick);
    }
  }
  EXPECT_EQ(s.solve({sel[3], sel[61]}), Result::kUnsat);
  EXPECT_EQ(s.solve({sel[0], sel[1]}), Result::kUnsat);
  std::vector<Lit> all_off;
  for (int i = 0; i < kN; ++i) all_off.push_back(-sel[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.solve(all_off), Result::kUnsat);
}

TEST(Solver, GlobalUnsatPersistsAcrossIncrementalCalls) {
  // Regression: a level-0 conflict discovered by propagation must poison
  // every later solve() call. The broken behavior left the level-0 trail
  // inconsistent and returned bogus kSat on reuse.
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  s.add_unit(a);
  s.add_binary(-a, b);
  s.add_binary(-a, -b);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_EQ(s.solve({a}), Result::kUnsat);
  EXPECT_EQ(s.solve({-a}), Result::kUnsat);
}

TEST(Solver, LearnedClausesStayValidAcrossAssumptionSweeps) {
  // Pigeonhole per assumption branch: repeated UNSAT-under-assumption
  // queries must not corrupt the shared clause database — the formula stays
  // satisfiable whenever the selector assumption is released.
  Solver s;
  const int sel = s.new_var();
  int p[3][2];
  for (auto& row : p) {
    for (int& x : row) x = s.new_var();
  }
  // sel -> pigeonhole constraints (UNSAT when sel true).
  for (auto& row : p) s.add_ternary(-sel, row[0], row[1]);
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) s.add_ternary(-sel, -p[i][h], -p[j][h]);
    }
  }
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(s.solve({sel}), Result::kUnsat) << round;
    EXPECT_EQ(s.solve({-sel}), Result::kSat) << round;
    EXPECT_EQ(s.solve(), Result::kSat) << round;
  }
}

TEST(Cnf, AgreesWithSimulatorOnFsm) {
  // Differential test: for random inputs/state, the CNF next-state function
  // must equal the simulator's.
  rtlil::Design d;
  const fsm::Fsm f = test::paper_fsm();
  const fsm::CompiledFsm c = fsm::compile_unprotected(f, d);
  sim::Simulator simulator(*c.module);
  Rng rng(19);
  for (int trial = 0; trial < 40; ++trial) {
    Solver solver;
    CnfCopy copy(solver, *c.module, {});
    std::vector<Lit> assumptions;
    std::vector<bool> in_bits;
    for (const std::string& name : f.inputs) {
      const bool v = rng.chance(0.5);
      in_bits.push_back(v);
      const int var = copy.wire_vars(name)[0];
      assumptions.push_back(v ? var : -var);
      simulator.set_input(name, v ? 1 : 0);
    }
    const std::uint64_t state = rng.below(4);
    const std::vector<int> svars = copy.wire_vars(c.state_wire);
    for (std::size_t i = 0; i < svars.size(); ++i) {
      assumptions.push_back(((state >> i) & 1) ? svars[i] : -svars[i]);
    }
    simulator.set_register(c.state_wire, state);
    simulator.step();
    const std::uint64_t expect = simulator.get(c.state_wire);
    ASSERT_EQ(solver.solve(assumptions), Result::kSat);
    const std::vector<int> next = copy.ff_next_vars(c.state_wire);
    std::uint64_t got = 0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      if (solver.value(next[i])) got |= 1ULL << i;
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(Cnf, FaultFlipChangesReaderView) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* y = m->add_output("y", 1);
  const rtlil::SigSpec mid = m->make_buf(rtlil::SigSpec(a), "mid");
  m->drive(rtlil::SigSpec(y), m->make_buf(mid, "out"));
  Solver s;
  CnfCopy faulty(s, *m, {}, CnfFault{mid.bit(0), CnfFaultKind::kFlip});
  const int av = faulty.wire_vars("a")[0];
  const int yv = faulty.wire_vars("y")[0];
  s.add_unit(av);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.value(yv));  // flip inverted the path
}

TEST(Cnf, SelectorGatedFaultsTogglePerAssumption) {
  // Two gated flips on a two-stage buffer chain: the selected fault (and
  // only it) must invert the output; with both selectors off the copy is
  // fault-free.
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* y = m->add_output("y", 1);
  const rtlil::SigSpec mid1 = m->make_buf(rtlil::SigSpec(a), "mid1");
  const rtlil::SigSpec mid2 = m->make_buf(mid1, "mid2");
  m->drive(rtlil::SigSpec(y), m->make_buf(mid2, "out"));
  Solver s;
  const Lit sel1 = s.new_var();
  const Lit sel2 = s.new_var();
  const std::vector<CnfFault> faults{
      CnfFault{mid1.bit(0), CnfFaultKind::kFlip, sel1},
      CnfFault{mid2.bit(0), CnfFaultKind::kStuckAt1, sel2},
  };
  CnfCopy faulty(s, *m, {}, faults);
  const int av = faulty.wire_vars("a")[0];
  const int yv = faulty.wire_vars("y")[0];

  ASSERT_EQ(s.solve({av, -sel1, -sel2}), Result::kSat);
  EXPECT_TRUE(s.value(yv));  // pass-through with every selector off
  ASSERT_EQ(s.solve({av, sel1, -sel2}), Result::kSat);
  EXPECT_FALSE(s.value(yv));  // single flip inverts the path
  ASSERT_EQ(s.solve({-av, -sel1, sel2}), Result::kSat);
  EXPECT_TRUE(s.value(yv));  // stuck-at-1 overrides the low input
  ASSERT_EQ(s.solve({av, sel1, sel2}), Result::kSat);
  EXPECT_TRUE(s.value(yv));  // both faults compose: flip then stuck-at-1
}

}  // namespace
}  // namespace scfi::sat
