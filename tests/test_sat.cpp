#include <gtest/gtest.h>

#include "base/rng.h"
#include "fsm/compile.h"
#include "rtlil/design.h"
#include "sat/cnf.h"
#include "sat/miter.h"
#include "sat/solver.h"
#include "sim/netlist_sim.h"
#include "test_helpers.h"

namespace scfi::sat {
namespace {

TEST(Solver, TrivialSat) {
  Solver s;
  const int a = s.new_var();
  s.add_unit(a);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const int a = s.new_var();
  s.add_unit(a);
  s.add_unit(-a);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, EmptyClauseUnsat) {
  Solver s;
  s.add_clause({});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, PropagationChain) {
  Solver s;
  std::vector<int> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) s.add_binary(-v[static_cast<std::size_t>(i)],
                                                v[static_cast<std::size_t>(i + 1)]);
  s.add_unit(v[0]);
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.value(v[static_cast<std::size_t>(i)]));
}

TEST(Solver, PigeonHole3in2Unsat) {
  // 3 pigeons, 2 holes: classic small UNSAT instance exercising learning.
  Solver s;
  int p[3][2];
  for (auto& row : p) {
    for (int& x : row) x = s.new_var();
  }
  for (auto& row : p) s.add_binary(row[0], row[1]);
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) s.add_binary(-p[i][h], -p[j][h]);
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, AssumptionsRestrictModels) {
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  s.add_binary(a, b);
  EXPECT_EQ(s.solve({-a}), Result::kSat);
  EXPECT_TRUE(s.value(b));
  EXPECT_EQ(s.solve({-a, -b}), Result::kUnsat);
  EXPECT_EQ(s.solve(), Result::kSat);  // solvable again without assumptions
}

TEST(Solver, RandomXorChainsAgreeWithParity) {
  // x1 ^ x2 ^ ... ^ xk = c encoded via Tseitin chains; satisfiable iff
  // always (free variables), then check the model parity.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Solver s;
    const int k = 3 + static_cast<int>(rng.below(6));
    std::vector<int> x;
    for (int i = 0; i < k; ++i) x.push_back(s.new_var());
    int acc = x[0];
    for (int i = 1; i < k; ++i) {
      const int y = s.new_var();
      s.add_ternary(-y, acc, x[static_cast<std::size_t>(i)]);
      s.add_ternary(-y, -acc, -x[static_cast<std::size_t>(i)]);
      s.add_ternary(y, -acc, x[static_cast<std::size_t>(i)]);
      s.add_ternary(y, acc, -x[static_cast<std::size_t>(i)]);
      acc = y;
    }
    const bool target = rng.chance(0.5);
    s.add_unit(target ? acc : -acc);
    ASSERT_EQ(s.solve(), Result::kSat);
    bool parity = false;
    for (int i = 0; i < k; ++i) parity ^= s.value(x[static_cast<std::size_t>(i)]);
    EXPECT_EQ(parity, target);
  }
}

TEST(Miter, EqualsConstBothPolarities) {
  Solver s;
  std::vector<int> v{s.new_var(), s.new_var(), s.new_var()};
  const Lit eq = equals_const(s, v, 0b101);
  s.add_unit(eq);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(v[0]));
  EXPECT_FALSE(s.value(v[1]));
  EXPECT_TRUE(s.value(v[2]));
  Solver s2;
  std::vector<int> w{s2.new_var(), s2.new_var()};
  const Lit eq2 = equals_const(s2, w, 0b11);
  s2.add_unit(-eq2);
  s2.add_unit(w[0]);
  s2.add_unit(w[1]);
  EXPECT_EQ(s2.solve(), Result::kUnsat);
}

TEST(Miter, MemberOf) {
  Solver s;
  std::vector<int> v{s.new_var(), s.new_var(), s.new_var()};
  const Lit member = member_of(s, v, {0b001, 0b110});
  s.add_unit(member);
  s.add_unit(v[0]);  // forces 0b001
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.value(v[1]));
  EXPECT_FALSE(s.value(v[2]));
}

TEST(Miter, ExactlyOne) {
  Solver s;
  std::vector<Lit> sel{s.new_var(), s.new_var(), s.new_var()};
  exactly_one(s, sel);
  s.add_unit(sel[1]);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.value(sel[0]));
  EXPECT_FALSE(s.value(sel[2]));
}

TEST(Cnf, AgreesWithSimulatorOnFsm) {
  // Differential test: for random inputs/state, the CNF next-state function
  // must equal the simulator's.
  rtlil::Design d;
  const fsm::Fsm f = test::paper_fsm();
  const fsm::CompiledFsm c = fsm::compile_unprotected(f, d);
  sim::Simulator simulator(*c.module);
  Rng rng(19);
  for (int trial = 0; trial < 40; ++trial) {
    Solver solver;
    CnfCopy copy(solver, *c.module, {});
    std::vector<Lit> assumptions;
    std::vector<bool> in_bits;
    for (const std::string& name : f.inputs) {
      const bool v = rng.chance(0.5);
      in_bits.push_back(v);
      const int var = copy.wire_vars(name)[0];
      assumptions.push_back(v ? var : -var);
      simulator.set_input(name, v ? 1 : 0);
    }
    const std::uint64_t state = rng.below(4);
    const std::vector<int> svars = copy.wire_vars(c.state_wire);
    for (std::size_t i = 0; i < svars.size(); ++i) {
      assumptions.push_back(((state >> i) & 1) ? svars[i] : -svars[i]);
    }
    simulator.set_register(c.state_wire, state);
    simulator.step();
    const std::uint64_t expect = simulator.get(c.state_wire);
    ASSERT_EQ(solver.solve(assumptions), Result::kSat);
    const std::vector<int> next = copy.ff_next_vars(c.state_wire);
    std::uint64_t got = 0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      if (solver.value(next[i])) got |= 1ULL << i;
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(Cnf, FaultFlipChangesReaderView) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m");
  rtlil::Wire* a = m->add_input("a", 1);
  rtlil::Wire* y = m->add_output("y", 1);
  const rtlil::SigSpec mid = m->make_buf(rtlil::SigSpec(a), "mid");
  m->drive(rtlil::SigSpec(y), m->make_buf(mid, "out"));
  Solver s;
  CnfCopy faulty(s, *m, {}, CnfFault{mid.bit(0), CnfFaultKind::kFlip});
  const int av = faulty.wire_vars("a")[0];
  const int yv = faulty.wire_vars("y")[0];
  s.add_unit(av);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.value(yv));  // flip inverted the path
}

}  // namespace
}  // namespace scfi::sat
