// The sweep fleet contract: LeaseLedger folds the shared store's append
// traffic into latest-wins leases and sticky finals (salvaging the glued
// torn bytes a SIGKILL mid-append leaves), and FleetSupervisor drives N
// forked workers to the same bit-identical results as a single-process
// sweep — through worker crashes (respawned with backoff, leases released),
// poison jobs (quarantined as failed/"crashed" after max_crashes), wedged
// jobs (stopped heartbeat -> supervisor SIGKILL), and graceful SIGTERM
// drain (in-flight work finishes or is recorded cancelled; a later resume
// completes the matrix).
#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/error.h"
#include "sweep/lease.h"
#include "sweep/result_store.h"
#include "sweep/supervisor.h"
#include "sweep/sweep.h"

namespace scfi::sweep {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

/// A cheap, deterministic SYNFI matrix: pwrmgr_fsm x levels {2,3} x kinds
/// {flip, stuck0} = 4 jobs, each a few milliseconds.
std::vector<SweepJob> synfi_matrix() {
  std::vector<synfi::SynfiConfig> configs(2);
  configs[0].wire_prefix = "mds_";
  configs[0].kind = sim::FaultKind::kTransientFlip;
  configs[1].wire_prefix = "mds_";
  configs[1].kind = sim::FaultKind::kStuckAt0;
  return expand_jobs("pwrmgr*", {2, 3}, configs);
}

/// Campaign jobs sized to take on the order of a second each — long enough
/// that a drain signal lands mid-flight deterministically.
std::vector<SweepJob> slow_campaign_matrix(int runs) {
  sim::CampaignConfig config;
  config.runs = runs;
  config.cycles = 24;
  config.seed = 7;
  return expand_campaign_jobs("pwrmgr*", {2, 3},
                              std::vector<sim::CampaignConfig>{config, [&] {
                                                                 sim::CampaignConfig c = config;
                                                                 c.fault.kinds = {
                                                                     sim::FaultKind::kStuckAt0};
                                                                 return c;
                                                               }()});
}

SweepResult ok_record(const SweepJob& job) {
  SweepResult result;
  result.job = job;
  result.report.sites = 1;
  result.report.injections = 1;
  return result;
}

TEST(LeaseLedger, StateMachineAndStickyFinals) {
  const std::string path = temp_path("ledger_states.jsonl");
  const std::vector<SweepJob> jobs = synfi_matrix();
  const std::string key = jobs[0].key();
  { std::ofstream create(path); }  // the ledger tails an existing file

  LeaseLedger ledger(path, 0);
  ledger.poll();
  const double now = lease_now();
  EXPECT_TRUE(ledger.state(key, now) == LeaseState::kUnclaimed);
  EXPECT_TRUE(ledger.claimable(key, now));
  EXPECT_FALSE(ledger.done(key));

  // A live lease blocks claiming; its expiry (or an explicit release)
  // reopens the key.
  ResultStore::append_line(path, make_lease(jobs[0], "w0.0", now + 60.0));
  ledger.poll();
  EXPECT_TRUE(ledger.state(key, now) == LeaseState::kLeased);
  EXPECT_FALSE(ledger.claimable(key, now));
  ASSERT_NE(ledger.latest_lease(key), nullptr);
  EXPECT_EQ(ledger.latest_lease(key)->worker, "w0.0");
  EXPECT_TRUE(ledger.state(key, now + 61.0) == LeaseState::kExpired);
  EXPECT_TRUE(ledger.claimable(key, now + 61.0));
  ResultStore::append_line(path, make_lease(jobs[0], "", 0.0));  // release
  ledger.poll();
  EXPECT_TRUE(ledger.state(key, now) == LeaseState::kExpired);
  EXPECT_TRUE(ledger.claimable(key, now));

  // A final is terminal — and sticky: a stale lease renewal landing after
  // it (a slow worker that lost a steal race) cannot resurrect the job.
  ResultStore::append_line(path, ok_record(jobs[0]));
  ledger.poll();
  EXPECT_TRUE(ledger.state(key, now) == LeaseState::kDone);
  EXPECT_FALSE(ledger.claimable(key, now));
  ResultStore::append_line(path, make_lease(jobs[0], "w1.0", now + 60.0));
  ledger.poll();
  EXPECT_TRUE(ledger.done(key));
  EXPECT_TRUE(ledger.state(key, now) == LeaseState::kDone);

  // Finals are latest-wins among themselves (a re-executed steal's record
  // replaces its twin) and enumerate in first-appearance order.
  SweepResult failed;
  failed.job = jobs[1];
  failed.status = JobStatus::kFailed;
  failed.error = "boom";
  ResultStore::append_line(path, failed);
  ResultStore::append_line(path, ok_record(jobs[1]));
  ledger.poll();
  ASSERT_NE(ledger.final_record(jobs[1].key()), nullptr);
  EXPECT_TRUE(ledger.final_record(jobs[1].key())->status == JobStatus::kOk);
  const std::vector<const SweepResult*> finals = ledger.finals();
  ASSERT_EQ(finals.size(), 2u);
  EXPECT_EQ(finals[0]->key(), key);
  EXPECT_EQ(finals[1]->key(), jobs[1].key());
}

TEST(LeaseLedger, BaselineOffsetSkipsPriorHistory) {
  const std::string path = temp_path("ledger_baseline.jsonl");
  const std::vector<SweepJob> jobs = synfi_matrix();
  ResultStore::append_line(path, ok_record(jobs[0]));  // prior run's record
  const std::uint64_t baseline = std::filesystem::file_size(path);
  ResultStore::append_line(path, ok_record(jobs[1]));  // this run's record

  LeaseLedger ledger(path, baseline);
  ledger.poll();
  EXPECT_FALSE(ledger.done(jobs[0].key()));  // pre-baseline: invisible
  EXPECT_TRUE(ledger.done(jobs[1].key()));
}

TEST(LeaseLedger, CarriesPartialTailAndSalvagesGluedRecords) {
  const std::string path = temp_path("ledger_tail.jsonl");
  const std::vector<SweepJob> jobs = synfi_matrix();
  const std::string full = ResultStore::to_line(ok_record(jobs[0]));

  // A concurrent append caught mid-write: the partial line is carried
  // until its newline arrives, never parsed early.
  {
    std::ofstream out(path, std::ios::app);
    out << full.substr(0, 25);
  }
  LeaseLedger ledger(path, 0);
  ledger.poll();
  EXPECT_FALSE(ledger.done(jobs[0].key()));
  {
    std::ofstream out(path, std::ios::app);
    out << full.substr(25) << "\n";
  }
  ledger.poll();
  EXPECT_TRUE(ledger.done(jobs[0].key()));

  // A SIGKILL between a worker's write and completion leaves torn bytes
  // the NEXT append glues a full record onto; the ledger re-parses from
  // the line's last record start instead of aborting.
  const std::string glued = ResultStore::to_line(ok_record(jobs[1]));
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"schema\":5,\"type\":\"syn" << glued << "\n";
  }
  ledger.poll();
  EXPECT_TRUE(ledger.done(jobs[1].key()));

  // Corruption with no salvageable record still throws: only a crash
  // shape is forgiven.
  {
    std::ofstream out(path, std::ios::app);
    out << "utter garbage, no record start\n";
  }
  EXPECT_THROW(ledger.poll(), ScfiError);
}

TEST(FleetSupervisor, ValidatesConfigStoreAndMatrix) {
  FleetConfig bad = FleetConfig{};
  bad.workers = 0;
  EXPECT_THROW(FleetSupervisor{bad}, ScfiError);
  bad = FleetConfig{};
  bad.max_crashes = 0;
  EXPECT_THROW(FleetSupervisor{bad}, ScfiError);
  bad = FleetConfig{};
  bad.heartbeat_timeout = 0.01;  // below the heartbeat interval
  EXPECT_THROW(FleetSupervisor{bad}, ScfiError);

  FleetSupervisor fleet{FleetConfig{}};
  // The store file IS the coordination medium: a path is mandatory.
  EXPECT_THROW(fleet.run(synfi_matrix(), ""), ScfiError);
  // A malformed matrix is rejected in the parent, before any fork.
  std::vector<SweepJob> jobs = synfi_matrix();
  jobs[0].variant = "warp-drive";
  EXPECT_THROW(fleet.run(jobs, temp_path("fleet_badmatrix.jsonl")), ScfiError);
}

TEST(FleetSupervisor, MatchesSingleProcessRunBitIdentically) {
  const std::vector<SweepJob> jobs = synfi_matrix();

  ResultStore single;
  SweepOrchestrator orchestrator{SweepConfig{}};
  orchestrator.run(jobs, single);

  const std::string path = temp_path("fleet_identical.jsonl");
  FleetConfig config;
  config.workers = 3;
  config.poll_interval = 0.01;
  config.heartbeat_interval = 0.05;
  FleetSupervisor fleet(config);
  const FleetStats stats = fleet.run(jobs, path);
  EXPECT_EQ(stats.executed, 4);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.unfinished, 0);
  EXPECT_EQ(stats.crashes, 0);
  EXPECT_FALSE(stats.drained);

  // The compacted store holds finals only, and the verdicts are
  // bit-identical to the single-process run (diff ignores timing, attempt
  // counts, and worker ids — the diagnostics allowed to differ).
  const ResultStore merged = ResultStore::load(path);  // strict load passes
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_TRUE(ResultStore::diff(single, merged).empty());
}

TEST(FleetSupervisor, PoisonJobIsQuarantinedAndWorkerRespawned) {
  const std::vector<SweepJob> jobs = synfi_matrix();
  const std::string poison = jobs[0].key();

  const std::string path = temp_path("fleet_poison.jsonl");
  FleetConfig config;
  config.workers = 1;  // forces the crash -> respawn -> re-claim path
  config.max_crashes = 2;
  config.poll_interval = 0.01;
  config.heartbeat_interval = 0.05;
  config.respawn_backoff = BackoffPolicy{1.0, 2.0, 8.0};
  config.poison_key = poison;
  FleetSupervisor fleet(config);
  const FleetStats stats = fleet.run(jobs, path);

  // Two workers died on the poison key; the second death quarantined it.
  // The fleet still finished every other job and exited.
  EXPECT_EQ(stats.crashes, 2);
  EXPECT_EQ(stats.quarantined, 1);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.executed, 3);
  EXPECT_EQ(stats.unfinished, 0);
  EXPECT_GE(stats.respawns, 1);

  const ResultStore merged = ResultStore::load(path);
  ASSERT_EQ(merged.size(), 4u);
  const SweepResult* quarantined = merged.find(poison);
  ASSERT_NE(quarantined, nullptr);
  EXPECT_TRUE(quarantined->status == JobStatus::kFailed);
  EXPECT_EQ(quarantined->error, "crashed");
  EXPECT_EQ(quarantined->attempts, 2);

  // Resume (poison hook off) re-executes exactly the quarantined key and
  // converges the store to all-ok.
  FleetConfig retry = config;
  retry.poison_key = "";
  FleetSupervisor fleet2(retry);
  const FleetStats resumed = fleet2.run(jobs, path, /*resume=*/true);
  EXPECT_EQ(resumed.skipped, 3);
  EXPECT_EQ(resumed.executed, 1);
  EXPECT_EQ(resumed.failed, 0);
  const ResultStore healed = ResultStore::load(path);
  for (const SweepResult& record : healed.results()) {
    EXPECT_TRUE(record.status == JobStatus::kOk) << record.key();
  }
}

TEST(FleetSupervisor, WedgedJobIsReapedViaStoppedHeartbeat) {
  // One enormous campaign job (minutes of work) with a 0.2s wedge budget:
  // the worker's heartbeat goes silent, the supervisor SIGKILLs it, and
  // max_crashes=1 quarantines the job immediately — the fleet exits in
  // about a second instead of running the campaign to completion.
  sim::CampaignConfig huge;
  huge.runs = 50000000;
  huge.cycles = 24;
  const std::vector<SweepJob> jobs =
      expand_campaign_jobs("pwrmgr*", {2}, std::vector<sim::CampaignConfig>{huge});
  ASSERT_EQ(jobs.size(), 1u);

  const std::string path = temp_path("fleet_wedge.jsonl");
  FleetConfig config;
  config.workers = 1;
  config.max_crashes = 1;
  config.wedge_seconds = 0.2;
  config.heartbeat_interval = 0.05;
  config.heartbeat_timeout = 0.5;
  config.poll_interval = 0.01;
  FleetSupervisor fleet(config);
  const FleetStats stats = fleet.run(jobs, path);
  EXPECT_EQ(stats.crashes, 1);
  EXPECT_EQ(stats.quarantined, 1);
  EXPECT_EQ(stats.failed, 1);
  const ResultStore merged = ResultStore::load(path);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.results()[0].error, "crashed");
}

TEST(FleetSupervisor, SigtermDrainsGracefullyAndResumeCompletes) {
  // ~1s-per-job campaigns; SIGTERM lands ~0.25s in, so the fleet is
  // mid-flight: claimed jobs are cancelled within the (short) grace and
  // recorded, unclaimed jobs stay unfinished, and nothing is torn — a
  // resumed fleet completes the matrix to all-ok.
  const std::vector<SweepJob> jobs = slow_campaign_matrix(500000);
  ASSERT_EQ(jobs.size(), 4u);

  const std::string path = temp_path("fleet_drain.jsonl");
  FleetConfig config;
  config.workers = 2;
  config.poll_interval = 0.01;
  config.heartbeat_interval = 0.05;
  config.drain_grace = 0.1;
  FleetSupervisor fleet(config);

  std::thread signaller([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    (void)::kill(::getpid(), SIGTERM);
  });
  const FleetStats stats = fleet.run(jobs, path);
  signaller.join();

  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.executed + stats.failed + stats.unfinished, 4);
  EXPECT_GT(stats.failed + stats.unfinished, 0);  // the drain cut real work

  // The drained store is clean (strict load, finals only) and resume
  // finishes the job matrix.
  const ResultStore after = ResultStore::load(path);
  FleetSupervisor fleet2(config);
  const FleetStats resumed = fleet2.run(jobs, path, /*resume=*/true);
  EXPECT_FALSE(resumed.drained);
  EXPECT_EQ(resumed.skipped + resumed.executed, 4);
  EXPECT_EQ(resumed.failed, 0);
  EXPECT_EQ(resumed.unfinished, 0);
  const ResultStore healed = ResultStore::load(path);
  ASSERT_EQ(healed.size(), 4u);
  for (const SweepResult& record : healed.results()) {
    EXPECT_TRUE(record.status == JobStatus::kOk) << record.key();
  }
}

}  // namespace
}  // namespace scfi::sweep
